/root/repo/target/release/deps/keygen_attack-678f9d925ffb3c6f.d: crates/bench/src/bin/keygen_attack.rs

/root/repo/target/release/deps/keygen_attack-678f9d925ffb3c6f: crates/bench/src/bin/keygen_attack.rs

crates/bench/src/bin/keygen_attack.rs:
