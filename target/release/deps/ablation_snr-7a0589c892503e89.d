/root/repo/target/release/deps/ablation_snr-7a0589c892503e89.d: crates/bench/src/bin/ablation_snr.rs

/root/repo/target/release/deps/ablation_snr-7a0589c892503e89: crates/bench/src/bin/ablation_snr.rs

crates/bench/src/bin/ablation_snr.rs:
