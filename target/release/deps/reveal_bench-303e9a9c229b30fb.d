/root/repo/target/release/deps/reveal_bench-303e9a9c229b30fb.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libreveal_bench-303e9a9c229b30fb.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libreveal_bench-303e9a9c229b30fb.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
