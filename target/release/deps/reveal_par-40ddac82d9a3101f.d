/root/repo/target/release/deps/reveal_par-40ddac82d9a3101f.d: crates/par/src/lib.rs

/root/repo/target/release/deps/libreveal_par-40ddac82d9a3101f.rlib: crates/par/src/lib.rs

/root/repo/target/release/deps/libreveal_par-40ddac82d9a3101f.rmeta: crates/par/src/lib.rs

crates/par/src/lib.rs:
