/root/repo/target/release/deps/defense_shuffling-e6e311ee9c46a642.d: crates/bench/src/bin/defense_shuffling.rs

/root/repo/target/release/deps/defense_shuffling-e6e311ee9c46a642: crates/bench/src/bin/defense_shuffling.rs

crates/bench/src/bin/defense_shuffling.rs:
