/root/repo/target/release/deps/multi_modulus_attack-9c6fc4ee96519267.d: crates/bench/src/bin/multi_modulus_attack.rs

/root/repo/target/release/deps/multi_modulus_attack-9c6fc4ee96519267: crates/bench/src/bin/multi_modulus_attack.rs

crates/bench/src/bin/multi_modulus_attack.rs:
