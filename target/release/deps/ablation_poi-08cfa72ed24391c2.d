/root/repo/target/release/deps/ablation_poi-08cfa72ed24391c2.d: crates/bench/src/bin/ablation_poi.rs

/root/repo/target/release/deps/ablation_poi-08cfa72ed24391c2: crates/bench/src/bin/ablation_poi.rs

crates/bench/src/bin/ablation_poi.rs:
