/root/repo/target/release/deps/ablation_lda-9c113825f5ef8a5c.d: crates/bench/src/bin/ablation_lda.rs

/root/repo/target/release/deps/ablation_lda-9c113825f5ef8a5c: crates/bench/src/bin/ablation_lda.rs

crates/bench/src/bin/ablation_lda.rs:
