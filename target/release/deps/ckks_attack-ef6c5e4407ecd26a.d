/root/repo/target/release/deps/ckks_attack-ef6c5e4407ecd26a.d: crates/bench/src/bin/ckks_attack.rs

/root/repo/target/release/deps/ckks_attack-ef6c5e4407ecd26a: crates/bench/src/bin/ckks_attack.rs

crates/bench/src/bin/ckks_attack.rs:
