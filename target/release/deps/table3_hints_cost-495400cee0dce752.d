/root/repo/target/release/deps/table3_hints_cost-495400cee0dce752.d: crates/bench/src/bin/table3_hints_cost.rs

/root/repo/target/release/deps/table3_hints_cost-495400cee0dce752: crates/bench/src/bin/table3_hints_cost.rs

crates/bench/src/bin/table3_hints_cost.rs:
