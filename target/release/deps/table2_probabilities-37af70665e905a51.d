/root/repo/target/release/deps/table2_probabilities-37af70665e905a51.d: crates/bench/src/bin/table2_probabilities.rs

/root/repo/target/release/deps/table2_probabilities-37af70665e905a51: crates/bench/src/bin/table2_probabilities.rs

crates/bench/src/bin/table2_probabilities.rs:
