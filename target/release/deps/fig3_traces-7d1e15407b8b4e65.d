/root/repo/target/release/deps/fig3_traces-7d1e15407b8b4e65.d: crates/bench/src/bin/fig3_traces.rs

/root/repo/target/release/deps/fig3_traces-7d1e15407b8b4e65: crates/bench/src/bin/fig3_traces.rs

crates/bench/src/bin/fig3_traces.rs:
