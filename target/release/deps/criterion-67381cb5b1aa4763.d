/root/repo/target/release/deps/criterion-67381cb5b1aa4763.d: crates/criterion-shim/src/lib.rs

/root/repo/target/release/deps/libcriterion-67381cb5b1aa4763.rlib: crates/criterion-shim/src/lib.rs

/root/repo/target/release/deps/libcriterion-67381cb5b1aa4763.rmeta: crates/criterion-shim/src/lib.rs

crates/criterion-shim/src/lib.rs:
