/root/repo/target/release/deps/keygen_attack-52f33791e6c17cfd.d: crates/bench/src/bin/keygen_attack.rs

/root/repo/target/release/deps/keygen_attack-52f33791e6c17cfd: crates/bench/src/bin/keygen_attack.rs

crates/bench/src/bin/keygen_attack.rs:
