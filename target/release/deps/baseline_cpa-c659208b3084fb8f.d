/root/repo/target/release/deps/baseline_cpa-c659208b3084fb8f.d: crates/bench/src/bin/baseline_cpa.rs

/root/repo/target/release/deps/baseline_cpa-c659208b3084fb8f: crates/bench/src/bin/baseline_cpa.rs

crates/bench/src/bin/baseline_cpa.rs:
