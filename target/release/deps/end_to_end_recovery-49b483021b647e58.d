/root/repo/target/release/deps/end_to_end_recovery-49b483021b647e58.d: crates/bench/src/bin/end_to_end_recovery.rs

/root/repo/target/release/deps/end_to_end_recovery-49b483021b647e58: crates/bench/src/bin/end_to_end_recovery.rs

crates/bench/src/bin/end_to_end_recovery.rs:
