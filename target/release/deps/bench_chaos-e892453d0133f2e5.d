/root/repo/target/release/deps/bench_chaos-e892453d0133f2e5.d: crates/bench/src/bin/bench_chaos.rs

/root/repo/target/release/deps/bench_chaos-e892453d0133f2e5: crates/bench/src/bin/bench_chaos.rs

crates/bench/src/bin/bench_chaos.rs:
