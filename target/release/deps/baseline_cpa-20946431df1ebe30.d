/root/repo/target/release/deps/baseline_cpa-20946431df1ebe30.d: crates/bench/src/bin/baseline_cpa.rs

/root/repo/target/release/deps/baseline_cpa-20946431df1ebe30: crates/bench/src/bin/baseline_cpa.rs

crates/bench/src/bin/baseline_cpa.rs:
