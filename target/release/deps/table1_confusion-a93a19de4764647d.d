/root/repo/target/release/deps/table1_confusion-a93a19de4764647d.d: crates/bench/src/bin/table1_confusion.rs

/root/repo/target/release/deps/table1_confusion-a93a19de4764647d: crates/bench/src/bin/table1_confusion.rs

crates/bench/src/bin/table1_confusion.rs:
