/root/repo/target/release/deps/ablation_snr-33a407afc44454a3.d: crates/bench/src/bin/ablation_snr.rs

/root/repo/target/release/deps/ablation_snr-33a407afc44454a3: crates/bench/src/bin/ablation_snr.rs

crates/bench/src/bin/ablation_snr.rs:
