/root/repo/target/release/deps/bench_pipeline-5b78b9a2ffe37f6d.d: crates/bench/src/bin/bench_pipeline.rs

/root/repo/target/release/deps/bench_pipeline-5b78b9a2ffe37f6d: crates/bench/src/bin/bench_pipeline.rs

crates/bench/src/bin/bench_pipeline.rs:
