/root/repo/target/release/deps/ablation_profiling_size-4ecc553c9aa8817e.d: crates/bench/src/bin/ablation_profiling_size.rs

/root/repo/target/release/deps/ablation_profiling_size-4ecc553c9aa8817e: crates/bench/src/bin/ablation_profiling_size.rs

crates/bench/src/bin/ablation_profiling_size.rs:
