/root/repo/target/release/deps/reveal_math-8411fe41f0d7f75f.d: crates/math/src/lib.rs crates/math/src/arith.rs crates/math/src/bigint.rs crates/math/src/modulus.rs crates/math/src/ntt.rs crates/math/src/poly.rs crates/math/src/primes.rs crates/math/src/rns.rs

/root/repo/target/release/deps/libreveal_math-8411fe41f0d7f75f.rlib: crates/math/src/lib.rs crates/math/src/arith.rs crates/math/src/bigint.rs crates/math/src/modulus.rs crates/math/src/ntt.rs crates/math/src/poly.rs crates/math/src/primes.rs crates/math/src/rns.rs

/root/repo/target/release/deps/libreveal_math-8411fe41f0d7f75f.rmeta: crates/math/src/lib.rs crates/math/src/arith.rs crates/math/src/bigint.rs crates/math/src/modulus.rs crates/math/src/ntt.rs crates/math/src/poly.rs crates/math/src/primes.rs crates/math/src/rns.rs

crates/math/src/lib.rs:
crates/math/src/arith.rs:
crates/math/src/bigint.rs:
crates/math/src/modulus.rs:
crates/math/src/ntt.rs:
crates/math/src/poly.rs:
crates/math/src/primes.rs:
crates/math/src/rns.rs:
