/root/repo/target/release/deps/multi_modulus_attack-1a02097b4cb77113.d: crates/bench/src/bin/multi_modulus_attack.rs

/root/repo/target/release/deps/multi_modulus_attack-1a02097b4cb77113: crates/bench/src/bin/multi_modulus_attack.rs

crates/bench/src/bin/multi_modulus_attack.rs:
