/root/repo/target/release/deps/table4_sign_only-c578d85d9718a218.d: crates/bench/src/bin/table4_sign_only.rs

/root/repo/target/release/deps/table4_sign_only-c578d85d9718a218: crates/bench/src/bin/table4_sign_only.rs

crates/bench/src/bin/table4_sign_only.rs:
