/root/repo/target/release/deps/validate_estimator-ac563883ad793f46.d: crates/bench/src/bin/validate_estimator.rs

/root/repo/target/release/deps/validate_estimator-ac563883ad793f46: crates/bench/src/bin/validate_estimator.rs

crates/bench/src/bin/validate_estimator.rs:
