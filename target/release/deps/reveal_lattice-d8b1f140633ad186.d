/root/repo/target/release/deps/reveal_lattice-d8b1f140633ad186.d: crates/lattice/src/lib.rs crates/lattice/src/bkz.rs crates/lattice/src/embedding.rs crates/lattice/src/enumeration.rs crates/lattice/src/gsa.rs crates/lattice/src/gso.rs crates/lattice/src/lll.rs

/root/repo/target/release/deps/libreveal_lattice-d8b1f140633ad186.rlib: crates/lattice/src/lib.rs crates/lattice/src/bkz.rs crates/lattice/src/embedding.rs crates/lattice/src/enumeration.rs crates/lattice/src/gsa.rs crates/lattice/src/gso.rs crates/lattice/src/lll.rs

/root/repo/target/release/deps/libreveal_lattice-d8b1f140633ad186.rmeta: crates/lattice/src/lib.rs crates/lattice/src/bkz.rs crates/lattice/src/embedding.rs crates/lattice/src/enumeration.rs crates/lattice/src/gsa.rs crates/lattice/src/gso.rs crates/lattice/src/lll.rs

crates/lattice/src/lib.rs:
crates/lattice/src/bkz.rs:
crates/lattice/src/embedding.rs:
crates/lattice/src/enumeration.rs:
crates/lattice/src/gsa.rs:
crates/lattice/src/gso.rs:
crates/lattice/src/lll.rs:
