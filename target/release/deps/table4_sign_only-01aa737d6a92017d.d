/root/repo/target/release/deps/table4_sign_only-01aa737d6a92017d.d: crates/bench/src/bin/table4_sign_only.rs

/root/repo/target/release/deps/table4_sign_only-01aa737d6a92017d: crates/bench/src/bin/table4_sign_only.rs

crates/bench/src/bin/table4_sign_only.rs:
