/root/repo/target/release/deps/defense_sampler_variants-16a7a98e33fc5e81.d: crates/bench/src/bin/defense_sampler_variants.rs

/root/repo/target/release/deps/defense_sampler_variants-16a7a98e33fc5e81: crates/bench/src/bin/defense_sampler_variants.rs

crates/bench/src/bin/defense_sampler_variants.rs:
