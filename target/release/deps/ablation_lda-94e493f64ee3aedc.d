/root/repo/target/release/deps/ablation_lda-94e493f64ee3aedc.d: crates/bench/src/bin/ablation_lda.rs

/root/repo/target/release/deps/ablation_lda-94e493f64ee3aedc: crates/bench/src/bin/ablation_lda.rs

crates/bench/src/bin/ablation_lda.rs:
