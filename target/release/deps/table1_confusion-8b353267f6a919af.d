/root/repo/target/release/deps/table1_confusion-8b353267f6a919af.d: crates/bench/src/bin/table1_confusion.rs

/root/repo/target/release/deps/table1_confusion-8b353267f6a919af: crates/bench/src/bin/table1_confusion.rs

crates/bench/src/bin/table1_confusion.rs:
