/root/repo/target/release/deps/reveal_chaos-96d53603a565d996.d: crates/chaos/src/lib.rs crates/chaos/src/fault.rs crates/chaos/src/inject.rs

/root/repo/target/release/deps/libreveal_chaos-96d53603a565d996.rlib: crates/chaos/src/lib.rs crates/chaos/src/fault.rs crates/chaos/src/inject.rs

/root/repo/target/release/deps/libreveal_chaos-96d53603a565d996.rmeta: crates/chaos/src/lib.rs crates/chaos/src/fault.rs crates/chaos/src/inject.rs

crates/chaos/src/lib.rs:
crates/chaos/src/fault.rs:
crates/chaos/src/inject.rs:
