/root/repo/target/release/deps/keygen_attack-88cf93632598f60b.d: crates/bench/src/bin/keygen_attack.rs

/root/repo/target/release/deps/keygen_attack-88cf93632598f60b: crates/bench/src/bin/keygen_attack.rs

crates/bench/src/bin/keygen_attack.rs:
