/root/repo/target/release/deps/reveal_rv32-bd92c8b67aead9ee.d: crates/rv32/src/lib.rs crates/rv32/src/asm.rs crates/rv32/src/cfg.rs crates/rv32/src/cpu.rs crates/rv32/src/disasm.rs crates/rv32/src/isa.rs crates/rv32/src/kernel.rs crates/rv32/src/power.rs

/root/repo/target/release/deps/libreveal_rv32-bd92c8b67aead9ee.rlib: crates/rv32/src/lib.rs crates/rv32/src/asm.rs crates/rv32/src/cfg.rs crates/rv32/src/cpu.rs crates/rv32/src/disasm.rs crates/rv32/src/isa.rs crates/rv32/src/kernel.rs crates/rv32/src/power.rs

/root/repo/target/release/deps/libreveal_rv32-bd92c8b67aead9ee.rmeta: crates/rv32/src/lib.rs crates/rv32/src/asm.rs crates/rv32/src/cfg.rs crates/rv32/src/cpu.rs crates/rv32/src/disasm.rs crates/rv32/src/isa.rs crates/rv32/src/kernel.rs crates/rv32/src/power.rs

crates/rv32/src/lib.rs:
crates/rv32/src/asm.rs:
crates/rv32/src/cfg.rs:
crates/rv32/src/cpu.rs:
crates/rv32/src/disasm.rs:
crates/rv32/src/isa.rs:
crates/rv32/src/kernel.rs:
crates/rv32/src/power.rs:
