/root/repo/target/release/deps/bench_pipeline-32e04bf4b9d8025c.d: crates/bench/src/bin/bench_pipeline.rs

/root/repo/target/release/deps/bench_pipeline-32e04bf4b9d8025c: crates/bench/src/bin/bench_pipeline.rs

crates/bench/src/bin/bench_pipeline.rs:
