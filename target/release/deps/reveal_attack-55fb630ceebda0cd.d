/root/repo/target/release/deps/reveal_attack-55fb630ceebda0cd.d: crates/attack/src/lib.rs crates/attack/src/config.rs crates/attack/src/defense.rs crates/attack/src/device.rs crates/attack/src/profile.rs crates/attack/src/recover.rs crates/attack/src/report.rs crates/attack/src/robust.rs

/root/repo/target/release/deps/libreveal_attack-55fb630ceebda0cd.rlib: crates/attack/src/lib.rs crates/attack/src/config.rs crates/attack/src/defense.rs crates/attack/src/device.rs crates/attack/src/profile.rs crates/attack/src/recover.rs crates/attack/src/report.rs crates/attack/src/robust.rs

/root/repo/target/release/deps/libreveal_attack-55fb630ceebda0cd.rmeta: crates/attack/src/lib.rs crates/attack/src/config.rs crates/attack/src/defense.rs crates/attack/src/device.rs crates/attack/src/profile.rs crates/attack/src/recover.rs crates/attack/src/report.rs crates/attack/src/robust.rs

crates/attack/src/lib.rs:
crates/attack/src/config.rs:
crates/attack/src/defense.rs:
crates/attack/src/device.rs:
crates/attack/src/profile.rs:
crates/attack/src/recover.rs:
crates/attack/src/report.rs:
crates/attack/src/robust.rs:
