/root/repo/target/release/deps/end_to_end_recovery-8054576a464aa4fe.d: crates/bench/src/bin/end_to_end_recovery.rs

/root/repo/target/release/deps/end_to_end_recovery-8054576a464aa4fe: crates/bench/src/bin/end_to_end_recovery.rs

crates/bench/src/bin/end_to_end_recovery.rs:
