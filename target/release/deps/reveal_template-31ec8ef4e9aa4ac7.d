/root/repo/target/release/deps/reveal_template-31ec8ef4e9aa4ac7.d: crates/template/src/lib.rs crates/template/src/confusion.rs crates/template/src/lda.rs crates/template/src/matrix.rs crates/template/src/scores.rs crates/template/src/template.rs

/root/repo/target/release/deps/libreveal_template-31ec8ef4e9aa4ac7.rlib: crates/template/src/lib.rs crates/template/src/confusion.rs crates/template/src/lda.rs crates/template/src/matrix.rs crates/template/src/scores.rs crates/template/src/template.rs

/root/repo/target/release/deps/libreveal_template-31ec8ef4e9aa4ac7.rmeta: crates/template/src/lib.rs crates/template/src/confusion.rs crates/template/src/lda.rs crates/template/src/matrix.rs crates/template/src/scores.rs crates/template/src/template.rs

crates/template/src/lib.rs:
crates/template/src/confusion.rs:
crates/template/src/lda.rs:
crates/template/src/matrix.rs:
crates/template/src/scores.rs:
crates/template/src/template.rs:
