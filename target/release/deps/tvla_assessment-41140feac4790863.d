/root/repo/target/release/deps/tvla_assessment-41140feac4790863.d: crates/bench/src/bin/tvla_assessment.rs

/root/repo/target/release/deps/tvla_assessment-41140feac4790863: crates/bench/src/bin/tvla_assessment.rs

crates/bench/src/bin/tvla_assessment.rs:
