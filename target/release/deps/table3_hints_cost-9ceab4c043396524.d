/root/repo/target/release/deps/table3_hints_cost-9ceab4c043396524.d: crates/bench/src/bin/table3_hints_cost.rs

/root/repo/target/release/deps/table3_hints_cost-9ceab4c043396524: crates/bench/src/bin/table3_hints_cost.rs

crates/bench/src/bin/table3_hints_cost.rs:
