/root/repo/target/release/deps/fig3_traces-1b5ee138feb044d1.d: crates/bench/src/bin/fig3_traces.rs

/root/repo/target/release/deps/fig3_traces-1b5ee138feb044d1: crates/bench/src/bin/fig3_traces.rs

crates/bench/src/bin/fig3_traces.rs:
