/root/repo/target/release/deps/ablation_profiling_size-78579bd180b40992.d: crates/bench/src/bin/ablation_profiling_size.rs

/root/repo/target/release/deps/ablation_profiling_size-78579bd180b40992: crates/bench/src/bin/ablation_profiling_size.rs

crates/bench/src/bin/ablation_profiling_size.rs:
