/root/repo/target/release/deps/table2_probabilities-3a11a970eb2e7052.d: crates/bench/src/bin/table2_probabilities.rs

/root/repo/target/release/deps/table2_probabilities-3a11a970eb2e7052: crates/bench/src/bin/table2_probabilities.rs

crates/bench/src/bin/table2_probabilities.rs:
