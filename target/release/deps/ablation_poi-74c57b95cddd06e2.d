/root/repo/target/release/deps/ablation_poi-74c57b95cddd06e2.d: crates/bench/src/bin/ablation_poi.rs

/root/repo/target/release/deps/ablation_poi-74c57b95cddd06e2: crates/bench/src/bin/ablation_poi.rs

crates/bench/src/bin/ablation_poi.rs:
