/root/repo/target/release/deps/validate_estimator-a1eaf9c0f445c099.d: crates/bench/src/bin/validate_estimator.rs

/root/repo/target/release/deps/validate_estimator-a1eaf9c0f445c099: crates/bench/src/bin/validate_estimator.rs

crates/bench/src/bin/validate_estimator.rs:
