/root/repo/target/release/deps/ckks_attack-5a27666a2a9e9df4.d: crates/bench/src/bin/ckks_attack.rs

/root/repo/target/release/deps/ckks_attack-5a27666a2a9e9df4: crates/bench/src/bin/ckks_attack.rs

crates/bench/src/bin/ckks_attack.rs:
