/root/repo/target/release/deps/table2_probabilities-d5ed81742f9f72d7.d: crates/bench/src/bin/table2_probabilities.rs

/root/repo/target/release/deps/table2_probabilities-d5ed81742f9f72d7: crates/bench/src/bin/table2_probabilities.rs

crates/bench/src/bin/table2_probabilities.rs:
