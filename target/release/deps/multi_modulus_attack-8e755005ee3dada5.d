/root/repo/target/release/deps/multi_modulus_attack-8e755005ee3dada5.d: crates/bench/src/bin/multi_modulus_attack.rs

/root/repo/target/release/deps/multi_modulus_attack-8e755005ee3dada5: crates/bench/src/bin/multi_modulus_attack.rs

crates/bench/src/bin/multi_modulus_attack.rs:
