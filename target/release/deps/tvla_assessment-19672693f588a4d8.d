/root/repo/target/release/deps/tvla_assessment-19672693f588a4d8.d: crates/bench/src/bin/tvla_assessment.rs

/root/repo/target/release/deps/tvla_assessment-19672693f588a4d8: crates/bench/src/bin/tvla_assessment.rs

crates/bench/src/bin/tvla_assessment.rs:
