/root/repo/target/release/deps/rand-e0e09c11c9ab8c8d.d: crates/rand-shim/src/lib.rs crates/rand-shim/src/distributions.rs crates/rand-shim/src/rngs.rs crates/rand-shim/src/seq.rs

/root/repo/target/release/deps/librand-e0e09c11c9ab8c8d.rlib: crates/rand-shim/src/lib.rs crates/rand-shim/src/distributions.rs crates/rand-shim/src/rngs.rs crates/rand-shim/src/seq.rs

/root/repo/target/release/deps/librand-e0e09c11c9ab8c8d.rmeta: crates/rand-shim/src/lib.rs crates/rand-shim/src/distributions.rs crates/rand-shim/src/rngs.rs crates/rand-shim/src/seq.rs

crates/rand-shim/src/lib.rs:
crates/rand-shim/src/distributions.rs:
crates/rand-shim/src/rngs.rs:
crates/rand-shim/src/seq.rs:
