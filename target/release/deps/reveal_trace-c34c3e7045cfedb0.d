/root/repo/target/release/deps/reveal_trace-c34c3e7045cfedb0.d: crates/trace/src/lib.rs crates/trace/src/align.rs crates/trace/src/cpa.rs crates/trace/src/export.rs crates/trace/src/poi.rs crates/trace/src/sanity.rs crates/trace/src/segment.rs crates/trace/src/stats.rs crates/trace/src/trace.rs crates/trace/src/tvla.rs

/root/repo/target/release/deps/libreveal_trace-c34c3e7045cfedb0.rlib: crates/trace/src/lib.rs crates/trace/src/align.rs crates/trace/src/cpa.rs crates/trace/src/export.rs crates/trace/src/poi.rs crates/trace/src/sanity.rs crates/trace/src/segment.rs crates/trace/src/stats.rs crates/trace/src/trace.rs crates/trace/src/tvla.rs

/root/repo/target/release/deps/libreveal_trace-c34c3e7045cfedb0.rmeta: crates/trace/src/lib.rs crates/trace/src/align.rs crates/trace/src/cpa.rs crates/trace/src/export.rs crates/trace/src/poi.rs crates/trace/src/sanity.rs crates/trace/src/segment.rs crates/trace/src/stats.rs crates/trace/src/trace.rs crates/trace/src/tvla.rs

crates/trace/src/lib.rs:
crates/trace/src/align.rs:
crates/trace/src/cpa.rs:
crates/trace/src/export.rs:
crates/trace/src/poi.rs:
crates/trace/src/sanity.rs:
crates/trace/src/segment.rs:
crates/trace/src/stats.rs:
crates/trace/src/trace.rs:
crates/trace/src/tvla.rs:
