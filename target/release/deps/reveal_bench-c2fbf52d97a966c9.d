/root/repo/target/release/deps/reveal_bench-c2fbf52d97a966c9.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libreveal_bench-c2fbf52d97a966c9.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libreveal_bench-c2fbf52d97a966c9.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
