/root/repo/target/release/deps/proptest-9eb9c505d15db0d6.d: crates/proptest-shim/src/lib.rs crates/proptest-shim/src/arbitrary.rs crates/proptest-shim/src/collection.rs crates/proptest-shim/src/config.rs crates/proptest-shim/src/strategy.rs crates/proptest-shim/src/test_runner.rs

/root/repo/target/release/deps/libproptest-9eb9c505d15db0d6.rlib: crates/proptest-shim/src/lib.rs crates/proptest-shim/src/arbitrary.rs crates/proptest-shim/src/collection.rs crates/proptest-shim/src/config.rs crates/proptest-shim/src/strategy.rs crates/proptest-shim/src/test_runner.rs

/root/repo/target/release/deps/libproptest-9eb9c505d15db0d6.rmeta: crates/proptest-shim/src/lib.rs crates/proptest-shim/src/arbitrary.rs crates/proptest-shim/src/collection.rs crates/proptest-shim/src/config.rs crates/proptest-shim/src/strategy.rs crates/proptest-shim/src/test_runner.rs

crates/proptest-shim/src/lib.rs:
crates/proptest-shim/src/arbitrary.rs:
crates/proptest-shim/src/collection.rs:
crates/proptest-shim/src/config.rs:
crates/proptest-shim/src/strategy.rs:
crates/proptest-shim/src/test_runner.rs:
