/root/repo/target/release/deps/reveal_ckks-bca7eb68e8647439.d: crates/ckks/src/lib.rs crates/ckks/src/complex.rs crates/ckks/src/encoder.rs crates/ckks/src/scheme.rs

/root/repo/target/release/deps/libreveal_ckks-bca7eb68e8647439.rlib: crates/ckks/src/lib.rs crates/ckks/src/complex.rs crates/ckks/src/encoder.rs crates/ckks/src/scheme.rs

/root/repo/target/release/deps/libreveal_ckks-bca7eb68e8647439.rmeta: crates/ckks/src/lib.rs crates/ckks/src/complex.rs crates/ckks/src/encoder.rs crates/ckks/src/scheme.rs

crates/ckks/src/lib.rs:
crates/ckks/src/complex.rs:
crates/ckks/src/encoder.rs:
crates/ckks/src/scheme.rs:
