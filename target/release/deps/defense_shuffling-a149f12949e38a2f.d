/root/repo/target/release/deps/defense_shuffling-a149f12949e38a2f.d: crates/bench/src/bin/defense_shuffling.rs

/root/repo/target/release/deps/defense_shuffling-a149f12949e38a2f: crates/bench/src/bin/defense_shuffling.rs

crates/bench/src/bin/defense_shuffling.rs:
