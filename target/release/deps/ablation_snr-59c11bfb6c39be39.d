/root/repo/target/release/deps/ablation_snr-59c11bfb6c39be39.d: crates/bench/src/bin/ablation_snr.rs

/root/repo/target/release/deps/ablation_snr-59c11bfb6c39be39: crates/bench/src/bin/ablation_snr.rs

crates/bench/src/bin/ablation_snr.rs:
