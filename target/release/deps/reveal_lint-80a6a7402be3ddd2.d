/root/repo/target/release/deps/reveal_lint-80a6a7402be3ddd2.d: crates/lint/src/lib.rs crates/lint/src/analysis.rs crates/lint/src/report.rs crates/lint/src/taint.rs

/root/repo/target/release/deps/libreveal_lint-80a6a7402be3ddd2.rlib: crates/lint/src/lib.rs crates/lint/src/analysis.rs crates/lint/src/report.rs crates/lint/src/taint.rs

/root/repo/target/release/deps/libreveal_lint-80a6a7402be3ddd2.rmeta: crates/lint/src/lib.rs crates/lint/src/analysis.rs crates/lint/src/report.rs crates/lint/src/taint.rs

crates/lint/src/lib.rs:
crates/lint/src/analysis.rs:
crates/lint/src/report.rs:
crates/lint/src/taint.rs:
