/root/repo/target/release/deps/ablation_poi-8ab6f0d927c041be.d: crates/bench/src/bin/ablation_poi.rs

/root/repo/target/release/deps/ablation_poi-8ab6f0d927c041be: crates/bench/src/bin/ablation_poi.rs

crates/bench/src/bin/ablation_poi.rs:
