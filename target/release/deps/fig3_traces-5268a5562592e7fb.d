/root/repo/target/release/deps/fig3_traces-5268a5562592e7fb.d: crates/bench/src/bin/fig3_traces.rs

/root/repo/target/release/deps/fig3_traces-5268a5562592e7fb: crates/bench/src/bin/fig3_traces.rs

crates/bench/src/bin/fig3_traces.rs:
