/root/repo/target/release/deps/reveal_lint-a9c7bd25f02110f3.d: crates/lint/src/main.rs

/root/repo/target/release/deps/reveal_lint-a9c7bd25f02110f3: crates/lint/src/main.rs

crates/lint/src/main.rs:
