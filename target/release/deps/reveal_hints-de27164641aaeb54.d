/root/repo/target/release/deps/reveal_hints-de27164641aaeb54.d: crates/hints/src/lib.rs crates/hints/src/dbdd.rs crates/hints/src/delta.rs crates/hints/src/posterior.rs

/root/repo/target/release/deps/libreveal_hints-de27164641aaeb54.rlib: crates/hints/src/lib.rs crates/hints/src/dbdd.rs crates/hints/src/delta.rs crates/hints/src/posterior.rs

/root/repo/target/release/deps/libreveal_hints-de27164641aaeb54.rmeta: crates/hints/src/lib.rs crates/hints/src/dbdd.rs crates/hints/src/delta.rs crates/hints/src/posterior.rs

crates/hints/src/lib.rs:
crates/hints/src/dbdd.rs:
crates/hints/src/delta.rs:
crates/hints/src/posterior.rs:
