/root/repo/target/release/deps/ckks_attack-efc270be9f9f22a3.d: crates/bench/src/bin/ckks_attack.rs

/root/repo/target/release/deps/ckks_attack-efc270be9f9f22a3: crates/bench/src/bin/ckks_attack.rs

crates/bench/src/bin/ckks_attack.rs:
