/root/repo/target/release/deps/tvla_assessment-2ee9d2761212cdb6.d: crates/bench/src/bin/tvla_assessment.rs

/root/repo/target/release/deps/tvla_assessment-2ee9d2761212cdb6: crates/bench/src/bin/tvla_assessment.rs

crates/bench/src/bin/tvla_assessment.rs:
