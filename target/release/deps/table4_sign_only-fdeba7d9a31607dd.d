/root/repo/target/release/deps/table4_sign_only-fdeba7d9a31607dd.d: crates/bench/src/bin/table4_sign_only.rs

/root/repo/target/release/deps/table4_sign_only-fdeba7d9a31607dd: crates/bench/src/bin/table4_sign_only.rs

crates/bench/src/bin/table4_sign_only.rs:
