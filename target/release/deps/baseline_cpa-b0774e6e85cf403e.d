/root/repo/target/release/deps/baseline_cpa-b0774e6e85cf403e.d: crates/bench/src/bin/baseline_cpa.rs

/root/repo/target/release/deps/baseline_cpa-b0774e6e85cf403e: crates/bench/src/bin/baseline_cpa.rs

crates/bench/src/bin/baseline_cpa.rs:
