/root/repo/target/release/deps/reveal_template-155f661709b5c2f0.d: crates/template/src/lib.rs crates/template/src/confusion.rs crates/template/src/lda.rs crates/template/src/matrix.rs crates/template/src/scores.rs crates/template/src/template.rs

/root/repo/target/release/deps/libreveal_template-155f661709b5c2f0.rlib: crates/template/src/lib.rs crates/template/src/confusion.rs crates/template/src/lda.rs crates/template/src/matrix.rs crates/template/src/scores.rs crates/template/src/template.rs

/root/repo/target/release/deps/libreveal_template-155f661709b5c2f0.rmeta: crates/template/src/lib.rs crates/template/src/confusion.rs crates/template/src/lda.rs crates/template/src/matrix.rs crates/template/src/scores.rs crates/template/src/template.rs

crates/template/src/lib.rs:
crates/template/src/confusion.rs:
crates/template/src/lda.rs:
crates/template/src/matrix.rs:
crates/template/src/scores.rs:
crates/template/src/template.rs:
