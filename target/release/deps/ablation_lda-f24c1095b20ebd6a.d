/root/repo/target/release/deps/ablation_lda-f24c1095b20ebd6a.d: crates/bench/src/bin/ablation_lda.rs

/root/repo/target/release/deps/ablation_lda-f24c1095b20ebd6a: crates/bench/src/bin/ablation_lda.rs

crates/bench/src/bin/ablation_lda.rs:
