/root/repo/target/release/deps/ablation_profiling_size-b4b05a1e778d94ec.d: crates/bench/src/bin/ablation_profiling_size.rs

/root/repo/target/release/deps/ablation_profiling_size-b4b05a1e778d94ec: crates/bench/src/bin/ablation_profiling_size.rs

crates/bench/src/bin/ablation_profiling_size.rs:
