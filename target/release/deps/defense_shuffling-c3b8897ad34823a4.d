/root/repo/target/release/deps/defense_shuffling-c3b8897ad34823a4.d: crates/bench/src/bin/defense_shuffling.rs

/root/repo/target/release/deps/defense_shuffling-c3b8897ad34823a4: crates/bench/src/bin/defense_shuffling.rs

crates/bench/src/bin/defense_shuffling.rs:
