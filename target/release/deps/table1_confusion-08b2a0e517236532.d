/root/repo/target/release/deps/table1_confusion-08b2a0e517236532.d: crates/bench/src/bin/table1_confusion.rs

/root/repo/target/release/deps/table1_confusion-08b2a0e517236532: crates/bench/src/bin/table1_confusion.rs

crates/bench/src/bin/table1_confusion.rs:
