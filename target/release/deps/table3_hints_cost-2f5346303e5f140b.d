/root/repo/target/release/deps/table3_hints_cost-2f5346303e5f140b.d: crates/bench/src/bin/table3_hints_cost.rs

/root/repo/target/release/deps/table3_hints_cost-2f5346303e5f140b: crates/bench/src/bin/table3_hints_cost.rs

crates/bench/src/bin/table3_hints_cost.rs:
