/root/repo/target/release/deps/defense_sampler_variants-e8e5d90bcf46cae1.d: crates/bench/src/bin/defense_sampler_variants.rs

/root/repo/target/release/deps/defense_sampler_variants-e8e5d90bcf46cae1: crates/bench/src/bin/defense_sampler_variants.rs

crates/bench/src/bin/defense_sampler_variants.rs:
