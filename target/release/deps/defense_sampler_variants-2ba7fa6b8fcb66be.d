/root/repo/target/release/deps/defense_sampler_variants-2ba7fa6b8fcb66be.d: crates/bench/src/bin/defense_sampler_variants.rs

/root/repo/target/release/deps/defense_sampler_variants-2ba7fa6b8fcb66be: crates/bench/src/bin/defense_sampler_variants.rs

crates/bench/src/bin/defense_sampler_variants.rs:
