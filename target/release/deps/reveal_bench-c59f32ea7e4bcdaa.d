/root/repo/target/release/deps/reveal_bench-c59f32ea7e4bcdaa.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libreveal_bench-c59f32ea7e4bcdaa.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libreveal_bench-c59f32ea7e4bcdaa.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
