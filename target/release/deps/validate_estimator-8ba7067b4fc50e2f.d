/root/repo/target/release/deps/validate_estimator-8ba7067b4fc50e2f.d: crates/bench/src/bin/validate_estimator.rs

/root/repo/target/release/deps/validate_estimator-8ba7067b4fc50e2f: crates/bench/src/bin/validate_estimator.rs

crates/bench/src/bin/validate_estimator.rs:
