/root/repo/target/release/deps/end_to_end_recovery-c9c6df0e5f1ac928.d: crates/bench/src/bin/end_to_end_recovery.rs

/root/repo/target/release/deps/end_to_end_recovery-c9c6df0e5f1ac928: crates/bench/src/bin/end_to_end_recovery.rs

crates/bench/src/bin/end_to_end_recovery.rs:
