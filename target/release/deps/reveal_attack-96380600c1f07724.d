/root/repo/target/release/deps/reveal_attack-96380600c1f07724.d: crates/attack/src/lib.rs crates/attack/src/config.rs crates/attack/src/defense.rs crates/attack/src/device.rs crates/attack/src/profile.rs crates/attack/src/recover.rs crates/attack/src/report.rs

/root/repo/target/release/deps/libreveal_attack-96380600c1f07724.rlib: crates/attack/src/lib.rs crates/attack/src/config.rs crates/attack/src/defense.rs crates/attack/src/device.rs crates/attack/src/profile.rs crates/attack/src/recover.rs crates/attack/src/report.rs

/root/repo/target/release/deps/libreveal_attack-96380600c1f07724.rmeta: crates/attack/src/lib.rs crates/attack/src/config.rs crates/attack/src/defense.rs crates/attack/src/device.rs crates/attack/src/profile.rs crates/attack/src/recover.rs crates/attack/src/report.rs

crates/attack/src/lib.rs:
crates/attack/src/config.rs:
crates/attack/src/defense.rs:
crates/attack/src/device.rs:
crates/attack/src/profile.rs:
crates/attack/src/recover.rs:
crates/attack/src/report.rs:
