/root/repo/target/release/examples/quickstart-80d2e106773561ed.d: crates/attack/../../examples/quickstart.rs

/root/repo/target/release/examples/quickstart-80d2e106773561ed: crates/attack/../../examples/quickstart.rs

crates/attack/../../examples/quickstart.rs:
