/root/repo/target/release/examples/quickstart-7ecf289ce501e95d.d: crates/attack/../../examples/quickstart.rs

/root/repo/target/release/examples/quickstart-7ecf289ce501e95d: crates/attack/../../examples/quickstart.rs

crates/attack/../../examples/quickstart.rs:
