/root/repo/target/release/examples/quickstart-e29badcab752cfaf.d: crates/attack/../../examples/quickstart.rs

/root/repo/target/release/examples/quickstart-e29badcab752cfaf: crates/attack/../../examples/quickstart.rs

crates/attack/../../examples/quickstart.rs:
