/root/repo/target/release/libreveal_hints.rlib: /root/repo/crates/hints/src/dbdd.rs /root/repo/crates/hints/src/delta.rs /root/repo/crates/hints/src/lib.rs /root/repo/crates/hints/src/posterior.rs
