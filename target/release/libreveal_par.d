/root/repo/target/release/libreveal_par.rlib: /root/repo/crates/par/src/lib.rs
