/root/repo/target/debug/deps/reveal_bench-5334708e0f8d5ff7.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/reveal_bench-5334708e0f8d5ff7: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
