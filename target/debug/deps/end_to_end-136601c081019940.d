/root/repo/target/debug/deps/end_to_end-136601c081019940.d: crates/attack/../../tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-136601c081019940: crates/attack/../../tests/end_to_end.rs

crates/attack/../../tests/end_to_end.rs:
