/root/repo/target/debug/deps/security_tables-ee83411c11f9da34.d: crates/attack/../../tests/security_tables.rs

/root/repo/target/debug/deps/security_tables-ee83411c11f9da34: crates/attack/../../tests/security_tables.rs

crates/attack/../../tests/security_tables.rs:
