/root/repo/target/debug/deps/defense_sampler_variants-86206f5e10324137.d: crates/bench/src/bin/defense_sampler_variants.rs

/root/repo/target/debug/deps/defense_sampler_variants-86206f5e10324137: crates/bench/src/bin/defense_sampler_variants.rs

crates/bench/src/bin/defense_sampler_variants.rs:
