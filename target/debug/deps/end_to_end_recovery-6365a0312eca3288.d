/root/repo/target/debug/deps/end_to_end_recovery-6365a0312eca3288.d: crates/bench/src/bin/end_to_end_recovery.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end_recovery-6365a0312eca3288.rmeta: crates/bench/src/bin/end_to_end_recovery.rs Cargo.toml

crates/bench/src/bin/end_to_end_recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
