/root/repo/target/debug/deps/reveal_bench-ab03665ea2f979fc.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libreveal_bench-ab03665ea2f979fc.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libreveal_bench-ab03665ea2f979fc.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
