/root/repo/target/debug/deps/ablation_profiling_size-8c912a8e6b86b70f.d: crates/bench/src/bin/ablation_profiling_size.rs

/root/repo/target/debug/deps/ablation_profiling_size-8c912a8e6b86b70f: crates/bench/src/bin/ablation_profiling_size.rs

crates/bench/src/bin/ablation_profiling_size.rs:
