/root/repo/target/debug/deps/reveal_bench-ebef8a776d6bdc43.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libreveal_bench-ebef8a776d6bdc43.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libreveal_bench-ebef8a776d6bdc43.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
