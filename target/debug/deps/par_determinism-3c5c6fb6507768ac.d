/root/repo/target/debug/deps/par_determinism-3c5c6fb6507768ac.d: crates/attack/../../tests/par_determinism.rs

/root/repo/target/debug/deps/par_determinism-3c5c6fb6507768ac: crates/attack/../../tests/par_determinism.rs

crates/attack/../../tests/par_determinism.rs:
