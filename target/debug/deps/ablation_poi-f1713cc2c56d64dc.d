/root/repo/target/debug/deps/ablation_poi-f1713cc2c56d64dc.d: crates/bench/src/bin/ablation_poi.rs Cargo.toml

/root/repo/target/debug/deps/libablation_poi-f1713cc2c56d64dc.rmeta: crates/bench/src/bin/ablation_poi.rs Cargo.toml

crates/bench/src/bin/ablation_poi.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
