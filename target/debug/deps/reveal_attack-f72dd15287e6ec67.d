/root/repo/target/debug/deps/reveal_attack-f72dd15287e6ec67.d: crates/attack/src/lib.rs crates/attack/src/config.rs crates/attack/src/defense.rs crates/attack/src/device.rs crates/attack/src/profile.rs crates/attack/src/recover.rs crates/attack/src/report.rs crates/attack/src/robust.rs

/root/repo/target/debug/deps/reveal_attack-f72dd15287e6ec67: crates/attack/src/lib.rs crates/attack/src/config.rs crates/attack/src/defense.rs crates/attack/src/device.rs crates/attack/src/profile.rs crates/attack/src/recover.rs crates/attack/src/report.rs crates/attack/src/robust.rs

crates/attack/src/lib.rs:
crates/attack/src/config.rs:
crates/attack/src/defense.rs:
crates/attack/src/device.rs:
crates/attack/src/profile.rs:
crates/attack/src/recover.rs:
crates/attack/src/report.rs:
crates/attack/src/robust.rs:
