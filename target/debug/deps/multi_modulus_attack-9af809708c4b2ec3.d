/root/repo/target/debug/deps/multi_modulus_attack-9af809708c4b2ec3.d: crates/bench/src/bin/multi_modulus_attack.rs

/root/repo/target/debug/deps/multi_modulus_attack-9af809708c4b2ec3: crates/bench/src/bin/multi_modulus_attack.rs

crates/bench/src/bin/multi_modulus_attack.rs:
