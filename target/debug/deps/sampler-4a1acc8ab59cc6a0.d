/root/repo/target/debug/deps/sampler-4a1acc8ab59cc6a0.d: crates/bench/benches/sampler.rs Cargo.toml

/root/repo/target/debug/deps/libsampler-4a1acc8ab59cc6a0.rmeta: crates/bench/benches/sampler.rs Cargo.toml

crates/bench/benches/sampler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
