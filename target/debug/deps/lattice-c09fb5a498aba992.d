/root/repo/target/debug/deps/lattice-c09fb5a498aba992.d: crates/bench/benches/lattice.rs Cargo.toml

/root/repo/target/debug/deps/liblattice-c09fb5a498aba992.rmeta: crates/bench/benches/lattice.rs Cargo.toml

crates/bench/benches/lattice.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
