/root/repo/target/debug/deps/bench_pipeline-8cf1d6217281112e.d: crates/bench/src/bin/bench_pipeline.rs

/root/repo/target/debug/deps/bench_pipeline-8cf1d6217281112e: crates/bench/src/bin/bench_pipeline.rs

crates/bench/src/bin/bench_pipeline.rs:
