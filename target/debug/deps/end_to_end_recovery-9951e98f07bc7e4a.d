/root/repo/target/debug/deps/end_to_end_recovery-9951e98f07bc7e4a.d: crates/bench/src/bin/end_to_end_recovery.rs

/root/repo/target/debug/deps/end_to_end_recovery-9951e98f07bc7e4a: crates/bench/src/bin/end_to_end_recovery.rs

crates/bench/src/bin/end_to_end_recovery.rs:
