/root/repo/target/debug/deps/reveal_rv32-1f69db3062390c80.d: crates/rv32/src/lib.rs crates/rv32/src/asm.rs crates/rv32/src/cfg.rs crates/rv32/src/cpu.rs crates/rv32/src/disasm.rs crates/rv32/src/isa.rs crates/rv32/src/kernel.rs crates/rv32/src/power.rs

/root/repo/target/debug/deps/libreveal_rv32-1f69db3062390c80.rlib: crates/rv32/src/lib.rs crates/rv32/src/asm.rs crates/rv32/src/cfg.rs crates/rv32/src/cpu.rs crates/rv32/src/disasm.rs crates/rv32/src/isa.rs crates/rv32/src/kernel.rs crates/rv32/src/power.rs

/root/repo/target/debug/deps/libreveal_rv32-1f69db3062390c80.rmeta: crates/rv32/src/lib.rs crates/rv32/src/asm.rs crates/rv32/src/cfg.rs crates/rv32/src/cpu.rs crates/rv32/src/disasm.rs crates/rv32/src/isa.rs crates/rv32/src/kernel.rs crates/rv32/src/power.rs

crates/rv32/src/lib.rs:
crates/rv32/src/asm.rs:
crates/rv32/src/cfg.rs:
crates/rv32/src/cpu.rs:
crates/rv32/src/disasm.rs:
crates/rv32/src/isa.rs:
crates/rv32/src/kernel.rs:
crates/rv32/src/power.rs:
