/root/repo/target/debug/deps/par_determinism-9fef7da294f2d8cd.d: crates/attack/../../tests/par_determinism.rs Cargo.toml

/root/repo/target/debug/deps/libpar_determinism-9fef7da294f2d8cd.rmeta: crates/attack/../../tests/par_determinism.rs Cargo.toml

crates/attack/../../tests/par_determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
