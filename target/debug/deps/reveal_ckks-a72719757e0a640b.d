/root/repo/target/debug/deps/reveal_ckks-a72719757e0a640b.d: crates/ckks/src/lib.rs crates/ckks/src/complex.rs crates/ckks/src/encoder.rs crates/ckks/src/scheme.rs

/root/repo/target/debug/deps/libreveal_ckks-a72719757e0a640b.rlib: crates/ckks/src/lib.rs crates/ckks/src/complex.rs crates/ckks/src/encoder.rs crates/ckks/src/scheme.rs

/root/repo/target/debug/deps/libreveal_ckks-a72719757e0a640b.rmeta: crates/ckks/src/lib.rs crates/ckks/src/complex.rs crates/ckks/src/encoder.rs crates/ckks/src/scheme.rs

crates/ckks/src/lib.rs:
crates/ckks/src/complex.rs:
crates/ckks/src/encoder.rs:
crates/ckks/src/scheme.rs:
