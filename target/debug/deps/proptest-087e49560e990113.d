/root/repo/target/debug/deps/proptest-087e49560e990113.d: crates/proptest-shim/src/lib.rs crates/proptest-shim/src/arbitrary.rs crates/proptest-shim/src/collection.rs crates/proptest-shim/src/config.rs crates/proptest-shim/src/strategy.rs crates/proptest-shim/src/test_runner.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-087e49560e990113.rmeta: crates/proptest-shim/src/lib.rs crates/proptest-shim/src/arbitrary.rs crates/proptest-shim/src/collection.rs crates/proptest-shim/src/config.rs crates/proptest-shim/src/strategy.rs crates/proptest-shim/src/test_runner.rs Cargo.toml

crates/proptest-shim/src/lib.rs:
crates/proptest-shim/src/arbitrary.rs:
crates/proptest-shim/src/collection.rs:
crates/proptest-shim/src/config.rs:
crates/proptest-shim/src/strategy.rs:
crates/proptest-shim/src/test_runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
