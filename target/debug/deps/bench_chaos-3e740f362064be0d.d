/root/repo/target/debug/deps/bench_chaos-3e740f362064be0d.d: crates/bench/src/bin/bench_chaos.rs Cargo.toml

/root/repo/target/debug/deps/libbench_chaos-3e740f362064be0d.rmeta: crates/bench/src/bin/bench_chaos.rs Cargo.toml

crates/bench/src/bin/bench_chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
