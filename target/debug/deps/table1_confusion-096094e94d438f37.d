/root/repo/target/debug/deps/table1_confusion-096094e94d438f37.d: crates/bench/src/bin/table1_confusion.rs

/root/repo/target/debug/deps/table1_confusion-096094e94d438f37: crates/bench/src/bin/table1_confusion.rs

crates/bench/src/bin/table1_confusion.rs:
