/root/repo/target/debug/deps/validate_estimator-d5a958aa1287f809.d: crates/bench/src/bin/validate_estimator.rs Cargo.toml

/root/repo/target/debug/deps/libvalidate_estimator-d5a958aa1287f809.rmeta: crates/bench/src/bin/validate_estimator.rs Cargo.toml

crates/bench/src/bin/validate_estimator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
