/root/repo/target/debug/deps/security_tables-9268b7c9ab5de3e1.d: crates/attack/../../tests/security_tables.rs

/root/repo/target/debug/deps/security_tables-9268b7c9ab5de3e1: crates/attack/../../tests/security_tables.rs

crates/attack/../../tests/security_tables.rs:
