/root/repo/target/debug/deps/keygen_attack-4db1a5eccf30d8a4.d: crates/bench/src/bin/keygen_attack.rs Cargo.toml

/root/repo/target/debug/deps/libkeygen_attack-4db1a5eccf30d8a4.rmeta: crates/bench/src/bin/keygen_attack.rs Cargo.toml

crates/bench/src/bin/keygen_attack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
