/root/repo/target/debug/deps/table3_hints_cost-bde8dbabc693e3ae.d: crates/bench/src/bin/table3_hints_cost.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_hints_cost-bde8dbabc693e3ae.rmeta: crates/bench/src/bin/table3_hints_cost.rs Cargo.toml

crates/bench/src/bin/table3_hints_cost.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
