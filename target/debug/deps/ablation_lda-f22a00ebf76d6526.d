/root/repo/target/debug/deps/ablation_lda-f22a00ebf76d6526.d: crates/bench/src/bin/ablation_lda.rs

/root/repo/target/debug/deps/ablation_lda-f22a00ebf76d6526: crates/bench/src/bin/ablation_lda.rs

crates/bench/src/bin/ablation_lda.rs:
