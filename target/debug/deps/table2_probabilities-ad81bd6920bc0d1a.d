/root/repo/target/debug/deps/table2_probabilities-ad81bd6920bc0d1a.d: crates/bench/src/bin/table2_probabilities.rs

/root/repo/target/debug/deps/table2_probabilities-ad81bd6920bc0d1a: crates/bench/src/bin/table2_probabilities.rs

crates/bench/src/bin/table2_probabilities.rs:
