/root/repo/target/debug/deps/reveal_bfv-45e0f260965f37b7.d: crates/bfv/src/lib.rs crates/bfv/src/context.rs crates/bfv/src/decryptor.rs crates/bfv/src/encoder.rs crates/bfv/src/encryptor.rs crates/bfv/src/evaluator.rs crates/bfv/src/keys.rs crates/bfv/src/params.rs crates/bfv/src/sampler.rs crates/bfv/src/serialization.rs crates/bfv/src/variants.rs Cargo.toml

/root/repo/target/debug/deps/libreveal_bfv-45e0f260965f37b7.rmeta: crates/bfv/src/lib.rs crates/bfv/src/context.rs crates/bfv/src/decryptor.rs crates/bfv/src/encoder.rs crates/bfv/src/encryptor.rs crates/bfv/src/evaluator.rs crates/bfv/src/keys.rs crates/bfv/src/params.rs crates/bfv/src/sampler.rs crates/bfv/src/serialization.rs crates/bfv/src/variants.rs Cargo.toml

crates/bfv/src/lib.rs:
crates/bfv/src/context.rs:
crates/bfv/src/decryptor.rs:
crates/bfv/src/encoder.rs:
crates/bfv/src/encryptor.rs:
crates/bfv/src/evaluator.rs:
crates/bfv/src/keys.rs:
crates/bfv/src/params.rs:
crates/bfv/src/sampler.rs:
crates/bfv/src/serialization.rs:
crates/bfv/src/variants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
