/root/repo/target/debug/deps/pipeline-8386849c6616aaee.d: crates/attack/../../tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-8386849c6616aaee: crates/attack/../../tests/pipeline.rs

crates/attack/../../tests/pipeline.rs:
