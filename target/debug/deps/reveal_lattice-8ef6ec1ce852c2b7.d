/root/repo/target/debug/deps/reveal_lattice-8ef6ec1ce852c2b7.d: crates/lattice/src/lib.rs crates/lattice/src/bkz.rs crates/lattice/src/embedding.rs crates/lattice/src/enumeration.rs crates/lattice/src/gsa.rs crates/lattice/src/gso.rs crates/lattice/src/lll.rs Cargo.toml

/root/repo/target/debug/deps/libreveal_lattice-8ef6ec1ce852c2b7.rmeta: crates/lattice/src/lib.rs crates/lattice/src/bkz.rs crates/lattice/src/embedding.rs crates/lattice/src/enumeration.rs crates/lattice/src/gsa.rs crates/lattice/src/gso.rs crates/lattice/src/lll.rs Cargo.toml

crates/lattice/src/lib.rs:
crates/lattice/src/bkz.rs:
crates/lattice/src/embedding.rs:
crates/lattice/src/enumeration.rs:
crates/lattice/src/gsa.rs:
crates/lattice/src/gso.rs:
crates/lattice/src/lll.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
