/root/repo/target/debug/deps/table4_sign_only-87fc208225f6ae93.d: crates/bench/src/bin/table4_sign_only.rs

/root/repo/target/debug/deps/table4_sign_only-87fc208225f6ae93: crates/bench/src/bin/table4_sign_only.rs

crates/bench/src/bin/table4_sign_only.rs:
