/root/repo/target/debug/deps/end_to_end-adad85cd4c7af972.d: crates/attack/../../tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-adad85cd4c7af972: crates/attack/../../tests/end_to_end.rs

crates/attack/../../tests/end_to_end.rs:
