/root/repo/target/debug/deps/ntt-76875b912a298564.d: crates/bench/benches/ntt.rs Cargo.toml

/root/repo/target/debug/deps/libntt-76875b912a298564.rmeta: crates/bench/benches/ntt.rs Cargo.toml

crates/bench/benches/ntt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
