/root/repo/target/debug/deps/defense_shuffling-d5c836dcafc36ecd.d: crates/bench/src/bin/defense_shuffling.rs Cargo.toml

/root/repo/target/debug/deps/libdefense_shuffling-d5c836dcafc36ecd.rmeta: crates/bench/src/bin/defense_shuffling.rs Cargo.toml

crates/bench/src/bin/defense_shuffling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
