/root/repo/target/debug/deps/baseline_cpa-3df72b6e93d36f1a.d: crates/bench/src/bin/baseline_cpa.rs

/root/repo/target/debug/deps/baseline_cpa-3df72b6e93d36f1a: crates/bench/src/bin/baseline_cpa.rs

crates/bench/src/bin/baseline_cpa.rs:
