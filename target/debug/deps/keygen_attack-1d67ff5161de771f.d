/root/repo/target/debug/deps/keygen_attack-1d67ff5161de771f.d: crates/bench/src/bin/keygen_attack.rs

/root/repo/target/debug/deps/keygen_attack-1d67ff5161de771f: crates/bench/src/bin/keygen_attack.rs

crates/bench/src/bin/keygen_attack.rs:
