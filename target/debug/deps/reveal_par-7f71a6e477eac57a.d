/root/repo/target/debug/deps/reveal_par-7f71a6e477eac57a.d: crates/par/src/lib.rs

/root/repo/target/debug/deps/reveal_par-7f71a6e477eac57a: crates/par/src/lib.rs

crates/par/src/lib.rs:
