/root/repo/target/debug/deps/validate_estimator-69ec14f0f4188743.d: crates/bench/src/bin/validate_estimator.rs

/root/repo/target/debug/deps/validate_estimator-69ec14f0f4188743: crates/bench/src/bin/validate_estimator.rs

crates/bench/src/bin/validate_estimator.rs:
