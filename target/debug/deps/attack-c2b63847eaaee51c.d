/root/repo/target/debug/deps/attack-c2b63847eaaee51c.d: crates/bench/benches/attack.rs Cargo.toml

/root/repo/target/debug/deps/libattack-c2b63847eaaee51c.rmeta: crates/bench/benches/attack.rs Cargo.toml

crates/bench/benches/attack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
