/root/repo/target/debug/deps/ablation_profiling_size-dd5dde46370e726a.d: crates/bench/src/bin/ablation_profiling_size.rs Cargo.toml

/root/repo/target/debug/deps/libablation_profiling_size-dd5dde46370e726a.rmeta: crates/bench/src/bin/ablation_profiling_size.rs Cargo.toml

crates/bench/src/bin/ablation_profiling_size.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
