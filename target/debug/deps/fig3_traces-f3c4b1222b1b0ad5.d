/root/repo/target/debug/deps/fig3_traces-f3c4b1222b1b0ad5.d: crates/bench/src/bin/fig3_traces.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_traces-f3c4b1222b1b0ad5.rmeta: crates/bench/src/bin/fig3_traces.rs Cargo.toml

crates/bench/src/bin/fig3_traces.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
