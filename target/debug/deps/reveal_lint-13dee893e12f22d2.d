/root/repo/target/debug/deps/reveal_lint-13dee893e12f22d2.d: crates/lint/src/main.rs

/root/repo/target/debug/deps/reveal_lint-13dee893e12f22d2: crates/lint/src/main.rs

crates/lint/src/main.rs:
