/root/repo/target/debug/deps/end_to_end-90a2966456f6207a.d: crates/attack/../../tests/end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end-90a2966456f6207a.rmeta: crates/attack/../../tests/end_to_end.rs Cargo.toml

crates/attack/../../tests/end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
