/root/repo/target/debug/deps/reveal_par-b79f1da6ba3a2864.d: crates/par/src/lib.rs

/root/repo/target/debug/deps/libreveal_par-b79f1da6ba3a2864.rlib: crates/par/src/lib.rs

/root/repo/target/debug/deps/libreveal_par-b79f1da6ba3a2864.rmeta: crates/par/src/lib.rs

crates/par/src/lib.rs:
