/root/repo/target/debug/deps/reveal_lint-5953722089babcca.d: crates/lint/src/main.rs

/root/repo/target/debug/deps/reveal_lint-5953722089babcca: crates/lint/src/main.rs

crates/lint/src/main.rs:
