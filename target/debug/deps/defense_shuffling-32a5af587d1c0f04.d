/root/repo/target/debug/deps/defense_shuffling-32a5af587d1c0f04.d: crates/bench/src/bin/defense_shuffling.rs Cargo.toml

/root/repo/target/debug/deps/libdefense_shuffling-32a5af587d1c0f04.rmeta: crates/bench/src/bin/defense_shuffling.rs Cargo.toml

crates/bench/src/bin/defense_shuffling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
