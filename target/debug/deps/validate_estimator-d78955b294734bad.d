/root/repo/target/debug/deps/validate_estimator-d78955b294734bad.d: crates/bench/src/bin/validate_estimator.rs Cargo.toml

/root/repo/target/debug/deps/libvalidate_estimator-d78955b294734bad.rmeta: crates/bench/src/bin/validate_estimator.rs Cargo.toml

crates/bench/src/bin/validate_estimator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
