/root/repo/target/debug/deps/table4_sign_only-996ca5c3c859830b.d: crates/bench/src/bin/table4_sign_only.rs

/root/repo/target/debug/deps/table4_sign_only-996ca5c3c859830b: crates/bench/src/bin/table4_sign_only.rs

crates/bench/src/bin/table4_sign_only.rs:
