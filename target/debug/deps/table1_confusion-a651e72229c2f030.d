/root/repo/target/debug/deps/table1_confusion-a651e72229c2f030.d: crates/bench/src/bin/table1_confusion.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_confusion-a651e72229c2f030.rmeta: crates/bench/src/bin/table1_confusion.rs Cargo.toml

crates/bench/src/bin/table1_confusion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
