/root/repo/target/debug/deps/bench_pipeline-17a1a40facc56d24.d: crates/bench/src/bin/bench_pipeline.rs

/root/repo/target/debug/deps/bench_pipeline-17a1a40facc56d24: crates/bench/src/bin/bench_pipeline.rs

crates/bench/src/bin/bench_pipeline.rs:
