/root/repo/target/debug/deps/end_to_end-8fcf86d2b1844911.d: crates/attack/../../tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-8fcf86d2b1844911: crates/attack/../../tests/end_to_end.rs

crates/attack/../../tests/end_to_end.rs:
