/root/repo/target/debug/deps/ablation_profiling_size-f7ca3ea0f7a621a8.d: crates/bench/src/bin/ablation_profiling_size.rs

/root/repo/target/debug/deps/ablation_profiling_size-f7ca3ea0f7a621a8: crates/bench/src/bin/ablation_profiling_size.rs

crates/bench/src/bin/ablation_profiling_size.rs:
