/root/repo/target/debug/deps/reveal_hints-ab76cde0dd4b8e6a.d: crates/hints/src/lib.rs crates/hints/src/dbdd.rs crates/hints/src/delta.rs crates/hints/src/posterior.rs

/root/repo/target/debug/deps/libreveal_hints-ab76cde0dd4b8e6a.rlib: crates/hints/src/lib.rs crates/hints/src/dbdd.rs crates/hints/src/delta.rs crates/hints/src/posterior.rs

/root/repo/target/debug/deps/libreveal_hints-ab76cde0dd4b8e6a.rmeta: crates/hints/src/lib.rs crates/hints/src/dbdd.rs crates/hints/src/delta.rs crates/hints/src/posterior.rs

crates/hints/src/lib.rs:
crates/hints/src/dbdd.rs:
crates/hints/src/delta.rs:
crates/hints/src/posterior.rs:
