/root/repo/target/debug/deps/reveal_template-af4a1e62910e3139.d: crates/template/src/lib.rs crates/template/src/confusion.rs crates/template/src/lda.rs crates/template/src/matrix.rs crates/template/src/scores.rs crates/template/src/template.rs Cargo.toml

/root/repo/target/debug/deps/libreveal_template-af4a1e62910e3139.rmeta: crates/template/src/lib.rs crates/template/src/confusion.rs crates/template/src/lda.rs crates/template/src/matrix.rs crates/template/src/scores.rs crates/template/src/template.rs Cargo.toml

crates/template/src/lib.rs:
crates/template/src/confusion.rs:
crates/template/src/lda.rs:
crates/template/src/matrix.rs:
crates/template/src/scores.rs:
crates/template/src/template.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
