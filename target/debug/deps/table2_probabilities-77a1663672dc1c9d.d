/root/repo/target/debug/deps/table2_probabilities-77a1663672dc1c9d.d: crates/bench/src/bin/table2_probabilities.rs

/root/repo/target/debug/deps/table2_probabilities-77a1663672dc1c9d: crates/bench/src/bin/table2_probabilities.rs

crates/bench/src/bin/table2_probabilities.rs:
