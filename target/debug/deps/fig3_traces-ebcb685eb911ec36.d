/root/repo/target/debug/deps/fig3_traces-ebcb685eb911ec36.d: crates/bench/src/bin/fig3_traces.rs

/root/repo/target/debug/deps/fig3_traces-ebcb685eb911ec36: crates/bench/src/bin/fig3_traces.rs

crates/bench/src/bin/fig3_traces.rs:
