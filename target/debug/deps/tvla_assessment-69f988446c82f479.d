/root/repo/target/debug/deps/tvla_assessment-69f988446c82f479.d: crates/bench/src/bin/tvla_assessment.rs

/root/repo/target/debug/deps/tvla_assessment-69f988446c82f479: crates/bench/src/bin/tvla_assessment.rs

crates/bench/src/bin/tvla_assessment.rs:
