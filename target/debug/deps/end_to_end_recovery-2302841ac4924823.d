/root/repo/target/debug/deps/end_to_end_recovery-2302841ac4924823.d: crates/bench/src/bin/end_to_end_recovery.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end_recovery-2302841ac4924823.rmeta: crates/bench/src/bin/end_to_end_recovery.rs Cargo.toml

crates/bench/src/bin/end_to_end_recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
