/root/repo/target/debug/deps/reveal_bench-149096724ea0883f.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/reveal_bench-149096724ea0883f: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
