/root/repo/target/debug/deps/ckks_attack-7eed6e50ef35c76c.d: crates/bench/src/bin/ckks_attack.rs

/root/repo/target/debug/deps/ckks_attack-7eed6e50ef35c76c: crates/bench/src/bin/ckks_attack.rs

crates/bench/src/bin/ckks_attack.rs:
