/root/repo/target/debug/deps/table1_confusion-b70614b077f357ca.d: crates/bench/src/bin/table1_confusion.rs

/root/repo/target/debug/deps/table1_confusion-b70614b077f357ca: crates/bench/src/bin/table1_confusion.rs

crates/bench/src/bin/table1_confusion.rs:
