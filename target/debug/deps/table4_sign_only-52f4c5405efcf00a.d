/root/repo/target/debug/deps/table4_sign_only-52f4c5405efcf00a.d: crates/bench/src/bin/table4_sign_only.rs

/root/repo/target/debug/deps/table4_sign_only-52f4c5405efcf00a: crates/bench/src/bin/table4_sign_only.rs

crates/bench/src/bin/table4_sign_only.rs:
