/root/repo/target/debug/deps/ckks_attack-4cc7cf9eb1fb47f4.d: crates/bench/src/bin/ckks_attack.rs

/root/repo/target/debug/deps/ckks_attack-4cc7cf9eb1fb47f4: crates/bench/src/bin/ckks_attack.rs

crates/bench/src/bin/ckks_attack.rs:
