/root/repo/target/debug/deps/ablation_poi-91e9e5db0f39937e.d: crates/bench/src/bin/ablation_poi.rs Cargo.toml

/root/repo/target/debug/deps/libablation_poi-91e9e5db0f39937e.rmeta: crates/bench/src/bin/ablation_poi.rs Cargo.toml

crates/bench/src/bin/ablation_poi.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
