/root/repo/target/debug/deps/reveal_rv32-3a1ef0839779a6b3.d: crates/rv32/src/lib.rs crates/rv32/src/asm.rs crates/rv32/src/cfg.rs crates/rv32/src/cpu.rs crates/rv32/src/disasm.rs crates/rv32/src/isa.rs crates/rv32/src/kernel.rs crates/rv32/src/power.rs

/root/repo/target/debug/deps/reveal_rv32-3a1ef0839779a6b3: crates/rv32/src/lib.rs crates/rv32/src/asm.rs crates/rv32/src/cfg.rs crates/rv32/src/cpu.rs crates/rv32/src/disasm.rs crates/rv32/src/isa.rs crates/rv32/src/kernel.rs crates/rv32/src/power.rs

crates/rv32/src/lib.rs:
crates/rv32/src/asm.rs:
crates/rv32/src/cfg.rs:
crates/rv32/src/cpu.rs:
crates/rv32/src/disasm.rs:
crates/rv32/src/isa.rs:
crates/rv32/src/kernel.rs:
crates/rv32/src/power.rs:
