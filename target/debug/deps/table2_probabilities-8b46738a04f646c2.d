/root/repo/target/debug/deps/table2_probabilities-8b46738a04f646c2.d: crates/bench/src/bin/table2_probabilities.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_probabilities-8b46738a04f646c2.rmeta: crates/bench/src/bin/table2_probabilities.rs Cargo.toml

crates/bench/src/bin/table2_probabilities.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
