/root/repo/target/debug/deps/reveal_template-1528fdf5afef7da3.d: crates/template/src/lib.rs crates/template/src/confusion.rs crates/template/src/lda.rs crates/template/src/matrix.rs crates/template/src/scores.rs crates/template/src/template.rs Cargo.toml

/root/repo/target/debug/deps/libreveal_template-1528fdf5afef7da3.rmeta: crates/template/src/lib.rs crates/template/src/confusion.rs crates/template/src/lda.rs crates/template/src/matrix.rs crates/template/src/scores.rs crates/template/src/template.rs Cargo.toml

crates/template/src/lib.rs:
crates/template/src/confusion.rs:
crates/template/src/lda.rs:
crates/template/src/matrix.rs:
crates/template/src/scores.rs:
crates/template/src/template.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
