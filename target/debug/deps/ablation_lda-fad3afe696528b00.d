/root/repo/target/debug/deps/ablation_lda-fad3afe696528b00.d: crates/bench/src/bin/ablation_lda.rs Cargo.toml

/root/repo/target/debug/deps/libablation_lda-fad3afe696528b00.rmeta: crates/bench/src/bin/ablation_lda.rs Cargo.toml

crates/bench/src/bin/ablation_lda.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
