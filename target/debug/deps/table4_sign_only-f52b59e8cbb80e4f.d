/root/repo/target/debug/deps/table4_sign_only-f52b59e8cbb80e4f.d: crates/bench/src/bin/table4_sign_only.rs Cargo.toml

/root/repo/target/debug/deps/libtable4_sign_only-f52b59e8cbb80e4f.rmeta: crates/bench/src/bin/table4_sign_only.rs Cargo.toml

crates/bench/src/bin/table4_sign_only.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
