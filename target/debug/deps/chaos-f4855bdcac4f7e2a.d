/root/repo/target/debug/deps/chaos-f4855bdcac4f7e2a.d: crates/attack/../../tests/chaos.rs

/root/repo/target/debug/deps/chaos-f4855bdcac4f7e2a: crates/attack/../../tests/chaos.rs

crates/attack/../../tests/chaos.rs:
