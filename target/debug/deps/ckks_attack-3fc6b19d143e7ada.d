/root/repo/target/debug/deps/ckks_attack-3fc6b19d143e7ada.d: crates/bench/src/bin/ckks_attack.rs

/root/repo/target/debug/deps/ckks_attack-3fc6b19d143e7ada: crates/bench/src/bin/ckks_attack.rs

crates/bench/src/bin/ckks_attack.rs:
