/root/repo/target/debug/deps/reveal_lattice-d9baf6e2e604e3ca.d: crates/lattice/src/lib.rs crates/lattice/src/bkz.rs crates/lattice/src/embedding.rs crates/lattice/src/enumeration.rs crates/lattice/src/gsa.rs crates/lattice/src/gso.rs crates/lattice/src/lll.rs Cargo.toml

/root/repo/target/debug/deps/libreveal_lattice-d9baf6e2e604e3ca.rmeta: crates/lattice/src/lib.rs crates/lattice/src/bkz.rs crates/lattice/src/embedding.rs crates/lattice/src/enumeration.rs crates/lattice/src/gsa.rs crates/lattice/src/gso.rs crates/lattice/src/lll.rs Cargo.toml

crates/lattice/src/lib.rs:
crates/lattice/src/bkz.rs:
crates/lattice/src/embedding.rs:
crates/lattice/src/enumeration.rs:
crates/lattice/src/gsa.rs:
crates/lattice/src/gso.rs:
crates/lattice/src/lll.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
