/root/repo/target/debug/deps/pipeline-735af44fcb86469c.d: crates/attack/../../tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-735af44fcb86469c: crates/attack/../../tests/pipeline.rs

crates/attack/../../tests/pipeline.rs:
