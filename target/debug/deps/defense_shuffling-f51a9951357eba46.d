/root/repo/target/debug/deps/defense_shuffling-f51a9951357eba46.d: crates/bench/src/bin/defense_shuffling.rs

/root/repo/target/debug/deps/defense_shuffling-f51a9951357eba46: crates/bench/src/bin/defense_shuffling.rs

crates/bench/src/bin/defense_shuffling.rs:
