/root/repo/target/debug/deps/bench_chaos-da0c2a22b5bdac34.d: crates/bench/src/bin/bench_chaos.rs Cargo.toml

/root/repo/target/debug/deps/libbench_chaos-da0c2a22b5bdac34.rmeta: crates/bench/src/bin/bench_chaos.rs Cargo.toml

crates/bench/src/bin/bench_chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
