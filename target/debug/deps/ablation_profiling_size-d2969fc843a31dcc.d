/root/repo/target/debug/deps/ablation_profiling_size-d2969fc843a31dcc.d: crates/bench/src/bin/ablation_profiling_size.rs

/root/repo/target/debug/deps/ablation_profiling_size-d2969fc843a31dcc: crates/bench/src/bin/ablation_profiling_size.rs

crates/bench/src/bin/ablation_profiling_size.rs:
