/root/repo/target/debug/deps/pipeline-e52d672b19b9e7ff.d: crates/attack/../../tests/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-e52d672b19b9e7ff.rmeta: crates/attack/../../tests/pipeline.rs Cargo.toml

crates/attack/../../tests/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
