/root/repo/target/debug/deps/sampler-1a720568641ba146.d: crates/bench/benches/sampler.rs Cargo.toml

/root/repo/target/debug/deps/libsampler-1a720568641ba146.rmeta: crates/bench/benches/sampler.rs Cargo.toml

crates/bench/benches/sampler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
