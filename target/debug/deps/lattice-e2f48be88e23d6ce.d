/root/repo/target/debug/deps/lattice-e2f48be88e23d6ce.d: crates/bench/benches/lattice.rs Cargo.toml

/root/repo/target/debug/deps/liblattice-e2f48be88e23d6ce.rmeta: crates/bench/benches/lattice.rs Cargo.toml

crates/bench/benches/lattice.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
