/root/repo/target/debug/deps/reveal_math-813cea9508f14830.d: crates/math/src/lib.rs crates/math/src/arith.rs crates/math/src/bigint.rs crates/math/src/modulus.rs crates/math/src/ntt.rs crates/math/src/poly.rs crates/math/src/primes.rs crates/math/src/rns.rs

/root/repo/target/debug/deps/reveal_math-813cea9508f14830: crates/math/src/lib.rs crates/math/src/arith.rs crates/math/src/bigint.rs crates/math/src/modulus.rs crates/math/src/ntt.rs crates/math/src/poly.rs crates/math/src/primes.rs crates/math/src/rns.rs

crates/math/src/lib.rs:
crates/math/src/arith.rs:
crates/math/src/bigint.rs:
crates/math/src/modulus.rs:
crates/math/src/ntt.rs:
crates/math/src/poly.rs:
crates/math/src/primes.rs:
crates/math/src/rns.rs:
