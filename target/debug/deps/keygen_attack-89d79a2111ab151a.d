/root/repo/target/debug/deps/keygen_attack-89d79a2111ab151a.d: crates/bench/src/bin/keygen_attack.rs Cargo.toml

/root/repo/target/debug/deps/libkeygen_attack-89d79a2111ab151a.rmeta: crates/bench/src/bin/keygen_attack.rs Cargo.toml

crates/bench/src/bin/keygen_attack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
