/root/repo/target/debug/deps/baseline_cpa-93c25a724a5a6915.d: crates/bench/src/bin/baseline_cpa.rs Cargo.toml

/root/repo/target/debug/deps/libbaseline_cpa-93c25a724a5a6915.rmeta: crates/bench/src/bin/baseline_cpa.rs Cargo.toml

crates/bench/src/bin/baseline_cpa.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
