/root/repo/target/debug/deps/keygen_attack-f2545e34c37c9368.d: crates/bench/src/bin/keygen_attack.rs

/root/repo/target/debug/deps/keygen_attack-f2545e34c37c9368: crates/bench/src/bin/keygen_attack.rs

crates/bench/src/bin/keygen_attack.rs:
