/root/repo/target/debug/deps/security_tables-11ce55fd5500d744.d: crates/attack/../../tests/security_tables.rs

/root/repo/target/debug/deps/security_tables-11ce55fd5500d744: crates/attack/../../tests/security_tables.rs

crates/attack/../../tests/security_tables.rs:
