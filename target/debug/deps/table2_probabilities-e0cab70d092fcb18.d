/root/repo/target/debug/deps/table2_probabilities-e0cab70d092fcb18.d: crates/bench/src/bin/table2_probabilities.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_probabilities-e0cab70d092fcb18.rmeta: crates/bench/src/bin/table2_probabilities.rs Cargo.toml

crates/bench/src/bin/table2_probabilities.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
