/root/repo/target/debug/deps/ckks_attack-f4f3cbf96467c943.d: crates/bench/src/bin/ckks_attack.rs Cargo.toml

/root/repo/target/debug/deps/libckks_attack-f4f3cbf96467c943.rmeta: crates/bench/src/bin/ckks_attack.rs Cargo.toml

crates/bench/src/bin/ckks_attack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
