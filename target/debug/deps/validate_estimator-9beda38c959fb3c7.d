/root/repo/target/debug/deps/validate_estimator-9beda38c959fb3c7.d: crates/bench/src/bin/validate_estimator.rs Cargo.toml

/root/repo/target/debug/deps/libvalidate_estimator-9beda38c959fb3c7.rmeta: crates/bench/src/bin/validate_estimator.rs Cargo.toml

crates/bench/src/bin/validate_estimator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
