/root/repo/target/debug/deps/validate_estimator-6d6d2dcc022ee816.d: crates/bench/src/bin/validate_estimator.rs Cargo.toml

/root/repo/target/debug/deps/libvalidate_estimator-6d6d2dcc022ee816.rmeta: crates/bench/src/bin/validate_estimator.rs Cargo.toml

crates/bench/src/bin/validate_estimator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
