/root/repo/target/debug/deps/attack-fddd6b428a2f3021.d: crates/bench/benches/attack.rs Cargo.toml

/root/repo/target/debug/deps/libattack-fddd6b428a2f3021.rmeta: crates/bench/benches/attack.rs Cargo.toml

crates/bench/benches/attack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
