/root/repo/target/debug/deps/table3_hints_cost-0a817921736639f0.d: crates/bench/src/bin/table3_hints_cost.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_hints_cost-0a817921736639f0.rmeta: crates/bench/src/bin/table3_hints_cost.rs Cargo.toml

crates/bench/src/bin/table3_hints_cost.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
