/root/repo/target/debug/deps/ckks_attack-8e7157b98125d157.d: crates/bench/src/bin/ckks_attack.rs Cargo.toml

/root/repo/target/debug/deps/libckks_attack-8e7157b98125d157.rmeta: crates/bench/src/bin/ckks_attack.rs Cargo.toml

crates/bench/src/bin/ckks_attack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
