/root/repo/target/debug/deps/reveal_trace-f732ca0df0708ca8.d: crates/trace/src/lib.rs crates/trace/src/align.rs crates/trace/src/cpa.rs crates/trace/src/export.rs crates/trace/src/poi.rs crates/trace/src/sanity.rs crates/trace/src/segment.rs crates/trace/src/stats.rs crates/trace/src/trace.rs crates/trace/src/tvla.rs Cargo.toml

/root/repo/target/debug/deps/libreveal_trace-f732ca0df0708ca8.rmeta: crates/trace/src/lib.rs crates/trace/src/align.rs crates/trace/src/cpa.rs crates/trace/src/export.rs crates/trace/src/poi.rs crates/trace/src/sanity.rs crates/trace/src/segment.rs crates/trace/src/stats.rs crates/trace/src/trace.rs crates/trace/src/tvla.rs Cargo.toml

crates/trace/src/lib.rs:
crates/trace/src/align.rs:
crates/trace/src/cpa.rs:
crates/trace/src/export.rs:
crates/trace/src/poi.rs:
crates/trace/src/sanity.rs:
crates/trace/src/segment.rs:
crates/trace/src/stats.rs:
crates/trace/src/trace.rs:
crates/trace/src/tvla.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
