/root/repo/target/debug/deps/hints-ed73018bb7aeba89.d: crates/bench/benches/hints.rs Cargo.toml

/root/repo/target/debug/deps/libhints-ed73018bb7aeba89.rmeta: crates/bench/benches/hints.rs Cargo.toml

crates/bench/benches/hints.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
