/root/repo/target/debug/deps/ckks_attack-ae968d4649fb7410.d: crates/bench/src/bin/ckks_attack.rs

/root/repo/target/debug/deps/ckks_attack-ae968d4649fb7410: crates/bench/src/bin/ckks_attack.rs

crates/bench/src/bin/ckks_attack.rs:
