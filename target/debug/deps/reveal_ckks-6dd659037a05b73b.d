/root/repo/target/debug/deps/reveal_ckks-6dd659037a05b73b.d: crates/ckks/src/lib.rs crates/ckks/src/complex.rs crates/ckks/src/encoder.rs crates/ckks/src/scheme.rs Cargo.toml

/root/repo/target/debug/deps/libreveal_ckks-6dd659037a05b73b.rmeta: crates/ckks/src/lib.rs crates/ckks/src/complex.rs crates/ckks/src/encoder.rs crates/ckks/src/scheme.rs Cargo.toml

crates/ckks/src/lib.rs:
crates/ckks/src/complex.rs:
crates/ckks/src/encoder.rs:
crates/ckks/src/scheme.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
