/root/repo/target/debug/deps/table1_confusion-e6653a63bfb8ffbb.d: crates/bench/src/bin/table1_confusion.rs

/root/repo/target/debug/deps/table1_confusion-e6653a63bfb8ffbb: crates/bench/src/bin/table1_confusion.rs

crates/bench/src/bin/table1_confusion.rs:
