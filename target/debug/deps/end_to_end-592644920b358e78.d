/root/repo/target/debug/deps/end_to_end-592644920b358e78.d: crates/attack/../../tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-592644920b358e78: crates/attack/../../tests/end_to_end.rs

crates/attack/../../tests/end_to_end.rs:
