/root/repo/target/debug/deps/table4_sign_only-f9754b7e492c82ae.d: crates/bench/src/bin/table4_sign_only.rs

/root/repo/target/debug/deps/table4_sign_only-f9754b7e492c82ae: crates/bench/src/bin/table4_sign_only.rs

crates/bench/src/bin/table4_sign_only.rs:
