/root/repo/target/debug/deps/validate_estimator-857179a0b076b4a8.d: crates/bench/src/bin/validate_estimator.rs Cargo.toml

/root/repo/target/debug/deps/libvalidate_estimator-857179a0b076b4a8.rmeta: crates/bench/src/bin/validate_estimator.rs Cargo.toml

crates/bench/src/bin/validate_estimator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
