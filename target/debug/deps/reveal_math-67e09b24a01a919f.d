/root/repo/target/debug/deps/reveal_math-67e09b24a01a919f.d: crates/math/src/lib.rs crates/math/src/arith.rs crates/math/src/bigint.rs crates/math/src/modulus.rs crates/math/src/ntt.rs crates/math/src/poly.rs crates/math/src/primes.rs crates/math/src/rns.rs Cargo.toml

/root/repo/target/debug/deps/libreveal_math-67e09b24a01a919f.rmeta: crates/math/src/lib.rs crates/math/src/arith.rs crates/math/src/bigint.rs crates/math/src/modulus.rs crates/math/src/ntt.rs crates/math/src/poly.rs crates/math/src/primes.rs crates/math/src/rns.rs Cargo.toml

crates/math/src/lib.rs:
crates/math/src/arith.rs:
crates/math/src/bigint.rs:
crates/math/src/modulus.rs:
crates/math/src/ntt.rs:
crates/math/src/poly.rs:
crates/math/src/primes.rs:
crates/math/src/rns.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
