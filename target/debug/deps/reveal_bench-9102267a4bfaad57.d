/root/repo/target/debug/deps/reveal_bench-9102267a4bfaad57.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/reveal_bench-9102267a4bfaad57: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
