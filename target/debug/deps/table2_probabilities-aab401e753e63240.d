/root/repo/target/debug/deps/table2_probabilities-aab401e753e63240.d: crates/bench/src/bin/table2_probabilities.rs

/root/repo/target/debug/deps/table2_probabilities-aab401e753e63240: crates/bench/src/bin/table2_probabilities.rs

crates/bench/src/bin/table2_probabilities.rs:
