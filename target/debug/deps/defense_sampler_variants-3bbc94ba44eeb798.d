/root/repo/target/debug/deps/defense_sampler_variants-3bbc94ba44eeb798.d: crates/bench/src/bin/defense_sampler_variants.rs Cargo.toml

/root/repo/target/debug/deps/libdefense_sampler_variants-3bbc94ba44eeb798.rmeta: crates/bench/src/bin/defense_sampler_variants.rs Cargo.toml

crates/bench/src/bin/defense_sampler_variants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
