/root/repo/target/debug/deps/reveal_bench-b455b5131ac1a3dd.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libreveal_bench-b455b5131ac1a3dd.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
