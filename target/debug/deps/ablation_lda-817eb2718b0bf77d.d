/root/repo/target/debug/deps/ablation_lda-817eb2718b0bf77d.d: crates/bench/src/bin/ablation_lda.rs Cargo.toml

/root/repo/target/debug/deps/libablation_lda-817eb2718b0bf77d.rmeta: crates/bench/src/bin/ablation_lda.rs Cargo.toml

crates/bench/src/bin/ablation_lda.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
