/root/repo/target/debug/deps/security_tables-a8b0e939be15b95e.d: crates/attack/../../tests/security_tables.rs

/root/repo/target/debug/deps/security_tables-a8b0e939be15b95e: crates/attack/../../tests/security_tables.rs

crates/attack/../../tests/security_tables.rs:
