/root/repo/target/debug/deps/tvla_assessment-49ba5a691a612bf5.d: crates/bench/src/bin/tvla_assessment.rs

/root/repo/target/debug/deps/tvla_assessment-49ba5a691a612bf5: crates/bench/src/bin/tvla_assessment.rs

crates/bench/src/bin/tvla_assessment.rs:
