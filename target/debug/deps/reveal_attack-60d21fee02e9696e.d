/root/repo/target/debug/deps/reveal_attack-60d21fee02e9696e.d: crates/attack/src/lib.rs crates/attack/src/config.rs crates/attack/src/defense.rs crates/attack/src/device.rs crates/attack/src/profile.rs crates/attack/src/recover.rs crates/attack/src/report.rs crates/attack/src/robust.rs

/root/repo/target/debug/deps/reveal_attack-60d21fee02e9696e: crates/attack/src/lib.rs crates/attack/src/config.rs crates/attack/src/defense.rs crates/attack/src/device.rs crates/attack/src/profile.rs crates/attack/src/recover.rs crates/attack/src/report.rs crates/attack/src/robust.rs

crates/attack/src/lib.rs:
crates/attack/src/config.rs:
crates/attack/src/defense.rs:
crates/attack/src/device.rs:
crates/attack/src/profile.rs:
crates/attack/src/recover.rs:
crates/attack/src/report.rs:
crates/attack/src/robust.rs:
