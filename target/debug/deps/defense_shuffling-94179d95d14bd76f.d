/root/repo/target/debug/deps/defense_shuffling-94179d95d14bd76f.d: crates/bench/src/bin/defense_shuffling.rs

/root/repo/target/debug/deps/defense_shuffling-94179d95d14bd76f: crates/bench/src/bin/defense_shuffling.rs

crates/bench/src/bin/defense_shuffling.rs:
