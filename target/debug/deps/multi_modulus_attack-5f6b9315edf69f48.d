/root/repo/target/debug/deps/multi_modulus_attack-5f6b9315edf69f48.d: crates/bench/src/bin/multi_modulus_attack.rs Cargo.toml

/root/repo/target/debug/deps/libmulti_modulus_attack-5f6b9315edf69f48.rmeta: crates/bench/src/bin/multi_modulus_attack.rs Cargo.toml

crates/bench/src/bin/multi_modulus_attack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
