/root/repo/target/debug/deps/kernels-33225920a738d880.d: crates/lint/tests/kernels.rs Cargo.toml

/root/repo/target/debug/deps/libkernels-33225920a738d880.rmeta: crates/lint/tests/kernels.rs Cargo.toml

crates/lint/tests/kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
