/root/repo/target/debug/deps/hints-a1e4657cc6a4092b.d: crates/bench/benches/hints.rs Cargo.toml

/root/repo/target/debug/deps/libhints-a1e4657cc6a4092b.rmeta: crates/bench/benches/hints.rs Cargo.toml

crates/bench/benches/hints.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
