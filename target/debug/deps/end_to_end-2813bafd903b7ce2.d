/root/repo/target/debug/deps/end_to_end-2813bafd903b7ce2.d: crates/attack/../../tests/end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end-2813bafd903b7ce2.rmeta: crates/attack/../../tests/end_to_end.rs Cargo.toml

crates/attack/../../tests/end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
