/root/repo/target/debug/deps/reveal_template-b1ef7a6eccba4086.d: crates/template/src/lib.rs crates/template/src/confusion.rs crates/template/src/lda.rs crates/template/src/matrix.rs crates/template/src/scores.rs crates/template/src/template.rs

/root/repo/target/debug/deps/libreveal_template-b1ef7a6eccba4086.rlib: crates/template/src/lib.rs crates/template/src/confusion.rs crates/template/src/lda.rs crates/template/src/matrix.rs crates/template/src/scores.rs crates/template/src/template.rs

/root/repo/target/debug/deps/libreveal_template-b1ef7a6eccba4086.rmeta: crates/template/src/lib.rs crates/template/src/confusion.rs crates/template/src/lda.rs crates/template/src/matrix.rs crates/template/src/scores.rs crates/template/src/template.rs

crates/template/src/lib.rs:
crates/template/src/confusion.rs:
crates/template/src/lda.rs:
crates/template/src/matrix.rs:
crates/template/src/scores.rs:
crates/template/src/template.rs:
