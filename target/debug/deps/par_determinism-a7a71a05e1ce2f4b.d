/root/repo/target/debug/deps/par_determinism-a7a71a05e1ce2f4b.d: crates/attack/../../tests/par_determinism.rs

/root/repo/target/debug/deps/par_determinism-a7a71a05e1ce2f4b: crates/attack/../../tests/par_determinism.rs

crates/attack/../../tests/par_determinism.rs:
