/root/repo/target/debug/deps/ckks_attack-60ac447a5647769e.d: crates/bench/src/bin/ckks_attack.rs Cargo.toml

/root/repo/target/debug/deps/libckks_attack-60ac447a5647769e.rmeta: crates/bench/src/bin/ckks_attack.rs Cargo.toml

crates/bench/src/bin/ckks_attack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
