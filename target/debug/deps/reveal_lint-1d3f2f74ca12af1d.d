/root/repo/target/debug/deps/reveal_lint-1d3f2f74ca12af1d.d: crates/lint/src/lib.rs crates/lint/src/analysis.rs crates/lint/src/report.rs crates/lint/src/taint.rs Cargo.toml

/root/repo/target/debug/deps/libreveal_lint-1d3f2f74ca12af1d.rmeta: crates/lint/src/lib.rs crates/lint/src/analysis.rs crates/lint/src/report.rs crates/lint/src/taint.rs Cargo.toml

crates/lint/src/lib.rs:
crates/lint/src/analysis.rs:
crates/lint/src/report.rs:
crates/lint/src/taint.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
