/root/repo/target/debug/deps/reveal_bench-d52b2b5c06f6a2d8.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/reveal_bench-d52b2b5c06f6a2d8: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
