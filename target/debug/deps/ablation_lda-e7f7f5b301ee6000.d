/root/repo/target/debug/deps/ablation_lda-e7f7f5b301ee6000.d: crates/bench/src/bin/ablation_lda.rs Cargo.toml

/root/repo/target/debug/deps/libablation_lda-e7f7f5b301ee6000.rmeta: crates/bench/src/bin/ablation_lda.rs Cargo.toml

crates/bench/src/bin/ablation_lda.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
