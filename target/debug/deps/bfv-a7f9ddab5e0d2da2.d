/root/repo/target/debug/deps/bfv-a7f9ddab5e0d2da2.d: crates/bench/benches/bfv.rs Cargo.toml

/root/repo/target/debug/deps/libbfv-a7f9ddab5e0d2da2.rmeta: crates/bench/benches/bfv.rs Cargo.toml

crates/bench/benches/bfv.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
