/root/repo/target/debug/deps/tvla_assessment-d4172a96ee6239ea.d: crates/bench/src/bin/tvla_assessment.rs Cargo.toml

/root/repo/target/debug/deps/libtvla_assessment-d4172a96ee6239ea.rmeta: crates/bench/src/bin/tvla_assessment.rs Cargo.toml

crates/bench/src/bin/tvla_assessment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
