/root/repo/target/debug/deps/reveal_lint-e956c75057bab1d5.d: crates/lint/src/lib.rs crates/lint/src/analysis.rs crates/lint/src/report.rs crates/lint/src/taint.rs

/root/repo/target/debug/deps/libreveal_lint-e956c75057bab1d5.rlib: crates/lint/src/lib.rs crates/lint/src/analysis.rs crates/lint/src/report.rs crates/lint/src/taint.rs

/root/repo/target/debug/deps/libreveal_lint-e956c75057bab1d5.rmeta: crates/lint/src/lib.rs crates/lint/src/analysis.rs crates/lint/src/report.rs crates/lint/src/taint.rs

crates/lint/src/lib.rs:
crates/lint/src/analysis.rs:
crates/lint/src/report.rs:
crates/lint/src/taint.rs:
