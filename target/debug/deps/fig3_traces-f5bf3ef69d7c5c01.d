/root/repo/target/debug/deps/fig3_traces-f5bf3ef69d7c5c01.d: crates/bench/src/bin/fig3_traces.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_traces-f5bf3ef69d7c5c01.rmeta: crates/bench/src/bin/fig3_traces.rs Cargo.toml

crates/bench/src/bin/fig3_traces.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
