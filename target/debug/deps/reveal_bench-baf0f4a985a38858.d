/root/repo/target/debug/deps/reveal_bench-baf0f4a985a38858.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libreveal_bench-baf0f4a985a38858.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libreveal_bench-baf0f4a985a38858.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
