/root/repo/target/debug/deps/baseline_cpa-bef8ae6ed83c11ff.d: crates/bench/src/bin/baseline_cpa.rs

/root/repo/target/debug/deps/baseline_cpa-bef8ae6ed83c11ff: crates/bench/src/bin/baseline_cpa.rs

crates/bench/src/bin/baseline_cpa.rs:
