/root/repo/target/debug/deps/ablation_snr-a49055f8a9a3f83a.d: crates/bench/src/bin/ablation_snr.rs

/root/repo/target/debug/deps/ablation_snr-a49055f8a9a3f83a: crates/bench/src/bin/ablation_snr.rs

crates/bench/src/bin/ablation_snr.rs:
