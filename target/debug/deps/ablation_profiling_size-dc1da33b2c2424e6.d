/root/repo/target/debug/deps/ablation_profiling_size-dc1da33b2c2424e6.d: crates/bench/src/bin/ablation_profiling_size.rs Cargo.toml

/root/repo/target/debug/deps/libablation_profiling_size-dc1da33b2c2424e6.rmeta: crates/bench/src/bin/ablation_profiling_size.rs Cargo.toml

crates/bench/src/bin/ablation_profiling_size.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
