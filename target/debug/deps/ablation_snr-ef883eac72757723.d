/root/repo/target/debug/deps/ablation_snr-ef883eac72757723.d: crates/bench/src/bin/ablation_snr.rs Cargo.toml

/root/repo/target/debug/deps/libablation_snr-ef883eac72757723.rmeta: crates/bench/src/bin/ablation_snr.rs Cargo.toml

crates/bench/src/bin/ablation_snr.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
