/root/repo/target/debug/deps/rand-a151bf5945583394.d: crates/rand-shim/src/lib.rs crates/rand-shim/src/distributions.rs crates/rand-shim/src/rngs.rs crates/rand-shim/src/seq.rs Cargo.toml

/root/repo/target/debug/deps/librand-a151bf5945583394.rmeta: crates/rand-shim/src/lib.rs crates/rand-shim/src/distributions.rs crates/rand-shim/src/rngs.rs crates/rand-shim/src/seq.rs Cargo.toml

crates/rand-shim/src/lib.rs:
crates/rand-shim/src/distributions.rs:
crates/rand-shim/src/rngs.rs:
crates/rand-shim/src/seq.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
