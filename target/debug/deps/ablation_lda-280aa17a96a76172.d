/root/repo/target/debug/deps/ablation_lda-280aa17a96a76172.d: crates/bench/src/bin/ablation_lda.rs

/root/repo/target/debug/deps/ablation_lda-280aa17a96a76172: crates/bench/src/bin/ablation_lda.rs

crates/bench/src/bin/ablation_lda.rs:
