/root/repo/target/debug/deps/proptest-2824e721bb36fc93.d: crates/proptest-shim/src/lib.rs crates/proptest-shim/src/arbitrary.rs crates/proptest-shim/src/collection.rs crates/proptest-shim/src/config.rs crates/proptest-shim/src/strategy.rs crates/proptest-shim/src/test_runner.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-2824e721bb36fc93.rmeta: crates/proptest-shim/src/lib.rs crates/proptest-shim/src/arbitrary.rs crates/proptest-shim/src/collection.rs crates/proptest-shim/src/config.rs crates/proptest-shim/src/strategy.rs crates/proptest-shim/src/test_runner.rs Cargo.toml

crates/proptest-shim/src/lib.rs:
crates/proptest-shim/src/arbitrary.rs:
crates/proptest-shim/src/collection.rs:
crates/proptest-shim/src/config.rs:
crates/proptest-shim/src/strategy.rs:
crates/proptest-shim/src/test_runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
