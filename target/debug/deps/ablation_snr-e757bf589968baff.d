/root/repo/target/debug/deps/ablation_snr-e757bf589968baff.d: crates/bench/src/bin/ablation_snr.rs Cargo.toml

/root/repo/target/debug/deps/libablation_snr-e757bf589968baff.rmeta: crates/bench/src/bin/ablation_snr.rs Cargo.toml

crates/bench/src/bin/ablation_snr.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
