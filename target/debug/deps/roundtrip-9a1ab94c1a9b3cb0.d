/root/repo/target/debug/deps/roundtrip-9a1ab94c1a9b3cb0.d: crates/rv32/tests/roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libroundtrip-9a1ab94c1a9b3cb0.rmeta: crates/rv32/tests/roundtrip.rs Cargo.toml

crates/rv32/tests/roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
