/root/repo/target/debug/deps/proptest-c05225c61f9ab80b.d: crates/proptest-shim/src/lib.rs crates/proptest-shim/src/arbitrary.rs crates/proptest-shim/src/collection.rs crates/proptest-shim/src/config.rs crates/proptest-shim/src/strategy.rs crates/proptest-shim/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-c05225c61f9ab80b.rlib: crates/proptest-shim/src/lib.rs crates/proptest-shim/src/arbitrary.rs crates/proptest-shim/src/collection.rs crates/proptest-shim/src/config.rs crates/proptest-shim/src/strategy.rs crates/proptest-shim/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-c05225c61f9ab80b.rmeta: crates/proptest-shim/src/lib.rs crates/proptest-shim/src/arbitrary.rs crates/proptest-shim/src/collection.rs crates/proptest-shim/src/config.rs crates/proptest-shim/src/strategy.rs crates/proptest-shim/src/test_runner.rs

crates/proptest-shim/src/lib.rs:
crates/proptest-shim/src/arbitrary.rs:
crates/proptest-shim/src/collection.rs:
crates/proptest-shim/src/config.rs:
crates/proptest-shim/src/strategy.rs:
crates/proptest-shim/src/test_runner.rs:
