/root/repo/target/debug/deps/defense_sampler_variants-8e517bac13e502ac.d: crates/bench/src/bin/defense_sampler_variants.rs

/root/repo/target/debug/deps/defense_sampler_variants-8e517bac13e502ac: crates/bench/src/bin/defense_sampler_variants.rs

crates/bench/src/bin/defense_sampler_variants.rs:
