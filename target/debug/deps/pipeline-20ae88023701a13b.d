/root/repo/target/debug/deps/pipeline-20ae88023701a13b.d: crates/attack/../../tests/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-20ae88023701a13b.rmeta: crates/attack/../../tests/pipeline.rs Cargo.toml

crates/attack/../../tests/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
