/root/repo/target/debug/deps/attack-e700d1f7fa5dbe3f.d: crates/bench/benches/attack.rs Cargo.toml

/root/repo/target/debug/deps/libattack-e700d1f7fa5dbe3f.rmeta: crates/bench/benches/attack.rs Cargo.toml

crates/bench/benches/attack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
