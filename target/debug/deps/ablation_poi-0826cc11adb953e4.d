/root/repo/target/debug/deps/ablation_poi-0826cc11adb953e4.d: crates/bench/src/bin/ablation_poi.rs

/root/repo/target/debug/deps/ablation_poi-0826cc11adb953e4: crates/bench/src/bin/ablation_poi.rs

crates/bench/src/bin/ablation_poi.rs:
