/root/repo/target/debug/deps/defense_shuffling-3db232ad712a36da.d: crates/bench/src/bin/defense_shuffling.rs Cargo.toml

/root/repo/target/debug/deps/libdefense_shuffling-3db232ad712a36da.rmeta: crates/bench/src/bin/defense_shuffling.rs Cargo.toml

crates/bench/src/bin/defense_shuffling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
