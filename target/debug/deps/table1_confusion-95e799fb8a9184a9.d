/root/repo/target/debug/deps/table1_confusion-95e799fb8a9184a9.d: crates/bench/src/bin/table1_confusion.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_confusion-95e799fb8a9184a9.rmeta: crates/bench/src/bin/table1_confusion.rs Cargo.toml

crates/bench/src/bin/table1_confusion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
