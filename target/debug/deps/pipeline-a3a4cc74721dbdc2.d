/root/repo/target/debug/deps/pipeline-a3a4cc74721dbdc2.d: crates/attack/../../tests/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-a3a4cc74721dbdc2.rmeta: crates/attack/../../tests/pipeline.rs Cargo.toml

crates/attack/../../tests/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
