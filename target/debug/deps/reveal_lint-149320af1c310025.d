/root/repo/target/debug/deps/reveal_lint-149320af1c310025.d: crates/lint/src/lib.rs crates/lint/src/analysis.rs crates/lint/src/report.rs crates/lint/src/taint.rs

/root/repo/target/debug/deps/reveal_lint-149320af1c310025: crates/lint/src/lib.rs crates/lint/src/analysis.rs crates/lint/src/report.rs crates/lint/src/taint.rs

crates/lint/src/lib.rs:
crates/lint/src/analysis.rs:
crates/lint/src/report.rs:
crates/lint/src/taint.rs:
