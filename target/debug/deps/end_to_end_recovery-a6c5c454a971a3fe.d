/root/repo/target/debug/deps/end_to_end_recovery-a6c5c454a971a3fe.d: crates/bench/src/bin/end_to_end_recovery.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end_recovery-a6c5c454a971a3fe.rmeta: crates/bench/src/bin/end_to_end_recovery.rs Cargo.toml

crates/bench/src/bin/end_to_end_recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
