/root/repo/target/debug/deps/reveal_hints-633b1dbafcfb0f85.d: crates/hints/src/lib.rs crates/hints/src/dbdd.rs crates/hints/src/delta.rs crates/hints/src/posterior.rs

/root/repo/target/debug/deps/reveal_hints-633b1dbafcfb0f85: crates/hints/src/lib.rs crates/hints/src/dbdd.rs crates/hints/src/delta.rs crates/hints/src/posterior.rs

crates/hints/src/lib.rs:
crates/hints/src/dbdd.rs:
crates/hints/src/delta.rs:
crates/hints/src/posterior.rs:
