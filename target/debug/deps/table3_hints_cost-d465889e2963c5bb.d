/root/repo/target/debug/deps/table3_hints_cost-d465889e2963c5bb.d: crates/bench/src/bin/table3_hints_cost.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_hints_cost-d465889e2963c5bb.rmeta: crates/bench/src/bin/table3_hints_cost.rs Cargo.toml

crates/bench/src/bin/table3_hints_cost.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
