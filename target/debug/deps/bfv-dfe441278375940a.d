/root/repo/target/debug/deps/bfv-dfe441278375940a.d: crates/bench/benches/bfv.rs Cargo.toml

/root/repo/target/debug/deps/libbfv-dfe441278375940a.rmeta: crates/bench/benches/bfv.rs Cargo.toml

crates/bench/benches/bfv.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
