/root/repo/target/debug/deps/ablation_snr-38efe53e7aa68f8c.d: crates/bench/src/bin/ablation_snr.rs Cargo.toml

/root/repo/target/debug/deps/libablation_snr-38efe53e7aa68f8c.rmeta: crates/bench/src/bin/ablation_snr.rs Cargo.toml

crates/bench/src/bin/ablation_snr.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
