/root/repo/target/debug/deps/ablation_profiling_size-f064fc3ca96d6fc9.d: crates/bench/src/bin/ablation_profiling_size.rs Cargo.toml

/root/repo/target/debug/deps/libablation_profiling_size-f064fc3ca96d6fc9.rmeta: crates/bench/src/bin/ablation_profiling_size.rs Cargo.toml

crates/bench/src/bin/ablation_profiling_size.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
