/root/repo/target/debug/deps/ablation_snr-d036d1c1a7fc91bf.d: crates/bench/src/bin/ablation_snr.rs

/root/repo/target/debug/deps/ablation_snr-d036d1c1a7fc91bf: crates/bench/src/bin/ablation_snr.rs

crates/bench/src/bin/ablation_snr.rs:
