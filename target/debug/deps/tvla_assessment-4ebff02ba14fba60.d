/root/repo/target/debug/deps/tvla_assessment-4ebff02ba14fba60.d: crates/bench/src/bin/tvla_assessment.rs

/root/repo/target/debug/deps/tvla_assessment-4ebff02ba14fba60: crates/bench/src/bin/tvla_assessment.rs

crates/bench/src/bin/tvla_assessment.rs:
