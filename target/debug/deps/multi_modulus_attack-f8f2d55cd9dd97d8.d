/root/repo/target/debug/deps/multi_modulus_attack-f8f2d55cd9dd97d8.d: crates/bench/src/bin/multi_modulus_attack.rs

/root/repo/target/debug/deps/multi_modulus_attack-f8f2d55cd9dd97d8: crates/bench/src/bin/multi_modulus_attack.rs

crates/bench/src/bin/multi_modulus_attack.rs:
