/root/repo/target/debug/deps/tvla_assessment-34802a2456b9f234.d: crates/bench/src/bin/tvla_assessment.rs Cargo.toml

/root/repo/target/debug/deps/libtvla_assessment-34802a2456b9f234.rmeta: crates/bench/src/bin/tvla_assessment.rs Cargo.toml

crates/bench/src/bin/tvla_assessment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
