/root/repo/target/debug/deps/keygen_attack-735a1a8fda2a828e.d: crates/bench/src/bin/keygen_attack.rs

/root/repo/target/debug/deps/keygen_attack-735a1a8fda2a828e: crates/bench/src/bin/keygen_attack.rs

crates/bench/src/bin/keygen_attack.rs:
