/root/repo/target/debug/deps/baseline_cpa-444d35f7773109f4.d: crates/bench/src/bin/baseline_cpa.rs Cargo.toml

/root/repo/target/debug/deps/libbaseline_cpa-444d35f7773109f4.rmeta: crates/bench/src/bin/baseline_cpa.rs Cargo.toml

crates/bench/src/bin/baseline_cpa.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
