/root/repo/target/debug/deps/baseline_cpa-b7ef5b7b9bfc5aa5.d: crates/bench/src/bin/baseline_cpa.rs

/root/repo/target/debug/deps/baseline_cpa-b7ef5b7b9bfc5aa5: crates/bench/src/bin/baseline_cpa.rs

crates/bench/src/bin/baseline_cpa.rs:
