/root/repo/target/debug/deps/rand-9cc742ac0c291b55.d: crates/rand-shim/src/lib.rs crates/rand-shim/src/distributions.rs crates/rand-shim/src/rngs.rs crates/rand-shim/src/seq.rs

/root/repo/target/debug/deps/rand-9cc742ac0c291b55: crates/rand-shim/src/lib.rs crates/rand-shim/src/distributions.rs crates/rand-shim/src/rngs.rs crates/rand-shim/src/seq.rs

crates/rand-shim/src/lib.rs:
crates/rand-shim/src/distributions.rs:
crates/rand-shim/src/rngs.rs:
crates/rand-shim/src/seq.rs:
