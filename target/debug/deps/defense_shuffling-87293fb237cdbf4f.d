/root/repo/target/debug/deps/defense_shuffling-87293fb237cdbf4f.d: crates/bench/src/bin/defense_shuffling.rs

/root/repo/target/debug/deps/defense_shuffling-87293fb237cdbf4f: crates/bench/src/bin/defense_shuffling.rs

crates/bench/src/bin/defense_shuffling.rs:
