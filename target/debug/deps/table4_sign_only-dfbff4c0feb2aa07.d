/root/repo/target/debug/deps/table4_sign_only-dfbff4c0feb2aa07.d: crates/bench/src/bin/table4_sign_only.rs Cargo.toml

/root/repo/target/debug/deps/libtable4_sign_only-dfbff4c0feb2aa07.rmeta: crates/bench/src/bin/table4_sign_only.rs Cargo.toml

crates/bench/src/bin/table4_sign_only.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
