/root/repo/target/debug/deps/multi_modulus_attack-84cc4937468bfb6d.d: crates/bench/src/bin/multi_modulus_attack.rs Cargo.toml

/root/repo/target/debug/deps/libmulti_modulus_attack-84cc4937468bfb6d.rmeta: crates/bench/src/bin/multi_modulus_attack.rs Cargo.toml

crates/bench/src/bin/multi_modulus_attack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
