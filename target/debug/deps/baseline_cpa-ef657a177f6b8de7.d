/root/repo/target/debug/deps/baseline_cpa-ef657a177f6b8de7.d: crates/bench/src/bin/baseline_cpa.rs

/root/repo/target/debug/deps/baseline_cpa-ef657a177f6b8de7: crates/bench/src/bin/baseline_cpa.rs

crates/bench/src/bin/baseline_cpa.rs:
