/root/repo/target/debug/deps/reveal_chaos-040f388708161505.d: crates/chaos/src/lib.rs crates/chaos/src/fault.rs crates/chaos/src/inject.rs

/root/repo/target/debug/deps/libreveal_chaos-040f388708161505.rlib: crates/chaos/src/lib.rs crates/chaos/src/fault.rs crates/chaos/src/inject.rs

/root/repo/target/debug/deps/libreveal_chaos-040f388708161505.rmeta: crates/chaos/src/lib.rs crates/chaos/src/fault.rs crates/chaos/src/inject.rs

crates/chaos/src/lib.rs:
crates/chaos/src/fault.rs:
crates/chaos/src/inject.rs:
