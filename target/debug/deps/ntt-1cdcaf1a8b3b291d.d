/root/repo/target/debug/deps/ntt-1cdcaf1a8b3b291d.d: crates/bench/benches/ntt.rs Cargo.toml

/root/repo/target/debug/deps/libntt-1cdcaf1a8b3b291d.rmeta: crates/bench/benches/ntt.rs Cargo.toml

crates/bench/benches/ntt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
