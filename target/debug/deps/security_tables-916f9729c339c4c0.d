/root/repo/target/debug/deps/security_tables-916f9729c339c4c0.d: crates/attack/../../tests/security_tables.rs Cargo.toml

/root/repo/target/debug/deps/libsecurity_tables-916f9729c339c4c0.rmeta: crates/attack/../../tests/security_tables.rs Cargo.toml

crates/attack/../../tests/security_tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
