/root/repo/target/debug/deps/reveal_hints-bc94051dc2a330e3.d: crates/hints/src/lib.rs crates/hints/src/dbdd.rs crates/hints/src/delta.rs crates/hints/src/posterior.rs Cargo.toml

/root/repo/target/debug/deps/libreveal_hints-bc94051dc2a330e3.rmeta: crates/hints/src/lib.rs crates/hints/src/dbdd.rs crates/hints/src/delta.rs crates/hints/src/posterior.rs Cargo.toml

crates/hints/src/lib.rs:
crates/hints/src/dbdd.rs:
crates/hints/src/delta.rs:
crates/hints/src/posterior.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
