/root/repo/target/debug/deps/security_tables-63f5cd242f2629d0.d: crates/attack/../../tests/security_tables.rs Cargo.toml

/root/repo/target/debug/deps/libsecurity_tables-63f5cd242f2629d0.rmeta: crates/attack/../../tests/security_tables.rs Cargo.toml

crates/attack/../../tests/security_tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
