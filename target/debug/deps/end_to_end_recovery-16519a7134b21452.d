/root/repo/target/debug/deps/end_to_end_recovery-16519a7134b21452.d: crates/bench/src/bin/end_to_end_recovery.rs

/root/repo/target/debug/deps/end_to_end_recovery-16519a7134b21452: crates/bench/src/bin/end_to_end_recovery.rs

crates/bench/src/bin/end_to_end_recovery.rs:
