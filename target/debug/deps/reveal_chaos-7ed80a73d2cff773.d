/root/repo/target/debug/deps/reveal_chaos-7ed80a73d2cff773.d: crates/chaos/src/lib.rs crates/chaos/src/fault.rs crates/chaos/src/inject.rs Cargo.toml

/root/repo/target/debug/deps/libreveal_chaos-7ed80a73d2cff773.rmeta: crates/chaos/src/lib.rs crates/chaos/src/fault.rs crates/chaos/src/inject.rs Cargo.toml

crates/chaos/src/lib.rs:
crates/chaos/src/fault.rs:
crates/chaos/src/inject.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
