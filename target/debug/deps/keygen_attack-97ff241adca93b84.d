/root/repo/target/debug/deps/keygen_attack-97ff241adca93b84.d: crates/bench/src/bin/keygen_attack.rs Cargo.toml

/root/repo/target/debug/deps/libkeygen_attack-97ff241adca93b84.rmeta: crates/bench/src/bin/keygen_attack.rs Cargo.toml

crates/bench/src/bin/keygen_attack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
