/root/repo/target/debug/deps/baseline_cpa-c8ea0e75cf370178.d: crates/bench/src/bin/baseline_cpa.rs Cargo.toml

/root/repo/target/debug/deps/libbaseline_cpa-c8ea0e75cf370178.rmeta: crates/bench/src/bin/baseline_cpa.rs Cargo.toml

crates/bench/src/bin/baseline_cpa.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
