/root/repo/target/debug/deps/bench_pipeline-92a84c7e2bcea3d1.d: crates/bench/src/bin/bench_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libbench_pipeline-92a84c7e2bcea3d1.rmeta: crates/bench/src/bin/bench_pipeline.rs Cargo.toml

crates/bench/src/bin/bench_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
