/root/repo/target/debug/deps/table4_sign_only-9b8a36dcdf3f7f80.d: crates/bench/src/bin/table4_sign_only.rs Cargo.toml

/root/repo/target/debug/deps/libtable4_sign_only-9b8a36dcdf3f7f80.rmeta: crates/bench/src/bin/table4_sign_only.rs Cargo.toml

crates/bench/src/bin/table4_sign_only.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
