/root/repo/target/debug/deps/reveal_ckks-7790932c4d35d699.d: crates/ckks/src/lib.rs crates/ckks/src/complex.rs crates/ckks/src/encoder.rs crates/ckks/src/scheme.rs

/root/repo/target/debug/deps/reveal_ckks-7790932c4d35d699: crates/ckks/src/lib.rs crates/ckks/src/complex.rs crates/ckks/src/encoder.rs crates/ckks/src/scheme.rs

crates/ckks/src/lib.rs:
crates/ckks/src/complex.rs:
crates/ckks/src/encoder.rs:
crates/ckks/src/scheme.rs:
