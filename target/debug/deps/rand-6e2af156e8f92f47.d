/root/repo/target/debug/deps/rand-6e2af156e8f92f47.d: crates/rand-shim/src/lib.rs crates/rand-shim/src/distributions.rs crates/rand-shim/src/rngs.rs crates/rand-shim/src/seq.rs

/root/repo/target/debug/deps/librand-6e2af156e8f92f47.rlib: crates/rand-shim/src/lib.rs crates/rand-shim/src/distributions.rs crates/rand-shim/src/rngs.rs crates/rand-shim/src/seq.rs

/root/repo/target/debug/deps/librand-6e2af156e8f92f47.rmeta: crates/rand-shim/src/lib.rs crates/rand-shim/src/distributions.rs crates/rand-shim/src/rngs.rs crates/rand-shim/src/seq.rs

crates/rand-shim/src/lib.rs:
crates/rand-shim/src/distributions.rs:
crates/rand-shim/src/rngs.rs:
crates/rand-shim/src/seq.rs:
