/root/repo/target/debug/deps/table3_hints_cost-2ee0f7cee998792e.d: crates/bench/src/bin/table3_hints_cost.rs

/root/repo/target/debug/deps/table3_hints_cost-2ee0f7cee998792e: crates/bench/src/bin/table3_hints_cost.rs

crates/bench/src/bin/table3_hints_cost.rs:
