/root/repo/target/debug/deps/multi_modulus_attack-1e95d7ecd1c203cf.d: crates/bench/src/bin/multi_modulus_attack.rs Cargo.toml

/root/repo/target/debug/deps/libmulti_modulus_attack-1e95d7ecd1c203cf.rmeta: crates/bench/src/bin/multi_modulus_attack.rs Cargo.toml

crates/bench/src/bin/multi_modulus_attack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
