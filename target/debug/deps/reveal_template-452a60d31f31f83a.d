/root/repo/target/debug/deps/reveal_template-452a60d31f31f83a.d: crates/template/src/lib.rs crates/template/src/confusion.rs crates/template/src/lda.rs crates/template/src/matrix.rs crates/template/src/scores.rs crates/template/src/template.rs

/root/repo/target/debug/deps/reveal_template-452a60d31f31f83a: crates/template/src/lib.rs crates/template/src/confusion.rs crates/template/src/lda.rs crates/template/src/matrix.rs crates/template/src/scores.rs crates/template/src/template.rs

crates/template/src/lib.rs:
crates/template/src/confusion.rs:
crates/template/src/lda.rs:
crates/template/src/matrix.rs:
crates/template/src/scores.rs:
crates/template/src/template.rs:
