/root/repo/target/debug/deps/hints-3e564b019a831ba2.d: crates/bench/benches/hints.rs Cargo.toml

/root/repo/target/debug/deps/libhints-3e564b019a831ba2.rmeta: crates/bench/benches/hints.rs Cargo.toml

crates/bench/benches/hints.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
