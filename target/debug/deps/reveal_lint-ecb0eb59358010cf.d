/root/repo/target/debug/deps/reveal_lint-ecb0eb59358010cf.d: crates/lint/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libreveal_lint-ecb0eb59358010cf.rmeta: crates/lint/src/main.rs Cargo.toml

crates/lint/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
