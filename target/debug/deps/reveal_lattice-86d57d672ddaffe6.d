/root/repo/target/debug/deps/reveal_lattice-86d57d672ddaffe6.d: crates/lattice/src/lib.rs crates/lattice/src/bkz.rs crates/lattice/src/embedding.rs crates/lattice/src/enumeration.rs crates/lattice/src/gsa.rs crates/lattice/src/gso.rs crates/lattice/src/lll.rs

/root/repo/target/debug/deps/reveal_lattice-86d57d672ddaffe6: crates/lattice/src/lib.rs crates/lattice/src/bkz.rs crates/lattice/src/embedding.rs crates/lattice/src/enumeration.rs crates/lattice/src/gsa.rs crates/lattice/src/gso.rs crates/lattice/src/lll.rs

crates/lattice/src/lib.rs:
crates/lattice/src/bkz.rs:
crates/lattice/src/embedding.rs:
crates/lattice/src/enumeration.rs:
crates/lattice/src/gsa.rs:
crates/lattice/src/gso.rs:
crates/lattice/src/lll.rs:
