/root/repo/target/debug/deps/baseline_cpa-4693d56d15260150.d: crates/bench/src/bin/baseline_cpa.rs Cargo.toml

/root/repo/target/debug/deps/libbaseline_cpa-4693d56d15260150.rmeta: crates/bench/src/bin/baseline_cpa.rs Cargo.toml

crates/bench/src/bin/baseline_cpa.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
