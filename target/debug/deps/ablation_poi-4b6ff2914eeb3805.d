/root/repo/target/debug/deps/ablation_poi-4b6ff2914eeb3805.d: crates/bench/src/bin/ablation_poi.rs

/root/repo/target/debug/deps/ablation_poi-4b6ff2914eeb3805: crates/bench/src/bin/ablation_poi.rs

crates/bench/src/bin/ablation_poi.rs:
