/root/repo/target/debug/deps/validate_estimator-aa95e10835ad5124.d: crates/bench/src/bin/validate_estimator.rs

/root/repo/target/debug/deps/validate_estimator-aa95e10835ad5124: crates/bench/src/bin/validate_estimator.rs

crates/bench/src/bin/validate_estimator.rs:
