/root/repo/target/debug/deps/par_determinism-80b2aab610f7682e.d: crates/attack/../../tests/par_determinism.rs Cargo.toml

/root/repo/target/debug/deps/libpar_determinism-80b2aab610f7682e.rmeta: crates/attack/../../tests/par_determinism.rs Cargo.toml

crates/attack/../../tests/par_determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
