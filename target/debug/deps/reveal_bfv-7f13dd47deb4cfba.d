/root/repo/target/debug/deps/reveal_bfv-7f13dd47deb4cfba.d: crates/bfv/src/lib.rs crates/bfv/src/context.rs crates/bfv/src/decryptor.rs crates/bfv/src/encoder.rs crates/bfv/src/encryptor.rs crates/bfv/src/evaluator.rs crates/bfv/src/keys.rs crates/bfv/src/params.rs crates/bfv/src/sampler.rs crates/bfv/src/serialization.rs crates/bfv/src/variants.rs

/root/repo/target/debug/deps/reveal_bfv-7f13dd47deb4cfba: crates/bfv/src/lib.rs crates/bfv/src/context.rs crates/bfv/src/decryptor.rs crates/bfv/src/encoder.rs crates/bfv/src/encryptor.rs crates/bfv/src/evaluator.rs crates/bfv/src/keys.rs crates/bfv/src/params.rs crates/bfv/src/sampler.rs crates/bfv/src/serialization.rs crates/bfv/src/variants.rs

crates/bfv/src/lib.rs:
crates/bfv/src/context.rs:
crates/bfv/src/decryptor.rs:
crates/bfv/src/encoder.rs:
crates/bfv/src/encryptor.rs:
crates/bfv/src/evaluator.rs:
crates/bfv/src/keys.rs:
crates/bfv/src/params.rs:
crates/bfv/src/sampler.rs:
crates/bfv/src/serialization.rs:
crates/bfv/src/variants.rs:
