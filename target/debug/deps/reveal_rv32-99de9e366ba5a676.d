/root/repo/target/debug/deps/reveal_rv32-99de9e366ba5a676.d: crates/rv32/src/lib.rs crates/rv32/src/asm.rs crates/rv32/src/cfg.rs crates/rv32/src/cpu.rs crates/rv32/src/disasm.rs crates/rv32/src/isa.rs crates/rv32/src/kernel.rs crates/rv32/src/power.rs Cargo.toml

/root/repo/target/debug/deps/libreveal_rv32-99de9e366ba5a676.rmeta: crates/rv32/src/lib.rs crates/rv32/src/asm.rs crates/rv32/src/cfg.rs crates/rv32/src/cpu.rs crates/rv32/src/disasm.rs crates/rv32/src/isa.rs crates/rv32/src/kernel.rs crates/rv32/src/power.rs Cargo.toml

crates/rv32/src/lib.rs:
crates/rv32/src/asm.rs:
crates/rv32/src/cfg.rs:
crates/rv32/src/cpu.rs:
crates/rv32/src/disasm.rs:
crates/rv32/src/isa.rs:
crates/rv32/src/kernel.rs:
crates/rv32/src/power.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
