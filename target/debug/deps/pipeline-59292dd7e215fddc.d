/root/repo/target/debug/deps/pipeline-59292dd7e215fddc.d: crates/attack/../../tests/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-59292dd7e215fddc.rmeta: crates/attack/../../tests/pipeline.rs Cargo.toml

crates/attack/../../tests/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
