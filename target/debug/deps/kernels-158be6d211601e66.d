/root/repo/target/debug/deps/kernels-158be6d211601e66.d: crates/lint/tests/kernels.rs

/root/repo/target/debug/deps/kernels-158be6d211601e66: crates/lint/tests/kernels.rs

crates/lint/tests/kernels.rs:
