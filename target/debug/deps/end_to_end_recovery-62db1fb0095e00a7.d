/root/repo/target/debug/deps/end_to_end_recovery-62db1fb0095e00a7.d: crates/bench/src/bin/end_to_end_recovery.rs

/root/repo/target/debug/deps/end_to_end_recovery-62db1fb0095e00a7: crates/bench/src/bin/end_to_end_recovery.rs

crates/bench/src/bin/end_to_end_recovery.rs:
