/root/repo/target/debug/deps/roundtrip-2816c877e1226df9.d: crates/rv32/tests/roundtrip.rs

/root/repo/target/debug/deps/roundtrip-2816c877e1226df9: crates/rv32/tests/roundtrip.rs

crates/rv32/tests/roundtrip.rs:
