/root/repo/target/debug/deps/tvla_assessment-28d1405d186d56ca.d: crates/bench/src/bin/tvla_assessment.rs

/root/repo/target/debug/deps/tvla_assessment-28d1405d186d56ca: crates/bench/src/bin/tvla_assessment.rs

crates/bench/src/bin/tvla_assessment.rs:
