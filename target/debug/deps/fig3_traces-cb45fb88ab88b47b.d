/root/repo/target/debug/deps/fig3_traces-cb45fb88ab88b47b.d: crates/bench/src/bin/fig3_traces.rs

/root/repo/target/debug/deps/fig3_traces-cb45fb88ab88b47b: crates/bench/src/bin/fig3_traces.rs

crates/bench/src/bin/fig3_traces.rs:
