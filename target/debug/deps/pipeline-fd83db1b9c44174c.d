/root/repo/target/debug/deps/pipeline-fd83db1b9c44174c.d: crates/attack/../../tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-fd83db1b9c44174c: crates/attack/../../tests/pipeline.rs

crates/attack/../../tests/pipeline.rs:
