/root/repo/target/debug/deps/table3_hints_cost-cad14c2e81f41628.d: crates/bench/src/bin/table3_hints_cost.rs

/root/repo/target/debug/deps/table3_hints_cost-cad14c2e81f41628: crates/bench/src/bin/table3_hints_cost.rs

crates/bench/src/bin/table3_hints_cost.rs:
