/root/repo/target/debug/deps/ablation_profiling_size-db1bf9c537f45f4a.d: crates/bench/src/bin/ablation_profiling_size.rs Cargo.toml

/root/repo/target/debug/deps/libablation_profiling_size-db1bf9c537f45f4a.rmeta: crates/bench/src/bin/ablation_profiling_size.rs Cargo.toml

crates/bench/src/bin/ablation_profiling_size.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
