/root/repo/target/debug/deps/table3_hints_cost-9484def84685cee3.d: crates/bench/src/bin/table3_hints_cost.rs

/root/repo/target/debug/deps/table3_hints_cost-9484def84685cee3: crates/bench/src/bin/table3_hints_cost.rs

crates/bench/src/bin/table3_hints_cost.rs:
