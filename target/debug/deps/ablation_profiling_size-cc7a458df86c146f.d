/root/repo/target/debug/deps/ablation_profiling_size-cc7a458df86c146f.d: crates/bench/src/bin/ablation_profiling_size.rs Cargo.toml

/root/repo/target/debug/deps/libablation_profiling_size-cc7a458df86c146f.rmeta: crates/bench/src/bin/ablation_profiling_size.rs Cargo.toml

crates/bench/src/bin/ablation_profiling_size.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
