/root/repo/target/debug/deps/multi_modulus_attack-185b08409355a992.d: crates/bench/src/bin/multi_modulus_attack.rs

/root/repo/target/debug/deps/multi_modulus_attack-185b08409355a992: crates/bench/src/bin/multi_modulus_attack.rs

crates/bench/src/bin/multi_modulus_attack.rs:
