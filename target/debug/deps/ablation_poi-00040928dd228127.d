/root/repo/target/debug/deps/ablation_poi-00040928dd228127.d: crates/bench/src/bin/ablation_poi.rs Cargo.toml

/root/repo/target/debug/deps/libablation_poi-00040928dd228127.rmeta: crates/bench/src/bin/ablation_poi.rs Cargo.toml

crates/bench/src/bin/ablation_poi.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
