/root/repo/target/debug/deps/chaos-600c6b23056405e4.d: crates/attack/../../tests/chaos.rs Cargo.toml

/root/repo/target/debug/deps/libchaos-600c6b23056405e4.rmeta: crates/attack/../../tests/chaos.rs Cargo.toml

crates/attack/../../tests/chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
