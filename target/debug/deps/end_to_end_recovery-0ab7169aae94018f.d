/root/repo/target/debug/deps/end_to_end_recovery-0ab7169aae94018f.d: crates/bench/src/bin/end_to_end_recovery.rs

/root/repo/target/debug/deps/end_to_end_recovery-0ab7169aae94018f: crates/bench/src/bin/end_to_end_recovery.rs

crates/bench/src/bin/end_to_end_recovery.rs:
