/root/repo/target/debug/deps/ablation_poi-c38b446b277fe784.d: crates/bench/src/bin/ablation_poi.rs

/root/repo/target/debug/deps/ablation_poi-c38b446b277fe784: crates/bench/src/bin/ablation_poi.rs

crates/bench/src/bin/ablation_poi.rs:
