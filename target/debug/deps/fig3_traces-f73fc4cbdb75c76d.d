/root/repo/target/debug/deps/fig3_traces-f73fc4cbdb75c76d.d: crates/bench/src/bin/fig3_traces.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_traces-f73fc4cbdb75c76d.rmeta: crates/bench/src/bin/fig3_traces.rs Cargo.toml

crates/bench/src/bin/fig3_traces.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
