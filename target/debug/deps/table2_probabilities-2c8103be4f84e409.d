/root/repo/target/debug/deps/table2_probabilities-2c8103be4f84e409.d: crates/bench/src/bin/table2_probabilities.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_probabilities-2c8103be4f84e409.rmeta: crates/bench/src/bin/table2_probabilities.rs Cargo.toml

crates/bench/src/bin/table2_probabilities.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
