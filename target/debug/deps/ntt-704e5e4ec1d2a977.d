/root/repo/target/debug/deps/ntt-704e5e4ec1d2a977.d: crates/bench/benches/ntt.rs Cargo.toml

/root/repo/target/debug/deps/libntt-704e5e4ec1d2a977.rmeta: crates/bench/benches/ntt.rs Cargo.toml

crates/bench/benches/ntt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
