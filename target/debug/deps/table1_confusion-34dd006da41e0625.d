/root/repo/target/debug/deps/table1_confusion-34dd006da41e0625.d: crates/bench/src/bin/table1_confusion.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_confusion-34dd006da41e0625.rmeta: crates/bench/src/bin/table1_confusion.rs Cargo.toml

crates/bench/src/bin/table1_confusion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
