/root/repo/target/debug/deps/defense_shuffling-65446a5d47157cbd.d: crates/bench/src/bin/defense_shuffling.rs Cargo.toml

/root/repo/target/debug/deps/libdefense_shuffling-65446a5d47157cbd.rmeta: crates/bench/src/bin/defense_shuffling.rs Cargo.toml

crates/bench/src/bin/defense_shuffling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
