/root/repo/target/debug/deps/fig3_traces-1a5ebe5d0b0ea996.d: crates/bench/src/bin/fig3_traces.rs

/root/repo/target/debug/deps/fig3_traces-1a5ebe5d0b0ea996: crates/bench/src/bin/fig3_traces.rs

crates/bench/src/bin/fig3_traces.rs:
