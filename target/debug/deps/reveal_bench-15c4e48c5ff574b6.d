/root/repo/target/debug/deps/reveal_bench-15c4e48c5ff574b6.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libreveal_bench-15c4e48c5ff574b6.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libreveal_bench-15c4e48c5ff574b6.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
