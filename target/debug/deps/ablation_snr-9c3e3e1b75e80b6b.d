/root/repo/target/debug/deps/ablation_snr-9c3e3e1b75e80b6b.d: crates/bench/src/bin/ablation_snr.rs

/root/repo/target/debug/deps/ablation_snr-9c3e3e1b75e80b6b: crates/bench/src/bin/ablation_snr.rs

crates/bench/src/bin/ablation_snr.rs:
