/root/repo/target/debug/deps/ckks_attack-71d5009b041f31a2.d: crates/bench/src/bin/ckks_attack.rs Cargo.toml

/root/repo/target/debug/deps/libckks_attack-71d5009b041f31a2.rmeta: crates/bench/src/bin/ckks_attack.rs Cargo.toml

crates/bench/src/bin/ckks_attack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
