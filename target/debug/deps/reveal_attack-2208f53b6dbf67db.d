/root/repo/target/debug/deps/reveal_attack-2208f53b6dbf67db.d: crates/attack/src/lib.rs crates/attack/src/config.rs crates/attack/src/defense.rs crates/attack/src/device.rs crates/attack/src/profile.rs crates/attack/src/recover.rs crates/attack/src/report.rs crates/attack/src/robust.rs

/root/repo/target/debug/deps/libreveal_attack-2208f53b6dbf67db.rlib: crates/attack/src/lib.rs crates/attack/src/config.rs crates/attack/src/defense.rs crates/attack/src/device.rs crates/attack/src/profile.rs crates/attack/src/recover.rs crates/attack/src/report.rs crates/attack/src/robust.rs

/root/repo/target/debug/deps/libreveal_attack-2208f53b6dbf67db.rmeta: crates/attack/src/lib.rs crates/attack/src/config.rs crates/attack/src/defense.rs crates/attack/src/device.rs crates/attack/src/profile.rs crates/attack/src/recover.rs crates/attack/src/report.rs crates/attack/src/robust.rs

crates/attack/src/lib.rs:
crates/attack/src/config.rs:
crates/attack/src/defense.rs:
crates/attack/src/device.rs:
crates/attack/src/profile.rs:
crates/attack/src/recover.rs:
crates/attack/src/report.rs:
crates/attack/src/robust.rs:
