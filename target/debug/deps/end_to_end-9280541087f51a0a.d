/root/repo/target/debug/deps/end_to_end-9280541087f51a0a.d: crates/attack/../../tests/end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end-9280541087f51a0a.rmeta: crates/attack/../../tests/end_to_end.rs Cargo.toml

crates/attack/../../tests/end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
