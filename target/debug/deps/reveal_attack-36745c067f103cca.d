/root/repo/target/debug/deps/reveal_attack-36745c067f103cca.d: crates/attack/src/lib.rs crates/attack/src/config.rs crates/attack/src/defense.rs crates/attack/src/device.rs crates/attack/src/profile.rs crates/attack/src/recover.rs crates/attack/src/report.rs crates/attack/src/robust.rs Cargo.toml

/root/repo/target/debug/deps/libreveal_attack-36745c067f103cca.rmeta: crates/attack/src/lib.rs crates/attack/src/config.rs crates/attack/src/defense.rs crates/attack/src/device.rs crates/attack/src/profile.rs crates/attack/src/recover.rs crates/attack/src/report.rs crates/attack/src/robust.rs Cargo.toml

crates/attack/src/lib.rs:
crates/attack/src/config.rs:
crates/attack/src/defense.rs:
crates/attack/src/device.rs:
crates/attack/src/profile.rs:
crates/attack/src/recover.rs:
crates/attack/src/report.rs:
crates/attack/src/robust.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
