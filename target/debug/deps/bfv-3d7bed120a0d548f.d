/root/repo/target/debug/deps/bfv-3d7bed120a0d548f.d: crates/bench/benches/bfv.rs Cargo.toml

/root/repo/target/debug/deps/libbfv-3d7bed120a0d548f.rmeta: crates/bench/benches/bfv.rs Cargo.toml

crates/bench/benches/bfv.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
