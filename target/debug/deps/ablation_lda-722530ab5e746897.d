/root/repo/target/debug/deps/ablation_lda-722530ab5e746897.d: crates/bench/src/bin/ablation_lda.rs Cargo.toml

/root/repo/target/debug/deps/libablation_lda-722530ab5e746897.rmeta: crates/bench/src/bin/ablation_lda.rs Cargo.toml

crates/bench/src/bin/ablation_lda.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
