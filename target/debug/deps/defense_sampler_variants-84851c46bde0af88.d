/root/repo/target/debug/deps/defense_sampler_variants-84851c46bde0af88.d: crates/bench/src/bin/defense_sampler_variants.rs

/root/repo/target/debug/deps/defense_sampler_variants-84851c46bde0af88: crates/bench/src/bin/defense_sampler_variants.rs

crates/bench/src/bin/defense_sampler_variants.rs:
