/root/repo/target/debug/deps/fig3_traces-34bf7f191da54bda.d: crates/bench/src/bin/fig3_traces.rs

/root/repo/target/debug/deps/fig3_traces-34bf7f191da54bda: crates/bench/src/bin/fig3_traces.rs

crates/bench/src/bin/fig3_traces.rs:
