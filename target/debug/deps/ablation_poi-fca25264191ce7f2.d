/root/repo/target/debug/deps/ablation_poi-fca25264191ce7f2.d: crates/bench/src/bin/ablation_poi.rs

/root/repo/target/debug/deps/ablation_poi-fca25264191ce7f2: crates/bench/src/bin/ablation_poi.rs

crates/bench/src/bin/ablation_poi.rs:
