/root/repo/target/debug/deps/keygen_attack-cad29fd054a4a492.d: crates/bench/src/bin/keygen_attack.rs Cargo.toml

/root/repo/target/debug/deps/libkeygen_attack-cad29fd054a4a492.rmeta: crates/bench/src/bin/keygen_attack.rs Cargo.toml

crates/bench/src/bin/keygen_attack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
