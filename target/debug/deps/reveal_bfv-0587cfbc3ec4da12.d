/root/repo/target/debug/deps/reveal_bfv-0587cfbc3ec4da12.d: crates/bfv/src/lib.rs crates/bfv/src/context.rs crates/bfv/src/decryptor.rs crates/bfv/src/encoder.rs crates/bfv/src/encryptor.rs crates/bfv/src/evaluator.rs crates/bfv/src/keys.rs crates/bfv/src/params.rs crates/bfv/src/sampler.rs crates/bfv/src/serialization.rs crates/bfv/src/variants.rs

/root/repo/target/debug/deps/libreveal_bfv-0587cfbc3ec4da12.rlib: crates/bfv/src/lib.rs crates/bfv/src/context.rs crates/bfv/src/decryptor.rs crates/bfv/src/encoder.rs crates/bfv/src/encryptor.rs crates/bfv/src/evaluator.rs crates/bfv/src/keys.rs crates/bfv/src/params.rs crates/bfv/src/sampler.rs crates/bfv/src/serialization.rs crates/bfv/src/variants.rs

/root/repo/target/debug/deps/libreveal_bfv-0587cfbc3ec4da12.rmeta: crates/bfv/src/lib.rs crates/bfv/src/context.rs crates/bfv/src/decryptor.rs crates/bfv/src/encoder.rs crates/bfv/src/encryptor.rs crates/bfv/src/evaluator.rs crates/bfv/src/keys.rs crates/bfv/src/params.rs crates/bfv/src/sampler.rs crates/bfv/src/serialization.rs crates/bfv/src/variants.rs

crates/bfv/src/lib.rs:
crates/bfv/src/context.rs:
crates/bfv/src/decryptor.rs:
crates/bfv/src/encoder.rs:
crates/bfv/src/encryptor.rs:
crates/bfv/src/evaluator.rs:
crates/bfv/src/keys.rs:
crates/bfv/src/params.rs:
crates/bfv/src/sampler.rs:
crates/bfv/src/serialization.rs:
crates/bfv/src/variants.rs:
