/root/repo/target/debug/deps/reveal_attack-cd9175c687e6752d.d: crates/attack/src/lib.rs crates/attack/src/config.rs crates/attack/src/defense.rs crates/attack/src/device.rs crates/attack/src/profile.rs crates/attack/src/recover.rs crates/attack/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libreveal_attack-cd9175c687e6752d.rmeta: crates/attack/src/lib.rs crates/attack/src/config.rs crates/attack/src/defense.rs crates/attack/src/device.rs crates/attack/src/profile.rs crates/attack/src/recover.rs crates/attack/src/report.rs Cargo.toml

crates/attack/src/lib.rs:
crates/attack/src/config.rs:
crates/attack/src/defense.rs:
crates/attack/src/device.rs:
crates/attack/src/profile.rs:
crates/attack/src/recover.rs:
crates/attack/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
