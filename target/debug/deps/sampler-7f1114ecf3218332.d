/root/repo/target/debug/deps/sampler-7f1114ecf3218332.d: crates/bench/benches/sampler.rs Cargo.toml

/root/repo/target/debug/deps/libsampler-7f1114ecf3218332.rmeta: crates/bench/benches/sampler.rs Cargo.toml

crates/bench/benches/sampler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
