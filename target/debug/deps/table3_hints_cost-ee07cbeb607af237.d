/root/repo/target/debug/deps/table3_hints_cost-ee07cbeb607af237.d: crates/bench/src/bin/table3_hints_cost.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_hints_cost-ee07cbeb607af237.rmeta: crates/bench/src/bin/table3_hints_cost.rs Cargo.toml

crates/bench/src/bin/table3_hints_cost.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
