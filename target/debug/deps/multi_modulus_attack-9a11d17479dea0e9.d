/root/repo/target/debug/deps/multi_modulus_attack-9a11d17479dea0e9.d: crates/bench/src/bin/multi_modulus_attack.rs

/root/repo/target/debug/deps/multi_modulus_attack-9a11d17479dea0e9: crates/bench/src/bin/multi_modulus_attack.rs

crates/bench/src/bin/multi_modulus_attack.rs:
