/root/repo/target/debug/deps/table3_hints_cost-340f32ad4d2ca4bc.d: crates/bench/src/bin/table3_hints_cost.rs

/root/repo/target/debug/deps/table3_hints_cost-340f32ad4d2ca4bc: crates/bench/src/bin/table3_hints_cost.rs

crates/bench/src/bin/table3_hints_cost.rs:
