/root/repo/target/debug/deps/ablation_lda-efb242e7ec6406c9.d: crates/bench/src/bin/ablation_lda.rs

/root/repo/target/debug/deps/ablation_lda-efb242e7ec6406c9: crates/bench/src/bin/ablation_lda.rs

crates/bench/src/bin/ablation_lda.rs:
