/root/repo/target/debug/deps/pipeline-995afc41896b3465.d: crates/attack/../../tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-995afc41896b3465: crates/attack/../../tests/pipeline.rs

crates/attack/../../tests/pipeline.rs:
