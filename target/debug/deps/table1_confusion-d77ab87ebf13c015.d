/root/repo/target/debug/deps/table1_confusion-d77ab87ebf13c015.d: crates/bench/src/bin/table1_confusion.rs

/root/repo/target/debug/deps/table1_confusion-d77ab87ebf13c015: crates/bench/src/bin/table1_confusion.rs

crates/bench/src/bin/table1_confusion.rs:
