/root/repo/target/debug/deps/defense_sampler_variants-de48bb941535da1c.d: crates/bench/src/bin/defense_sampler_variants.rs

/root/repo/target/debug/deps/defense_sampler_variants-de48bb941535da1c: crates/bench/src/bin/defense_sampler_variants.rs

crates/bench/src/bin/defense_sampler_variants.rs:
