/root/repo/target/debug/deps/reveal_par-f66d7453482dc0de.d: crates/par/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libreveal_par-f66d7453482dc0de.rmeta: crates/par/src/lib.rs Cargo.toml

crates/par/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
