/root/repo/target/debug/deps/defense_sampler_variants-bffd98a050df5ccd.d: crates/bench/src/bin/defense_sampler_variants.rs Cargo.toml

/root/repo/target/debug/deps/libdefense_sampler_variants-bffd98a050df5ccd.rmeta: crates/bench/src/bin/defense_sampler_variants.rs Cargo.toml

crates/bench/src/bin/defense_sampler_variants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
