/root/repo/target/debug/deps/reveal_attack-db5d411df4b8a49a.d: crates/attack/src/lib.rs crates/attack/src/config.rs crates/attack/src/defense.rs crates/attack/src/device.rs crates/attack/src/profile.rs crates/attack/src/recover.rs crates/attack/src/report.rs

/root/repo/target/debug/deps/reveal_attack-db5d411df4b8a49a: crates/attack/src/lib.rs crates/attack/src/config.rs crates/attack/src/defense.rs crates/attack/src/device.rs crates/attack/src/profile.rs crates/attack/src/recover.rs crates/attack/src/report.rs

crates/attack/src/lib.rs:
crates/attack/src/config.rs:
crates/attack/src/defense.rs:
crates/attack/src/device.rs:
crates/attack/src/profile.rs:
crates/attack/src/recover.rs:
crates/attack/src/report.rs:
