/root/repo/target/debug/deps/security_tables-64c1e65e752e8c17.d: crates/attack/../../tests/security_tables.rs Cargo.toml

/root/repo/target/debug/deps/libsecurity_tables-64c1e65e752e8c17.rmeta: crates/attack/../../tests/security_tables.rs Cargo.toml

crates/attack/../../tests/security_tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
