/root/repo/target/debug/deps/ablation_profiling_size-d485714b5af220d5.d: crates/bench/src/bin/ablation_profiling_size.rs

/root/repo/target/debug/deps/ablation_profiling_size-d485714b5af220d5: crates/bench/src/bin/ablation_profiling_size.rs

crates/bench/src/bin/ablation_profiling_size.rs:
