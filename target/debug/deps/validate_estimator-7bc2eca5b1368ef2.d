/root/repo/target/debug/deps/validate_estimator-7bc2eca5b1368ef2.d: crates/bench/src/bin/validate_estimator.rs

/root/repo/target/debug/deps/validate_estimator-7bc2eca5b1368ef2: crates/bench/src/bin/validate_estimator.rs

crates/bench/src/bin/validate_estimator.rs:
