/root/repo/target/debug/deps/ablation_snr-37de4a1429eb5db3.d: crates/bench/src/bin/ablation_snr.rs

/root/repo/target/debug/deps/ablation_snr-37de4a1429eb5db3: crates/bench/src/bin/ablation_snr.rs

crates/bench/src/bin/ablation_snr.rs:
