/root/repo/target/debug/deps/table2_probabilities-8ab37fb07fa620f5.d: crates/bench/src/bin/table2_probabilities.rs Cargo.toml

/root/repo/target/debug/deps/libtable2_probabilities-8ab37fb07fa620f5.rmeta: crates/bench/src/bin/table2_probabilities.rs Cargo.toml

crates/bench/src/bin/table2_probabilities.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
