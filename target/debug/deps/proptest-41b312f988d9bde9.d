/root/repo/target/debug/deps/proptest-41b312f988d9bde9.d: crates/proptest-shim/src/lib.rs crates/proptest-shim/src/arbitrary.rs crates/proptest-shim/src/collection.rs crates/proptest-shim/src/config.rs crates/proptest-shim/src/strategy.rs crates/proptest-shim/src/test_runner.rs

/root/repo/target/debug/deps/proptest-41b312f988d9bde9: crates/proptest-shim/src/lib.rs crates/proptest-shim/src/arbitrary.rs crates/proptest-shim/src/collection.rs crates/proptest-shim/src/config.rs crates/proptest-shim/src/strategy.rs crates/proptest-shim/src/test_runner.rs

crates/proptest-shim/src/lib.rs:
crates/proptest-shim/src/arbitrary.rs:
crates/proptest-shim/src/collection.rs:
crates/proptest-shim/src/config.rs:
crates/proptest-shim/src/strategy.rs:
crates/proptest-shim/src/test_runner.rs:
