/root/repo/target/debug/deps/bench_chaos-a90a580a69c3ae6a.d: crates/bench/src/bin/bench_chaos.rs

/root/repo/target/debug/deps/bench_chaos-a90a580a69c3ae6a: crates/bench/src/bin/bench_chaos.rs

crates/bench/src/bin/bench_chaos.rs:
