/root/repo/target/debug/deps/lattice-6cb81a160e0ec294.d: crates/bench/benches/lattice.rs Cargo.toml

/root/repo/target/debug/deps/liblattice-6cb81a160e0ec294.rmeta: crates/bench/benches/lattice.rs Cargo.toml

crates/bench/benches/lattice.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
