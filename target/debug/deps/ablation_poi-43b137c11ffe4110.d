/root/repo/target/debug/deps/ablation_poi-43b137c11ffe4110.d: crates/bench/src/bin/ablation_poi.rs Cargo.toml

/root/repo/target/debug/deps/libablation_poi-43b137c11ffe4110.rmeta: crates/bench/src/bin/ablation_poi.rs Cargo.toml

crates/bench/src/bin/ablation_poi.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
