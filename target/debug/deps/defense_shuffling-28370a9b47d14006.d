/root/repo/target/debug/deps/defense_shuffling-28370a9b47d14006.d: crates/bench/src/bin/defense_shuffling.rs Cargo.toml

/root/repo/target/debug/deps/libdefense_shuffling-28370a9b47d14006.rmeta: crates/bench/src/bin/defense_shuffling.rs Cargo.toml

crates/bench/src/bin/defense_shuffling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
