/root/repo/target/debug/deps/ablation_profiling_size-0c7a02f04e5686af.d: crates/bench/src/bin/ablation_profiling_size.rs Cargo.toml

/root/repo/target/debug/deps/libablation_profiling_size-0c7a02f04e5686af.rmeta: crates/bench/src/bin/ablation_profiling_size.rs Cargo.toml

crates/bench/src/bin/ablation_profiling_size.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
