/root/repo/target/debug/deps/reveal_bench-1767a66093356481.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libreveal_bench-1767a66093356481.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
