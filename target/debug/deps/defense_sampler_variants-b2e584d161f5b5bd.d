/root/repo/target/debug/deps/defense_sampler_variants-b2e584d161f5b5bd.d: crates/bench/src/bin/defense_sampler_variants.rs Cargo.toml

/root/repo/target/debug/deps/libdefense_sampler_variants-b2e584d161f5b5bd.rmeta: crates/bench/src/bin/defense_sampler_variants.rs Cargo.toml

crates/bench/src/bin/defense_sampler_variants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
