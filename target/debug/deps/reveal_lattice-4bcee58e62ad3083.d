/root/repo/target/debug/deps/reveal_lattice-4bcee58e62ad3083.d: crates/lattice/src/lib.rs crates/lattice/src/bkz.rs crates/lattice/src/embedding.rs crates/lattice/src/enumeration.rs crates/lattice/src/gsa.rs crates/lattice/src/gso.rs crates/lattice/src/lll.rs

/root/repo/target/debug/deps/libreveal_lattice-4bcee58e62ad3083.rlib: crates/lattice/src/lib.rs crates/lattice/src/bkz.rs crates/lattice/src/embedding.rs crates/lattice/src/enumeration.rs crates/lattice/src/gsa.rs crates/lattice/src/gso.rs crates/lattice/src/lll.rs

/root/repo/target/debug/deps/libreveal_lattice-4bcee58e62ad3083.rmeta: crates/lattice/src/lib.rs crates/lattice/src/bkz.rs crates/lattice/src/embedding.rs crates/lattice/src/enumeration.rs crates/lattice/src/gsa.rs crates/lattice/src/gso.rs crates/lattice/src/lll.rs

crates/lattice/src/lib.rs:
crates/lattice/src/bkz.rs:
crates/lattice/src/embedding.rs:
crates/lattice/src/enumeration.rs:
crates/lattice/src/gsa.rs:
crates/lattice/src/gso.rs:
crates/lattice/src/lll.rs:
