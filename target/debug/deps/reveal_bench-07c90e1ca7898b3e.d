/root/repo/target/debug/deps/reveal_bench-07c90e1ca7898b3e.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libreveal_bench-07c90e1ca7898b3e.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
