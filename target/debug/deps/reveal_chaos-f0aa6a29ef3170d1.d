/root/repo/target/debug/deps/reveal_chaos-f0aa6a29ef3170d1.d: crates/chaos/src/lib.rs crates/chaos/src/fault.rs crates/chaos/src/inject.rs

/root/repo/target/debug/deps/reveal_chaos-f0aa6a29ef3170d1: crates/chaos/src/lib.rs crates/chaos/src/fault.rs crates/chaos/src/inject.rs

crates/chaos/src/lib.rs:
crates/chaos/src/fault.rs:
crates/chaos/src/inject.rs:
