/root/repo/target/debug/deps/keygen_attack-26480701743a3041.d: crates/bench/src/bin/keygen_attack.rs

/root/repo/target/debug/deps/keygen_attack-26480701743a3041: crates/bench/src/bin/keygen_attack.rs

crates/bench/src/bin/keygen_attack.rs:
