/root/repo/target/debug/deps/reveal_bench-86b3bddc4bcc9700.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libreveal_bench-86b3bddc4bcc9700.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
