/root/repo/target/debug/deps/defense_shuffling-f4c8c5e80f9a724a.d: crates/bench/src/bin/defense_shuffling.rs

/root/repo/target/debug/deps/defense_shuffling-f4c8c5e80f9a724a: crates/bench/src/bin/defense_shuffling.rs

crates/bench/src/bin/defense_shuffling.rs:
