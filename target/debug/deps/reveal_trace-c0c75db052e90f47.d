/root/repo/target/debug/deps/reveal_trace-c0c75db052e90f47.d: crates/trace/src/lib.rs crates/trace/src/align.rs crates/trace/src/cpa.rs crates/trace/src/export.rs crates/trace/src/poi.rs crates/trace/src/sanity.rs crates/trace/src/segment.rs crates/trace/src/stats.rs crates/trace/src/trace.rs crates/trace/src/tvla.rs

/root/repo/target/debug/deps/reveal_trace-c0c75db052e90f47: crates/trace/src/lib.rs crates/trace/src/align.rs crates/trace/src/cpa.rs crates/trace/src/export.rs crates/trace/src/poi.rs crates/trace/src/sanity.rs crates/trace/src/segment.rs crates/trace/src/stats.rs crates/trace/src/trace.rs crates/trace/src/tvla.rs

crates/trace/src/lib.rs:
crates/trace/src/align.rs:
crates/trace/src/cpa.rs:
crates/trace/src/export.rs:
crates/trace/src/poi.rs:
crates/trace/src/sanity.rs:
crates/trace/src/segment.rs:
crates/trace/src/stats.rs:
crates/trace/src/trace.rs:
crates/trace/src/tvla.rs:
