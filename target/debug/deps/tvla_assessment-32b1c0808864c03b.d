/root/repo/target/debug/deps/tvla_assessment-32b1c0808864c03b.d: crates/bench/src/bin/tvla_assessment.rs Cargo.toml

/root/repo/target/debug/deps/libtvla_assessment-32b1c0808864c03b.rmeta: crates/bench/src/bin/tvla_assessment.rs Cargo.toml

crates/bench/src/bin/tvla_assessment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
