/root/repo/target/debug/deps/fig3_traces-fb6b326f74c3b88e.d: crates/bench/src/bin/fig3_traces.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_traces-fb6b326f74c3b88e.rmeta: crates/bench/src/bin/fig3_traces.rs Cargo.toml

crates/bench/src/bin/fig3_traces.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
