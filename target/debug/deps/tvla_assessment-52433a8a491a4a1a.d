/root/repo/target/debug/deps/tvla_assessment-52433a8a491a4a1a.d: crates/bench/src/bin/tvla_assessment.rs Cargo.toml

/root/repo/target/debug/deps/libtvla_assessment-52433a8a491a4a1a.rmeta: crates/bench/src/bin/tvla_assessment.rs Cargo.toml

crates/bench/src/bin/tvla_assessment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
