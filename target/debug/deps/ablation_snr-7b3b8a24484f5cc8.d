/root/repo/target/debug/deps/ablation_snr-7b3b8a24484f5cc8.d: crates/bench/src/bin/ablation_snr.rs Cargo.toml

/root/repo/target/debug/deps/libablation_snr-7b3b8a24484f5cc8.rmeta: crates/bench/src/bin/ablation_snr.rs Cargo.toml

crates/bench/src/bin/ablation_snr.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
