/root/repo/target/debug/deps/reveal_template-b178d3fa4a1e9251.d: crates/template/src/lib.rs crates/template/src/confusion.rs crates/template/src/lda.rs crates/template/src/matrix.rs crates/template/src/scores.rs crates/template/src/template.rs Cargo.toml

/root/repo/target/debug/deps/libreveal_template-b178d3fa4a1e9251.rmeta: crates/template/src/lib.rs crates/template/src/confusion.rs crates/template/src/lda.rs crates/template/src/matrix.rs crates/template/src/scores.rs crates/template/src/template.rs Cargo.toml

crates/template/src/lib.rs:
crates/template/src/confusion.rs:
crates/template/src/lda.rs:
crates/template/src/matrix.rs:
crates/template/src/scores.rs:
crates/template/src/template.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
