/root/repo/target/debug/deps/table2_probabilities-1cd6829617849dcc.d: crates/bench/src/bin/table2_probabilities.rs

/root/repo/target/debug/deps/table2_probabilities-1cd6829617849dcc: crates/bench/src/bin/table2_probabilities.rs

crates/bench/src/bin/table2_probabilities.rs:
