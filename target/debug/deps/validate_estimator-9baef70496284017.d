/root/repo/target/debug/deps/validate_estimator-9baef70496284017.d: crates/bench/src/bin/validate_estimator.rs

/root/repo/target/debug/deps/validate_estimator-9baef70496284017: crates/bench/src/bin/validate_estimator.rs

crates/bench/src/bin/validate_estimator.rs:
