/root/repo/target/debug/deps/table4_sign_only-c7810f776aa647c8.d: crates/bench/src/bin/table4_sign_only.rs Cargo.toml

/root/repo/target/debug/deps/libtable4_sign_only-c7810f776aa647c8.rmeta: crates/bench/src/bin/table4_sign_only.rs Cargo.toml

crates/bench/src/bin/table4_sign_only.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
