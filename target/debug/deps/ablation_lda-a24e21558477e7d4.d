/root/repo/target/debug/deps/ablation_lda-a24e21558477e7d4.d: crates/bench/src/bin/ablation_lda.rs

/root/repo/target/debug/deps/ablation_lda-a24e21558477e7d4: crates/bench/src/bin/ablation_lda.rs

crates/bench/src/bin/ablation_lda.rs:
