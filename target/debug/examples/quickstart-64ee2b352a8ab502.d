/root/repo/target/debug/examples/quickstart-64ee2b352a8ab502.d: crates/attack/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-64ee2b352a8ab502.rmeta: crates/attack/../../examples/quickstart.rs Cargo.toml

crates/attack/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
