/root/repo/target/debug/examples/quickstart-cebb2281b8827ff4.d: crates/attack/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-cebb2281b8827ff4: crates/attack/../../examples/quickstart.rs

crates/attack/../../examples/quickstart.rs:
