/root/repo/target/debug/examples/quickstart-7ce3e554b0d8ef0a.d: crates/attack/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-7ce3e554b0d8ef0a.rmeta: crates/attack/../../examples/quickstart.rs Cargo.toml

crates/attack/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
