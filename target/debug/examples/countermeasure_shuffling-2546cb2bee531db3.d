/root/repo/target/debug/examples/countermeasure_shuffling-2546cb2bee531db3.d: crates/attack/../../examples/countermeasure_shuffling.rs Cargo.toml

/root/repo/target/debug/examples/libcountermeasure_shuffling-2546cb2bee531db3.rmeta: crates/attack/../../examples/countermeasure_shuffling.rs Cargo.toml

crates/attack/../../examples/countermeasure_shuffling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
