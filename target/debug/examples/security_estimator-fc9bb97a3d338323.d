/root/repo/target/debug/examples/security_estimator-fc9bb97a3d338323.d: crates/attack/../../examples/security_estimator.rs Cargo.toml

/root/repo/target/debug/examples/libsecurity_estimator-fc9bb97a3d338323.rmeta: crates/attack/../../examples/security_estimator.rs Cargo.toml

crates/attack/../../examples/security_estimator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
