/root/repo/target/debug/examples/encrypted_medical_db-3678a52eb1be13a1.d: crates/attack/../../examples/encrypted_medical_db.rs

/root/repo/target/debug/examples/encrypted_medical_db-3678a52eb1be13a1: crates/attack/../../examples/encrypted_medical_db.rs

crates/attack/../../examples/encrypted_medical_db.rs:
