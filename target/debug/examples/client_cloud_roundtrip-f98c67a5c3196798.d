/root/repo/target/debug/examples/client_cloud_roundtrip-f98c67a5c3196798.d: crates/attack/../../examples/client_cloud_roundtrip.rs

/root/repo/target/debug/examples/client_cloud_roundtrip-f98c67a5c3196798: crates/attack/../../examples/client_cloud_roundtrip.rs

crates/attack/../../examples/client_cloud_roundtrip.rs:
