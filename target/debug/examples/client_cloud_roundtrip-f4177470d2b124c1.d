/root/repo/target/debug/examples/client_cloud_roundtrip-f4177470d2b124c1.d: crates/attack/../../examples/client_cloud_roundtrip.rs Cargo.toml

/root/repo/target/debug/examples/libclient_cloud_roundtrip-f4177470d2b124c1.rmeta: crates/attack/../../examples/client_cloud_roundtrip.rs Cargo.toml

crates/attack/../../examples/client_cloud_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
