/root/repo/target/debug/examples/quickstart-db1fc524cdc0c602.d: crates/attack/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-db1fc524cdc0c602: crates/attack/../../examples/quickstart.rs

crates/attack/../../examples/quickstart.rs:
