/root/repo/target/debug/examples/client_cloud_roundtrip-786e53682837e7cd.d: crates/attack/../../examples/client_cloud_roundtrip.rs

/root/repo/target/debug/examples/client_cloud_roundtrip-786e53682837e7cd: crates/attack/../../examples/client_cloud_roundtrip.rs

crates/attack/../../examples/client_cloud_roundtrip.rs:
