/root/repo/target/debug/examples/encrypted_medical_db-19f5588ac16289a7.d: crates/attack/../../examples/encrypted_medical_db.rs Cargo.toml

/root/repo/target/debug/examples/libencrypted_medical_db-19f5588ac16289a7.rmeta: crates/attack/../../examples/encrypted_medical_db.rs Cargo.toml

crates/attack/../../examples/encrypted_medical_db.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
