/root/repo/target/debug/examples/security_estimator-cc229ebc6053efe2.d: crates/attack/../../examples/security_estimator.rs

/root/repo/target/debug/examples/security_estimator-cc229ebc6053efe2: crates/attack/../../examples/security_estimator.rs

crates/attack/../../examples/security_estimator.rs:
