/root/repo/target/debug/examples/quickstart-b19476076cc1b6cc.d: crates/attack/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-b19476076cc1b6cc: crates/attack/../../examples/quickstart.rs

crates/attack/../../examples/quickstart.rs:
