/root/repo/target/debug/examples/security_estimator-3f08f18b2ca9ef2b.d: crates/attack/../../examples/security_estimator.rs

/root/repo/target/debug/examples/security_estimator-3f08f18b2ca9ef2b: crates/attack/../../examples/security_estimator.rs

crates/attack/../../examples/security_estimator.rs:
