/root/repo/target/debug/examples/security_estimator-130573b03c7ffb8d.d: crates/attack/../../examples/security_estimator.rs

/root/repo/target/debug/examples/security_estimator-130573b03c7ffb8d: crates/attack/../../examples/security_estimator.rs

crates/attack/../../examples/security_estimator.rs:
