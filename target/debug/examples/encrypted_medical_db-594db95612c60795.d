/root/repo/target/debug/examples/encrypted_medical_db-594db95612c60795.d: crates/attack/../../examples/encrypted_medical_db.rs

/root/repo/target/debug/examples/encrypted_medical_db-594db95612c60795: crates/attack/../../examples/encrypted_medical_db.rs

crates/attack/../../examples/encrypted_medical_db.rs:
