/root/repo/target/debug/examples/client_cloud_roundtrip-3e3813045c799997.d: crates/attack/../../examples/client_cloud_roundtrip.rs

/root/repo/target/debug/examples/client_cloud_roundtrip-3e3813045c799997: crates/attack/../../examples/client_cloud_roundtrip.rs

crates/attack/../../examples/client_cloud_roundtrip.rs:
