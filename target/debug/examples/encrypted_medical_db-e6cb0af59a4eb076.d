/root/repo/target/debug/examples/encrypted_medical_db-e6cb0af59a4eb076.d: crates/attack/../../examples/encrypted_medical_db.rs Cargo.toml

/root/repo/target/debug/examples/libencrypted_medical_db-e6cb0af59a4eb076.rmeta: crates/attack/../../examples/encrypted_medical_db.rs Cargo.toml

crates/attack/../../examples/encrypted_medical_db.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
