/root/repo/target/debug/examples/security_estimator-f43f12d927358a09.d: crates/attack/../../examples/security_estimator.rs

/root/repo/target/debug/examples/security_estimator-f43f12d927358a09: crates/attack/../../examples/security_estimator.rs

crates/attack/../../examples/security_estimator.rs:
