/root/repo/target/debug/examples/quickstart-5418a9059dd1e5cf.d: crates/attack/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-5418a9059dd1e5cf.rmeta: crates/attack/../../examples/quickstart.rs Cargo.toml

crates/attack/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
