/root/repo/target/debug/examples/quickstart-b54d7c18f1bdd7eb.d: crates/attack/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-b54d7c18f1bdd7eb: crates/attack/../../examples/quickstart.rs

crates/attack/../../examples/quickstart.rs:
