/root/repo/target/debug/examples/countermeasure_shuffling-74670be14a4638a3.d: crates/attack/../../examples/countermeasure_shuffling.rs Cargo.toml

/root/repo/target/debug/examples/libcountermeasure_shuffling-74670be14a4638a3.rmeta: crates/attack/../../examples/countermeasure_shuffling.rs Cargo.toml

crates/attack/../../examples/countermeasure_shuffling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
