/root/repo/target/debug/examples/security_estimator-e8f6355cf1630c6e.d: crates/attack/../../examples/security_estimator.rs Cargo.toml

/root/repo/target/debug/examples/libsecurity_estimator-e8f6355cf1630c6e.rmeta: crates/attack/../../examples/security_estimator.rs Cargo.toml

crates/attack/../../examples/security_estimator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
