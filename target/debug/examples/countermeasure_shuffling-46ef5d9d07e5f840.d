/root/repo/target/debug/examples/countermeasure_shuffling-46ef5d9d07e5f840.d: crates/attack/../../examples/countermeasure_shuffling.rs Cargo.toml

/root/repo/target/debug/examples/libcountermeasure_shuffling-46ef5d9d07e5f840.rmeta: crates/attack/../../examples/countermeasure_shuffling.rs Cargo.toml

crates/attack/../../examples/countermeasure_shuffling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
