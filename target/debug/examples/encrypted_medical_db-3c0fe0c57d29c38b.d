/root/repo/target/debug/examples/encrypted_medical_db-3c0fe0c57d29c38b.d: crates/attack/../../examples/encrypted_medical_db.rs

/root/repo/target/debug/examples/encrypted_medical_db-3c0fe0c57d29c38b: crates/attack/../../examples/encrypted_medical_db.rs

crates/attack/../../examples/encrypted_medical_db.rs:
