/root/repo/target/debug/examples/encrypted_medical_db-eb9c07a9a4f49c7e.d: crates/attack/../../examples/encrypted_medical_db.rs Cargo.toml

/root/repo/target/debug/examples/libencrypted_medical_db-eb9c07a9a4f49c7e.rmeta: crates/attack/../../examples/encrypted_medical_db.rs Cargo.toml

crates/attack/../../examples/encrypted_medical_db.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
