/root/repo/target/debug/examples/countermeasure_shuffling-193ce254d36b37c0.d: crates/attack/../../examples/countermeasure_shuffling.rs

/root/repo/target/debug/examples/countermeasure_shuffling-193ce254d36b37c0: crates/attack/../../examples/countermeasure_shuffling.rs

crates/attack/../../examples/countermeasure_shuffling.rs:
