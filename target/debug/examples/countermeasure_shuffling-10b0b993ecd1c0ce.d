/root/repo/target/debug/examples/countermeasure_shuffling-10b0b993ecd1c0ce.d: crates/attack/../../examples/countermeasure_shuffling.rs

/root/repo/target/debug/examples/countermeasure_shuffling-10b0b993ecd1c0ce: crates/attack/../../examples/countermeasure_shuffling.rs

crates/attack/../../examples/countermeasure_shuffling.rs:
