/root/repo/target/debug/examples/security_estimator-5f466edffc562fdb.d: crates/attack/../../examples/security_estimator.rs Cargo.toml

/root/repo/target/debug/examples/libsecurity_estimator-5f466edffc562fdb.rmeta: crates/attack/../../examples/security_estimator.rs Cargo.toml

crates/attack/../../examples/security_estimator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
