/root/repo/target/debug/examples/countermeasure_shuffling-648f6730f1150752.d: crates/attack/../../examples/countermeasure_shuffling.rs

/root/repo/target/debug/examples/countermeasure_shuffling-648f6730f1150752: crates/attack/../../examples/countermeasure_shuffling.rs

crates/attack/../../examples/countermeasure_shuffling.rs:
