/root/repo/target/debug/examples/client_cloud_roundtrip-97ace68ea4d3eb82.d: crates/attack/../../examples/client_cloud_roundtrip.rs Cargo.toml

/root/repo/target/debug/examples/libclient_cloud_roundtrip-97ace68ea4d3eb82.rmeta: crates/attack/../../examples/client_cloud_roundtrip.rs Cargo.toml

crates/attack/../../examples/client_cloud_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
