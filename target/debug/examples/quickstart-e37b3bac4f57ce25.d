/root/repo/target/debug/examples/quickstart-e37b3bac4f57ce25.d: crates/attack/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-e37b3bac4f57ce25.rmeta: crates/attack/../../examples/quickstart.rs Cargo.toml

crates/attack/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
