/root/repo/target/debug/examples/encrypted_medical_db-668f3d7ec5900817.d: crates/attack/../../examples/encrypted_medical_db.rs

/root/repo/target/debug/examples/encrypted_medical_db-668f3d7ec5900817: crates/attack/../../examples/encrypted_medical_db.rs

crates/attack/../../examples/encrypted_medical_db.rs:
