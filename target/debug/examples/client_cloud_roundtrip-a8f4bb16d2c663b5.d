/root/repo/target/debug/examples/client_cloud_roundtrip-a8f4bb16d2c663b5.d: crates/attack/../../examples/client_cloud_roundtrip.rs Cargo.toml

/root/repo/target/debug/examples/libclient_cloud_roundtrip-a8f4bb16d2c663b5.rmeta: crates/attack/../../examples/client_cloud_roundtrip.rs Cargo.toml

crates/attack/../../examples/client_cloud_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
