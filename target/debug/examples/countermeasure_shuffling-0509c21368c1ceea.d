/root/repo/target/debug/examples/countermeasure_shuffling-0509c21368c1ceea.d: crates/attack/../../examples/countermeasure_shuffling.rs

/root/repo/target/debug/examples/countermeasure_shuffling-0509c21368c1ceea: crates/attack/../../examples/countermeasure_shuffling.rs

crates/attack/../../examples/countermeasure_shuffling.rs:
