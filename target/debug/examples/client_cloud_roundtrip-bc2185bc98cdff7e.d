/root/repo/target/debug/examples/client_cloud_roundtrip-bc2185bc98cdff7e.d: crates/attack/../../examples/client_cloud_roundtrip.rs

/root/repo/target/debug/examples/client_cloud_roundtrip-bc2185bc98cdff7e: crates/attack/../../examples/client_cloud_roundtrip.rs

crates/attack/../../examples/client_cloud_roundtrip.rs:
