//! Static-predicts-dynamic cross-validation: the leakage certifier's
//! ranked map must cover every program point the *real* template attack
//! reads, and the sites it certifies quiet must show no exploitable
//! correlation in real traces.

use rand::rngs::StdRng;
use rand::SeedableRng;
use reveal_attack::{AttackConfig, Device, TrainedAttack};
use reveal_lint::{analyze_kernel, leakage_map_for_kernel};
use reveal_rv32::power::PowerModelConfig;
use reveal_rv32::{Instruction, KernelVariant, SamplerKernel};

const Q: u64 = 132_120_577;

const ALL_VARIANTS: [KernelVariant; 5] = [
    KernelVariant::Vulnerable,
    KernelVariant::Branchless,
    KernelVariant::MaskedLadder,
    KernelVariant::Shuffled,
    KernelVariant::Ckks,
];

/// Mean power per execution of `pc`, in execution order, from a
/// span-annotated capture.
fn power_per_occurrence(capture: &reveal_rv32::PowerCapture, pc: u32) -> Vec<f64> {
    capture
        .spans
        .iter()
        .filter(|s| s.pc == pc && s.end > s.start)
        .map(|s| {
            let slice = &capture.samples[s.start..s.end];
            slice.iter().sum::<f64>() / slice.len() as f64
        })
        .collect()
}

/// Pearson correlation of paired observations.
fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len().min(ys.len()) as f64;
    assert!(n >= 8.0, "need data for a correlation");
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return 0.0;
    }
    sxy / (sxx * syy).sqrt()
}

#[test]
fn static_top_sites_cover_every_dynamically_exploited_pc() {
    // Train the paper's template attack on the vulnerable ladder, then map
    // every point of interest it selected back to the instruction that
    // produced the sample. The static top-5 must cover each one.
    let power = PowerModelConfig::default().with_noise_sigma(0.05);
    let device = Device::new(64, &[Q], power).unwrap();
    let mut rng = StdRng::seed_from_u64(0x5EED_CE27);
    let attack = TrainedAttack::profile(&device, 30, &AttackConfig::default(), &mut rng).unwrap();
    let capture = device.capture_fresh(&mut rng).unwrap();
    let exploited = attack.exploited_pcs(&capture.run.capture).unwrap();
    assert!(
        !exploited.union().is_empty(),
        "the attack must read somewhere"
    );

    let kernel = SamplerKernel::with_variant(64, &[Q], KernelVariant::Vulnerable).unwrap();
    let map = leakage_map_for_kernel(&kernel, &PowerModelConfig::default());
    assert!(map.sites.len() >= 5, "vulnerable ladder has many hot sites");
    for pc in exploited.union() {
        assert!(
            map.covers(5, pc),
            "dynamically exploited pc {pc:#06x} is not covered by any static top-5 site: {:?}",
            map.top(5).iter().map(|s| s.pc).collect::<Vec<_>>()
        );
    }
}

#[test]
fn certified_quiet_sites_show_no_correlation_in_real_traces() {
    // Branchless: the certifier scores zero control-flow energy and leaves
    // clean instructions out of the map entirely. Cross-check with a
    // first-order CPA: the top-ranked site (the secret noise load) must
    // correlate with the secret's Hamming weight, while a certified-quiet
    // instruction from the same loop body must not.
    let kernel = SamplerKernel::with_variant(16, &[Q], KernelVariant::Branchless).unwrap();
    let report = analyze_kernel(&kernel);
    assert!(report.is_constant_time(), "branchless must certify");
    let map = leakage_map_for_kernel(&kernel, &PowerModelConfig::default());
    assert_eq!(
        map.control_flow_energy(),
        0.0,
        "no secret-dependent control flow may score"
    );

    let hot_pc = map.sites[0].pc;
    let device = Device::with_variant(
        16,
        &[Q],
        PowerModelConfig::default().with_noise_sigma(0.05),
        KernelVariant::Branchless,
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(0xAB5E);
    let mut hw = Vec::new();
    let mut hot_power = Vec::new();
    let mut quiet_power: Option<(u32, Vec<f64>)> = None;
    for _ in 0..20 {
        let cap = device.capture_fresh(&mut rng).unwrap();
        let hot = power_per_occurrence(&cap.run.capture, hot_pc);
        // One secret load per coefficient, in order; the trailing dummy
        // iteration (if any) is dropped by the zip.
        for (p, &v) in hot.iter().zip(&cap.values) {
            hot_power.push(*p);
            hw.push(f64::from((v as i32 as u32).count_ones()));
        }
        if quiet_power.is_none() {
            // A certified-quiet pc executing once per coefficient, so the
            // occurrence↔coefficient pairing is well defined.
            let quiet_pc = kernel
                .cfg_instructions()
                .into_iter()
                .map(|(pc, _)| pc)
                .find(|&pc| {
                    map.site_at(pc).is_none()
                        && power_per_occurrence(&cap.run.capture, pc).len() == hot.len()
                })
                .expect("some quiet per-coefficient instruction exists");
            quiet_power = Some((quiet_pc, Vec::new()));
        }
        if let Some((quiet_pc, acc)) = &mut quiet_power {
            let quiet = power_per_occurrence(&cap.run.capture, *quiet_pc);
            acc.extend(quiet.iter().take(cap.values.len()));
        }
    }
    let (quiet_pc, quiet) = quiet_power.unwrap();
    let r_hot = pearson(&hw, &hot_power);
    let r_quiet = pearson(&hw, &quiet);
    assert!(
        r_hot > 0.5,
        "top-ranked site {hot_pc:#06x} must leak dynamically (r = {r_hot:.3})"
    );
    assert!(
        r_quiet.abs() < 0.2,
        "certified-quiet site {quiet_pc:#06x} must stay quiet (r = {r_quiet:.3})"
    );
}

#[test]
fn every_variant_certifies_with_zero_caveats() {
    // The resolver must leave no "not analyzed" escape hatch on any kernel
    // — including the shuffled variant's indirect dispatch.
    for variant in ALL_VARIANTS {
        let kernel = SamplerKernel::with_variant(32, &[Q], variant).unwrap();
        let report = analyze_kernel(&kernel);
        assert!(
            report.caveats.is_empty(),
            "{variant:?} left caveats: {:?}",
            report.caveats
        );
    }
}

#[test]
fn verdicts_and_rankings_are_thread_count_invariant() {
    // The certifier is part of the deterministic pipeline: report and
    // leakage map must be bit-identical under any REVEAL_THREADS.
    let render = || {
        ALL_VARIANTS
            .map(|variant| {
                let kernel = SamplerKernel::with_variant(64, &[Q], variant).unwrap();
                let report = analyze_kernel(&kernel);
                let map = leakage_map_for_kernel(&kernel, &PowerModelConfig::default());
                format!("{}\n{}", report.render_json(), map.render_json())
            })
            .join("\n")
    };
    let single = reveal_par::with_threads(1, render);
    let multi = reveal_par::with_threads(4, render);
    assert_eq!(single, multi);
}

/// `cfg_instructions` helper: the kernels don't expose their CFG directly,
/// so decode the program words.
trait KernelInstructions {
    fn cfg_instructions(&self) -> Vec<(u32, Instruction)>;
}

impl KernelInstructions for SamplerKernel {
    fn cfg_instructions(&self) -> Vec<(u32, Instruction)> {
        let program = self.program();
        program
            .words
            .iter()
            .enumerate()
            .filter_map(|(i, &w)| {
                let pc = 4 * u32::try_from(i).unwrap();
                Instruction::decode(w).ok().map(|instr| (pc, instr))
            })
            .collect()
    }
}
