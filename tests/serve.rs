//! End-to-end service tests for `reveal-serve`.
//!
//! The claims under test, in order of importance:
//!
//! 1. **Bit-identity**: a zero-fault served stream reproduces the one-shot
//!    pipeline's hints and bikz bit-for-bit (`f64::to_bits` equality), at
//!    any worker count.
//! 2. **Crash recovery**: killing the supervisor mid-stream and resuming
//!    from the periodic checkpoint converges to the same final state as an
//!    uninterrupted run — compared as encoded snapshots, i.e. bit-exact.
//! 3. **Isolation**: a poisoned victim stream is quarantined after the
//!    configured failure run and never stalls or corrupts other victims.
//! 4. **Liveness under chaos**: random frame-fault schedules (truncation,
//!    duplication, reordering, disconnects) at any intensity never
//!    deadlock the service or overflow a bounded queue, and benign
//!    schedules (no data loss) still produce the clean answer.

use std::sync::mpsc;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;
use reveal_attack::{
    calibrate, report_full_attack, AttackConfig, Calibration, Device, RobustAttack, TrainedAttack,
};
use reveal_chaos::{FrameChunk, FramePlan};
use reveal_hints::{HintPolicy, LweParameters};
use reveal_rv32::power::PowerModelConfig;
use reveal_serve::accumulator::ShardedAccumulator;
use reveal_serve::{
    frame_stream, KeyId, ServeConfig, Snapshot, Supervisor, TraceFrame, VictimStatus,
};

const DEGREE: usize = 32;
const MODULUS: u64 = 3329;
const PROFILE_RUNS: usize = 40;
const MASTER_SEED: u64 = 0xC0FF_EE00_5EED;
const CALIBRATION_SEED: u64 = 0x0CA1;
const FRAME_LEN: usize = 512;

struct Shared {
    device: Device,
    attack: TrainedAttack,
    calibration: Calibration,
}

/// Profiling is the expensive part; run it once for the whole suite.
fn shared() -> &'static Shared {
    static SHARED: OnceLock<Shared> = OnceLock::new();
    SHARED.get_or_init(|| {
        let device = Device::new(
            DEGREE,
            &[MODULUS],
            PowerModelConfig::default().with_noise_sigma(0.05),
        )
        .unwrap();
        let attack = TrainedAttack::profile_seeded(
            &device,
            PROFILE_RUNS,
            &AttackConfig::default(),
            MASTER_SEED,
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(CALIBRATION_SEED);
        let clean = device.capture_fresh(&mut rng).unwrap();
        let calibration = calibrate(&clean.run.capture.samples, attack.config()).unwrap();
        Shared {
            device,
            attack,
            calibration,
        }
    })
}

fn capture(seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    shared()
        .device
        .capture_fresh(&mut rng)
        .unwrap()
        .run
        .capture
        .samples
        .clone()
}

fn config() -> ServeConfig {
    let mut c = ServeConfig::new(
        LweParameters::seal_128_paper(),
        DEGREE,
        HintPolicy::seal_paper(),
    );
    c.calibration = Some(shared().calibration);
    c
}

/// The per-victim trace sets most tests serve: victim 10 gets one trace,
/// victim 11 gets two.
fn standard_traces() -> Vec<(KeyId, Vec<Vec<f64>>)> {
    vec![
        (10, vec![capture(77)]),
        (11, vec![capture(78), capture(79)]),
    ]
}

/// Folds the same traces through the robust pipeline + accumulator
/// directly — the ground truth a served run must match bit-for-bit.
fn reference_snapshot(traces: &[(KeyId, Vec<Vec<f64>>)], cfg: &ServeConfig) -> Snapshot {
    let sh = shared();
    let robust = RobustAttack::new(&sh.attack).with_calibration(sh.calibration);
    let mut acc = ShardedAccumulator::new(
        cfg.params,
        cfg.coefficients,
        cfg.shards,
        cfg.quarantine_threshold,
    );
    for (key, ts) in traces {
        for (seq, samples) in ts.iter().enumerate() {
            let result = robust
                .attack_trace(samples, DEGREE, &cfg.policy)
                .expect("clean capture analyzes");
            acc.apply_success(*key, seq as u64, &result).unwrap();
        }
    }
    Snapshot::capture(&acc, cfg.quarantine_threshold)
}

fn submit_all(sup: &Supervisor, traces: &[(KeyId, Vec<Vec<f64>>)]) {
    let handle = sup.handle();
    for (key, ts) in traces {
        for (seq, samples) in ts.iter().enumerate() {
            for frame in frame_stream(*key, seq as u64, samples, FRAME_LEN) {
                handle.submit(frame).expect("submit while running");
            }
        }
    }
}

fn await_updates(
    sup: &Supervisor,
    want: usize,
    timeout: Duration,
) -> Vec<reveal_serve::VictimUpdate> {
    let start = Instant::now();
    let mut got = Vec::new();
    loop {
        got.extend(sup.drain_updates());
        if got.len() >= want {
            return got;
        }
        assert!(
            start.elapsed() < timeout,
            "timed out waiting for {want} updates, got {}",
            got.len()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Runs `f` on a helper thread and fails the test if it neither finishes
/// nor panics within `timeout` — the deadlock detector for shutdown paths.
fn with_watchdog<F>(label: &str, timeout: Duration, f: F)
where
    F: FnOnce() + Send + 'static,
{
    let (tx, rx) = mpsc::channel();
    let worker = std::thread::spawn(move || {
        f();
        let _ = tx.send(());
    });
    match rx.recv_timeout(timeout) {
        Ok(()) => worker.join().expect("scenario thread"),
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            // The scenario panicked; propagate its message.
            worker.join().expect("scenario thread panicked");
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("{label}: watchdog timeout after {timeout:?} — service deadlocked");
        }
    }
}

#[test]
fn zero_fault_stream_matches_one_shot_pipeline_bit_identically() {
    let sh = shared();
    let traces = standard_traces();
    let cfg = config();
    let reference = reference_snapshot(&traces, &cfg).encode();

    // The one-shot *plain* pipeline report for the single-trace victim —
    // the service's clean path must reproduce it exactly (robust clean
    // path == plain pipeline, and the scorer fold == report_robust).
    let plain = sh
        .attack
        .attack_trace_expecting(&traces[0].1[0], DEGREE)
        .unwrap();
    let plain_report = report_full_attack(&plain, &cfg.params, &cfg.policy).unwrap();

    let mut per_worker_snapshots = Vec::new();
    for workers in [1usize, 4] {
        let mut cfg = config();
        cfg.workers = workers;
        let sup = Supervisor::start(sh.attack.clone(), cfg);
        submit_all(&sup, &traces);
        let updates = await_updates(&sup, 3, Duration::from_secs(60));
        let snapshot = sup.snapshot().encode();
        let summary = sup.shutdown();

        assert_eq!(summary.metrics.traces_analyzed, 3);
        assert_eq!(summary.metrics.traces_failed, 0);
        assert_eq!(summary.metrics.retries, 0, "clean traces never retry");
        assert_eq!(summary.latencies_ms.len(), 3);

        let first = updates
            .iter()
            .find(|u| u.key == 10 && u.trace_seq == 0)
            .expect("update for victim 10");
        assert!(first.failed.is_none());
        assert_eq!(
            first.bikz.to_bits(),
            plain_report.with_hints.bikz.to_bits(),
            "served zero-fault bikz must be bit-identical to the one-shot pipeline"
        );
        assert_eq!(
            (first.perfect, first.approximate, first.skipped),
            (
                plain_report.hints.perfect,
                plain_report.hints.approximate,
                plain_report.hints.skipped
            ),
        );

        assert_eq!(
            snapshot, reference,
            "workers={workers}: served hint store diverged from the one-shot fold"
        );
        per_worker_snapshots.push(snapshot);
    }
    assert_eq!(
        per_worker_snapshots[0], per_worker_snapshots[1],
        "worker count must not change the answer"
    );
}

#[test]
fn crash_mid_stream_then_restore_is_bit_identical() {
    let sh = shared();
    let traces = vec![(7u64, vec![capture(101), capture(102), capture(103)])];
    let ckpt = std::env::temp_dir().join(format!(
        "reveal-serve-e2e-{}-crash.ckpt",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&ckpt);

    let base = {
        let mut c = config();
        c.workers = 1;
        c.checkpoint_every = 1;
        c.checkpoint_path = Some(ckpt.clone());
        c
    };
    let reference = reference_snapshot(&traces, &base).encode();

    // Phase 1: serve the first two traces, wait until at least trace 0 is
    // scored (so a periodic checkpoint exists), then crash.
    let sup = Supervisor::start(sh.attack.clone(), base.clone());
    let handle = sup.handle();
    for (seq, samples) in traces[0].1.iter().take(2).enumerate() {
        for frame in frame_stream(7, seq as u64, samples, FRAME_LEN) {
            handle.submit(frame).unwrap();
        }
    }
    let _ = await_updates(&sup, 1, Duration::from_secs(60));
    sup.kill();

    let snapshot = Snapshot::load(&ckpt).expect("periodic checkpoint exists after crash");
    let restored = snapshot
        .victims
        .iter()
        .find(|(k, _)| *k == 7)
        .expect("victim 7 in checkpoint");
    assert!(restored.1.traces_processed >= 1);

    // Phase 2: resume from the checkpoint and replay the full stream
    // (already-scored traces are ignored as replays), plus the trace the
    // crash interrupted.
    let sup = Supervisor::resume(sh.attack.clone(), base.clone(), &snapshot).unwrap();
    submit_all(&sup, &traces);
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let done = sup
            .snapshot()
            .victims
            .iter()
            .any(|(k, v)| *k == 7 && v.traces_processed == 3);
        if done {
            break;
        }
        assert!(Instant::now() < deadline, "resume did not catch up");
        std::thread::sleep(Duration::from_millis(10));
    }
    let final_snapshot = sup.snapshot().encode();
    let summary = sup.shutdown();
    assert_eq!(summary.metrics.traces_failed, 0);

    assert_eq!(
        final_snapshot, reference,
        "kill + checkpoint restore must converge to the uninterrupted answer"
    );
    // The graceful shutdown also wrote a final checkpoint matching it.
    assert_eq!(Snapshot::load(&ckpt).unwrap().encode(), reference);
    let _ = std::fs::remove_file(&ckpt);
}

#[test]
fn poisoned_victim_is_quarantined_without_stalling_others() {
    let sh = shared();
    let clean_key: KeyId = 1;
    let poison_key: KeyId = 2;
    let clean_traces = vec![(clean_key, vec![capture(55), capture(56)])];

    let mut cfg = config();
    cfg.workers = 1;
    cfg.quarantine_threshold = 2;
    let reference = reference_snapshot(&clean_traces, &cfg);

    let sup = Supervisor::start(sh.attack.clone(), cfg);
    let handle = sup.handle();

    // Two poisoned single-frame traces: NaN payloads fail admission, which
    // scores as typed per-trace failures and trips the quarantine ladder.
    for seq in 0..2u64 {
        handle
            .submit(TraceFrame {
                key: poison_key,
                trace_seq: seq,
                frame_seq: 0,
                last: true,
                samples: vec![f64::NAN; 16],
            })
            .unwrap();
    }
    // First clean trace in parallel with the poisoning.
    for frame in frame_stream(clean_key, 0, &clean_traces[0].1[0], FRAME_LEN) {
        handle.submit(frame).unwrap();
    }

    // Wait for the quarantine to land, then demonstrate enforcement.
    let deadline = Instant::now() + Duration::from_secs(60);
    while sup.metrics().quarantined_keys != 1 {
        assert!(Instant::now() < deadline, "quarantine never landed");
        std::thread::sleep(Duration::from_millis(10));
    }
    handle
        .submit(TraceFrame {
            key: poison_key,
            trace_seq: 2,
            frame_seq: 0,
            last: true,
            samples: vec![0.0; 16],
        })
        .unwrap();
    // The clean victim keeps flowing after the quarantine.
    for frame in frame_stream(clean_key, 1, &clean_traces[0].1[1], FRAME_LEN) {
        handle.submit(frame).unwrap();
    }

    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let done = sup
            .snapshot()
            .victims
            .iter()
            .any(|(k, v)| *k == clean_key && v.traces_processed == 2);
        if done {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "clean victim stalled behind the poisoned one"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    let snapshot = sup.snapshot();
    let updates = sup.drain_updates();
    let summary = sup.shutdown();

    // The poisoned key is quarantined, with its post-quarantine frame
    // dropped at ingress (never scored).
    let poisoned = snapshot
        .victims
        .iter()
        .find(|(k, _)| *k == poison_key)
        .expect("poisoned victim tracked");
    assert!(matches!(poisoned.1.status, VictimStatus::Quarantined(_)));
    assert_eq!(poisoned.1.traces_failed, 2);
    assert!(summary.metrics.frames_quarantined >= 1);
    assert!(summary.metrics.frames_rejected >= 2);
    assert!(
        !updates
            .iter()
            .chain(&summary.updates)
            .any(|u| u.key == poison_key && u.trace_seq == 2),
        "a quarantined victim's traces must not be scored"
    );

    // The clean victim's state is bit-identical to a run where the
    // poisoned victim never existed.
    let served_clean = snapshot
        .victims
        .iter()
        .find(|(k, _)| *k == clean_key)
        .expect("clean victim tracked");
    let reference_clean = reference
        .victims
        .iter()
        .find(|(k, _)| *k == clean_key)
        .expect("clean victim in reference");
    assert_eq!(served_clean.1.decisions, reference_clean.1.decisions);
    assert_eq!(
        served_clean.1.last_estimate.map(|e| e.bikz.to_bits()),
        reference_clean.1.last_estimate.map(|e| e.bikz.to_bits()),
    );
}

/// The clean reference for [`standard_traces`] under the chaos-scenario
/// config (4 shards), computed once.
fn chaos_reference() -> &'static str {
    static REF: OnceLock<String> = OnceLock::new();
    REF.get_or_init(|| {
        let mut c = config();
        c.shards = 4;
        reference_snapshot(&standard_traces(), &c).encode()
    })
}

/// One full chaos scenario: frame the standard traces, scramble every
/// stream with `FramePlan::standard_sweep(seed, intensity)`, serve them
/// through tight queues at the given worker count, shut down, and assert
/// the liveness/boundedness invariants. Benign schedules (no data loss)
/// must additionally produce the bit-exact clean answer.
fn chaos_scenario(seed: u64, intensity: f64, workers: usize) {
    let sh = shared();
    let traces = standard_traces();
    let reference = chaos_reference();

    let mut cfg = config();
    cfg.workers = workers;
    cfg.shards = 4;
    cfg.ingest_capacity = 16;
    cfg.work_capacity = 4;
    cfg.result_capacity = 8;
    cfg.gap_limit = 4;
    cfg.reassembly.stream_deadline = Duration::from_millis(200);
    let sup = Supervisor::start(sh.attack.clone(), cfg);
    let handle = sup.handle();

    let plan = FramePlan::standard_sweep(seed, intensity);
    let mut any_data_lost = false;
    let mut stream_id = 0u64;
    for (key, ts) in &traces {
        for (seq, samples) in ts.iter().enumerate() {
            let chunks: Vec<FrameChunk> = frame_stream(*key, seq as u64, samples, 256)
                .into_iter()
                .map(|f| FrameChunk {
                    seq: f.frame_seq,
                    last: f.last,
                    samples: f.samples,
                })
                .collect();
            let scrambled = plan.scramble(stream_id, chunks);
            stream_id += 1;
            any_data_lost |= scrambled.log.data_lost;
            for chunk in scrambled.frames {
                handle
                    .submit(TraceFrame {
                        key: *key,
                        trace_seq: seq as u64,
                        frame_seq: chunk.seq,
                        last: chunk.last,
                        samples: chunk.samples,
                    })
                    .expect("block-policy submit");
            }
        }
    }

    // Benign streams must all analyze before the drain; lossy ones need
    // only terminate — the shutdown drain handles their residue.
    if !any_data_lost {
        let deadline = Instant::now() + Duration::from_secs(60);
        while sup.metrics().traces_analyzed < 3 {
            assert!(Instant::now() < deadline, "benign streams stalled");
            std::thread::sleep(Duration::from_millis(10));
        }
    }
    let snapshot = sup.snapshot().encode();
    let summary = sup.shutdown();

    let m = &summary.metrics;
    for (label, q) in [
        ("ingest", &m.ingest_queue),
        ("work", &m.work_queue),
        ("result", &m.result_queue),
    ] {
        assert!(
            q.high_water <= q.capacity,
            "{label} queue exceeded its bound: {} > {}",
            q.high_water,
            q.capacity
        );
        assert_eq!(q.depth, 0, "{label} queue not drained at shutdown");
    }

    if !any_data_lost {
        // Duplication and reordering are absorbed exactly.
        assert_eq!(
            snapshot, reference,
            "benign fault schedule changed the answer"
        );
        assert_eq!(m.traces_analyzed, 3);
    }
}

#[test]
fn frame_faults_and_shutdown_never_deadlock_and_queues_stay_bounded() {
    // A deterministic sweep over fault schedules and worker counts; each
    // scenario runs under a watchdog so a deadlocked shutdown fails fast
    // instead of hanging CI.
    for (case, (seed, intensity, workers)) in
        [(3u64, 0.0, 1usize), (4, 0.3, 4), (5, 0.7, 2), (6, 1.0, 4)]
            .into_iter()
            .enumerate()
    {
        with_watchdog(
            &format!("case {case} (seed={seed}, intensity={intensity})"),
            Duration::from_secs(120),
            move || chaos_scenario(seed, intensity, workers),
        );
    }
}

mod serve_properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Any random fault schedule at any intensity and worker count
        /// shuts down cleanly: no deadlock (watchdog), no unbounded
        /// queue, no panic — and benign schedules keep the exact answer.
        #[test]
        fn random_fault_schedules_shut_down_cleanly(
            seed in 0u64..1024,
            intensity in 0.0f64..1.0,
            workers in 1usize..5,
        ) {
            with_watchdog(
                &format!("proptest seed={seed} intensity={intensity}"),
                Duration::from_secs(120),
                move || chaos_scenario(seed, intensity, workers),
            );
        }
    }
}
