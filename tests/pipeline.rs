//! Cross-crate pipeline integration: segmentation → sign → value → hints,
//! exercised jointly (experiments E2–E5 of DESIGN.md at test scale).

use rand::rngs::StdRng;
use rand::SeedableRng;
use reveal_attack::{
    extract_ladder_windows, report_full_attack, report_sign_only, AttackConfig, Device,
    TrainedAttack,
};
use reveal_hints::{HintPolicy, LweParameters};
use reveal_lint::{analyze_kernel, Rule};
use reveal_rv32::power::PowerModelConfig;
use reveal_rv32::{KernelVariant, SamplerKernel};
use reveal_template::ConfusionMatrix;
use reveal_trace::segment::{find_bursts, window_alignment_score};

const Q: u64 = 132120577;

#[test]
fn segmentation_matches_ground_truth_windows() {
    // Fig. 3(a): the distribution-call peaks locate every coefficient.
    let device = Device::new(64, &[Q], PowerModelConfig::default()).unwrap();
    let mut rng = StdRng::seed_from_u64(1);
    for _ in 0..3 {
        let cap = device.capture_fresh(&mut rng).unwrap();
        let config = AttackConfig::default();
        let bursts = find_bursts(&cap.run.capture.samples, &config.segment).unwrap();
        // One burst per coefficient plus the epilogue burst.
        assert_eq!(bursts.len(), 64 + 1);
        let score = window_alignment_score(&bursts, &cap.run.coefficient_windows, 24);
        assert!(score > 0.95, "alignment score {score}");
        let windows = extract_ladder_windows(&cap.run.capture.samples, &config).unwrap();
        assert_eq!(windows.len(), 64);
    }
}

#[test]
fn confusion_matrix_reproduces_table_i_structure() {
    // Build a small-scale Table I and check its structural properties.
    let device = Device::new(64, &[Q], PowerModelConfig::default().with_noise_sigma(0.05)).unwrap();
    let mut rng = StdRng::seed_from_u64(2);
    let attack = TrainedAttack::profile(&device, 30, &AttackConfig::default(), &mut rng).unwrap();
    let mut cm = ConfusionMatrix::new();
    for _ in 0..12 {
        let cap = device.capture_fresh(&mut rng).unwrap();
        let Ok(result) = attack.attack_trace_expecting(&cap.run.capture.samples, 64) else {
            continue;
        };
        for (est, &truth) in result.coefficients.iter().zip(&cap.values) {
            cm.record(truth, est.predicted);
        }
    }
    assert!(cm.total() > 500, "need data, got {}", cm.total());
    // Paper properties: 100% on the zero column, perfect sign separation,
    // negatives stronger than positives on the diagonal.
    assert!(
        cm.column_percentage(0, 0) >= 99.0,
        "zero column {}",
        cm.column_percentage(0, 0)
    );
    assert!(
        cm.sign_accuracy() > 0.99,
        "sign accuracy {}",
        cm.sign_accuracy()
    );
    let neg_diag: f64 = (1..=7).map(|v| cm.column_percentage(-v, -v)).sum::<f64>() / 7.0;
    let pos_diag: f64 = (1..=7).map(|v| cm.column_percentage(v, v)).sum::<f64>() / 7.0;
    assert!(
        neg_diag > pos_diag + 15.0,
        "Table I asymmetry: neg {neg_diag:.1}% vs pos {pos_diag:.1}%"
    );
    // No cross-sign mass (the render should show clean quadrants).
    for actual in 1..=7i64 {
        for predicted in -7..=-1i64 {
            assert_eq!(cm.count(actual, predicted), 0);
        }
    }
}

#[test]
fn hint_reports_order_correctly() {
    // Full hints < sign-only hints < baseline, on the same attack output.
    let device = Device::new(64, &[Q], PowerModelConfig::default().with_noise_sigma(0.05)).unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let attack = TrainedAttack::profile(&device, 24, &AttackConfig::default(), &mut rng).unwrap();
    let cap = device.capture_fresh(&mut rng).unwrap();
    let result = attack
        .attack_trace_expecting(&cap.run.capture.samples, 64)
        .unwrap();
    // Report against the full-scale instance (64 hints on the paper's
    // n = 1024 set): a toy 64-dimension instance is trivially LLL-solvable
    // and would saturate every estimate at the β = 2 floor.
    let params = LweParameters::seal_128_paper();
    let policy = HintPolicy::seal_paper();
    let full = report_full_attack(&result, &params, &policy).unwrap();
    let sign_only = report_sign_only(&result, &params, &policy, 3.19, 14).unwrap();
    assert!(full.with_hints.bikz <= sign_only.with_hints.bikz);
    assert!(sign_only.with_hints.bikz < full.baseline.bikz);
    assert_eq!(full.baseline.bikz, sign_only.baseline.bikz);
}

#[test]
fn lint_gate_agrees_with_the_dynamic_attack() {
    // The static analyzer's verdict must match what the rest of this suite
    // demonstrates dynamically: the kernel the attack succeeds against is
    // flagged (secret-dependent branches at the sign ladder), and the
    // branchless rewrite — the paper's recommended fix — comes back clean.
    let vulnerable = SamplerKernel::with_variant(64, &[Q], KernelVariant::Vulnerable).unwrap();
    let report = analyze_kernel(&vulnerable);
    assert!(
        report.findings_for(Rule::L1SecretBranch).count() >= 2,
        "lint gate must flag the Fig. 2 ladder:\n{}",
        report.render_human()
    );
    assert!(!report.is_constant_time());

    let branchless = SamplerKernel::with_variant(64, &[Q], KernelVariant::Branchless).unwrap();
    let report = analyze_kernel(&branchless);
    assert!(
        report.is_constant_time(),
        "the fixed sampler must pass the lint gate:\n{}",
        report.render_human()
    );
}

#[test]
fn time_variance_defeats_fixed_stride_segmentation() {
    // §III-C: "the adversary cannot simply locate just one iteration and
    // then shift the sampling window for a fixed amount of time". Verify the
    // premise: window lengths genuinely vary within one trace.
    let device = Device::new(64, &[Q], PowerModelConfig::default()).unwrap();
    let mut rng = StdRng::seed_from_u64(4);
    let cap = device.capture_fresh(&mut rng).unwrap();
    let lengths: Vec<usize> = cap
        .run
        .coefficient_windows
        .iter()
        .map(|&(s, e)| e - s)
        .collect();
    let min = *lengths.iter().min().unwrap();
    let max = *lengths.iter().max().unwrap();
    assert!(
        max > min + 50,
        "sampler should be time-variant: min {min}, max {max}"
    );
}
