//! Paper-scale security-table integration (Tables III/IV shapes at the real
//! SEAL-128 parameters — estimator only, no trace simulation needed).

use reveal_attack::rounded_gaussian_prior;
use reveal_hints::{integrate_posteriors, DbddInstance, HintPolicy, LweParameters, Posterior};

#[test]
fn table_iii_shape_at_full_scale() {
    let params = LweParameters::seal_128_paper();
    let baseline = DbddInstance::from_lwe(&params).estimate();
    // Paper: 382.25 bikz ≈ 2^128.
    assert!(
        (baseline.bikz - 382.25).abs() < 12.0,
        "baseline {:.2}",
        baseline.bikz
    );

    let mut hinted = DbddInstance::from_lwe(&params);
    for i in 0..1024 {
        hinted.integrate_perfect_hint(i).unwrap();
    }
    let with_hints = hinted.estimate();
    // Paper: 12.2 bikz ≈ 2^4.4 — a complete break.
    assert!(with_hints.bikz < 40.0, "with hints {:.2}", with_hints.bikz);
    assert!(
        baseline.bikz / with_hints.bikz > 10.0,
        "hints must collapse security by an order of magnitude"
    );
}

#[test]
fn table_iv_sign_only_at_full_scale() {
    let params = LweParameters::seal_128_paper();
    let policy = HintPolicy::seal_paper();
    let prior = rounded_gaussian_prior(3.19, 41);

    // Sample 1024 coefficients from the prior deterministically (inverse
    // CDF over a low-discrepancy sequence), then apply sign-only knowledge.
    let mut hinted = DbddInstance::from_lwe(&params);
    let mut posteriors = Vec::with_capacity(1024);
    for k in 0..1024 {
        let target = (k as f64 + 0.5) / 1024.0;
        let mut acc = 0.0;
        let mut value = 0i64;
        for &(v, p) in &prior {
            acc += p;
            if acc >= target {
                value = v;
                break;
            }
        }
        let posterior = if value == 0 {
            Posterior::certain(0)
        } else {
            let restricted: Vec<(i64, f64)> = prior
                .iter()
                .filter(|(v, _)| v.signum() == value.signum())
                .copied()
                .collect();
            Posterior::new(restricted).unwrap()
        };
        posteriors.push(posterior);
    }
    let coords: Vec<usize> = (0..1024).collect();
    let summary = integrate_posteriors(&mut hinted, &coords, &posteriors, &policy).unwrap();
    let estimate = hinted.estimate();
    let baseline = DbddInstance::from_lwe(&params).estimate();

    // Zero coefficients became perfect hints (≈ 12.5% of 1024).
    assert!(
        (100..=160).contains(&summary.perfect),
        "perfect hints {}",
        summary.perfect
    );
    // Paper Table IV: 382.25 → 253.29 bikz; we require the same regime:
    // clearly reduced, clearly not broken ("signs alone cannot recover").
    assert!(
        estimate.bikz < baseline.bikz - 40.0,
        "sign hints must reduce: {:.2} vs {:.2}",
        estimate.bikz,
        baseline.bikz
    );
    assert!(
        estimate.bits > 50.0,
        "sign hints alone must not break the scheme: {:.1} bits",
        estimate.bits
    );
}

#[test]
fn table_iv_guesses_row() {
    // "Attack with hints & guesses": one extra perfect hint (the guessed
    // coefficient) shaves a fraction of a bikz — 253.29 → 252.83 in the
    // paper.
    let params = LweParameters::seal_128_paper();
    let sigma = 3.2f64;
    let half_normal_var = sigma * sigma * (1.0 - 2.0 / std::f64::consts::PI);
    let build = |guesses: usize| {
        let mut inst = DbddInstance::from_lwe(&params);
        for i in 0..1024 {
            if i % 8 == 0 {
                inst.integrate_perfect_hint(i).unwrap();
            } else {
                let current = sigma * sigma;
                let eps = half_normal_var * current / (current - half_normal_var);
                inst.integrate_approximate_hint(i, eps).unwrap();
            }
        }
        // The guessed coefficients become perfect hints on top.
        let mut g = 0;
        let mut i = 1;
        while g < guesses {
            if i % 8 != 0 {
                inst.integrate_perfect_hint(i).unwrap();
                g += 1;
            }
            i += 1;
        }
        inst.estimate().bikz
    };
    let without_guess = build(0);
    let with_guess = build(1);
    let delta = without_guess - with_guess;
    assert!(delta > 0.0, "a guess must help");
    assert!(
        delta < 5.0,
        "one guess is worth well under 5 bikz, got {delta:.2}"
    );
}
