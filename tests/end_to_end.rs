//! End-to-end integration: a real BFV encryption's error polynomial leaks
//! through the RV32 power trace, the single-trace attack recovers it, and
//! the lattice finisher reconstructs the plaintext (experiment E9 of
//! DESIGN.md).

use rand::rngs::StdRng;
use rand::SeedableRng;
use reveal_attack::{recover_adaptive, recover_message, AttackConfig, Device, TrainedAttack};
use reveal_bfv::{BfvContext, EncryptionParameters, Encryptor, KeyGenerator, NullProbe, Plaintext};
use reveal_math::Modulus;
use reveal_rv32::power::PowerModelConfig;

fn toy_session(
    n: usize,
    q: u64,
    t: u64,
    seed: u64,
) -> (BfvContext, reveal_bfv::PublicKey, Encryptor, StdRng) {
    let parms =
        EncryptionParameters::new(n, vec![Modulus::new(q).unwrap()], Modulus::new(t).unwrap())
            .unwrap();
    let ctx = BfvContext::new(parms).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let keygen = KeyGenerator::new(&ctx);
    let sk = keygen.secret_key(&mut rng);
    let pk = keygen.public_key(&sk, &mut rng);
    let enc = Encryptor::new(&ctx, &pk);
    (ctx, pk, enc, rng)
}

#[test]
fn single_trace_to_plaintext_with_lattice_finisher() {
    let n = 32;
    let q = 3329u64;
    let (ctx, pk, enc, mut rng) = toy_session(n, q, 16, 42);

    // The victim's message and encryption.
    let message: Vec<u64> = (0..n as u64).map(|i| (7 * i + 2) % 16).collect();
    let plain = Plaintext::new(&ctx, &message);
    let (ct, wit) = enc.encrypt_observed(&plain, &mut rng, &mut NullProbe, &mut NullProbe);

    // The adversary's device model and templates (low-noise bench).
    let device = Device::new(n, &[q], PowerModelConfig::default().with_noise_sigma(0.02)).unwrap();
    let mut adv_rng = StdRng::seed_from_u64(1000);
    let attack =
        TrainedAttack::profile(&device, 60, &AttackConfig::default(), &mut adv_rng).unwrap();

    // One capture of THIS encryption's e2 sampling.
    let capture = device.capture_chosen(&wit.e2, &mut rng).unwrap();
    let result = attack
        .attack_trace_expecting(&capture.run.capture.samples, n)
        .unwrap();
    assert_eq!(result.sign_accuracy(&wit.e2), 1.0, "signs must be perfect");

    // Adaptive finisher: confident coefficients as exact relations + BKZ.
    let estimates: Vec<(i64, f64)> = result
        .coefficients
        .iter()
        .map(|c| (c.predicted, c.confidence()))
        .collect();
    let (recovered, u, trusted) =
        recover_adaptive(&ctx, &pk, &ct, &estimates, 0.85).expect("finisher must succeed");
    assert_eq!(u, wit.u, "the ternary encryption sample u is recovered");
    assert_eq!(
        recovered.coeffs(),
        plain.coeffs(),
        "full plaintext recovery"
    );
    assert!(trusted >= n / 3, "trusted {trusted} coefficients");
}

#[test]
fn exact_errors_recover_message_at_paper_scale() {
    // With e1/e2 exactly known (the information-theoretic content of the
    // trace), Eq. (3) recovers the message at the paper's real parameters.
    let (ctx, pk, enc, mut rng) = toy_session(1024, 132120577, 256, 7);
    let message: Vec<u64> = (0..1024u64).map(|i| (i * 31 + 5) % 256).collect();
    let plain = Plaintext::new(&ctx, &message);
    let (ct, wit) = enc.encrypt_observed(&plain, &mut rng, &mut NullProbe, &mut NullProbe);
    let recovered = recover_message(&ctx, &pk, &ct, &wit.e1, &wit.e2).unwrap();
    assert_eq!(recovered.coeffs(), plain.coeffs());
}

#[test]
fn kernel_trace_is_faithful_to_bfv_sampler() {
    // The RV32 kernel and the Rust reference sampler write identical
    // residues for identical inputs — the substitution argument of
    // DESIGN.md, checked end to end.
    let n = 64;
    let q = 132120577u64;
    let device = Device::new(n, &[q], PowerModelConfig::noiseless()).unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let capture = device.capture_fresh(&mut rng).unwrap();
    for (i, &v) in capture.values.iter().enumerate() {
        let expected = v.rem_euclid(q as i64) as u32;
        assert_eq!(capture.run.poly[i], expected, "coefficient {i}");
    }
}
