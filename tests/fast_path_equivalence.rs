//! Equivalence suite for the rv32 trace-generation fast path.
//!
//! The streaming pipeline (predecode cache, `PowerSink` emission, sub-trace
//! memoization, chunked profiling collection) is a pure performance layer:
//! every output it produces must be bit-identical to the materializing
//! baseline for the same inputs and RNG seed. These tests pin that contract
//! at the kernel level (all five sampler variants, deterministic cases and
//! a proptest over random coefficient sequences) and at the pipeline level
//! (profiling collection and the trained attack built from it).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use reveal_attack::{
    collect_profiling, collect_profiling_baseline, AttackConfig, Device, TrainedAttack,
};
use reveal_rv32::kernel::{KernelRun, KernelVariant, SamplerKernel, SamplerScratch};
use reveal_rv32::power::PowerModelConfig;

const Q: u64 = 132_120_577;
const Q2: u64 = 12_289;

const VARIANTS: [KernelVariant; 5] = [
    KernelVariant::Vulnerable,
    KernelVariant::Branchless,
    KernelVariant::MaskedLadder,
    KernelVariant::Shuffled,
    KernelVariant::Ckks,
];

/// Runs one input set through both paths and asserts every output matches.
fn assert_fast_path_identical(
    kernel: &SamplerKernel,
    values: &[i64],
    iterations: &[u32],
    config: &PowerModelConfig,
    seed: u64,
    scratch: &mut SamplerScratch,
) -> Result<(), TestCaseError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let baseline: KernelRun = kernel.run(values, iterations, config, &mut rng).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let fast: KernelRun = kernel
        .run_into(values, iterations, config, &mut rng, scratch)
        .unwrap();
    prop_assert_eq!(&fast.capture.samples, &baseline.capture.samples);
    prop_assert_eq!(&fast.capture.spans, &baseline.capture.spans);
    prop_assert_eq!(&fast.poly, &baseline.poly);
    prop_assert_eq!(&fast.shares, &baseline.shares);
    prop_assert_eq!(&fast.coefficient_windows, &baseline.coefficient_windows);
    prop_assert_eq!(fast.instruction_count, baseline.instruction_count);
    Ok(())
}

#[test]
fn kernel_fast_path_is_bit_identical_on_all_variants() {
    let values = [3i64, -2, 0, 1, -1, 41, -41, 14];
    let iterations = [4u32, 6, 4, 10, 4, 8, 6, 4];
    let mut scratch = SamplerScratch::new();
    for variant in VARIANTS {
        for moduli in [&[Q][..], &[Q, Q2][..]] {
            let kernel = SamplerKernel::with_variant(8, moduli, variant).unwrap();
            for sigma in [0.0, 0.05, 0.25] {
                let config = PowerModelConfig::default().with_noise_sigma(sigma);
                // Cold memo, then warm memo on a second pass.
                for pass in 0..2 {
                    assert_fast_path_identical(
                        &kernel,
                        &values,
                        &iterations,
                        &config,
                        0xFA57_0000 + pass,
                        &mut scratch,
                    )
                    .unwrap();
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random coefficient sequences, burst lengths, variants, and noise:
    /// the memoized composition must never diverge from direct rendering.
    #[test]
    fn kernel_fast_path_is_bit_identical_on_random_sequences(
        values in proptest::collection::vec(-41i64..=41, 8),
        iterations in proptest::collection::vec(4u32..=20, 8),
        variant_idx in 0usize..5,
        noisy in 0u8..2,
        seed in any::<u64>(),
    ) {
        let kernel = SamplerKernel::with_variant(8, &[Q], VARIANTS[variant_idx]).unwrap();
        let config = if noisy == 1 {
            PowerModelConfig::default()
        } else {
            PowerModelConfig::noiseless()
        };
        let mut scratch = SamplerScratch::new();
        assert_fast_path_identical(&kernel, &values, &iterations, &config, seed, &mut scratch)?;
    }
}

#[test]
fn reference_path_is_bit_identical_too() {
    // The benchmark reference (per-step decode, materialized records,
    // sin-per-bit rendering) must agree with both the current run() and the
    // streaming fast path.
    let values = [3i64, -2, 0, 1, -1, 41, -41, 14];
    let iterations = [4u32, 6, 4, 10, 4, 8, 6, 4];
    let mut scratch = SamplerScratch::new();
    for variant in VARIANTS {
        let kernel = SamplerKernel::with_variant(8, &[Q], variant).unwrap();
        let config = PowerModelConfig::default();
        let mut rng = StdRng::seed_from_u64(77);
        let reference = kernel
            .run_reference(&values, &iterations, &config, &mut rng)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(77);
        let direct = kernel.run(&values, &iterations, &config, &mut rng).unwrap();
        let mut rng = StdRng::seed_from_u64(77);
        let fast = kernel
            .run_into(&values, &iterations, &config, &mut rng, &mut scratch)
            .unwrap();
        assert_eq!(reference.capture, direct.capture);
        assert_eq!(reference.capture, fast.capture);
        assert_eq!(reference.poly, fast.poly);
        assert_eq!(reference.coefficient_windows, fast.coefficient_windows);
        assert_eq!(reference.instruction_count, fast.instruction_count);
    }
}

#[test]
fn profiling_collection_is_bit_identical_to_baseline() {
    let device = Device::new(32, &[Q], PowerModelConfig::default()).unwrap();
    let config = AttackConfig::default();
    // 13 runs: one full 8-run chunk plus a ragged 5-run tail.
    let fast = collect_profiling(&device, 13, &config, 0x5EA1_BE9C).unwrap();
    let baseline = collect_profiling_baseline(&device, 13, &config, 0x5EA1_BE9C).unwrap();
    assert_eq!(fast.total_windows, baseline.total_windows);
    assert_eq!(fast.sign_set, baseline.sign_set);
    assert_eq!(fast.pos_set, baseline.pos_set);
    assert_eq!(fast.neg_set, baseline.neg_set);
}

#[test]
fn trained_attack_from_fast_path_matches_baseline_end_to_end() {
    // Train two attackers — one from each collection path — and verify they
    // produce identical per-coefficient estimates on the same fresh capture.
    let device = Device::new(64, &[Q], PowerModelConfig::default()).unwrap();
    let config = AttackConfig::default();
    let master_seed = 0xC0DE_F00D;

    let fast_data = collect_profiling(&device, 20, &config, master_seed).unwrap();
    let baseline_data = collect_profiling_baseline(&device, 20, &config, master_seed).unwrap();
    let fast_attack = TrainedAttack::fit(
        config.clone(),
        fast_data.sign_set,
        fast_data.pos_set,
        fast_data.neg_set,
        fast_data.total_windows,
    )
    .unwrap();
    let baseline_attack = TrainedAttack::fit(
        config,
        baseline_data.sign_set,
        baseline_data.pos_set,
        baseline_data.neg_set,
        baseline_data.total_windows,
    )
    .unwrap();

    let mut rng = StdRng::seed_from_u64(7);
    let capture = device.capture_fresh(&mut rng).unwrap();
    let fast_result = fast_attack
        .attack_trace_expecting(&capture.run.capture.samples, 64)
        .unwrap();
    let baseline_result = baseline_attack
        .attack_trace_expecting(&capture.run.capture.samples, 64)
        .unwrap();
    assert_eq!(fast_result, baseline_result);
}
