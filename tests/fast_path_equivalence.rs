//! Equivalence suite for the rv32 trace-generation fast path.
//!
//! The streaming pipeline (predecode cache, `PowerSink` emission, sub-trace
//! memoization, chunked profiling collection) is a pure performance layer:
//! every output it produces must be bit-identical to the materializing
//! baseline for the same inputs and RNG seed. These tests pin that contract
//! at the kernel level (all five sampler variants, deterministic cases and
//! a proptest over random coefficient sequences) and at the pipeline level
//! (profiling collection and the trained attack built from it).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use reveal_attack::{
    collect_profiling, collect_profiling_baseline, AttackConfig, Device, TrainedAttack,
};
use reveal_rv32::block::{run_block, BlockCache, BlockCacheStats, BlockExit};
use reveal_rv32::cpu::{Bus, Cpu, Halt, QueueMmio};
use reveal_rv32::kernel::{KernelRun, KernelVariant, SamplerKernel, SamplerScratch};
use reveal_rv32::power::{PowerModelConfig, PowerRenderer, TraceBuffer};
use reveal_rv32::{assemble, static_leaders, Instruction, Program};

const Q: u64 = 132_120_577;
const Q2: u64 = 12_289;

const VARIANTS: [KernelVariant; 5] = [
    KernelVariant::Vulnerable,
    KernelVariant::Branchless,
    KernelVariant::MaskedLadder,
    KernelVariant::Shuffled,
    KernelVariant::Ckks,
];

/// Runs one input set through the block-compiled fast path, the per-step
/// `run()` path, and the verbatim reference oracle, and asserts every
/// output matches bit for bit.
fn assert_fast_path_identical(
    kernel: &SamplerKernel,
    values: &[i64],
    iterations: &[u32],
    config: &PowerModelConfig,
    seed: u64,
    scratch: &mut SamplerScratch,
) -> Result<(), TestCaseError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let baseline: KernelRun = kernel.run(values, iterations, config, &mut rng).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let reference: KernelRun = kernel
        .run_reference(values, iterations, config, &mut rng)
        .unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let fast: KernelRun = kernel
        .run_into(values, iterations, config, &mut rng, scratch)
        .unwrap();
    prop_assert_eq!(&fast.capture.samples, &baseline.capture.samples);
    prop_assert_eq!(&fast.capture.spans, &baseline.capture.spans);
    prop_assert_eq!(&fast.poly, &baseline.poly);
    prop_assert_eq!(&fast.shares, &baseline.shares);
    prop_assert_eq!(&fast.coefficient_windows, &baseline.coefficient_windows);
    prop_assert_eq!(fast.instruction_count, baseline.instruction_count);
    // The superinstruction path must also match the reference oracle, which
    // shares no code with the block compiler or the predecode cache.
    prop_assert_eq!(&fast.capture.samples, &reference.capture.samples);
    prop_assert_eq!(&fast.capture.spans, &reference.capture.spans);
    prop_assert_eq!(&fast.poly, &reference.poly);
    prop_assert_eq!(&fast.coefficient_windows, &reference.coefficient_windows);
    prop_assert_eq!(fast.instruction_count, reference.instruction_count);
    Ok(())
}

#[test]
fn kernel_fast_path_is_bit_identical_on_all_variants() {
    let values = [3i64, -2, 0, 1, -1, 41, -41, 14];
    let iterations = [4u32, 6, 4, 10, 4, 8, 6, 4];
    let mut scratch = SamplerScratch::new();
    for variant in VARIANTS {
        for moduli in [&[Q][..], &[Q, Q2][..]] {
            let kernel = SamplerKernel::with_variant(8, moduli, variant).unwrap();
            for sigma in [0.0, 0.05, 0.25] {
                let config = PowerModelConfig::default().with_noise_sigma(sigma);
                // Cold memo, then warm memo on a second pass.
                for pass in 0..2 {
                    assert_fast_path_identical(
                        &kernel,
                        &values,
                        &iterations,
                        &config,
                        0xFA57_0000 + pass,
                        &mut scratch,
                    )
                    .unwrap();
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random coefficient sequences, burst lengths, variants, and noise:
    /// the block-compiled, memoized composition must never diverge from
    /// direct rendering or from the reference oracle.
    #[test]
    fn kernel_fast_path_is_bit_identical_on_random_sequences(
        values in proptest::collection::vec(-41i64..=41, 8),
        iterations in proptest::collection::vec(4u32..=20, 8),
        variant_idx in 0usize..5,
        noisy in 0u8..2,
        seed in any::<u64>(),
    ) {
        let kernel = SamplerKernel::with_variant(8, &[Q], VARIANTS[variant_idx]).unwrap();
        let config = if noisy == 1 {
            PowerModelConfig::default()
        } else {
            PowerModelConfig::noiseless()
        };
        let mut scratch = SamplerScratch::new();
        assert_fast_path_identical(&kernel, &values, &iterations, &config, seed, &mut scratch)?;
    }
}

/// Drives `program` to halt through the block-dispatch loop (compile at
/// first execution, superinstruction execution with fused power emission,
/// store-overlap invalidation), mirroring the kernel's dispatch.
fn run_via_blocks(program: &Program, seed: u64) -> (TraceBuffer, Cpu<QueueMmio>, BlockCacheStats) {
    let mut bus = Bus::new(64 * 1024, QueueMmio::new());
    bus.load_words(0, &program.words);
    let mut cpu = Cpu::new(bus);
    cpu.predecode(0, program.words.len());
    let config = PowerModelConfig::default();
    let renderer = PowerRenderer::new(&config);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sink = TraceBuffer::new();
    let instrs: Vec<Option<Instruction>> = program
        .words
        .iter()
        .map(|&w| Instruction::decode(w).ok())
        .collect();
    let leaders = static_leaders(&instrs, 0, &[]);
    let mut cache = BlockCache::new();
    cache.reset_program(0, program.words.len());
    let image = cache.image_range();
    let fuel = 10_000;
    let mut record_index = 0usize;
    let halt = loop {
        assert!(record_index < fuel, "runaway test program");
        let pc = cpu.pc();
        if cache.get(pc).is_some() {
            cache.stats.dispatch_hits += 1;
        } else {
            // Compile from current memory so a patched image is captured
            // faithfully, exactly as the kernel's dispatch does.
            let words: Vec<u32> = (0..program.words.len())
                .map(|i| cpu.bus.read_u32(4 * i as u32))
                .collect();
            cache.insert(&words, pc, &leaders);
        }
        match cache.get(pc) {
            Some(block) => {
                let run = run_block(
                    &mut cpu,
                    block,
                    &renderer,
                    &mut rng,
                    &mut sink,
                    record_index,
                    fuel,
                    &image,
                );
                record_index += run.executed;
                cache.stats.fused_samples += run.samples as u64;
                match run.exit {
                    BlockExit::Completed | BlockExit::OutOfFuel => {}
                    BlockExit::Halted(halt) => break halt,
                    BlockExit::SelfModified { addr } => cache.invalidate(addr),
                }
            }
            None => match cpu.step() {
                Ok(record) => {
                    renderer.render_record(record_index, &record, &mut rng, &mut sink);
                    record_index += 1;
                }
                Err(halt) => break halt,
            },
        }
    };
    assert_eq!(halt, Halt::Ebreak);
    (sink, cpu, cache.stats)
}

/// The same program, stepped one instruction at a time with per-record
/// rendering — the pre-block interpreter semantics.
fn run_via_steps(program: &Program, seed: u64) -> (TraceBuffer, Cpu<QueueMmio>) {
    let mut bus = Bus::new(64 * 1024, QueueMmio::new());
    bus.load_words(0, &program.words);
    let mut cpu = Cpu::new(bus);
    cpu.predecode(0, program.words.len());
    let config = PowerModelConfig::default();
    let renderer = PowerRenderer::new(&config);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sink = TraceBuffer::new();
    let mut record_index = 0usize;
    let halt = loop {
        match cpu.step() {
            Ok(record) => {
                renderer.render_record(record_index, &record, &mut rng, &mut sink);
                record_index += 1;
            }
            Err(halt) => break halt,
        }
    };
    assert_eq!(halt, Halt::Ebreak);
    (sink, cpu)
}

#[test]
fn store_into_executed_block_invalidates_and_stays_bit_identical() {
    // A two-pass loop that patches its own body: pass 1 executes
    // `addi t1, t1, 1`, then stores a different encoding over that very
    // instruction *while the containing block is executing*. The block
    // cache must abort after the store, drop the stale block, recompile
    // from the patched image, and execute `addi t1, t1, 5` on pass 2 —
    // with samples and architectural state bit-identical to stepping.
    let patched = assemble("addi t1, t1, 5", 0).unwrap().words[0];
    let src = format!(
        "
        li   t2, 2
        loop:
        patch:
        addi t1, t1, 1
        la   t3, patch
        la   t5, newop
        lw   t4, 0(t5)
        sw   t4, 0(t3)
        addi t2, t2, -1
        bnez t2, loop
        ebreak
        newop: .word {patched:#010x}
        "
    );
    let program = assemble(&src, 0).unwrap();

    let (blocked, blocked_cpu, stats) = run_via_blocks(&program, 0xB10C);
    let (stepped, stepped_cpu) = run_via_steps(&program, 0xB10C);

    assert_eq!(blocked.samples(), stepped.samples());
    assert_eq!(blocked.spans(), stepped.spans());
    let t1 = reveal_rv32::Reg(6);
    assert_eq!(blocked_cpu.reg(t1), stepped_cpu.reg(t1));
    // Pass 1 added 1, pass 2 ran the patched instruction: the store really
    // did rewrite the executed block.
    assert_eq!(blocked_cpu.reg(t1), 6);
    // And the cache saw it: at least one invalidation, a recompile beyond
    // the initial discovery, and fused emission for every sample.
    assert!(stats.invalidations >= 1, "stats: {stats:?}");
    assert!(stats.blocks_compiled >= 2, "stats: {stats:?}");
    assert_eq!(stats.fused_samples as usize, blocked.samples().len());
}

#[test]
fn reference_path_is_bit_identical_too() {
    // The benchmark reference (per-step decode, materialized records,
    // sin-per-bit rendering) must agree with both the current run() and the
    // streaming fast path.
    let values = [3i64, -2, 0, 1, -1, 41, -41, 14];
    let iterations = [4u32, 6, 4, 10, 4, 8, 6, 4];
    let mut scratch = SamplerScratch::new();
    for variant in VARIANTS {
        let kernel = SamplerKernel::with_variant(8, &[Q], variant).unwrap();
        let config = PowerModelConfig::default();
        let mut rng = StdRng::seed_from_u64(77);
        let reference = kernel
            .run_reference(&values, &iterations, &config, &mut rng)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(77);
        let direct = kernel.run(&values, &iterations, &config, &mut rng).unwrap();
        let mut rng = StdRng::seed_from_u64(77);
        let fast = kernel
            .run_into(&values, &iterations, &config, &mut rng, &mut scratch)
            .unwrap();
        assert_eq!(reference.capture, direct.capture);
        assert_eq!(reference.capture, fast.capture);
        assert_eq!(reference.poly, fast.poly);
        assert_eq!(reference.coefficient_windows, fast.coefficient_windows);
        assert_eq!(reference.instruction_count, fast.instruction_count);
    }
}

#[test]
fn profiling_collection_is_bit_identical_to_baseline() {
    let device = Device::new(32, &[Q], PowerModelConfig::default()).unwrap();
    let config = AttackConfig::default();
    // 13 runs: one full 8-run chunk plus a ragged 5-run tail.
    let fast = collect_profiling(&device, 13, &config, 0x5EA1_BE9C).unwrap();
    let baseline = collect_profiling_baseline(&device, 13, &config, 0x5EA1_BE9C).unwrap();
    assert_eq!(fast.total_windows, baseline.total_windows);
    assert_eq!(fast.sign_set, baseline.sign_set);
    assert_eq!(fast.pos_set, baseline.pos_set);
    assert_eq!(fast.neg_set, baseline.neg_set);
}

#[test]
fn trained_attack_from_fast_path_matches_baseline_end_to_end() {
    // Train two attackers — one from each collection path — and verify they
    // produce identical per-coefficient estimates on the same fresh capture.
    let device = Device::new(64, &[Q], PowerModelConfig::default()).unwrap();
    let config = AttackConfig::default();
    let master_seed = 0xC0DE_F00D;

    let fast_data = collect_profiling(&device, 20, &config, master_seed).unwrap();
    let baseline_data = collect_profiling_baseline(&device, 20, &config, master_seed).unwrap();
    let fast_attack = TrainedAttack::fit(
        config.clone(),
        fast_data.sign_set,
        fast_data.pos_set,
        fast_data.neg_set,
        fast_data.total_windows,
    )
    .unwrap();
    let baseline_attack = TrainedAttack::fit(
        config,
        baseline_data.sign_set,
        baseline_data.pos_set,
        baseline_data.neg_set,
        baseline_data.total_windows,
    )
    .unwrap();

    let mut rng = StdRng::seed_from_u64(7);
    let capture = device.capture_fresh(&mut rng).unwrap();
    let fast_result = fast_attack
        .attack_trace_expecting(&capture.run.capture.samples, 64)
        .unwrap();
    let baseline_result = baseline_attack
        .attack_trace_expecting(&capture.run.capture.samples, 64)
        .unwrap();
    assert_eq!(fast_result, baseline_result);
}
