//! Thread-count invariance of the full pipeline: profiling, single-trace
//! recovery, and the security report must be bit-identical whether the
//! `reveal-par` runtime uses one worker or several. This is the contract
//! that makes `REVEAL_THREADS` a pure performance knob.

use rand::rngs::StdRng;
use rand::SeedableRng;
use reveal_attack::{report_full_attack, AttackConfig, Device, SingleTraceAttack, TrainedAttack};
use reveal_hints::{HintPolicy, LweParameters};
use reveal_rv32::power::PowerModelConfig;

const DEGREE: usize = 32;
const MODULUS: u64 = 3329;
const PROFILE_RUNS: usize = 40;
const MASTER_SEED: u64 = 0xC0FF_EE00_5EED;
const VICTIM_SEED: u64 = 77;

/// Runs profiling, one fresh-secret attack, and the hints report with the
/// runtime pinned to `threads` workers. Returns everything downstream code
/// could observe: the recovered trace and both bikz estimates.
fn run_pipeline(threads: usize) -> (SingleTraceAttack, u64, u64) {
    reveal_par::with_threads(threads, || {
        let device = Device::new(
            DEGREE,
            &[MODULUS],
            PowerModelConfig::default().with_noise_sigma(0.05),
        )
        .unwrap();
        let attack = TrainedAttack::profile_seeded(
            &device,
            PROFILE_RUNS,
            &AttackConfig::default(),
            MASTER_SEED,
        )
        .unwrap();

        let mut victim_rng = StdRng::seed_from_u64(VICTIM_SEED);
        let capture = device.capture_fresh(&mut victim_rng).unwrap();
        let result = attack
            .attack_trace_expecting(&capture.run.capture.samples, DEGREE)
            .unwrap();

        let report = report_full_attack(
            &result,
            &LweParameters::seal_128_paper(),
            &HintPolicy::seal_paper(),
        )
        .unwrap();
        (
            result,
            report.baseline.bikz.to_bits(),
            report.with_hints.bikz.to_bits(),
        )
    })
}

#[test]
fn recovery_and_bikz_are_identical_across_thread_counts() {
    let (reference, baseline_bits, hinted_bits) = run_pipeline(1);
    assert!(
        !reference.coefficients.is_empty(),
        "single-worker pipeline must recover coefficients"
    );
    for threads in [2, 4, 8] {
        let (result, baseline, hinted) = run_pipeline(threads);
        assert_eq!(
            result, reference,
            "recovered trace diverges at {threads} threads"
        );
        assert_eq!(
            baseline, baseline_bits,
            "baseline bikz diverges at {threads} threads"
        );
        assert_eq!(
            hinted, hinted_bits,
            "with-hints bikz diverges at {threads} threads"
        );
    }
}

#[test]
fn profiling_is_order_independent_and_reproducible() {
    // The per-run derived seeds make each profiling capture a pure function
    // of (master seed, run index); two fully separate profiling passes must
    // therefore build byte-identical template sets, observable through the
    // attack results they produce.
    let device = Device::new(
        DEGREE,
        &[MODULUS],
        PowerModelConfig::default().with_noise_sigma(0.05),
    )
    .unwrap();
    let first =
        TrainedAttack::profile_seeded(&device, PROFILE_RUNS, &AttackConfig::default(), MASTER_SEED)
            .unwrap();
    let second =
        TrainedAttack::profile_seeded(&device, PROFILE_RUNS, &AttackConfig::default(), MASTER_SEED)
            .unwrap();

    let mut rng = StdRng::seed_from_u64(VICTIM_SEED);
    let capture = device.capture_fresh(&mut rng).unwrap();
    let a = first
        .attack_trace_expecting(&capture.run.capture.samples, DEGREE)
        .unwrap();
    let b = second
        .attack_trace_expecting(&capture.run.capture.samples, DEGREE)
        .unwrap();
    assert_eq!(a, b, "re-profiling with the same seed must be transparent");
}
