//! Fault-injection end-to-end suite: the robust driver must be a bit-exact
//! superset of the plain pipeline on clean captures, degrade *gracefully*
//! (never panic, never over-claim) on chaos-corrupted captures, and keep
//! the lattice finisher working under moderate corruption.
//!
//! Mirrors the constants of `par_determinism.rs` so the bit-identity claim
//! composes with the thread-count-invariance claim: robust(clean) ==
//! plain == plain-at-any-thread-count.

use std::sync::OnceLock;

use rand::rngs::StdRng;
use rand::SeedableRng;
use reveal_attack::{
    calibrate, report_full_attack, report_robust, AttackConfig, Calibration, Device, HintDecision,
    RobustAttack, TrainedAttack,
};
use reveal_chaos::{ChaosPlan, Fault};
use reveal_hints::{HintPolicy, LweParameters};
use reveal_rv32::power::PowerModelConfig;

const DEGREE: usize = 32;
const MODULUS: u64 = 3329;
const PROFILE_RUNS: usize = 40;
const MASTER_SEED: u64 = 0xC0FF_EE00_5EED;
const VICTIM_SEED: u64 = 77;
const CALIBRATION_SEED: u64 = 0x0CA1;

struct Shared {
    device: Device,
    attack: TrainedAttack,
    calibration: Calibration,
}

/// Profiling is the expensive part; run it once for the whole suite.
fn shared() -> &'static Shared {
    static SHARED: OnceLock<Shared> = OnceLock::new();
    SHARED.get_or_init(|| {
        let device = Device::new(
            DEGREE,
            &[MODULUS],
            PowerModelConfig::default().with_noise_sigma(0.05),
        )
        .unwrap();
        let attack = TrainedAttack::profile_seeded(
            &device,
            PROFILE_RUNS,
            &AttackConfig::default(),
            MASTER_SEED,
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(CALIBRATION_SEED);
        let clean = device.capture_fresh(&mut rng).unwrap();
        let calibration = calibrate(&clean.run.capture.samples, attack.config()).unwrap();
        Shared {
            device,
            attack,
            calibration,
        }
    })
}

fn robust(shared: &Shared) -> RobustAttack<'_> {
    RobustAttack::new(&shared.attack).with_calibration(shared.calibration)
}

#[test]
fn zero_faults_is_bit_identical_to_plain_pipeline() {
    let sh = shared();
    let mut victim_rng = StdRng::seed_from_u64(VICTIM_SEED);
    let capture = sh.device.capture_fresh(&mut victim_rng).unwrap();
    let samples = &capture.run.capture.samples;

    // A clean plan must not touch a single sample.
    let injected = ChaosPlan::clean(9).inject(samples, &capture.run.coefficient_windows);
    assert_eq!(
        &injected.samples, samples,
        "clean plan must be the identity"
    );
    assert!(injected.log.corrupted.is_empty());

    let plain = sh.attack.attack_trace_expecting(samples, DEGREE).unwrap();
    let plain_report = report_full_attack(
        &plain,
        &LweParameters::seal_128_paper(),
        &HintPolicy::seal_paper(),
    )
    .unwrap();

    let result = robust(sh)
        .attack_trace(&injected.samples, DEGREE, &HintPolicy::seal_paper())
        .unwrap();
    assert_eq!(result.coefficients.len(), DEGREE);
    assert_eq!(result.diagnostics.relaxation_rung, 0);
    assert_eq!(result.diagnostics.variance_inflation, 1.0);
    for (i, (r, p)) in result
        .coefficients
        .iter()
        .zip(&plain.coefficients)
        .enumerate()
    {
        assert!(r.suspicion.clean(), "coefficient {i} wrongly suspect");
        assert_eq!(
            r.estimate.as_ref(),
            Some(p),
            "coefficient {i} estimate diverges from the plain pipeline"
        );
    }

    let robust_report = report_robust(&result, &LweParameters::seal_128_paper()).unwrap();
    assert_eq!(robust_report.hints, plain_report.hints);
    assert_eq!(
        robust_report.with_hints.bikz.to_bits(),
        plain_report.with_hints.bikz.to_bits(),
        "zero-fault bikz must be bit-identical"
    );
    assert_eq!(
        robust_report.baseline.bikz.to_bits(),
        plain_report.baseline.bikz.to_bits(),
    );
}

#[test]
fn high_intensity_degrades_hints_without_false_perfects() {
    let sh = shared();
    let policy = HintPolicy::seal_paper();
    let mut victim_rng = StdRng::seed_from_u64(VICTIM_SEED);
    let capture = sh.device.capture_fresh(&mut victim_rng).unwrap();
    let samples = &capture.run.capture.samples;

    let clean_result = robust(sh).attack_trace(samples, DEGREE, &policy).unwrap();
    let (clean_perfect, ..) = clean_result.decision_counts();

    for intensity in [0.5, 1.0] {
        let plan = ChaosPlan::standard_sweep(41, intensity);
        let injected = plan.inject(samples, &capture.run.coefficient_windows);
        let result = robust(sh)
            .attack_trace(&injected.samples, DEGREE, &policy)
            .expect("high-intensity chaos must still yield a structured result");
        assert_eq!(
            result.coefficients.len(),
            DEGREE,
            "partial result stays full-length"
        );

        let (perfect, approximate, skipped) = result.decision_counts();
        assert!(
            perfect < clean_perfect && approximate + skipped > 0,
            "intensity {intensity}: expected degradation, got \
             {perfect} perfect / {approximate} approximate / {skipped} skipped \
             (clean had {clean_perfect} perfect)"
        );

        // The headline safety property: a corrupted coefficient may be
        // approximate, skipped, or (if the estimate survived) even right —
        // but it must never be a *wrong* perfect hint.
        for (i, coefficient) in result.coefficients.iter().enumerate() {
            if let HintDecision::Perfect { value } = coefficient.decision {
                if injected.log.is_corrupted(i) {
                    assert_eq!(
                        value, capture.values[i],
                        "intensity {intensity}: corrupted coefficient {i} \
                         claimed a wrong perfect hint"
                    );
                }
            }
        }

        // The report must still build (valid partial security estimate).
        let report = report_robust(&result, &LweParameters::seal_128_paper()).unwrap();
        assert!(report.with_hints.bikz >= 0.0);
    }
}

#[test]
fn standard_sweep_never_panics_at_any_intensity() {
    let sh = shared();
    let policy = HintPolicy::seal_paper();
    let mut rng = StdRng::seed_from_u64(0xF457);
    let capture = sh.device.capture_fresh(&mut rng).unwrap();
    for intensity in [0.0, 0.25, 0.5, 0.75, 1.0] {
        for seed in 0..3u64 {
            let plan = ChaosPlan::standard_sweep(seed, intensity);
            let injected = plan.inject(
                &capture.run.capture.samples,
                &capture.run.coefficient_windows,
            );
            // Ok or typed Err are both acceptable; only a panic fails.
            let _ = robust(sh).attack_trace(&injected.samples, DEGREE, &policy);
        }
    }
}

#[test]
fn confidence_is_monotone_in_injected_noise() {
    // `noise_only` derives its unit noise vector from the seed alone, so a
    // σ-doubling ladder scales the *same* perturbation — confidence must
    // then be non-increasing per coefficient, not just on average.
    let sh = shared();
    let policy = HintPolicy::seal_paper();
    let mut rng = StdRng::seed_from_u64(VICTIM_SEED);
    let capture = sh.device.capture_fresh(&mut rng).unwrap();
    let samples = &capture.run.capture.samples;

    let mut previous: Option<Vec<f64>> = None;
    for sigma in [0.0, 0.1, 0.2, 0.4] {
        let injected =
            ChaosPlan::noise_only(7, sigma).inject(samples, &capture.run.coefficient_windows);
        let result = robust(sh)
            .attack_trace(&injected.samples, DEGREE, &policy)
            .unwrap();
        let confidences: Vec<f64> = result.coefficients.iter().map(|c| c.confidence).collect();
        if let Some(prev) = &previous {
            for (i, (now, before)) in confidences.iter().zip(prev).enumerate() {
                assert!(
                    *now <= *before + 1e-9,
                    "coefficient {i}: confidence rose from {before} to {now} at σ={sigma}"
                );
            }
        }
        previous = Some(confidences);
    }
}

#[test]
fn adaptive_finisher_survives_moderate_chaos() {
    use reveal_bfv::{
        BfvContext, EncryptionParameters, Encryptor, KeyGenerator, NullProbe, Plaintext,
    };
    use reveal_math::Modulus;

    let parms = EncryptionParameters::new(
        DEGREE,
        vec![Modulus::new(MODULUS).unwrap()],
        Modulus::new(16).unwrap(),
    )
    .unwrap();
    let ctx = BfvContext::new(parms).unwrap();
    let mut rng = StdRng::seed_from_u64(42);
    let keygen = KeyGenerator::new(&ctx);
    let sk = keygen.secret_key(&mut rng);
    let pk = keygen.public_key(&sk, &mut rng);
    let enc = Encryptor::new(&ctx, &pk);
    let message: Vec<u64> = (0..DEGREE as u64).map(|i| (7 * i + 2) % 16).collect();
    let plain = Plaintext::new(&ctx, &message);
    let (ct, wit) = enc.encrypt_observed(&plain, &mut rng, &mut NullProbe, &mut NullProbe);

    // Single-trace *value* recovery needs the low-noise bench conditions of
    // `end_to_end.rs` (at σ=0.05 even clean captures mispredict a few
    // values); the robustness claim here is about the *faults* layered on
    // top of that working baseline.
    let device = Device::new(
        DEGREE,
        &[MODULUS],
        PowerModelConfig::default().with_noise_sigma(0.02),
    )
    .unwrap();
    let attack =
        TrainedAttack::profile_seeded(&device, 60, &AttackConfig::default(), 1000).unwrap();
    let mut cal_rng = StdRng::seed_from_u64(CALIBRATION_SEED);
    let clean = device.capture_fresh(&mut cal_rng).unwrap();
    let calibration = calibrate(&clean.run.capture.samples, attack.config()).unwrap();

    // Glitch spikes corrupt a handful of windows; the sanity screens must
    // halve those windows' confidence below the trust threshold so the
    // adaptive finisher solves around them with BKZ instead of feeding a
    // corrupted relation into the linear system.
    let capture = device.capture_chosen(&wit.e2, &mut rng).unwrap();
    let plan = ChaosPlan {
        seed: 5,
        faults: vec![
            reveal_chaos::Fault::GaussianNoise { sigma: 0.01 },
            reveal_chaos::Fault::GlitchSpikes {
                rate: 0.0015,
                magnitude: 1.5,
            },
        ],
    };
    let injected = plan.inject(
        &capture.run.capture.samples,
        &capture.run.coefficient_windows,
    );
    assert!(
        !injected.log.corrupted.is_empty(),
        "the plan must actually corrupt some coefficients"
    );
    let result = RobustAttack::new(&attack)
        .with_calibration(calibration)
        .attack_trace(&injected.samples, DEGREE, &HintPolicy::seal_paper())
        .unwrap();

    let (recovered, u, trusted) =
        reveal_attack::recover_adaptive(&ctx, &pk, &ct, &result.estimates(), 0.85)
            .expect("adaptive finisher must succeed under mild chaos");
    assert_eq!(u, wit.u);
    assert_eq!(recovered.coeffs(), plain.coeffs(), "plaintext recovery");
    assert!(
        trusted > 0,
        "some coefficients stay trusted under mild chaos"
    );
}

#[cfg(test)]
mod chaos_properties {
    use super::*;
    use proptest::prelude::*;

    /// Decodes an arbitrary u64 into one fault: the low 3 bits pick the
    /// kind, the rest parameterize it. Every kind and a wide parameter
    /// range are reachable, which is what the never-panic sweep needs.
    fn decode_fault(code: u64) -> Fault {
        let kind = code & 7;
        let a = ((code >> 3) & 0xFFFF) as f64 / 65536.0; // [0, 1)
        let b = ((code >> 19) & 0xFFFF) as f64 / 65536.0; // [0, 1)
        match kind {
            0 => Fault::ClockJitter {
                drop_rate: a * 0.01,
                dup_rate: b * 0.01,
            },
            1 => Fault::AmplitudeDrift {
                per_kilosample: a * 0.05,
            },
            2 => Fault::GainWander {
                amplitude: a * 0.2,
                period: 100 + (b * 2900.0) as usize,
            },
            3 => Fault::GlitchSpikes {
                rate: a * 0.01,
                magnitude: b * 3.0,
            },
            4 => Fault::Clipping {
                lower_fraction: a * 0.1,
                upper_fraction: 0.6 + b * 0.4,
            },
            5 => Fault::BurstMerge {
                pairs: 1 + (a * 2.0) as usize,
            },
            6 => Fault::BurstSplit {
                count: 1 + (a * 2.0) as usize,
                notch_len: 8 + (b * 56.0) as usize,
            },
            _ => Fault::GaussianNoise { sigma: a * 0.8 },
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Any composition of faults at any seed yields Ok or a typed
        /// error — the pipeline must never panic on corrupted input.
        #[test]
        fn arbitrary_fault_compositions_never_panic(
            codes in proptest::collection::vec(0u64..u64::MAX, 0..4),
            seed in 0u64..32,
        ) {
            let sh = shared();
            let mut rng = StdRng::seed_from_u64(0xBAD5EED);
            let capture = sh.device.capture_fresh(&mut rng).unwrap();
            let plan = ChaosPlan {
                seed,
                faults: codes.into_iter().map(decode_fault).collect(),
            };
            let injected = plan.inject(
                &capture.run.capture.samples,
                &capture.run.coefficient_windows,
            );
            let _ = robust(sh).attack_trace(
                &injected.samples,
                DEGREE,
                &HintPolicy::seal_paper(),
            );
        }

        /// Doubling the injected noise (same unit perturbation, scaled)
        /// never raises any coefficient's confidence, at any seed.
        #[test]
        fn noise_doubling_never_raises_confidence(seed in 0u64..6) {
            let sh = shared();
            let mut rng = StdRng::seed_from_u64(0x5151 ^ seed);
            let capture = sh.device.capture_fresh(&mut rng).unwrap();
            let samples = &capture.run.capture.samples;
            let windows = &capture.run.coefficient_windows;
            let policy = HintPolicy::seal_paper();
            let low = robust(sh)
                .attack_trace(
                    &ChaosPlan::noise_only(seed, 0.15).inject(samples, windows).samples,
                    DEGREE,
                    &policy,
                )
                .unwrap();
            let high = robust(sh)
                .attack_trace(
                    &ChaosPlan::noise_only(seed, 0.30).inject(samples, windows).samples,
                    DEGREE,
                    &policy,
                )
                .unwrap();
            for (i, (l, h)) in low.coefficients.iter().zip(&high.coefficients).enumerate() {
                prop_assert!(
                    h.confidence <= l.confidence + 1e-9,
                    "coefficient {} rose from {} to {}", i, l.confidence, h.confidence
                );
            }
        }
    }
}
