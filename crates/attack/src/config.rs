//! Attack configuration knobs shared by the profiling and attack stages.

use reveal_template::CovarianceMode;
use reveal_trace::{PoiMethod, SegmentConfig};

/// Tunables of the single-trace attack pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackConfig {
    /// Length (samples) of the sign-ladder feature window that starts where
    /// a distribution-call burst ends.
    pub ladder_window: usize,
    /// Number of points of interest per template set.
    pub poi_count: usize,
    /// Minimum spacing between selected POIs.
    pub poi_min_spacing: usize,
    /// POI selection statistic (the paper uses SOSD).
    pub poi_method: PoiMethod,
    /// Covariance strategy for the Gaussian templates.
    pub covariance: CovarianceMode,
    /// Ridge regularization added to covariance diagonals.
    pub ridge: f64,
    /// Fraction of the ladder window treated as the *negation region* for
    /// negative coefficients (the rest is the store region); the two
    /// per-region templates are fused, implementing the paper's combination
    /// of vulnerabilities 2 and 3.
    pub early_fraction: f64,
    /// Burst-detection parameters for trace segmentation.
    pub segment: SegmentConfig,
    /// Templates are built for coefficient values in `[-value_range,
    /// value_range]` (the paper observed |v| ≤ 14 over 220 000 draws).
    pub value_range: i64,
}

impl Default for AttackConfig {
    fn default() -> Self {
        Self {
            ladder_window: 96,
            poi_count: 10,
            poi_min_spacing: 2,
            poi_method: PoiMethod::Sosd,
            covariance: CovarianceMode::Pooled,
            ridge: 1e-6,
            early_fraction: 0.45,
            segment: SegmentConfig::default(),
            value_range: 14,
        }
    }
}

impl AttackConfig {
    /// The label set the value templates cover, ascending.
    pub fn value_labels(&self) -> Vec<i64> {
        (-self.value_range..=self.value_range).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sane() {
        let c = AttackConfig::default();
        assert!(c.ladder_window > 0);
        assert!(c.poi_count > 1);
        assert!(c.early_fraction > 0.0 && c.early_fraction < 1.0);
        assert_eq!(c.value_labels().len(), 29);
        assert_eq!(c.value_labels()[0], -14);
        assert_eq!(*c.value_labels().last().unwrap(), 14);
    }
}
