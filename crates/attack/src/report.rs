//! From single-trace estimates to security numbers: exporting the attack's
//! per-coefficient posteriors into the LWE-with-hints framework and
//! reporting bikz/bits as in Tables III and IV.

use crate::profile::SingleTraceAttack;
use reveal_hints::{
    integrate_posteriors, DbddInstance, HintError, HintPolicy, HintSummary, LweParameters,
    Posterior, SecurityEstimate,
};
use std::fmt;

/// Errors from report generation.
#[derive(Debug, Clone, PartialEq)]
pub enum ReportError {
    /// Hint integration failed.
    Hint(HintError),
    /// A posterior could not be built from the estimates.
    Posterior(reveal_hints::PosteriorError),
    /// More coefficient estimates than error coordinates.
    TooManyCoefficients { estimates: usize, coords: usize },
}

impl fmt::Display for ReportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReportError::Hint(e) => write!(f, "hint integration failed: {e}"),
            ReportError::Posterior(e) => write!(f, "posterior construction failed: {e}"),
            ReportError::TooManyCoefficients { estimates, coords } => {
                write!(f, "{estimates} estimates for {coords} error coordinates")
            }
        }
    }
}

impl std::error::Error for ReportError {}

impl From<HintError> for ReportError {
    fn from(e: HintError) -> Self {
        ReportError::Hint(e)
    }
}

impl From<reveal_hints::PosteriorError> for ReportError {
    fn from(e: reveal_hints::PosteriorError) -> Self {
        ReportError::Posterior(e)
    }
}

/// The paper-style security report for one attacked trace.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackReport {
    /// Security without any side information (Table III row 1).
    pub baseline: SecurityEstimate,
    /// Security after integrating the trace's hints (Table III row 2).
    pub with_hints: SecurityEstimate,
    /// How the hints were classified.
    pub hints: HintSummary,
    /// Number of coefficient estimates consumed.
    pub coefficients: usize,
}

impl fmt::Display for AttackReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "attack without hints: {:.2} bikz (~2^{:.1})",
            self.baseline.bikz, self.baseline.bits
        )?;
        writeln!(
            f,
            "attack with hints:    {:.2} bikz (~2^{:.1})",
            self.with_hints.bikz, self.with_hints.bits
        )?;
        write!(
            f,
            "hints: {} perfect, {} approximate, {} skipped over {} coefficients",
            self.hints.perfect, self.hints.approximate, self.hints.skipped, self.coefficients
        )
    }
}

/// Builds the full-information report (Table III): every coefficient's
/// posterior becomes a perfect or approximate hint per `policy`.
///
/// # Errors
///
/// Fails when estimates outnumber the instance's error coordinates or hint
/// integration fails.
pub fn report_full_attack(
    attack: &SingleTraceAttack,
    params: &LweParameters,
    policy: &HintPolicy,
) -> Result<AttackReport, ReportError> {
    let posteriors: Result<Vec<Posterior>, _> = attack
        .coefficients
        .iter()
        .map(|c| Posterior::new(c.probabilities.clone()))
        .collect();
    report_posteriors(&posteriors?, params, policy)
}

/// Builds the sign-only report (Table IV): only the branch vulnerability is
/// used — zero coefficients become perfect hints, nonzero ones keep the
/// rounded-Gaussian prior restricted to the detected sign.
///
/// # Errors
///
/// Same as [`report_full_attack`].
pub fn report_sign_only(
    attack: &SingleTraceAttack,
    params: &LweParameters,
    policy: &HintPolicy,
    sigma: f64,
    value_range: i64,
) -> Result<AttackReport, ReportError> {
    let prior = rounded_gaussian_prior(sigma, value_range);
    let posteriors: Result<Vec<Posterior>, _> = attack
        .coefficients
        .iter()
        .map(|c| match c.sign {
            0 => Ok(Posterior::certain(0)),
            s => {
                let restricted: Vec<(i64, f64)> = prior
                    .iter()
                    .filter(|(v, _)| v.signum() == s)
                    .copied()
                    .collect();
                Posterior::new(restricted)
            }
        })
        .collect();
    report_posteriors(&posteriors?, params, policy)
}

/// Core report builder from explicit posteriors.
///
/// # Errors
///
/// Fails when posteriors outnumber error coordinates.
pub fn report_posteriors(
    posteriors: &[Posterior],
    params: &LweParameters,
    policy: &HintPolicy,
) -> Result<AttackReport, ReportError> {
    if posteriors.len() > params.m {
        return Err(ReportError::TooManyCoefficients {
            estimates: posteriors.len(),
            coords: params.m,
        });
    }
    let baseline = DbddInstance::from_lwe(params).estimate();
    let mut hinted = DbddInstance::from_lwe(params);
    let coords: Vec<usize> = (0..posteriors.len()).collect();
    let hints = integrate_posteriors(&mut hinted, &coords, posteriors, policy)?;
    Ok(AttackReport {
        baseline,
        with_hints: hinted.estimate(),
        hints,
        coefficients: posteriors.len(),
    })
}

/// The probability mass function of `round(N(0, σ²))` clipped to
/// `[-range, range]`, normalized — the prior the sign-only analysis
/// conditions on.
pub fn rounded_gaussian_prior(sigma: f64, range: i64) -> Vec<(i64, f64)> {
    let phi = |x: f64| 0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2));
    let mut entries: Vec<(i64, f64)> = (-range..=range)
        .map(|v| {
            let lo = (v as f64 - 0.5) / sigma;
            let hi = (v as f64 + 0.5) / sigma;
            (v, phi(hi) - phi(lo))
        })
        .collect();
    let total: f64 = entries.iter().map(|(_, p)| p).sum();
    for (_, p) in &mut entries {
        *p /= total;
    }
    entries
}

/// The error function, via the Abramowitz–Stegun 7.1.26 rational
/// approximation (|error| < 1.5e-7 — ample for prior construction).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::CoefficientEstimate;

    fn perfect_attack(values: &[i64]) -> SingleTraceAttack {
        SingleTraceAttack {
            coefficients: values
                .iter()
                .map(|&v| CoefficientEstimate {
                    sign: v.signum(),
                    predicted: v,
                    probabilities: vec![(v, 1.0)],
                })
                .collect(),
        }
    }

    #[test]
    fn erf_known_values() {
        assert!(erf(0.0).abs() < 1e-7);
        assert!((erf(1.0) - 0.8427008).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427008).abs() < 1e-6);
        assert!((erf(3.0) - 0.9999779).abs() < 1e-6);
    }

    #[test]
    fn prior_moments_match_sampler() {
        let prior = rounded_gaussian_prior(3.19, 41);
        let total: f64 = prior.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
        let mean: f64 = prior.iter().map(|(v, p)| *v as f64 * p).sum();
        let var: f64 = prior
            .iter()
            .map(|(v, p)| p * (*v as f64 - mean).powi(2))
            .sum();
        assert!(mean.abs() < 1e-9);
        // Var of round(N(0, 3.19²)) ≈ 3.19² + 1/12.
        assert!((var - (3.19f64 * 3.19 + 1.0 / 12.0)).abs() < 0.02);
        // P(0) ≈ 12.5%.
        let p0 = prior.iter().find(|(v, _)| *v == 0).unwrap().1;
        assert!((p0 - 0.1246).abs() < 0.005, "P(0) = {p0}");
    }

    #[test]
    fn full_report_collapses_security() {
        let values: Vec<i64> = (0..1024).map(|i| ((i % 29) as i64) - 14).collect();
        let report = report_full_attack(
            &perfect_attack(&values),
            &LweParameters::seal_128_paper(),
            &HintPolicy::seal_paper(),
        )
        .unwrap();
        assert!(report.baseline.bikz > 300.0);
        assert!(report.with_hints.bikz < 40.0);
        assert_eq!(report.hints.perfect, 1024);
        assert!(report.to_string().contains("bikz"));
    }

    #[test]
    fn sign_only_report_lands_between() {
        let values: Vec<i64> = (0..1024).map(|i| ((i % 29) as i64) - 14).collect();
        let attack = perfect_attack(&values);
        let params = LweParameters::seal_128_paper();
        let policy = HintPolicy::seal_paper();
        let full = report_full_attack(&attack, &params, &policy).unwrap();
        let sign_only = report_sign_only(&attack, &params, &policy, 3.19, 14).unwrap();
        assert!(sign_only.with_hints.bikz > full.with_hints.bikz + 50.0);
        assert!(sign_only.with_hints.bikz < sign_only.baseline.bikz - 30.0);
        // Paper Table IV conclusion: signs alone cannot recover the message.
        assert!(sign_only.with_hints.bits > 40.0);
    }

    #[test]
    fn too_many_estimates_rejected() {
        let values = vec![0i64; 2000];
        let err = report_full_attack(
            &perfect_attack(&values),
            &LweParameters::seal_128_paper(),
            &HintPolicy::seal_paper(),
        );
        assert!(matches!(
            err,
            Err(ReportError::TooManyCoefficients {
                estimates: 2000,
                coords: 1024
            })
        ));
    }

    #[test]
    fn fuzzy_posteriors_still_reduce_security() {
        let attack = SingleTraceAttack {
            coefficients: (0..1024)
                .map(|_| CoefficientEstimate {
                    sign: 1,
                    predicted: 2,
                    probabilities: vec![(1, 0.2), (2, 0.5), (3, 0.3)],
                })
                .collect(),
        };
        let report = report_full_attack(
            &attack,
            &LweParameters::seal_128_paper(),
            &HintPolicy::seal_paper(),
        )
        .unwrap();
        assert_eq!(report.hints.approximate, 1024);
        assert!(report.with_hints.bikz < report.baseline.bikz);
    }
}
