//! Message recovery: turning recovered error polynomials into the plaintext
//! via Eqs. (2)–(3) of the paper, with a lattice fallback when only part of
//! `e2` was recovered.

use reveal_bfv::{BfvContext, Ciphertext, Plaintext, PublicKey};
use reveal_lattice::{solve_lwe, LweInstance, SolveError, SolverConfig};
use reveal_math::RnsPolynomial;
use std::fmt;

/// Errors from message recovery.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoverError {
    /// `p1` is not invertible in the ring (vanishing NTT evaluation).
    P1NotInvertible,
    /// Recovered errors are inconsistent with the ciphertext (Δ does not
    /// divide `c0 − p0·u − e1`, or a coefficient exceeds the plaintext
    /// space).
    InconsistentErrors { coefficient: usize },
    /// Wrong input lengths.
    LengthMismatch { expected: usize, got: usize },
    /// The residual lattice problem could not be solved.
    Lattice(SolveError),
    /// Residual solving needs a single ≤ 62-bit modulus.
    UnsupportedParameters,
}

impl fmt::Display for RecoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoverError::P1NotInvertible => write!(f, "p1 is not invertible in R_q"),
            RecoverError::InconsistentErrors { coefficient } => {
                write!(
                    f,
                    "errors inconsistent with ciphertext at coefficient {coefficient}"
                )
            }
            RecoverError::LengthMismatch { expected, got } => {
                write!(f, "expected {expected} coefficients, got {got}")
            }
            RecoverError::Lattice(e) => write!(f, "residual lattice solve failed: {e}"),
            RecoverError::UnsupportedParameters => {
                write!(
                    f,
                    "residual solving requires a single small coefficient modulus"
                )
            }
        }
    }
}

impl std::error::Error for RecoverError {}

impl From<SolveError> for RecoverError {
    fn from(e: SolveError) -> Self {
        RecoverError::Lattice(e)
    }
}

/// Recovers `u = (c1 − e2) / p1` (Eq. 2). The ground truth of the attack:
/// with `e2` fully recovered this is exact.
///
/// # Errors
///
/// Fails when lengths mismatch or `p1` is not invertible.
pub fn recover_u(
    ctx: &BfvContext,
    pk: &PublicKey,
    ct: &Ciphertext,
    e2: &[i64],
) -> Result<RnsPolynomial, RecoverError> {
    let n = ctx.degree();
    if e2.len() != n {
        return Err(RecoverError::LengthMismatch {
            expected: n,
            got: e2.len(),
        });
    }
    let e2_rns = ctx.basis().from_signed(e2);
    let numerator = ct.c1().sub(&e2_rns);
    let mut residues = Vec::with_capacity(ctx.basis().len());
    for (num, p1) in numerator.residues().iter().zip(pk.p1().residues()) {
        let inv = p1.inverse().ok_or(RecoverError::P1NotInvertible)?;
        residues.push(num.mul(&inv));
    }
    Ok(ctx.basis().from_residues(residues))
}

/// Recovers the plaintext from fully recovered `e1`, `e2` (Eq. 3):
/// `m = (c0 − p0·u − e1) / Δ` with `u` from [`recover_u`].
///
/// # Errors
///
/// Fails when the errors are inconsistent with the ciphertext — i.e. the
/// attack recovered at least one coefficient wrongly.
pub fn recover_message(
    ctx: &BfvContext,
    pk: &PublicKey,
    ct: &Ciphertext,
    e1: &[i64],
    e2: &[i64],
) -> Result<Plaintext, RecoverError> {
    let n = ctx.degree();
    if e1.len() != n {
        return Err(RecoverError::LengthMismatch {
            expected: n,
            got: e1.len(),
        });
    }
    let u = recover_u(ctx, pk, ct, e2)?;
    let e1_rns = ctx.basis().from_signed(e1);
    let delta_m = ct.c0().sub(&pk.p0().mul(&u)).sub(&e1_rns);
    // Each composed coefficient must be exactly Δ·m_i with m_i < t.
    let delta = ctx.delta().clone();
    let t = ctx.parms().plain_modulus().value();
    let mut coeffs = Vec::with_capacity(n);
    for i in 0..n {
        let x = delta_m.compose_coefficient(i);
        let (quot, rem) = x.divmod(&delta);
        if !rem.is_zero() {
            return Err(RecoverError::InconsistentErrors { coefficient: i });
        }
        match quot.to_u64() {
            Some(m) if m < t => coeffs.push(m),
            _ => return Err(RecoverError::InconsistentErrors { coefficient: i }),
        }
    }
    Ok(Plaintext::new(ctx, &coeffs))
}

/// Builds the residual LWE instance when only a subset of `e2` is known:
/// the rows of the negacyclic matrix of `p1` at the known indices give exact
/// linear relations `c1_i − e2_i = (p1 ⊛ u)_i (mod q)`, and the ternary `u`
/// is the short solution.
///
/// `known` maps coefficient index → recovered `e2` value.
///
/// # Errors
///
/// Fails for multi-prime or oversized moduli (the residual solver is a toy
/// finisher for reduced-dimension experiments).
pub fn residual_instance(
    ctx: &BfvContext,
    pk: &PublicKey,
    ct: &Ciphertext,
    known: &[(usize, i64)],
) -> Result<LweInstance, RecoverError> {
    let moduli = ctx.parms().coeff_modulus();
    if moduli.len() != 1 {
        return Err(RecoverError::UnsupportedParameters);
    }
    let q = moduli[0].value();
    let q_i = i64::try_from(q).map_err(|_| RecoverError::UnsupportedParameters)?;
    let n = ctx.degree();
    let p1 = pk.p1().residues()[0].coeffs();
    let c1 = ct.c1().residues()[0].coeffs();
    let mut a = Vec::with_capacity(known.len());
    let mut b = Vec::with_capacity(known.len());
    for &(i, e2_i) in known {
        // Row i of the negacyclic convolution matrix of p1:
        // (p1 ⊛ u)_i = Σ_{j<=i} p1[i-j]·u_j − Σ_{j>i} p1[n+i-j]·u_j.
        let row: Vec<i64> = (0..n)
            .map(|j| {
                if j <= i {
                    p1[i - j] as i64
                } else {
                    (q_i - p1[n + i - j] as i64) % q_i
                }
            })
            .collect();
        a.push(row);
        b.push((c1[i] as i64 - e2_i).rem_euclid(q_i));
    }
    Ok(LweInstance { q: q_i, a, b })
}

/// Finishes the attack with the BKZ solver when only part of `e2` is known:
/// recovers `u`, re-derives the full `e2`, and returns the message. The
/// remaining coefficients of `e1` must be supplied (they come from the same
/// trace).
///
/// # Errors
///
/// Fails when the lattice solver cannot find the ternary `u` (too few known
/// coefficients) or the final recovery is inconsistent.
pub fn recover_message_partial(
    ctx: &BfvContext,
    pk: &PublicKey,
    ct: &Ciphertext,
    e1: &[i64],
    known_e2: &[(usize, i64)],
) -> Result<(Plaintext, Vec<i64>), RecoverError> {
    let instance = residual_instance(ctx, pk, ct, known_e2)?;
    let config = SolverConfig {
        error_bound: 0, // the known relations are exact
        secret_bound: 1,
        ..SolverConfig::default()
    };
    let solution = solve_lwe(&instance, &config)?;
    // Re-derive the full e2 = c1 − p1·u.
    let u = ctx.basis().from_signed(&solution.secret);
    let e2_poly = ct.c1().sub(&pk.p1().mul(&u));
    let e2: Vec<i64> = e2_poly.residues()[0].to_signed();
    let plain = recover_message(ctx, pk, ct, e1, &e2)?;
    Ok((plain, e2))
}

/// Recovers the plaintext from `u` alone: `c0 − p0·u = Δ·m + e1`, and the
/// small `e1` is eliminated by rounding — `m_i = ⌊t·(c0 − p0·u)_i / q⌉ mod t`
/// — so recovering `e2` (hence `u`) suffices for full message recovery.
pub fn recover_message_from_u(
    ctx: &BfvContext,
    pk: &PublicKey,
    ct: &Ciphertext,
    u: &RnsPolynomial,
) -> Plaintext {
    let w = ct.c0().sub(&pk.p0().mul(u));
    let q = ctx.basis().product().clone();
    let t = ctx.parms().plain_modulus().value();
    let n = ctx.degree();
    let mut coeffs = Vec::with_capacity(n);
    for i in 0..n {
        let x = w.compose_coefficient(i);
        let rounded = x.mul_div_round(t, &q);
        coeffs.push(rounded.rem_u64(t));
    }
    Plaintext::new(ctx, &coeffs)
}

/// Finishes a *single-trace* attack adaptively: sort the attack's
/// per-coefficient `(value, confidence)` estimates of `e2`, treat the most
/// confident ones as exact, and lattice-solve for the ternary `u`; when the
/// solve fails (a confident estimate was wrong), shrink the known set and
/// retry. Returns the message, the recovered `u`, and how many coefficients
/// were ultimately trusted.
///
/// # Errors
///
/// Fails when no trusted subset yields a consistent ternary solution.
pub fn recover_adaptive(
    ctx: &BfvContext,
    pk: &PublicKey,
    ct: &Ciphertext,
    e2_estimates: &[(i64, f64)],
    min_confidence: f64,
) -> Result<(Plaintext, Vec<i64>, usize), RecoverError> {
    let n = ctx.degree();
    if e2_estimates.len() != n {
        return Err(RecoverError::LengthMismatch {
            expected: n,
            got: e2_estimates.len(),
        });
    }
    // Coordinates ordered by descending confidence, filtered by the floor.
    let mut order: Vec<usize> = (0..n)
        .filter(|&i| e2_estimates[i].1 >= min_confidence)
        .collect();
    order.sort_by(|&a, &b| {
        e2_estimates[b]
            .1
            .partial_cmp(&e2_estimates[a].1)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let config = SolverConfig {
        error_bound: 0,
        secret_bound: 1,
        ..SolverConfig::default()
    };
    let mut last_err = RecoverError::Lattice(SolveError::NoCandidateFound);
    for shrink in 0..6 {
        let keep = order.len().saturating_sub(shrink * order.len() / 10);
        if keep < n / 3 {
            break;
        }
        let known: Vec<(usize, i64)> = order[..keep]
            .iter()
            .map(|&i| (i, e2_estimates[i].0))
            .collect();
        let instance = residual_instance(ctx, pk, ct, &known)?;
        match solve_lwe(&instance, &config) {
            Ok(solution) => {
                let u_rns = ctx.basis().from_signed(&solution.secret);
                let plain = recover_message_from_u(ctx, pk, ct, &u_rns);
                return Ok((plain, solution.secret, keep));
            }
            Err(e) => last_err = RecoverError::Lattice(e),
        }
    }
    Err(last_err)
}

/// Recovers the **secret key** from the public key and the key-generation
/// noise `e`: `pk = (-(a·s + e), a)` gives `s = a⁻¹·(−p0 − e)`.
///
/// Key generation samples `e` through the *same* vulnerable routine the
/// encryption uses, so a single trace of `KeyGen` (instead of `Encrypt`)
/// hands the adversary the long-term secret key rather than one message —
/// the natural extension the paper's §I alludes to.
///
/// # Errors
///
/// Fails when `a` is not invertible, lengths mismatch, or the recovered key
/// is not ternary (i.e. the `e` estimates were wrong).
pub fn recover_secret_key(
    ctx: &BfvContext,
    pk: &PublicKey,
    e: &[i64],
) -> Result<Vec<i64>, RecoverError> {
    let n = ctx.degree();
    if e.len() != n {
        return Err(RecoverError::LengthMismatch {
            expected: n,
            got: e.len(),
        });
    }
    let e_rns = ctx.basis().from_signed(e);
    // -p0 - e = a·s.
    let as_poly = pk.p0().neg().sub(&e_rns);
    let mut residues = Vec::with_capacity(ctx.basis().len());
    for (num, a) in as_poly.residues().iter().zip(pk.p1().residues()) {
        let inv = a.inverse().ok_or(RecoverError::P1NotInvertible)?;
        residues.push(num.mul(&inv));
    }
    let s = ctx.basis().from_residues(residues);
    let s_signed: Vec<i64> = s.residues()[0].to_signed();
    if s_signed.iter().any(|&x| !(-1..=1).contains(&x)) {
        return Err(RecoverError::InconsistentErrors { coefficient: 0 });
    }
    Ok(s_signed)
}

/// Adaptive secret-key recovery from single-trace estimates of the keygen
/// noise `e`: confident coefficients become exact relations
/// `(a ⊛ s)_i = (−p0 − e)_i (mod q)` and the ternary `s` is found by the
/// progressive lattice solver, shrinking the trusted set on failure —
/// the keygen analogue of [`recover_adaptive`].
///
/// # Errors
///
/// Fails when no trusted subset yields a consistent ternary key.
pub fn recover_secret_key_adaptive(
    ctx: &BfvContext,
    pk: &PublicKey,
    e_estimates: &[(i64, f64)],
    min_confidence: f64,
) -> Result<(Vec<i64>, usize), RecoverError> {
    let n = ctx.degree();
    if e_estimates.len() != n {
        return Err(RecoverError::LengthMismatch {
            expected: n,
            got: e_estimates.len(),
        });
    }
    let moduli = ctx.parms().coeff_modulus();
    if moduli.len() != 1 {
        return Err(RecoverError::UnsupportedParameters);
    }
    let q_i = i64::try_from(moduli[0].value()).map_err(|_| RecoverError::UnsupportedParameters)?;
    let a_coeffs = pk.p1().residues()[0].coeffs();
    let neg_p0 = pk.p0().neg();
    let rhs_full = neg_p0.residues()[0].coeffs();

    let mut order: Vec<usize> = (0..n)
        .filter(|&i| e_estimates[i].1 >= min_confidence)
        .collect();
    order.sort_by(|&x, &y| {
        e_estimates[y]
            .1
            .partial_cmp(&e_estimates[x].1)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let config = SolverConfig {
        error_bound: 0,
        secret_bound: 1,
        ..SolverConfig::default()
    };
    let mut last_err = RecoverError::Lattice(SolveError::NoCandidateFound);
    for shrink in 0..6 {
        let keep = order.len().saturating_sub(shrink * order.len() / 10);
        if keep < n / 3 {
            break;
        }
        let a: Vec<Vec<i64>> = order[..keep]
            .iter()
            .map(|&i| {
                (0..n)
                    .map(|j| {
                        if j <= i {
                            a_coeffs[i - j] as i64
                        } else {
                            (q_i - a_coeffs[n + i - j] as i64) % q_i
                        }
                    })
                    .collect()
            })
            .collect();
        let b: Vec<i64> = order[..keep]
            .iter()
            .map(|&i| (rhs_full[i] as i64 - e_estimates[i].0).rem_euclid(q_i))
            .collect();
        match solve_lwe(&LweInstance { q: q_i, a, b }, &config) {
            Ok(solution) => {
                // Verify against the full key relation.
                let e_full: Vec<i64> = {
                    let s_rns = ctx.basis().from_signed(&solution.secret);
                    neg_p0.sub(&pk.p1().mul(&s_rns)).residues()[0].to_signed()
                };
                if e_full.iter().all(|&x| x.abs() <= 48) {
                    return Ok((solution.secret, keep));
                }
                last_err = RecoverError::InconsistentErrors { coefficient: 0 };
            }
            Err(e) => last_err = RecoverError::Lattice(e),
        }
    }
    Err(last_err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use reveal_bfv::{EncryptionParameters, Encryptor, KeyGenerator};
    use reveal_math::Modulus;

    fn setup(n: usize, q: u64, t: u64, seed: u64) -> (BfvContext, PublicKey, Encryptor, StdRng) {
        let parms =
            EncryptionParameters::new(n, vec![Modulus::new(q).unwrap()], Modulus::new(t).unwrap())
                .unwrap();
        let ctx = BfvContext::new(parms).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let keygen = KeyGenerator::new(&ctx);
        let sk = keygen.secret_key(&mut rng);
        let pk = keygen.public_key(&sk, &mut rng);
        let enc = Encryptor::new(&ctx, &pk);
        (ctx, pk, enc, rng)
    }

    #[test]
    fn full_recovery_from_true_errors() {
        let (ctx, pk, enc, mut rng) = setup(1024, 132120577, 256, 1);
        let t = 256u64;
        let coeffs: Vec<u64> = (0..1024).map(|_| rng.gen_range(0..t)).collect();
        let plain = Plaintext::new(&ctx, &coeffs);
        let (ct, wit) = enc.encrypt_observed(
            &plain,
            &mut rng,
            &mut reveal_bfv::NullProbe,
            &mut reveal_bfv::NullProbe,
        );
        let recovered = recover_message(&ctx, &pk, &ct, &wit.e1, &wit.e2).unwrap();
        assert_eq!(recovered.coeffs(), plain.coeffs());
    }

    #[test]
    fn recovered_u_matches_witness() {
        let (ctx, pk, enc, mut rng) = setup(64, 12289, 16, 2);
        let plain = Plaintext::constant(&ctx, 3);
        let (ct, wit) = enc.encrypt_observed(
            &plain,
            &mut rng,
            &mut reveal_bfv::NullProbe,
            &mut reveal_bfv::NullProbe,
        );
        let u = recover_u(&ctx, &pk, &ct, &wit.e2).unwrap();
        assert_eq!(u.residues()[0].to_signed(), wit.u);
    }

    #[test]
    fn wrong_errors_detected() {
        let (ctx, pk, enc, mut rng) = setup(64, 12289, 16, 3);
        let plain = Plaintext::constant(&ctx, 5);
        let (ct, wit) = enc.encrypt_observed(
            &plain,
            &mut rng,
            &mut reveal_bfv::NullProbe,
            &mut reveal_bfv::NullProbe,
        );
        let mut bad_e2 = wit.e2.clone();
        bad_e2[7] += 1;
        assert!(matches!(
            recover_message(&ctx, &pk, &ct, &wit.e1, &bad_e2),
            Err(RecoverError::InconsistentErrors { .. })
        ));
    }

    #[test]
    fn length_mismatch_detected() {
        let (ctx, pk, enc, mut rng) = setup(64, 12289, 16, 4);
        let (ct, wit) = enc.encrypt_observed(
            &Plaintext::constant(&ctx, 1),
            &mut rng,
            &mut reveal_bfv::NullProbe,
            &mut reveal_bfv::NullProbe,
        );
        assert!(matches!(
            recover_message(&ctx, &pk, &ct, &wit.e1[..10], &wit.e2),
            Err(RecoverError::LengthMismatch { .. })
        ));
        assert!(matches!(
            recover_u(&ctx, &pk, &ct, &[0; 3]),
            Err(RecoverError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn partial_recovery_via_lattice() {
        // Toy ring degree so BKZ can finish: n = 16, all but 2 coefficients
        // of e2 known.
        let (ctx, pk, enc, mut rng) = setup(16, 3329, 4, 5);
        let mut coeffs = vec![0u64; 16];
        coeffs[0] = 3;
        coeffs[5] = 2;
        let plain = Plaintext::new(&ctx, &coeffs);
        let (ct, wit) = enc.encrypt_observed(
            &plain,
            &mut rng,
            &mut reveal_bfv::NullProbe,
            &mut reveal_bfv::NullProbe,
        );
        let known: Vec<(usize, i64)> = (0..14).map(|i| (i, wit.e2[i])).collect();
        let (recovered, e2) = recover_message_partial(&ctx, &pk, &ct, &wit.e1, &known).unwrap();
        assert_eq!(recovered.coeffs(), plain.coeffs());
        assert_eq!(e2, wit.e2);
    }

    #[test]
    fn message_from_u_alone() {
        // e1 is eliminated by rounding; u suffices.
        let (ctx, pk, enc, mut rng) = setup(64, 12289, 16, 7);
        let mut coeffs = vec![0u64; 64];
        coeffs[0] = 9;
        coeffs[63] = 15;
        let plain = Plaintext::new(&ctx, &coeffs);
        let (ct, wit) = enc.encrypt_observed(
            &plain,
            &mut rng,
            &mut reveal_bfv::NullProbe,
            &mut reveal_bfv::NullProbe,
        );
        let u = ctx.basis().from_signed(&wit.u);
        let recovered = recover_message_from_u(&ctx, &pk, &ct, &u);
        assert_eq!(recovered.coeffs(), plain.coeffs());
    }

    #[test]
    fn adaptive_recovery_tolerates_wrong_low_confidence_estimates() {
        let (ctx, pk, enc, mut rng) = setup(16, 3329, 4, 8);
        let plain = Plaintext::constant(&ctx, 2);
        let (ct, wit) = enc.encrypt_observed(
            &plain,
            &mut rng,
            &mut reveal_bfv::NullProbe,
            &mut reveal_bfv::NullProbe,
        );
        // Build estimates: 12 correct at high confidence, 4 *wrong* at low
        // confidence (below the floor) — the adaptive finisher must succeed
        // from the trusted subset.
        let estimates: Vec<(i64, f64)> = wit
            .e2
            .iter()
            .enumerate()
            .map(|(i, &v)| if i < 12 { (v, 0.999) } else { (v + 3, 0.2) })
            .collect();
        let (recovered, u, trusted) = recover_adaptive(&ctx, &pk, &ct, &estimates, 0.9).unwrap();
        assert_eq!(recovered.coeffs(), plain.coeffs());
        assert_eq!(u, wit.u);
        assert_eq!(trusted, 12);
    }

    #[test]
    fn adaptive_recovery_shrinks_past_confident_mistakes() {
        let (ctx, pk, enc, mut rng) = setup(16, 3329, 4, 9);
        let plain = Plaintext::constant(&ctx, 1);
        let (ct, wit) = enc.encrypt_observed(
            &plain,
            &mut rng,
            &mut reveal_bfv::NullProbe,
            &mut reveal_bfv::NullProbe,
        );
        // 15 correct estimates; one wrong one whose confidence is *lowest
        // among the trusted* — a shrink round must discard it.
        let mut estimates: Vec<(i64, f64)> = wit.e2.iter().map(|&v| (v, 0.99)).collect();
        estimates[5] = (wit.e2[5] + 2, 0.91);
        let (recovered, u, trusted) = recover_adaptive(&ctx, &pk, &ct, &estimates, 0.9).unwrap();
        assert_eq!(recovered.coeffs(), plain.coeffs());
        assert_eq!(u, wit.u);
        assert!(trusted < 16, "the wrong estimate must have been dropped");
    }

    #[test]
    fn adaptive_recovery_fails_without_enough_confidence() {
        let (ctx, pk, enc, mut rng) = setup(16, 3329, 4, 10);
        let (ct, wit) = enc.encrypt_observed(
            &Plaintext::constant(&ctx, 3),
            &mut rng,
            &mut reveal_bfv::NullProbe,
            &mut reveal_bfv::NullProbe,
        );
        let estimates: Vec<(i64, f64)> = wit.e2.iter().map(|&v| (v, 0.1)).collect();
        assert!(recover_adaptive(&ctx, &pk, &ct, &estimates, 0.9).is_err());
    }

    #[test]
    fn secret_key_from_keygen_noise() {
        // pk = (-(a s + e), a): knowing e recovers s exactly.
        let (ctx, pk, _enc, mut rng) = setup(64, 12289, 16, 11);
        // Reconstruct the keygen noise from the key relation (ground truth).
        let keygen = KeyGenerator::new(&ctx);
        let sk2 = keygen.secret_key(&mut rng);
        let pk2 = keygen.public_key(&sk2, &mut rng);
        let neg_e = pk2.p0().add(&pk2.p1().mul(sk2.as_rns()));
        let e: Vec<i64> = neg_e.residues()[0]
            .to_signed()
            .iter()
            .map(|&x| -x)
            .collect();
        let recovered = recover_secret_key(&ctx, &pk2, &e).unwrap();
        assert_eq!(recovered, sk2.coefficients());
        let _ = pk;
    }

    #[test]
    fn secret_key_recovery_detects_wrong_noise() {
        let (ctx, _pk, _enc, mut rng) = setup(64, 12289, 16, 12);
        let keygen = KeyGenerator::new(&ctx);
        let sk = keygen.secret_key(&mut rng);
        let pk = keygen.public_key(&sk, &mut rng);
        let mut e = vec![0i64; 64];
        e[0] = 40; // almost surely wrong
        assert!(recover_secret_key(&ctx, &pk, &e).is_err());
    }

    #[test]
    fn residual_instance_is_consistent() {
        let (ctx, pk, enc, mut rng) = setup(16, 3329, 4, 6);
        let (ct, wit) = enc.encrypt_observed(
            &Plaintext::constant(&ctx, 1),
            &mut rng,
            &mut reveal_bfv::NullProbe,
            &mut reveal_bfv::NullProbe,
        );
        let known: Vec<(usize, i64)> = (0..16).map(|i| (i, wit.e2[i])).collect();
        let inst = residual_instance(&ctx, &pk, &ct, &known).unwrap();
        // The true u must satisfy every relation exactly.
        assert_eq!(inst.error_for_secret(&wit.u), vec![0i64; 16]);
    }
}
