//! The profiling stage: learn segmentation-aligned templates from a device
//! the adversary controls (§II-B threat model, §III-D template construction).

use crate::config::AttackConfig;
use crate::device::Device;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use reveal_rv32::kernel::KernelError;
use reveal_rv32::BlockCacheStats;
use reveal_rv32::PowerCapture;
use reveal_template::{
    CovarianceMode, LearnedClassifier, LearnedConfig, LearnedError, ScoreTable, TemplateError,
    TemplateSet,
};
use reveal_trace::poi::{select_pois, PoiError};
use reveal_trace::segment::{find_bursts, refined_bursts_into, SegmentError, SegmentScratch};
use reveal_trace::{Trace, TraceSet};
use std::collections::BTreeSet;
use std::fmt;

/// Errors from profiling or attacking.
#[derive(Debug, Clone, PartialEq)]
pub enum AttackError {
    /// Segmentation failed on a trace.
    Segment(SegmentError),
    /// Template fitting/classification failed.
    Template(TemplateError),
    /// POI selection failed.
    Poi(PoiError),
    /// The device failed to run.
    Kernel(KernelError),
    /// Segmentation found the wrong number of windows during the attack.
    WindowCountMismatch { expected: usize, got: usize },
    /// Not enough profiling data survived for some class.
    NotEnoughProfilingData { label: i64, count: usize },
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackError::Segment(e) => write!(f, "segmentation failed: {e}"),
            AttackError::Template(e) => write!(f, "template stage failed: {e}"),
            AttackError::Poi(e) => write!(f, "POI selection failed: {e}"),
            AttackError::Kernel(e) => write!(f, "device execution failed: {e}"),
            AttackError::WindowCountMismatch { expected, got } => {
                write!(f, "expected {expected} windows, segmentation found {got}")
            }
            AttackError::NotEnoughProfilingData { label, count } => {
                write!(f, "class {label} has only {count} profiling windows")
            }
        }
    }
}

impl std::error::Error for AttackError {}

impl From<SegmentError> for AttackError {
    fn from(e: SegmentError) -> Self {
        AttackError::Segment(e)
    }
}

impl From<TemplateError> for AttackError {
    fn from(e: TemplateError) -> Self {
        AttackError::Template(e)
    }
}

impl From<PoiError> for AttackError {
    fn from(e: PoiError) -> Self {
        AttackError::Poi(e)
    }
}

impl From<KernelError> for AttackError {
    fn from(e: KernelError) -> Self {
        AttackError::Kernel(e)
    }
}

/// Extracts the per-coefficient *ladder windows* from a full trace: each
/// window is the fixed-length slice starting where a distribution-call burst
/// ends (the `if/else-if/else` region of Fig. 2).
///
/// # Errors
///
/// Propagates burst-detection failures.
pub fn extract_ladder_windows(
    samples: &[f64],
    config: &AttackConfig,
) -> Result<Vec<Vec<f64>>, SegmentError> {
    extract_ladder_windows_into(samples, config, &mut SegmentScratch::new())
}

/// [`extract_ladder_windows`] with caller-provided segmentation scratch:
/// burst finding and end refinement run through the fused four-pass
/// segmenter ([`refined_bursts_into`]), reusing the scratch's buffers, so a
/// warm worker segments each capture without large allocations. Identical
/// windows (this *is* [`extract_ladder_windows`], which passes a cold
/// scratch).
///
/// # Errors
///
/// Same as [`extract_ladder_windows`].
pub fn extract_ladder_windows_into(
    samples: &[f64],
    config: &AttackConfig,
    scratch: &mut SegmentScratch,
) -> Result<Vec<Vec<f64>>, SegmentError> {
    let bursts = refined_bursts_into(samples, &config.segment, scratch)?;
    windows_after_bursts(samples, &bursts, config)
}

/// [`extract_ladder_windows`] through the pre-fast-path segmenters (full
/// percentile sorts per trace). Identical windows; kept for the
/// `bench_pipeline` fast-path vs baseline comparison.
///
/// # Errors
///
/// Same as [`extract_ladder_windows`].
pub fn extract_ladder_windows_reference(
    samples: &[f64],
    config: &AttackConfig,
) -> Result<Vec<Vec<f64>>, SegmentError> {
    let bursts = reveal_trace::segment::find_bursts_reference(samples, &config.segment)?;
    let bursts =
        reveal_trace::segment::refine_burst_ends_reference(samples, &bursts, &config.segment);
    windows_after_bursts(samples, &bursts, config)
}

fn windows_after_bursts(
    samples: &[f64],
    bursts: &[(usize, usize)],
    config: &AttackConfig,
) -> Result<Vec<Vec<f64>>, SegmentError> {
    let mut windows = Vec::with_capacity(bursts.len());
    for &(_, end) in bursts {
        // Only full windows qualify: the device's epilogue burst (the
        // encryption work following the sampler) guarantees one for every
        // real coefficient, while the epilogue burst itself — with nothing
        // after it — is dropped here.
        if end + config.ladder_window > samples.len() {
            continue;
        }
        windows.push(samples[end..end + config.ladder_window].to_vec());
    }
    Ok(windows)
}

/// The trained single-trace attacker: sign templates plus sign-conditional
/// value templates (with negation/store fusion for the negative class),
/// optionally carrying the learned second rail for per-burst arbitration
/// in the robust driver.
#[derive(Debug, Clone)]
pub struct TrainedAttack {
    config: AttackConfig,
    sign_pois: Vec<usize>,
    sign_templates: TemplateSet,
    pos_pois: Vec<usize>,
    pos_templates: TemplateSet,
    neg_early_pois: Vec<usize>,
    neg_early_templates: TemplateSet,
    neg_late_pois: Vec<usize>,
    neg_late_templates: TemplateSet,
    profiling_windows: usize,
    learned: Option<LearnedRail>,
}

/// The learned classification rail: seeded logistic-regression classifiers
/// over the *same* POI projections the pooled-Gaussian templates read,
/// trained from the same profiling captures
/// ([`TrainedAttack::fit_learned_rail`]) with noise augmentation and
/// held-out temperature calibration. The negative class uses one classifier
/// over the concatenated negation-region and store-region projections —
/// the learned analogue of the template rail's score fusion.
#[derive(Debug, Clone)]
pub struct LearnedRail {
    sign_pois: Vec<usize>,
    pos_pois: Vec<usize>,
    /// Negation-region POIs followed by store-region POIs.
    neg_pois: Vec<usize>,
    sign: LearnedClassifier,
    pos: LearnedClassifier,
    neg: LearnedClassifier,
}

impl LearnedRail {
    /// Classifies one ladder window through the learned rail, mirroring
    /// [`TrainedAttack::attack_window`]: sign first, then the
    /// sign-conditional value classifier. The probabilities are the
    /// temperature-calibrated softmax.
    ///
    /// # Errors
    ///
    /// Propagates learned-classifier failures (never panics on finite
    /// windows of the trained length).
    ///
    /// # Panics
    ///
    /// Panics if `window` is shorter than the trained ladder window (same
    /// contract as the template rail).
    pub fn attack_window(&self, window: &[f64]) -> Result<CoefficientEstimate, LearnedError> {
        let project = |pois: &[usize]| -> Vec<f64> { pois.iter().map(|&i| window[i]).collect() };
        let sign = self.sign.classify(&project(&self.sign_pois))?.best_label();
        let (predicted, probabilities) = match sign {
            0 => (0, vec![(0, 1.0)]),
            s if s > 0 => {
                let scores = self.pos.classify(&project(&self.pos_pois))?;
                (scores.best_label(), scores.probabilities())
            }
            _ => {
                let scores = self.neg.classify(&project(&self.neg_pois))?;
                (scores.best_label(), scores.probabilities())
            }
        };
        Ok(CoefficientEstimate {
            sign,
            predicted,
            probabilities,
        })
    }

    /// Calibrated temperatures of the (sign, positive, negative)
    /// classifiers — diagnostics for the robust report.
    pub fn temperatures(&self) -> (f64, f64, f64) {
        (
            self.sign.temperature(),
            self.pos.temperature(),
            self.neg.temperature(),
        )
    }
}

/// The per-coefficient outcome of a single-trace attack.
#[derive(Debug, Clone, PartialEq)]
pub struct CoefficientEstimate {
    /// The sign decision (−1, 0, +1).
    pub sign: i64,
    /// The most likely coefficient value.
    pub predicted: i64,
    /// `(value, probability)` over the sign-consistent candidates.
    pub probabilities: Vec<(i64, f64)>,
}

impl CoefficientEstimate {
    /// The probability assigned to a given value.
    pub fn probability_of(&self, value: i64) -> f64 {
        self.probabilities
            .iter()
            .find(|(v, _)| *v == value)
            .map(|(_, p)| *p)
            .unwrap_or(0.0)
    }

    /// The confidence of the top candidate.
    pub fn confidence(&self) -> f64 {
        self.probabilities
            .iter()
            .map(|(_, p)| *p)
            .fold(0.0, f64::max)
    }
}

/// Result of attacking one full trace.
#[derive(Debug, Clone, PartialEq)]
pub struct SingleTraceAttack {
    /// One estimate per detected coefficient window, in trace order.
    pub coefficients: Vec<CoefficientEstimate>,
}

impl SingleTraceAttack {
    /// The predicted coefficient vector.
    pub fn predicted_values(&self) -> Vec<i64> {
        self.coefficients.iter().map(|c| c.predicted).collect()
    }

    /// Fraction of coefficients whose *sign* matches the given ground truth.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn sign_accuracy(&self, truth: &[i64]) -> f64 {
        assert_eq!(truth.len(), self.coefficients.len());
        let hits = self
            .coefficients
            .iter()
            .zip(truth)
            .filter(|(c, t)| c.sign == t.signum())
            .count();
        hits as f64 / truth.len().max(1) as f64
    }

    /// Fraction of coefficients whose *value* matches the ground truth.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn value_accuracy(&self, truth: &[i64]) -> f64 {
        assert_eq!(truth.len(), self.coefficients.len());
        let hits = self
            .coefficients
            .iter()
            .zip(truth)
            .filter(|(c, t)| c.predicted == **t)
            .count();
        hits as f64 / truth.len().max(1) as f64
    }
}

/// The labelled window sets one profiling campaign yields: the sign set plus
/// the sign-conditional value sets, ready for [`TrainedAttack::fit`].
#[derive(Debug, Clone)]
pub struct ProfilingData {
    /// Windows labelled by coefficient sign (−1, 0, +1).
    pub sign_set: TraceSet,
    /// Windows of positive coefficients, labelled by value.
    pub pos_set: TraceSet,
    /// Windows of negative coefficients, labelled by value.
    pub neg_set: TraceSet,
    /// Total windows that survived segmentation.
    pub total_windows: usize,
    /// Burst-memo lookups served warm across all worker scratches
    /// (diagnostics: partition-dependent, value-neutral — see
    /// [`reveal_rv32::kernel::SamplerScratch::memo_hits`]).
    pub scratch_hits: u64,
    /// Burst-memo lookups rendered cold across all worker scratches.
    pub scratch_misses: u64,
    /// Superinstruction-block compilation/dispatch statistics merged across
    /// all worker scratches (diagnostics: partition-dependent,
    /// value-neutral).
    pub block_stats: BlockCacheStats,
}

/// One profiling worker's reusable state: the rv32 sampler scratch (trace
/// buffer, burst memo, compiled-block cache) plus the segmentation scratch.
/// Profiling never reads per-instruction spans, so the sampler side is
/// [`samples_only`](reveal_rv32::kernel::SamplerScratch::samples_only).
#[derive(Debug, Clone)]
struct ProfileScratch {
    sampler: reveal_rv32::kernel::SamplerScratch,
    segment: SegmentScratch,
}

impl ProfileScratch {
    fn new() -> Self {
        Self {
            sampler: reveal_rv32::kernel::SamplerScratch::samples_only(),
            segment: SegmentScratch::new(),
        }
    }
}

/// Cost model for one profiling capture (capture + segmentation, ~ms each):
/// items are expensive, so claims are near-singular and the worker count
/// saturates quickly.
static PROFILE_RUN_COST: reveal_par::CostModel =
    reveal_par::CostModel::new("attack.profile.run", 4_000_000.0);

/// Cost model for classifying one ladder window (units: window samples).
static ATTACK_WINDOW_COST: reveal_par::CostModel =
    reveal_par::CostModel::new("attack.window.classify", 100.0);

/// What one profiling run yields: its chosen values and ladder windows,
/// `None` when segmentation found the wrong window count (re-capture).
type RunYield = Result<Option<(Vec<i64>, Vec<Vec<f64>>)>, AttackError>;

/// The per-run body shared by the fast path and the baseline: balanced,
/// shuffled chosen values from the run's derived seed, one capture, window
/// extraction.
fn profiling_run(
    device: &Device,
    config: &AttackConfig,
    labels: &[i64],
    master_seed: u64,
    run: usize,
    scratch: Option<&mut ProfileScratch>,
) -> RunYield {
    let n = device.degree();
    let mut rng = StdRng::seed_from_u64(reveal_par::derive_seed(master_seed, run as u64));
    // Balanced, shuffled chosen values; the per-run offset makes all
    // classes appear across runs even when n < label count.
    let mut values: Vec<i64> = (0..n)
        .map(|i| labels[(i + run * n) % labels.len()])
        .collect();
    values.shuffle(&mut rng);
    let windows = match scratch {
        Some(scratch) => {
            let capture = device.capture_chosen_into(&values, &mut rng, &mut scratch.sampler)?;
            extract_ladder_windows_into(&capture.run.capture.samples, config, &mut scratch.segment)?
        }
        None => {
            let capture = device.capture_chosen_reference(&values, &mut rng)?;
            extract_ladder_windows_reference(&capture.run.capture.samples, config)?
        }
    };
    if windows.len() != n {
        // Segmentation glitch: a real adversary would re-capture.
        return Ok(None);
    }
    Ok(Some((values, windows)))
}

/// Folds run yields (in run order) into the labelled window sets.
fn accumulate_runs(
    collected: impl IntoIterator<Item = RunYield>,
) -> Result<ProfilingData, AttackError> {
    let mut data = ProfilingData {
        sign_set: TraceSet::new(),
        pos_set: TraceSet::new(),
        neg_set: TraceSet::new(),
        total_windows: 0,
        scratch_hits: 0,
        scratch_misses: 0,
        block_stats: BlockCacheStats::default(),
    };
    for run_yield in collected {
        let Some((values, windows)) = run_yield? else {
            continue;
        };
        for (w, &v) in windows.into_iter().zip(&values) {
            data.total_windows += 1;
            data.sign_set.push(Trace::labelled(w.clone(), v.signum()));
            if v > 0 {
                data.pos_set.push(Trace::labelled(w, v));
            } else if v < 0 {
                data.neg_set.push(Trace::labelled(w, v));
            }
        }
    }
    Ok(data)
}

/// Collects `runs` chosen-value profiling captures in parallel. Run `i` is a
/// pure function of `(master_seed, i)`: its chosen values, its device noise
/// and its timing variance all come from an [`StdRng`] seeded with
/// [`reveal_par::derive_seed`]`(master_seed, i)` — never from a shared
/// mutable generator — so the collected sets are identical whatever the
/// thread count, and a run's data no longer depends on how much randomness
/// earlier runs happened to consume.
///
/// Runs go through the rv32 streaming fast path with **worker-pinned
/// scratch**: every worker owns one long-lived
/// [`reveal_rv32::kernel::SamplerScratch`] for its entire share of the
/// collection (serial: one scratch for all runs), so the trace buffer is
/// allocated once and the sub-trace memo stays warm across every run a
/// worker touches — no per-chunk cold starts. The partition is scheduling
/// only: each run's values depend on nothing but its own derived seed, so
/// the collected sets are bit-identical to [`collect_profiling_baseline`]
/// for any thread count or chunk plan.
///
/// # Errors
///
/// Propagates the first failing run's error (in run order). Runs whose
/// segmentation finds the wrong window count are skipped, as a real
/// adversary would re-capture.
pub fn collect_profiling(
    device: &Device,
    runs: usize,
    config: &AttackConfig,
    master_seed: u64,
) -> Result<ProfilingData, AttackError> {
    let labels = config.value_labels();
    let (collected, scratches) = reveal_par::par_map_index_with_scratch(
        runs,
        &PROFILE_RUN_COST,
        1,
        ProfileScratch::new,
        |scratch, run| profiling_run(device, config, &labels, master_seed, run, Some(scratch)),
    );
    let mut data = accumulate_runs(collected)?;
    for scratch in &scratches {
        data.scratch_hits += scratch.sampler.memo_hits();
        data.scratch_misses += scratch.sampler.memo_misses();
        data.block_stats.merge(&scratch.sampler.block_stats());
    }
    Ok(data)
}

/// The pre-fast-path reference implementation of [`collect_profiling`]: one
/// task per run, materializing captures through
/// [`Device::capture_chosen_reference`] (per-step decoding, `sin`-per-bit
/// rendering). Kept for the equivalence tests and the `bench_pipeline`
/// fast-path vs baseline comparison.
///
/// # Errors
///
/// Same as [`collect_profiling`].
pub fn collect_profiling_baseline(
    device: &Device,
    runs: usize,
    config: &AttackConfig,
    master_seed: u64,
) -> Result<ProfilingData, AttackError> {
    let labels = config.value_labels();
    let collected: Vec<RunYield> = reveal_par::par_map_index(runs, |run| {
        profiling_run(device, config, &labels, master_seed, run, None)
    });
    accumulate_runs(collected)
}

impl TrainedAttack {
    /// Profiles `device` with `runs` chosen-value captures and fits all
    /// template sets. Each run cycles through every value class in
    /// `[-value_range, value_range]` in shuffled positions, so classes stay
    /// balanced and position effects decorrelate.
    ///
    /// The supplied generator contributes exactly one `u64` — the master
    /// seed handed to [`profile_seeded`](TrainedAttack::profile_seeded) —
    /// so profiling is reproducible from the seed alone and runs in
    /// parallel across `REVEAL_THREADS` workers.
    ///
    /// # Errors
    ///
    /// Fails when segmentation, POI selection or template fitting fails, or
    /// when too little per-class data survives.
    pub fn profile<R: Rng + ?Sized>(
        device: &Device,
        runs: usize,
        config: &AttackConfig,
        rng: &mut R,
    ) -> Result<Self, AttackError> {
        Self::profile_seeded(device, runs, config, rng.next_u64())
    }

    /// Seed-explicit profiling: collects [`collect_profiling`]'s window sets
    /// (in parallel, deterministically) and fits the templates. Two calls
    /// with the same arguments produce bit-identical attackers at any
    /// thread count.
    ///
    /// # Errors
    ///
    /// Same as [`TrainedAttack::profile`].
    pub fn profile_seeded(
        device: &Device,
        runs: usize,
        config: &AttackConfig,
        master_seed: u64,
    ) -> Result<Self, AttackError> {
        let data = collect_profiling(device, runs, config, master_seed)?;
        Self::fit(
            config.clone(),
            data.sign_set,
            data.pos_set,
            data.neg_set,
            data.total_windows,
        )
    }

    /// Fits the template sets from already-windowed profiling data (used by
    /// `profile` and directly by tests/benches that bring their own data).
    ///
    /// # Errors
    ///
    /// Same as [`TrainedAttack::profile`].
    pub fn fit(
        config: AttackConfig,
        sign_set: TraceSet,
        pos_set: TraceSet,
        neg_set: TraceSet,
        profiling_windows: usize,
    ) -> Result<Self, AttackError> {
        for (set, name) in [(&sign_set, 0i64), (&pos_set, 1), (&neg_set, -1)] {
            if set.len() < 8 {
                return Err(AttackError::NotEnoughProfilingData {
                    label: name,
                    count: set.len(),
                });
            }
        }
        let sign_pois = select_pois(
            &sign_set,
            config.poi_method,
            config.poi_count,
            config.poi_min_spacing,
        )?;
        let sign_templates = fit_set(&sign_set, &sign_pois, config.covariance, config.ridge)?;

        let pos_pois = select_pois(
            &pos_set,
            config.poi_method,
            config.poi_count,
            config.poi_min_spacing,
        )?;
        let pos_templates = fit_set(&pos_set, &pos_pois, config.covariance, config.ridge)?;

        // Negatives: separate POI sets for the negation region (early part of
        // the ladder) and the store region (late part), fused at attack time.
        let split = (config.ladder_window as f64 * config.early_fraction) as usize;
        let neg_stat = reveal_trace::poi::leakage_statistic(&neg_set, config.poi_method)?;
        let early_stat: Vec<f64> = neg_stat
            .iter()
            .enumerate()
            .map(|(i, &s)| if i < split { s } else { 0.0 })
            .collect();
        let late_stat: Vec<f64> = neg_stat
            .iter()
            .enumerate()
            .map(|(i, &s)| if i >= split { s } else { 0.0 })
            .collect();
        let neg_early_pois = reveal_trace::poi::select_pois_from_statistic(
            &early_stat,
            config.poi_count,
            config.poi_min_spacing,
        );
        let neg_late_pois = reveal_trace::poi::select_pois_from_statistic(
            &late_stat,
            config.poi_count,
            config.poi_min_spacing,
        );
        let neg_early_templates =
            fit_set(&neg_set, &neg_early_pois, config.covariance, config.ridge)?;
        let neg_late_templates =
            fit_set(&neg_set, &neg_late_pois, config.covariance, config.ridge)?;

        Ok(Self {
            config,
            sign_pois,
            sign_templates,
            pos_pois,
            pos_templates,
            neg_early_pois,
            neg_early_templates,
            neg_late_pois,
            neg_late_templates,
            profiling_windows,
            learned: None,
        })
    }

    /// Seed-explicit **two-rail** profiling: collects one profiling
    /// campaign, fits the pooled-Gaussian templates, then trains the
    /// learned rail from the *same* labelled windows and attaches it.
    ///
    /// The learned rail's failure is **not** fatal: a diverged or
    /// degenerate training run returns the template-only attacker plus the
    /// typed [`LearnedError`] so the caller can record the LDA-only
    /// fallback in its report — the driver degrades, it never panics.
    ///
    /// # Errors
    ///
    /// Same as [`TrainedAttack::profile_seeded`] (template-rail failures
    /// are still fatal: without templates there is no attack at all).
    pub fn profile_seeded_two_rail(
        device: &Device,
        runs: usize,
        config: &AttackConfig,
        master_seed: u64,
        learned: &LearnedConfig,
    ) -> Result<(Self, Option<LearnedError>), AttackError> {
        let data = collect_profiling(device, runs, config, master_seed)?;
        let mut attack = Self::fit(
            config.clone(),
            data.sign_set.clone(),
            data.pos_set.clone(),
            data.neg_set.clone(),
            data.total_windows,
        )?;
        match attack.fit_learned_rail(&data, learned) {
            Ok(rail) => {
                attack.learned = Some(rail);
                Ok((attack, None))
            }
            Err(e) => Ok((attack, Some(e))),
        }
    }

    /// Trains the learned rail from a profiling campaign's labelled
    /// windows, projected onto this attacker's already-selected POIs (the
    /// rails therefore read identical evidence). Per-classifier seeds are
    /// derived from `config.seed` so the three problems get independent
    /// deterministic streams.
    ///
    /// # Errors
    ///
    /// Propagates typed learned-training failures; the attacker itself is
    /// untouched on error.
    pub fn fit_learned_rail(
        &self,
        data: &ProfilingData,
        config: &LearnedConfig,
    ) -> Result<LearnedRail, LearnedError> {
        let project = |set: &TraceSet, pois: &[usize]| -> Vec<(i64, Vec<f64>)> {
            set.iter()
                .map(|t| (t.label().unwrap_or(0), t.project(pois)))
                .collect()
        };
        let neg_pois: Vec<usize> = self
            .neg_early_pois
            .iter()
            .chain(&self.neg_late_pois)
            .copied()
            .collect();
        let seeded = |stream: u64| {
            config
                .clone()
                .with_seed(reveal_par::derive_seed(config.seed, stream))
        };
        let sign = LearnedClassifier::fit(&project(&data.sign_set, &self.sign_pois), &seeded(1))?;
        let pos = LearnedClassifier::fit(&project(&data.pos_set, &self.pos_pois), &seeded(2))?;
        let neg = LearnedClassifier::fit(&project(&data.neg_set, &neg_pois), &seeded(3))?;
        Ok(LearnedRail {
            sign_pois: self.sign_pois.clone(),
            pos_pois: self.pos_pois.clone(),
            neg_pois,
            sign,
            pos,
            neg,
        })
    }

    /// Attaches (or replaces) the learned rail.
    #[must_use]
    pub fn with_learned_rail(mut self, rail: LearnedRail) -> Self {
        self.learned = Some(rail);
        self
    }

    /// Drops the learned rail (template-only attacker).
    #[must_use]
    pub fn without_learned_rail(mut self) -> Self {
        self.learned = None;
        self
    }

    /// The attached learned rail, if any.
    pub fn learned_rail(&self) -> Option<&LearnedRail> {
        self.learned.as_ref()
    }

    /// The configuration the attacker was trained with.
    pub fn config(&self) -> &AttackConfig {
        &self.config
    }

    /// Number of profiling windows consumed.
    pub fn profiling_windows(&self) -> usize {
        self.profiling_windows
    }

    /// Attacks a full single trace: segmentation, per-window sign decision,
    /// sign-conditional value recovery with negation/store fusion.
    ///
    /// # Errors
    ///
    /// Fails when segmentation or classification fails.
    pub fn attack_trace(&self, samples: &[f64]) -> Result<SingleTraceAttack, AttackError> {
        let windows = extract_ladder_windows(samples, &self.config)?;
        // Each window's classification is independent; fan out across
        // threads and keep trace order. The first failing window (in trace
        // order) determines the error, matching the serial loop. The cost
        // model keeps short traces serial — a single classification is far
        // cheaper than a thread handoff — and sizes claims from measured
        // per-window cost on longer ones.
        let coefficients = reveal_par::par_map_modeled(
            &windows,
            &ATTACK_WINDOW_COST,
            windows.first().map_or(1, |w| w.len() as u64),
            |w| self.attack_window(w),
        )
        .into_iter()
        .collect::<Result<Vec<_>, _>>()?;
        Ok(SingleTraceAttack { coefficients })
    }

    /// Attacks a full trace whose window count is known (a real encryption
    /// samples exactly `n` coefficients); mismatches are reported.
    ///
    /// # Errors
    ///
    /// Additionally fails with [`AttackError::WindowCountMismatch`].
    pub fn attack_trace_expecting(
        &self,
        samples: &[f64],
        expected_windows: usize,
    ) -> Result<SingleTraceAttack, AttackError> {
        let result = self.attack_trace(samples)?;
        if result.coefficients.len() != expected_windows {
            return Err(AttackError::WindowCountMismatch {
                expected: expected_windows,
                got: result.coefficients.len(),
            });
        }
        Ok(result)
    }

    /// The raw (unnormalized) log-likelihood of the best-fitting *sign*
    /// class for one ladder window — an absolute goodness-of-fit number, in
    /// contrast to the softmax probabilities, which always sum to one even
    /// when every template fits terribly. The robust driver screens windows
    /// whose score falls far below the per-trace population (misaligned,
    /// glitched or clipped windows score catastrophically against every
    /// class at once).
    ///
    /// # Errors
    ///
    /// Propagates template-classification failures.
    pub fn sign_fit_score(&self, window: &[f64]) -> Result<f64, AttackError> {
        let obs: Vec<f64> = self.sign_pois.iter().map(|&i| window[i]).collect();
        let scores = self.sign_templates.classify(&obs)?;
        Ok(scores
            .log_likelihoods()
            .iter()
            .map(|(_, s)| *s)
            .fold(f64::NEG_INFINITY, f64::max))
    }

    /// Classifies one ladder window.
    ///
    /// # Errors
    ///
    /// Propagates template-classification failures.
    pub fn attack_window(&self, window: &[f64]) -> Result<CoefficientEstimate, AttackError> {
        let sign_obs: Vec<f64> = self.sign_pois.iter().map(|&i| window[i]).collect();
        let sign = self.sign_templates.classify(&sign_obs)?.best_label();
        let (predicted, probabilities) = match sign {
            0 => (0, vec![(0, 1.0)]),
            s if s > 0 => {
                let obs: Vec<f64> = self.pos_pois.iter().map(|&i| window[i]).collect();
                let scores = self.pos_templates.classify(&obs)?;
                (scores.best_label(), scores.probabilities())
            }
            _ => {
                let early: Vec<f64> = self.neg_early_pois.iter().map(|&i| window[i]).collect();
                let late: Vec<f64> = self.neg_late_pois.iter().map(|&i| window[i]).collect();
                let fused: ScoreTable = self
                    .neg_early_templates
                    .classify(&early)?
                    .fuse(&self.neg_late_templates.classify(&late)?);
                (fused.best_label(), fused.probabilities())
            }
        };
        Ok(CoefficientEstimate {
            sign,
            predicted,
            probabilities,
        })
    }

    /// The program counters this trained attack actually reads: every
    /// selected point of interest, in every detected ladder window of
    /// `capture`, mapped through the capture's per-instruction
    /// [`SampleSpan`](reveal_rv32::SampleSpan)s to the instruction that
    /// produced the sample. This is the dynamic half of the
    /// static-predicts-dynamic contract: the static leakage map's
    /// top-ranked sites must cover every PC returned here.
    ///
    /// # Errors
    ///
    /// Propagates segmentation failures; requires a span-annotated capture
    /// (not one rendered through a
    /// [`samples_only`](reveal_rv32::kernel::SamplerScratch::samples_only)
    /// scratch).
    pub fn exploited_pcs(&self, capture: &PowerCapture) -> Result<ExploitedPcs, AttackError> {
        let starts = ladder_window_starts(&capture.samples, &self.config)?;
        let pcs_for = |pois: &[usize]| -> BTreeSet<u32> {
            let mut pcs = BTreeSet::new();
            for &start in &starts {
                for &poi in pois {
                    if let Some(pc) = pc_of_sample(capture, start + poi) {
                        pcs.insert(pc);
                    }
                }
            }
            pcs
        };
        Ok(ExploitedPcs {
            sign: pcs_for(&self.sign_pois),
            positive: pcs_for(&self.pos_pois),
            negative_early: pcs_for(&self.neg_early_pois),
            negative_late: pcs_for(&self.neg_late_pois),
        })
    }
}

/// Per-class unions of the PCs a trained attack's points of interest land
/// on (see [`TrainedAttack::exploited_pcs`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploitedPcs {
    /// PCs observed by the sign classifier.
    pub sign: BTreeSet<u32>,
    /// PCs observed by the positive-value templates.
    pub positive: BTreeSet<u32>,
    /// PCs observed by the negative-value negation-region templates.
    pub negative_early: BTreeSet<u32>,
    /// PCs observed by the negative-value store-region templates.
    pub negative_late: BTreeSet<u32>,
}

impl ExploitedPcs {
    /// Every PC any classifier observes.
    pub fn union(&self) -> BTreeSet<u32> {
        let mut all = self.sign.clone();
        all.extend(&self.positive);
        all.extend(&self.negative_early);
        all.extend(&self.negative_late);
        all
    }
}

/// Absolute sample offsets where each full ladder window begins, under the
/// same burst segmentation [`extract_ladder_windows`] uses.
///
/// # Errors
///
/// Propagates burst-detection failures.
pub fn ladder_window_starts(
    samples: &[f64],
    config: &AttackConfig,
) -> Result<Vec<usize>, SegmentError> {
    let bursts = find_bursts(samples, &config.segment)?;
    let bursts = reveal_trace::segment::refine_burst_ends(samples, &bursts, &config.segment);
    Ok(bursts
        .iter()
        .map(|&(_, end)| end)
        .filter(|end| end + config.ladder_window <= samples.len())
        .collect())
}

/// The PC whose instruction produced `sample`, via the capture's span
/// annotations (`None` past the end or for span-less captures).
fn pc_of_sample(capture: &PowerCapture, sample: usize) -> Option<u32> {
    // Spans are emitted in execution order with contiguous sample ranges,
    // so a binary search on `end` finds the unique covering span.
    let idx = capture.spans.partition_point(|s| s.end <= sample);
    let span = capture.spans.get(idx)?;
    (span.start <= sample && sample < span.end).then_some(span.pc)
}

fn fit_set(
    set: &TraceSet,
    pois: &[usize],
    covariance: CovarianceMode,
    ridge: f64,
) -> Result<TemplateSet, TemplateError> {
    TemplateSet::fit_trace_set(set, pois, covariance, ridge)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use reveal_rv32::power::PowerModelConfig;

    const Q: u64 = 132120577;

    fn trained(noise: f64, runs: usize, seed: u64) -> (Device, TrainedAttack, StdRng) {
        let device = Device::new(
            64,
            &[Q],
            PowerModelConfig::default().with_noise_sigma(noise),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let config = AttackConfig::default();
        let attack = TrainedAttack::profile(&device, runs, &config, &mut rng).unwrap();
        (device, attack, rng)
    }

    #[test]
    fn window_extraction_counts_match_ground_truth() {
        let device = Device::new(32, &[Q], PowerModelConfig::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let cap = device.capture_fresh(&mut rng).unwrap();
        let windows =
            extract_ladder_windows(&cap.run.capture.samples, &AttackConfig::default()).unwrap();
        assert_eq!(windows.len(), 32);
        assert!(windows.iter().all(|w| w.len() == 96));
    }

    #[test]
    fn low_noise_attack_recovers_signs_perfectly() {
        let (device, attack, mut rng) = trained(0.05, 24, 2);
        let cap = device.capture_fresh(&mut rng).unwrap();
        let result = attack
            .attack_trace_expecting(&cap.run.capture.samples, 64)
            .unwrap();
        let sign_acc = result.sign_accuracy(&cap.values);
        assert_eq!(sign_acc, 1.0, "paper: 100% sign accuracy");
    }

    #[test]
    fn low_noise_attack_matches_table_i_shape() {
        // Table I regime: zeros recovered at 100%, negatives far better than
        // positives (Hamming-weight collisions confuse the positive branch,
        // the negation disambiguates the negative one).
        let (device, attack, mut rng) = trained(0.05, 24, 3);
        let (mut ph, mut pt, mut nh, mut nt, mut zh, mut zt) = (0, 0, 0, 0, 0, 0);
        for _ in 0..4 {
            let cap = device.capture_fresh(&mut rng).unwrap();
            let result = attack
                .attack_trace_expecting(&cap.run.capture.samples, 64)
                .unwrap();
            for (est, &truth) in result.coefficients.iter().zip(&cap.values) {
                let hit = (est.predicted == truth) as usize;
                if truth > 0 {
                    pt += 1;
                    ph += hit;
                } else if truth < 0 {
                    nt += 1;
                    nh += hit;
                } else {
                    zt += 1;
                    zh += hit;
                }
            }
        }
        assert_eq!(zh, zt, "zero coefficients must be recovered exactly");
        let neg_acc = nh as f64 / nt.max(1) as f64;
        let pos_acc = ph as f64 / pt.max(1) as f64;
        assert!(neg_acc > 0.6, "negative accuracy {neg_acc:.2}");
        assert!(
            neg_acc > pos_acc + 0.2,
            "Table I asymmetry missing: neg {neg_acc:.2} pos {pos_acc:.2}"
        );
    }

    #[test]
    fn negatives_beat_positives() {
        // The paper's Table I asymmetry: the negation (3rd vulnerability)
        // makes negative coefficients easier to recover than positive ones.
        let (device, attack, mut rng) = trained(0.25, 30, 4);
        let mut pos_hits = 0usize;
        let mut pos_total = 0usize;
        let mut neg_hits = 0usize;
        let mut neg_total = 0usize;
        for _ in 0..8 {
            let cap = device.capture_fresh(&mut rng).unwrap();
            let Ok(result) = attack.attack_trace_expecting(&cap.run.capture.samples, 64) else {
                continue;
            };
            for (est, &truth) in result.coefficients.iter().zip(&cap.values) {
                if truth > 0 {
                    pos_total += 1;
                    pos_hits += (est.predicted == truth) as usize;
                } else if truth < 0 {
                    neg_total += 1;
                    neg_hits += (est.predicted == truth) as usize;
                }
            }
        }
        let pos_acc = pos_hits as f64 / pos_total.max(1) as f64;
        let neg_acc = neg_hits as f64 / neg_total.max(1) as f64;
        assert!(
            neg_acc > pos_acc,
            "negatives ({neg_acc:.2}) must beat positives ({pos_acc:.2})"
        );
    }

    #[test]
    fn estimates_expose_posteriors() {
        let (device, attack, mut rng) = trained(0.1, 20, 5);
        let cap = device.capture_fresh(&mut rng).unwrap();
        let result = attack.attack_trace(&cap.run.capture.samples).unwrap();
        for est in &result.coefficients {
            let total: f64 = est.probabilities.iter().map(|(_, p)| p).sum();
            assert!((total - 1.0).abs() < 1e-9);
            assert!(est.confidence() > 0.0);
            assert_eq!(est.probability_of(est.predicted), est.confidence());
            // Sign-consistency of candidates.
            match est.sign {
                0 => assert_eq!(est.probabilities, vec![(0, 1.0)]),
                s if s > 0 => assert!(est.probabilities.iter().all(|(v, _)| *v > 0)),
                _ => assert!(est.probabilities.iter().all(|(v, _)| *v < 0)),
            }
        }
    }

    #[test]
    fn fast_path_profiling_matches_baseline() {
        // The chunked, memoized collector must yield bit-identical labelled
        // sets to the one-task-per-run materializing baseline.
        let device = Device::new(32, &[Q], PowerModelConfig::default()).unwrap();
        let config = AttackConfig::default();
        // 11 runs: exercises a full chunk plus a ragged tail.
        let fast = collect_profiling(&device, 11, &config, 0xFEED_5EED).unwrap();
        let baseline = collect_profiling_baseline(&device, 11, &config, 0xFEED_5EED).unwrap();
        assert_eq!(fast.total_windows, baseline.total_windows);
        assert_eq!(fast.sign_set, baseline.sign_set);
        assert_eq!(fast.pos_set, baseline.pos_set);
        assert_eq!(fast.neg_set, baseline.neg_set);
        assert!(fast.total_windows > 0);
    }

    #[test]
    fn window_count_mismatch_detected() {
        let (_, attack, _) = trained(0.1, 20, 6);
        // A synthetic flat trace with two bursts only.
        let mut t = vec![1.0; 2000];
        for s in [100usize, 900] {
            for i in s..s + 200 {
                t[i] = 4.0;
            }
        }
        match attack.attack_trace_expecting(&t, 64) {
            Err(AttackError::WindowCountMismatch { expected: 64, got }) => assert_eq!(got, 2),
            other => panic!("expected mismatch, got {other:?}"),
        }
    }

    #[test]
    fn profiling_needs_data() {
        let config = AttackConfig::default();
        let err = TrainedAttack::fit(config, TraceSet::new(), TraceSet::new(), TraceSet::new(), 0);
        assert!(matches!(
            err,
            Err(AttackError::NotEnoughProfilingData { .. })
        ));
    }
}
