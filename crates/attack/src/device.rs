//! The device under attack: SEAL's Gaussian sampler running on the simulated
//! RV32 core, exposed in the two modes a template adversary needs —
//! *profiling* (chosen coefficient values, §II-B threat model) and *attack*
//! (fresh secret samples, a single capture).

use rand::Rng;
use reveal_bfv::sampler::{ClippedNormalDistribution, SampleStats};
use reveal_rv32::kernel::{KernelError, KernelRun, KernelVariant, SamplerKernel, SamplerScratch};
use reveal_rv32::power::PowerModelConfig;

/// Converts one distribution call's statistics into the burst length the
/// kernel's `dist_loop` executes: a fixed setup portion plus work per polar
/// iteration and per clipping rejection. Using the spare costs nothing extra
/// — this is the time-variance §III-C works around.
pub fn burst_iterations(stats: &SampleStats) -> u32 {
    2 + 2 * stats.polar_iterations + 4 * stats.clip_rejections
}

/// The simulated measurement target.
#[derive(Debug, Clone)]
pub struct Device {
    kernel: SamplerKernel,
    power: PowerModelConfig,
    noise_standard_deviation: f64,
    noise_max_deviation: f64,
}

/// One capture plus its (profiling-only) ground truth.
#[derive(Debug, Clone)]
pub struct Capture {
    /// The sampled coefficient values (the secret; available to the
    /// adversary only during profiling).
    pub values: Vec<i64>,
    /// The kernel execution: power trace, output polynomial, ground-truth
    /// windows.
    pub run: KernelRun,
}

impl Device {
    /// Builds a device for ring degree `n` and the given coefficient moduli,
    /// with the SEAL noise parameters `σ = 3.19`, clip 41.
    ///
    /// # Errors
    ///
    /// Propagates kernel-construction failures.
    pub fn new(n: usize, moduli: &[u64], power: PowerModelConfig) -> Result<Self, KernelError> {
        Self::with_variant(n, moduli, power, KernelVariant::Vulnerable)
    }

    /// Builds a device running a specific sampler variant (§V-A study).
    ///
    /// # Errors
    ///
    /// Propagates kernel-construction failures.
    pub fn with_variant(
        n: usize,
        moduli: &[u64],
        power: PowerModelConfig,
        variant: KernelVariant,
    ) -> Result<Self, KernelError> {
        Ok(Self {
            kernel: SamplerKernel::with_variant(n, moduli, variant)?,
            power,
            noise_standard_deviation: reveal_bfv::DEFAULT_NOISE_STANDARD_DEVIATION,
            noise_max_deviation: reveal_bfv::DEFAULT_NOISE_MAX_DEVIATION,
        })
    }

    /// The sampler variant this device runs.
    pub fn variant(&self) -> KernelVariant {
        self.kernel.variant()
    }

    /// Overrides the noise distribution (ablation experiments).
    pub fn set_noise_parameters(&mut self, standard_deviation: f64, max_deviation: f64) {
        self.noise_standard_deviation = standard_deviation;
        self.noise_max_deviation = max_deviation;
    }

    /// The power-model configuration.
    pub fn power_config(&self) -> &PowerModelConfig {
        &self.power
    }

    /// Replaces the power-model configuration (SNR sweeps).
    pub fn set_power_config(&mut self, power: PowerModelConfig) {
        self.power = power;
    }

    /// Ring degree.
    pub fn degree(&self) -> usize {
        self.kernel.degree()
    }

    /// Captures one execution with *fresh* noise sampled exactly as SEAL's
    /// encryptor would (attack mode).
    ///
    /// # Errors
    ///
    /// Propagates kernel failures.
    pub fn capture_fresh<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<Capture, KernelError> {
        let n = self.degree();
        let mut dist = ClippedNormalDistribution::new(
            0.0,
            self.noise_standard_deviation,
            self.noise_max_deviation,
        );
        let mut values = Vec::with_capacity(n);
        let mut iterations = Vec::with_capacity(n);
        for _ in 0..n {
            let (v, stats) = dist.sample_i64(rng);
            values.push(v);
            iterations.push(burst_iterations(&stats));
        }
        let run = self.kernel.run(&values, &iterations, &self.power, rng)?;
        Ok(Capture { values, run })
    }

    /// Captures one execution with *chosen* coefficient values (profiling
    /// mode — "the adversary can profile the target device", §II-B). The
    /// distribution-call timing is still drawn randomly so the profiling
    /// traces carry realistic time variance.
    ///
    /// # Errors
    ///
    /// Propagates kernel failures (including length mismatch).
    pub fn capture_chosen<R: Rng + ?Sized>(
        &self,
        values: &[i64],
        rng: &mut R,
    ) -> Result<Capture, KernelError> {
        let mut dist = ClippedNormalDistribution::new(
            0.0,
            self.noise_standard_deviation,
            self.noise_max_deviation,
        );
        let iterations: Vec<u32> = values
            .iter()
            .map(|_| {
                let (_, stats) = dist.sample_i64(rng);
                burst_iterations(&stats)
            })
            .collect();
        let run = self.kernel.run(values, &iterations, &self.power, rng)?;
        Ok(Capture {
            values: values.to_vec(),
            run,
        })
    }

    /// [`Device::capture_fresh`] through the streaming fast path: the trace
    /// renders into `scratch`'s reusable buffer and distribution bursts
    /// replay from its sub-trace memo. Bit-identical output for the same RNG
    /// seed.
    ///
    /// # Errors
    ///
    /// Propagates kernel failures.
    pub fn capture_fresh_into<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        scratch: &mut SamplerScratch,
    ) -> Result<Capture, KernelError> {
        let n = self.degree();
        let mut dist = ClippedNormalDistribution::new(
            0.0,
            self.noise_standard_deviation,
            self.noise_max_deviation,
        );
        let mut values = Vec::with_capacity(n);
        let mut iterations = Vec::with_capacity(n);
        for _ in 0..n {
            let (v, stats) = dist.sample_i64(rng);
            values.push(v);
            iterations.push(burst_iterations(&stats));
        }
        let run = self
            .kernel
            .run_into(&values, &iterations, &self.power, rng, scratch)?;
        Ok(Capture { values, run })
    }

    /// [`Device::capture_chosen`] through the streaming fast path (see
    /// [`Device::capture_fresh_into`]). This is what the profiling stage
    /// uses: back-to-back chosen-value captures on one device hit the memo
    /// constantly, since burst lengths concentrate on a few even values.
    ///
    /// # Errors
    ///
    /// Propagates kernel failures (including length mismatch).
    pub fn capture_chosen_into<R: Rng + ?Sized>(
        &self,
        values: &[i64],
        rng: &mut R,
        scratch: &mut SamplerScratch,
    ) -> Result<Capture, KernelError> {
        let mut dist = ClippedNormalDistribution::new(
            0.0,
            self.noise_standard_deviation,
            self.noise_max_deviation,
        );
        let iterations: Vec<u32> = values
            .iter()
            .map(|_| {
                let (_, stats) = dist.sample_i64(rng);
                burst_iterations(&stats)
            })
            .collect();
        let run = self
            .kernel
            .run_into(values, &iterations, &self.power, rng, scratch)?;
        Ok(Capture {
            values: values.to_vec(),
            run,
        })
    }

    /// [`Device::capture_chosen`] through the pre-fast-path reference
    /// execution ([`SamplerKernel::run_reference`]): per-step decoding, a
    /// materialized record list, and `sin`-per-bit rendering. Bit-identical
    /// output; exists so the equivalence tests and `bench_pipeline` can
    /// compare the fast path against the implementation it replaced.
    ///
    /// # Errors
    ///
    /// Propagates kernel failures (including length mismatch).
    pub fn capture_chosen_reference<R: Rng + ?Sized>(
        &self,
        values: &[i64],
        rng: &mut R,
    ) -> Result<Capture, KernelError> {
        let mut dist = ClippedNormalDistribution::new(
            0.0,
            self.noise_standard_deviation,
            self.noise_max_deviation,
        );
        let iterations: Vec<u32> = values
            .iter()
            .map(|_| {
                let (_, stats) = dist.sample_i64(rng);
                burst_iterations(&stats)
            })
            .collect();
        let run = self
            .kernel
            .run_reference(values, &iterations, &self.power, rng)?;
        Ok(Capture {
            values: values.to_vec(),
            run,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const Q: u64 = 132120577;

    #[test]
    fn fresh_capture_matches_seal_semantics() {
        let device = Device::new(64, &[Q], PowerModelConfig::noiseless()).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let cap = device.capture_fresh(&mut rng).unwrap();
        assert_eq!(cap.values.len(), 64);
        for (i, &v) in cap.values.iter().enumerate() {
            assert!(v.abs() <= 41);
            assert_eq!(cap.run.poly[i], v.rem_euclid(Q as i64) as u32);
        }
        assert_eq!(cap.run.coefficient_windows.len(), 64);
    }

    #[test]
    fn chosen_capture_uses_given_values() {
        let device = Device::new(8, &[Q], PowerModelConfig::noiseless()).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let values = [-7i64, 7, 0, -1, 1, -14, 14, 0];
        let cap = device.capture_chosen(&values, &mut rng).unwrap();
        assert_eq!(cap.values, values);
        assert_eq!(cap.run.poly[0], (Q as i64 - 7) as u32);
    }

    #[test]
    fn fresh_captures_differ() {
        let device = Device::new(16, &[Q], PowerModelConfig::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let a = device.capture_fresh(&mut rng).unwrap();
        let b = device.capture_fresh(&mut rng).unwrap();
        assert_ne!(a.values, b.values);
        assert_ne!(a.run.capture.samples, b.run.capture.samples);
    }

    #[test]
    fn fast_path_captures_match_direct_captures() {
        let device = Device::new(16, &[Q], PowerModelConfig::default()).unwrap();
        let mut scratch = SamplerScratch::new();

        let mut rng = StdRng::seed_from_u64(9);
        let direct = device.capture_fresh(&mut rng).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let fast = device.capture_fresh_into(&mut rng, &mut scratch).unwrap();
        assert_eq!(fast.values, direct.values);
        assert_eq!(fast.run.capture, direct.run.capture);
        assert_eq!(fast.run.poly, direct.run.poly);

        let values = [-7i64, 7, 0, -1, 1, -14, 14, 0, 2, -2, 3, -3, 0, 5, -5, 41];
        let mut rng = StdRng::seed_from_u64(10);
        let direct = device.capture_chosen(&values, &mut rng).unwrap();
        let mut rng = StdRng::seed_from_u64(10);
        let fast = device
            .capture_chosen_into(&values, &mut rng, &mut scratch)
            .unwrap();
        assert_eq!(fast.run.capture, direct.run.capture);
        assert_eq!(fast.run.poly, direct.run.poly);
        assert_eq!(fast.run.coefficient_windows, direct.run.coefficient_windows);
        assert!(scratch.memo_len() > 0);
    }

    #[test]
    fn burst_iterations_monotone() {
        let base = burst_iterations(&SampleStats {
            polar_iterations: 1,
            clip_rejections: 0,
        });
        let more_polar = burst_iterations(&SampleStats {
            polar_iterations: 3,
            clip_rejections: 0,
        });
        let clipped = burst_iterations(&SampleStats {
            polar_iterations: 1,
            clip_rejections: 2,
        });
        assert!(more_polar > base);
        assert!(clipped > base);
        assert!(base >= 2);
    }
}
