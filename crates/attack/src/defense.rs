//! The shuffling countermeasure of §V-A: randomize the order in which the
//! coefficients are sampled so single-trace hints can no longer be attached
//! to coordinates.

use crate::device::{Capture, Device};
use crate::profile::{AttackError, SingleTraceAttack, TrainedAttack};
use rand::seq::SliceRandom;
use rand::Rng;
use reveal_rv32::kernel::KernelError;

/// A device whose sampler processes coefficients in a fresh random order
/// each execution (Fisher–Yates shuffle of the index sequence).
#[derive(Debug, Clone)]
pub struct ShuffledDevice {
    inner: Device,
}

/// One shuffled capture: the trace windows appear in `permutation` order.
#[derive(Debug, Clone)]
pub struct ShuffledCapture {
    /// The capture; `capture.values[k]` is the value sampled at trace
    /// position `k`.
    pub capture: Capture,
    /// `permutation[k]` = coefficient index sampled at trace position `k`
    /// (secret — the attacker never sees this).
    pub permutation: Vec<usize>,
    /// The coefficient values in *coefficient* order (ground truth).
    pub coefficient_values: Vec<i64>,
}

impl ShuffledDevice {
    /// Wraps a device with the shuffling countermeasure.
    pub fn new(inner: Device) -> Self {
        Self { inner }
    }

    /// The unprotected device.
    pub fn inner(&self) -> &Device {
        &self.inner
    }

    /// Captures a fresh execution with shuffled sampling order.
    ///
    /// # Errors
    ///
    /// Propagates device failures.
    pub fn capture_fresh<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
    ) -> Result<ShuffledCapture, KernelError> {
        let n = self.inner.degree();
        let mut permutation: Vec<usize> = (0..n).collect();
        permutation.shuffle(rng);
        // Draw the fresh values first (in coefficient order, as the
        // distribution does), then present them to the hardware in shuffled
        // order.
        let plain = self.inner.capture_fresh(rng)?;
        let coefficient_values = plain.values.clone();
        let shuffled_values: Vec<i64> =
            permutation.iter().map(|&i| coefficient_values[i]).collect();
        let capture = self.inner.capture_chosen(&shuffled_values, rng)?;
        Ok(ShuffledCapture {
            capture,
            permutation,
            coefficient_values,
        })
    }
}

/// Outcome of evaluating the attack against the countermeasure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DefenseEvaluation {
    /// Fraction of trace positions whose value the attack still recovers
    /// (the leakage itself is not hidden by shuffling).
    pub positional_accuracy: f64,
    /// Fraction of *coefficient indices* for which the attacker's
    /// coordinate-wise guess is correct — what the hints framework needs;
    /// shuffling drives this towards the random-assignment baseline.
    pub coordinate_accuracy: f64,
    /// The random-assignment baseline for comparison.
    pub chance_level: f64,
}

/// Attacks a shuffled capture and scores both views.
///
/// # Errors
///
/// Propagates attack failures.
pub fn evaluate_against_shuffling(
    attack: &TrainedAttack,
    shuffled: &ShuffledCapture,
) -> Result<(SingleTraceAttack, DefenseEvaluation), AttackError> {
    let n = shuffled.coefficient_values.len();
    let result = attack.attack_trace_expecting(&shuffled.capture.run.capture.samples, n)?;

    // Positional view: window k vs the value actually sampled there.
    let positional_accuracy = result.value_accuracy(&shuffled.capture.values);

    // Coordinate view: the attacker, unaware of the permutation, assigns
    // window k's value to coefficient k.
    let hits = result
        .coefficients
        .iter()
        .zip(&shuffled.coefficient_values)
        .filter(|(est, &truth)| est.predicted == truth)
        .count();
    let coordinate_accuracy = hits as f64 / n.max(1) as f64;

    // Chance level: probability two random positions hold equal values
    // under the empirical value distribution.
    let mut counts = std::collections::BTreeMap::new();
    for &v in &shuffled.coefficient_values {
        *counts.entry(v).or_insert(0usize) += 1;
    }
    let chance_level = counts
        .values()
        .map(|&c| (c as f64 / n as f64).powi(2))
        .sum::<f64>();

    Ok((
        result,
        DefenseEvaluation {
            positional_accuracy,
            coordinate_accuracy,
            chance_level,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AttackConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use reveal_rv32::power::PowerModelConfig;

    const Q: u64 = 132120577;

    #[test]
    fn shuffled_capture_permutes_values() {
        let device = Device::new(32, &[Q], PowerModelConfig::noiseless()).unwrap();
        let shuffled = ShuffledDevice::new(device);
        let mut rng = StdRng::seed_from_u64(1);
        let cap = shuffled.capture_fresh(&mut rng).unwrap();
        // The trace-order values are the permuted coefficient values.
        for (k, &coeff_idx) in cap.permutation.iter().enumerate() {
            assert_eq!(cap.capture.values[k], cap.coefficient_values[coeff_idx]);
        }
        // Same multiset.
        let mut a = cap.capture.values.clone();
        let mut b = cap.coefficient_values.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn shuffling_destroys_coordinate_assignment_but_not_leakage() {
        let device =
            Device::new(64, &[Q], PowerModelConfig::default().with_noise_sigma(0.05)).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let attack =
            TrainedAttack::profile(&device, 24, &AttackConfig::default(), &mut rng).unwrap();
        let shuffled = ShuffledDevice::new(device);

        let mut positional = 0.0;
        let mut coordinate = 0.0;
        let mut chance = 0.0;
        let trials = 4;
        for _ in 0..trials {
            let cap = shuffled.capture_fresh(&mut rng).unwrap();
            let (_, eval) = evaluate_against_shuffling(&attack, &cap).unwrap();
            positional += eval.positional_accuracy;
            coordinate += eval.coordinate_accuracy;
            chance += eval.chance_level;
        }
        positional /= trials as f64;
        coordinate /= trials as f64;
        chance /= trials as f64;

        // The window-level leakage is untouched...
        assert!(positional > 0.6, "positional accuracy {positional}");
        // ...but the coordinate assignment collapses towards chance.
        assert!(
            coordinate < positional - 0.25,
            "coordinate {coordinate} vs positional {positional}"
        );
        assert!(
            coordinate < chance + 0.25,
            "coordinate {coordinate} vs chance {chance}"
        );
    }
}
