//! The self-healing attack driver: runs the single-trace pipeline on
//! degraded captures, with per-stage sanity checks, bounded segmentation
//! retry, and a confidence-gated hint-degradation ladder.
//!
//! ## Architecture
//!
//! 1. **Segment with retry** — burst detection runs through a bounded
//!    schedule of progressively relaxed [`SegmentConfig`]s until the burst
//!    count matches the expected coefficient count; leftover mismatches are
//!    *healed* (over-count → merge the closest pair, under-count → split
//!    the longest burst), and every healed window is remembered as
//!    untrustworthy.
//! 2. **Screen** — each ladder window passes sample-level (glitch/clip
//!    spikes via MAD z-scores), gain-level (burst-median vs a calibrated
//!    clean reference) and fit-level (raw sign-template log-likelihood vs
//!    the per-trace population) sanity checks; failures mark the window
//!    *suspect* without aborting anything.
//! 3. **Gate** — per-coefficient posteriors are classified onto the
//!    perfect / approximate / skipped ladder by the *shared*
//!    [`HintPolicy::classify_variance`] decision, with the posterior
//!    variance inflated when the trace's robust noise estimate exceeds the
//!    calibrated clean level, suspect windows demoted to at most an
//!    approximate hint, and healed windows skipped outright.
//!
//! With zero faults nothing fires: rung 0 of the retry schedule *is* the
//! production configuration, the variance inflation is exactly `1.0`
//! (a float multiply by 1.0 is the identity), and no screen trips — so the
//! recovered coefficients and the bikz estimate are bit-identical to
//! [`TrainedAttack::attack_trace`] followed by
//! [`report_full_attack`](crate::report::report_full_attack). The
//! `tests/chaos.rs` suite pins exactly that.

use crate::config::AttackConfig;
use crate::profile::{AttackError, CoefficientEstimate, TrainedAttack};
use crate::report::{AttackReport, ReportError};
use reveal_hints::{DbddInstance, HintClass, HintPolicy, HintSummary, LweParameters, Posterior};
use reveal_trace::sanity::{mad_outlier_flags, median, robust_noise_sigma};
use reveal_trace::segment::{find_bursts, refine_burst_ends, SegmentConfig, SegmentError};

/// Knobs of the robust driver. Defaults are deliberately conservative: on a
/// clean capture none of the screens may fire (the zero-fault bit-identity
/// test enforces this).
#[derive(Debug, Clone, PartialEq)]
pub struct RobustConfig {
    /// Robust z-score above which a window sample counts as a glitch/clip
    /// artifact (screened against the window's own sample population).
    pub glitch_z: f64,
    /// MAD floor for the glitch screen, as a fraction of the trace's
    /// dynamic range (keeps near-constant windows from flagging noise).
    pub glitch_floor_fraction: f64,
    /// Robust z-score below the population median at which a window's raw
    /// sign-template log-likelihood marks it suspect (misalignment screen).
    pub score_z: f64,
    /// Relative burst-gain deviation (|level/reference − 1|) above which a
    /// window is suspect. Matches the injector's corruption tolerance.
    pub gain_tolerance: f64,
    /// Robust z-score for the burst-length outlier screen.
    pub length_z: f64,
    /// σ̂/σ_ref ratio below which variance inflation stays exactly 1.0
    /// (bit-identity regime); above it, inflation grows as the ratio
    /// squared.
    pub inflation_knee: f64,
    /// Posterior-variance floor assigned when a suspect window's hint is
    /// demoted from perfect to approximate.
    pub demoted_variance_floor: f64,
    /// Enables per-burst rail arbitration when the attacker carries a
    /// learned rail ([`TrainedAttack::learned_rail`]). Arbitration arms
    /// only on *degraded* evidence (noise inflation, relaxed segmentation,
    /// healing, or a soft-suspect window), so a clean capture never
    /// consults the learned rail and stays bit-identical to the plain
    /// pipeline whether this is on or off.
    pub arbitration: bool,
}

impl Default for RobustConfig {
    fn default() -> Self {
        Self {
            glitch_z: 10.0,
            glitch_floor_fraction: 0.1,
            score_z: 8.0,
            gain_tolerance: 0.015,
            length_z: 8.0,
            inflation_knee: 1.5,
            demoted_variance_floor: 0.25,
            arbitration: true,
        }
    }
}

/// Clean-capture reference levels, measured once on a known-good trace
/// (e.g. a profiling capture). Without a calibration the gain screen and
/// the noise-driven variance inflation stay disabled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// Robust noise σ̂ of a clean capture ([`robust_noise_sigma`]).
    pub reference_noise_sigma: f64,
    /// Median of the per-burst median levels of a clean capture.
    pub reference_burst_level: f64,
}

/// Measures a [`Calibration`] from a known-clean capture.
///
/// # Errors
///
/// Propagates segmentation failures.
pub fn calibrate(samples: &[f64], config: &AttackConfig) -> Result<Calibration, SegmentError> {
    let bursts = find_bursts(samples, &config.segment)?;
    let bursts = refine_burst_ends(samples, &bursts, &config.segment);
    let levels: Vec<f64> = bursts
        .iter()
        .map(|&(s, e)| median(&samples[s..e.max(s + 1).min(samples.len())]))
        .collect();
    Ok(Calibration {
        reference_noise_sigma: robust_noise_sigma(samples),
        reference_burst_level: median(&levels),
    })
}

/// The bounded retry schedule: rung 0 is the production configuration
/// (bit-identity), later rungs progressively widen the burst-merge gap
/// (heals split bursts), lower the detection threshold and minimum burst
/// length (recovers attenuated bursts), and vary the smoothing width. The
/// merge gap stays below the ~96-sample ladder region so two *real* bursts
/// are never fused.
pub fn relaxation_schedule(base: &SegmentConfig) -> Vec<SegmentConfig> {
    let mut schedule = vec![*base];
    schedule.push(SegmentConfig {
        merge_gap: base.merge_gap.max(40),
        threshold_fraction: base.threshold_fraction * 0.9,
        ..*base
    });
    schedule.push(SegmentConfig {
        merge_gap: base.merge_gap.max(56),
        threshold_fraction: base.threshold_fraction * 0.8,
        min_burst_len: base.min_burst_len.min(16),
        smooth_window: base.smooth_window.max(24),
    });
    schedule.push(SegmentConfig {
        merge_gap: base.merge_gap.max(72),
        threshold_fraction: base.threshold_fraction * 1.1,
        min_burst_len: base.min_burst_len.min(12),
        smooth_window: (base.smooth_window / 2).max(1),
    });
    schedule
}

/// Why a window was marked untrustworthy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Suspicion {
    /// A sample in the window failed the glitch/clip z-screen.
    pub glitch: bool,
    /// The burst feeding this window deviates from the calibrated gain.
    pub gain: bool,
    /// The raw sign-template fit score is a low outlier (misalignment).
    pub poor_fit: bool,
    /// The burst length is a robust outlier.
    pub length: bool,
    /// The window came out of burst healing (merge/split repair) or
    /// padding — its very extent is guesswork.
    pub healed: bool,
}

impl Suspicion {
    /// Any soft screen fired (window content is questionable).
    pub fn soft(&self) -> bool {
        self.glitch || self.gain || self.poor_fit || self.length
    }

    /// The window cannot be trusted at all.
    pub fn hard(&self) -> bool {
        self.healed
    }

    /// Nothing fired.
    pub fn clean(&self) -> bool {
        !self.soft() && !self.hard()
    }
}

/// The degradation-ladder decision for one coefficient.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HintDecision {
    /// Exact value, integrated via `integrate_perfect_hint`.
    Perfect { value: i64 },
    /// Approximate value, integrated via `integrate_approximate_hint`.
    Approximate { value: i64, eps_squared: f64 },
    /// Unrecoverable: nothing is integrated for this coordinate.
    Skipped,
}

/// Which classification rail produced a coefficient's decision.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Rail {
    /// The pooled-Gaussian template rail (the default, and the only rail
    /// on clean captures).
    #[default]
    Lda,
    /// The learned logistic-regression rail won the per-burst arbitration.
    Learned,
}

/// One coefficient's robust outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustCoefficient {
    /// The winning rail's estimate (`None` when no usable window existed).
    pub estimate: Option<CoefficientEstimate>,
    /// Derated confidence in `[0, 1]`: the posterior top probability times
    /// the noise derating, zeroed for hard-suspect windows. Monotonically
    /// non-increasing in the injected noise level by construction on the
    /// template rail; the learned rail reports its calibrated confidence
    /// instead.
    pub confidence: f64,
    /// Which sanity screens fired.
    pub suspicion: Suspicion,
    /// The hint-ladder decision.
    pub decision: HintDecision,
    /// Which rail the decision came from.
    pub rail: Rail,
}

/// Pipeline observability: what the driver had to do to get a result.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Diagnostics {
    /// Index of the relaxation rung that produced the segmentation.
    pub relaxation_rung: usize,
    /// Bursts fused by healing (over-count repair).
    pub healed_merges: usize,
    /// Bursts split by healing (under-count repair).
    pub healed_splits: usize,
    /// Coefficients with no window at all (padded as unrecoverable).
    pub missing_windows: usize,
    /// The trace's robust noise estimate.
    pub noise_sigma: f64,
    /// The variance inflation applied to every posterior (1.0 = clean).
    pub variance_inflation: f64,
    /// Noise-derived lower bound on every posterior variance before hint
    /// classification (0.0 = clean; → prior variance as noise grows).
    pub noise_variance_floor: f64,
    /// Windows with at least one soft suspicion.
    pub suspect_windows: usize,
    /// Two-rail arbitration observability.
    pub rail: RailDiagnostics,
}

/// How the per-burst classifier arbitration went (all zeros/false for a
/// template-only attacker or a clean capture).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RailDiagnostics {
    /// The attacker carried a trained learned rail.
    pub attached: bool,
    /// Arbitration was enabled *and* a rail was attached (a failed/NaN
    /// training run leaves this false — the recorded LDA-only fallback).
    pub arbitrated: bool,
    /// Windows where degradation armed the arbiter and both rails scored.
    pub armed_windows: usize,
    /// Armed windows the learned rail won on calibrated margin.
    pub learned_wins: usize,
    /// Armed windows the template rail kept.
    pub lda_wins: usize,
    /// Learned-rail scoring failures (window fell back to the template
    /// rail).
    pub learned_errors: usize,
}

/// The robust single-trace result.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustAttackResult {
    /// One outcome per expected coefficient, in trace order.
    pub coefficients: Vec<RobustCoefficient>,
    /// What the driver did.
    pub diagnostics: Diagnostics,
}

impl RobustAttackResult {
    /// `(value, confidence)` pairs for [`recover_adaptive`]
    /// (crate::recover::recover_adaptive): unrecoverable coefficients get
    /// value 0 at confidence 0, so the adaptive solver shrinks past them.
    pub fn estimates(&self) -> Vec<(i64, f64)> {
        self.coefficients
            .iter()
            .map(|c| match &c.estimate {
                Some(e) => (e.predicted, c.confidence),
                None => (0, 0.0),
            })
            .collect()
    }

    /// Counts of (perfect, approximate, skipped) decisions.
    pub fn decision_counts(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for c in &self.coefficients {
            match c.decision {
                HintDecision::Perfect { .. } => counts.0 += 1,
                HintDecision::Approximate { .. } => counts.1 += 1,
                HintDecision::Skipped => counts.2 += 1,
            }
        }
        counts
    }
}

/// A window produced by robust segmentation.
struct SegmentedWindow {
    window: Option<Vec<f64>>,
    burst: (usize, usize),
    healed: bool,
}

/// The robust pipeline driver: wraps a [`TrainedAttack`] with retrying
/// segmentation, sanity screens and the hint-degradation ladder.
#[derive(Debug, Clone)]
pub struct RobustAttack<'a> {
    attack: &'a TrainedAttack,
    config: RobustConfig,
    calibration: Option<Calibration>,
}

impl<'a> RobustAttack<'a> {
    /// Wraps a trained attacker with default robustness knobs and no
    /// calibration (gain screen and noise inflation disabled).
    pub fn new(attack: &'a TrainedAttack) -> Self {
        Self {
            attack,
            config: RobustConfig::default(),
            calibration: None,
        }
    }

    /// Sets the clean-capture calibration, enabling the gain screen and
    /// the noise-driven variance inflation.
    pub fn with_calibration(mut self, calibration: Calibration) -> Self {
        self.calibration = Some(calibration);
        self
    }

    /// Overrides the robustness knobs.
    pub fn with_config(mut self, config: RobustConfig) -> Self {
        self.config = config;
        self
    }

    /// Runs the robust pipeline on one trace, expecting `n` coefficients.
    /// Always returns a structurally valid result (one entry per expected
    /// coefficient) unless the trace is degenerate beyond segmentation at
    /// every relaxation rung.
    ///
    /// # Errors
    ///
    /// Fails only when every relaxation rung fails to segment (e.g. empty
    /// or non-finite trace) or template classification fails internally.
    pub fn attack_trace(
        &self,
        samples: &[f64],
        n: usize,
        policy: &HintPolicy,
    ) -> Result<RobustAttackResult, AttackError> {
        let mut diagnostics = Diagnostics {
            variance_inflation: 1.0,
            noise_sigma: robust_noise_sigma(samples),
            ..Diagnostics::default()
        };
        let segmented = self.segment_with_retry(samples, n, &mut diagnostics)?;

        // Noise-driven variance inflation: exactly 1.0 while the trace is
        // no noisier than the calibrated clean reference (the knee keeps
        // run-to-run jitter from perturbing the clean path), quadratic in
        // the excess beyond it.
        //
        // The confidence derate is deliberately much steeper
        // (exp(-4·excess³)): a template's top probability is bounded below
        // by 1/classes ≈ 0.034, so as long as the derate loses more than
        // that factor per noise doubling, per-coefficient confidence is
        // monotonically non-increasing in injected noise *whatever* the
        // posterior does — noise can flip an ambiguous posterior into a
        // confidently wrong one, and the derate must dominate that. Below
        // the knee region the cubic keeps the derate ≈ 1, so clean and
        // mildly degraded captures keep usable confidences.
        //
        // The noise variance *floor* guards the hint ladder the same way:
        // a template posterior on an over-noisy capture can be confidently
        // wrong — tiny variance, wrong mode — so its variance understates
        // the real uncertainty and would integrate as a strong false hint.
        // The floor is exactly 0.0 up to the knee (bit-identity) and rises
        // toward the prior beyond it, so hints weaken smoothly toward
        // "no information" as the capture degrades.
        let (derate, noise_floor) = if let Some(cal) = self.calibration {
            let reference = cal.reference_noise_sigma.max(1e-12);
            let ratio = diagnostics.noise_sigma / reference;
            if ratio > self.config.inflation_knee {
                diagnostics.variance_inflation = ratio * ratio;
            }
            let excess = (ratio - self.config.inflation_knee).max(0.0);
            (
                (-4.0 * ((ratio - 1.0).max(0.0)).powi(3)).exp(),
                policy.prior_variance * (1.0 - (-4.0 * excess.powi(3)).exp()),
            )
        } else {
            (1.0, 0.0)
        };
        diagnostics.noise_variance_floor = noise_floor;

        let suspicions = self.screen(samples, &segmented)?;
        diagnostics.suspect_windows = suspicions.iter().filter(|s| s.soft()).count();

        // Per-burst rail arbitration arms only on degraded evidence: a
        // trace-level degradation signal (the same ones that arm variance
        // inflation and healing) or a window's own soft suspicion. On a
        // clean capture nothing below fires, the learned rail is never
        // consulted, and the template path runs verbatim — that is how
        // arbitration coexists with the zero-fault bit-identity contract.
        diagnostics.rail.attached = self.attack.learned_rail().is_some();
        let learned_rail = if self.config.arbitration {
            self.attack.learned_rail()
        } else {
            None
        };
        diagnostics.rail.arbitrated = learned_rail.is_some();
        let trace_degraded = diagnostics.variance_inflation > 1.0
            || diagnostics.noise_variance_floor > 0.0
            || diagnostics.relaxation_rung > 0
            || diagnostics.healed_merges + diagnostics.healed_splits > 0
            || diagnostics.missing_windows > 0;

        // Classify windows (deterministically parallel, like the plain
        // pipeline); armed windows are scored by both rails in the same
        // fan-out.
        struct WindowScores {
            lda: Option<CoefficientEstimate>,
            learned: Option<CoefficientEstimate>,
            armed: bool,
            learned_error: bool,
        }
        let scored: Vec<WindowScores> = reveal_par::par_map_index(segmented.len(), |i| {
            let sw = &segmented[i];
            let suspicion = &suspicions[i];
            let lda = match &sw.window {
                Some(w) => self.attack.attack_window(w).ok(),
                None => None,
            };
            let armed = learned_rail.is_some()
                && sw.window.is_some()
                && !suspicion.hard()
                && (trace_degraded || suspicion.soft());
            let (learned, learned_error) = match (learned_rail, &sw.window) {
                (Some(rail), Some(w)) if armed => match rail.attack_window(w) {
                    Ok(e) => (Some(e), false),
                    Err(_) => (None, true),
                },
                _ => (None, false),
            };
            WindowScores {
                lda,
                learned,
                armed,
                learned_error,
            }
        });

        let effective = policy.with_variance_inflation(diagnostics.variance_inflation);
        let mut coefficients = Vec::with_capacity(n);
        for (scores, suspicion) in scored.into_iter().zip(suspicions) {
            diagnostics.rail.armed_windows += usize::from(scores.armed);
            diagnostics.rail.learned_errors += usize::from(scores.learned_error);
            let learned_scored = scores.learned.is_some();
            let coefficient = self.gate(
                scores.lda,
                scores.learned,
                suspicion,
                &effective,
                policy,
                derate,
                noise_floor,
            );
            if learned_scored {
                match coefficient.rail {
                    Rail::Learned => diagnostics.rail.learned_wins += 1,
                    Rail::Lda => diagnostics.rail.lda_wins += 1,
                }
            }
            coefficients.push(coefficient);
        }
        Ok(RobustAttackResult {
            coefficients,
            diagnostics,
        })
    }

    /// Stage 1: segmentation with bounded retry and healing.
    fn segment_with_retry(
        &self,
        samples: &[f64],
        n: usize,
        diagnostics: &mut Diagnostics,
    ) -> Result<Vec<SegmentedWindow>, AttackError> {
        let ladder = self.attack.config().ladder_window;
        let schedule = relaxation_schedule(&self.attack.config().segment);
        let mut best: Option<(usize, Vec<(usize, usize)>)> = None;
        let mut last_error = None;
        for (rung, cfg) in schedule.iter().enumerate() {
            let bursts = match find_bursts(samples, cfg) {
                Ok(b) => refine_burst_ends(samples, &b, cfg),
                Err(e) => {
                    last_error = Some(e);
                    continue;
                }
            };
            // Mirror `extract_ladder_windows`: only bursts whose ladder
            // window fits count as coefficients (drops the epilogue burst).
            let usable: Vec<(usize, usize)> = bursts
                .into_iter()
                .filter(|&(_, end)| end + ladder <= samples.len())
                .collect();
            if usable.len() == n {
                diagnostics.relaxation_rung = rung;
                return Ok(usable
                    .into_iter()
                    .map(|burst| SegmentedWindow {
                        window: Some(samples[burst.1..burst.1 + ladder].to_vec()),
                        burst,
                        healed: false,
                    })
                    .collect());
            }
            let better = match &best {
                Some((count, _)) => {
                    usable.len().abs_diff(n) < count.abs_diff(n)
                        || (usable.len().abs_diff(n) == count.abs_diff(n) && usable.len() > *count)
                }
                None => true,
            };
            if better {
                diagnostics.relaxation_rung = rung;
                best = Some((usable.len(), usable));
            }
        }
        let Some((_, bursts)) = best else {
            return Err(AttackError::Segment(
                last_error.unwrap_or(SegmentError::NoPeaksFound),
            ));
        };
        self.heal(samples, bursts, n, diagnostics)
    }

    /// Repairs a burst-count mismatch left over after every relaxation
    /// rung: merge the closest adjacent pair while over-count, split the
    /// longest burst while under-count, pad with unrecoverable windows if
    /// splitting runs out of oversized bursts.
    fn heal(
        &self,
        samples: &[f64],
        bursts: Vec<(usize, usize)>,
        n: usize,
        diagnostics: &mut Diagnostics,
    ) -> Result<Vec<SegmentedWindow>, AttackError> {
        let ladder = self.attack.config().ladder_window;
        let mut healed: Vec<((usize, usize), bool)> =
            bursts.into_iter().map(|b| (b, false)).collect();

        while healed.len() > n && healed.len() >= 2 {
            // Merge the adjacent pair with the smallest gap: split bursts
            // sit a notch apart, real bursts a full ladder apart.
            let mut best_pair = 0;
            let mut best_gap = usize::MAX;
            for i in 0..healed.len() - 1 {
                let gap = healed[i + 1].0 .0.saturating_sub(healed[i].0 .1);
                if gap < best_gap {
                    best_gap = gap;
                    best_pair = i;
                }
            }
            let (second, _) = healed.remove(best_pair + 1);
            healed[best_pair] = ((healed[best_pair].0 .0, second.1), true);
            diagnostics.healed_merges += 1;
        }

        while healed.len() < n {
            let lengths: Vec<f64> = healed.iter().map(|((s, e), _)| (e - s) as f64).collect();
            let median_len = median(&lengths);
            let Some((idx, _)) = healed
                .iter()
                .enumerate()
                .filter(|(_, ((s, e), _))| (e - s) as f64 >= 1.5 * median_len)
                .max_by_key(|(_, ((s, e), _))| e - s)
            else {
                break; // Nothing left to split; pad below.
            };
            let ((s, e), _) = healed[idx];
            let cut = s + median_len as usize;
            if cut <= s || cut >= e {
                break;
            }
            healed[idx] = ((s, cut), true);
            healed.insert(idx + 1, ((cut, e), true));
            diagnostics.healed_splits += 1;
        }

        let mut windows: Vec<SegmentedWindow> = healed
            .into_iter()
            .map(|(burst, was_healed)| {
                let window = (burst.1 + ladder <= samples.len())
                    .then(|| samples[burst.1..burst.1 + ladder].to_vec());
                let missing = window.is_none();
                SegmentedWindow {
                    window,
                    burst,
                    healed: was_healed || missing,
                }
            })
            .collect();
        // Pad to exactly n: when bursts are irrecoverably missing the
        // alignment of *every* coefficient is in doubt, so mark them all.
        if windows.len() < n {
            diagnostics.missing_windows = n - windows.len();
            let end = samples.len();
            while windows.len() < n {
                windows.push(SegmentedWindow {
                    window: None,
                    burst: (end, end),
                    healed: true,
                });
            }
            for w in &mut windows {
                w.healed = true;
            }
        }
        windows.truncate(n);
        Ok(windows)
    }

    /// Stage 2: per-window sanity screens.
    fn screen(
        &self,
        samples: &[f64],
        segmented: &[SegmentedWindow],
    ) -> Result<Vec<Suspicion>, AttackError> {
        let cfg = &self.config;
        let mut suspicions: Vec<Suspicion> = segmented
            .iter()
            .map(|sw| Suspicion {
                healed: sw.healed,
                ..Suspicion::default()
            })
            .collect();

        let finite = samples.iter().copied().filter(|s| s.is_finite());
        let lo = finite.clone().fold(f64::INFINITY, f64::min);
        let hi = finite.fold(f64::NEG_INFINITY, f64::max);
        let range = (hi - lo).max(1e-12);

        // Glitch screen: any sample in a window that is a massive robust
        // outlier against the window's own population.
        for (sw, suspicion) in segmented.iter().zip(&mut suspicions) {
            if let Some(w) = &sw.window {
                let flags = mad_outlier_flags(w, cfg.glitch_z, cfg.glitch_floor_fraction * range);
                suspicion.glitch = flags.iter().any(|&f| f);
            }
        }

        // Gain screen: the dist burst preceding each window is
        // value-independent, so its median level is a local gain probe.
        if let Some(cal) = self.calibration {
            let reference = cal.reference_burst_level;
            if reference.abs() > 1e-12 {
                for (sw, suspicion) in segmented.iter().zip(&mut suspicions) {
                    let (s, e) = sw.burst;
                    if sw.window.is_none() || e <= s || e > samples.len() {
                        continue;
                    }
                    let level = median(&samples[s..e]);
                    suspicion.gain = (level / reference - 1.0).abs() > cfg.gain_tolerance;
                }
            }
        }

        // Burst-length screen: merged/split leftovers are gross outliers;
        // the sampler's genuine time variance stays within the MAD band.
        let lengths: Vec<f64> = segmented
            .iter()
            .map(|sw| (sw.burst.1.saturating_sub(sw.burst.0)) as f64)
            .collect();
        for (flag, suspicion) in mad_outlier_flags(&lengths, cfg.length_z, 4.0)
            .into_iter()
            .zip(&mut suspicions)
        {
            suspicion.length |= flag;
        }

        // Fit screen: raw sign-template log-likelihoods. Scores of healthy
        // windows concentrate; a misaligned/clipped window collapses
        // against every class at once, which the softmax hides but the raw
        // score exposes.
        let scores: Vec<Option<f64>> = reveal_par::par_map(segmented, |sw| {
            sw.window
                .as_ref()
                .and_then(|w| self.attack.sign_fit_score(w).ok())
        });
        let present: Vec<f64> = scores.iter().filter_map(|s| *s).collect();
        if present.len() >= 4 {
            let med = median(&present);
            let spread = reveal_trace::sanity::median_abs_deviation(&present)
                * reveal_trace::sanity::MAD_TO_SIGMA;
            let threshold = med - cfg.score_z * spread.max(1.0);
            for (score, suspicion) in scores.iter().zip(&mut suspicions) {
                if let Some(s) = score {
                    suspicion.poor_fit = *s < threshold;
                }
            }
        }
        Ok(suspicions)
    }

    /// Stage 3: the degradation ladder for one coefficient, with per-burst
    /// rail arbitration. The template leg runs exactly as it always has
    /// (inflated variance, noise floor, suspicion demotion); when the
    /// learned rail also scored the window, its *calibrated* posterior is
    /// classified against the caller's uninflated policy — the calibration
    /// already priced the noise in, that is what the augmented training and
    /// temperature scaling are for — but capped at an approximate hint
    /// (arbitration only arms on degraded evidence, and a degraded window
    /// must never claim a perfect hint). The rail with the better
    /// calibrated margin (top-probability confidence, after the same
    /// suspicion halving) wins the burst.
    #[allow(clippy::too_many_arguments)]
    fn gate(
        &self,
        estimate: Option<CoefficientEstimate>,
        learned: Option<CoefficientEstimate>,
        suspicion: Suspicion,
        policy: &HintPolicy,
        base_policy: &HintPolicy,
        derate: f64,
        noise_floor: f64,
    ) -> RobustCoefficient {
        let Some(estimate) = estimate else {
            return RobustCoefficient {
                estimate: None,
                confidence: 0.0,
                suspicion,
                decision: HintDecision::Skipped,
                rail: Rail::Lda,
            };
        };
        if suspicion.hard() {
            return RobustCoefficient {
                estimate: Some(estimate),
                confidence: 0.0,
                suspicion,
                decision: HintDecision::Skipped,
                rail: Rail::Lda,
            };
        }
        let posterior = Posterior::new(estimate.probabilities.clone()).ok();
        let variance = match &posterior {
            Some(p) => p.variance(),
            None => f64::INFINITY,
        };
        // Degenerate single-class posteriors (the sign-zero shortcut) have
        // variance exactly 0, which multiplicative inflation cannot touch
        // (0 × k = 0) — yet on a noisy capture a zero-sign call is as
        // fallible as any other. The additive term pushes such posteriors
        // past the perfect threshold whenever inflation is active, and is
        // exactly 0.0 on clean captures (inflation 1.0), preserving
        // bit-identity.
        let variance = variance
            + (policy.variance_inflation - 1.0).max(0.0) * policy.perfect_variance_threshold;
        // Noise floor (0.0 on clean captures): a sharp posterior measured
        // through heavy noise is not actually sharp evidence.
        let variance = variance.max(noise_floor);
        let mut decision = match policy.classify_variance(variance) {
            HintClass::Perfect => HintDecision::Perfect {
                value: estimate.predicted,
            },
            HintClass::Approximate { eps_squared } => HintDecision::Approximate {
                value: estimate.predicted,
                eps_squared,
            },
            HintClass::Skipped => HintDecision::Skipped,
        };
        let mut confidence = estimate.confidence() * derate;
        if suspicion.soft() {
            confidence *= 0.5;
            // A suspect window never yields a perfect hint: demote to an
            // approximate hint whose variance is floored at the demotion
            // level (still conservative, still informative).
            if let HintDecision::Perfect { value } = decision {
                let floored = variance.max(self.config.demoted_variance_floor);
                decision = match policy.classify_variance(floored) {
                    HintClass::Perfect | HintClass::Approximate { .. } => {
                        let prior = policy.prior_variance;
                        HintDecision::Approximate {
                            value,
                            eps_squared: floored * prior / (prior - floored).max(1e-9),
                        }
                    }
                    HintClass::Skipped => HintDecision::Skipped,
                };
            }
        }

        // The learned leg: calibrated posterior variance, floored at the
        // demotion level and never promoted past an approximate hint.
        if let Some(learned_estimate) = learned {
            let learned_variance = Posterior::new(learned_estimate.probabilities.clone())
                .ok()
                .map_or(f64::INFINITY, |p| p.variance());
            let floored = learned_variance.max(self.config.demoted_variance_floor);
            let learned_decision = match base_policy.classify_variance(floored) {
                HintClass::Perfect | HintClass::Approximate { .. } => {
                    let prior = base_policy.prior_variance;
                    HintDecision::Approximate {
                        value: learned_estimate.predicted,
                        eps_squared: floored * prior / (prior - floored).max(1e-9),
                    }
                }
                HintClass::Skipped => HintDecision::Skipped,
            };
            let mut learned_confidence = learned_estimate.confidence();
            if suspicion.soft() {
                learned_confidence *= 0.5;
            }
            // Switching rails must never weaken the hint: the learned
            // decision has to dominate the template one — a higher ladder
            // rung, or the same approximate rung at no worse ε². In the
            // transition band where LDA is degraded-but-usable this keeps
            // its sharper hints; once inflation has pushed LDA to skipped,
            // any learned approximate dominates. Per-window dominance makes
            // the arbitrated hint set at least as strong as LDA-only's, so
            // the resulting bikz can only improve.
            let ladder_rank = |d: &HintDecision| match d {
                HintDecision::Perfect { .. } => 2u8,
                HintDecision::Approximate { .. } => 1,
                HintDecision::Skipped => 0,
            };
            let dominates = match (&learned_decision, &decision) {
                (
                    HintDecision::Approximate {
                        eps_squared: le, ..
                    },
                    HintDecision::Approximate {
                        eps_squared: de, ..
                    },
                ) => le <= de,
                (l, d) => ladder_rank(l) >= ladder_rank(d),
            };
            if learned_confidence > confidence && dominates {
                return RobustCoefficient {
                    estimate: Some(learned_estimate),
                    confidence: learned_confidence,
                    suspicion,
                    decision: learned_decision,
                    rail: Rail::Learned,
                };
            }
        }

        RobustCoefficient {
            estimate: Some(estimate),
            confidence,
            suspicion,
            decision,
            rail: Rail::Lda,
        }
    }
}

/// Integrates one ladder decision into `instance` at `coord`, updating the
/// running summary: perfect hints via `integrate_perfect_hint`, approximate
/// ones via `integrate_approximate_hint` with the gated ε², skipped ones
/// only counted. This is the single integration point shared by
/// [`report_robust`] and `reveal-serve`'s incremental per-key accumulator,
/// so a served stream folds decisions through exactly the same arithmetic
/// (and in the same order) as the one-shot report — bit-identity between
/// the two paths is by construction, not by parallel maintenance.
///
/// # Errors
///
/// Propagates hint-integration failures (out-of-range or already-eliminated
/// coordinate, non-positive ε²).
pub fn integrate_decision(
    instance: &mut DbddInstance,
    coord: usize,
    decision: &HintDecision,
    summary: &mut HintSummary,
) -> Result<(), reveal_hints::HintError> {
    match decision {
        HintDecision::Perfect { .. } => {
            instance.integrate_perfect_hint(coord)?;
            summary.perfect += 1;
        }
        HintDecision::Approximate { eps_squared, .. } => {
            instance.integrate_approximate_hint(coord, *eps_squared)?;
            summary.approximate += 1;
        }
        HintDecision::Skipped => summary.skipped += 1,
    }
    Ok(())
}

/// Builds the security report from robust decisions, mirroring
/// [`report_full_attack`](crate::report::report_full_attack): coordinates
/// are integrated in ascending order via [`integrate_decision`].
///
/// # Errors
///
/// Fails when coefficients outnumber the instance's error coordinates or
/// hint integration fails.
pub fn report_robust(
    result: &RobustAttackResult,
    params: &LweParameters,
) -> Result<AttackReport, ReportError> {
    if result.coefficients.len() > params.m {
        return Err(ReportError::TooManyCoefficients {
            estimates: result.coefficients.len(),
            coords: params.m,
        });
    }
    let baseline = DbddInstance::from_lwe(params).estimate();
    let mut hinted = DbddInstance::from_lwe(params);
    let mut hints = HintSummary::default();
    for (coord, coefficient) in result.coefficients.iter().enumerate() {
        integrate_decision(&mut hinted, coord, &coefficient.decision, &mut hints)?;
    }
    Ok(AttackReport {
        baseline,
        with_hints: hinted.estimate(),
        hints,
        coefficients: result.coefficients.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use reveal_rv32::power::PowerModelConfig;

    const Q: u64 = 3329;

    fn trained(n: usize, seed: u64) -> (Device, TrainedAttack) {
        let device =
            Device::new(n, &[Q], PowerModelConfig::default().with_noise_sigma(0.05)).unwrap();
        let attack =
            TrainedAttack::profile_seeded(&device, 30, &AttackConfig::default(), seed).unwrap();
        (device, attack)
    }

    #[test]
    fn schedule_starts_at_base_and_relaxes() {
        let base = SegmentConfig::default();
        let schedule = relaxation_schedule(&base);
        assert_eq!(schedule[0], base);
        assert!(schedule.len() >= 3);
        assert!(schedule
            .iter()
            .skip(1)
            .all(|c| c.merge_gap > base.merge_gap));
        assert!(schedule.iter().all(|c| c.merge_gap < 96));
    }

    #[test]
    fn clean_trace_produces_clean_outcome() {
        let (device, attack) = trained(16, 0xA11CE);
        let mut rng = StdRng::seed_from_u64(3);
        let profiling_capture = device.capture_fresh(&mut rng).unwrap();
        let calibration =
            calibrate(&profiling_capture.run.capture.samples, attack.config()).unwrap();
        let capture = device.capture_fresh(&mut rng).unwrap();
        let robust = RobustAttack::new(&attack).with_calibration(calibration);
        let result = robust
            .attack_trace(&capture.run.capture.samples, 16, &HintPolicy::seal_paper())
            .unwrap();
        assert_eq!(result.coefficients.len(), 16);
        assert_eq!(result.diagnostics.relaxation_rung, 0);
        assert_eq!(result.diagnostics.healed_merges, 0);
        assert_eq!(result.diagnostics.healed_splits, 0);
        assert_eq!(result.diagnostics.variance_inflation, 1.0);
        assert!(result.coefficients.iter().all(|c| c.suspicion.clean()));
        // Plain pipeline agreement on the clean trace.
        let plain = attack.attack_trace(&capture.run.capture.samples).unwrap();
        for (r, p) in result.coefficients.iter().zip(&plain.coefficients) {
            assert_eq!(r.estimate.as_ref().unwrap(), p);
        }
    }

    #[test]
    fn garbage_trace_fails_typed_not_panic() {
        let (_, attack) = trained(16, 0xBEE);
        let robust = RobustAttack::new(&attack);
        let err = robust.attack_trace(&[], 16, &HintPolicy::seal_paper());
        assert!(matches!(err, Err(AttackError::Segment(_))));
        let flat = vec![1.0; 5000];
        let err = robust.attack_trace(&flat, 16, &HintPolicy::seal_paper());
        assert!(matches!(err, Err(AttackError::Segment(_))));
    }

    fn trained_two_rail(n: usize, seed: u64) -> (Device, TrainedAttack) {
        let device =
            Device::new(n, &[Q], PowerModelConfig::default().with_noise_sigma(0.05)).unwrap();
        let learned = crate::LearnedConfig::default();
        let (attack, err) = TrainedAttack::profile_seeded_two_rail(
            &device,
            30,
            &AttackConfig::default(),
            seed,
            &learned,
        )
        .unwrap();
        assert!(err.is_none(), "learned rail must train: {err:?}");
        (device, attack)
    }

    #[test]
    fn clean_capture_never_consults_the_learned_rail() {
        let (device, attack) = trained_two_rail(16, 0xA11CE);
        let mut rng = StdRng::seed_from_u64(3);
        let cal_capture = device.capture_fresh(&mut rng).unwrap();
        let calibration = calibrate(&cal_capture.run.capture.samples, attack.config()).unwrap();
        let capture = device.capture_fresh(&mut rng).unwrap();

        let lda_only = attack.clone().without_learned_rail();
        let reference = RobustAttack::new(&lda_only)
            .with_calibration(calibration)
            .attack_trace(&capture.run.capture.samples, 16, &HintPolicy::seal_paper())
            .unwrap();
        let arbitrated = RobustAttack::new(&attack)
            .with_calibration(calibration)
            .attack_trace(&capture.run.capture.samples, 16, &HintPolicy::seal_paper())
            .unwrap();

        // On a clean capture arbitration never arms, so the outcome is the
        // template rail's, bit for bit.
        assert!(arbitrated.diagnostics.rail.attached);
        assert!(arbitrated.diagnostics.rail.arbitrated);
        if arbitrated.coefficients.iter().all(|c| c.suspicion.clean()) {
            assert_eq!(arbitrated.diagnostics.rail.armed_windows, 0);
        }
        for (a, r) in arbitrated.coefficients.iter().zip(&reference.coefficients) {
            if a.suspicion.clean() {
                assert_eq!(a.rail, Rail::Lda);
                assert_eq!(a.decision, r.decision);
                assert_eq!(a.confidence.to_bits(), r.confidence.to_bits());
            }
        }
    }

    #[test]
    fn arbitration_keeps_hints_on_noisy_captures() {
        let (device, attack) = trained_two_rail(16, 0x5EED);
        let mut rng = StdRng::seed_from_u64(9);
        let cal_capture = device.capture_fresh(&mut rng).unwrap();
        let calibration = calibrate(&cal_capture.run.capture.samples, attack.config()).unwrap();
        let capture = device.capture_fresh(&mut rng).unwrap();

        // Inject ~3x the calibrated noise (in quadrature), well past the
        // inflation knee: the template rail's floor skips everything.
        let sigma = calibration.reference_noise_sigma * 3.0;
        let mut noise_rng = StdRng::seed_from_u64(77);
        let noisy: Vec<f64> = capture
            .run
            .capture
            .samples
            .iter()
            .map(|s| {
                let u1: f64 = (1.0 - noise_rng.gen::<f64>()).max(1e-300);
                let u2: f64 = noise_rng.gen();
                s + sigma * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
            })
            .collect();

        let policy = HintPolicy::seal_paper();
        let lda_only = attack.clone().without_learned_rail();
        let reference = RobustAttack::new(&lda_only)
            .with_calibration(calibration)
            .attack_trace(&noisy, 16, &policy)
            .unwrap();
        let arbitrated = RobustAttack::new(&attack)
            .with_calibration(calibration)
            .attack_trace(&noisy, 16, &policy)
            .unwrap();

        assert!(arbitrated.diagnostics.variance_inflation > 1.0);
        assert!(arbitrated.diagnostics.rail.armed_windows > 0);
        assert!(arbitrated.diagnostics.rail.learned_wins > 0);
        // The learned rail never claims a perfect hint.
        assert!(arbitrated
            .coefficients
            .iter()
            .filter(|c| c.rail == Rail::Learned)
            .all(|c| !matches!(c.decision, HintDecision::Perfect { .. })));
        // Graceful degradation: strictly more usable hints than LDA-only.
        let (_, ref_approx, ref_skipped) = reference.decision_counts();
        let (_, arb_approx, arb_skipped) = arbitrated.decision_counts();
        assert!(
            arb_approx > ref_approx && arb_skipped < ref_skipped,
            "arbitrated approx {arb_approx} (lda {ref_approx}), skipped {arb_skipped} (lda {ref_skipped})"
        );
    }

    #[test]
    fn disabled_arbitration_stays_on_the_template_rail() {
        let (device, attack) = trained_two_rail(16, 0xD15AB);
        let mut rng = StdRng::seed_from_u64(4);
        let capture = device.capture_fresh(&mut rng).unwrap();
        let config = RobustConfig {
            arbitration: false,
            ..RobustConfig::default()
        };
        let result = RobustAttack::new(&attack)
            .with_config(config)
            .attack_trace(&capture.run.capture.samples, 16, &HintPolicy::seal_paper())
            .unwrap();
        assert!(result.diagnostics.rail.attached);
        assert!(!result.diagnostics.rail.arbitrated);
        assert_eq!(result.diagnostics.rail.armed_windows, 0);
        assert!(result.coefficients.iter().all(|c| c.rail == Rail::Lda));
    }

    #[test]
    fn failed_training_degrades_to_lda_only_with_typed_error() {
        let device =
            Device::new(16, &[Q], PowerModelConfig::default().with_noise_sigma(0.05)).unwrap();
        let hot = crate::LearnedConfig {
            learning_rate: 1e12,
            ..crate::LearnedConfig::default()
        };
        let (attack, err) = TrainedAttack::profile_seeded_two_rail(
            &device,
            30,
            &AttackConfig::default(),
            0xBAD,
            &hot,
        )
        .unwrap();
        assert!(err.is_some(), "hot learning rate must fail training");
        assert!(attack.learned_rail().is_none());
        // The degraded attacker still attacks, LDA-only, and records it.
        let mut rng = StdRng::seed_from_u64(5);
        let capture = device.capture_fresh(&mut rng).unwrap();
        let result = RobustAttack::new(&attack)
            .attack_trace(&capture.run.capture.samples, 16, &HintPolicy::seal_paper())
            .unwrap();
        assert!(!result.diagnostics.rail.attached);
        assert!(!result.diagnostics.rail.arbitrated);
    }

    #[test]
    fn flat_padding_yields_valid_partial_result() {
        // Two bursts where sixteen are expected: the driver must heal what
        // it can and pad the rest as unrecoverable, not crash.
        let (_, attack) = trained(16, 0xF00D);
        let mut t = vec![1.0; 3000];
        for s in [100usize, 900] {
            for i in s..s + 200 {
                t[i] = 4.0;
            }
        }
        let result = RobustAttack::new(&attack)
            .attack_trace(&t, 16, &HintPolicy::seal_paper())
            .unwrap();
        assert_eq!(result.coefficients.len(), 16);
        assert!(result.diagnostics.missing_windows > 0);
        // Padded coefficients carry no confidence and are skipped.
        assert!(result
            .coefficients
            .iter()
            .all(|c| c.decision == HintDecision::Skipped));
        assert_eq!(result.estimates().len(), 16);
    }
}
