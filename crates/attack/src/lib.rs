#![forbid(unsafe_code)]
// The capture→segment→score→recover hot path must degrade with typed
// errors, never panic on a glitched acquisition; tests keep their unwraps.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
// Indexed loops are the clearest notation for the dense numeric kernels
// in this workspace (convolutions, scatter matrices, lattice bases).
#![allow(clippy::needless_range_loop)]

//! # reveal-attack
//!
//! The RevEAL single-trace attack pipeline — the paper's primary
//! contribution, end to end:
//!
//! 1. **Capture** ([`device`]): SEAL's Gaussian sampler running on the
//!    simulated PicoRV32 target, in profiling (chosen values) and attack
//!    (fresh secrets, single trace) modes.
//! 2. **Segmentation** ([`profile::extract_ladder_windows`]): locate each
//!    coefficient's sampling window from the distribution-call peaks
//!    (Fig. 3a) — no fixed stride works because the sampler is
//!    time-variant.
//! 3. **Sign recovery** (vulnerability 1): template-classify the
//!    `if/else-if/else` control-flow patterns (Fig. 3b) — positive,
//!    negative, or zero.
//! 4. **Value recovery** (vulnerabilities 2 + 3): Gaussian templates on
//!    SOSD-selected points of interest; for negative coefficients the
//!    negation-region and store-region scores are *fused* to prune
//!    Hamming-weight false positives.
//! 5. **Security accounting** ([`report`]): posteriors become perfect /
//!    approximate hints for the LWE-with-hints estimator, reproducing the
//!    bikz numbers of Tables III and IV.
//! 6. **Message recovery** ([`recover`]): Eqs. (2)–(3) algebra once the
//!    errors are known, with a BKZ finisher for partially recovered traces.
//! 7. **Defense** ([`defense`]): the shuffling countermeasure of §V-A and
//!    its evaluation.

pub mod config;
pub mod defense;
pub mod device;
pub mod profile;
pub mod recover;
pub mod report;
pub mod robust;

pub use config::AttackConfig;
pub use defense::{evaluate_against_shuffling, DefenseEvaluation, ShuffledDevice};
pub use device::{burst_iterations, Capture, Device};
pub use profile::{
    collect_profiling, collect_profiling_baseline, extract_ladder_windows,
    extract_ladder_windows_into, extract_ladder_windows_reference, ladder_window_starts,
    AttackError, CoefficientEstimate, ExploitedPcs, LearnedRail, ProfilingData, SingleTraceAttack,
    TrainedAttack,
};
pub use recover::{
    recover_adaptive, recover_message, recover_message_from_u, recover_message_partial,
    recover_secret_key, recover_secret_key_adaptive, recover_u, residual_instance, RecoverError,
};
pub use report::{
    report_full_attack, report_posteriors, report_sign_only, rounded_gaussian_prior, AttackReport,
    ReportError,
};
pub use robust::{
    calibrate, integrate_decision, relaxation_schedule, report_robust, Calibration, Diagnostics,
    HintDecision, Rail, RailDiagnostics, RobustAttack, RobustAttackResult, RobustCoefficient,
    RobustConfig, Suspicion,
};
// The learned rail's knobs and typed failures, so two-rail consumers need
// only this crate.
pub use reveal_template::{LearnedConfig, LearnedError};
