//! A minimal complex-number type for the canonical embedding (kept local so
//! the workspace needs no external numerics crate).

use std::ops::{Add, Div, Mul, Neg, Sub};

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number.
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// The additive identity.
    pub const ZERO: Complex = Complex::new(0.0, 0.0);

    /// The multiplicative identity.
    pub const ONE: Complex = Complex::new(1.0, 0.0);

    /// `e^{iθ}`.
    pub fn from_angle(theta: f64) -> Self {
        Self::new(theta.cos(), theta.sin())
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Scales by a real factor.
    pub fn scale(self, s: f64) -> Self {
        Self::new(self.re * s, self.im * s)
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex {
    type Output = Complex;
    fn div(self, rhs: Complex) -> Complex {
        let d = rhs.re * rhs.re + rhs.im * rhs.im;
        Complex::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::new(re, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_axioms_spotcheck() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-3.0, 0.5);
        assert_eq!(a + b, Complex::new(-2.0, 2.5));
        assert_eq!(a - a, Complex::ZERO);
        let prod = a * b;
        assert!((prod.re - (1.0 * -3.0 - 2.0 * 0.5)).abs() < 1e-15);
        assert!((prod.im - (1.0 * 0.5 + 2.0 * -3.0)).abs() < 1e-15);
        let q = prod / b;
        assert!((q.re - a.re).abs() < 1e-12 && (q.im - a.im).abs() < 1e-12);
    }

    #[test]
    fn roots_of_unity() {
        let w = Complex::from_angle(std::f64::consts::PI / 4.0);
        let mut acc = Complex::ONE;
        for _ in 0..8 {
            acc = acc * w;
        }
        assert!((acc - Complex::ONE).abs() < 1e-12);
    }

    #[test]
    fn conjugate_and_abs() {
        let a = Complex::new(3.0, 4.0);
        assert_eq!(a.abs(), 5.0);
        assert_eq!(a.conj(), Complex::new(3.0, -4.0));
        let sq = a * a.conj();
        assert!((sq.re - 25.0).abs() < 1e-12 && sq.im.abs() < 1e-12);
    }
}
