//! The CKKS scheme proper: keys, encryption (through the *same vulnerable
//! sampler* as BFV), decryption, and levelled evaluation with rescaling.

use crate::complex::Complex;
use crate::encoder::{CkksEncoder, EncodeError};
use rand::Rng;
use reveal_bfv::sampler::{sample_ternary, sample_uniform, set_poly_coeffs_normal, SamplerProbe};
use reveal_bfv::{EncryptionParameters, NullProbe};
use reveal_math::{Modulus, RnsBasis, RnsPolynomial};
use std::fmt;

/// Errors from CKKS operations.
#[derive(Debug, Clone, PartialEq)]
pub enum CkksError {
    /// Parameter validation failed.
    Parameters(String),
    /// Encoding failed.
    Encode(EncodeError),
    /// Operands live at different levels.
    LevelMismatch { a: usize, b: usize },
    /// Operand scales diverge too far for addition.
    ScaleMismatch { a: f64, b: f64 },
    /// No modulus left to drop.
    CannotRescale,
    /// A decrypted coefficient exceeded the representable range (the
    /// ciphertext is too noisy or corrupt).
    DecryptOverflow { coefficient: usize },
}

impl fmt::Display for CkksError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkksError::Parameters(m) => write!(f, "invalid parameters: {m}"),
            CkksError::Encode(e) => write!(f, "encoding failed: {e}"),
            CkksError::LevelMismatch { a, b } => {
                write!(f, "ciphertexts at different levels ({a} vs {b})")
            }
            CkksError::ScaleMismatch { a, b } => {
                write!(f, "ciphertext scales diverge ({a} vs {b})")
            }
            CkksError::CannotRescale => write!(f, "already at the lowest level"),
            CkksError::DecryptOverflow { coefficient } => {
                write!(f, "decrypted coefficient {coefficient} out of range")
            }
        }
    }
}

impl std::error::Error for CkksError {}

impl From<EncodeError> for CkksError {
    fn from(e: EncodeError) -> Self {
        CkksError::Encode(e)
    }
}

/// A validated CKKS context: modulus chain, per-level bases, encoder.
#[derive(Debug, Clone)]
pub struct CkksContext {
    n: usize,
    moduli: Vec<Modulus>,
    /// `bases[l]` covers `moduli[0..=l]`.
    bases: Vec<RnsBasis>,
    encoder: CkksEncoder,
    /// Dummy BFV parameter blocks per level, reused to drive the shared
    /// noise sampler (the attack surface!).
    sampler_parms: Vec<EncryptionParameters>,
}

impl CkksContext {
    /// Builds a context from a modulus chain (top level uses all moduli) and
    /// the encoding scale Δ.
    ///
    /// # Errors
    ///
    /// Fails when the chain is empty/invalid or the degree unsupported.
    pub fn new(n: usize, moduli: Vec<Modulus>, scale: u64) -> Result<Self, CkksError> {
        if moduli.is_empty() {
            return Err(CkksError::Parameters("empty modulus chain".into()));
        }
        if !n.is_power_of_two() || n < 8 {
            return Err(CkksError::Parameters(format!(
                "degree {n} must be a power of two >= 8"
            )));
        }
        let mut bases = Vec::with_capacity(moduli.len());
        let mut sampler_parms = Vec::with_capacity(moduli.len());
        for l in 0..moduli.len() {
            let chain = moduli[..=l].to_vec();
            bases.push(
                RnsBasis::new(n, chain.clone())
                    .map_err(|e| CkksError::Parameters(e.to_string()))?,
            );
            sampler_parms.push(
                EncryptionParameters::new(n, chain, Modulus::new(2).expect("2 is a valid modulus"))
                    .map_err(|e| CkksError::Parameters(e.to_string()))?,
            );
        }
        Ok(Self {
            n,
            moduli,
            bases,
            encoder: CkksEncoder::new(n, scale),
            sampler_parms,
        })
    }

    /// Ring degree.
    pub fn degree(&self) -> usize {
        self.n
    }

    /// The top level index (`modulus count − 1`).
    pub fn top_level(&self) -> usize {
        self.moduli.len() - 1
    }

    /// The encoder.
    pub fn encoder(&self) -> &CkksEncoder {
        &self.encoder
    }

    /// The RNS basis at a level.
    pub fn basis(&self, level: usize) -> &RnsBasis {
        &self.bases[level]
    }

    /// The modulus chain.
    pub fn moduli(&self) -> &[Modulus] {
        &self.moduli
    }
}

/// A CKKS secret key (ternary), usable at every level.
#[derive(Debug, Clone)]
pub struct CkksSecretKey {
    s_signed: Vec<i64>,
}

impl CkksSecretKey {
    /// The ternary coefficients.
    pub fn coefficients(&self) -> &[i64] {
        &self.s_signed
    }
}

/// A CKKS public key at the top level.
#[derive(Debug, Clone)]
pub struct CkksPublicKey {
    p0: RnsPolynomial,
    p1: RnsPolynomial,
}

impl CkksPublicKey {
    /// `p0 = -(a·s + e)`.
    pub fn p0(&self) -> &RnsPolynomial {
        &self.p0
    }

    /// `p1 = a`.
    pub fn p1(&self) -> &RnsPolynomial {
        &self.p1
    }
}

/// A CKKS ciphertext: polynomials at some level, carrying its scale.
#[derive(Debug, Clone)]
pub struct CkksCiphertext {
    parts: Vec<RnsPolynomial>,
    level: usize,
    scale: f64,
}

impl CkksCiphertext {
    /// Current level (index into the modulus chain).
    pub fn level(&self) -> usize {
        self.level
    }

    /// The ciphertext scale.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Number of polynomial parts (2 fresh, 3 after multiplication).
    pub fn size(&self) -> usize {
        self.parts.len()
    }

    /// Borrow of the parts, `c0` first.
    pub fn parts(&self) -> &[RnsPolynomial] {
        &self.parts
    }
}

/// Generates CKKS keys.
pub fn keygen<R: Rng + ?Sized>(ctx: &CkksContext, rng: &mut R) -> (CkksSecretKey, CkksPublicKey) {
    let top = ctx.top_level();
    let basis = ctx.basis(top);
    let s_signed = sample_ternary(ctx.degree(), rng);
    let s = basis.from_signed(&s_signed);
    let a = RnsPolynomial::from_flat(basis, &sample_uniform(&ctx.sampler_parms[top], rng));
    let mut e_flat = vec![0u64; ctx.degree() * basis.len()];
    set_poly_coeffs_normal(&mut e_flat, rng, &ctx.sampler_parms[top], &mut NullProbe);
    let e = RnsPolynomial::from_flat(basis, &e_flat);
    let p0 = a.mul(&s).add(&e).neg();
    (CkksSecretKey { s_signed }, CkksPublicKey { p0, p1: a })
}

/// Encrypts complex slots, reporting the two error-polynomial samplings to
/// the probes — the identical attack surface as BFV encryption.
///
/// # Errors
///
/// Propagates encoding failures.
pub fn encrypt_observed<R, P1, P2>(
    ctx: &CkksContext,
    pk: &CkksPublicKey,
    slots: &[Complex],
    rng: &mut R,
    probe_e1: &mut P1,
    probe_e2: &mut P2,
) -> Result<(CkksCiphertext, CkksWitness), CkksError>
where
    R: Rng + ?Sized,
    P1: SamplerProbe,
    P2: SamplerProbe,
{
    let top = ctx.top_level();
    let basis = ctx.basis(top);
    let m_coeffs = ctx.encoder.encode(slots)?;
    let m = basis.from_signed(&m_coeffs);

    let u = basis.from_signed(&sample_ternary(ctx.degree(), rng));
    let mut e1_flat = vec![0u64; ctx.degree() * basis.len()];
    set_poly_coeffs_normal(&mut e1_flat, rng, &ctx.sampler_parms[top], probe_e1);
    let e1 = RnsPolynomial::from_flat(basis, &e1_flat);
    let mut e2_flat = vec![0u64; ctx.degree() * basis.len()];
    set_poly_coeffs_normal(&mut e2_flat, rng, &ctx.sampler_parms[top], probe_e2);
    let e2 = RnsPolynomial::from_flat(basis, &e2_flat);

    // (c0, c1) = (p0·u + e1 + m, p1·u + e2) — no Δ·m: the scale lives in
    // the encoding.
    let c0 = pk.p0.mul(&u).add(&e1).add(&m);
    let c1 = pk.p1.mul(&u).add(&e2);
    let witness = CkksWitness {
        u: u.residues()[0].to_signed(),
        e1: e1.residues()[0].to_signed(),
        e2: e2.residues()[0].to_signed(),
    };
    Ok((
        CkksCiphertext {
            parts: vec![c0, c1],
            level: top,
            scale: ctx.encoder.scale(),
        },
        witness,
    ))
}

/// Encrypts without observation.
///
/// # Errors
///
/// Propagates encoding failures.
pub fn encrypt<R: Rng + ?Sized>(
    ctx: &CkksContext,
    pk: &CkksPublicKey,
    slots: &[Complex],
    rng: &mut R,
) -> Result<CkksCiphertext, CkksError> {
    Ok(encrypt_observed(ctx, pk, slots, rng, &mut NullProbe, &mut NullProbe)?.0)
}

/// Decrypts to complex slots.
///
/// # Errors
///
/// Fails when a decrypted coefficient leaves the representable range.
pub fn decrypt(
    ctx: &CkksContext,
    sk: &CkksSecretKey,
    ct: &CkksCiphertext,
) -> Result<Vec<Complex>, CkksError> {
    let basis = ctx.basis(ct.level);
    let s = basis.from_signed(&sk.s_signed);
    let mut acc = ct.parts[0].clone();
    let mut s_pow = s.clone();
    for part in &ct.parts[1..] {
        acc = acc.add(&part.mul(&s_pow));
        s_pow = s_pow.mul(&s);
    }
    let q = basis.product().clone();
    let half = q.divmod_u64(2).0;
    let mut coeffs = Vec::with_capacity(ctx.degree());
    for i in 0..ctx.degree() {
        let x = acc.compose_coefficient(i);
        let centered: i64 = if x > half {
            let mag = q.checked_sub(&x).expect("x < q");
            match mag.to_u64() {
                Some(v) if v <= i64::MAX as u64 => -(v as i64),
                _ => return Err(CkksError::DecryptOverflow { coefficient: i }),
            }
        } else {
            match x.to_u64() {
                Some(v) if v <= i64::MAX as u64 => v as i64,
                _ => return Err(CkksError::DecryptOverflow { coefficient: i }),
            }
        };
        coeffs.push(centered);
    }
    Ok(ctx.encoder.decode_scaled(&coeffs, ct.scale))
}

/// Homomorphic addition (same level, compatible scales).
///
/// # Errors
///
/// Fails on level or scale mismatch.
pub fn add(a: &CkksCiphertext, b: &CkksCiphertext) -> Result<CkksCiphertext, CkksError> {
    if a.level != b.level {
        return Err(CkksError::LevelMismatch {
            a: a.level,
            b: b.level,
        });
    }
    let ratio = a.scale / b.scale;
    if !(0.999..1.001).contains(&ratio) {
        return Err(CkksError::ScaleMismatch {
            a: a.scale,
            b: b.scale,
        });
    }
    let size = a.parts.len().max(b.parts.len());
    let zero = a.parts[0].basis().zero();
    let parts = (0..size)
        .map(|i| {
            let pa = a.parts.get(i).unwrap_or(&zero);
            let pb = b.parts.get(i).unwrap_or(&zero);
            pa.add(pb)
        })
        .collect();
    Ok(CkksCiphertext {
        parts,
        level: a.level,
        scale: a.scale,
    })
}

/// Homomorphic multiplication: produces a size-3 ciphertext at scale Δ².
///
/// # Errors
///
/// Fails on level mismatch.
pub fn multiply(a: &CkksCiphertext, b: &CkksCiphertext) -> Result<CkksCiphertext, CkksError> {
    if a.level != b.level {
        return Err(CkksError::LevelMismatch {
            a: a.level,
            b: b.level,
        });
    }
    assert_eq!(a.parts.len(), 2, "multiply expects fresh ciphertexts");
    assert_eq!(b.parts.len(), 2, "multiply expects fresh ciphertexts");
    let d0 = a.parts[0].mul(&b.parts[0]);
    let d1 = a.parts[0]
        .mul(&b.parts[1])
        .add(&a.parts[1].mul(&b.parts[0]));
    let d2 = a.parts[1].mul(&b.parts[1]);
    Ok(CkksCiphertext {
        parts: vec![d0, d1, d2],
        level: a.level,
        scale: a.scale * b.scale,
    })
}

/// Rescales: drops the last modulus of the chain, dividing the plaintext
/// scale by (approximately) that prime.
///
/// # Errors
///
/// Fails at level 0.
pub fn rescale(ctx: &CkksContext, ct: &CkksCiphertext) -> Result<CkksCiphertext, CkksError> {
    if ct.level == 0 {
        return Err(CkksError::CannotRescale);
    }
    let new_level = ct.level - 1;
    let old_basis = ctx.basis(ct.level);
    let new_basis = ctx.basis(new_level);
    let q_last = ctx.moduli()[ct.level];
    let parts = ct
        .parts
        .iter()
        .map(|p| rescale_poly(p, old_basis, new_basis, &q_last))
        .collect();
    Ok(CkksCiphertext {
        parts,
        level: new_level,
        scale: ct.scale / q_last.value() as f64,
    })
}

/// `(c − [c]_{q_last}) / q_last` per remaining residue, with the centered
/// lift of the last residue.
fn rescale_poly(
    p: &RnsPolynomial,
    old_basis: &RnsBasis,
    new_basis: &RnsBasis,
    q_last: &Modulus,
) -> RnsPolynomial {
    let n = old_basis.degree();
    let last = old_basis.len() - 1;
    let last_coeffs = p.residues()[last].coeffs();
    let residues = (0..new_basis.len())
        .map(|j| {
            let m = &old_basis.moduli()[j];
            let inv_qlast = m
                .inv(q_last.value() % m.value())
                .expect("chain moduli coprime");
            let coeffs: Vec<u64> = (0..n)
                .map(|i| {
                    // Centered lift of the last residue.
                    let centered = q_last.to_signed(last_coeffs[i]);
                    let c_j = p.residues()[j].coeffs()[i];
                    let adjusted = m.sub(c_j, m.from_signed(centered));
                    m.mul(adjusted, inv_qlast)
                })
                .collect();
            new_basis.contexts()[j].polynomial(&coeffs)
        })
        .collect();
    new_basis.from_residues(residues)
}

/// Ground-truth witness of one observed encryption (for attack experiments;
/// a real adversary never sees this).
#[derive(Debug, Clone, PartialEq)]
pub struct CkksWitness {
    /// The ternary encryption sample `u`.
    pub u: Vec<i64>,
    /// The first error polynomial (the `c0` equation's noise).
    pub e1: Vec<i64>,
    /// The second error polynomial (the `c1` equation's noise).
    pub e2: Vec<i64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use reveal_bfv::RecordingProbe;
    use reveal_math::primes::ntt_primes;

    fn toy_context() -> CkksContext {
        // Chain: one 50-bit prime + one ~30-bit prime ≈ Δ.
        let n = 32usize;
        let q0 = ntt_primes(50, 2 * n as u64, 1).unwrap().remove(0);
        let q1 = ntt_primes(30, 2 * n as u64, 1).unwrap().remove(0);
        CkksContext::new(n, vec![q0, q1], 1u64 << 30).unwrap()
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let ctx = toy_context();
        let mut rng = StdRng::seed_from_u64(1);
        let (sk, pk) = keygen(&ctx, &mut rng);
        let slots: Vec<Complex> = (0..16)
            .map(|i| Complex::new(i as f64 * 0.25 - 2.0, (i as f64 * 0.1).sin()))
            .collect();
        let ct = encrypt(&ctx, &pk, &slots, &mut rng).unwrap();
        let back = decrypt(&ctx, &sk, &ct).unwrap();
        for (a, b) in slots.iter().zip(&back) {
            assert!((*a - *b).abs() < 1e-3, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn homomorphic_addition() {
        let ctx = toy_context();
        let mut rng = StdRng::seed_from_u64(2);
        let (sk, pk) = keygen(&ctx, &mut rng);
        let a: Vec<Complex> = (0..16).map(|i| Complex::from(i as f64 * 0.1)).collect();
        let b: Vec<Complex> = (0..16)
            .map(|i| Complex::from(3.0 - i as f64 * 0.2))
            .collect();
        let ca = encrypt(&ctx, &pk, &a, &mut rng).unwrap();
        let cb = encrypt(&ctx, &pk, &b, &mut rng).unwrap();
        let sum = decrypt(&ctx, &sk, &add(&ca, &cb).unwrap()).unwrap();
        for i in 0..16 {
            assert!((sum[i].re - (a[i].re + b[i].re)).abs() < 1e-3);
        }
    }

    #[test]
    fn multiply_then_rescale() {
        let ctx = toy_context();
        let mut rng = StdRng::seed_from_u64(3);
        let (sk, pk) = keygen(&ctx, &mut rng);
        let a: Vec<Complex> = (0..16)
            .map(|i| Complex::from(0.3 + i as f64 * 0.05))
            .collect();
        let b: Vec<Complex> = (0..16)
            .map(|i| Complex::from(1.2 - i as f64 * 0.05))
            .collect();
        let ca = encrypt(&ctx, &pk, &a, &mut rng).unwrap();
        let cb = encrypt(&ctx, &pk, &b, &mut rng).unwrap();
        let prod = multiply(&ca, &cb).unwrap();
        assert_eq!(prod.size(), 3);
        let rescaled = rescale(&ctx, &prod).unwrap();
        assert_eq!(rescaled.level(), 0);
        let out = decrypt(&ctx, &sk, &rescaled).unwrap();
        for i in 0..16 {
            let expected = a[i].re * b[i].re;
            assert!(
                (out[i].re - expected).abs() < 2e-2,
                "slot {i}: {} vs {expected}",
                out[i].re
            );
        }
    }

    #[test]
    fn level_and_scale_guards() {
        let ctx = toy_context();
        let mut rng = StdRng::seed_from_u64(4);
        let (_sk, pk) = keygen(&ctx, &mut rng);
        let slots: Vec<Complex> = (0..16).map(|_| Complex::from(0.5)).collect();
        let a = encrypt(&ctx, &pk, &slots, &mut rng).unwrap();
        let b = encrypt(&ctx, &pk, &slots, &mut rng).unwrap();
        let low = rescale(&ctx, &a).unwrap();
        assert!(matches!(
            add(&low, &b),
            Err(CkksError::LevelMismatch { .. })
        ));
        assert!(matches!(rescale(&ctx, &low), Err(CkksError::CannotRescale)));
        let prod = multiply(&b, &encrypt(&ctx, &pk, &slots, &mut rng).unwrap()).unwrap();
        assert!(matches!(
            add(&prod, &b),
            Err(CkksError::ScaleMismatch { .. })
        ));
    }

    #[test]
    fn encryption_exposes_the_same_vulnerable_sampler() {
        // The attack surface: the probes see the identical event stream BFV
        // encryption produces — same branches, same negations.
        let ctx = toy_context();
        let mut rng = StdRng::seed_from_u64(5);
        let (_sk, pk) = keygen(&ctx, &mut rng);
        let slots: Vec<Complex> = (0..16).map(|i| Complex::from(i as f64)).collect();
        let mut probe1 = RecordingProbe::new();
        let mut probe2 = RecordingProbe::new();
        let (_ct, witness) =
            encrypt_observed(&ctx, &pk, &slots, &mut rng, &mut probe1, &mut probe2).unwrap();
        assert_eq!(witness.e2.len(), 32);
        assert!(witness.u.iter().all(|&x| (-1..=1).contains(&x)));
        use reveal_bfv::SamplerEvent;
        let starts = |p: &RecordingProbe| {
            p.events()
                .iter()
                .filter(|e| matches!(e, SamplerEvent::CoefficientStart { .. }))
                .count()
        };
        assert_eq!(starts(&probe1), 32);
        assert_eq!(starts(&probe2), 32);
        let has_negation = probe2
            .events()
            .iter()
            .any(|e| matches!(e, SamplerEvent::Negation { .. }));
        assert!(
            has_negation,
            "the vulnerable negation path executes in CKKS too"
        );
    }

    #[test]
    fn bad_parameters_rejected() {
        assert!(matches!(
            CkksContext::new(32, vec![], 1 << 30),
            Err(CkksError::Parameters(_))
        ));
        let q = ntt_primes(30, 64, 1).unwrap().remove(0);
        assert!(matches!(
            CkksContext::new(33, vec![q], 1 << 30),
            Err(CkksError::Parameters(_))
        ));
    }
}
