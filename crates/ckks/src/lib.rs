#![forbid(unsafe_code)]
// Indexed loops are the clearest notation for the dense numeric kernels
// in this workspace (convolutions, scatter matrices, lattice bases).
#![allow(clippy::needless_range_loop)]

//! # reveal-ckks
//!
//! CKKS (approximate-arithmetic homomorphic encryption) built on the same
//! substrates as the BFV implementation — and, crucially, on the **same
//! vulnerable Gaussian sampler**: Microsoft SEAL used one noise-writing
//! routine for both schemes, so the RevEAL single-trace attack applies to
//! CKKS encryptions unchanged. This crate exists to demonstrate that the
//! paper's finding is scheme-agnostic.
//!
//! Provided: the canonical-embedding encoder (complex slots ↔ integer
//! polynomials), key generation, encryption with probe observation,
//! decryption, levelled addition/multiplication and RNS rescaling.
//!
//! ## Example
//!
//! ```
//! use reveal_ckks::{encrypt, decrypt, keygen, CkksContext, Complex};
//! use reveal_math::primes::ntt_primes;
//! use rand::SeedableRng;
//!
//! let n = 32;
//! let q0 = ntt_primes(50, 2 * n as u64, 1)?.remove(0);
//! let q1 = ntt_primes(30, 2 * n as u64, 1)?.remove(0);
//! let ctx = CkksContext::new(n, vec![q0, q1], 1u64 << 30)?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let (sk, pk) = keygen(&ctx, &mut rng);
//!
//! let slots: Vec<Complex> = (0..16).map(|i| Complex::from(i as f64 * 0.5)).collect();
//! let ct = encrypt(&ctx, &pk, &slots, &mut rng)?;
//! let back = decrypt(&ctx, &sk, &ct)?;
//! assert!((back[3].re - 1.5).abs() < 1e-3);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod complex;
pub mod encoder;
pub mod scheme;

pub use complex::Complex;
pub use encoder::{CkksEncoder, EncodeError};
pub use scheme::{
    add, decrypt, encrypt, encrypt_observed, keygen, multiply, rescale, CkksCiphertext,
    CkksContext, CkksError, CkksPublicKey, CkksSecretKey, CkksWitness,
};
