//! The CKKS encoder: canonical embedding between complex slot vectors and
//! integer polynomials.
//!
//! A real polynomial `m ∈ R = Z[X]/(X^n + 1)` is evaluated at the primitive
//! `2n`-th roots of unity `ζ^{2j+1}`; conjugate symmetry leaves `n/2`
//! independent complex *slots*. Encoding inverts that map, scales by Δ and
//! rounds; decoding evaluates and divides by Δ. The reference `O(n²)`
//! transform keeps the numerics obvious (n ≤ 4096 in our experiments).

use crate::complex::Complex;
use std::fmt;

/// Errors from encoding.
#[derive(Debug, Clone, PartialEq)]
pub enum EncodeError {
    /// Slot count must be `n / 2`.
    WrongSlotCount { got: usize, expected: usize },
    /// A coefficient overflowed the representable range after scaling.
    CoefficientOverflow { coefficient: usize, value: f64 },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::WrongSlotCount { got, expected } => {
                write!(f, "expected {expected} slots, got {got}")
            }
            EncodeError::CoefficientOverflow { coefficient, value } => {
                write!(
                    f,
                    "scaled coefficient {coefficient} = {value} overflows i64"
                )
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// Canonical-embedding encoder for ring degree `n` and scale Δ.
///
/// # Examples
///
/// ```
/// use reveal_ckks::CkksEncoder;
/// let encoder = CkksEncoder::new(16, 1u64 << 20);
/// let slots: Vec<f64> = (0..8).map(|i| i as f64 * 0.25).collect();
/// let coeffs = encoder.encode_real(&slots)?;
/// let back = encoder.decode_real(&coeffs);
/// for (a, b) in slots.iter().zip(&back) {
///     assert!((a - b).abs() < 1e-4);
/// }
/// # Ok::<(), reveal_ckks::EncodeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CkksEncoder {
    n: usize,
    scale: f64,
    /// ζ^{(2j+1)k} for the evaluation points, row j, column k.
    roots: Vec<Vec<Complex>>,
}

impl CkksEncoder {
    /// Creates an encoder for power-of-two degree `n ≥ 4` and scale Δ.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two ≥ 4 or the scale is zero.
    pub fn new(n: usize, scale: u64) -> Self {
        assert!(
            n >= 4 && n.is_power_of_two(),
            "degree must be a power of two >= 4"
        );
        assert!(scale > 0, "scale must be positive");
        let half = n / 2;
        // Evaluation points: ζ^{2j+1}, j in [0, n/2): pairwise non-conjugate.
        let base = std::f64::consts::PI / n as f64; // angle of ζ = e^{iπ/n}
        let roots = (0..half)
            .map(|j| {
                let angle = base * (2 * j + 1) as f64;
                (0..n)
                    .map(|k| Complex::from_angle(angle * k as f64))
                    .collect()
            })
            .collect();
        Self {
            n,
            scale: scale as f64,
            roots,
        }
    }

    /// Ring degree.
    pub fn degree(&self) -> usize {
        self.n
    }

    /// Number of complex slots (`n / 2`).
    pub fn slot_count(&self) -> usize {
        self.n / 2
    }

    /// The scale Δ.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Encodes complex slots into integer (centered) coefficients.
    ///
    /// # Errors
    ///
    /// Fails on wrong slot count or coefficient overflow.
    pub fn encode(&self, slots: &[Complex]) -> Result<Vec<i64>, EncodeError> {
        let half = self.slot_count();
        if slots.len() != half {
            return Err(EncodeError::WrongSlotCount {
                got: slots.len(),
                expected: half,
            });
        }
        // σ^{-1}: m_k = (1/n) Σ_j [ z_j · conj(ζ^{(2j+1)k}) + conj(z_j) · ζ^{(2j+1)k} ]
        //             = (2/n) Σ_j Re( z_j · conj(ζ^{(2j+1)k}) ).
        let mut coeffs = Vec::with_capacity(self.n);
        for k in 0..self.n {
            let mut acc = 0.0;
            for (j, z) in slots.iter().enumerate() {
                let w = self.roots[j][k];
                acc += z.re * w.re + z.im * w.im; // Re(z · conj(w))
            }
            let value = acc * 2.0 / self.n as f64 * self.scale;
            if !value.is_finite() || value.abs() >= i64::MAX as f64 / 4.0 {
                return Err(EncodeError::CoefficientOverflow {
                    coefficient: k,
                    value,
                });
            }
            coeffs.push(value.round() as i64);
        }
        Ok(coeffs)
    }

    /// Decodes centered coefficients back into complex slots.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != n`.
    pub fn decode(&self, coeffs: &[i64]) -> Vec<Complex> {
        self.decode_scaled(coeffs, self.scale)
    }

    /// Decodes with an explicit scale (needed after multiplications, where
    /// the effective scale is Δ² or a rescaled value).
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != n`.
    pub fn decode_scaled(&self, coeffs: &[i64], scale: f64) -> Vec<Complex> {
        assert_eq!(coeffs.len(), self.n, "coefficient count must equal n");
        (0..self.slot_count())
            .map(|j| {
                let mut acc = Complex::ZERO;
                for (k, &c) in coeffs.iter().enumerate() {
                    acc = acc + self.roots[j][k].scale(c as f64);
                }
                acc.scale(1.0 / scale)
            })
            .collect()
    }

    /// Convenience: encodes real slots.
    ///
    /// # Errors
    ///
    /// Same as [`CkksEncoder::encode`].
    pub fn encode_real(&self, slots: &[f64]) -> Result<Vec<i64>, EncodeError> {
        let complex: Vec<Complex> = slots.iter().map(|&x| Complex::from(x)).collect();
        self.encode(&complex)
    }

    /// Convenience: decodes to the real parts of the slots.
    pub fn decode_real(&self, coeffs: &[i64]) -> Vec<f64> {
        self.decode(coeffs).into_iter().map(|z| z.re).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn encoder(n: usize) -> CkksEncoder {
        CkksEncoder::new(n, 1u64 << 24)
    }

    #[test]
    fn roundtrip_real_slots() {
        let e = encoder(32);
        let slots: Vec<f64> = (0..16).map(|i| (i as f64 - 8.0) * 0.37).collect();
        let coeffs = e.encode_real(&slots).unwrap();
        let back = e.decode_real(&coeffs);
        for (a, b) in slots.iter().zip(&back) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn roundtrip_complex_slots() {
        let e = encoder(16);
        let slots: Vec<Complex> = (0..8)
            .map(|i| Complex::new(i as f64 * 0.5, -(i as f64) * 0.25 + 1.0))
            .collect();
        let coeffs = e.encode(&slots).unwrap();
        let back = e.decode(&coeffs);
        for (a, b) in slots.iter().zip(&back) {
            assert!((*a - *b).abs() < 1e-5);
        }
    }

    #[test]
    fn encoding_is_additively_homomorphic() {
        let e = encoder(16);
        let a: Vec<f64> = (0..8).map(|i| i as f64 * 0.1).collect();
        let b: Vec<f64> = (0..8).map(|i| 2.0 - i as f64 * 0.2).collect();
        let ca = e.encode_real(&a).unwrap();
        let cb = e.encode_real(&b).unwrap();
        let sum: Vec<i64> = ca.iter().zip(&cb).map(|(x, y)| x + y).collect();
        let decoded = e.decode_real(&sum);
        for i in 0..8 {
            assert!((decoded[i] - (a[i] + b[i])).abs() < 1e-4);
        }
    }

    #[test]
    fn negacyclic_product_multiplies_slots() {
        // The whole point of the embedding: polynomial multiplication in R
        // is slotwise multiplication (at scale Δ²).
        let e = encoder(16);
        let a: Vec<f64> = (0..8).map(|i| 0.5 + i as f64 * 0.1).collect();
        let b: Vec<f64> = (0..8).map(|i| 1.5 - i as f64 * 0.1).collect();
        let ca = e.encode_real(&a).unwrap();
        let cb = e.encode_real(&b).unwrap();
        // Integer negacyclic convolution.
        let n = 16usize;
        let mut prod = vec![0i128; n];
        for i in 0..n {
            for j in 0..n {
                let p = ca[i] as i128 * cb[j] as i128;
                if i + j < n {
                    prod[i + j] += p;
                } else {
                    prod[i + j - n] -= p;
                }
            }
        }
        let prod64: Vec<i64> = prod.iter().map(|&x| x as i64).collect();
        let decoded = e.decode_scaled(&prod64, e.scale() * e.scale());
        for i in 0..8 {
            assert!(
                (decoded[i].re - a[i] * b[i]).abs() < 1e-3,
                "slot {i}: {} vs {}",
                decoded[i].re,
                a[i] * b[i]
            );
        }
    }

    #[test]
    fn rejects_wrong_slot_count() {
        let e = encoder(16);
        assert!(matches!(
            e.encode_real(&[1.0, 2.0]),
            Err(EncodeError::WrongSlotCount {
                got: 2,
                expected: 8
            })
        ));
    }

    #[test]
    fn bigger_scale_means_more_precision() {
        let slots: Vec<f64> = (0..8).map(|i| (i as f64).sin()).collect();
        let err_at = |bits: u32| -> f64 {
            let e = CkksEncoder::new(16, 1u64 << bits);
            let coeffs = e.encode_real(&slots).unwrap();
            let back = e.decode_real(&coeffs);
            slots
                .iter()
                .zip(&back)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max)
        };
        assert!(err_at(30) < err_at(12) / 10.0);
    }

    proptest! {
        #[test]
        fn prop_roundtrip_bounded_error(
            slots in proptest::collection::vec(-10.0f64..10.0, 8),
        ) {
            let e = CkksEncoder::new(16, 1u64 << 28);
            let coeffs = e.encode_real(&slots).unwrap();
            let back = e.decode_real(&coeffs);
            for (a, b) in slots.iter().zip(&back) {
                prop_assert!((a - b).abs() < 1e-6);
            }
        }
    }
}
