#![forbid(unsafe_code)]

//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Implements the subset of the 0.5 API used by `reveal-bench`:
//! [`Criterion::bench_function`], [`Criterion::bench_with_input`],
//! [`Criterion::benchmark_group`], [`BenchmarkId`], [`black_box`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Instead of criterion's statistical pipeline, each benchmark is warmed up
//! briefly and then timed over an adaptive number of iterations; the median
//! per-iteration wall time is printed. Good enough for relative comparisons
//! in an offline container, and it keeps `cargo bench` runnable.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, re-exported for bench code.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier composed of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds `name/param`.
    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{name}/{param}"),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId {
            name: param.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Times one closure; see [`Bencher::iter`].
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Option<Duration>,
    iters: u64,
}

impl Bencher {
    /// Runs `f` repeatedly and records the median per-iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and calibration: aim for ~20 ms of measured work.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(50));
        let target = Duration::from_millis(20);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        let mut samples = Vec::with_capacity(5);
        for _ in 0..5 {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples.push(start.elapsed() / iters as u32);
        }
        samples.sort_unstable();
        self.elapsed = Some(samples[samples.len() / 2]);
        self.iters = iters;
    }
}

fn report(label: &str, bencher: &Bencher) {
    match bencher.elapsed {
        Some(t) => println!(
            "bench: {label:<48} {t:>12.2?}/iter  ({} iters)",
            bencher.iters
        ),
        None => println!("bench: {label:<48} (no measurement)"),
    }
}

/// The top-level harness handle passed to benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        report(id, &b);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
        }
    }
}

/// A named group of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b);
        self
    }

    /// Benchmarks `f` with an input value under `group/id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &b);
        self
    }

    /// Accepted for API compatibility; the shim sizes runs adaptively.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::default();
        b.iter(|| black_box(3u64).wrapping_mul(7));
        assert!(b.elapsed.is_some());
        assert!(b.iters >= 1);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        c.bench_function("direct", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("group");
        group.sample_size(10);
        group.bench_function("inner", |b| b.iter(|| black_box(2 * 2)));
        group.bench_with_input(BenchmarkId::new("param", 4), &4u32, |b, &n| {
            b.iter(|| black_box(n).wrapping_add(1))
        });
        group.finish();
    }
}
