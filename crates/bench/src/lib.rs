// Generator binaries must fail with a message naming the broken stage,
// not a bare unwrap panic; tests keep their unwraps.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
#![forbid(unsafe_code)]

//! # reveal-bench
//!
//! Shared harness code for the table/figure generator binaries and the
//! criterion benchmarks. Every table and figure of the paper has a dedicated
//! binary (see `src/bin/`); `cargo bench` runs the performance suites.
//!
//! Scale control: generators default to a *paper-shaped but tractable*
//! workload and honour two environment variables:
//!
//! - `REVEAL_QUICK=1` — shrink everything for smoke runs;
//! - `REVEAL_FULL=1` — the paper's full scale (220 000 profiling windows,
//!   25 000 attack windows).

use rand::rngs::StdRng;
use rand::SeedableRng;
use reveal_attack::{AttackConfig, Device, TrainedAttack};
use reveal_rv32::power::PowerModelConfig;

/// The paper's coefficient modulus.
pub const PAPER_Q: u64 = 132120577;
/// The paper's ring degree.
pub const PAPER_N: usize = 1024;

/// Workload scale of a generator run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Smoke-test scale (CI friendly).
    Quick,
    /// Default: paper-shaped, minutes not hours.
    Standard,
    /// The paper's full trace counts.
    Full,
}

impl Scale {
    /// Reads the scale from the environment.
    pub fn from_env() -> Self {
        if std::env::var_os("REVEAL_FULL").is_some() {
            Scale::Full
        } else if std::env::var_os("REVEAL_QUICK").is_some() {
            Scale::Quick
        } else {
            Scale::Standard
        }
    }

    /// `(profiling_runs, attack_runs, ring_degree)` for attack experiments.
    ///
    /// One run of degree `n` yields `n` labelled windows, so Standard at
    /// n = 1024 gives ≈ 60k profiling windows; Full reproduces the paper's
    /// 220 000 / 25 000 split.
    pub fn attack_workload(self) -> (usize, usize, usize) {
        match self {
            Scale::Quick => (16, 4, 64),
            Scale::Standard => (60, 12, PAPER_N),
            Scale::Full => (215, 25, PAPER_N),
        }
    }
}

/// The paper's device at a given ring degree and noise level.
///
/// # Panics
///
/// Panics when the kernel cannot be built (programming error).
pub fn paper_device(n: usize, noise_sigma: f64) -> Device {
    Device::new(
        n,
        &[PAPER_Q],
        PowerModelConfig::default().with_noise_sigma(noise_sigma),
    )
    .expect("paper device is well-formed")
}

/// Profiles a fresh attacker at the given scale.
///
/// # Panics
///
/// Panics when profiling fails (programming error at nominal settings).
pub fn train_attacker(device: &Device, runs: usize, seed: u64) -> TrainedAttack {
    let mut rng = StdRng::seed_from_u64(seed);
    TrainedAttack::profile(device, runs, &AttackConfig::default(), &mut rng)
        .expect("profiling succeeds at nominal settings")
}

/// Writes a generator artefact under `target/reveal/` and reports the path.
///
/// # Panics
///
/// Panics on I/O errors (generator binaries want loud failures).
pub fn write_artifact(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = std::path::Path::new("target").join("reveal");
    std::fs::create_dir_all(&dir).expect("create artefact directory");
    let path = dir.join(name);
    std::fs::write(&path, contents).expect("write artefact");
    println!("[artifact] {}", path.display());
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        let (pq, aq, _) = Scale::Quick.attack_workload();
        let (ps, as_, _) = Scale::Standard.attack_workload();
        let (pf, af, _) = Scale::Full.attack_workload();
        assert!(pq < ps && ps < pf);
        assert!(aq < as_ && as_ < af);
        // Full reproduces the paper's 220k/25k windows.
        assert_eq!(pf * PAPER_N, 220_160);
        assert_eq!(af * PAPER_N, 25_600);
    }

    #[test]
    fn device_and_training_smoke() {
        let device = paper_device(16, 0.05);
        let attack = train_attacker(&device, 10, 1);
        assert!(attack.profiling_windows() > 0);
    }
}
