// Generator binaries must fail with a message naming the broken stage,
// not a bare unwrap panic; tests keep their unwraps.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
//! **Figure 3** generator: (a) a full-trace portion covering three
//! coefficient samplings (noise > 0, < 0, = 0) with the distribution-call
//! peaks visible, and (b) the three branch sub-traces whose distinct power
//! patterns expose the taken branch.
//!
//! Run with `cargo run --release -p reveal-bench --bin fig3_traces`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use reveal_attack::{extract_ladder_windows, AttackConfig, Device};
use reveal_bench::{write_artifact, PAPER_Q};
use reveal_rv32::power::PowerModelConfig;
use reveal_trace::export::{ascii_plot, to_csv, to_csv_multi};
use reveal_trace::segment::{find_bursts, SegmentConfig};

fn main() {
    // Three coefficients with the three signs, exactly like the figure.
    // A fourth dummy coefficient ensures the zero window has a successor
    // burst (on the real device the encryption continues anyway).
    let values = [5i64, -3, 0, 1];
    let device = Device::new(4, &[PAPER_Q], PowerModelConfig::default()).expect("device");
    let mut rng = StdRng::seed_from_u64(2022);
    let capture = device.capture_chosen(&values, &mut rng).expect("capture");
    let samples = &capture.run.capture.samples;

    println!("=== Fig. 3(a): full power trace, three coefficient samplings ===");
    println!("{}", ascii_plot(samples, 110, 12));
    let bursts = find_bursts(samples, &SegmentConfig::default()).expect("burst detection");
    println!(
        "distribution-call peaks found at sample offsets: {:?}",
        bursts.iter().map(|b| b.0).collect::<Vec<_>>()
    );
    assert!(
        bursts.len() >= 4,
        "all coefficient peaks must be distinguishable"
    );
    write_artifact(
        "fig3a_full_trace.csv",
        &to_csv(samples, Some("sample,power")),
    );

    println!("\n=== Fig. 3(b): per-branch sub-traces (noise > 0, < 0, = 0) ===");
    let config = AttackConfig::default();
    let windows = extract_ladder_windows(samples, &config).expect("segmentation");
    assert_eq!(windows.len(), 4);
    let names = ["noise_positive", "noise_negative", "noise_zero"];
    for (name, window) in names.iter().zip(&windows) {
        println!("--- {name} ---");
        println!("{}", ascii_plot(window, 96, 7));
    }
    let csv = to_csv_multi(&[
        (names[0], windows[0].as_slice()),
        (names[1], windows[1].as_slice()),
        (names[2], windows[2].as_slice()),
    ]);
    write_artifact("fig3b_branch_subtraces.csv", &csv);

    // The quantitative claim behind the figure: the three sub-traces are
    // pairwise distinguishable (here via mean absolute difference well above
    // the noise level).
    let mad = |a: &[f64], b: &[f64]| -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>() / a.len() as f64
    };
    let d_pn = mad(&windows[0], &windows[1]);
    let d_pz = mad(&windows[0], &windows[2]);
    let d_nz = mad(&windows[1], &windows[2]);
    println!(
        "pairwise mean |Δpower|: pos/neg {d_pn:.3}, pos/zero {d_pz:.3}, neg/zero {d_nz:.3} \
         (noise σ = {:.3})",
        device.power_config().noise_sigma
    );
    assert!(
        d_pn > 0.2 && d_pz > 0.2 && d_nz > 0.2,
        "branches must separate"
    );
    println!("=> the taken branch is identifiable from a single trace (vulnerability 1)");
}
