// Generator binaries must fail with a message naming the broken stage,
// not a bare unwrap panic; tests keep their unwraps.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
//! **Table II** generator: guessing probabilities derived from selected
//! measurements — the per-secret softmax rows (with "centered" mean and
//! "variance" columns) that the LWE-with-hints framework consumes as
//! perfect/approximate hints.
//!
//! Run with `cargo run --release -p reveal-bench --bin table2_probabilities`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use reveal_bench::{paper_device, train_attacker, Scale};
use reveal_hints::Posterior;
use std::collections::BTreeMap;

fn main() {
    let scale = Scale::from_env();
    let (profile_runs, attack_runs, n) = scale.attack_workload();
    println!("Table II: guessing probabilities from selected measurements ({scale:?}, n = {n})\n");
    let device = paper_device(n, 0.05);
    let attack = train_attacker(&device, profile_runs, 2);

    // Collect one representative posterior per secret value: like the
    // framework, we select measurements for the generated secrets and read
    // off the probability tables.
    let mut rng = StdRng::seed_from_u64(4242);
    let mut per_secret: BTreeMap<i64, Vec<Posterior>> = BTreeMap::new();
    for _ in 0..attack_runs {
        let capture = device.capture_fresh(&mut rng).expect("capture");
        let Ok(result) = attack.attack_trace_expecting(&capture.run.capture.samples, n) else {
            continue;
        };
        for (est, &truth) in result.coefficients.iter().zip(&capture.values) {
            if let Ok(p) = Posterior::new(est.probabilities.clone()) {
                per_secret.entry(truth).or_default().push(p);
            }
        }
    }

    // Average the probability tables per secret over the -2..=2 view
    // (the paper's "more frequently observed" interval).
    println!(
        "{:>7} | {:>9} {:>9} {:>9} {:>9} {:>9} | {:>9} {:>10}",
        "secret", "-2", "-1", "0", "1", "2", "centered", "variance"
    );
    println!("{}", "-".repeat(88));
    for secret in [0i64, 1, -1, 2, -2] {
        let Some(list) = per_secret.get(&secret) else {
            continue;
        };
        let avg_prob = |v: i64| -> f64 {
            list.iter()
                .map(|p| {
                    p.entries()
                        .iter()
                        .find(|(val, _)| *val == v)
                        .map(|(_, pr)| *pr)
                        .unwrap_or(0.0)
                })
                .sum::<f64>()
                / list.len() as f64
        };
        let centered: f64 = list.iter().map(Posterior::mean).sum::<f64>() / list.len() as f64;
        let variance: f64 = list.iter().map(Posterior::variance).sum::<f64>() / list.len() as f64;
        let fmt = |p: f64| -> String {
            if p > 1.0 - 1e-9 {
                "≈1".into()
            } else if p < 1e-12 {
                "0".into()
            } else if p < 1e-3 {
                format!("{p:.1e}")
            } else {
                format!("{p:.4}")
            }
        };
        println!(
            "{:>7} | {:>9} {:>9} {:>9} {:>9} {:>9} | {:>9.3} {:>10.3e}",
            secret,
            fmt(avg_prob(-2)),
            fmt(avg_prob(-1)),
            fmt(avg_prob(0)),
            fmt(avg_prob(1)),
            fmt(avg_prob(2)),
            centered,
            variance
        );
    }

    // The paper's observations: correct guesses sit at probability ≈ 1 for
    // the well-separated secrets (0, negatives), so the framework selects
    // them as perfect hints.
    let zeros = per_secret.get(&0).map(Vec::as_slice).unwrap_or(&[]);
    let perfect_zero = zeros.iter().filter(|p| p.is_perfect(1e-9)).count();
    println!(
        "\nzero-secret posteriors flagged perfect: {perfect_zero}/{} (paper: all)",
        zeros.len()
    );
    let neg1 = per_secret.get(&-1).map(Vec::as_slice).unwrap_or(&[]);
    let confident_neg = neg1
        .iter()
        .filter(|p| p.mode() == -1 && p.confidence() > 0.9)
        .count();
    println!(
        "secret -1 classified -1 with confidence > 0.9: {confident_neg}/{}",
        neg1.len()
    );
}
