// Generator binaries must fail with a message naming the broken stage,
// not a bare unwrap panic; tests keep their unwraps.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
//! **Serve-mode benchmark**: the attack-as-a-service supervisor
//! (`reveal-serve`) fed the same workload as `bench_pipeline`, measuring
//! end-to-end throughput and latency while asserting the service's three
//! operational contracts:
//!
//! 1. **Bit-identity** — a zero-fault served stream emits the one-shot
//!    pipeline's hint counts and bikz bit-for-bit (`f64::to_bits`
//!    equality, 242.02 at standard scale — the `bench_pipeline` number),
//!    at worker count 1 and at the machine's full thread count, and both
//!    runs' hint stores encode identically. The zero-fault phase disables
//!    the robust per-window suspicion screens (MAD z-tests with a ~0.3%
//!    false-positive rate on clean paper-scale captures, which would
//!    conservatively demote a few hints) so the measurement isolates the
//!    claim under test: the *service machinery* — framing, reassembly,
//!    queues, scoring — adds zero numerical perturbation. The screened
//!    one-shot bikz and its suspect count are recorded alongside.
//! 2. **Crash recovery** — killing the supervisor mid-stream and resuming
//!    from the periodic checkpoint converges to the same encoded snapshot
//!    as the uninterrupted run.
//! 3. **Bounded degradation** — a chaos sweep of frame-fault schedules
//!    (truncation, duplication, reordering, disconnects) never overflows a
//!    bounded queue or wedges shutdown; benign schedules (no data loss)
//!    still produce the exact clean answer.
//!
//! Emits `BENCH_serve.json` (schema v1) under `target/reveal/` with the
//! identity verdicts, per-worker-count throughput and p50/p95/p99 latency,
//! and one row per chaos intensity. A committed copy lives in
//! `docs/results/`.
//!
//! Run with `cargo run --release -p reveal-bench --bin bench_serve`
//! (honours `REVEAL_QUICK` / `REVEAL_FULL` and `REVEAL_THREADS`).

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;
use reveal_attack::{
    calibrate, report_full_attack, report_robust, AttackConfig, Capture, RobustAttack,
    TrainedAttack,
};
use reveal_bench::{paper_device, write_artifact, Scale};
use reveal_chaos::{FrameChunk, FramePlan};
use reveal_hints::{HintPolicy, LweParameters};
use reveal_serve::{
    frame_stream, KeyId, ServeConfig, ShardedAccumulator, Snapshot, Supervisor, TraceFrame,
};
use reveal_trace::sanity::percentile;

/// Same master seed as `bench_pipeline`, so the standard-scale served bikz
/// reproduces that bench's reported value bit for bit.
const MASTER_SEED: u64 = 0x5EA1_BE9C;
/// Wire frame size; a paper-scale trace becomes a few dozen frames.
const FRAME_LEN: usize = 8192;
/// Victim keys the captures are dealt across (round-robin).
const VICTIMS: u64 = 3;

fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Quick => "quick",
        Scale::Standard => "standard",
        Scale::Full => "full",
    }
}

/// `(key, trace_seq)` for the i-th capture: dealt round-robin so the
/// sharded store and the scorer's per-key reorder buffers all get traffic.
fn layout(i: usize) -> (KeyId, u64) {
    (1 + (i as u64 % VICTIMS), i as u64 / VICTIMS)
}

/// The service configuration every run starts from.
fn base_config(degree: usize, calibration: reveal_attack::Calibration) -> ServeConfig {
    let mut cfg = ServeConfig::new(
        LweParameters::seal_128_paper(),
        degree,
        HintPolicy::seal_paper(),
    );
    cfg.calibration = Some(calibration);
    // Paper-scale traces are ~10^5 samples; give reassembly room for the
    // truncated-stream residue the chaos rows leave behind.
    cfg.reassembly.max_buffered_samples = 1 << 26;
    cfg.reassembly.stream_deadline = Duration::from_secs(30);
    cfg
}

/// Disables the per-window suspicion screens (every z threshold and
/// tolerance to ∞), leaving segmentation retry, variance inflation, and
/// the hint ladder intact — the zero-fault phase's "service overhead only"
/// analysis configuration.
fn disable_screens(robust: &mut reveal_attack::RobustConfig) {
    robust.glitch_z = f64::INFINITY;
    robust.score_z = f64::INFINITY;
    robust.length_z = f64::INFINITY;
    robust.gain_tolerance = f64::INFINITY;
}

/// The chaos phase's ground truth: the captures folded through the fully
/// screened robust pipeline + accumulator directly, bypassing the service.
fn folded_reference(attack: &TrainedAttack, cfg: &ServeConfig, captures: &[Capture]) -> String {
    let mut robust = RobustAttack::new(attack).with_config(cfg.robust.clone());
    if let Some(cal) = cfg.calibration {
        robust = robust.with_calibration(cal);
    }
    let mut acc = ShardedAccumulator::new(
        cfg.params,
        cfg.coefficients,
        cfg.shards,
        cfg.quarantine_threshold,
    );
    for (i, cap) in captures.iter().enumerate() {
        let (key, seq) = layout(i);
        let result = robust
            .attack_trace(&cap.run.capture.samples, cfg.coefficients, &cfg.policy)
            .expect("clean capture analyzes");
        acc.apply_success(key, seq, &result)
            .expect("reference fold");
    }
    Snapshot::capture(&acc, cfg.quarantine_threshold).encode()
}

/// Everything one served run reports.
struct ServedRun {
    snapshot: String,
    analyzed: u64,
    failed: u64,
    retries: u64,
    elapsed_ms: f64,
    latencies_ms: Vec<f64>,
    queue_hw: [(String, u64, u64); 3],
    queues_bounded: bool,
    first_update: Option<(u64, usize, usize, usize)>,
}

/// Serves `captures` through a fresh supervisor and drains it gracefully.
/// `await_all` polls until every trace is scored before snapshotting (only
/// valid when every stream terminates, i.e. no data was lost).
fn serve(
    attack: &TrainedAttack,
    cfg: ServeConfig,
    frames: Vec<TraceFrame>,
    expect_scored: Option<u64>,
) -> ServedRun {
    let sup = Supervisor::start(attack.clone(), cfg);
    let handle = sup.handle();
    let start = Instant::now();
    for frame in frames {
        handle.submit(frame).expect("block-policy submit");
    }
    if let Some(want) = expect_scored {
        let deadline = Instant::now() + Duration::from_secs(600);
        loop {
            let m = sup.metrics();
            if m.traces_analyzed + m.traces_failed >= want {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "service stalled before scoring {want} traces"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    let snapshot = sup.snapshot().encode();
    let mut updates = sup.drain_updates();
    let summary = sup.shutdown();
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
    updates.extend(summary.updates);

    let m = &summary.metrics;
    let queue_hw = [
        (
            "ingest".to_string(),
            m.ingest_queue.high_water as u64,
            m.ingest_queue.capacity as u64,
        ),
        (
            "work".to_string(),
            m.work_queue.high_water as u64,
            m.work_queue.capacity as u64,
        ),
        (
            "result".to_string(),
            m.result_queue.high_water as u64,
            m.result_queue.capacity as u64,
        ),
    ];
    let queues_bounded = [&m.ingest_queue, &m.work_queue, &m.result_queue]
        .iter()
        .all(|q| q.high_water <= q.capacity && q.depth == 0);
    let first_update = updates
        .iter()
        .find(|u| u.key == 1 && u.trace_seq == 0 && u.failed.is_none())
        .map(|u| (u.bikz.to_bits(), u.perfect, u.approximate, u.skipped));
    ServedRun {
        snapshot,
        analyzed: m.traces_analyzed,
        failed: m.traces_failed,
        retries: m.retries,
        elapsed_ms,
        latencies_ms: summary.latencies_ms,
        queue_hw,
        queues_bounded,
        first_update,
    }
}

fn wire_frames(captures: &[Capture]) -> Vec<TraceFrame> {
    captures
        .iter()
        .enumerate()
        .flat_map(|(i, cap)| {
            let (key, seq) = layout(i);
            frame_stream(key, seq, &cap.run.capture.samples, FRAME_LEN)
        })
        .collect()
}

/// One chaos row: every stream scrambled by `FramePlan::standard_sweep`.
struct ChaosRow {
    intensity: f64,
    seed: u64,
    data_lost: bool,
    frames_submitted: usize,
    analyzed: u64,
    failed: u64,
    retries: u64,
    elapsed_ms: f64,
    p50: f64,
    p95: f64,
    p99: f64,
    queues_bounded: bool,
    benign_exact: Option<bool>,
}

fn chaos_row(
    attack: &TrainedAttack,
    cfg: &ServeConfig,
    captures: &[Capture],
    reference: &str,
    seed: u64,
    intensity: f64,
) -> ChaosRow {
    let plan = FramePlan::standard_sweep(seed, intensity);
    let mut frames = Vec::new();
    let mut any_data_lost = false;
    for (i, cap) in captures.iter().enumerate() {
        let (key, seq) = layout(i);
        let chunks: Vec<FrameChunk> = frame_stream(key, seq, &cap.run.capture.samples, FRAME_LEN)
            .into_iter()
            .map(|f| FrameChunk {
                seq: f.frame_seq,
                last: f.last,
                samples: f.samples,
            })
            .collect();
        let scrambled = plan.scramble(i as u64, chunks);
        any_data_lost |= scrambled.log.data_lost;
        frames.extend(scrambled.frames.into_iter().map(|chunk| TraceFrame {
            key,
            trace_seq: seq,
            frame_seq: chunk.seq,
            last: chunk.last,
            samples: chunk.samples,
        }));
    }
    let frames_submitted = frames.len();
    // Benign schedules terminate every stream, so wait for all of them to
    // score before snapshotting; lossy ones rely on the shutdown drain.
    let expect = (!any_data_lost).then_some(captures.len() as u64);
    let run = serve(attack, cfg.clone(), frames, expect);
    let benign_exact = (!any_data_lost).then(|| run.snapshot == reference);
    ChaosRow {
        intensity,
        seed,
        data_lost: any_data_lost,
        frames_submitted,
        analyzed: run.analyzed,
        failed: run.failed,
        retries: run.retries,
        elapsed_ms: run.elapsed_ms,
        p50: percentile(&run.latencies_ms, 50.0),
        p95: percentile(&run.latencies_ms, 95.0),
        p99: percentile(&run.latencies_ms, 99.0),
        queues_bounded: run.queues_bounded,
        benign_exact,
    }
}

#[allow(clippy::too_many_lines)]
fn main() {
    let scale = Scale::from_env();
    let (profile_runs, attack_runs, degree) = scale.attack_workload();
    let parallel_workers = reveal_par::max_threads().max(2);
    let device = paper_device(degree, 0.05);
    let config = AttackConfig::default();

    println!(
        "serve bench: scale={} n={degree} profile_runs={profile_runs} traces={attack_runs} \
         | workers 1 vs {parallel_workers}",
        scale_name(scale)
    );

    let attack = TrainedAttack::profile_seeded(&device, profile_runs, &config, MASTER_SEED)
        .expect("profiling");
    let mut rng = StdRng::seed_from_u64(MASTER_SEED ^ 1);
    let captures: Vec<Capture> = (0..attack_runs)
        .map(|_| device.capture_fresh(&mut rng).expect("capture"))
        .collect();
    let mut cal_rng = StdRng::seed_from_u64(MASTER_SEED ^ 2);
    let clean = device
        .capture_fresh(&mut cal_rng)
        .expect("calibration capture");
    let calibration = calibrate(&clean.run.capture.samples, attack.config()).expect("calibration");
    let cfg = base_config(degree, calibration);

    // One-shot reference: the plain pipeline on the first capture, scored
    // through the same report the paper's tables use.
    let plain = attack
        .attack_trace_expecting(&captures[0].run.capture.samples, degree)
        .expect("one-shot attack");
    let plain_report = report_full_attack(&plain, &cfg.params, &cfg.policy).expect("report");
    println!(
        "  one-shot reference: bikz {:.2} (perfect {}, approximate {}, skipped {})",
        plain_report.with_hints.bikz,
        plain_report.hints.perfect,
        plain_report.hints.approximate,
        plain_report.hints.skipped
    );

    // The fully screened robust one-shot on the same capture, for the
    // record: its conservative demotions are the gap between the service's
    // chaos-phase answer and the plain pipeline.
    let mut screened_robust = RobustAttack::new(&attack).with_config(cfg.robust.clone());
    screened_robust = screened_robust.with_calibration(calibration);
    let screened = screened_robust
        .attack_trace(&captures[0].run.capture.samples, degree, &cfg.policy)
        .expect("screened one-shot");
    let screened_report = report_robust(&screened, &cfg.params).expect("screened report");
    println!(
        "  screened one-shot: bikz {:.2}, {} suspect windows",
        screened_report.with_hints.bikz, screened.diagnostics.suspect_windows
    );

    // Service config for the bit-identity phases: screens off, so every
    // hint decision is exactly the plain pipeline's.
    let mut clean_cfg = cfg.clone();
    disable_screens(&mut clean_cfg.robust);

    // Phase 1: zero-fault serving at both worker counts.
    let mut clean_runs = Vec::new();
    for workers in [1usize, parallel_workers] {
        let mut c = clean_cfg.clone();
        c.workers = workers;
        let run = serve(&attack, c, wire_frames(&captures), Some(attack_runs as u64));
        println!(
            "  zero-fault workers={workers}: {:.1} ms, {:.2} traces/s, \
             latency p50 {:.1} / p95 {:.1} / p99 {:.1} ms",
            run.elapsed_ms,
            run.analyzed as f64 / (run.elapsed_ms / 1e3).max(1e-9),
            percentile(&run.latencies_ms, 50.0),
            percentile(&run.latencies_ms, 95.0),
            percentile(&run.latencies_ms, 99.0),
        );
        clean_runs.push((workers, run));
    }
    let reference_snapshot = clean_runs[0].1.snapshot.clone();
    let first = clean_runs[0]
        .1
        .first_update
        .expect("update for victim 1 trace 0");
    let bit_identity = clean_runs.iter().all(|(_, r)| {
        r.first_update
            == Some((
                plain_report.with_hints.bikz.to_bits(),
                plain_report.hints.perfect,
                plain_report.hints.approximate,
                plain_report.hints.skipped,
            ))
            && r.snapshot == reference_snapshot
            && r.analyzed == attack_runs as u64
            && r.failed == 0
            && r.retries == 0
    });
    println!(
        "  bit-identity vs one-shot pipeline: {bit_identity} (served bikz {:.2})",
        f64::from_bits(first.0)
    );

    // Phase 2: kill mid-stream, restore from the periodic checkpoint,
    // replay the full stream, and require the exact clean snapshot.
    std::fs::create_dir_all("target/reveal").expect("artifact dir");
    let ckpt = std::path::PathBuf::from("target/reveal/bench_serve.ckpt");
    let _ = std::fs::remove_file(&ckpt);
    let restore_start = Instant::now();
    let mut c = clean_cfg.clone();
    c.workers = parallel_workers;
    c.checkpoint_every = 1;
    c.checkpoint_path = Some(ckpt.clone());
    let sup = Supervisor::start(attack.clone(), c.clone());
    let handle = sup.handle();
    let half = captures.len().div_ceil(2);
    for frame in wire_frames(&captures[..half]) {
        handle.submit(frame).expect("submit");
    }
    let deadline = Instant::now() + Duration::from_secs(600);
    while sup.metrics().checkpoints_written == 0 {
        assert!(
            Instant::now() < deadline,
            "no periodic checkpoint before kill"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    sup.kill();
    let snapshot = Snapshot::load(&ckpt).expect("crash left a loadable checkpoint");
    let already: u64 = snapshot
        .victims
        .iter()
        .map(|(_, v)| v.traces_processed)
        .sum();
    let sup = Supervisor::resume(attack.clone(), c, &snapshot).expect("resume");
    for frame in wire_frames(&captures) {
        sup.handle().submit(frame).expect("submit");
    }
    let want = attack_runs as u64 - already;
    let deadline = Instant::now() + Duration::from_secs(600);
    loop {
        let m = sup.metrics();
        if m.traces_analyzed + m.traces_failed >= want {
            break;
        }
        assert!(Instant::now() < deadline, "resume did not catch up");
        std::thread::sleep(Duration::from_millis(5));
    }
    let restored_snapshot = sup.snapshot().encode();
    let restore_summary = sup.shutdown();
    let restore_ms = restore_start.elapsed().as_secs_f64() * 1e3;
    let restore_identity =
        restored_snapshot == reference_snapshot && restore_summary.metrics.traces_failed == 0;
    println!(
        "  kill+restore: scored {already} before crash, replayed to {attack_runs}, \
         bit-identical: {restore_identity} ({restore_ms:.1} ms)"
    );
    let _ = std::fs::remove_file(&ckpt);

    // Phase 3: chaos sweep under tight queues, with the full suspicion
    // screens back on — this is the service as deployed.
    let mut chaos_cfg = cfg.clone();
    chaos_cfg.workers = parallel_workers;
    chaos_cfg.ingest_capacity = 64;
    chaos_cfg.work_capacity = 8;
    chaos_cfg.result_capacity = 16;
    chaos_cfg.gap_limit = 8;
    let chaos_reference = folded_reference(&attack, &chaos_cfg, &captures);
    let rows: Vec<ChaosRow> = [0.0f64, 0.35, 0.7, 1.0]
        .iter()
        .enumerate()
        .map(|(i, &intensity)| {
            let row = chaos_row(
                &attack,
                &chaos_cfg,
                &captures,
                &chaos_reference,
                0x5EA1 + i as u64,
                intensity,
            );
            println!(
                "  chaos intensity {:.2}: {} frames, analyzed {}, failed {}, retries {}, \
                 data_lost {}, {:.1} ms, p99 {:.1} ms, bounded {}{}",
                row.intensity,
                row.frames_submitted,
                row.analyzed,
                row.failed,
                row.retries,
                row.data_lost,
                row.elapsed_ms,
                row.p99,
                row.queues_bounded,
                match row.benign_exact {
                    Some(exact) => format!(", benign_exact {exact}"),
                    None => String::new(),
                }
            );
            row
        })
        .collect();
    let queues_bounded =
        clean_runs.iter().all(|(_, r)| r.queues_bounded) && rows.iter().all(|r| r.queues_bounded);
    let benign_exact = rows.iter().all(|r| r.benign_exact.unwrap_or(true));

    let worker_json: Vec<String> = clean_runs
        .iter()
        .map(|(workers, r)| {
            format!(
                "    {{\"workers\": {}, \"elapsed_ms\": {:.3}, \"traces_per_sec\": {:.3}, \
                 \"latency_ms\": {{\"p50\": {:.3}, \"p95\": {:.3}, \"p99\": {:.3}}}, \
                 \"queue_high_water\": {{{}}}}}",
                workers,
                r.elapsed_ms,
                r.analyzed as f64 / (r.elapsed_ms / 1e3).max(1e-9),
                percentile(&r.latencies_ms, 50.0),
                percentile(&r.latencies_ms, 95.0),
                percentile(&r.latencies_ms, 99.0),
                r.queue_hw
                    .iter()
                    .map(|(name, hw, cap)| format!("\"{name}\": [{hw}, {cap}]"))
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        })
        .collect();
    let row_json: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"intensity\": {:.2}, \"seed\": {}, \"frames_submitted\": {}, \
                 \"data_lost\": {}, \"traces_analyzed\": {}, \"traces_failed\": {}, \
                 \"retries\": {}, \"elapsed_ms\": {:.3}, \
                 \"latency_ms\": {{\"p50\": {:.3}, \"p95\": {:.3}, \"p99\": {:.3}}}, \
                 \"queues_bounded\": {}, \"benign_exact\": {}}}",
                r.intensity,
                r.seed,
                r.frames_submitted,
                r.data_lost,
                r.analyzed,
                r.failed,
                r.retries,
                r.elapsed_ms,
                r.p50,
                r.p95,
                r.p99,
                r.queues_bounded,
                r.benign_exact.map_or("null".to_string(), |b| b.to_string())
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"schema\": \"reveal-bench-serve/v1\",\n  \"scale\": \"{}\",\n  \"ring_degree\": {},\n  \"profile_runs\": {},\n  \"traces\": {},\n  \"victims\": {},\n  \"frame_len\": {},\n  \"one_shot_bikz\": {:.2},\n  \"served_bikz\": {:.2},\n  \"bit_identity\": {},\n  \"zero_fault_screens_disabled\": true,\n  \"screened_one_shot\": {{\"bikz\": {:.2}, \"suspect_windows\": {}}},\n  \"restore\": {{\"scored_before_crash\": {}, \"elapsed_ms\": {:.3}, \"bit_identity\": {}}},\n  \"queues_bounded\": {},\n  \"benign_exact\": {},\n  \"zero_fault\": [\n{}\n  ],\n  \"chaos\": [\n{}\n  ]\n}}\n",
        scale_name(scale),
        degree,
        profile_runs,
        attack_runs,
        VICTIMS,
        FRAME_LEN,
        plain_report.with_hints.bikz,
        f64::from_bits(first.0),
        bit_identity,
        screened_report.with_hints.bikz,
        screened.diagnostics.suspect_windows,
        already,
        restore_ms,
        restore_identity,
        queues_bounded,
        benign_exact,
        worker_json.join(",\n"),
        row_json.join(",\n")
    );
    write_artifact("BENCH_serve.json", &json);

    assert!(
        bit_identity,
        "served zero-fault stream must match the one-shot pipeline bit for bit"
    );
    assert!(
        restore_identity,
        "kill + checkpoint restore must converge bit-identically"
    );
    assert!(
        queues_bounded,
        "every queue must respect its bound and drain at shutdown"
    );
    assert!(
        benign_exact,
        "benign fault schedules must not change the answer"
    );
}
