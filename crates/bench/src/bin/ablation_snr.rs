// Generator binaries must fail with a message naming the broken stage,
// not a bare unwrap panic; tests keep their unwraps.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
//! **Ablation A1**: attack accuracy versus measurement noise (SNR sweep) —
//! the knob a simulated bench has and a physical one does not. Shows where
//! the paper's "100% sign success" regime ends.
//!
//! Run with `cargo run --release -p reveal-bench --bin ablation_snr`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use reveal_attack::{AttackConfig, TrainedAttack};
use reveal_bench::{paper_device, write_artifact, Scale};

fn main() {
    let scale = Scale::from_env();
    let (profile_runs, attack_runs, _) = scale.attack_workload();
    let n = 64; // per-point cost matters in a sweep
    let sigmas = [0.02f64, 0.05, 0.1, 0.2, 0.4, 0.8];
    println!("Ablation: accuracy vs power-model noise σ ({scale:?}, n = {n})\n");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12}",
        "sigma", "sign_acc", "value_acc", "neg_acc", "pos_acc"
    );
    let mut csv = String::from("sigma,sign_acc,value_acc,neg_acc,pos_acc\n");
    for &sigma in &sigmas {
        let device = paper_device(n, sigma);
        let mut rng = StdRng::seed_from_u64(808);
        let Ok(attack) =
            TrainedAttack::profile(&device, profile_runs, &AttackConfig::default(), &mut rng)
        else {
            println!("{sigma:>8.2} profiling failed (segmentation breaks down)");
            continue;
        };
        let (mut sh, mut st) = (0usize, 0usize);
        let (mut vh, mut nh, mut nt, mut ph, mut pt) = (0usize, 0usize, 0usize, 0usize, 0usize);
        for _ in 0..attack_runs.max(6) {
            let cap = device.capture_fresh(&mut rng).expect("capture");
            let Ok(result) = attack.attack_trace_expecting(&cap.run.capture.samples, n) else {
                continue;
            };
            for (est, &truth) in result.coefficients.iter().zip(&cap.values) {
                st += 1;
                sh += (est.sign == truth.signum()) as usize;
                let hit = (est.predicted == truth) as usize;
                vh += hit;
                if truth < 0 {
                    nt += 1;
                    nh += hit;
                } else if truth > 0 {
                    pt += 1;
                    ph += hit;
                }
            }
        }
        if st == 0 {
            println!("{sigma:>8.2} all traces failed segmentation");
            continue;
        }
        let row = (
            sh as f64 / st as f64,
            vh as f64 / st as f64,
            nh as f64 / nt.max(1) as f64,
            ph as f64 / pt.max(1) as f64,
        );
        println!(
            "{:>8.2} {:>11.1}% {:>11.1}% {:>11.1}% {:>11.1}%",
            sigma,
            100.0 * row.0,
            100.0 * row.1,
            100.0 * row.2,
            100.0 * row.3
        );
        csv.push_str(&format!(
            "{sigma},{:.4},{:.4},{:.4},{:.4}\n",
            row.0, row.1, row.2, row.3
        ));
    }
    write_artifact("ablation_snr.csv", &csv);
    println!("\nreading: sign recovery stays perfect well past the value-recovery breakdown —");
    println!("the control-flow leak (vulnerability 1) is far more robust than the data leak.");
}
