// Generator binaries must fail with a message naming the broken stage,
// not a bare unwrap panic; tests keep their unwraps.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
//! **Generality check**: the paper claims the attack "is applicable to all
//! security levels and values of n". Larger SEAL degrees use multi-prime RNS
//! chains, which change the vulnerable ladder's shape: the store loop runs
//! once per modulus (`poly[i + j·n]`), lengthening every window and adding a
//! second value-dependent store. This binary runs the unmodified pipeline
//! against a two-modulus device.
//!
//! Run with `cargo run --release -p reveal-bench --bin multi_modulus_attack`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use reveal_attack::{AttackConfig, Device, TrainedAttack};
use reveal_bench::{write_artifact, Scale};
use reveal_rv32::power::PowerModelConfig;

fn evaluate(moduli: &[u64], ladder_window: usize, scale: Scale, name: &str) -> Option<(f64, f64)> {
    let (profile_runs, attack_runs, _) = scale.attack_workload();
    let n = 64;
    let device = Device::new(
        n,
        moduli,
        PowerModelConfig::default().with_noise_sigma(0.05),
    )
    .expect("device");
    let config = AttackConfig {
        ladder_window,
        ..AttackConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(717);
    let attack = match TrainedAttack::profile(&device, profile_runs, &config, &mut rng) {
        Ok(a) => a,
        Err(e) => {
            println!("{name}: profiling failed ({e})");
            return None;
        }
    };
    let (mut sh, mut vh, mut total) = (0usize, 0usize, 0usize);
    for _ in 0..attack_runs.max(6) {
        let cap = device.capture_fresh(&mut rng).expect("capture");
        let Ok(result) = attack.attack_trace_expecting(&cap.run.capture.samples, n) else {
            continue;
        };
        for (est, &truth) in result.coefficients.iter().zip(&cap.values) {
            total += 1;
            sh += (est.sign == truth.signum()) as usize;
            vh += (est.predicted == truth) as usize;
        }
    }
    if total == 0 {
        return None;
    }
    Some((sh as f64 / total as f64, vh as f64 / total as f64))
}

fn main() {
    let scale = Scale::from_env();
    println!("Multi-modulus generality check (n = 64, {scale:?})\n");
    println!(
        "{:>26} {:>10} {:>10}",
        "coeff_modulus", "sign_acc", "value_acc"
    );
    println!("{}", "-".repeat(50));
    let mut csv = String::from("chain,sign_acc,value_acc\n");
    // Single 27-bit prime (the paper's shape) vs a two-prime chain; the
    // two-modulus ladder is roughly twice as long, so the feature window
    // grows accordingly.
    let cases: [(&str, Vec<u64>, usize); 2] = [
        ("q = 132120577 (k=1)", vec![132120577], 96),
        ("q = 132120577 * 12289 (k=2)", vec![132120577, 12289], 160),
    ];
    let mut rows = Vec::new();
    for (name, moduli, window) in cases {
        if let Some((sign, value)) = evaluate(&moduli, window, scale, name) {
            println!(
                "{:>26} {:>9.1}% {:>9.1}%",
                name,
                100.0 * sign,
                100.0 * value
            );
            csv.push_str(&format!("{name},{sign:.4},{value:.4}\n"));
            rows.push((sign, value));
        }
    }
    write_artifact("multi_modulus_attack.csv", &csv);
    assert_eq!(rows.len(), 2, "both chains must be attackable");
    assert!(rows[1].0 > 0.98, "k=2 sign accuracy {:.3}", rows[1].0);
    assert!(
        rows[1].1 >= rows[0].1 - 0.1,
        "the second store per coefficient should not hurt value recovery"
    );
    println!(
        "\nreading: the attack carries over to multi-prime chains unchanged — \
         each additional modulus adds another value-dependent store, i.e. MORE \
         leakage per coefficient, supporting the paper's claim that the attack \
         applies to every SEAL parameter set."
    );
}
