// Generator binaries must fail with a message naming the broken stage,
// not a bare unwrap panic; tests keep their unwraps.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
//! **Table III** generator: cost of the primal attack with and without the
//! single-trace hints for the SEAL-128 parameter set (q = 132120577,
//! n = 1024, σ = 3.2). This is the paper's headline: 382.25 bikz (≈ 2^128)
//! without hints, 12.2 bikz (≈ 2^4.4) with them — a complete break.
//!
//! Methodology mirrors \[31\] exactly: the attack stage yields per-secret
//! probability tables; the framework then "generates n secret values and
//! selects measurements for those values uniformly at random" and integrates
//! their probability tables into the DBDD instance. The reported bikz is the
//! average over randomized trials (hence fractional, like the paper's 12.2).
//!
//! Run with `cargo run --release -p reveal-bench --bin table3_hints_cost`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reveal_attack::rounded_gaussian_prior;
use reveal_bench::{paper_device, train_attacker, Scale, PAPER_N};
use reveal_hints::{integrate_posteriors, DbddInstance, HintPolicy, LweParameters, Posterior};
use std::collections::BTreeMap;

/// Collects measured posteriors bucketed by the true secret value.
fn measure_posteriors(scale: Scale, seed: u64) -> BTreeMap<i64, Vec<Posterior>> {
    let (profile_runs, attack_runs, n) = scale.attack_workload();
    let device = paper_device(n, 0.05);
    let attack = train_attacker(&device, profile_runs, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xACE);
    let mut buckets: BTreeMap<i64, Vec<Posterior>> = BTreeMap::new();
    for _ in 0..attack_runs {
        let capture = device.capture_fresh(&mut rng).expect("capture");
        let Ok(result) = attack.attack_trace_expecting(&capture.run.capture.samples, n) else {
            continue;
        };
        for (est, &truth) in result.coefficients.iter().zip(&capture.values) {
            if let Ok(p) = Posterior::new(est.probabilities.clone()) {
                buckets.entry(truth).or_default().push(p);
            }
        }
    }
    buckets
}

fn main() {
    let scale = Scale::from_env();
    let params = LweParameters::seal_128_paper();
    let baseline = DbddInstance::from_lwe(&params).estimate();
    let policy = HintPolicy::seal_paper();

    println!("Table III: cost of attack with/without hints, SEAL-128 ({scale:?})\n");
    println!("collecting measured probability tables from single-trace attacks …");
    let buckets = measure_posteriors(scale, 3);
    let measured: usize = buckets.values().map(Vec::len).sum();
    println!(
        "{measured} measurements across {} secret values",
        buckets.len()
    );

    // Framework trials: fresh secrets, random measurement selection.
    let prior = rounded_gaussian_prior(3.19, 41);
    let trials = match scale {
        Scale::Quick => 3,
        Scale::Standard => 8,
        Scale::Full => 20,
    };
    let mut rng = StdRng::seed_from_u64(31337);
    let mut bikz_trials = Vec::new();
    let mut perfect_total = 0usize;
    let mut approx_total = 0usize;
    for _ in 0..trials {
        let mut hinted = DbddInstance::from_lwe(&params);
        let mut posteriors = Vec::with_capacity(PAPER_N);
        for _ in 0..PAPER_N {
            // Generate a secret value from the sampler's distribution.
            let u: f64 = rng.gen();
            let mut acc = 0.0;
            let mut secret = 0i64;
            for &(v, p) in &prior {
                acc += p;
                if acc >= u {
                    secret = v;
                    break;
                }
            }
            // Select a measurement for that value uniformly at random.
            let posterior = match buckets.get(&secret) {
                Some(list) if !list.is_empty() => list[rng.gen_range(0..list.len())].clone(),
                // Values never observed in the attack runs (|v| > 14-ish)
                // would in practice be classified by their sign/extreme
                // templates; treat them as the prior restricted to the sign.
                _ => {
                    let restricted: Vec<(i64, f64)> = prior
                        .iter()
                        .filter(|(v, _)| v.signum() == secret.signum())
                        .copied()
                        .collect();
                    Posterior::new(restricted).expect("valid prior slice")
                }
            };
            posteriors.push(posterior);
        }
        let coords: Vec<usize> = (0..PAPER_N).collect();
        let summary =
            integrate_posteriors(&mut hinted, &coords, &posteriors, &policy).expect("hints");
        perfect_total += summary.perfect;
        approx_total += summary.approximate;
        bikz_trials.push(hinted.estimate().bikz);
    }
    let with_hints = bikz_trials.iter().sum::<f64>() / bikz_trials.len() as f64;
    let with_hints_bits = reveal_hints::bikz_to_bits(with_hints);

    // Third row: Table-II-grade hints. The paper's framework input (its
    // Table II) reports per-coefficient probabilities "very close to 1" for
    // every secret, i.e. every coefficient enters as a perfect hint — that
    // is what produces the 12.2-bikz complete break. Our simulated bench is
    // more conservative for positive coefficients (their Hamming weights
    // collide; see Table I in both the paper and our reproduction), so we
    // report both.
    let mut perfect_inst = DbddInstance::from_lwe(&params);
    for i in 0..PAPER_N {
        perfect_inst.integrate_perfect_hint(i).expect("fresh");
    }
    let table_ii_grade = perfect_inst.estimate();

    println!("\n+--------------------------------------------+-----------+");
    println!("|                                            |  SEAL-128 |");
    println!("+--------------------------------------------+-----------+");
    println!(
        "| Attack without hints (bikz)                | {:>9.2} |",
        baseline.bikz
    );
    println!(
        "| Attack with measured hints (bikz)          | {:>9.2} |",
        with_hints
    );
    println!(
        "| Attack with Table-II-grade hints (bikz)    | {:>9.2} |",
        table_ii_grade.bikz
    );
    println!("+--------------------------------------------+-----------+");
    println!("\npaper reference:  382.25 without hints, 12.2 with hints");
    println!(
        "security level:   2^{:.1} -> 2^{:.1} (measured) / 2^{:.1} (Table-II-grade; paper: 2^4.4)",
        baseline.bits, with_hints_bits, table_ii_grade.bits
    );
    println!(
        "hints per trial (avg): {:.0} perfect, {:.0} approximate of {PAPER_N} coefficients",
        perfect_total as f64 / trials as f64,
        approx_total as f64 / trials as f64
    );
    println!(
        "\nnote: the paper's Table II assigns probability ≈1 to every selected\n         measurement, turning all coefficients into perfect hints (-> 12.2 bikz);\n         our leakage model keeps the positive-branch Hamming-weight collisions\n         its own Table I exhibits, so the measured row is more conservative."
    );

    assert!(
        (baseline.bikz - 382.25).abs() < 12.0,
        "no-hint baseline {:.2} must sit near the paper's 382.25",
        baseline.bikz
    );
    assert!(
        table_ii_grade.bikz < 40.0,
        "Table-II-grade hints must be a complete break, got {:.2}",
        table_ii_grade.bikz
    );
    assert!(
        with_hints < baseline.bikz - 80.0,
        "measured hints must collapse a large part of the security margin"
    );
}
