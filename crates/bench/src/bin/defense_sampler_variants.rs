// Generator binaries must fail with a message naming the broken stage,
// not a bare unwrap panic; tests keep their unwraps.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
//! **§V-A sampler-variant study**: how the single-trace attack fares against
//! the three countermeasure candidates the paper discusses —
//!
//! - the **vulnerable** v3.2 ladder (baseline),
//! - a **masked** ladder (first-order arithmetic masking of the stores,
//!   branches kept): the paper does *not* recommend masking against
//!   single-trace attacks — the sign still leaks through control flow;
//! - a **branchless** writer (SEAL ≥ 3.6 spirit): vulnerability 1 (control
//!   flow) disappears, but the data-flow leakage of the residues remains —
//!   the paper's "may have a different vulnerability, left for future work".
//!
//! Each variant gets its own best-case profiling (the attacker adapts).
//!
//! Run with `cargo run --release -p reveal-bench --bin defense_sampler_variants`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use reveal_attack::{AttackConfig, Device, TrainedAttack};
use reveal_bench::{write_artifact, Scale, PAPER_Q};
use reveal_rv32::kernel::KernelVariant;
use reveal_rv32::power::PowerModelConfig;

struct Row {
    name: &'static str,
    sign_acc: f64,
    value_acc: f64,
    zero_acc: f64,
}

fn evaluate(variant: KernelVariant, name: &'static str, scale: Scale) -> Option<Row> {
    let (profile_runs, attack_runs, _) = scale.attack_workload();
    let n = 64;
    let device = Device::with_variant(
        n,
        &[PAPER_Q],
        PowerModelConfig::default().with_noise_sigma(0.05),
        variant,
    )
    .expect("device");
    let mut rng = StdRng::seed_from_u64(2026);
    let attack =
        match TrainedAttack::profile(&device, profile_runs, &AttackConfig::default(), &mut rng) {
            Ok(a) => a,
            Err(e) => {
                println!("{name}: profiling failed ({e})");
                return None;
            }
        };
    let (mut sh, mut vh, mut total) = (0usize, 0usize, 0usize);
    let (mut zh, mut zt) = (0usize, 0usize);
    for _ in 0..attack_runs.max(6) {
        let cap = device.capture_fresh(&mut rng).expect("capture");
        let Ok(result) = attack.attack_trace_expecting(&cap.run.capture.samples, n) else {
            continue;
        };
        for (est, &truth) in result.coefficients.iter().zip(&cap.values) {
            total += 1;
            sh += (est.sign == truth.signum()) as usize;
            vh += (est.predicted == truth) as usize;
            if truth == 0 {
                zt += 1;
                zh += (est.predicted == 0) as usize;
            }
        }
    }
    if total == 0 {
        println!("{name}: all traces failed segmentation");
        return None;
    }
    Some(Row {
        name,
        sign_acc: sh as f64 / total as f64,
        value_acc: vh as f64 / total as f64,
        zero_acc: zh as f64 / zt.max(1) as f64,
    })
}

fn main() {
    let scale = Scale::from_env();
    println!("Sampler-variant study (§V-A), n = 64, {scale:?}\n");
    println!(
        "{:>24} {:>10} {:>10} {:>10}",
        "variant", "sign_acc", "value_acc", "zero_acc"
    );
    println!("{}", "-".repeat(60));
    let mut csv = String::from("variant,sign_acc,value_acc,zero_acc\n");
    let mut rows = Vec::new();
    for (variant, name) in [
        (KernelVariant::Vulnerable, "vulnerable (v3.2)"),
        (KernelVariant::MaskedLadder, "masked ladder"),
        (KernelVariant::Branchless, "branchless (v3.6)"),
    ] {
        if let Some(row) = evaluate(variant, name, scale) {
            println!(
                "{:>24} {:>9.1}% {:>9.1}% {:>9.1}%",
                row.name,
                100.0 * row.sign_acc,
                100.0 * row.value_acc,
                100.0 * row.zero_acc
            );
            csv.push_str(&format!(
                "{},{:.4},{:.4},{:.4}\n",
                row.name, row.sign_acc, row.value_acc, row.zero_acc
            ));
            rows.push(row);
        }
    }
    write_artifact("defense_sampler_variants.csv", &csv);

    let get = |name: &str| rows.iter().find(|r| r.name.contains(name));
    if let (Some(vuln), Some(masked), Some(branchless)) =
        (get("vulnerable"), get("masked"), get("branchless"))
    {
        println!("\nreading:");
        println!(
            "- masking the *stores* changes almost nothing (sign {:.0}% vs {:.0}%, \
             value {:.0}% vs {:.0}%): the sampled value still flows unmasked through \
             the load and the negation registers, and the branches still give the \
             sign away — masking is no defense against this single-trace attack \
             (§V-A);",
            100.0 * masked.sign_acc,
            100.0 * vuln.sign_acc,
            100.0 * masked.value_acc,
            100.0 * vuln.value_acc
        );
        println!(
            "- the branchless (v3.6-style) writer removes the control-flow leak \
             (sign accuracy drops to {:.0}%, now inferred from data only), but the \
             data-flow leakage persists — and its longer arithmetic chain exposes \
             the magnitude at even more samples (value accuracy {:.0}%): the \
             residual vulnerability the paper leaves for future work.",
            100.0 * branchless.sign_acc,
            100.0 * branchless.value_acc
        );
        assert!(masked.sign_acc > 0.95, "masking must not hide the branches");
        assert!(
            (masked.value_acc - vuln.value_acc).abs() < 0.2,
            "store-only masking barely changes value recovery"
        );
        assert!(
            branchless.sign_acc < vuln.sign_acc - 0.02,
            "removing the ladder must cost the attacker control-flow information"
        );
    }
}
