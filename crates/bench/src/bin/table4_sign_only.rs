// Generator binaries must fail with a message naming the broken stage,
// not a bare unwrap panic; tests keep their unwraps.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
//! **Table IV** generator: cost of the attack when only the *branch*
//! vulnerability is exploited — the adversary learns each coefficient's sign
//! (and whether it is zero) with 100% success, but not its value. The paper:
//! 382.25 → 253.29 bikz, then one extra guess (20% success) → 252.83 bikz.
//! Conclusion: **signs alone cannot recover the message**.
//!
//! Like Table III, secrets are generated from the sampler's distribution and
//! the sign information is integrated per coordinate; the attack traces only
//! validate that the sign classifier really achieves the assumed 100%.
//!
//! Run with `cargo run --release -p reveal-bench --bin table4_sign_only`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reveal_attack::rounded_gaussian_prior;
use reveal_bench::{paper_device, train_attacker, Scale, PAPER_N};
use reveal_hints::{integrate_posteriors, DbddInstance, HintPolicy, LweParameters, Posterior};

fn main() {
    let scale = Scale::from_env();
    let params = LweParameters::seal_128_paper();
    let baseline = DbddInstance::from_lwe(&params).estimate();
    let policy = HintPolicy::seal_paper();
    let prior = rounded_gaussian_prior(3.19, 41);

    // --- Validate the premise on real traces: sign recovery is perfect. ---
    let (profile_runs, attack_runs, n) = scale.attack_workload();
    let device = paper_device(n, 0.05);
    let attack = train_attacker(&device, profile_runs, 4);
    let mut rng = StdRng::seed_from_u64(41414);
    let (mut sign_hits, mut sign_total) = (0usize, 0usize);
    for _ in 0..attack_runs {
        let capture = device.capture_fresh(&mut rng).expect("capture");
        let Ok(result) = attack.attack_trace_expecting(&capture.run.capture.samples, n) else {
            continue;
        };
        for (est, &truth) in result.coefficients.iter().zip(&capture.values) {
            sign_total += 1;
            sign_hits += (est.sign == truth.signum()) as usize;
        }
    }
    let sign_rate = sign_hits as f64 / sign_total.max(1) as f64;
    println!(
        "measured sign-recovery success: {:.2}% over {sign_total} coefficients (paper: 100%)\n",
        100.0 * sign_rate
    );

    // --- Framework trials at full scale. ---
    let trials = match scale {
        Scale::Quick => 3,
        Scale::Standard => 8,
        Scale::Full => 20,
    };
    let mut sign_only_trials = Vec::new();
    let mut with_guess_trials = Vec::new();
    let mut guess_hits = 0usize;
    for _ in 0..trials {
        let mut secrets = Vec::with_capacity(PAPER_N);
        for _ in 0..PAPER_N {
            let u: f64 = rng.gen();
            let mut acc = 0.0;
            let mut secret = 0i64;
            for &(v, p) in &prior {
                acc += p;
                if acc >= u {
                    secret = v;
                    break;
                }
            }
            secrets.push(secret);
        }
        let sign_posterior = |s: i64| -> Posterior {
            if s == 0 {
                Posterior::certain(0)
            } else {
                let restricted: Vec<(i64, f64)> = prior
                    .iter()
                    .filter(|(v, _)| v.signum() == s.signum())
                    .copied()
                    .collect();
                Posterior::new(restricted).expect("valid")
            }
        };

        // Row 2: sign hints only.
        let mut hinted = DbddInstance::from_lwe(&params);
        let posteriors: Vec<Posterior> = secrets.iter().map(|&s| sign_posterior(s)).collect();
        let coords: Vec<usize> = (0..PAPER_N).collect();
        integrate_posteriors(&mut hinted, &coords, &posteriors, &policy).expect("hints");
        sign_only_trials.push(hinted.estimate().bikz);

        // Row 3: plus ONE guess — commit to the most likely value for the
        // first nonzero coefficient's sign.
        let mut hinted_g = DbddInstance::from_lwe(&params);
        let mut guessed = false;
        let posteriors_g: Vec<Posterior> = secrets
            .iter()
            .map(|&s| {
                if s != 0 && !guessed {
                    guessed = true;
                    let best = prior
                        .iter()
                        .filter(|(v, _)| v.signum() == s.signum())
                        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                        .map(|(v, _)| *v)
                        .unwrap_or(s.signum());
                    guess_hits += (best == s) as usize;
                    Posterior::certain(best)
                } else {
                    sign_posterior(s)
                }
            })
            .collect();
        integrate_posteriors(&mut hinted_g, &coords, &posteriors_g, &policy).expect("hints");
        with_guess_trials.push(hinted_g.estimate().bikz);
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let sign_only = avg(&sign_only_trials);
    let with_guess = avg(&with_guess_trials);
    let _ = guess_hits;
    // The guess succeeds when the coefficient equals the most likely value
    // for its (known, nonzero) sign — analytically P(|s| = 1 | s != 0)/?,
    // i.e. the conditional mass of the modal value of the half-distribution.
    let p_zero: f64 = prior
        .iter()
        .find(|(v, _)| *v == 0)
        .map(|(_, p)| *p)
        .unwrap_or(0.0);
    let p_one: f64 = prior
        .iter()
        .find(|(v, _)| *v == 1)
        .map(|(_, p)| *p)
        .unwrap_or(0.0);
    let success_rate = p_one / ((1.0 - p_zero) / 2.0);

    println!("+------------------------------------+-----------+");
    println!("|                                    |  SEAL-128 |");
    println!("+------------------------------------+-----------+");
    println!(
        "| Attack without hints (bikz)        | {:>9.2} |",
        baseline.bikz
    );
    println!(
        "| Attack with hints (bikz)           | {:>9.2} |",
        sign_only
    );
    println!(
        "| Attack with hints & guesses (bikz) | {:>9.2} |",
        with_guess
    );
    println!("| Number of guesses                  | {:>9} |", 1);
    println!(
        "| Success probability                | {:>8.0}% |",
        100.0 * success_rate
    );
    println!("+------------------------------------+-----------+");
    println!("\npaper reference: 382.25 / 253.29 / 252.83, 1 guess, 20% success");
    println!(
        "equivalent bits: 2^{:.1} -> 2^{:.1} — signs alone cannot recover the message",
        baseline.bits,
        reveal_hints::bikz_to_bits(sign_only)
    );

    assert!(
        sign_rate > 0.99,
        "measured sign success must back the premise"
    );
    assert!(
        sign_only < baseline.bikz - 40.0,
        "sign hints must reduce the cost"
    );
    assert!(
        reveal_hints::bikz_to_bits(sign_only) > 50.0,
        "sign-only attack must NOT break the scheme"
    );
    assert!(with_guess <= sign_only + 1e-9, "a guess can only help");
    assert!(
        sign_only - with_guess < 5.0,
        "one guess is worth well under 5 bikz"
    );
    assert!(
        (0.1..0.4).contains(&success_rate),
        "success {success_rate} (paper: 20%)"
    );
}
