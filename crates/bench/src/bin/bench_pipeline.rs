// Generator binaries must fail with a message naming the broken stage,
// not a bare unwrap panic; tests keep their unwraps.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
//! **Pipeline timing harness**: wall-clock of each attack stage with the
//! `reveal-par` runtime pinned to one worker vs the machine's full thread
//! count, plus a bit-identity check between the two runs (the determinism
//! contract of `docs/performance.md`).
//!
//! Emits `BENCH_pipeline.json` (schema v4) under `target/reveal/` with
//! per-stage timings, speedups, the thread counts compared, the workload
//! scale, honest machine topology (`available_parallelism`, measured spawn
//! cost), worker-scratch memo hit rates, superinstruction block-cache
//! statistics (blocks compiled, dispatch hits, invalidations, fused-emit
//! samples), and a snapshot of every cost model the run exercised (chosen
//! worker counts and claim chunks). A committed copy lives in
//! `docs/results/`.
//!
//! Run with `cargo run --release -p reveal-bench --bin bench_pipeline`
//! (honours `REVEAL_QUICK` / `REVEAL_FULL` and `REVEAL_THREADS`).

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use reveal_attack::{
    collect_profiling, collect_profiling_baseline, report_full_attack, AttackConfig, Capture,
    Device, ProfilingData, SingleTraceAttack, TrainedAttack,
};
use reveal_bench::{paper_device, write_artifact, Scale};
use reveal_hints::{HintPolicy, LweParameters};
use reveal_trace::cpa::cpa_rank;

const MASTER_SEED: u64 = 0x5EA1_BE9C;

/// One stage's measurements across the two thread settings.
struct StageTiming {
    name: &'static str,
    serial_ms: f64,
    parallel_ms: f64,
}

impl StageTiming {
    fn speedup(&self) -> f64 {
        if self.parallel_ms > 0.0 {
            self.serial_ms / self.parallel_ms
        } else {
            1.0
        }
    }
}

fn time_ms<R>(body: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let result = body();
    (result, start.elapsed().as_secs_f64() * 1e3)
}

/// Everything one full pipeline pass produces, for cross-run identity checks.
struct PipelineOutput {
    profiling: ProfilingData,
    results: Vec<SingleTraceAttack>,
    baseline_bikz: f64,
    hinted_bikz: f64,
    stage_ms: Vec<(&'static str, f64)>,
}

/// Runs every stage once under the *current* thread setting, timing each.
/// The attack captures are passed in so both runs score identical traces.
fn run_pipeline(
    device: &Device,
    config: &AttackConfig,
    profile_runs: usize,
    captures: &[Capture],
    degree: usize,
) -> PipelineOutput {
    let mut stage_ms = Vec::new();

    let (profiling, ms) = time_ms(|| {
        collect_profiling(device, profile_runs, config, MASTER_SEED).expect("profiling collection")
    });
    stage_ms.push(("profile_collect", ms));

    let data = profiling.clone();
    let (attack, ms) = time_ms(|| {
        TrainedAttack::fit(
            config.clone(),
            data.sign_set,
            data.pos_set,
            data.neg_set,
            data.total_windows,
        )
        .expect("template fit")
    });
    stage_ms.push(("template_fit", ms));

    let (results, ms) = time_ms(|| {
        captures
            .iter()
            .map(|cap| {
                attack
                    .attack_trace_expecting(&cap.run.capture.samples, degree)
                    .expect("single-trace attack")
            })
            .collect::<Vec<_>>()
    });
    stage_ms.push(("attack_traces", ms));

    // CPA baseline over the first capture's windows — the multi-trace
    // distinguisher the paper rules out, timed for completeness since its
    // correlation loop also runs on the parallel runtime.
    let windows: Vec<Vec<f64>> = captures
        .iter()
        .map(|cap| {
            let all = reveal_attack::extract_ladder_windows(&cap.run.capture.samples, config)
                .expect("clean capture segments");
            all.into_iter().next().expect("at least one window")
        })
        .collect();
    let hypotheses: Vec<Vec<f64>> = (-14i64..=14)
        .map(|c| vec![c.unsigned_abs() as f64; windows.len()])
        .collect();
    let (_, ms) = time_ms(|| cpa_rank(&windows, &hypotheses).expect("cpa"));
    stage_ms.push(("cpa_rank", ms));

    let (report, ms) = time_ms(|| {
        report_full_attack(
            &results[0],
            &LweParameters::seal_128_paper(),
            &HintPolicy::seal_paper(),
        )
        .expect("security report")
    });
    stage_ms.push(("security_report", ms));

    PipelineOutput {
        profiling,
        results,
        baseline_bikz: report.baseline.bikz,
        hinted_bikz: report.with_hints.bikz,
        stage_ms,
    }
}

fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Quick => "quick",
        Scale::Standard => "standard",
        Scale::Full => "full",
    }
}

fn main() {
    let scale = Scale::from_env();
    let (profile_runs, attack_runs, degree) = scale.attack_workload();
    let parallel_threads = reveal_par::max_threads().max(2);

    let device = paper_device(degree, 0.05);
    let config = AttackConfig::default();

    // Fixed attack captures, shared by both timed runs.
    let mut rng = StdRng::seed_from_u64(MASTER_SEED ^ 1);
    let captures: Vec<Capture> = (0..attack_runs)
        .map(|_| device.capture_fresh(&mut rng).expect("capture"))
        .collect();

    println!(
        "pipeline bench: scale={} n={degree} profile_runs={profile_runs} \
         attack_runs={attack_runs} | serial=1 thread vs parallel={parallel_threads} threads",
        scale_name(scale)
    );

    let serial = reveal_par::with_threads(1, || {
        run_pipeline(&device, &config, profile_runs, &captures, degree)
    });

    // Opt-in ziggurat noise sampler: the corpus-generation profile. Same
    // exact N(0,1) law, different RNG stream — so it is timed as its own
    // profile and never compared bit-wise against the pinned
    // Marsaglia-polar runs. Measured immediately after the serial pipeline
    // run so the two quoted (and CI-gated) serial throughput numbers come
    // from adjacent, equally-loaded measurement windows — on shared
    // runners, late-process measurements can run into CPU-quota
    // throttling that would misattribute machine slowdown to the sampler.
    let mut zig_device = device.clone();
    zig_device.set_power_config(
        device
            .power_config()
            .with_noise_sampler(reveal_rv32::NoiseSampler::Ziggurat),
    );
    let (zig_profiling, zig_ms) = reveal_par::with_threads(1, || {
        time_ms(|| {
            collect_profiling(&zig_device, profile_runs, &config, MASTER_SEED)
                .expect("ziggurat profiling collection")
        })
    });

    let parallel = reveal_par::with_threads(parallel_threads, || {
        run_pipeline(&device, &config, profile_runs, &captures, degree)
    });

    // Fast path vs the materializing reference collector, both single-threaded
    // so the comparison isolates predecode + streaming + memoization from any
    // thread-count effect. The reference must also reproduce the fast path's
    // profiling sets bit for bit.
    let (baseline_profiling, profile_baseline_ms) = reveal_par::with_threads(1, || {
        time_ms(|| {
            collect_profiling_baseline(&device, profile_runs, &config, MASTER_SEED)
                .expect("baseline profiling collection")
        })
    });
    let profile_fast_ms = serial.stage_ms[0].1;
    let fast_path_speedup = if profile_fast_ms > 0.0 {
        profile_baseline_ms / profile_fast_ms
    } else {
        1.0
    };
    let fast_path_identical = baseline_profiling.total_windows == serial.profiling.total_windows
        && baseline_profiling.sign_set == serial.profiling.sign_set
        && baseline_profiling.pos_set == serial.profiling.pos_set
        && baseline_profiling.neg_set == serial.profiling.neg_set;

    // Determinism contract: both runs must agree bit for bit.
    let deterministic = fast_path_identical
        && serial.profiling.total_windows == parallel.profiling.total_windows
        && serial.results == parallel.results
        && serial.baseline_bikz.to_bits() == parallel.baseline_bikz.to_bits()
        && serial.hinted_bikz.to_bits() == parallel.hinted_bikz.to_bits();

    let stages: Vec<StageTiming> = serial
        .stage_ms
        .iter()
        .zip(&parallel.stage_ms)
        .map(|(&(name, s), &(_, p))| StageTiming {
            name,
            serial_ms: s,
            parallel_ms: p,
        })
        .collect();
    let total = StageTiming {
        name: "total",
        serial_ms: stages.iter().map(|s| s.serial_ms).sum(),
        parallel_ms: stages.iter().map(|s| s.parallel_ms).sum(),
    };

    // Profiling throughput: each profiling run renders one full trace.
    let traces_per_sec = |ms: f64| {
        if ms > 0.0 {
            profile_runs as f64 / (ms / 1e3)
        } else {
            0.0
        }
    };
    let serial_tps = traces_per_sec(profile_fast_ms);
    let parallel_tps = traces_per_sec(parallel.stage_ms[0].1);

    let zig_tps = traces_per_sec(zig_ms);

    for stage in stages.iter().chain(std::iter::once(&total)) {
        println!(
            "  {:<16} serial {:>9.1} ms   {}-thread {:>9.1} ms   speedup {:.2}x",
            stage.name,
            stage.serial_ms,
            parallel_threads,
            stage.parallel_ms,
            stage.speedup()
        );
    }
    println!(
        "  fast path: profile_collect {profile_fast_ms:.1} ms vs baseline \
         {profile_baseline_ms:.1} ms ({fast_path_speedup:.2}x, identical: {fast_path_identical})"
    );
    println!("  throughput: {serial_tps:.2} traces/s serial, {parallel_tps:.2} traces/s parallel");
    println!(
        "  ziggurat corpus profile: {zig_ms:.1} ms serial, {zig_tps:.2} traces/s ({} windows)",
        zig_profiling.total_windows
    );
    println!("  deterministic: {deterministic} (recovered coefficients and bikz bit-identical)");

    // Worker-scratch burst-memo hit rates: diagnostics, not a contract —
    // totals depend on how runs were partitioned across workers, values
    // never do.
    let hit_rate = |hits: u64, misses: u64| {
        let total = hits + misses;
        if total > 0 {
            hits as f64 / total as f64
        } else {
            0.0
        }
    };
    let serial_hit_rate = hit_rate(
        serial.profiling.scratch_hits,
        serial.profiling.scratch_misses,
    );
    let parallel_hit_rate = hit_rate(
        parallel.profiling.scratch_hits,
        parallel.profiling.scratch_misses,
    );
    println!(
        "  worker scratch: serial memo hit rate {:.3} ({}/{}), parallel {:.3} ({}/{})",
        serial_hit_rate,
        serial.profiling.scratch_hits,
        serial.profiling.scratch_hits + serial.profiling.scratch_misses,
        parallel_hit_rate,
        parallel.profiling.scratch_hits,
        parallel.profiling.scratch_hits + parallel.profiling.scratch_misses,
    );

    // Block-cache statistics: how much of the fast path's work the
    // superinstruction compiler absorbed. Partition-dependent diagnostics
    // (like the memo hit rates), never value-affecting.
    let block_json = |stats: &reveal_rv32::BlockCacheStats| {
        format!(
            "{{\"blocks_compiled\": {}, \"dispatch_hits\": {}, \"invalidations\": {}, \"fused_samples\": {}}}",
            stats.blocks_compiled, stats.dispatch_hits, stats.invalidations, stats.fused_samples
        )
    };
    println!(
        "  block cache: serial compiled={} hits={} invalidations={} fused_samples={}",
        serial.profiling.block_stats.blocks_compiled,
        serial.profiling.block_stats.dispatch_hits,
        serial.profiling.block_stats.invalidations,
        serial.profiling.block_stats.fused_samples,
    );

    let spawn_cost_ns = reveal_par::spawn_cost_ns();
    let cost_model_json: Vec<String> = reveal_par::cost_snapshots()
        .iter()
        .map(|m| {
            format!(
                "    {{\"name\": \"{}\", \"prior_ns_per_unit\": {:.3}, \"measured_ns_per_unit\": {}, \"last_workers\": {}, \"last_claim_chunk\": {}, \"last_count\": {}, \"calls\": {}}}",
                m.name,
                m.prior_ns_per_unit,
                m.measured_ns_per_unit
                    .map_or_else(|| "null".to_string(), |v| format!("{v:.3}")),
                m.last_workers,
                m.last_claim_chunk,
                m.last_count,
                m.calls
            )
        })
        .collect();

    let stage_json: Vec<String> = stages
        .iter()
        .map(|s| {
            format!(
                "    {{\"name\": \"{}\", \"serial_ms\": {:.3}, \"parallel_ms\": {:.3}, \"speedup\": {:.3}}}",
                s.name, s.serial_ms, s.parallel_ms, s.speedup()
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"schema\": \"reveal-bench-pipeline/v4\",\n  \"scale\": \"{}\",\n  \"ring_degree\": {},\n  \"profile_runs\": {},\n  \"attack_runs\": {},\n  \"serial_threads\": 1,\n  \"parallel_threads\": {},\n  \"machine\": {{\"available_parallelism\": {}, \"spawn_cost_ns\": {:.1}}},\n  \"deterministic\": {},\n  \"baseline_bikz\": {:.2},\n  \"with_hints_bikz\": {:.2},\n  \"fast_path\": {{\"profile_collect_baseline_ms\": {:.3}, \"profile_collect_fast_ms\": {:.3}, \"speedup\": {:.3}, \"bit_identical\": {}}},\n  \"throughput\": {{\"profile_traces_per_sec_serial\": {:.3}, \"profile_traces_per_sec_parallel\": {:.3}}},\n  \"noise_sampler\": {{\"default\": \"marsaglia_polar\", \"ziggurat_profile_collect_ms\": {:.3}, \"ziggurat_traces_per_sec\": {:.3}}},\n  \"worker_scratch\": {{\"serial_hits\": {}, \"serial_misses\": {}, \"serial_hit_rate\": {:.4}, \"parallel_hits\": {}, \"parallel_misses\": {}, \"parallel_hit_rate\": {:.4}}},\n  \"block_cache\": {{\"serial\": {}, \"parallel\": {}}},\n  \"stages\": [\n{}\n  ],\n  \"total\": {{\"serial_ms\": {:.3}, \"parallel_ms\": {:.3}, \"speedup\": {:.3}}},\n  \"cost_models\": [\n{}\n  ]\n}}\n",
        scale_name(scale),
        degree,
        profile_runs,
        attack_runs,
        parallel_threads,
        std::thread::available_parallelism().map_or(1, |p| p.get()),
        spawn_cost_ns,
        deterministic,
        serial.baseline_bikz,
        serial.hinted_bikz,
        profile_baseline_ms,
        profile_fast_ms,
        fast_path_speedup,
        fast_path_identical,
        serial_tps,
        parallel_tps,
        zig_ms,
        zig_tps,
        serial.profiling.scratch_hits,
        serial.profiling.scratch_misses,
        serial_hit_rate,
        parallel.profiling.scratch_hits,
        parallel.profiling.scratch_misses,
        parallel_hit_rate,
        block_json(&serial.profiling.block_stats),
        block_json(&parallel.profiling.block_stats),
        stage_json.join(",\n"),
        total.serial_ms,
        total.parallel_ms,
        total.speedup(),
        cost_model_json.join(",\n")
    );
    write_artifact("BENCH_pipeline.json", &json);

    assert!(
        deterministic,
        "parallel pipeline must match serial bit for bit"
    );
}
