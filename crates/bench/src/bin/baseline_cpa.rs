// Generator binaries must fail with a message naming the broken stage,
// not a bare unwrap panic; tests keep their unwraps.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
//! **Multi-trace baseline**: correlation power analysis against the sampler,
//! demonstrating the premise of §II-B — "since secret and error values are
//! freshly computed for each new encryption operation, the adversary has to
//! perform the attack with a single power measurement trace".
//!
//! Scenario A (CPA's home turf): a hypothetical device that processed a
//! *fixed* coefficient across many traces — CPA nails it.
//! Scenario B (the real SEAL encryption): fresh coefficients per trace —
//! CPA has nothing to accumulate and its distinguisher collapses, while the
//! single-trace template attack (same traces!) keeps working.
//!
//! Run with `cargo run --release -p reveal-bench --bin baseline_cpa`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use reveal_attack::{extract_ladder_windows, AttackConfig, Device, TrainedAttack};
use reveal_bench::{write_artifact, Scale, PAPER_Q};
use reveal_rv32::power::PowerModelConfig;
use reveal_trace::cpa::{cpa_rank, distinguishing_margin};

fn main() {
    let scale = Scale::from_env();
    let (profile_runs, _, _) = scale.attack_workload();
    let n = 16usize;
    let trace_count = match scale {
        Scale::Quick => 200,
        _ => 1000,
    };
    let device = Device::new(
        n,
        &[PAPER_Q],
        PowerModelConfig::default().with_noise_sigma(0.05),
    )
    .expect("device");
    let config = AttackConfig::default();
    let mut rng = StdRng::seed_from_u64(515);
    let candidates: Vec<i64> = (-14..=14).collect();

    // ---------- Scenario A: fixed secret coefficient, many traces ----------
    let fixed_secret = -5i64;
    let mut traces_a: Vec<Vec<f64>> = Vec::with_capacity(trace_count);
    for _ in 0..trace_count {
        // Coefficient 0 carries the fixed secret; the rest vary freely.
        let mut values: Vec<i64> = (0..n)
            .map(|i| candidates[(i * 7) % candidates.len()])
            .collect();
        values[0] = fixed_secret;
        let cap = device.capture_chosen(&values, &mut rng).expect("capture");
        if let Ok(windows) = extract_ladder_windows(&cap.run.capture.samples, &config) {
            if windows.len() == n {
                traces_a.push(windows[0].clone());
            }
        }
    }
    // Hypothesis per candidate: constant per trace (the fixed-secret model),
    // which degenerates — classic CPA instead models a *varying* known input.
    // Here the realistic fixed-target formulation: hypotheses over window
    // leakage = HW of the candidate's store data, correlated across a
    // PROFILED population mixing all candidates. Build that population:
    let mut mixed_traces = Vec::new();
    let mut mixed_values = Vec::new();
    for _ in 0..trace_count {
        let cap = device.capture_fresh(&mut rng).expect("capture");
        if let Ok(windows) = extract_ladder_windows(&cap.run.capture.samples, &config) {
            if windows.len() == n {
                for (w, &v) in windows.into_iter().zip(&cap.values) {
                    mixed_traces.push(w);
                    mixed_values.push(v);
                }
            }
        }
    }
    // CPA on the mixed population with the *known* per-trace values as the
    // hypothesis recovers the leakage model (sanity: correlation exists):
    let hyp_true: Vec<f64> = mixed_values
        .iter()
        .map(|&v| v.unsigned_abs() as f64)
        .collect();
    let sanity = cpa_rank(&mixed_traces, &[hyp_true]).expect("cpa");
    println!(
        "leakage-model sanity check: peak |rho| = {:.3} at sample {} \
         (magnitude correlates with power — the channel exists)",
        sanity[0].peak_correlation, sanity[0].peak_sample
    );

    // ---------- Scenario B: the real setting — recover coefficient 0 of ----
    // ---------- ONE encryption from many OTHER encryptions' traces.     ----
    // Every encryption has fresh noise, so traces of other encryptions are
    // useless for this trace's coefficient: build per-candidate hypotheses
    // (constant over the population) and watch CPA fail.
    let hypotheses: Vec<Vec<f64>> = candidates
        .iter()
        .map(|&c| vec![c.unsigned_abs() as f64; traces_a.len()])
        .collect();
    let scores = cpa_rank(&traces_a, &hypotheses).expect("cpa");
    let margin = distinguishing_margin(&scores);
    println!(
        "\nCPA against fresh-randomness encryption: best candidate {} with \
         peak |rho| = {:.3}, margin to runner-up {:.4}",
        candidates[scores[0].candidate], scores[0].peak_correlation, margin
    );
    println!("(a constant hypothesis cannot correlate — every candidate is equivalent)");

    // ---------- The single-trace attack on the SAME device succeeds. ----------
    let attack = TrainedAttack::profile(&device, profile_runs.max(30), &config, &mut rng)
        .expect("profiling");
    let cap = device.capture_fresh(&mut rng).expect("capture");
    let result = attack
        .attack_trace_expecting(&cap.run.capture.samples, n)
        .expect("attack");
    println!(
        "\nsingle-trace template attack on the same device: sign accuracy {:.0}%, \
         value accuracy {:.0}%",
        100.0 * result.sign_accuracy(&cap.values),
        100.0 * result.value_accuracy(&cap.values)
    );

    let csv = format!(
        "metric,value\nsanity_peak_rho,{:.4}\ncpa_margin_fresh_randomness,{:.6}\nsingle_trace_sign_acc,{:.4}\nsingle_trace_value_acc,{:.4}\n",
        sanity[0].peak_correlation,
        margin,
        result.sign_accuracy(&cap.values),
        result.value_accuracy(&cap.values)
    );
    write_artifact("baseline_cpa.csv", &csv);

    assert!(
        sanity[0].peak_correlation > 0.3,
        "the leakage channel itself must be strong"
    );
    assert!(
        margin < 1e-9,
        "constant hypotheses must not distinguish (fresh randomness)"
    );
    assert!(result.sign_accuracy(&cap.values) > 0.95);
    println!(
        "\nreading: the channel is wide open (|rho| ≈ {:.2}), yet multi-trace \
         accumulation is impossible — fresh randomness per encryption forces \
         the single-trace approach the paper takes.",
        sanity[0].peak_correlation
    );
}
