// Generator binaries must fail with a message naming the broken stage,
// not a bare unwrap panic; tests keep their unwraps.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
//! **Two-rail classifier benchmark**: the learned logistic-regression rail
//! and per-burst arbitration against the pooled-LDA templates, measuring
//! the two contracts the rail ships under:
//!
//! 1. **Zero-fault bit-identity** — with the learned rail attached and
//!    arbitration enabled, a clean standard-scale capture produces the
//!    one-shot pipeline's report bit for bit (`f64::to_bits` equality,
//!    bikz 242.02 at standard scale): arbitration only arms on degradation
//!    signals, so a clean trace never consults the learned rail. Like
//!    `bench_serve`, this phase disables the per-window suspicion screens
//!    (their ~0.3% clean-capture false-positive rate would conservatively
//!    demote a few hints) so the measurement isolates the claim under
//!    test: *attaching the rail* adds zero numerical perturbation.
//! 2. **Graceful degradation** — a desync / low-SNR sweep where the
//!    arbitrated attacker must extract strictly more security than the
//!    LDA-only driver once measured noise reaches twice the calibrated
//!    reference (the regime where multiplicative variance inflation has
//!    pushed every template posterior past the skip threshold), while
//!    never claiming a wrong perfect hint on a corrupted coefficient
//!    (the learned rail caps its decisions at approximate).
//!
//! Emits `BENCH_classifier.json` (schema `reveal-bench-classifier/v1`)
//! under `target/reveal/`; a committed copy lives in `docs/results/`. The
//! artifact's `zero_fault` and `sweep` sections are REVEAL_THREADS
//! invariant — CI diffs them across thread counts.
//!
//! Run with `cargo run --release -p reveal-bench --bin bench_classifier`
//! (honours `REVEAL_QUICK` / `REVEAL_FULL` and `REVEAL_THREADS`).

use rand::rngs::StdRng;
use rand::SeedableRng;
use reveal_attack::{
    calibrate, report_full_attack, report_robust, AttackConfig, HintDecision, LearnedConfig, Rail,
    RobustAttack, RobustAttackResult, RobustConfig, TrainedAttack,
};
use reveal_bench::{paper_device, write_artifact, Scale};
use reveal_chaos::ChaosPlan;
use reveal_hints::{HintPolicy, LweParameters};

/// Same master seed as `bench_pipeline`, so the standard-scale zero-fault
/// report reproduces that bench's value (bikz 242.02) bit for bit.
const MASTER_SEED: u64 = 0x5EA1_BE9C;
/// Chaos-plan seed for the degradation sweep.
const SWEEP_SEED: u64 = 53;
/// Target *measured* noise ratios (total noise over calibrated reference).
/// Injected quadrature sigma is `ref · √(r² − 1)` so the driver's own
/// measurement lands near `r · ref`.
const NOISE_RATIOS: [f64; 3] = [1.5, 2.0, 3.0];
/// Desync-sweep intensities ([`ChaosPlan::desync_sweep`]).
const DESYNC_INTENSITIES: [f64; 3] = [0.35, 0.7, 1.0];
/// The contract threshold: at measured ratios at or above this, the
/// arbitrated driver must beat LDA-only strictly.
const RATIO_THRESHOLD: f64 = 2.0;

fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Quick => "quick",
        Scale::Standard => "standard",
        Scale::Full => "full",
    }
}

/// Disables the per-window suspicion screens (every z threshold and
/// tolerance to ∞) for the bit-identity phase, exactly as `bench_serve`
/// does; calibration, inflation, and the hint ladder stay live.
fn disable_screens(robust: &mut RobustConfig) {
    robust.glitch_z = f64::INFINITY;
    robust.score_z = f64::INFINITY;
    robust.length_z = f64::INFINITY;
    robust.gain_tolerance = f64::INFINITY;
}

/// What one rail configuration extracted from one corrupted capture.
struct RailOutcome {
    bikz: f64,
    perfect: usize,
    approximate: usize,
    skipped: usize,
    wrong_perfect_on_corrupted: usize,
    value_accuracy: f64,
    learned_decisions: usize,
    armed_windows: usize,
    learned_wins: usize,
    lda_wins: usize,
    learned_errors: usize,
    measured_ratio: f64,
}

fn outcome(
    result: &RobustAttackResult,
    params: &LweParameters,
    truth: &[i64],
    corrupted: &dyn Fn(usize) -> bool,
    reference_sigma: f64,
) -> RailOutcome {
    let (perfect, approximate, skipped) = result.decision_counts();
    let wrong_perfect_on_corrupted = result
        .coefficients
        .iter()
        .enumerate()
        .filter(|(i, c)| {
            corrupted(*i)
                && matches!(c.decision, HintDecision::Perfect { value } if value != truth[*i])
        })
        .count();
    let (mut decided, mut correct) = (0usize, 0usize);
    for (i, c) in result.coefficients.iter().enumerate() {
        let claimed = match c.decision {
            HintDecision::Perfect { value } | HintDecision::Approximate { value, .. } => value,
            HintDecision::Skipped => continue,
        };
        decided += 1;
        if claimed == truth[i] {
            correct += 1;
        }
    }
    let report = report_robust(result, params).expect("security report");
    RailOutcome {
        bikz: report.with_hints.bikz,
        perfect,
        approximate,
        skipped,
        wrong_perfect_on_corrupted,
        value_accuracy: if decided == 0 {
            1.0
        } else {
            correct as f64 / decided as f64
        },
        learned_decisions: result
            .coefficients
            .iter()
            .filter(|c| c.rail == Rail::Learned)
            .count(),
        armed_windows: result.diagnostics.rail.armed_windows,
        learned_wins: result.diagnostics.rail.learned_wins,
        lda_wins: result.diagnostics.rail.lda_wins,
        learned_errors: result.diagnostics.rail.learned_errors,
        measured_ratio: result.diagnostics.noise_sigma / reference_sigma.max(1e-12),
    }
}

fn outcome_json(o: &RailOutcome) -> String {
    format!(
        "{{\"bikz\": {:.2}, \"perfect\": {}, \"approximate\": {}, \"skipped\": {}, \
         \"wrong_perfect_on_corrupted\": {}, \"value_accuracy\": {:.4}, \
         \"learned_decisions\": {}, \"armed_windows\": {}, \"learned_wins\": {}, \
         \"lda_wins\": {}, \"learned_errors\": {}}}",
        o.bikz,
        o.perfect,
        o.approximate,
        o.skipped,
        o.wrong_perfect_on_corrupted,
        o.value_accuracy,
        o.learned_decisions,
        o.armed_windows,
        o.learned_wins,
        o.lda_wins,
        o.learned_errors,
    )
}

/// One degradation row: the same corrupted capture through both drivers.
struct SweepRow {
    kind: &'static str,
    level: f64,
    injected_sigma: f64,
    corrupted: usize,
    lda: RailOutcome,
    arbitrated: RailOutcome,
}

#[allow(clippy::too_many_lines)]
fn main() {
    let scale = Scale::from_env();
    let (profile_runs, _attack_runs, degree) = scale.attack_workload();
    let threads = reveal_par::max_threads();
    let device = paper_device(degree, 0.05);
    let config = AttackConfig::default();
    let policy = HintPolicy::seal_paper();
    let params = LweParameters::seal_128_paper();

    println!(
        "classifier bench: scale={} n={degree} profile_runs={profile_runs} threads={threads}",
        scale_name(scale)
    );

    // Calibration first: the learned rail's noise augmentation is phrased
    // in multiples of the calibrated reference sigma.
    let mut cal_rng = StdRng::seed_from_u64(MASTER_SEED ^ 2);
    let clean = device
        .capture_fresh(&mut cal_rng)
        .expect("calibration capture");
    let calibration = calibrate(&clean.run.capture.samples, &config).expect("calibration");
    let reference_sigma = calibration.reference_noise_sigma;

    let augment_sigmas: Vec<f64> = [1.0, 2.0, 3.0]
        .iter()
        .map(|r| r * reference_sigma)
        .collect();
    let learned_config = LearnedConfig {
        augment_sigmas: augment_sigmas.clone(),
        ..LearnedConfig::default()
    };
    let (attack, train_error) = TrainedAttack::profile_seeded_two_rail(
        &device,
        profile_runs,
        &config,
        MASTER_SEED,
        &learned_config,
    )
    .expect("profiling succeeds at nominal settings");
    let rail = attack.learned_rail();
    assert!(
        rail.is_some() && train_error.is_none(),
        "learned rail must train at nominal settings: {train_error:?}"
    );
    let (t_sign, t_pos, t_neg) = rail.expect("rail attached").temperatures();
    println!(
        "  learned rail trained: temperatures sign {t_sign:.3} / pos {t_pos:.3} / neg {t_neg:.3}"
    );

    // The victim capture: first fresh capture from the bench_pipeline RNG
    // stream, so the one-shot report is that bench's number.
    let mut rng = StdRng::seed_from_u64(MASTER_SEED ^ 1);
    let victim = device.capture_fresh(&mut rng).expect("victim capture");

    // Phase 1: zero-fault bit-identity with the rail attached.
    let one_shot = attack
        .attack_trace_expecting(&victim.run.capture.samples, degree)
        .expect("one-shot attack");
    let one_shot_report = report_full_attack(&one_shot, &params, &policy).expect("report");
    let mut clean_robust_cfg = RobustConfig::default();
    disable_screens(&mut clean_robust_cfg);
    let arbitrated_clean = RobustAttack::new(&attack)
        .with_config(clean_robust_cfg.clone())
        .with_calibration(calibration)
        .attack_trace(&victim.run.capture.samples, degree, &policy)
        .expect("arbitrated clean attack");
    let arbitrated_clean_report =
        report_robust(&arbitrated_clean, &params).expect("arbitrated clean report");
    let lda_only_cfg = RobustConfig {
        arbitration: false,
        ..clean_robust_cfg
    };
    let lda_clean = RobustAttack::new(&attack)
        .with_config(lda_only_cfg)
        .with_calibration(calibration)
        .attack_trace(&victim.run.capture.samples, degree, &policy)
        .expect("lda-only clean attack");
    let lda_clean_report = report_robust(&lda_clean, &params).expect("lda clean report");
    let bit_identity = arbitrated_clean_report.with_hints.bikz.to_bits()
        == one_shot_report.with_hints.bikz.to_bits()
        && lda_clean_report.with_hints.bikz.to_bits() == one_shot_report.with_hints.bikz.to_bits()
        && arbitrated_clean.diagnostics.rail.armed_windows == 0
        && arbitrated_clean
            .coefficients
            .iter()
            .all(|c| c.rail == Rail::Lda);
    println!(
        "  zero-fault: one-shot bikz {:.2}, arbitrated {:.2} (armed {}), bit-identity {}",
        one_shot_report.with_hints.bikz,
        arbitrated_clean_report.with_hints.bikz,
        arbitrated_clean.diagnostics.rail.armed_windows,
        bit_identity
    );

    // Phase 2: the degradation sweep, full screens on (the driver as
    // deployed), LDA-only vs arbitrated on identical corrupted captures.
    let lda_sweep = RobustAttack::new(&attack)
        .with_config(RobustConfig {
            arbitration: false,
            ..RobustConfig::default()
        })
        .with_calibration(calibration);
    let arb_sweep = RobustAttack::new(&attack).with_calibration(calibration);

    let plans: Vec<(&'static str, f64, ChaosPlan)> = NOISE_RATIOS
        .iter()
        .map(|&r| {
            let sigma = reference_sigma * (r * r - 1.0).max(0.0).sqrt();
            ("noise", r, ChaosPlan::noise_only(SWEEP_SEED, sigma))
        })
        .chain(
            DESYNC_INTENSITIES
                .iter()
                .map(|&i| ("desync", i, ChaosPlan::desync_sweep(SWEEP_SEED, i))),
        )
        .collect();

    let mut rows: Vec<SweepRow> = Vec::new();
    for (kind, level, plan) in plans {
        let injected = plan.inject(&victim.run.capture.samples, &victim.run.coefficient_windows);
        let corrupted = |i: usize| injected.log.is_corrupted(i);
        let lda_result = lda_sweep
            .attack_trace(&injected.samples, degree, &policy)
            .expect("lda-only sweep attack");
        let arb_result = arb_sweep
            .attack_trace(&injected.samples, degree, &policy)
            .expect("arbitrated sweep attack");
        let lda = outcome(
            &lda_result,
            &params,
            &victim.values,
            &corrupted,
            reference_sigma,
        );
        let arbitrated = outcome(
            &arb_result,
            &params,
            &victim.values,
            &corrupted,
            reference_sigma,
        );
        println!(
            "  {kind} {level:.2}: measured ratio {:.2} | lda bikz {:.2} (P {} A {} S {}) | \
             arbitrated bikz {:.2} (P {} A {} S {}, learned {} of {} armed)",
            arbitrated.measured_ratio,
            lda.bikz,
            lda.perfect,
            lda.approximate,
            lda.skipped,
            arbitrated.bikz,
            arbitrated.perfect,
            arbitrated.approximate,
            arbitrated.skipped,
            arbitrated.learned_decisions,
            arbitrated.armed_windows,
        );
        rows.push(SweepRow {
            kind,
            level,
            injected_sigma: injected.log.injected_noise_sigma,
            corrupted: injected.log.corrupted.len(),
            lda,
            arbitrated,
        });
    }

    // The contracts the artifact certifies.
    let threshold_rows: Vec<&SweepRow> = rows
        .iter()
        .filter(|r| r.kind == "noise" && r.arbitrated.measured_ratio >= RATIO_THRESHOLD)
        .collect();
    let arbitration_beats_lda = !threshold_rows.is_empty()
        && threshold_rows
            .iter()
            .all(|r| r.arbitrated.bikz < r.lda.bikz);
    let no_false_perfect = rows.iter().all(|r| {
        r.lda.wrong_perfect_on_corrupted == 0 && r.arbitrated.wrong_perfect_on_corrupted == 0
    });
    // Per-window dominance (the gate only switches rails when the learned
    // hint is at least as strong) makes this hold by construction; the
    // epsilon absorbs only float noise in the estimator fold.
    let never_worse = rows.iter().all(|r| r.arbitrated.bikz <= r.lda.bikz + 1e-9);
    println!(
        "  contracts: bit_identity={bit_identity} arbitration_beats_lda={arbitration_beats_lda} \
         no_false_perfect={no_false_perfect} never_worse={never_worse}"
    );

    let row_json: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"kind\": \"{}\", \"level\": {:.2}, \"injected_sigma\": {:.4}, \
                 \"measured_ratio\": {:.3}, \"corrupted\": {}, \"lda\": {}, \"arbitrated\": {}}}",
                r.kind,
                r.level,
                r.injected_sigma,
                r.arbitrated.measured_ratio,
                r.corrupted,
                outcome_json(&r.lda),
                outcome_json(&r.arbitrated),
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"schema\": \"reveal-bench-classifier/v1\",\n  \"scale\": \"{}\",\n  \
         \"ring_degree\": {},\n  \"profile_runs\": {},\n  \"master_seed\": {},\n  \
         \"sweep_seed\": {},\n  \"learned\": {{\"trained\": true, \"error\": null, \
         \"temperatures\": {{\"sign\": {:.4}, \"pos\": {:.4}, \"neg\": {:.4}}}, \
         \"augment_ratios\": [1.0, 2.0, 3.0]}},\n  \
         \"zero_fault\": {{\"screens_disabled\": true, \"one_shot_bikz\": {:.2}, \
         \"one_shot_bits\": \"{:016x}\", \"arbitrated_bikz\": {:.2}, \
         \"arbitrated_bits\": \"{:016x}\", \"lda_only_bits\": \"{:016x}\", \
         \"armed_windows\": {}, \"bit_identity\": {}}},\n  \
         \"contracts\": {{\"ratio_threshold\": {:.1}, \"arbitration_beats_lda\": {}, \
         \"no_false_perfect\": {}, \"never_worse\": {}}},\n  \"sweep\": [\n{}\n  ]\n}}\n",
        scale_name(scale),
        degree,
        profile_runs,
        MASTER_SEED,
        SWEEP_SEED,
        t_sign,
        t_pos,
        t_neg,
        one_shot_report.with_hints.bikz,
        one_shot_report.with_hints.bikz.to_bits(),
        arbitrated_clean_report.with_hints.bikz,
        arbitrated_clean_report.with_hints.bikz.to_bits(),
        lda_clean_report.with_hints.bikz.to_bits(),
        arbitrated_clean.diagnostics.rail.armed_windows,
        bit_identity,
        RATIO_THRESHOLD,
        arbitration_beats_lda,
        no_false_perfect,
        never_worse,
        row_json.join(",\n"),
    );
    write_artifact("BENCH_classifier.json", &json);

    assert!(
        bit_identity,
        "attaching the learned rail must not perturb a zero-fault run"
    );
    assert!(
        arbitration_beats_lda,
        "arbitration must extract strictly more than LDA-only at ≥{RATIO_THRESHOLD}× noise"
    );
    assert!(
        no_false_perfect,
        "no corrupted coefficient may be claimed as a wrong perfect hint"
    );
    assert!(
        never_worse,
        "arbitration must never be materially worse than LDA-only"
    );
}
