// Generator binaries must fail with a message naming the broken stage,
// not a bare unwrap panic; tests keep their unwraps.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
//! **Ablation A5**: POI templates versus Fisher-LDA templates on the same
//! ladder windows — the dimensionality-reduction alternative to the paper's
//! SOSD point picking (\[36\] discusses the trade-off).
//!
//! Run with `cargo run --release -p reveal-bench --bin ablation_lda`.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use reveal_attack::{extract_ladder_windows, AttackConfig, Device};
use reveal_bench::{write_artifact, Scale, PAPER_Q};
use reveal_rv32::power::PowerModelConfig;
use reveal_template::{CovarianceMode, LdaProjection, TemplateSet};
use reveal_trace::{select_pois, PoiMethod, Trace, TraceSet};

/// Gathers labelled ladder windows from chosen-value captures.
fn gather(
    device: &Device,
    runs: usize,
    config: &AttackConfig,
    rng: &mut StdRng,
) -> Vec<(i64, Vec<f64>)> {
    let n = device.degree();
    let labels: Vec<i64> = (-14..=14).collect();
    let mut out = Vec::new();
    for run in 0..runs {
        let mut values: Vec<i64> = (0..n)
            .map(|i| labels[(i + run * n) % labels.len()])
            .collect();
        values.shuffle(rng);
        let Ok(cap) = device.capture_chosen(&values, rng) else {
            continue;
        };
        let Ok(windows) = extract_ladder_windows(&cap.run.capture.samples, config) else {
            continue;
        };
        if windows.len() != n {
            continue;
        }
        for (w, &v) in windows.into_iter().zip(&values) {
            out.push((v, w));
        }
    }
    out
}

fn accuracy_poi(train: &[(i64, Vec<f64>)], test: &[(i64, Vec<f64>)], pois: usize) -> f64 {
    let mut set = TraceSet::new();
    for (l, w) in train {
        set.push(Trace::labelled(w.clone(), *l));
    }
    let Ok(poi_idx) = select_pois(&set, PoiMethod::Sosd, pois, 2) else {
        return 0.0;
    };
    let Ok(templates) = TemplateSet::fit_trace_set(&set, &poi_idx, CovarianceMode::Pooled, 1e-6)
    else {
        return 0.0;
    };
    let hits = test
        .iter()
        .filter(|(l, w)| {
            let obs: Vec<f64> = poi_idx.iter().map(|&i| w[i]).collect();
            templates.classify(&obs).map(|s| s.best_label()) == Ok(*l)
        })
        .count();
    hits as f64 / test.len().max(1) as f64
}

fn accuracy_lda(train: &[(i64, Vec<f64>)], test: &[(i64, Vec<f64>)], components: usize) -> f64 {
    let Ok(lda) = LdaProjection::fit(train, components, 1e-3) else {
        return 0.0;
    };
    let projected: Vec<(i64, Vec<f64>)> = train.iter().map(|(l, w)| (*l, lda.project(w))).collect();
    let Ok(templates) = TemplateSet::fit(&projected, CovarianceMode::Pooled, 1e-9) else {
        return 0.0;
    };
    let hits = test
        .iter()
        .filter(|(l, w)| templates.classify(&lda.project(w)).map(|s| s.best_label()) == Ok(*l))
        .count();
    hits as f64 / test.len().max(1) as f64
}

fn main() {
    let scale = Scale::from_env();
    let (profile_runs, attack_runs, _) = scale.attack_workload();
    let n = 64;
    let device = Device::new(
        n,
        &[PAPER_Q],
        PowerModelConfig::default().with_noise_sigma(0.05),
    )
    .expect("device");
    let config = AttackConfig::default();
    let mut rng = StdRng::seed_from_u64(616);
    println!("Ablation: SOSD-POI templates vs Fisher-LDA templates ({scale:?}, n = {n})\n");

    let train = gather(&device, profile_runs, &config, &mut rng);
    let test = gather(&device, attack_runs.max(6), &config, &mut rng);
    println!(
        "{} training windows, {} test windows",
        train.len(),
        test.len()
    );

    println!("\n{:>22} {:>12}", "feature extraction", "value_acc");
    println!("{}", "-".repeat(38));
    let mut csv = String::from("features,value_acc\n");
    for pois in [6usize, 10, 16] {
        let acc = accuracy_poi(&train, &test, pois);
        println!("{:>22} {:>11.1}%", format!("SOSD-{pois} POIs"), 100.0 * acc);
        csv.push_str(&format!("sosd_{pois},{acc:.4}\n"));
    }
    for comps in [4usize, 8, 16] {
        let acc = accuracy_lda(&train, &test, comps);
        println!(
            "{:>22} {:>11.1}%",
            format!("LDA-{comps} comps"),
            100.0 * acc
        );
        csv.push_str(&format!("lda_{comps},{acc:.4}\n"));
    }
    write_artifact("ablation_lda.csv", &csv);
    println!(
        "\nreading: LDA condenses the whole {}-sample window into a handful of \
         discriminant directions and is competitive with hand-picked POIs — at \
         the cost of estimating a {}×{} scatter (the 'curse of dimensionality' \
         trade-off of [36]).",
        config.ladder_window, config.ladder_window, config.ladder_window
    );
}
