// Generator binaries must fail with a message naming the broken stage,
// not a bare unwrap panic; tests keep their unwraps.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
//! **Ablation A4 / §V-A**: quantitative evaluation of the shuffling
//! countermeasure the paper recommends — coefficient-order randomization
//! keeps the per-window leakage but destroys the coordinate assignment the
//! hints framework needs.
//!
//! Run with `cargo run --release -p reveal-bench --bin defense_shuffling`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use reveal_attack::{evaluate_against_shuffling, ShuffledDevice};
use reveal_bench::{paper_device, train_attacker, write_artifact, Scale};

fn main() {
    let scale = Scale::from_env();
    let (profile_runs, attack_runs, _) = scale.attack_workload();
    let n = 64;
    println!("Defense evaluation: shuffling countermeasure ({scale:?}, n = {n})\n");
    let device = paper_device(n, 0.05);
    let attack = train_attacker(&device, profile_runs, 5);

    // Unprotected baseline.
    let mut rng = StdRng::seed_from_u64(2025);
    let mut base_acc = 0.0;
    let mut base_trials = 0usize;
    for _ in 0..attack_runs.max(6) {
        let cap = device.capture_fresh(&mut rng).expect("capture");
        if let Ok(result) = attack.attack_trace_expecting(&cap.run.capture.samples, n) {
            base_acc += result.value_accuracy(&cap.values);
            base_trials += 1;
        }
    }
    base_acc /= base_trials.max(1) as f64;

    // Shuffled device.
    let shuffled = ShuffledDevice::new(device);
    let (mut positional, mut coordinate, mut chance) = (0.0f64, 0.0f64, 0.0f64);
    let mut trials = 0usize;
    for _ in 0..attack_runs.max(6) {
        let cap = shuffled.capture_fresh(&mut rng).expect("capture");
        if let Ok((_, eval)) = evaluate_against_shuffling(&attack, &cap) {
            positional += eval.positional_accuracy;
            coordinate += eval.coordinate_accuracy;
            chance += eval.chance_level;
            trials += 1;
        }
    }
    let t = trials.max(1) as f64;
    positional /= t;
    coordinate /= t;
    chance /= t;

    println!("{:>34} {:>10}", "metric", "value");
    println!("{}", "-".repeat(46));
    println!(
        "{:>34} {:>9.1}%",
        "unprotected value accuracy",
        100.0 * base_acc
    );
    println!(
        "{:>34} {:>9.1}%",
        "shuffled per-window accuracy",
        100.0 * positional
    );
    println!(
        "{:>34} {:>9.1}%",
        "shuffled per-coordinate accuracy",
        100.0 * coordinate
    );
    println!(
        "{:>34} {:>9.1}%",
        "random-assignment chance level",
        100.0 * chance
    );
    let csv = format!(
        "metric,value\nunprotected_value_acc,{base_acc:.4}\nshuffled_positional_acc,{positional:.4}\nshuffled_coordinate_acc,{coordinate:.4}\nchance_level,{chance:.4}\n"
    );
    write_artifact("defense_shuffling.csv", &csv);

    assert!(
        positional > 0.4,
        "shuffling must not hide the leakage itself"
    );
    assert!(
        coordinate < chance + 0.15,
        "shuffling must push coordinate accuracy to chance"
    );
    println!("\nreading: shuffling leaves the window-level leakage intact but the attacker");
    println!("can no longer attach hints to coordinates — exactly why the paper favours");
    println!("shuffling over masking against single-trace attacks.");
}
