// Generator binaries must fail with a message naming the broken stage,
// not a bare unwrap panic; tests keep their unwraps.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
//! **Chaos robustness sweep**: runs the self-healing attack driver against
//! `reveal-chaos` fault plans of increasing intensity and records how the
//! hint ladder degrades — perfect hints must fall, approximate/skipped
//! hints must rise, mean confidence must fall, and no corrupted
//! coefficient may ever be claimed as a *wrong* perfect hint.
//!
//! Emits `BENCH_chaos.json` under `target/reveal/` (schema
//! `reveal-bench-chaos/v1`); a committed copy lives in `docs/results/`.
//!
//! Run with `cargo run --release -p reveal-bench --bin bench_chaos`
//! (honours `REVEAL_QUICK` / `REVEAL_FULL` and `REVEAL_THREADS`).

use rand::rngs::StdRng;
use rand::SeedableRng;
use reveal_attack::{
    calibrate, report_robust, AttackConfig, HintDecision, RobustAttack, TrainedAttack,
};
use reveal_bench::{paper_device, write_artifact, Scale};
use reveal_chaos::ChaosPlan;
use reveal_hints::{HintPolicy, LweParameters};

const MASTER_SEED: u64 = 0xC4A0_5BE9;
const CHAOS_SEED: u64 = 41;
// Dense steps through the knee region (~0.1–0.25, where the noise floor
// ramps from zero toward the prior) plus the coarse high-intensity tail.
const INTENSITIES: [f64; 8] = [0.0, 0.1, 0.15, 0.2, 0.25, 0.5, 0.75, 1.0];

/// One intensity step's measurements.
struct SweepRow {
    intensity: f64,
    corrupted: usize,
    perfect: usize,
    approximate: usize,
    skipped: usize,
    wrong_perfect_on_corrupted: usize,
    mean_confidence: f64,
    noise_sigma: f64,
    variance_inflation: f64,
    relaxation_rung: usize,
    healed: usize,
    with_hints_bikz: f64,
}

fn main() {
    let scale = Scale::from_env();
    let (profile_runs, degree) = match scale {
        Scale::Quick => (20, 32),
        Scale::Standard => (40, 64),
        Scale::Full => (80, 128),
    };

    let device = paper_device(degree, 0.05);
    let attack =
        TrainedAttack::profile_seeded(&device, profile_runs, &AttackConfig::default(), MASTER_SEED)
            .expect("profiling succeeds at nominal settings");

    let mut rng = StdRng::seed_from_u64(MASTER_SEED ^ 1);
    let clean = device.capture_fresh(&mut rng).expect("calibration capture");
    let calibration = calibrate(&clean.run.capture.samples, attack.config()).expect("calibration");
    let victim = device.capture_fresh(&mut rng).expect("victim capture");
    let robust = RobustAttack::new(&attack).with_calibration(calibration);
    let policy = HintPolicy::seal_paper();
    let params = LweParameters::seal_128_paper();

    println!(
        "chaos sweep: n={degree} profile_runs={profile_runs} \
         intensities={INTENSITIES:?} seed={CHAOS_SEED}"
    );

    let mut rows = Vec::new();
    for intensity in INTENSITIES {
        let plan = ChaosPlan::standard_sweep(CHAOS_SEED, intensity);
        let injected = plan.inject(&victim.run.capture.samples, &victim.run.coefficient_windows);
        let result = robust
            .attack_trace(&injected.samples, degree, &policy)
            .expect("the robust driver must yield a structured result at every intensity");
        assert_eq!(result.coefficients.len(), degree);

        let (perfect, approximate, skipped) = result.decision_counts();
        let wrong_perfect_on_corrupted = result
            .coefficients
            .iter()
            .enumerate()
            .filter(|(i, c)| {
                injected.log.is_corrupted(*i)
                    && matches!(c.decision,
                        HintDecision::Perfect { value } if value != victim.values[*i])
            })
            .count();
        let mean_confidence = result
            .coefficients
            .iter()
            .map(|c| c.confidence)
            .sum::<f64>()
            / degree as f64;
        let report = report_robust(&result, &params).expect("security report");

        println!(
            "  intensity {intensity:.2}: corrupted {:>3}  perfect {perfect:>3}  \
             approx {approximate:>3}  skipped {skipped:>3}  mean_conf {mean_confidence:.3}  \
             bikz {:.1}  rung {}  healed {}",
            injected.log.corrupted.len(),
            report.with_hints.bikz,
            result.diagnostics.relaxation_rung,
            result.diagnostics.healed_merges + result.diagnostics.healed_splits,
        );

        rows.push(SweepRow {
            intensity,
            corrupted: injected.log.corrupted.len(),
            perfect,
            approximate,
            skipped,
            wrong_perfect_on_corrupted,
            mean_confidence,
            noise_sigma: result.diagnostics.noise_sigma,
            variance_inflation: result.diagnostics.variance_inflation,
            relaxation_rung: result.diagnostics.relaxation_rung,
            healed: result.diagnostics.healed_merges + result.diagnostics.healed_splits,
            with_hints_bikz: report.with_hints.bikz,
        });
    }

    // The degradation contracts the artifact certifies.
    let no_false_perfect = rows.iter().all(|r| r.wrong_perfect_on_corrupted == 0);
    let monotone_perfect = rows.windows(2).all(|w| w[1].perfect <= w[0].perfect);
    let monotone_confidence = rows
        .windows(2)
        .all(|w| w[1].mean_confidence <= w[0].mean_confidence + 1e-9);
    // Weaker hints mean a higher residual security estimate; the small
    // slack absorbs sub-knee reshuffling between hint classes.
    let monotone_bikz = rows
        .windows(2)
        .all(|w| w[1].with_hints_bikz >= w[0].with_hints_bikz - 0.05);
    println!(
        "  contracts: no_false_perfect={no_false_perfect} \
         monotone_perfect={monotone_perfect} monotone_confidence={monotone_confidence} \
         monotone_bikz={monotone_bikz}"
    );

    let row_json: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"intensity\": {:.2}, \"corrupted\": {}, \"perfect\": {}, \
                 \"approximate\": {}, \"skipped\": {}, \"wrong_perfect_on_corrupted\": {}, \
                 \"mean_confidence\": {:.4}, \"noise_sigma\": {:.4}, \
                 \"variance_inflation\": {:.3}, \"relaxation_rung\": {}, \"healed\": {}, \
                 \"with_hints_bikz\": {:.2}}}",
                r.intensity,
                r.corrupted,
                r.perfect,
                r.approximate,
                r.skipped,
                r.wrong_perfect_on_corrupted,
                r.mean_confidence,
                r.noise_sigma,
                r.variance_inflation,
                r.relaxation_rung,
                r.healed,
                r.with_hints_bikz,
            )
        })
        .collect();
    let baseline = reveal_hints::DbddInstance::from_lwe(&params).estimate();
    let json = format!(
        "{{\n  \"schema\": \"reveal-bench-chaos/v1\",\n  \"scale\": \"{}\",\n  \
         \"ring_degree\": {},\n  \"profile_runs\": {},\n  \"chaos_seed\": {},\n  \
         \"baseline_bikz\": {:.2},\n  \"no_false_perfect\": {},\n  \
         \"monotone_perfect\": {},\n  \"monotone_confidence\": {},\n  \
         \"monotone_bikz\": {},\n  \"sweep\": [\n{}\n  ]\n}}\n",
        match scale {
            Scale::Quick => "quick",
            Scale::Standard => "standard",
            Scale::Full => "full",
        },
        degree,
        profile_runs,
        CHAOS_SEED,
        baseline.bikz,
        no_false_perfect,
        monotone_perfect,
        monotone_confidence,
        monotone_bikz,
        row_json.join(",\n"),
    );
    write_artifact("BENCH_chaos.json", &json);

    assert!(
        no_false_perfect,
        "a corrupted coefficient was claimed as a wrong perfect hint"
    );
    assert!(
        monotone_perfect,
        "perfect-hint count must not rise with intensity"
    );
    assert!(
        monotone_confidence,
        "mean confidence must not rise with intensity"
    );
    assert!(
        monotone_bikz,
        "residual security must not fall as corruption rises"
    );
}
