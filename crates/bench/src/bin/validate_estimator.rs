// Generator binaries must fail with a message naming the broken stage,
// not a bare unwrap panic; tests keep their unwraps.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
//! **Estimator validation**: the DBDD-lite β *predictions* (`reveal-hints`)
//! against *actual* lattice solving (`reveal-lattice`) on small instances —
//! cross-checking the two halves of the security story against each other.
//!
//! For a sweep of LWE dimensions, the estimator predicts the required block
//! size; the concrete solver then reduces the Kannan embedding with a
//! progressive β schedule and reports the block size at which the secret
//! actually appeared. The prediction should trend with (and roughly bound)
//! the observation.
//!
//! Run with `cargo run --release -p reveal-bench --bin validate_estimator`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use reveal_bench::write_artifact;
use reveal_hints::{DbddInstance, LweParameters};
use reveal_lattice::embedding::{random_instance, solve_lwe, SolverConfig};

fn main() {
    println!("Estimator-vs-solver cross-validation (q = 3329, ternary secret, |e| <= 2)\n");
    println!(
        "{:>4} {:>4} {:>16} {:>16} {:>10}",
        "n", "m", "predicted beta", "solved at beta", "solved?"
    );
    println!("{}", "-".repeat(56));
    let mut csv = String::from("n,m,predicted_beta,solved_at_beta,solved\n");
    let mut rng = StdRng::seed_from_u64(99);
    let sigma_e = 1.3; // std of uniform{-2..2}
    let mut predictions = Vec::new();
    let mut observations = Vec::new();
    for &(n, m) in &[
        // Easy regime (many samples) and a harder tail (few samples, where
        // the embedding dimension squeezes the uSVP gap).
        (4usize, 8usize),
        (6, 12),
        (8, 16),
        (10, 20),
        (12, 16),
        (14, 18),
        (16, 20),
    ] {
        let params = LweParameters {
            n,
            m,
            q: 3329.0,
            error_std: sigma_e,
            secret_std: (2.0f64 / 3.0).sqrt(),
        };
        let predicted = DbddInstance::from_lwe(&params).estimate().bikz;
        // Average the actually-needed block size over a few instances.
        let trials = 3;
        let mut solved_betas = Vec::new();
        for _ in 0..trials {
            let (instance, secret, _) = random_instance(n, m, 3329, 2, &mut rng);
            let config = SolverConfig {
                beta_schedule: vec![2, 3, 4, 6, 8, 10, 14, 18, 24],
                ..SolverConfig::default()
            };
            match solve_lwe(&instance, &config) {
                Ok(sol) if sol.secret == secret => solved_betas.push(sol.solved_at_beta as f64),
                _ => {}
            }
        }
        let solved = !solved_betas.is_empty();
        let avg_beta = solved_betas.iter().sum::<f64>() / solved_betas.len().max(1) as f64;
        println!(
            "{:>4} {:>4} {:>16.2} {:>16.2} {:>9}/{}",
            n,
            m,
            predicted,
            avg_beta,
            solved_betas.len(),
            trials
        );
        csv.push_str(&format!(
            "{n},{m},{predicted:.2},{avg_beta:.2},{}\n",
            solved_betas.len()
        ));
        if solved {
            predictions.push(predicted);
            observations.push(avg_beta);
        }
    }
    write_artifact("validate_estimator.csv", &csv);

    // Every instance in this easy regime must be solvable, and the
    // prediction must be non-decreasing with the observation trend.
    assert!(
        observations.len() >= 5,
        "solver must succeed across the sweep"
    );
    let pred_span =
        predictions.last().copied().unwrap_or(0.0) - predictions.first().copied().unwrap_or(0.0);
    assert!(
        pred_span.abs() < 80.0,
        "tiny instances should all predict the easy regime"
    );
    println!(
        "\nreading: in the β ≤ 24 regime both the estimator and the concrete \
         solver agree these instances are easy (LLL or small-block BKZ \
         suffices) — the hints pipeline and the lattice pipeline tell one \
         consistent story. At cryptographic sizes only the estimator can \
         speak, which is exactly how the paper uses it."
    );
}
