// Generator binaries must fail with a message naming the broken stage,
// not a bare unwrap panic; tests keep their unwraps.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
//! **E9** generator: end-to-end message recovery on reduced-dimension
//! parameters — the step the paper only *estimates* (via bikz), executed for
//! real: single trace → coefficient posteriors → exact relations from the
//! confident ones → BKZ finisher → plaintext.
//!
//! Run with `cargo run --release -p reveal-bench --bin end_to_end_recovery`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reveal_attack::{recover_adaptive, AttackConfig, Device, TrainedAttack};
use reveal_bfv::{BfvContext, EncryptionParameters, Encryptor, KeyGenerator, NullProbe, Plaintext};
use reveal_math::Modulus;
use reveal_rv32::power::PowerModelConfig;

fn main() {
    let n = 32usize;
    let q = 3329u64;
    let t = 16u64;
    let trials = if std::env::var_os("REVEAL_QUICK").is_some() {
        3
    } else {
        10
    };
    println!(
        "End-to-end single-trace message recovery (n = {n}, q = {q}, t = {t}, {trials} trials)\n"
    );

    let parms = EncryptionParameters::new(
        n,
        vec![Modulus::new(q).expect("q")],
        Modulus::new(t).expect("t"),
    )
    .expect("parameters");
    let ctx = BfvContext::new(parms).expect("context");
    let mut rng = StdRng::seed_from_u64(12345);
    let keygen = KeyGenerator::new(&ctx);
    let sk = keygen.secret_key(&mut rng);
    let pk = keygen.public_key(&sk, &mut rng);
    let encryptor = Encryptor::new(&ctx, &pk);

    let device =
        Device::new(n, &[q], PowerModelConfig::default().with_noise_sigma(0.02)).expect("device");
    let mut adv_rng = StdRng::seed_from_u64(555);
    let attack = TrainedAttack::profile(&device, 60, &AttackConfig::default(), &mut adv_rng)
        .expect("profiling");

    let mut recovered_count = 0usize;
    let mut trusted_sum = 0usize;
    for trial in 0..trials {
        let message: Vec<u64> = (0..n).map(|_| rng.gen_range(0..t)).collect();
        let plain = Plaintext::new(&ctx, &message);
        let (ct, wit) =
            encryptor.encrypt_observed(&plain, &mut rng, &mut NullProbe, &mut NullProbe);
        let capture = device.capture_chosen(&wit.e2, &mut rng).expect("capture");
        let Ok(result) = attack.attack_trace_expecting(&capture.run.capture.samples, n) else {
            println!("trial {trial}: segmentation mismatch, skipped");
            continue;
        };
        let estimates: Vec<(i64, f64)> = result
            .coefficients
            .iter()
            .map(|c| (c.predicted, c.confidence()))
            .collect();
        match recover_adaptive(&ctx, &pk, &ct, &estimates, 0.85) {
            Ok((recovered, _, trusted)) if recovered.coeffs() == plain.coeffs() => {
                recovered_count += 1;
                trusted_sum += trusted;
                println!(
                    "trial {trial}: RECOVERED (trusted {trusted}/{n} coefficients, value accuracy {:.0}%)",
                    100.0 * result.value_accuracy(&wit.e2)
                );
            }
            Ok(_) => println!("trial {trial}: finisher converged to a wrong message"),
            Err(e) => println!("trial {trial}: finisher failed ({e})"),
        }
    }
    println!(
        "\nfull plaintext recovery: {recovered_count}/{trials} traces \
         (avg trusted coefficients {:.1}/{n})",
        trusted_sum as f64 / recovered_count.max(1) as f64
    );
    assert!(
        recovered_count * 2 >= trials,
        "the finisher should succeed on most traces at this SNR"
    );
}
