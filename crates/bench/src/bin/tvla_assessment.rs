// Generator binaries must fail with a message naming the broken stage,
// not a bare unwrap panic; tests keep their unwraps.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
//! **TVLA certification run**: grading the sampler variants the way an
//! evaluation lab would — fixed-vs-random Welch t-tests on the ladder
//! windows. A certified-constant-leakage implementation must keep every
//! sample below |t| = 4.5; the vulnerable sampler fails catastrophically,
//! and the §V-A variants fail in exactly the ways the attack experiments
//! predict.
//!
//! Fixed class: windows whose coefficient is a fixed value (−3).
//! Random class: windows with fresh Gaussian coefficients.
//!
//! Run with `cargo run --release -p reveal-bench --bin tvla_assessment`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use reveal_attack::{extract_ladder_windows, AttackConfig, Device};
use reveal_bench::{write_artifact, Scale, PAPER_Q};
use reveal_rv32::kernel::KernelVariant;
use reveal_rv32::power::PowerModelConfig;
use reveal_trace::tvla::{welch_t_test, TVLA_THRESHOLD};

fn collect_windows(
    device: &Device,
    fixed_value: Option<i64>,
    captures: usize,
    config: &AttackConfig,
    rng: &mut StdRng,
) -> Vec<Vec<f64>> {
    let n = device.degree();
    let mut out = Vec::new();
    for _ in 0..captures {
        let cap = match fixed_value {
            Some(v) => device.capture_chosen(&vec![v; n], rng),
            None => device.capture_fresh(rng),
        };
        let Ok(cap) = cap else { continue };
        if let Ok(windows) = extract_ladder_windows(&cap.run.capture.samples, config) {
            if windows.len() == n {
                out.extend(windows);
            }
        }
    }
    out
}

fn assess(variant: KernelVariant, name: &str, scale: Scale) -> Option<(f64, usize, usize)> {
    let captures = match scale {
        Scale::Quick => 6,
        _ => 16,
    };
    let n = 32;
    let device = Device::with_variant(
        n,
        &[PAPER_Q],
        PowerModelConfig::default().with_noise_sigma(0.05),
        variant,
    )
    .expect("device");
    let config = AttackConfig::default();
    let mut rng = StdRng::seed_from_u64(4242);
    let fixed = collect_windows(&device, Some(-3), captures, &config, &mut rng);
    let random = collect_windows(&device, None, captures, &config, &mut rng);
    if fixed.len() < 2 || random.len() < 2 {
        println!("{name}: not enough windows");
        return None;
    }
    let r = welch_t_test(&fixed, &random).expect("well-formed groups");
    Some((r.max_abs_t, r.failing_samples.len(), r.t_statistics.len()))
}

fn main() {
    let scale = Scale::from_env();
    println!(
        "TVLA fixed-vs-random assessment (fixed class: coefficient = -3), \
         threshold |t| = {TVLA_THRESHOLD} ({scale:?})\n"
    );
    println!(
        "{:>24} {:>10} {:>18} {:>10}",
        "variant", "max |t|", "failing samples", "verdict"
    );
    println!("{}", "-".repeat(68));
    let mut csv = String::from("variant,max_t,failing,total\n");
    let mut results = Vec::new();
    for (variant, name) in [
        (KernelVariant::Vulnerable, "vulnerable (v3.2)"),
        (KernelVariant::MaskedLadder, "masked ladder"),
        (KernelVariant::Branchless, "branchless (v3.6)"),
    ] {
        if let Some((max_t, failing, total)) = assess(variant, name, scale) {
            let verdict = if failing == 0 { "PASS" } else { "FAIL" };
            println!(
                "{:>24} {:>10.1} {:>12}/{:<5} {:>10}",
                name, max_t, failing, total, verdict
            );
            csv.push_str(&format!("{name},{max_t:.2},{failing},{total}\n"));
            results.push((name.to_string(), max_t, failing));
        }
    }
    write_artifact("tvla_assessment.csv", &csv);

    // Every variant must FAIL: the vulnerable ladder through control flow
    // and data, the masked ladder through the unmasked load/negation and the
    // branches, the branchless one through residual data-flow leakage.
    for (name, max_t, failing) in &results {
        assert!(
            *failing > 0 && *max_t > TVLA_THRESHOLD,
            "{name} unexpectedly passes TVLA"
        );
    }
    println!(
        "\nreading: all three samplers fail TVLA — including the masked and \
         branchless variants — confirming the attack results: none of the \
         §V-A half-measures reaches certification-grade leakage freedom. \
         Only value-independent control AND data flow (e.g. a CDT sampler \
         with constant-weight table lookups, plus shuffling) could pass."
    );
}
