// Generator binaries must fail with a message naming the broken stage,
// not a bare unwrap panic; tests keep their unwraps.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
//! **Ablation A2**: POI selection — method (SOSD as in the paper, SOST,
//! plain mean-variance) and POI count versus attack accuracy, quantifying
//! the "curse of dimensionality" trade-off (§V-B).
//!
//! Run with `cargo run --release -p reveal-bench --bin ablation_poi`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use reveal_attack::{AttackConfig, TrainedAttack};
use reveal_bench::{paper_device, write_artifact, Scale};
use reveal_trace::PoiMethod;

fn main() {
    let scale = Scale::from_env();
    let (profile_runs, attack_runs, _) = scale.attack_workload();
    let n = 64;
    println!("Ablation: POI method and count vs accuracy ({scale:?}, n = {n})\n");
    println!(
        "{:>14} {:>6} {:>12} {:>12}",
        "method", "pois", "sign_acc", "value_acc"
    );
    let mut csv = String::from("method,pois,sign_acc,value_acc\n");
    let device = paper_device(n, 0.05);
    for method in [PoiMethod::Sosd, PoiMethod::Sost, PoiMethod::MeanVariance] {
        for poi_count in [3usize, 6, 10, 16, 24] {
            let config = AttackConfig {
                poi_method: method,
                poi_count,
                ..AttackConfig::default()
            };
            let mut rng = StdRng::seed_from_u64(909);
            let Ok(attack) = TrainedAttack::profile(&device, profile_runs, &config, &mut rng)
            else {
                println!("{method:>14?} {poi_count:>6} profiling failed");
                continue;
            };
            let (mut sh, mut vh, mut total) = (0usize, 0usize, 0usize);
            for _ in 0..attack_runs.max(5) {
                let cap = device.capture_fresh(&mut rng).expect("capture");
                let Ok(result) = attack.attack_trace_expecting(&cap.run.capture.samples, n) else {
                    continue;
                };
                for (est, &truth) in result.coefficients.iter().zip(&cap.values) {
                    total += 1;
                    sh += (est.sign == truth.signum()) as usize;
                    vh += (est.predicted == truth) as usize;
                }
            }
            if total == 0 {
                continue;
            }
            let sign_acc = sh as f64 / total as f64;
            let value_acc = vh as f64 / total as f64;
            println!(
                "{:>14} {:>6} {:>11.1}% {:>11.1}%",
                format!("{method:?}"),
                poi_count,
                100.0 * sign_acc,
                100.0 * value_acc
            );
            csv.push_str(&format!(
                "{method:?},{poi_count},{sign_acc:.4},{value_acc:.4}\n"
            ));
        }
    }
    write_artifact("ablation_poi.csv", &csv);
    println!("\nreading: a handful of well-chosen POIs carries the attack; too few starves");
    println!("the negative-branch fusion, and methods agree at this SNR (SOSD suffices,");
    println!("as the paper chose).");
}
