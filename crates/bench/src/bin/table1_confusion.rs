// Generator binaries must fail with a message naming the broken stage,
// not a bare unwrap panic; tests keep their unwraps.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
//! **Table I** generator: attack success percentages per coefficient.
//! Columns are the actual sampled coefficients, rows the predictions;
//! the paper prints the [-7, 7] view, the full matrix goes to CSV.
//!
//! Scale: `REVEAL_QUICK=1` for smoke, default ≈ 60k/12k windows,
//! `REVEAL_FULL=1` for the paper's 220k/25k.
//!
//! Run with `cargo run --release -p reveal-bench --bin table1_confusion`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use reveal_bench::{paper_device, train_attacker, write_artifact, Scale};
use reveal_template::ConfusionMatrix;

fn main() {
    let scale = Scale::from_env();
    let (profile_runs, attack_runs, n) = scale.attack_workload();
    println!(
        "Table I: template-attack confusion matrix ({scale:?}: {} profiling windows, {} attack windows, n = {n})",
        profile_runs * n,
        attack_runs * n
    );
    let device = paper_device(n, 0.05);
    let attack = train_attacker(&device, profile_runs, 1);

    let mut rng = StdRng::seed_from_u64(777);
    let mut cm = ConfusionMatrix::new();
    let mut discarded = 0usize;
    for _ in 0..attack_runs {
        let capture = device.capture_fresh(&mut rng).expect("capture");
        match attack.attack_trace_expecting(&capture.run.capture.samples, n) {
            Ok(result) => {
                for (est, &truth) in result.coefficients.iter().zip(&capture.values) {
                    cm.record(truth, est.predicted);
                }
            }
            Err(_) => discarded += 1,
        }
    }
    if discarded > 0 {
        println!("({discarded} traces discarded due to segmentation mismatches)");
    }

    println!("\ncolumns = actual coefficient, rows = predicted, cells = % of column\n");
    println!("{}", cm.render(-7, 7));
    println!("overall value accuracy: {:.1}%", 100.0 * cm.accuracy());
    println!("sign accuracy:          {:.2}%", 100.0 * cm.sign_accuracy());
    println!("zero-column recall:     {:.1}%", cm.column_percentage(0, 0));
    let neg_diag: f64 = (1..=7).map(|v| cm.column_percentage(-v, -v)).sum::<f64>() / 7.0;
    let pos_diag: f64 = (1..=7).map(|v| cm.column_percentage(v, v)).sum::<f64>() / 7.0;
    println!("mean diagonal, negatives [-7,-1]: {neg_diag:.1}%  (paper: 54.2–95.7 for [-1,-5])");
    println!("mean diagonal, positives [1,7]:   {pos_diag:.1}%  (paper: 16.0–31.8)");
    write_artifact("table1_confusion_full.csv", &cm.to_csv());

    assert!(cm.sign_accuracy() > 0.99, "paper: 100% sign success");
    assert!(
        neg_diag > pos_diag,
        "paper: negatives more accurately extracted"
    );
}
