// Generator binaries must fail with a message naming the broken stage,
// not a bare unwrap panic; tests keep their unwraps.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
//! **Scheme-agnosticism demo**: the RevEAL attack against a *CKKS*
//! encryption. SEAL used the same `set_poly_coeffs_normal` routine for BFV
//! and CKKS, so one power trace of a CKKS encryption leaks its error
//! polynomial the same way — and with CKKS the message recovery is even
//! more direct: `c0 − p0·u = m + e1`, and decoding absorbs the small `e1`
//! as approximation error.
//!
//! Run with `cargo run --release -p reveal-bench --bin ckks_attack`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use reveal_attack::{AttackConfig, Device, TrainedAttack};
use reveal_bfv::NullProbe;
use reveal_ckks::{encrypt_observed, keygen, CkksContext, Complex};
use reveal_lattice::{solve_lwe, LweInstance, SolverConfig};
use reveal_math::primes::ntt_primes;
use reveal_rv32::power::PowerModelConfig;

fn main() {
    let n = 32usize;
    // A 30-bit prime fits the RV32 device's data path.
    let q = ntt_primes(30, 2 * n as u64, 1).expect("prime").remove(0);
    let scale = 1u64 << 12;
    let ctx = CkksContext::new(n, vec![q], scale).expect("context");
    let mut rng = StdRng::seed_from_u64(808);
    let (sk, pk) = keygen(&ctx, &mut rng);

    // The clinic's readings again — now as approximate reals under CKKS.
    let slots: Vec<Complex> = (0..n / 2)
        .map(|i| Complex::new(0.5 + 0.125 * i as f64, 0.0))
        .collect();
    let (ct, witness) =
        encrypt_observed(&ctx, &pk, &slots, &mut rng, &mut NullProbe, &mut NullProbe)
            .expect("encrypt");
    let reference = reveal_ckks::decrypt(&ctx, &sk, &ct).expect("decrypt");
    println!(
        "CKKS roundtrip OK: slot 3 = {:.4} (expected {:.4})",
        reference[3].re, slots[3].re
    );

    // The adversary: profile the device, capture THIS encryption's sampler
    // trace, attack.
    let device = Device::new(
        n,
        &[q.value()],
        PowerModelConfig::default().with_noise_sigma(0.02),
    )
    .expect("device");
    let mut adv_rng = StdRng::seed_from_u64(909);
    let attack = TrainedAttack::profile(&device, 60, &AttackConfig::default(), &mut adv_rng)
        .expect("profiling");
    let capture = device
        .capture_chosen(&witness.e2, &mut rng)
        .expect("capture");
    let result = attack
        .attack_trace_expecting(&capture.run.capture.samples, n)
        .expect("attack");
    println!(
        "single-trace attack on the CKKS encryption: sign accuracy {:.0}%, value accuracy {:.0}%",
        100.0 * result.sign_accuracy(&witness.e2),
        100.0 * result.value_accuracy(&witness.e2)
    );

    // Lattice finisher: exact relations from the confident coefficients.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        result.coefficients[b]
            .confidence()
            .partial_cmp(&result.coefficients[a].confidence())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let q_i = q.value() as i64;
    let p1 = pk.p1().residues()[0].coeffs();
    let c1 = ct.parts()[1].residues()[0].coeffs();
    let config = SolverConfig {
        error_bound: 0,
        secret_bound: 1,
        ..SolverConfig::default()
    };
    let mut recovered_u: Option<Vec<i64>> = None;
    for shrink in 0..5 {
        let keep = n - shrink * n / 10;
        let known: Vec<usize> = order[..keep]
            .iter()
            .copied()
            .filter(|&i| result.coefficients[i].confidence() > 0.8)
            .collect();
        if known.len() < n / 2 {
            break;
        }
        let a: Vec<Vec<i64>> = known
            .iter()
            .map(|&i| {
                (0..n)
                    .map(|j| {
                        if j <= i {
                            p1[i - j] as i64
                        } else {
                            (q_i - p1[n + i - j] as i64) % q_i
                        }
                    })
                    .collect()
            })
            .collect();
        let b: Vec<i64> = known
            .iter()
            .map(|&i| (c1[i] as i64 - result.coefficients[i].predicted).rem_euclid(q_i))
            .collect();
        if let Ok(sol) = solve_lwe(&LweInstance { q: q_i, a, b }, &config) {
            recovered_u = Some(sol.secret);
            println!(
                "lattice finisher succeeded with {} trusted relations",
                known.len()
            );
            break;
        }
    }
    let u = recovered_u.expect("finisher should succeed at this SNR");
    assert_eq!(u, witness.u, "the encryption sample u is recovered");

    // m + e1 = c0 − p0·u: decode directly; e1 becomes approximation error.
    let basis = ctx.basis(0);
    let u_rns = basis.from_signed(&u);
    let m_plus_e1 = ct.parts()[0].sub(&pk.p0().mul(&u_rns));
    let coeffs: Vec<i64> = m_plus_e1.residues()[0].to_signed();
    let stolen = ctx.encoder().decode_scaled(&coeffs, scale as f64);
    println!("\nrecovered slots vs original (first 6):");
    let mut worst = 0.0f64;
    for i in 0..6 {
        println!("  slot {i}: {:.4} vs {:.4}", stolen[i].re, slots[i].re);
    }
    for (s, z) in stolen.iter().zip(&slots) {
        worst = worst.max((*s - *z).abs());
    }
    println!("worst-case slot error: {worst:.4} (the e1 noise, absorbed by decoding)");
    assert!(worst < 0.05, "CKKS message recovered to encoding precision");
    println!("\n=> the attack is scheme-agnostic: CKKS encryptions leak exactly like BFV's.");
}
