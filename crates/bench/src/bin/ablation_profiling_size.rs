// Generator binaries must fail with a message naming the broken stage,
// not a bare unwrap panic; tests keep their unwraps.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
//! **Ablation A3**: how much profiling data the templates need — the paper
//! used 220 000 profiling measurements; this sweep shows the accuracy curve
//! from a few hundred windows up ("Template attacks need profiling … may
//! require a great number of traces", §V-B).
//!
//! Run with `cargo run --release -p reveal-bench --bin ablation_profiling_size`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use reveal_attack::{AttackConfig, TrainedAttack};
use reveal_bench::{paper_device, write_artifact, Scale};

fn main() {
    let scale = Scale::from_env();
    let (_, attack_runs, _) = scale.attack_workload();
    let n = 64;
    let runs_sweep: &[usize] = match scale {
        Scale::Quick => &[10, 20, 40],
        _ => &[10, 20, 40, 80, 160],
    };
    println!("Ablation: profiling-set size vs accuracy ({scale:?}, n = {n})\n");
    println!(
        "{:>10} {:>10} {:>12} {:>12}",
        "runs", "windows", "sign_acc", "value_acc"
    );
    let mut csv = String::from("profiling_windows,sign_acc,value_acc\n");
    let device = paper_device(n, 0.05);
    for &runs in runs_sweep {
        let mut rng = StdRng::seed_from_u64(1001);
        let Ok(attack) = TrainedAttack::profile(&device, runs, &AttackConfig::default(), &mut rng)
        else {
            println!("{runs:>10} profiling failed (not enough class data)");
            continue;
        };
        let (mut sh, mut vh, mut total) = (0usize, 0usize, 0usize);
        for _ in 0..attack_runs.max(6) {
            let cap = device.capture_fresh(&mut rng).expect("capture");
            let Ok(result) = attack.attack_trace_expecting(&cap.run.capture.samples, n) else {
                continue;
            };
            for (est, &truth) in result.coefficients.iter().zip(&cap.values) {
                total += 1;
                sh += (est.sign == truth.signum()) as usize;
                vh += (est.predicted == truth) as usize;
            }
        }
        if total == 0 {
            continue;
        }
        let sign_acc = sh as f64 / total as f64;
        let value_acc = vh as f64 / total as f64;
        println!(
            "{:>10} {:>10} {:>11.1}% {:>11.1}%",
            runs,
            attack.profiling_windows(),
            100.0 * sign_acc,
            100.0 * value_acc
        );
        csv.push_str(&format!(
            "{},{sign_acc:.4},{value_acc:.4}\n",
            attack.profiling_windows()
        ));
    }
    write_artifact("ablation_profiling_size.csv", &csv);
    println!("\nreading: sign templates converge almost immediately; the 29-class value");
    println!("templates keep improving with profiling data, which is why the paper");
    println!("collected 220 000 measurements.");
}
