// Generator binaries must fail with a message naming the broken stage,
// not a bare unwrap panic; tests keep their unwraps.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
//! **Key-generation attack**: the paper attacks `Encrypt` (one trace → one
//! message), but SEAL's `KeyGen` draws its noise `e` through the *same*
//! vulnerable routine — so one trace of key generation yields the long-term
//! **secret key** via `s = a⁻¹·(−p0 − e)`, compromising every past and
//! future ciphertext. This binary runs that variant end to end.
//!
//! Run with `cargo run --release -p reveal-bench --bin keygen_attack`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use reveal_attack::{recover_secret_key_adaptive, AttackConfig, Device, TrainedAttack};
use reveal_bfv::{
    BfvContext, Decryptor, EncryptionParameters, Encryptor, KeyGenerator, Plaintext, SecretKey,
};
use reveal_math::Modulus;
use reveal_rv32::power::PowerModelConfig;

fn main() {
    let n = 32usize;
    let q = 3329u64;
    let t = 16u64;
    let trials = if std::env::var_os("REVEAL_QUICK").is_some() {
        3
    } else {
        10
    };
    println!("Key-generation attack (n = {n}, q = {q}): one KeyGen trace -> secret key\n");

    let parms = EncryptionParameters::new(
        n,
        vec![Modulus::new(q).expect("q")],
        Modulus::new(t).expect("t"),
    )
    .expect("parameters");
    let ctx = BfvContext::new(parms).expect("context");
    let device =
        Device::new(n, &[q], PowerModelConfig::default().with_noise_sigma(0.02)).expect("device");
    let mut adv_rng = StdRng::seed_from_u64(222);
    let attack = TrainedAttack::profile(&device, 60, &AttackConfig::default(), &mut adv_rng)
        .expect("profiling");

    let mut rng = StdRng::seed_from_u64(333);
    let mut recovered_keys = 0usize;
    for trial in 0..trials {
        // The victim generates a fresh key pair; the adversary records the
        // keygen noise sampling.
        let keygen = KeyGenerator::new(&ctx);
        let sk = keygen.secret_key(&mut rng);
        let pk = keygen.public_key(&sk, &mut rng);
        // Ground-truth keygen noise from the key relation (this is what the
        // device sampled; we mirror it into the trace).
        let neg_e = pk.p0().add(&pk.p1().mul(sk.as_rns()));
        let e_true: Vec<i64> = neg_e.residues()[0]
            .to_signed()
            .iter()
            .map(|&x| -x)
            .collect();
        let capture = device.capture_chosen(&e_true, &mut rng).expect("capture");
        let Ok(result) = attack.attack_trace_expecting(&capture.run.capture.samples, n) else {
            println!("trial {trial}: segmentation mismatch");
            continue;
        };

        // Confidence-ordered exact relations + BKZ finisher (the same
        // machinery as the message attack, against the key relation).
        let estimates: Vec<(i64, f64)> = result
            .coefficients
            .iter()
            .map(|c| (c.predicted, c.confidence()))
            .collect();
        let (s_rec, trusted) = match recover_secret_key_adaptive(&ctx, &pk, &estimates, 0.85) {
            Ok(r) => r,
            Err(e) => {
                println!(
                    "trial {trial}: not recovered ({e}; value accuracy {:.0}%)",
                    100.0 * result.value_accuracy(&e_true)
                );
                continue;
            }
        };
        assert_eq!(
            s_rec,
            sk.coefficients(),
            "recovered key must be the real one"
        );
        // Prove it: decrypt a ciphertext with the stolen key.
        let stolen = SecretKey::from_coefficients(&ctx, s_rec);
        let enc = Encryptor::new(&ctx, &pk);
        let ct = enc.encrypt(&Plaintext::constant(&ctx, 9), &mut rng);
        let m = Decryptor::new(&ctx, &stolen).decrypt(&ct);
        assert_eq!(m.coeffs()[0], 9);
        recovered_keys += 1;
        println!(
            "trial {trial}: SECRET KEY RECOVERED from {trusted}/{n} trusted relations \
             (value accuracy {:.0}%), stolen key decrypts",
            100.0 * result.value_accuracy(&e_true)
        );
    }
    println!("\nkeys recovered: {recovered_keys}/{trials}");
    assert!(
        recovered_keys * 2 >= trials,
        "most keygen traces should yield the key at this SNR"
    );
    println!(
        "reading: unlike the per-message Encrypt attack, one KeyGen trace breaks \
         every ciphertext ever produced under the key — the sampler must be \
         protected in *all* call sites."
    );
}
