//! Performance of the number-theoretic transform and polynomial arithmetic
//! across SEAL ring degrees.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use reveal_math::{Modulus, NttTables, PolyContext};
use std::hint::black_box;

fn bench_ntt(c: &mut Criterion) {
    let q = Modulus::new(132120577).unwrap();
    let mut group = c.benchmark_group("ntt");
    for n in [256usize, 1024, 4096] {
        let tables = NttTables::new(n, q).unwrap();
        let input: Vec<u64> = (0..n as u64).map(|i| i * 97 % q.value()).collect();
        group.bench_with_input(BenchmarkId::new("forward", n), &n, |b, _| {
            b.iter(|| {
                let mut v = input.clone();
                tables.forward(&mut v);
                black_box(v)
            })
        });
        group.bench_with_input(BenchmarkId::new("inverse", n), &n, |b, _| {
            b.iter(|| {
                let mut v = input.clone();
                tables.inverse(&mut v);
                black_box(v)
            })
        });
        group.bench_with_input(BenchmarkId::new("negacyclic_multiply", n), &n, |b, _| {
            b.iter(|| black_box(tables.negacyclic_multiply(&input, &input)))
        });
    }
    group.finish();
}

fn bench_poly(c: &mut Criterion) {
    let q = Modulus::new(132120577).unwrap();
    let ctx = PolyContext::new(1024, q).unwrap();
    let a = ctx.polynomial_from_signed(&(0..1024).map(|i| i % 41 - 20).collect::<Vec<_>>());
    let b2 = ctx.polynomial_from_signed(&(0..1024).map(|i| (i * 7) % 83 - 41).collect::<Vec<_>>());
    let mut group = c.benchmark_group("poly_1024");
    group.bench_function("add", |b| b.iter(|| black_box(a.add(&b2))));
    group.bench_function("mul", |b| b.iter(|| black_box(a.mul(&b2))));
    group.bench_function("inverse", |b| b.iter(|| black_box(a.inverse())));
    group.finish();
}

criterion_group!(benches, bench_ntt, bench_poly);
criterion_main!(benches);
