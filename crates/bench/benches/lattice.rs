//! Performance of the lattice tooling: LLL, BKZ, and LWE solving — the
//! "explore the remaining search space" step of the attack.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reveal_lattice::embedding::{random_instance, solve_lwe, SolverConfig};
use reveal_lattice::{bkz_reduce, lll_reduce, BkzParams, LllParams};
use std::hint::black_box;

fn random_basis(n: usize, scale: i64, seed: u64) -> Vec<Vec<i64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (0..n).map(|_| rng.gen_range(-scale..=scale)).collect())
        .collect()
}

fn bench_reduction(c: &mut Criterion) {
    let mut group = c.benchmark_group("reduction");
    group.sample_size(10);
    for n in [10usize, 20, 40] {
        let basis = random_basis(n, 1000, n as u64);
        group.bench_with_input(BenchmarkId::new("lll", n), &n, |b, _| {
            b.iter(|| {
                let mut basis = basis.clone();
                lll_reduce(&mut basis, &LllParams::default());
                black_box(basis[0][0])
            })
        });
    }
    for n in [10usize, 16] {
        let basis = random_basis(n, 1000, 100 + n as u64);
        group.bench_with_input(BenchmarkId::new("bkz_beta8", n), &n, |b, _| {
            b.iter(|| {
                let mut basis = basis.clone();
                bkz_reduce(&mut basis, &BkzParams::with_block_size(8));
                black_box(basis[0][0])
            })
        });
    }
    group.finish();
}

fn bench_lwe_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("lwe_solve");
    group.sample_size(10);
    for (n, m) in [(6usize, 12usize), (10, 20)] {
        let mut rng = StdRng::seed_from_u64(5);
        let (instance, _, _) = random_instance(n, m, 3329, 2, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("kannan_embed_solve", format!("n{n}m{m}")),
            &n,
            |b, _| {
                b.iter(|| {
                    black_box(
                        solve_lwe(&instance, &SolverConfig::default())
                            .unwrap()
                            .solved_at_beta,
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_reduction, bench_lwe_solve);
criterion_main!(benches);
