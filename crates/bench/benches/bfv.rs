//! Performance of the BFV primitives at the paper's parameters.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use reveal_bfv::{
    BfvContext, Decryptor, EncryptionParameters, Encryptor, Evaluator, KeyGenerator, Plaintext,
};
use std::hint::black_box;

fn bench_bfv(c: &mut Criterion) {
    let ctx = BfvContext::new(EncryptionParameters::seal_128_paper().unwrap()).unwrap();
    let mut rng = StdRng::seed_from_u64(1);
    let keygen = KeyGenerator::new(&ctx);
    let sk = keygen.secret_key(&mut rng);
    let pk = keygen.public_key(&sk, &mut rng);
    let encryptor = Encryptor::new(&ctx, &pk);
    let decryptor = Decryptor::new(&ctx, &sk);
    let evaluator = Evaluator::new(&ctx);
    let plain = Plaintext::constant(&ctx, 42);
    let ct_a = encryptor.encrypt(&plain, &mut rng);
    let ct_b = encryptor.encrypt(&plain, &mut rng);

    let mut group = c.benchmark_group("bfv_seal128");
    group.bench_function("keygen_secret", |b| {
        b.iter(|| black_box(keygen.secret_key(&mut rng)))
    });
    group.bench_function("keygen_public", |b| {
        b.iter(|| black_box(keygen.public_key(&sk, &mut rng)))
    });
    group.bench_function("encrypt", |b| {
        b.iter(|| black_box(encryptor.encrypt(&plain, &mut rng)))
    });
    group.bench_function("decrypt", |b| {
        b.iter(|| black_box(decryptor.decrypt(&ct_a)))
    });
    group.bench_function("evaluate_add", |b| {
        b.iter(|| black_box(evaluator.add(&ct_a, &ct_b)))
    });
    group.bench_function("evaluate_multiply_plain", |b| {
        b.iter(|| black_box(evaluator.multiply_plain(&ct_a, &plain)))
    });
    group.bench_function("noise_budget", |b| {
        b.iter(|| black_box(decryptor.invariant_noise_budget(&ct_a)))
    });
    group.finish();
}

criterion_group!(benches, bench_bfv);
criterion_main!(benches);
