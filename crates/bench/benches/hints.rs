//! Performance of the LWE-with-hints estimator: hint integration and the
//! β solver at the paper's scale.

use criterion::{criterion_group, criterion_main, Criterion};
use reveal_hints::{
    integrate_posteriors, solve_beta, DbddInstance, HintPolicy, LweParameters, Posterior,
};
use std::hint::black_box;

fn bench_hints(c: &mut Criterion) {
    let params = LweParameters::seal_128_paper();
    let mut group = c.benchmark_group("hints");
    group.bench_function("estimate_baseline_seal128", |b| {
        let inst = DbddInstance::from_lwe(&params);
        b.iter(|| black_box(inst.estimate().bikz))
    });
    group.bench_function("integrate_1024_perfect_hints", |b| {
        b.iter(|| {
            let mut inst = DbddInstance::from_lwe(&params);
            for i in 0..1024 {
                inst.integrate_perfect_hint(i).unwrap();
            }
            black_box(inst.dim())
        })
    });
    group.bench_function("integrate_1024_posteriors", |b| {
        let policy = HintPolicy::seal_paper();
        let posteriors: Vec<Posterior> = (0..1024)
            .map(|i| {
                Posterior::new(vec![(1, 0.6 + (i % 4) as f64 * 0.09), (2, 0.2), (3, 0.1)]).unwrap()
            })
            .collect();
        let coords: Vec<usize> = (0..1024).collect();
        b.iter(|| {
            let mut inst = DbddInstance::from_lwe(&params);
            black_box(
                integrate_posteriors(&mut inst, &coords, &posteriors, &policy)
                    .unwrap()
                    .approximate,
            )
        })
    });
    group.bench_function("solve_beta_dim2049", |b| {
        b.iter(|| black_box(solve_beta(2049.0, 8.8 * 2049.0)))
    });
    group.finish();
}

criterion_group!(benches, bench_hints);
criterion_main!(benches);
