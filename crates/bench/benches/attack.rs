//! Performance of the attack pipeline: segmentation, window classification,
//! and the full single-trace attack.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use reveal_attack::{extract_ladder_windows, AttackConfig, Device, TrainedAttack};
use reveal_rv32::power::PowerModelConfig;
use reveal_trace::segment::find_bursts;
use std::hint::black_box;

fn bench_attack(c: &mut Criterion) {
    let n = 64;
    let device = Device::new(n, &[132120577], PowerModelConfig::default()).unwrap();
    let mut rng = StdRng::seed_from_u64(1);
    let config = AttackConfig::default();
    let attack = TrainedAttack::profile(&device, 24, &config, &mut rng).unwrap();
    let capture = device.capture_fresh(&mut rng).unwrap();
    let samples = capture.run.capture.samples.clone();
    let windows = extract_ladder_windows(&samples, &config).unwrap();

    let mut group = c.benchmark_group("attack");
    group.bench_function("segment_find_bursts", |b| {
        b.iter(|| black_box(find_bursts(&samples, &config.segment).unwrap().len()))
    });
    group.bench_function("extract_ladder_windows", |b| {
        b.iter(|| black_box(extract_ladder_windows(&samples, &config).unwrap().len()))
    });
    group.bench_function("classify_one_window", |b| {
        b.iter(|| black_box(attack.attack_window(&windows[0]).unwrap()))
    });
    group.bench_function("full_single_trace_attack_n64", |b| {
        b.iter(|| black_box(attack.attack_trace(&samples).unwrap().coefficients.len()))
    });
    group.finish();
}

fn bench_profiling(c: &mut Criterion) {
    let n = 32;
    let device = Device::new(n, &[132120577], PowerModelConfig::default()).unwrap();
    let mut group = c.benchmark_group("profiling");
    group.sample_size(10);
    group.bench_function("profile_8_runs_n32", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            black_box(
                TrainedAttack::profile(&device, 8, &AttackConfig::default(), &mut rng)
                    .unwrap()
                    .profiling_windows(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_attack, bench_profiling);
criterion_main!(benches);
