//! Performance of the Gaussian sampler: the Rust reference path and the full
//! RV32 simulation with power rendering.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use reveal_bfv::sampler::{set_poly_coeffs_normal, ClippedNormalDistribution, NullProbe};
use reveal_bfv::EncryptionParameters;
use reveal_rv32::kernel::SamplerKernel;
use reveal_rv32::power::PowerModelConfig;
use std::hint::black_box;

fn bench_reference_sampler(c: &mut Criterion) {
    let parms = EncryptionParameters::seal_128_paper().unwrap();
    let mut rng = StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("sampler_reference");
    group.bench_function("clipped_normal_draw", |b| {
        let mut dist = ClippedNormalDistribution::new(0.0, 3.19, 41.0);
        b.iter(|| black_box(dist.sample_i64(&mut rng)))
    });
    group.bench_function("set_poly_coeffs_normal_1024", |b| {
        let mut poly = vec![0u64; 1024];
        b.iter(|| {
            set_poly_coeffs_normal(&mut poly, &mut rng, &parms, &mut NullProbe);
            black_box(poly[0])
        })
    });
    group.finish();
}

fn bench_rv32_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampler_rv32");
    group.sample_size(20);
    for n in [64usize, 256, 1024] {
        let kernel = SamplerKernel::new(n, &[132120577]).unwrap();
        let values: Vec<i64> = (0..n).map(|i| (i % 29) as i64 - 14).collect();
        let iters: Vec<u32> = (0..n).map(|i| 3 + (i % 5) as u32).collect();
        let mut rng = StdRng::seed_from_u64(2);
        group.bench_function(format!("kernel_trace_n{n}"), |b| {
            b.iter(|| {
                black_box(
                    kernel
                        .run(&values, &iters, &PowerModelConfig::default(), &mut rng)
                        .unwrap()
                        .capture
                        .samples
                        .len(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reference_sampler, bench_rv32_kernel);
criterion_main!(benches);
