//! Per-coefficient posterior tables (Table II of the paper) and their
//! conversion into DBDD hints.
//!
//! The framework "takes the scores of each measurement and creates
//! probabilities for each output"; coefficients guessed with probability
//! ≈ 1 become **perfect** hints, the rest become **approximate** hints with
//! the posterior's variance.

use crate::dbdd::{DbddInstance, HintError};
use std::fmt;

/// A discrete posterior over candidate coefficient values.
#[derive(Debug, Clone, PartialEq)]
pub struct Posterior {
    /// `(value, probability)`, probabilities normalized to 1.
    entries: Vec<(i64, f64)>,
}

/// Errors from posterior construction.
#[derive(Debug, Clone, PartialEq)]
pub enum PosteriorError {
    /// Probabilities were empty or all zero.
    Degenerate,
    /// A probability was negative or non-finite.
    BadProbability(f64),
}

impl fmt::Display for PosteriorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PosteriorError::Degenerate => write!(f, "posterior has no probability mass"),
            PosteriorError::BadProbability(p) => write!(f, "bad probability {p}"),
        }
    }
}

impl std::error::Error for PosteriorError {}

impl Posterior {
    /// Builds a posterior from raw scores, normalizing to total mass 1.
    ///
    /// # Errors
    ///
    /// Fails when the mass is zero or a probability is invalid.
    pub fn new(entries: Vec<(i64, f64)>) -> Result<Self, PosteriorError> {
        if let Some(&(_, p)) = entries.iter().find(|(_, p)| !p.is_finite() || *p < 0.0) {
            return Err(PosteriorError::BadProbability(p));
        }
        let total: f64 = entries.iter().map(|(_, p)| p).sum();
        if total <= 0.0 {
            return Err(PosteriorError::Degenerate);
        }
        let mut entries: Vec<(i64, f64)> =
            entries.into_iter().map(|(v, p)| (v, p / total)).collect();
        entries.sort_by_key(|(v, _)| *v);
        Ok(Self { entries })
    }

    /// A point-mass posterior (the coefficient is known).
    pub fn certain(value: i64) -> Self {
        Self {
            entries: vec![(value, 1.0)],
        }
    }

    /// The `(value, probability)` pairs, ascending by value.
    pub fn entries(&self) -> &[(i64, f64)] {
        &self.entries
    }

    /// The most likely value. Ties keep the later (larger) value, matching
    /// `Iterator::max_by` semantics; a panic-free fold is used because the
    /// service path must never be able to unwrap, even though `entries` is
    /// non-empty by construction.
    pub fn mode(&self) -> i64 {
        let mut best: Option<(i64, f64)> = None;
        for &(value, p) in &self.entries {
            best = match best {
                Some((_, bp))
                    if p.partial_cmp(&bp).unwrap_or(std::cmp::Ordering::Equal)
                        == std::cmp::Ordering::Less =>
                {
                    best
                }
                _ => Some((value, p)),
            };
        }
        best.map_or(0, |(value, _)| value)
    }

    /// The probability of the mode.
    pub fn confidence(&self) -> f64 {
        self.entries.iter().map(|(_, p)| *p).fold(0.0, f64::max)
    }

    /// The mean ("centered" column of Table II).
    pub fn mean(&self) -> f64 {
        self.entries.iter().map(|(v, p)| *v as f64 * p).sum()
    }

    /// The variance ("variance" column of Table II).
    pub fn variance(&self) -> f64 {
        let mean = self.mean();
        self.entries
            .iter()
            .map(|(v, p)| p * (*v as f64 - mean).powi(2))
            .sum()
    }

    /// Whether the framework should treat this as a perfect hint: variance
    /// numerically indistinguishable from zero (the "≈ 1 because of
    /// floating-point precision" cases of Table II).
    pub fn is_perfect(&self, variance_threshold: f64) -> bool {
        self.variance() <= variance_threshold
    }
}

/// How posteriors are converted into hints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HintPolicy {
    /// Posteriors with variance at or below this become perfect hints.
    pub perfect_variance_threshold: f64,
    /// Approximate hints are skipped when the posterior is no sharper than
    /// the prior (variance ratio above this).
    pub max_useful_variance_ratio: f64,
    /// The prior variance of a coefficient (σ² of the sampler).
    pub prior_variance: f64,
    /// Calibration factor multiplied into every posterior variance before
    /// classification. `1.0` is the paper's behaviour (bit-exact: a `× 1.0`
    /// float multiply is the identity); the robust driver raises it when a
    /// capture looks degraded, so hints degrade perfect → approximate →
    /// skipped instead of over-claiming certainty.
    pub variance_inflation: f64,
}

/// The classification of one posterior under a [`HintPolicy`]: which rung of
/// the degradation ladder the coordinate lands on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HintClass {
    /// Integrate via `integrate_perfect_hint` (value known exactly).
    Perfect,
    /// Integrate via `integrate_approximate_hint` with this ε².
    Approximate { eps_squared: f64 },
    /// Posterior no sharper than the prior: integrate nothing.
    Skipped,
}

impl HintPolicy {
    /// The paper's setting: σ = 3.2 prior, perfect below 1e-9 variance.
    pub fn seal_paper() -> Self {
        Self {
            perfect_variance_threshold: 1e-9,
            max_useful_variance_ratio: 0.999,
            prior_variance: 3.2 * 3.2,
            variance_inflation: 1.0,
        }
    }

    /// A copy with the given variance-inflation calibration.
    pub fn with_variance_inflation(mut self, inflation: f64) -> Self {
        self.variance_inflation = inflation.max(1.0);
        self
    }

    /// Classifies a posterior variance onto the degradation ladder. This is
    /// the single decision point the whole workspace uses, so the robust
    /// driver's gating and `integrate_posteriors` can never disagree.
    pub fn classify_variance(&self, variance: f64) -> HintClass {
        let variance = variance * self.variance_inflation;
        if variance <= self.perfect_variance_threshold {
            HintClass::Perfect
        } else if variance < self.prior_variance * self.max_useful_variance_ratio {
            // Find the hint variance ε² whose Bayesian posterior equals the
            // measured posterior variance: ε² = vσ² / (σ² − v).
            let prior = self.prior_variance;
            HintClass::Approximate {
                eps_squared: variance * prior / (prior - variance),
            }
        } else {
            HintClass::Skipped
        }
    }
}

/// Summary of one hint-integration pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HintSummary {
    /// Coordinates integrated as perfect hints.
    pub perfect: usize,
    /// Coordinates integrated as approximate hints.
    pub approximate: usize,
    /// Coordinates skipped (posterior no sharper than the prior).
    pub skipped: usize,
}

/// Integrates one posterior per coordinate into a DBDD instance, following
/// the framework's perfect/approximate dichotomy.
///
/// `coordinates[i]` is the DBDD coordinate index of `posteriors[i]`.
///
/// # Errors
///
/// Propagates hint-integration failures.
///
/// # Panics
///
/// Panics if the two slices differ in length.
pub fn integrate_posteriors(
    instance: &mut DbddInstance,
    coordinates: &[usize],
    posteriors: &[Posterior],
    policy: &HintPolicy,
) -> Result<HintSummary, HintError> {
    assert_eq!(
        coordinates.len(),
        posteriors.len(),
        "one coordinate per posterior"
    );
    let mut summary = HintSummary::default();
    for (&coord, post) in coordinates.iter().zip(posteriors) {
        match policy.classify_variance(post.variance()) {
            HintClass::Perfect => {
                instance.integrate_perfect_hint(coord)?;
                summary.perfect += 1;
            }
            HintClass::Approximate { eps_squared } => {
                instance.integrate_approximate_hint(coord, eps_squared)?;
                summary.approximate += 1;
            }
            HintClass::Skipped => summary.skipped += 1,
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbdd::LweParameters;

    #[test]
    fn normalization_and_moments() {
        let p = Posterior::new(vec![(1, 2.0), (2, 2.0)]).unwrap();
        assert_eq!(p.entries(), &[(1, 0.5), (2, 0.5)]);
        assert!((p.mean() - 1.5).abs() < 1e-12);
        assert!((p.variance() - 0.25).abs() < 1e-12);
        assert_eq!(p.confidence(), 0.5);
    }

    #[test]
    fn table_ii_style_rows() {
        // Row "1" of Table II: P(1) ≈ 1, P(2) = 2.7e-10 → centered 1,
        // variance ≈ 2.7e-10.
        let p = Posterior::new(vec![(1, 1.0 - 2.7e-10), (2, 2.7e-10)]).unwrap();
        assert_eq!(p.mode(), 1);
        assert!((p.mean() - 1.0).abs() < 1e-9);
        assert!((p.variance() - 2.7e-10).abs() < 1e-11);
        assert!(p.is_perfect(1e-9));
        // Row "0": exact point mass.
        let zero = Posterior::certain(0);
        assert_eq!(zero.variance(), 0.0);
        assert!(zero.is_perfect(0.0));
    }

    #[test]
    fn rejects_bad_posteriors() {
        assert!(matches!(
            Posterior::new(vec![]),
            Err(PosteriorError::Degenerate)
        ));
        assert!(matches!(
            Posterior::new(vec![(0, 0.0)]),
            Err(PosteriorError::Degenerate)
        ));
        assert!(matches!(
            Posterior::new(vec![(0, -1.0)]),
            Err(PosteriorError::BadProbability(_))
        ));
        assert!(matches!(
            Posterior::new(vec![(0, f64::NAN)]),
            Err(PosteriorError::BadProbability(_))
        ));
    }

    #[test]
    fn integration_dichotomy() {
        let mut inst = DbddInstance::from_lwe(&LweParameters::seal_128_paper());
        let policy = HintPolicy::seal_paper();
        let posteriors = vec![
            Posterior::certain(-2),                               // perfect
            Posterior::new(vec![(1, 0.7), (2, 0.3)]).unwrap(),    // approximate
            Posterior::new(vec![(-14, 1.0), (14, 1.0)]).unwrap(), // worse than prior? var=196 → skipped
        ];
        let summary = integrate_posteriors(&mut inst, &[0, 1, 2], &posteriors, &policy).unwrap();
        assert_eq!(summary.perfect, 1);
        assert_eq!(summary.approximate, 1);
        assert_eq!(summary.skipped, 1);
        let (p, a, _, _) = inst.hint_counts();
        assert_eq!((p, a), (1, 1));
    }

    #[test]
    fn classification_matches_integration_dichotomy() {
        let policy = HintPolicy::seal_paper();
        assert_eq!(policy.classify_variance(0.0), HintClass::Perfect);
        assert_eq!(policy.classify_variance(1e-10), HintClass::Perfect);
        match policy.classify_variance(0.21) {
            HintClass::Approximate { eps_squared } => {
                let prior = 3.2 * 3.2;
                assert!((eps_squared - 0.21 * prior / (prior - 0.21)).abs() < 1e-12);
            }
            other => panic!("expected approximate, got {other:?}"),
        }
        assert_eq!(policy.classify_variance(196.0), HintClass::Skipped);
    }

    #[test]
    fn variance_inflation_degrades_classes_monotonically() {
        let base = HintPolicy::seal_paper();
        // Inflation 1.0 is the identity (bit-exact).
        assert_eq!(
            base.with_variance_inflation(1.0).classify_variance(0.5),
            base.classify_variance(0.5)
        );
        // A borderline-perfect posterior degrades to approximate, then an
        // approximate one degrades to skipped, as inflation grows.
        let inflated = base.with_variance_inflation(100.0);
        assert_eq!(base.classify_variance(5e-10), HintClass::Perfect);
        assert!(matches!(
            inflated.classify_variance(5e-10),
            HintClass::Approximate { .. }
        ));
        assert!(matches!(
            base.classify_variance(2.0),
            HintClass::Approximate { .. }
        ));
        assert_eq!(inflated.classify_variance(2.0), HintClass::Skipped);
        // Inflation below 1.0 is clamped: it must never sharpen hints.
        assert_eq!(base.with_variance_inflation(0.1).variance_inflation, 1.0);
        // Inflated approximate hints carry a larger ε².
        let eps = |p: &HintPolicy| match p.classify_variance(0.5) {
            HintClass::Approximate { eps_squared } => eps_squared,
            other => panic!("expected approximate, got {other:?}"),
        };
        assert!(eps(&base.with_variance_inflation(4.0)) > eps(&base));
    }

    #[test]
    fn sharper_posterior_means_lower_bikz() {
        let policy = HintPolicy::seal_paper();
        let run = |confidence: f64| {
            let mut inst = DbddInstance::from_lwe(&LweParameters::seal_128_paper());
            let posts: Vec<Posterior> = (0..1024)
                .map(|_| Posterior::new(vec![(1, confidence), (5, 1.0 - confidence)]).unwrap())
                .collect();
            let coords: Vec<usize> = (0..1024).collect();
            integrate_posteriors(&mut inst, &coords, &posts, &policy).unwrap();
            inst.estimate().bikz
        };
        let sharp = run(0.9999);
        let fuzzy = run(0.7);
        assert!(sharp < fuzzy, "sharp {sharp} vs fuzzy {fuzzy}");
    }

    /// Rank of a class on the degradation ladder (higher = stronger hint).
    fn class_rank(c: &HintClass) -> u8 {
        match c {
            HintClass::Perfect => 2,
            HintClass::Approximate { .. } => 1,
            HintClass::Skipped => 0,
        }
    }

    use proptest::prelude::*;

    proptest! {
        /// The robust driver's central safety property: raising the
        /// variance inflation can only degrade a classification — the
        /// class never climbs the ladder, and while both classifications
        /// stay approximate the claimed hint sharpness (ε²) never
        /// improves.
        #[test]
        fn prop_inflation_never_improves_a_classification(
            variance in 0.0f64..20.0,
            a in 1.0f64..50.0,
            extra in 0.0f64..50.0,
        ) {
            let b = a + extra;
            let policy = HintPolicy::seal_paper();
            let low = policy.with_variance_inflation(a).classify_variance(variance);
            let high = policy.with_variance_inflation(b).classify_variance(variance);
            prop_assert!(
                class_rank(&high) <= class_rank(&low),
                "inflation {a} -> {b} promoted {low:?} to {high:?} at variance {variance}"
            );
            if let (
                HintClass::Approximate { eps_squared: el },
                HintClass::Approximate { eps_squared: eh },
            ) = (&low, &high)
            {
                prop_assert!(
                    eh >= el,
                    "inflation {a} -> {b} sharpened eps² {el} to {eh} at variance {variance}"
                );
            }
        }

        /// Classification is also monotone in the variance itself at any
        /// fixed inflation: a fuzzier posterior never earns a stronger
        /// hint.
        #[test]
        fn prop_fuzzier_posterior_never_earns_a_stronger_hint(
            variance in 0.0f64..20.0,
            widen in 0.0f64..20.0,
            inflation in 1.0f64..10.0,
        ) {
            let policy = HintPolicy::seal_paper().with_variance_inflation(inflation);
            let sharp = policy.classify_variance(variance);
            let fuzzy = policy.classify_variance(variance + widen);
            prop_assert!(class_rank(&fuzzy) <= class_rank(&sharp));
            if let (
                HintClass::Approximate { eps_squared: es },
                HintClass::Approximate { eps_squared: ef },
            ) = (&sharp, &fuzzy)
            {
                prop_assert!(ef >= es);
            }
        }
    }
}
