//! The BKZ root-Hermite factor δ(β) and the GSA-intersect success condition
//! used by the "LWE with side information" framework \[31\].

/// Root-Hermite factor δ for BKZ with block size β.
///
/// For β ≥ 40 this is the asymptotic formula
/// `δ = ((β/2πe)·(πβ)^(1/β))^(1/(2(β−1)))`; below 40 the formula leaves its
/// validity range (it dips under 1), so we interpolate linearly between the
/// experimental LLL value δ(2) ≈ 1.0219 and the formula value at β = 40 —
/// the same practical fix the public estimators apply.
///
/// # Examples
///
/// ```
/// use reveal_hints::delta::delta_bkz;
/// let d50 = delta_bkz(50.0);
/// let d300 = delta_bkz(300.0);
/// assert!(d50 > d300, "bigger blocks reduce better");
/// assert!(d300 > 1.0);
/// ```
pub fn delta_bkz(beta: f64) -> f64 {
    const LLL_DELTA: f64 = 1.0219;
    const FORMULA_FLOOR: f64 = 40.0;
    let formula = |b: f64| -> f64 {
        let core = (b / (2.0 * std::f64::consts::PI * std::f64::consts::E))
            * (std::f64::consts::PI * b).powf(1.0 / b);
        core.powf(1.0 / (2.0 * (b - 1.0)))
    };
    if beta >= FORMULA_FLOOR {
        formula(beta)
    } else {
        let beta = beta.max(2.0);
        let hi = formula(FORMULA_FLOOR);
        let t = (beta - 2.0) / (FORMULA_FLOOR - 2.0);
        LLL_DELTA + t * (hi - LLL_DELTA)
    }
}

/// Natural log of δ(β).
pub fn ln_delta_bkz(beta: f64) -> f64 {
    delta_bkz(beta).ln()
}

/// The uSVP/DBDD success margin of BKZ-β on a normalized instance:
/// positive when the attack is expected to succeed.
///
/// After whitening by Σ^{-1/2} the secret vector is isotropic with expected
/// norm √d and the lattice has `ln V = ln vol(Λ) − ½ ln det Σ`. The
/// geometric-series-assumption intersection condition is
///
/// ```text
/// √β ≤ δ(β)^(2β−d−1) · V^(1/d)
/// ```
///
/// whose log-margin this returns.
pub fn success_margin(beta: f64, dim: f64, ln_v: f64) -> f64 {
    (2.0 * beta - dim - 1.0) * ln_delta_bkz(beta) + ln_v / dim - 0.5 * beta.ln()
}

/// Finds the smallest (fractional) β in `[2, dim]` satisfying the success
/// condition: integer scan then bisection refinement. Returns `dim` when
/// even full-block reduction is not predicted to succeed.
pub fn solve_beta(dim: f64, ln_v: f64) -> f64 {
    debug_assert!(dim >= 3.0);
    if success_margin(2.0, dim, ln_v) >= 0.0 {
        return 2.0;
    }
    // Integer scan for the first success.
    let mut first_ok: Option<f64> = None;
    let mut beta = 3.0;
    while beta <= dim {
        if success_margin(beta, dim, ln_v) >= 0.0 {
            first_ok = Some(beta);
            break;
        }
        beta += 1.0;
    }
    let Some(hi0) = first_ok else {
        return dim;
    };
    // Bisection on [hi0 - 1, hi0].
    let mut lo = hi0 - 1.0;
    let mut hi = hi0;
    for _ in 0..40 {
        let mid = 0.5 * (lo + hi);
        if success_margin(mid, dim, ln_v) >= 0.0 {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_known_values() {
        // δ(100) ≈ 1.0094, δ(200) ≈ 1.0062, δ(400) ≈ 1.0041 (standard refs).
        assert!((delta_bkz(100.0) - 1.0094).abs() < 4e-4);
        assert!((delta_bkz(200.0) - 1.0062).abs() < 4e-4);
        assert!((delta_bkz(400.0) - 1.0041).abs() < 4e-4);
    }

    #[test]
    fn delta_monotone_decreasing() {
        let mut prev = delta_bkz(2.0);
        for b in 3..600 {
            let d = delta_bkz(b as f64);
            assert!(d < prev + 1e-12, "δ must not increase at β={b}");
            assert!(d > 1.0);
            prev = d;
        }
    }

    #[test]
    fn margin_increases_with_beta_in_hard_regime() {
        // For a hard instance, bigger β must help.
        let dim = 2049.0;
        let ln_v = 8.0 * dim; // comfortable volume
        let m100 = success_margin(100.0, dim, ln_v);
        let m300 = success_margin(300.0, dim, ln_v);
        assert!(m300 > m100);
    }

    #[test]
    fn solve_beta_edges() {
        // Enormous volume: trivially easy.
        assert_eq!(solve_beta(100.0, 1e6), 2.0);
        // Tiny volume: not solvable even at full block size.
        assert_eq!(solve_beta(100.0, -1e6), 100.0);
    }

    #[test]
    fn solve_beta_bisection_is_tight() {
        let dim = 2049.0;
        let ln_v = 8.8651 * dim;
        let beta = solve_beta(dim, ln_v);
        assert!(success_margin(beta, dim, ln_v) >= -1e-9);
        assert!(success_margin(beta - 0.5, dim, ln_v) < 0.0);
    }

    #[test]
    fn more_volume_means_smaller_beta() {
        let dim = 1025.0;
        let b1 = solve_beta(dim, 6.0 * dim);
        let b2 = solve_beta(dim, 7.0 * dim);
        assert!(b2 < b1);
    }
}
