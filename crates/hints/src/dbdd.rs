//! The Distorted Bounded Distance Decoding (DBDD) instance with hint
//! integration — the "lite" bookkeeping variant of Dachman-Soled, Ducas,
//! Gong and Rossi (CRYPTO 2020) \[31\], which tracks only the lattice
//! dimension, its log-volume, and the per-coordinate variances of the
//! secret/error ellipsoid.
//!
//! Supported hints (all along canonical coordinate directions, which is what
//! the RevEAL side channel yields — each hint concerns one sampled
//! coefficient):
//!
//! - **perfect** `⟨t, e_i⟩ = l`: coordinate known exactly;
//! - **approximate** `⟨t, e_i⟩ = l + ε_σ`: posterior variance shrinks;
//! - **modular** `⟨t, e_i⟩ = l mod k`: volume grows by `k`;
//! - **short vector** `v ∈ Λ`: dimension drops, volume divides by `‖v‖`.

use crate::delta::solve_beta;
use std::fmt;

/// LWE parameters the DBDD instance is initialized from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LweParameters {
    /// Secret dimension `n`.
    pub n: usize,
    /// Number of samples `m`.
    pub m: usize,
    /// Modulus `q`.
    pub q: f64,
    /// Error standard deviation σ.
    pub error_std: f64,
    /// Secret-coordinate standard deviation.
    pub secret_std: f64,
}

impl LweParameters {
    /// The paper's Table III instance: the smallest SEAL-128 set with
    /// `q = 132120577`, `n = 1024`, `σ = 3.2`.
    ///
    /// The secret is modelled with the noise distribution (the public
    /// estimator's default), which reproduces the paper's 382.25-bikz
    /// baseline.
    pub fn seal_128_paper() -> Self {
        Self {
            n: 1024,
            m: 1024,
            q: 132120577.0,
            error_std: 3.2,
            secret_std: 3.2,
        }
    }

    /// A SEAL-style set at arbitrary ring degree (m = n samples from one
    /// ciphertext component).
    pub fn seal_like(n: usize, q: f64, sigma: f64) -> Self {
        Self {
            n,
            m: n,
            q,
            error_std: sigma,
            secret_std: sigma,
        }
    }
}

/// Errors from hint integration.
#[derive(Debug, Clone, PartialEq)]
pub enum HintError {
    /// Coordinate index out of range.
    BadCoordinate { index: usize, count: usize },
    /// The coordinate was already eliminated by a perfect hint.
    AlreadyEliminated(usize),
    /// A variance/modulus/norm argument must be positive.
    NonPositive(f64),
}

impl fmt::Display for HintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HintError::BadCoordinate { index, count } => {
                write!(f, "coordinate {index} out of range (instance has {count})")
            }
            HintError::AlreadyEliminated(i) => {
                write!(f, "coordinate {i} was already eliminated by a perfect hint")
            }
            HintError::NonPositive(v) => write!(f, "argument must be positive, got {v}"),
        }
    }
}

impl std::error::Error for HintError {}

/// A security estimate in the paper's units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SecurityEstimate {
    /// Required BKZ block size ("bikz").
    pub bikz: f64,
    /// Equivalent classical bit security.
    pub bits: f64,
}

/// bikz → bits conversion constant, calibrated to footnote 3 of the paper:
/// 382.25 bikz ↔ 128 bits.
pub const BIKZ_PER_BIT: f64 = 382.25 / 128.0;

/// Converts a BKZ block size to bit security (paper footnote 3).
pub fn bikz_to_bits(bikz: f64) -> f64 {
    bikz / BIKZ_PER_BIT
}

/// The DBDD-lite instance.
#[derive(Debug, Clone, PartialEq)]
pub struct DbddInstance {
    /// Homogenized lattice dimension (shrinks with perfect hints).
    dim: usize,
    /// ln vol(Λ).
    ln_volume: f64,
    /// Per-coordinate variances: `m` error coords then `n` secret coords.
    /// `None` once eliminated by a perfect hint.
    variances: Vec<Option<f64>>,
    /// Counts for reporting.
    perfect_hints: usize,
    approximate_hints: usize,
    modular_hints: usize,
    short_vector_hints: usize,
}

impl DbddInstance {
    /// Embeds an LWE instance into DBDD: dimension `m + n + 1`
    /// (homogenized), volume `q^m`, ellipsoid `diag(σ_e² …, σ_s² …)`.
    pub fn from_lwe(params: &LweParameters) -> Self {
        let mut variances = Vec::with_capacity(params.m + params.n);
        variances.extend(std::iter::repeat_n(
            Some(params.error_std * params.error_std),
            params.m,
        ));
        variances.extend(std::iter::repeat_n(
            Some(params.secret_std * params.secret_std),
            params.n,
        ));
        Self {
            dim: params.m + params.n + 1,
            ln_volume: params.m as f64 * params.q.ln(),
            variances,
            perfect_hints: 0,
            approximate_hints: 0,
            modular_hints: 0,
            short_vector_hints: 0,
        }
    }

    /// Current homogenized dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// ln vol(Λ).
    pub fn ln_volume(&self) -> f64 {
        self.ln_volume
    }

    /// ln det Σ over the surviving coordinates (the homogenization
    /// coordinate contributes variance 1, i.e. nothing).
    pub fn ln_det_sigma(&self) -> f64 {
        self.variances.iter().flatten().map(|v| v.ln()).sum()
    }

    /// Number of coordinates not yet eliminated.
    pub fn active_coordinates(&self) -> usize {
        self.variances.iter().flatten().count()
    }

    /// `(perfect, approximate, modular, short-vector)` hint counts.
    pub fn hint_counts(&self) -> (usize, usize, usize, usize) {
        (
            self.perfect_hints,
            self.approximate_hints,
            self.modular_hints,
            self.short_vector_hints,
        )
    }

    fn check_coord(&self, index: usize) -> Result<f64, HintError> {
        match self.variances.get(index) {
            None => Err(HintError::BadCoordinate {
                index,
                count: self.variances.len(),
            }),
            Some(None) => Err(HintError::AlreadyEliminated(index)),
            Some(Some(v)) => Ok(*v),
        }
    }

    /// Integrates a perfect hint on coordinate `index`: the canonical
    /// direction is primitive in the dual, so `vol(Λ ∩ v⊥) = vol(Λ)·‖v‖ =
    /// vol(Λ)`; the dimension and the coordinate's variance drop out.
    ///
    /// # Errors
    ///
    /// Fails on bad or already-eliminated coordinates.
    pub fn integrate_perfect_hint(&mut self, index: usize) -> Result<(), HintError> {
        self.check_coord(index)?;
        self.variances[index] = None;
        self.dim -= 1;
        self.perfect_hints += 1;
        Ok(())
    }

    /// Integrates an approximate hint with noise variance `hint_variance`:
    /// the coordinate's posterior variance becomes the Bayesian combination
    /// `σ²·σ_ε² / (σ² + σ_ε²)`; lattice unchanged.
    ///
    /// # Errors
    ///
    /// Fails on bad coordinates or non-positive variance.
    pub fn integrate_approximate_hint(
        &mut self,
        index: usize,
        hint_variance: f64,
    ) -> Result<(), HintError> {
        if hint_variance <= 0.0 {
            return Err(HintError::NonPositive(hint_variance));
        }
        let current = self.check_coord(index)?;
        let posterior = current * hint_variance / (current + hint_variance);
        self.variances[index] = Some(posterior);
        self.approximate_hints += 1;
        Ok(())
    }

    /// Integrates a modular hint `⟨t, e_i⟩ = l (mod k)`: the lattice is
    /// intersected with a congruence class, scaling the volume by `k`
    /// (the variance is left unchanged — accurate when `k ≲ σ`).
    ///
    /// # Errors
    ///
    /// Fails on bad coordinates or `k <= 1`.
    pub fn integrate_modular_hint(&mut self, index: usize, k: f64) -> Result<(), HintError> {
        if k <= 1.0 {
            return Err(HintError::NonPositive(k - 1.0));
        }
        self.check_coord(index)?;
        self.ln_volume += k.ln();
        self.modular_hints += 1;
        Ok(())
    }

    /// Integrates a short-vector hint `v ∈ Λ` with Euclidean norm `norm`:
    /// the instance is projected orthogonally to `v`, dropping a dimension
    /// and dividing the volume by `‖v‖`.
    ///
    /// # Errors
    ///
    /// Fails on non-positive norms or when no dimension remains.
    pub fn integrate_short_vector_hint(&mut self, norm: f64) -> Result<(), HintError> {
        if norm <= 0.0 {
            return Err(HintError::NonPositive(norm));
        }
        if self.dim <= 2 {
            return Err(HintError::AlreadyEliminated(0));
        }
        self.dim -= 1;
        self.ln_volume -= norm.ln();
        self.short_vector_hints += 1;
        Ok(())
    }

    /// The normalized log-volume `ln V = ln vol − ½ ln det Σ` the success
    /// condition consumes.
    pub fn ln_normalized_volume(&self) -> f64 {
        self.ln_volume - 0.5 * self.ln_det_sigma()
    }

    /// Estimates the BKZ block size required to solve the instance and the
    /// equivalent bit security.
    pub fn estimate(&self) -> SecurityEstimate {
        let bikz = solve_beta(self.dim as f64, self.ln_normalized_volume());
        SecurityEstimate {
            bikz,
            bits: bikz_to_bits(bikz),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_instance() -> DbddInstance {
        DbddInstance::from_lwe(&LweParameters::seal_128_paper())
    }

    #[test]
    fn paper_baseline_matches_table_iii() {
        // Table III: attack without hints = 382.25 bikz (≈ 2^128).
        let est = paper_instance().estimate();
        assert!(
            (est.bikz - 382.25).abs() < 12.0,
            "no-hint bikz {:.2} should be close to the paper's 382.25",
            est.bikz
        );
        assert!((est.bits - 128.0).abs() < 5.0, "bits {:.1}", est.bits);
    }

    #[test]
    fn perfect_hints_collapse_security() {
        // Table III: with (near-)perfect hints on every error coefficient the
        // scheme is completely broken (paper: 12.2 bikz ≈ 2^4.4).
        let mut inst = paper_instance();
        for i in 0..1024 {
            inst.integrate_perfect_hint(i).unwrap();
        }
        let est = inst.estimate();
        assert!(est.bikz < 40.0, "hinted bikz {:.2} must collapse", est.bikz);
        assert!(est.bits < 14.0);
        assert_eq!(inst.hint_counts().0, 1024);
        assert_eq!(inst.dim(), 1025);
    }

    #[test]
    fn sign_only_hints_reduce_but_do_not_break() {
        // Table IV: zero coefficients are perfect hints, sign-only knowledge
        // is an approximate hint with the half-Gaussian posterior variance.
        let mut inst = paper_instance();
        let sigma = 3.2f64;
        let half_normal_var = sigma * sigma * (1.0 - 2.0 / std::f64::consts::PI);
        // P(round(N(0,σ)) = 0) ≈ 12.4%: 127 of 1024 coefficients.
        for i in 0..1024 {
            if i % 8 == 0 {
                inst.integrate_perfect_hint(i).unwrap();
            } else {
                // Conditioning on the sign: posterior variance of |X|.
                // Register it as an approximate hint that lands the
                // coordinate at exactly the half-normal variance.
                let current = sigma * sigma;
                let eps = half_normal_var * current / (current - half_normal_var);
                inst.integrate_approximate_hint(i, eps).unwrap();
            }
        }
        let est = inst.estimate();
        let baseline = paper_instance().estimate();
        assert!(est.bikz < baseline.bikz - 40.0, "hints must help: {est:?}");
        assert!(
            est.bikz > 150.0,
            "signs alone cannot break the scheme: {:.2}",
            est.bikz
        );
        // Paper: 253.29 bikz ≈ 2^84. Ours lands in the same regime.
        assert!(est.bits > 50.0 && est.bits < 120.0);
    }

    #[test]
    fn approximate_hint_shrinks_variance_bayes() {
        let mut inst = paper_instance();
        let before = inst.ln_det_sigma();
        inst.integrate_approximate_hint(0, 1.0).unwrap();
        let after = inst.ln_det_sigma();
        // σ²=10.24, ε²=1 → posterior 10.24/11.24 ≈ 0.911.
        assert!((after - before - (10.24f64 / 11.24).ln() + (10.24f64).ln()).abs() < 1e-9);
        assert!(after < before);
    }

    #[test]
    fn modular_hint_grows_volume() {
        let mut inst = paper_instance();
        let before = inst.ln_volume();
        inst.integrate_modular_hint(0, 2.0).unwrap();
        assert!((inst.ln_volume() - before - (2.0f64).ln()).abs() < 1e-9);
        // A modular hint must not hurt.
        assert!(inst.estimate().bikz <= paper_instance().estimate().bikz);
    }

    #[test]
    fn short_vector_hint_projects() {
        let mut inst = paper_instance();
        let dim = inst.dim();
        inst.integrate_short_vector_hint(132120577.0).unwrap();
        assert_eq!(inst.dim(), dim - 1);
    }

    #[test]
    fn hints_never_increase_bikz() {
        // Monotonicity: integrating any perfect hint cannot make the attack
        // harder.
        let mut inst = paper_instance();
        let mut last = inst.estimate().bikz;
        for i in 0..64 {
            inst.integrate_perfect_hint(i * 16).unwrap();
            let now = inst.estimate().bikz;
            assert!(now <= last + 1e-6, "hint {i} raised bikz {last} -> {now}");
            last = now;
        }
    }

    #[test]
    fn error_paths() {
        let mut inst = paper_instance();
        assert!(matches!(
            inst.integrate_perfect_hint(5000),
            Err(HintError::BadCoordinate { .. })
        ));
        inst.integrate_perfect_hint(3).unwrap();
        assert!(matches!(
            inst.integrate_perfect_hint(3),
            Err(HintError::AlreadyEliminated(3))
        ));
        assert!(matches!(
            inst.integrate_approximate_hint(4, 0.0),
            Err(HintError::NonPositive(_))
        ));
        assert!(matches!(
            inst.integrate_modular_hint(4, 1.0),
            Err(HintError::NonPositive(_))
        ));
        assert!(matches!(
            inst.integrate_short_vector_hint(-1.0),
            Err(HintError::NonPositive(_))
        ));
    }

    #[test]
    fn bikz_bits_conversion_matches_footnote() {
        assert!((bikz_to_bits(382.25) - 128.0).abs() < 1e-9);
        assert!((bikz_to_bits(12.2) - 4.085).abs() < 0.01);
    }
}
