#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
// Indexed loops are the clearest notation for the dense numeric kernels
// in this workspace (convolutions, scatter matrices, lattice bases).
#![allow(clippy::needless_range_loop)]

//! # reveal-hints
//!
//! The "LWE with side information" security estimator (Dachman-Soled, Ducas,
//! Gong, Rossi — CRYPTO 2020) in the lightweight (DBDD-lite) formulation the
//! RevEAL paper uses to quantify its attack: embed the SEAL LWE instance
//! into a Distorted BDD problem, integrate the side-channel information as
//! perfect / approximate / modular / short-vector hints, and report the
//! required BKZ block size ("bikz") plus the equivalent bit security
//! (1 bit ≈ 2.99 bikz, footnote 3).
//!
//! ## Example: Table III in four lines
//!
//! ```
//! use reveal_hints::{DbddInstance, LweParameters};
//!
//! let baseline = DbddInstance::from_lwe(&LweParameters::seal_128_paper());
//! let without_hints = baseline.estimate();
//! let mut hinted = baseline.clone();
//! for i in 0..1024 {
//!     hinted.integrate_perfect_hint(i)?; // single-trace recovery of e2
//! }
//! let with_hints = hinted.estimate();
//! assert!(without_hints.bikz > 300.0);
//! assert!(with_hints.bikz < 40.0);
//! # Ok::<(), reveal_hints::HintError>(())
//! ```

pub mod dbdd;
pub mod delta;
pub mod posterior;

pub use dbdd::{
    bikz_to_bits, DbddInstance, HintError, LweParameters, SecurityEstimate, BIKZ_PER_BIT,
};
pub use delta::{delta_bkz, ln_delta_bkz, solve_beta, success_margin};
pub use posterior::{
    integrate_posteriors, HintClass, HintPolicy, HintSummary, Posterior, PosteriorError,
};
