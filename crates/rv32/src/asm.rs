//! A two-pass assembler for the RV32IM subset used by the sampler kernel.
//!
//! Supported syntax:
//!
//! - one instruction per line; `#` starts a comment
//! - labels: `name:` (alone or before an instruction)
//! - directives: `.word <value>` (value may be decimal, hex, or a label)
//! - base mnemonics: `lui auipc jal jalr beq bne blt bge bltu bgeu lb lh lw
//!   lbu lhu sb sh sw addi slti sltiu xori ori andi slli srli srai add sub
//!   sll slt sltu xor srl sra or and mul mulh mulhsu mulhu div divu rem remu
//!   ecall ebreak`
//! - pseudo-instructions: `nop`, `mv`, `li` (expands to `lui`+`addi` when
//!   needed), `not`, `neg`, `j`, `jr`, `ret`, `call` (near), `beqz`, `bnez`,
//!   `blez`, `bgez`, `bltz`, `bgtz`, `ble`, `bgt`

use crate::isa::{AluOp, BranchCond, Instruction, MemWidth, MulOp, Reg};
use std::collections::HashMap;
use std::fmt;

/// Errors produced while assembling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssembleError {
    /// 1-based source line.
    pub line: usize,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for AssembleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AssembleError {}

/// The output of assembling a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Machine code words, one per instruction/`.word`.
    pub words: Vec<u32>,
    /// Label → byte offset map (relative to the load address).
    pub symbols: HashMap<String, u32>,
}

impl Program {
    /// Byte length of the program image.
    pub fn byte_len(&self) -> usize {
        self.words.len() * 4
    }

    /// Looks up a label's byte offset.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// The label at or nearest before byte `offset`, with the remaining
    /// distance — e.g. `("outer", 8)` for an instruction two words into the
    /// `outer` block. Useful for anchoring diagnostics to the listing.
    pub fn nearest_symbol(&self, offset: u32) -> Option<(&str, u32)> {
        self.symbols
            .iter()
            .filter(|(_, &off)| off <= offset)
            .max_by_key(|(name, &off)| (off, std::cmp::Reverse(name.as_str())))
            .map(|(name, &off)| (name.as_str(), offset - off))
    }
}

/// Assembles source text into machine code loaded at `base` (needed for
/// absolute label references in `li`-style expansions).
///
/// # Errors
///
/// Returns the first syntax or range error with its line number.
///
/// # Examples
///
/// ```
/// use reveal_rv32::asm::assemble;
/// let program = assemble("
///     li   a0, 42
///     addi a0, a0, 1
///     ebreak
/// ", 0)?;
/// assert_eq!(program.words.len(), 3);
/// # Ok::<(), reveal_rv32::asm::AssembleError>(())
/// ```
pub fn assemble(source: &str, base: u32) -> Result<Program, AssembleError> {
    // Pass 1: tokenize, expand pseudo-instruction *sizes*, collect labels.
    let mut items: Vec<(usize, Item)> = Vec::new(); // (line_no, item)
    let mut symbols: HashMap<String, u32> = HashMap::new();
    let mut offset = 0u32;
    for (line_idx, raw_line) in source.lines().enumerate() {
        let line_no = line_idx + 1;
        let mut line = raw_line;
        if let Some(pos) = line.find('#') {
            line = &line[..pos];
        }
        let mut rest = line.trim();
        // Labels (possibly several) at line start.
        while let Some(colon) = rest.find(':') {
            let (label, after) = rest.split_at(colon);
            let label = label.trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                break;
            }
            if symbols.insert(label.to_string(), offset).is_some() {
                return Err(AssembleError {
                    line: line_no,
                    message: format!("duplicate label `{label}`"),
                });
            }
            rest = after[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }
        let item = parse_item(rest, line_no)?;
        offset += 4 * item.word_count();
        items.push((line_no, item));
    }

    // Pass 2: emit words with resolved labels.
    let mut words = Vec::new();
    let mut pc = 0u32;
    for (line_no, item) in &items {
        let emitted = item
            .emit(pc, base, &symbols)
            .map_err(|message| AssembleError {
                line: *line_no,
                message,
            })?;
        pc += 4 * emitted.len() as u32;
        words.extend(emitted);
    }
    Ok(Program { words, symbols })
}

/// A parsed source item (may expand to several words).
#[derive(Debug, Clone)]
enum Item {
    Word(WordValue),
    Insn(Mnemonic),
}

#[derive(Debug, Clone)]
enum WordValue {
    Literal(u32),
    Label(String),
}

/// A mnemonic with raw operands, resolved at emit time.
#[derive(Debug, Clone)]
struct Mnemonic {
    name: String,
    operands: Vec<String>,
}

impl Item {
    fn word_count(&self) -> u32 {
        match self {
            Item::Word(_) => 1,
            Item::Insn(m) => match m.name.as_str() {
                // `li` may need lui+addi; reserve 2 words when the immediate
                // cannot be known to fit 12 bits (labels or big literals).
                "li" => {
                    if let Some(v) = m.operands.get(1).and_then(|s| parse_imm_literal(s)) {
                        if (-2048..=2047).contains(&v) {
                            1
                        } else {
                            2
                        }
                    } else {
                        2
                    }
                }
                "la" | "call" => 2,
                _ => 1,
            },
        }
    }

    fn emit(&self, pc: u32, base: u32, symbols: &HashMap<String, u32>) -> Result<Vec<u32>, String> {
        match self {
            Item::Word(WordValue::Literal(v)) => Ok(vec![*v]),
            Item::Word(WordValue::Label(l)) => {
                let off = symbols
                    .get(l)
                    .ok_or_else(|| format!("unknown label `{l}`"))?;
                Ok(vec![base.wrapping_add(*off)])
            }
            Item::Insn(m) => emit_mnemonic(m, pc, base, symbols),
        }
    }
}

fn parse_item(text: &str, line: usize) -> Result<Item, AssembleError> {
    let mut parts = text.splitn(2, char::is_whitespace);
    let head = parts.next().unwrap_or("");
    let tail = parts.next().unwrap_or("").trim();
    if head == ".word" {
        let value = if let Some(v) = parse_u32_literal(tail) {
            WordValue::Literal(v)
        } else if !tail.is_empty() {
            WordValue::Label(tail.to_string())
        } else {
            return Err(AssembleError {
                line,
                message: ".word needs a value".into(),
            });
        };
        return Ok(Item::Word(value));
    }
    if head.starts_with('.') {
        return Err(AssembleError {
            line,
            message: format!("unsupported directive `{head}`"),
        });
    }
    let operands: Vec<String> = if tail.is_empty() {
        Vec::new()
    } else {
        tail.split(',').map(|s| s.trim().to_string()).collect()
    };
    Ok(Item::Insn(Mnemonic {
        name: head.to_lowercase(),
        operands,
    }))
}

fn parse_u32_literal(s: &str) -> Option<u32> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u32::from_str_radix(hex, 16).ok()
    } else if let Some(rest) = s.strip_prefix('-') {
        let v: i64 = rest.parse().ok()?;
        Some((-v) as u32)
    } else {
        s.parse::<u32>().ok()
    }
}

fn parse_imm_literal(s: &str) -> Option<i64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u32::from_str_radix(hex, 16).ok().map(|v| v as i64)
    } else if let Some(hex) = s.strip_prefix("-0x") {
        u32::from_str_radix(hex, 16).ok().map(|v| -(v as i64))
    } else {
        s.parse::<i64>().ok()
    }
}

struct Ops<'a> {
    m: &'a Mnemonic,
    pc: u32,
    base: u32,
    symbols: &'a HashMap<String, u32>,
}

impl<'a> Ops<'a> {
    fn reg(&self, i: usize) -> Result<Reg, String> {
        let s = self
            .m
            .operands
            .get(i)
            .ok_or_else(|| format!("missing operand {i}"))?;
        Reg::parse(s).ok_or_else(|| format!("bad register `{s}`"))
    }

    fn imm(&self, i: usize) -> Result<i32, String> {
        let s = self
            .m
            .operands
            .get(i)
            .ok_or_else(|| format!("missing operand {i}"))?;
        if let Some(v) = parse_imm_literal(s) {
            if v > u32::MAX as i64 || v < i32::MIN as i64 {
                return Err(format!("immediate `{s}` out of range"));
            }
            // Interpret as a 32-bit pattern (0xF0000000 is a valid literal).
            return Ok(v as u32 as i32);
        }
        // Absolute address of a label.
        if let Some(off) = self.symbols.get(s.as_str()) {
            return Ok(self.base.wrapping_add(*off) as i32);
        }
        Err(format!("bad immediate `{s}`"))
    }

    /// PC-relative branch/jump target.
    fn target(&self, i: usize) -> Result<i32, String> {
        let s = self
            .m
            .operands
            .get(i)
            .ok_or_else(|| format!("missing operand {i}"))?;
        if let Some(off) = self.symbols.get(s.as_str()) {
            return Ok(*off as i64 as i32 - self.pc as i32);
        }
        if let Some(v) = parse_imm_literal(s) {
            return Ok(v as i32);
        }
        Err(format!("unknown label `{s}`"))
    }

    /// `offset(reg)` memory operand.
    fn mem(&self, i: usize) -> Result<(Reg, i32), String> {
        let s = self
            .m
            .operands
            .get(i)
            .ok_or_else(|| format!("missing operand {i}"))?;
        let open = s
            .find('(')
            .ok_or_else(|| format!("bad memory operand `{s}`"))?;
        let close = s
            .find(')')
            .ok_or_else(|| format!("bad memory operand `{s}`"))?;
        let off_str = s[..open].trim();
        let offset = if off_str.is_empty() {
            0
        } else {
            parse_imm_literal(off_str).ok_or_else(|| format!("bad offset `{off_str}`"))? as i32
        };
        let reg = Reg::parse(s[open + 1..close].trim())
            .ok_or_else(|| format!("bad register in `{s}`"))?;
        Ok((reg, offset))
    }

    fn arity(&self, n: usize) -> Result<(), String> {
        if self.m.operands.len() != n {
            return Err(format!(
                "`{}` expects {n} operands, got {}",
                self.m.name,
                self.m.operands.len()
            ));
        }
        Ok(())
    }
}

fn emit_mnemonic(
    m: &Mnemonic,
    pc: u32,
    base: u32,
    symbols: &HashMap<String, u32>,
) -> Result<Vec<u32>, String> {
    let ops = Ops {
        m,
        pc,
        base,
        symbols,
    };
    let one = |i: Instruction| Ok(vec![i.encode()]);
    let alu_imm = |op: AluOp, ops: &Ops| -> Result<Vec<u32>, String> {
        ops.arity(3)?;
        one(Instruction::AluImm {
            op,
            rd: ops.reg(0)?,
            rs1: ops.reg(1)?,
            imm: ops.imm(2)?,
        })
    };
    let alu_reg = |op: AluOp, ops: &Ops| -> Result<Vec<u32>, String> {
        ops.arity(3)?;
        one(Instruction::AluReg {
            op,
            rd: ops.reg(0)?,
            rs1: ops.reg(1)?,
            rs2: ops.reg(2)?,
        })
    };
    let mul_op = |op: MulOp, ops: &Ops| -> Result<Vec<u32>, String> {
        ops.arity(3)?;
        one(Instruction::MulDiv {
            op,
            rd: ops.reg(0)?,
            rs1: ops.reg(1)?,
            rs2: ops.reg(2)?,
        })
    };
    let branch = |cond: BranchCond, ops: &Ops| -> Result<Vec<u32>, String> {
        ops.arity(3)?;
        one(Instruction::Branch {
            cond,
            rs1: ops.reg(0)?,
            rs2: ops.reg(1)?,
            offset: ops.target(2)?,
        })
    };
    let branch_swapped = |cond: BranchCond, ops: &Ops| -> Result<Vec<u32>, String> {
        ops.arity(3)?;
        one(Instruction::Branch {
            cond,
            rs1: ops.reg(1)?,
            rs2: ops.reg(0)?,
            offset: ops.target(2)?,
        })
    };
    let branch_zero = |cond: BranchCond, swap: bool, ops: &Ops| -> Result<Vec<u32>, String> {
        ops.arity(2)?;
        let r = ops.reg(0)?;
        let (rs1, rs2) = if swap { (Reg::ZERO, r) } else { (r, Reg::ZERO) };
        one(Instruction::Branch {
            cond,
            rs1,
            rs2,
            offset: ops.target(1)?,
        })
    };
    let load = |width: MemWidth, signed: bool, ops: &Ops| -> Result<Vec<u32>, String> {
        ops.arity(2)?;
        let (rs1, offset) = ops.mem(1)?;
        one(Instruction::Load {
            rd: ops.reg(0)?,
            rs1,
            offset,
            width,
            signed,
        })
    };
    let store = |width: MemWidth, ops: &Ops| -> Result<Vec<u32>, String> {
        ops.arity(2)?;
        let (rs1, offset) = ops.mem(1)?;
        one(Instruction::Store {
            rs1,
            rs2: ops.reg(0)?,
            offset,
            width,
        })
    };
    /// Splits a 32-bit value into (upper-20, lower-12) parts such that
    /// `lui(upper) + addi(lower) == value` with sign-extended lower part.
    fn split_hi_lo(value: u32) -> (i32, i32) {
        let lo = ((value & 0xFFF) as i32) << 20 >> 20; // sign-extend 12 bits
        let hi = value.wrapping_sub(lo as u32) & 0xFFFF_F000;
        (hi as i32, lo)
    }
    match m.name.as_str() {
        "lui" => {
            ops.arity(2)?;
            let imm = ops.imm(1)?;
            one(Instruction::Lui {
                rd: ops.reg(0)?,
                imm: (imm as u32 & 0xFFFF_F000) as i32,
            })
        }
        "auipc" => {
            ops.arity(2)?;
            one(Instruction::Auipc {
                rd: ops.reg(0)?,
                imm: ops.imm(1)?,
            })
        }
        "jal" => match m.operands.len() {
            1 => one(Instruction::Jal {
                rd: Reg(1),
                offset: ops.target(0)?,
            }),
            2 => one(Instruction::Jal {
                rd: ops.reg(0)?,
                offset: ops.target(1)?,
            }),
            n => Err(format!("`jal` expects 1 or 2 operands, got {n}")),
        },
        "jalr" => match m.operands.len() {
            1 => one(Instruction::Jalr {
                rd: Reg(1),
                rs1: ops.reg(0)?,
                offset: 0,
            }),
            3 => one(Instruction::Jalr {
                rd: ops.reg(0)?,
                rs1: ops.reg(1)?,
                offset: ops.imm(2)?,
            }),
            n => Err(format!("`jalr` expects 1 or 3 operands, got {n}")),
        },
        "beq" => branch(BranchCond::Eq, &ops),
        "bne" => branch(BranchCond::Ne, &ops),
        "blt" => branch(BranchCond::Lt, &ops),
        "bge" => branch(BranchCond::Ge, &ops),
        "bltu" => branch(BranchCond::Ltu, &ops),
        "bgeu" => branch(BranchCond::Geu, &ops),
        "bgt" => branch_swapped(BranchCond::Lt, &ops),
        "ble" => branch_swapped(BranchCond::Ge, &ops),
        "beqz" => branch_zero(BranchCond::Eq, false, &ops),
        "bnez" => branch_zero(BranchCond::Ne, false, &ops),
        "bltz" => branch_zero(BranchCond::Lt, false, &ops),
        "bgez" => branch_zero(BranchCond::Ge, false, &ops),
        "bgtz" => branch_zero(BranchCond::Lt, true, &ops),
        "blez" => branch_zero(BranchCond::Ge, true, &ops),
        "lb" => load(MemWidth::Byte, true, &ops),
        "lh" => load(MemWidth::Half, true, &ops),
        "lw" => load(MemWidth::Word, true, &ops),
        "lbu" => load(MemWidth::Byte, false, &ops),
        "lhu" => load(MemWidth::Half, false, &ops),
        "sb" => store(MemWidth::Byte, &ops),
        "sh" => store(MemWidth::Half, &ops),
        "sw" => store(MemWidth::Word, &ops),
        "addi" => alu_imm(AluOp::Add, &ops),
        "slti" => alu_imm(AluOp::Slt, &ops),
        "sltiu" => alu_imm(AluOp::Sltu, &ops),
        "xori" => alu_imm(AluOp::Xor, &ops),
        "ori" => alu_imm(AluOp::Or, &ops),
        "andi" => alu_imm(AluOp::And, &ops),
        "slli" => alu_imm(AluOp::Sll, &ops),
        "srli" => alu_imm(AluOp::Srl, &ops),
        "srai" => alu_imm(AluOp::Sra, &ops),
        "add" => alu_reg(AluOp::Add, &ops),
        "sub" => alu_reg(AluOp::Sub, &ops),
        "sll" => alu_reg(AluOp::Sll, &ops),
        "slt" => alu_reg(AluOp::Slt, &ops),
        "sltu" => alu_reg(AluOp::Sltu, &ops),
        "xor" => alu_reg(AluOp::Xor, &ops),
        "srl" => alu_reg(AluOp::Srl, &ops),
        "sra" => alu_reg(AluOp::Sra, &ops),
        "or" => alu_reg(AluOp::Or, &ops),
        "and" => alu_reg(AluOp::And, &ops),
        "mul" => mul_op(MulOp::Mul, &ops),
        "mulh" => mul_op(MulOp::Mulh, &ops),
        "mulhsu" => mul_op(MulOp::Mulhsu, &ops),
        "mulhu" => mul_op(MulOp::Mulhu, &ops),
        "div" => mul_op(MulOp::Div, &ops),
        "divu" => mul_op(MulOp::Divu, &ops),
        "rem" => mul_op(MulOp::Rem, &ops),
        "remu" => mul_op(MulOp::Remu, &ops),
        "ecall" => one(Instruction::Ecall),
        "ebreak" => one(Instruction::Ebreak),
        // --- pseudo-instructions ---
        "nop" => one(Instruction::AluImm {
            op: AluOp::Add,
            rd: Reg::ZERO,
            rs1: Reg::ZERO,
            imm: 0,
        }),
        "mv" => {
            ops.arity(2)?;
            one(Instruction::AluImm {
                op: AluOp::Add,
                rd: ops.reg(0)?,
                rs1: ops.reg(1)?,
                imm: 0,
            })
        }
        "not" => {
            ops.arity(2)?;
            one(Instruction::AluImm {
                op: AluOp::Xor,
                rd: ops.reg(0)?,
                rs1: ops.reg(1)?,
                imm: -1,
            })
        }
        "neg" => {
            ops.arity(2)?;
            one(Instruction::AluReg {
                op: AluOp::Sub,
                rd: ops.reg(0)?,
                rs1: Reg::ZERO,
                rs2: ops.reg(1)?,
            })
        }
        "j" => {
            ops.arity(1)?;
            one(Instruction::Jal {
                rd: Reg::ZERO,
                offset: ops.target(0)?,
            })
        }
        "jr" => {
            ops.arity(1)?;
            one(Instruction::Jalr {
                rd: Reg::ZERO,
                rs1: ops.reg(0)?,
                offset: 0,
            })
        }
        "ret" => one(Instruction::Jalr {
            rd: Reg::ZERO,
            rs1: Reg(1),
            offset: 0,
        }),
        "li" => {
            ops.arity(2)?;
            let rd = ops.reg(0)?;
            let value = ops.imm(1)? as u32;
            let small = value as i32;
            if (-2048..=2047).contains(&small)
                && parse_imm_literal(&m.operands[1])
                    .map(|v| (-2048..=2047).contains(&v))
                    .unwrap_or(false)
            {
                one(Instruction::AluImm {
                    op: AluOp::Add,
                    rd,
                    rs1: Reg::ZERO,
                    imm: small,
                })
            } else {
                let (hi, lo) = split_hi_lo(value);
                Ok(vec![
                    Instruction::Lui { rd, imm: hi }.encode(),
                    Instruction::AluImm {
                        op: AluOp::Add,
                        rd,
                        rs1: rd,
                        imm: lo,
                    }
                    .encode(),
                ])
            }
        }
        "la" => {
            ops.arity(2)?;
            let rd = ops.reg(0)?;
            let value = ops.imm(1)? as u32;
            let (hi, lo) = split_hi_lo(value);
            Ok(vec![
                Instruction::Lui { rd, imm: hi }.encode(),
                Instruction::AluImm {
                    op: AluOp::Add,
                    rd,
                    rs1: rd,
                    imm: lo,
                }
                .encode(),
            ])
        }
        "call" => {
            ops.arity(1)?;
            // Near call: auipc+jalr would be canonical, but every kernel fits
            // in ±1 MiB, so emit jal ra plus a nop to keep the 2-word size.
            Ok(vec![
                Instruction::Jal {
                    rd: Reg(1),
                    offset: ops.target(0)?,
                }
                .encode(),
                Instruction::AluImm {
                    op: AluOp::Add,
                    rd: Reg::ZERO,
                    rs1: Reg::ZERO,
                    imm: 0,
                }
                .encode(),
            ])
        }
        other => Err(format!("unknown mnemonic `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Instruction;

    #[test]
    fn assembles_basic_program() {
        let p = assemble(
            "
            start:
                addi a0, zero, 1    # comment
                addi a1, zero, 2
                add  a2, a0, a1
                ebreak
            ",
            0,
        )
        .unwrap();
        assert_eq!(p.words.len(), 4);
        assert_eq!(p.symbol("start"), Some(0));
        assert_eq!(
            Instruction::decode(p.words[2]).unwrap(),
            Instruction::AluReg {
                op: AluOp::Add,
                rd: Reg::parse("a2").unwrap(),
                rs1: Reg::parse("a0").unwrap(),
                rs2: Reg::parse("a1").unwrap()
            }
        );
    }

    #[test]
    fn resolves_forward_and_backward_branches() {
        let p = assemble(
            "
            loop:
                addi t0, t0, -1
                bnez t0, loop
                beqz t1, end
                nop
            end:
                ebreak
            ",
            0,
        )
        .unwrap();
        // bnez at byte 4 targets byte 0 → offset -4.
        match Instruction::decode(p.words[1]).unwrap() {
            Instruction::Branch { offset, .. } => assert_eq!(offset, -4),
            other => panic!("expected branch, got {other:?}"),
        }
        // beqz at byte 8 targets byte 16 → offset +8.
        match Instruction::decode(p.words[2]).unwrap() {
            Instruction::Branch { offset, .. } => assert_eq!(offset, 8),
            other => panic!("expected branch, got {other:?}"),
        }
    }

    #[test]
    fn li_small_and_large() {
        let p = assemble("li t0, 100\nli t1, 0xF0000000\nli t2, -5", 0).unwrap();
        // 1 word + 2 words + 1 word.
        assert_eq!(p.words.len(), 4);
        match Instruction::decode(p.words[1]).unwrap() {
            Instruction::Lui { imm, .. } => assert_eq!(imm as u32, 0xF000_0000),
            other => panic!("expected lui, got {other:?}"),
        }
    }

    #[test]
    fn li_label_uses_base() {
        let p = assemble(
            "
            li t0, data
            ebreak
            data: .word 0xDEADBEEF
            ",
            0x1000,
        )
        .unwrap();
        // data is at offset 16 (li=2 words + ebreak=1 → wait: li 2 words,
        // ebreak 1 word → data offset 12); absolute = 0x100C.
        assert_eq!(p.symbol("data"), Some(12));
        assert_eq!(p.words[3], 0xDEAD_BEEF);
    }

    #[test]
    fn memory_operands() {
        let p = assemble("lw a0, 8(sp)\nsw a0, -4(s0)\nlw a1, (t0)", 0).unwrap();
        match Instruction::decode(p.words[0]).unwrap() {
            Instruction::Load { offset, .. } => assert_eq!(offset, 8),
            other => panic!("{other:?}"),
        }
        match Instruction::decode(p.words[1]).unwrap() {
            Instruction::Store { offset, .. } => assert_eq!(offset, -4),
            other => panic!("{other:?}"),
        }
        match Instruction::decode(p.words[2]).unwrap() {
            Instruction::Load { offset, .. } => assert_eq!(offset, 0),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn pseudo_neg_and_branches() {
        let p = assemble(
            "
                neg t0, t1
                bgtz t0, pos
                blez t0, npos
            pos:
            npos:
                ebreak
            ",
            0,
        )
        .unwrap();
        match Instruction::decode(p.words[0]).unwrap() {
            Instruction::AluReg {
                op: AluOp::Sub,
                rs1,
                ..
            } => assert_eq!(rs1, Reg::ZERO),
            other => panic!("{other:?}"),
        }
        // bgtz t0 → blt zero, t0.
        match Instruction::decode(p.words[1]).unwrap() {
            Instruction::Branch {
                cond: BranchCond::Lt,
                rs1,
                rs2,
                ..
            } => {
                assert_eq!(rs1, Reg::ZERO);
                assert_eq!(rs2, Reg::parse("t0").unwrap());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = assemble("nop\nbogus t0, t1\n", 0).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("bogus"));

        let err = assemble("addi t0, t9, 1", 0).unwrap_err();
        assert!(err.message.contains("t9"));

        let err = assemble("x: nop\nx: nop", 0).unwrap_err();
        assert!(err.message.contains("duplicate"));

        let err = assemble("j nowhere", 0).unwrap_err();
        assert!(err.message.contains("nowhere"));
    }

    #[test]
    fn word_directive_literal_and_label() {
        let p = assemble(
            "
            entry: nop
            table: .word 42
                   .word entry
            ",
            0x800,
        )
        .unwrap();
        assert_eq!(p.words[1], 42);
        assert_eq!(p.words[2], 0x800);
    }

    #[test]
    fn every_mnemonic_assembles() {
        let source = "
            lui t0, 0x12345000
            auipc t1, 0
            jal ra, next
        next:
            jalr ra, t0, 0
            beq t0, t1, next
            bne t0, t1, next
            blt t0, t1, next
            bge t0, t1, next
            bltu t0, t1, next
            bgeu t0, t1, next
            bgt t0, t1, next
            ble t0, t1, next
            lb t2, 0(sp)
            lh t2, 0(sp)
            lw t2, 0(sp)
            lbu t2, 0(sp)
            lhu t2, 0(sp)
            sb t2, 0(sp)
            sh t2, 0(sp)
            sw t2, 0(sp)
            addi t3, t3, 1
            slti t3, t3, 1
            sltiu t3, t3, 1
            xori t3, t3, 1
            ori t3, t3, 1
            andi t3, t3, 1
            slli t3, t3, 1
            srli t3, t3, 1
            srai t3, t3, 1
            add t4, t3, t2
            sub t4, t3, t2
            sll t4, t3, t2
            slt t4, t3, t2
            sltu t4, t3, t2
            xor t4, t3, t2
            srl t4, t3, t2
            sra t4, t3, t2
            or t4, t3, t2
            and t4, t3, t2
            mul t5, t4, t3
            mulh t5, t4, t3
            mulhsu t5, t4, t3
            mulhu t5, t4, t3
            div t5, t4, t3
            divu t5, t4, t3
            rem t5, t4, t3
            remu t5, t4, t3
            nop
            mv t6, t5
            not t6, t5
            neg t6, t5
            j next
            jr ra
            ret
            ecall
            ebreak
        ";
        let p = assemble(source, 0).unwrap();
        // Every emitted word must decode back.
        for (i, w) in p.words.iter().enumerate() {
            Instruction::decode(*w).unwrap_or_else(|e| panic!("word {i}: {e}"));
        }
    }
}
