//! The RV32IM executor with PicoRV32-style multi-cycle timing and
//! memory-mapped I/O ports.

use crate::isa::{AluOp, BranchCond, Instruction, MemWidth, MulOp, Reg};
use std::collections::HashMap;
use std::fmt;

/// Memory-mapped I/O handler: addresses at or above [`Bus::MMIO_BASE`] are
/// routed here instead of RAM.
pub trait Mmio {
    /// Handles a 32-bit read from an MMIO address.
    fn read(&mut self, addr: u32) -> u32;
    /// Handles a 32-bit write to an MMIO address.
    fn write(&mut self, addr: u32, value: u32);
}

/// An MMIO region backed by queues: reads pop from per-address FIFOs, writes
/// append to per-address logs. This is how the harness feeds noise values and
/// iteration counts into the kernel.
#[derive(Debug, Default, Clone)]
pub struct QueueMmio {
    read_queues: HashMap<u32, Vec<u32>>,
    write_logs: HashMap<u32, Vec<u32>>,
}

impl QueueMmio {
    /// Creates an empty region.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues values to be returned by successive reads of `addr`.
    pub fn push_reads<I: IntoIterator<Item = u32>>(&mut self, addr: u32, values: I) {
        let q = self.read_queues.entry(addr).or_default();
        // Values are popped from the end; store reversed.
        let mut items: Vec<u32> = values.into_iter().collect();
        items.reverse();
        let mut existing = std::mem::take(q);
        items.append(&mut existing);
        *q = items;
    }

    /// Values written by the program to `addr`, in order.
    pub fn written(&self, addr: u32) -> &[u32] {
        self.write_logs.get(&addr).map(Vec::as_slice).unwrap_or(&[])
    }
}

impl Mmio for QueueMmio {
    fn read(&mut self, addr: u32) -> u32 {
        self.read_queues
            .get_mut(&addr)
            .and_then(Vec::pop)
            .unwrap_or(0)
    }

    fn write(&mut self, addr: u32, value: u32) {
        self.write_logs.entry(addr).or_default().push(value);
    }
}

/// Flat little-endian RAM plus an MMIO window.
pub struct Bus<M: Mmio> {
    ram: Vec<u8>,
    /// The MMIO device.
    pub mmio: M,
}

impl<M: Mmio> Bus<M> {
    /// Addresses at or above this go to MMIO.
    pub const MMIO_BASE: u32 = 0xF000_0000;

    /// Creates a bus with `ram_bytes` of zeroed RAM.
    pub fn new(ram_bytes: usize, mmio: M) -> Self {
        Self {
            ram: vec![0; ram_bytes],
            mmio,
        }
    }

    /// RAM size in bytes.
    pub fn ram_len(&self) -> usize {
        self.ram.len()
    }

    /// Loads a word-aligned image at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the image does not fit in RAM.
    pub fn load_words(&mut self, addr: u32, words: &[u32]) {
        for (i, w) in words.iter().enumerate() {
            self.write_u32(addr + 4 * i as u32, *w);
        }
    }

    /// Reads a 32-bit little-endian word.
    pub fn read_u32(&mut self, addr: u32) -> u32 {
        if addr >= Self::MMIO_BASE {
            return self.mmio.read(addr);
        }
        let a = addr as usize;
        assert!(a + 4 <= self.ram.len(), "read past RAM at {addr:#x}");
        u32::from_le_bytes([
            self.ram[a],
            self.ram[a + 1],
            self.ram[a + 2],
            self.ram[a + 3],
        ])
    }

    /// Writes a 32-bit little-endian word.
    pub fn write_u32(&mut self, addr: u32, value: u32) {
        if addr >= Self::MMIO_BASE {
            self.mmio.write(addr, value);
            return;
        }
        let a = addr as usize;
        assert!(a + 4 <= self.ram.len(), "write past RAM at {addr:#x}");
        self.ram[a..a + 4].copy_from_slice(&value.to_le_bytes());
    }

    pub(crate) fn read_width(&mut self, addr: u32, width: MemWidth, signed: bool) -> u32 {
        match width {
            MemWidth::Word => self.read_u32(addr),
            MemWidth::Half => {
                let aligned = self.read_u32(addr & !1);
                let half = if addr & 2 != 0 {
                    (self.read_u32(addr & !3) >> 16) as u16
                } else {
                    aligned as u16
                };
                if signed {
                    half as i16 as i32 as u32
                } else {
                    half as u32
                }
            }
            MemWidth::Byte => {
                let word = self.read_u32(addr & !3);
                let byte = (word >> (8 * (addr & 3))) as u8;
                if signed {
                    byte as i8 as i32 as u32
                } else {
                    byte as u32
                }
            }
        }
    }

    pub(crate) fn write_width(&mut self, addr: u32, value: u32, width: MemWidth) {
        match width {
            MemWidth::Word => self.write_u32(addr, value),
            MemWidth::Half => {
                let base = addr & !3;
                let word = self.read_u32(base);
                let shift = 8 * (addr & 3);
                let mask = 0xFFFFu32 << shift;
                self.write_u32(base, (word & !mask) | ((value & 0xFFFF) << shift));
            }
            MemWidth::Byte => {
                let base = addr & !3;
                let word = self.read_u32(base);
                let shift = 8 * (addr & 3);
                let mask = 0xFFu32 << shift;
                self.write_u32(base, (word & !mask) | ((value & 0xFF) << shift));
            }
        }
    }
}

/// What one retired instruction did — the raw material of the power model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecRecord {
    /// Program counter of the instruction.
    pub pc: u32,
    /// The decoded instruction.
    pub instruction: Instruction,
    /// Cycles the instruction occupied (PicoRV32-style multi-cycle core).
    pub cycles: u32,
    /// Destination register write: `(reg, old_value, new_value)`.
    pub reg_write: Option<(Reg, u32, u32)>,
    /// Memory access: `(address, data, is_write)`.
    pub mem_access: Option<(u32, u32, bool)>,
    /// For branches: whether the branch was taken.
    pub branch_taken: Option<bool>,
}

/// Why execution stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Halt {
    /// An `ebreak` retired (normal kernel exit).
    Ebreak,
    /// An `ecall` retired.
    Ecall,
    /// The step budget ran out (probable infinite loop).
    OutOfFuel,
    /// The PC left the loaded image or decoding failed.
    DecodeFault { pc: u32, word: u32 },
}

impl fmt::Display for Halt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Halt::Ebreak => write!(f, "ebreak"),
            Halt::Ecall => write!(f, "ecall"),
            Halt::OutOfFuel => write!(f, "step budget exhausted"),
            Halt::DecodeFault { pc, word } => {
                write!(f, "decode fault at {pc:#x} (word {word:#010x})")
            }
        }
    }
}

/// PicoRV32-flavoured cycle counts (`ENABLE_FAST_MUL = 0`, no look-ahead):
/// regular ALU ops take a handful of cycles, memory ops a little more, and
/// multiplications dominate — which is what makes the distribution call
/// visible as a peak in the power trace.
pub fn cycle_cost(instr: &Instruction, branch_taken: bool) -> u32 {
    match instr {
        Instruction::Lui { .. } | Instruction::Auipc { .. } => 3,
        Instruction::AluImm { .. } => 3,
        Instruction::AluReg { .. } => 3,
        Instruction::MulDiv { op, .. } => match op {
            MulOp::Mul | MulOp::Mulh | MulOp::Mulhsu | MulOp::Mulhu => 38,
            MulOp::Div | MulOp::Divu | MulOp::Rem | MulOp::Remu => 40,
        },
        Instruction::Load { .. } => 5,
        Instruction::Store { .. } => 5,
        Instruction::Jal { .. } | Instruction::Jalr { .. } => 5,
        Instruction::Branch { .. } => {
            if branch_taken {
                5
            } else {
                3
            }
        }
        Instruction::Ecall | Instruction::Ebreak => 3,
    }
}

/// A densely predecoded instruction window: one slot per word in
/// `[base, base + 4·len)`. `None` marks words that do not decode — they take
/// the live path at execution time and fault exactly as before.
struct DecodeCache {
    base: u32,
    slots: Vec<Option<Instruction>>,
}

impl DecodeCache {
    /// The slot index covering `pc`, if the cache covers it.
    #[inline]
    fn slot_of(&self, pc: u32) -> Option<usize> {
        let offset = pc.wrapping_sub(self.base);
        if offset.is_multiple_of(4) {
            let index = (offset / 4) as usize;
            if index < self.slots.len() {
                return Some(index);
            }
        }
        None
    }
}

/// The RV32IM core.
pub struct Cpu<M: Mmio> {
    regs: [u32; 32],
    pc: u32,
    /// The memory bus.
    pub bus: Bus<M>,
    cycle: u64,
    decode_cache: Option<DecodeCache>,
}

impl<M: Mmio> Cpu<M> {
    /// Creates a core with the given bus, PC at 0.
    pub fn new(bus: Bus<M>) -> Self {
        Self {
            regs: [0; 32],
            pc: 0,
            bus,
            cycle: 0,
            decode_cache: None,
        }
    }

    /// Decodes the `word_count` words at `base` once into a dense cache
    /// indexed by pc, so [`Cpu::step`] skips instruction-word parsing for
    /// every pc inside the window. Execution semantics are unchanged: stores
    /// into the window invalidate the touched slots (self-modifying code
    /// falls back to live decoding), and undecodable words still fault at
    /// execution time with the same [`Halt::DecodeFault`].
    ///
    /// # Panics
    ///
    /// Panics if the window reaches into the MMIO region (predecoding must
    /// not consume MMIO read queues) or past the end of RAM.
    pub fn predecode(&mut self, base: u32, word_count: usize) {
        let end = base as u64 + 4 * word_count as u64;
        assert!(
            end <= Bus::<M>::MMIO_BASE as u64,
            "predecode window may not touch MMIO"
        );
        let slots = (0..word_count)
            .map(|i| Instruction::decode(self.bus.read_u32(base + 4 * i as u32)).ok())
            .collect();
        self.decode_cache = Some(DecodeCache { base, slots });
    }

    /// Drops any slot of the predecode cache that a store to `addr` may have
    /// overwritten (at most two word-aligned slots for unaligned accesses).
    #[inline]
    pub(crate) fn invalidate_predecoded(&mut self, addr: u32) {
        if let Some(cache) = &mut self.decode_cache {
            for word_addr in [addr & !3, addr.wrapping_add(3) & !3] {
                if let Some(index) = cache.slot_of(word_addr) {
                    cache.slots[index] = None;
                }
            }
        }
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Sets the program counter.
    pub fn set_pc(&mut self, pc: u32) {
        self.pc = pc;
    }

    /// Reads a register.
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index()]
    }

    /// Writes a register (x0 writes are ignored).
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        if r.index() != 0 {
            self.regs[r.index()] = value;
        }
    }

    /// Total elapsed cycles.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Advances the cycle counter without executing — used by the kernel's
    /// memoized fast path when it replays a burst's architectural effects.
    pub(crate) fn add_cycles(&mut self, cycles: u64) {
        self.cycle += cycles;
    }

    /// Executes one instruction, returning its record, or the halt reason.
    pub fn step(&mut self) -> Result<ExecRecord, Halt> {
        let predecoded = match &self.decode_cache {
            Some(cache) => cache.slot_of(self.pc).and_then(|index| cache.slots[index]),
            None => None,
        };
        let instruction = match predecoded {
            Some(instruction) => instruction,
            None => {
                let word = self.bus.read_u32(self.pc);
                Instruction::decode(word).map_err(|_| Halt::DecodeFault { pc: self.pc, word })?
            }
        };
        let pc = self.pc;
        let mut next_pc = pc.wrapping_add(4);
        let mut reg_write = None;
        let mut mem_access = None;
        let mut branch_taken = None;

        let mut write_rd = |regs: &mut [u32; 32], rd: Reg, value: u32| {
            let old = regs[rd.index()];
            if rd.index() != 0 {
                regs[rd.index()] = value;
                reg_write = Some((rd, old, value));
            } else {
                reg_write = Some((rd, 0, 0));
            }
        };

        match instruction {
            Instruction::Lui { rd, imm } => write_rd(&mut self.regs, rd, imm as u32),
            Instruction::Auipc { rd, imm } => {
                write_rd(&mut self.regs, rd, pc.wrapping_add(imm as u32))
            }
            Instruction::Jal { rd, offset } => {
                write_rd(&mut self.regs, rd, pc.wrapping_add(4));
                next_pc = pc.wrapping_add(offset as u32);
            }
            Instruction::Jalr { rd, rs1, offset } => {
                let target = self.regs[rs1.index()].wrapping_add(offset as u32) & !1;
                write_rd(&mut self.regs, rd, pc.wrapping_add(4));
                next_pc = target;
            }
            Instruction::Branch {
                cond,
                rs1,
                rs2,
                offset,
            } => {
                let a = self.regs[rs1.index()];
                let b = self.regs[rs2.index()];
                let taken = match cond {
                    BranchCond::Eq => a == b,
                    BranchCond::Ne => a != b,
                    BranchCond::Lt => (a as i32) < (b as i32),
                    BranchCond::Ge => (a as i32) >= (b as i32),
                    BranchCond::Ltu => a < b,
                    BranchCond::Geu => a >= b,
                };
                branch_taken = Some(taken);
                if taken {
                    next_pc = pc.wrapping_add(offset as u32);
                }
            }
            Instruction::Load {
                rd,
                rs1,
                offset,
                width,
                signed,
            } => {
                let addr = self.regs[rs1.index()].wrapping_add(offset as u32);
                let value = self.bus.read_width(addr, width, signed);
                mem_access = Some((addr, value, false));
                write_rd(&mut self.regs, rd, value);
            }
            Instruction::Store {
                rs1,
                rs2,
                offset,
                width,
            } => {
                let addr = self.regs[rs1.index()].wrapping_add(offset as u32);
                let value = self.regs[rs2.index()];
                self.bus.write_width(addr, value, width);
                self.invalidate_predecoded(addr);
                mem_access = Some((addr, value, true));
            }
            Instruction::AluImm { op, rd, rs1, imm } => {
                let a = self.regs[rs1.index()];
                let value = alu(op, a, imm as u32);
                write_rd(&mut self.regs, rd, value);
            }
            Instruction::AluReg { op, rd, rs1, rs2 } => {
                let a = self.regs[rs1.index()];
                let b = self.regs[rs2.index()];
                let value = alu(op, a, b);
                write_rd(&mut self.regs, rd, value);
            }
            Instruction::MulDiv { op, rd, rs1, rs2 } => {
                let a = self.regs[rs1.index()];
                let b = self.regs[rs2.index()];
                let value = muldiv(op, a, b);
                write_rd(&mut self.regs, rd, value);
            }
            Instruction::Ecall => return Err(Halt::Ecall),
            Instruction::Ebreak => return Err(Halt::Ebreak),
        }
        let cycles = cycle_cost(&instruction, branch_taken.unwrap_or(false));
        self.cycle += cycles as u64;
        self.pc = next_pc;
        Ok(ExecRecord {
            pc,
            instruction,
            cycles,
            reg_write,
            mem_access,
            branch_taken,
        })
    }

    /// Runs until halt or `max_steps`, feeding every record to `on_record`
    /// as it retires — the zero-materialization path: no `Vec<ExecRecord>`
    /// is ever built, so a power model can consume the stream directly.
    pub fn run_with(&mut self, max_steps: usize, mut on_record: impl FnMut(&ExecRecord)) -> Halt {
        for _ in 0..max_steps {
            match self.step() {
                Ok(r) => on_record(&r),
                Err(halt) => return halt,
            }
        }
        Halt::OutOfFuel
    }

    /// Runs until halt or `max_steps`, collecting every record (the
    /// materializing API, kept for tests and the disassembly tooling).
    pub fn run(&mut self, max_steps: usize) -> (Vec<ExecRecord>, Halt) {
        let mut records = Vec::new();
        let halt = self.run_with(max_steps, |r| records.push(r.clone()));
        (records, halt)
    }
}

pub(crate) fn alu(op: AluOp, a: u32, b: u32) -> u32 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Sll => a.wrapping_shl(b & 0x1F),
        AluOp::Slt => ((a as i32) < (b as i32)) as u32,
        AluOp::Sltu => (a < b) as u32,
        AluOp::Xor => a ^ b,
        AluOp::Srl => a.wrapping_shr(b & 0x1F),
        AluOp::Sra => ((a as i32).wrapping_shr(b & 0x1F)) as u32,
        AluOp::Or => a | b,
        AluOp::And => a & b,
    }
}

pub(crate) fn muldiv(op: MulOp, a: u32, b: u32) -> u32 {
    match op {
        MulOp::Mul => a.wrapping_mul(b),
        MulOp::Mulh => ((a as i32 as i64).wrapping_mul(b as i32 as i64) >> 32) as u32,
        MulOp::Mulhsu => ((a as i32 as i64).wrapping_mul(b as u64 as i64) >> 32) as u32,
        MulOp::Mulhu => ((a as u64 * b as u64) >> 32) as u32,
        MulOp::Div => {
            if b == 0 {
                u32::MAX
            } else if a == 0x8000_0000 && b == u32::MAX {
                a
            } else {
                ((a as i32) / (b as i32)) as u32
            }
        }
        MulOp::Divu => a.checked_div(b).unwrap_or(u32::MAX),
        MulOp::Rem => {
            if b == 0 {
                a
            } else if a == 0x8000_0000 && b == u32::MAX {
                0
            } else {
                ((a as i32) % (b as i32)) as u32
            }
        }
        MulOp::Remu => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn run_program(source: &str) -> (Cpu<QueueMmio>, Vec<ExecRecord>, Halt) {
        let program = assemble(source, 0).unwrap();
        let mut bus = Bus::new(64 * 1024, QueueMmio::new());
        bus.load_words(0, &program.words);
        let mut cpu = Cpu::new(bus);
        let (records, halt) = cpu.run(1_000_000);
        (cpu, records, halt)
    }

    #[test]
    fn arithmetic_program() {
        let (cpu, _, halt) = run_program(
            "
            li a0, 21
            li a1, 2
            mul a2, a0, a1
            ebreak
            ",
        );
        assert_eq!(halt, Halt::Ebreak);
        assert_eq!(cpu.reg(Reg::parse("a2").unwrap()), 42);
    }

    #[test]
    fn loop_sums_one_to_ten() {
        let (cpu, _, halt) = run_program(
            "
                li t0, 10
                li t1, 0
            loop:
                add t1, t1, t0
                addi t0, t0, -1
                bnez t0, loop
                ebreak
            ",
        );
        assert_eq!(halt, Halt::Ebreak);
        assert_eq!(cpu.reg(Reg::parse("t1").unwrap()), 55);
    }

    #[test]
    fn memory_roundtrip() {
        let (cpu, _, halt) = run_program(
            "
            li t0, 0x1000
            li t1, 0xCAFEBABE
            sw t1, 0(t0)
            lw t2, 0(t0)
            lhu t3, 0(t0)
            lbu t4, 3(t0)
            ebreak
            ",
        );
        assert_eq!(halt, Halt::Ebreak);
        assert_eq!(cpu.reg(Reg::parse("t2").unwrap()), 0xCAFE_BABE);
        assert_eq!(cpu.reg(Reg::parse("t3").unwrap()), 0xBABE);
        assert_eq!(cpu.reg(Reg::parse("t4").unwrap()), 0xCA);
    }

    #[test]
    fn signed_loads_extend() {
        let (cpu, _, _) = run_program(
            "
            li t0, 0x1000
            li t1, 0xFF80
            sh t1, 0(t0)
            lh t2, 0(t0)
            lb t3, 0(t0)
            ebreak
            ",
        );
        assert_eq!(cpu.reg(Reg::parse("t2").unwrap()) as i32, -128);
        assert_eq!(cpu.reg(Reg::parse("t3").unwrap()) as i32, -128);
    }

    #[test]
    fn division_edge_cases() {
        let (cpu, _, _) = run_program(
            "
            li t0, 7
            li t1, 0
            div t2, t0, t1      # div by zero -> -1
            rem t3, t0, t1      # rem by zero -> dividend
            li t4, 0x80000000
            li t5, -1
            div t6, t4, t5      # overflow -> dividend
            ebreak
            ",
        );
        assert_eq!(cpu.reg(Reg::parse("t2").unwrap()), u32::MAX);
        assert_eq!(cpu.reg(Reg::parse("t3").unwrap()), 7);
        assert_eq!(cpu.reg(Reg::parse("t6").unwrap()), 0x8000_0000);
    }

    #[test]
    fn x0_stays_zero() {
        let (cpu, _, _) = run_program(
            "
            addi zero, zero, 5
            li t0, 1
            add zero, t0, t0
            ebreak
            ",
        );
        assert_eq!(cpu.reg(Reg::ZERO), 0);
    }

    #[test]
    fn records_capture_branches_and_writes() {
        let (_, records, _) = run_program(
            "
            li t0, 1
            beqz t0, skip     # not taken
            bnez t0, skip     # taken
            addi t1, t1, 9    # skipped
            skip:
            ebreak
            ",
        );
        let branches: Vec<bool> = records.iter().filter_map(|r| r.branch_taken).collect();
        assert_eq!(branches, vec![false, true]);
        // No record for the skipped instruction.
        assert!(records
            .iter()
            .all(|r| !matches!(r.instruction, Instruction::AluImm { imm: 9, .. })));
    }

    #[test]
    fn mul_costs_more_cycles_than_add() {
        let (_, records, _) = run_program(
            "
            li t0, 3
            mul t1, t0, t0
            add t2, t0, t0
            ebreak
            ",
        );
        let mul_rec = records
            .iter()
            .find(|r| matches!(r.instruction, Instruction::MulDiv { .. }))
            .unwrap();
        let add_rec = records
            .iter()
            .rfind(|r| matches!(r.instruction, Instruction::AluReg { .. }))
            .unwrap();
        assert!(mul_rec.cycles > 10 * add_rec.cycles / 3);
    }

    #[test]
    fn mmio_read_and_write() {
        let program = assemble(
            "
            li t0, 0xF0000000
            lw t1, 0(t0)       # pops 7
            lw t2, 0(t0)       # pops 9
            sw t1, 4(t0)
            sw t2, 4(t0)
            ebreak
            ",
            0,
        )
        .unwrap();
        let mut mmio = QueueMmio::new();
        mmio.push_reads(0xF000_0000, [7, 9]);
        let mut bus = Bus::new(64 * 1024, mmio);
        bus.load_words(0, &program.words);
        let mut cpu = Cpu::new(bus);
        let (_, halt) = cpu.run(1000);
        assert_eq!(halt, Halt::Ebreak);
        assert_eq!(cpu.bus.mmio.written(0xF000_0004), &[7, 9]);
        assert_eq!(cpu.reg(Reg::parse("t1").unwrap()), 7);
    }

    #[test]
    fn empty_mmio_queue_reads_zero() {
        let program = assemble("li t0, 0xF0000000\nlw t1, 0(t0)\nebreak", 0).unwrap();
        let mut bus = Bus::new(1024, QueueMmio::new());
        bus.load_words(0, &program.words);
        let mut cpu = Cpu::new(bus);
        cpu.run(100);
        assert_eq!(cpu.reg(Reg::parse("t1").unwrap()), 0);
    }

    #[test]
    fn decode_fault_reported() {
        let mut bus = Bus::new(1024, QueueMmio::new());
        bus.load_words(0, &[0xFFFF_FFFF]);
        let mut cpu = Cpu::new(bus);
        let (_, halt) = cpu.run(10);
        assert!(matches!(halt, Halt::DecodeFault { pc: 0, .. }));
    }

    #[test]
    fn out_of_fuel_on_infinite_loop() {
        let (_, _, halt) = {
            let program = assemble("loop: j loop", 0).unwrap();
            let mut bus = Bus::new(1024, QueueMmio::new());
            bus.load_words(0, &program.words);
            let mut cpu = Cpu::new(bus);
            let (r, h) = cpu.run(100);
            (cpu, r, h)
        };
        assert_eq!(halt, Halt::OutOfFuel);
    }

    #[test]
    fn shift_semantics() {
        let (cpu, _, _) = run_program(
            "
            li t0, -8
            srai t1, t0, 1     # -4
            srli t2, t0, 1     # big positive
            slli t3, t0, 2     # -32
            ebreak
            ",
        );
        assert_eq!(cpu.reg(Reg::parse("t1").unwrap()) as i32, -4);
        assert_eq!(cpu.reg(Reg::parse("t2").unwrap()), 0x7FFF_FFFC);
        assert_eq!(cpu.reg(Reg::parse("t3").unwrap()) as i32, -32);
    }

    #[test]
    fn predecoded_execution_is_bit_identical() {
        let source = "
            li t0, 10
            li t1, 0
        loop:
            add t1, t1, t0
            mul t2, t1, t0
            addi t0, t0, -1
            bnez t0, loop
            ebreak
        ";
        let program = assemble(source, 0).unwrap();
        let run = |predecode: bool| {
            let mut bus = Bus::new(64 * 1024, QueueMmio::new());
            bus.load_words(0, &program.words);
            let mut cpu = Cpu::new(bus);
            if predecode {
                cpu.predecode(0, program.words.len());
            }
            let (records, halt) = cpu.run(1_000_000);
            let regs: Vec<u32> = (0..32).map(|i| cpu.reg(Reg(i))).collect();
            (records, halt, regs, cpu.cycle())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn store_into_code_invalidates_predecode_cache() {
        // Self-modifying program: overwrite the `nop` at `target` with
        // `addi t2, zero, 42` (0x02A00393) before reaching it.
        let build = |addr: u32| {
            format!("li t0, {addr}\nli t1, 0x02A00393\nsw t1, 0(t0)\ntarget:\nnop\nebreak")
        };
        let probe = assemble(&build(0), 0).unwrap();
        let target = probe.symbol("target").unwrap();
        let program = assemble(&build(target), 0).unwrap();
        let run = |predecode: bool| {
            let mut bus = Bus::new(64 * 1024, QueueMmio::new());
            bus.load_words(0, &program.words);
            let mut cpu = Cpu::new(bus);
            if predecode {
                cpu.predecode(0, program.words.len());
            }
            let (records, halt) = cpu.run(1000);
            (records, halt, cpu.reg(Reg::parse("t2").unwrap()))
        };
        let (records, halt, t2) = run(true);
        assert_eq!(halt, Halt::Ebreak);
        assert_eq!(t2, 42, "the patched instruction must execute");
        assert_eq!(run(false), (records, halt, t2));
    }

    #[test]
    fn predecode_keeps_decode_faults() {
        let mut bus = Bus::new(1024, QueueMmio::new());
        bus.load_words(0, &[0x0000_0013, 0xFFFF_FFFF]);
        let mut cpu = Cpu::new(bus);
        cpu.predecode(0, 2);
        let (records, halt) = cpu.run(10);
        assert_eq!(records.len(), 1);
        assert!(matches!(halt, Halt::DecodeFault { pc: 4, .. }));
    }

    #[test]
    fn run_with_streams_the_same_records() {
        let program = assemble("li t0, 3\nmul t1, t0, t0\nebreak", 0).unwrap();
        let mut bus = Bus::new(4096, QueueMmio::new());
        bus.load_words(0, &program.words);
        let mut cpu = Cpu::new(bus);
        let (collected, halt) = cpu.run(100);

        let mut bus = Bus::new(4096, QueueMmio::new());
        bus.load_words(0, &program.words);
        let mut cpu = Cpu::new(bus);
        let mut streamed = Vec::new();
        let halt2 = cpu.run_with(100, |r| streamed.push(r.clone()));
        assert_eq!(streamed, collected);
        assert_eq!(halt2, halt);
    }

    #[test]
    fn jal_and_ret() {
        let (cpu, _, halt) = run_program(
            "
            li a0, 5
            jal ra, double
            jal ra, double
            ebreak
            double:
            add a0, a0, a0
            ret
            ",
        );
        assert_eq!(halt, Halt::Ebreak);
        assert_eq!(cpu.reg(Reg::parse("a0").unwrap()), 20);
    }
}
