//! Control-flow-graph reconstruction over assembled [`Program`]s.
//!
//! The graph is built statically from the decoded instruction words: every
//! decodable word is a node, edges follow fall-through, direct jumps and
//! both branch arms. Indirect jumps (`jalr`) are resolved with one global
//! approximation that is exact for the code the workspace generates: a
//! `jalr x0, ra, 0` (i.e. `ret`) is given an edge to the return point of
//! *every* `jal ra, …` call site in the program. Any other indirect jump is
//! recorded in [`Cfg::unresolved_indirect`] so analyses can refuse to claim
//! soundness instead of silently missing paths.
//!
//! This is the substrate `reveal-lint` runs its taint fixpoint on, and it is
//! also usable on its own for kernel inspection.

use crate::asm::Program;
use crate::isa::{Instruction, Reg};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;

/// The outgoing control flow of a single instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Successors {
    /// Execution halts (`ecall`/`ebreak`).
    Halt,
    /// Straight-line flow to the next instruction.
    Fall(u32),
    /// Unconditional direct jump (includes `jal` with its side effect of
    /// linking; the link register is data, not control).
    Jump(u32),
    /// Conditional branch: both arms.
    Branch {
        /// Target when the condition holds.
        taken: u32,
        /// Fall-through when it does not.
        fallthrough: u32,
    },
    /// Indirect jump through a register (`jalr`); targets resolved
    /// separately (see module docs).
    Indirect(Vec<u32>),
}

impl Successors {
    /// All successor PCs, in a stable order.
    pub fn pcs(&self) -> Vec<u32> {
        match self {
            Successors::Halt => Vec::new(),
            Successors::Fall(pc) | Successors::Jump(pc) => vec![*pc],
            Successors::Branch { taken, fallthrough } => vec![*taken, *fallthrough],
            Successors::Indirect(targets) => targets.clone(),
        }
    }
}

/// Errors from CFG construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CfgError {
    /// A control-flow edge targets a PC outside the program image or not on
    /// a word boundary.
    BadTarget {
        /// The instruction the edge leaves from.
        from: u32,
        /// The offending target.
        to: u32,
    },
    /// A reachable PC holds a word that does not decode as an instruction.
    UndecodableReachable {
        /// Address of the undecodable word.
        pc: u32,
    },
}

impl fmt::Display for CfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CfgError::BadTarget { from, to } => {
                write!(
                    f,
                    "control flow from {from:#010x} targets invalid pc {to:#010x}"
                )
            }
            CfgError::UndecodableReachable { pc } => {
                write!(f, "reachable word at {pc:#010x} does not decode")
            }
        }
    }
}

impl std::error::Error for CfgError {}

/// A maximal straight-line run of instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// PC of the first instruction.
    pub start: u32,
    /// PC one past the last instruction.
    pub end: u32,
    /// Successor blocks, by starting PC.
    pub successors: Vec<u32>,
}

/// The reconstructed control-flow graph of a [`Program`].
#[derive(Debug, Clone)]
pub struct Cfg {
    base: u32,
    instrs: Vec<Option<Instruction>>,
    succs: Vec<Vec<u32>>,
    preds: BTreeMap<u32, Vec<u32>>,
    reachable: Vec<bool>,
    /// PCs of indirect jumps whose target set could not be resolved; any
    /// analysis consuming this CFG is unsound for such programs and should
    /// say so.
    pub unresolved_indirect: Vec<u32>,
}

impl Cfg {
    /// Builds the CFG of `program` as loaded at `base`, with the entry point
    /// at `base` itself.
    ///
    /// # Errors
    ///
    /// Fails when reachable control flow leaves the image or lands on an
    /// undecodable word. Unreachable data words are fine.
    pub fn from_program(program: &Program, base: u32) -> Result<Self, CfgError> {
        Self::from_program_with_targets(program, base, &BTreeMap::new())
    }

    /// Builds the CFG with externally resolved indirect-jump target sets —
    /// typically produced by a value-set analysis over a previous build of
    /// the same graph, then fed back here until no unresolved sites remain.
    ///
    /// `resolved` maps the PC of a `jalr` to its concrete target set. A
    /// resolved `jalr` contributes exactly those edges (and, when it links
    /// `ra`, its return point joins the `ret` approximation). A `jalr` with
    /// no entry — or an empty target set — falls back to the built-in
    /// handling: the `ret` idiom gets the global return-site approximation,
    /// anything else lands in [`Cfg::unresolved_indirect`].
    ///
    /// # Errors
    ///
    /// Same as [`Cfg::from_program`]; resolved targets are validated like
    /// every other edge.
    pub fn from_program_with_targets(
        program: &Program,
        base: u32,
        resolved: &BTreeMap<u32, Vec<u32>>,
    ) -> Result<Self, CfgError> {
        let n = program.words.len();
        let instrs: Vec<Option<Instruction>> = program
            .words
            .iter()
            .map(|&w| Instruction::decode(w).ok())
            .collect();

        // Return-site approximation for `ret`: the PC after every `jal ra`
        // call site — plus every *resolved* indirect call that links `ra`.
        let mut return_sites = Vec::new();
        for (i, instr) in instrs.iter().enumerate() {
            let pc = base + 4 * i as u32;
            match instr {
                Some(Instruction::Jal { rd, .. }) if *rd == Reg(1) => {
                    return_sites.push(pc + 4);
                }
                Some(Instruction::Jalr { rd, .. })
                    if *rd == Reg(1) && resolved.get(&pc).is_some_and(|t| !t.is_empty()) =>
                {
                    return_sites.push(pc + 4);
                }
                _ => {}
            }
        }

        let mut succs = vec![Vec::new(); n];
        let mut unresolved = Vec::new();
        for (i, instr) in instrs.iter().enumerate() {
            let pc = base + 4 * i as u32;
            let Some(instr) = instr else { continue };
            let s = match *instr {
                Instruction::Ecall | Instruction::Ebreak => Successors::Halt,
                Instruction::Jal { offset, .. } => Successors::Jump(pc.wrapping_add(offset as u32)),
                Instruction::Branch { offset, .. } => Successors::Branch {
                    taken: pc.wrapping_add(offset as u32),
                    fallthrough: pc + 4,
                },
                Instruction::Jalr { rd, rs1, offset } => {
                    if let Some(targets) = resolved.get(&pc).filter(|t| !t.is_empty()) {
                        Successors::Indirect(targets.clone())
                    } else if rd == Reg::ZERO && rs1 == Reg(1) && offset == 0 {
                        // `ret`: conservatively, any call site may have
                        // linked here.
                        Successors::Indirect(return_sites.clone())
                    } else {
                        unresolved.push(pc);
                        Successors::Indirect(Vec::new())
                    }
                }
                _ => Successors::Fall(pc + 4),
            };
            succs[i] = s.pcs();
        }

        let mut cfg = Cfg {
            base,
            instrs,
            succs,
            preds: BTreeMap::new(),
            reachable: vec![false; n],
            unresolved_indirect: unresolved,
        };

        // Reachability sweep from the entry; validates edges as it goes.
        let mut queue = VecDeque::new();
        if n > 0 {
            cfg.reachable[0] = true;
            queue.push_back(0usize);
        }
        while let Some(i) = queue.pop_front() {
            let pc = base + 4 * i as u32;
            if cfg.instrs[i].is_none() {
                return Err(CfgError::UndecodableReachable { pc });
            }
            for &t in &cfg.succs[i] {
                let j = cfg
                    .index_of(t)
                    .ok_or(CfgError::BadTarget { from: pc, to: t })?;
                cfg.preds.entry(t).or_default().push(pc);
                if !cfg.reachable[j] {
                    cfg.reachable[j] = true;
                    queue.push_back(j);
                }
            }
        }
        for preds in cfg.preds.values_mut() {
            preds.sort_unstable();
            preds.dedup();
        }
        Ok(cfg)
    }

    /// The load address of the program.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Number of words in the underlying image.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the image is empty.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    fn index_of(&self, pc: u32) -> Option<usize> {
        if pc < self.base || !(pc - self.base).is_multiple_of(4) {
            return None;
        }
        let i = ((pc - self.base) / 4) as usize;
        (i < self.instrs.len()).then_some(i)
    }

    /// The decoded instruction at `pc` (`None` for data words or
    /// out-of-image PCs).
    pub fn instruction_at(&self, pc: u32) -> Option<Instruction> {
        self.instrs.get(self.index_of(pc)?).copied().flatten()
    }

    /// Successor PCs of the instruction at `pc`.
    pub fn successors_of(&self, pc: u32) -> &[u32] {
        self.index_of(pc)
            .map(|i| self.succs[i].as_slice())
            .unwrap_or(&[])
    }

    /// Predecessor PCs of the instruction at `pc` (reachable edges only).
    pub fn predecessors_of(&self, pc: u32) -> &[u32] {
        self.preds.get(&pc).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether `pc` is reachable from the entry.
    pub fn is_reachable(&self, pc: u32) -> bool {
        self.index_of(pc)
            .map(|i| self.reachable[i])
            .unwrap_or(false)
    }

    /// Iterates over `(pc, instruction)` for every reachable instruction.
    pub fn reachable_instructions(&self) -> impl Iterator<Item = (u32, Instruction)> + '_ {
        self.instrs
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.reachable[i])
            .map(move |(i, instr)| (self.base + 4 * i as u32, instr.expect("reachable")))
    }

    /// Partitions the reachable instructions into basic blocks.
    ///
    /// Block boundaries come from the same
    /// [`static_leaders`](crate::block::static_leaders) /
    /// [`block_extent`](crate::block::block_extent) pair the interpreter's
    /// superinstruction compiler uses, with the CFG's resolved
    /// indirect-jump edges fed in as extra leaders — so the static analyzer
    /// and the block cache can never disagree about where a block begins or
    /// ends.
    pub fn basic_blocks(&self) -> Vec<BasicBlock> {
        // Indirect targets (`ret` return sites, resolved `jalr` edges) are
        // invisible to the static scan; they enter as extra leaders.
        let mut extra: Vec<u32> = Vec::new();
        for (pc, instr) in self.reachable_instructions() {
            if matches!(instr, Instruction::Jalr { .. }) {
                extra.extend_from_slice(self.successors_of(pc));
            }
        }
        let leaders = crate::block::static_leaders(&self.instrs, self.base, &extra);
        let mut blocks = Vec::with_capacity(leaders.len());
        for &start in &leaders {
            if !self.is_reachable(start) {
                continue;
            }
            let end = crate::block::block_extent(&self.instrs, self.base, start, &leaders);
            let successors = self.successors_of(end - 4).to_vec();
            blocks.push(BasicBlock {
                start,
                end,
                successors,
            });
        }
        blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn cfg_of(src: &str) -> Cfg {
        let p = assemble(src, 0).unwrap();
        Cfg::from_program(&p, 0).unwrap()
    }

    #[test]
    fn straight_line_fall_through() {
        let cfg = cfg_of("addi t0, t0, 1\naddi t0, t0, 2\nebreak");
        assert_eq!(cfg.successors_of(0), &[4]);
        assert_eq!(cfg.successors_of(4), &[8]);
        assert_eq!(cfg.successors_of(8), &[] as &[u32]);
        assert!(cfg.is_reachable(8));
    }

    #[test]
    fn branch_has_two_arms() {
        let cfg = cfg_of(
            "
            beqz t0, skip
            addi t1, t1, 1
            skip:
            ebreak
            ",
        );
        let mut s = cfg.successors_of(0).to_vec();
        s.sort_unstable();
        assert_eq!(s, vec![4, 8]);
        assert_eq!(cfg.predecessors_of(8), &[0, 4]);
    }

    #[test]
    fn loops_are_reachable_and_cyclic() {
        let cfg = cfg_of(
            "
            li t0, 5
            loop:
            addi t0, t0, -1
            bnez t0, loop
            ebreak
            ",
        );
        assert_eq!(cfg.successors_of(8), &[4, 12]);
        assert!(cfg.predecessors_of(4).contains(&8));
    }

    #[test]
    fn ret_edges_connect_to_all_call_sites() {
        let cfg = cfg_of(
            "
            jal ra, sub
            jal ra, sub
            ebreak
            sub:
            addi t0, t0, 1
            ret
            ",
        );
        let mut ret_succs = cfg.successors_of(16).to_vec();
        ret_succs.sort_unstable();
        // Both return points: after each call.
        assert_eq!(ret_succs, vec![4, 8]);
        assert!(cfg.unresolved_indirect.is_empty());
    }

    #[test]
    fn unknown_indirect_is_flagged() {
        let cfg = cfg_of("jr t0\nebreak");
        assert_eq!(cfg.unresolved_indirect, vec![0]);
        assert_eq!(cfg.successors_of(0), &[] as &[u32]);
    }

    #[test]
    fn resolved_targets_feed_back_into_the_graph() {
        let p = assemble(
            "
            la   t0, helper
            jalr ra, t0, 0
            ebreak
            helper:
            addi t1, t1, 1
            ret
            ",
            0,
        )
        .unwrap();
        // `la` expands to two words: jalr at 8, ebreak at 12, helper at 16.
        let naive = Cfg::from_program(&p, 0).unwrap();
        assert_eq!(naive.unresolved_indirect, vec![8]);
        assert!(!naive.is_reachable(16));
        let mut resolved = BTreeMap::new();
        resolved.insert(8u32, vec![16u32]);
        let cfg = Cfg::from_program_with_targets(&p, 0, &resolved).unwrap();
        assert!(cfg.unresolved_indirect.is_empty());
        assert_eq!(cfg.successors_of(8), &[16]);
        // The resolved call's return point joins the `ret` approximation.
        assert_eq!(cfg.successors_of(20), &[12]);
        assert!(cfg.is_reachable(12), "ebreak reached through the return");
    }

    #[test]
    fn empty_resolved_set_still_counts_as_unresolved() {
        let p = assemble("jr t0\nebreak", 0).unwrap();
        let mut resolved = BTreeMap::new();
        resolved.insert(0u32, Vec::new());
        let cfg = Cfg::from_program_with_targets(&p, 0, &resolved).unwrap();
        assert_eq!(cfg.unresolved_indirect, vec![0]);
    }

    #[test]
    fn unreachable_data_words_are_tolerated() {
        let cfg = cfg_of(
            "
            j over
            table: .word 0xFFFFFFFF
            over:
            ebreak
            ",
        );
        assert!(!cfg.is_reachable(4));
        assert!(cfg.is_reachable(8));
    }

    #[test]
    fn reachable_garbage_is_an_error() {
        let p = assemble("nop\n.word 0xFFFFFFFF", 0).unwrap();
        assert_eq!(
            Cfg::from_program(&p, 0).err(),
            Some(CfgError::UndecodableReachable { pc: 4 })
        );
    }

    #[test]
    fn out_of_image_target_is_an_error() {
        let p = assemble("j 64\nebreak", 0).unwrap();
        assert!(matches!(
            Cfg::from_program(&p, 0),
            Err(CfgError::BadTarget { from: 0, to: 64 })
        ));
    }

    #[test]
    fn basic_blocks_tile_the_kernel() {
        let kernel = crate::kernel::SamplerKernel::new(8, &[132120577]).unwrap();
        let cfg = Cfg::from_program(kernel.program(), 0).unwrap();
        let blocks = cfg.basic_blocks();
        assert!(blocks.len() > 5, "the sign ladder has several blocks");
        // Block starts are unique and sorted; each block is non-empty.
        for b in &blocks {
            assert!(b.start < b.end);
        }
        for w in blocks.windows(2) {
            assert!(w[0].start < w[1].start);
        }
    }

    #[test]
    fn basic_blocks_agree_with_the_superinstruction_compiler() {
        // The analyzer and the interpreter derive block extents from the
        // same leader set; a block the compiler would form at any CFG block
        // start must span exactly the CFG block. (`compile_block` walks the
        // image with its own loop, so this is a real cross-check, not a
        // tautology.)
        let kernel = crate::kernel::SamplerKernel::new(8, &[132120577]).unwrap();
        let program = kernel.program();
        let cfg = Cfg::from_program(program, 0).unwrap();
        let mut extra: Vec<u32> = Vec::new();
        for (pc, instr) in cfg.reachable_instructions() {
            if matches!(instr, Instruction::Jalr { .. }) {
                extra.extend_from_slice(cfg.successors_of(pc));
            }
        }
        let instrs: Vec<Option<Instruction>> = program
            .words
            .iter()
            .map(|&w| Instruction::decode(w).ok())
            .collect();
        let leaders = crate::block::static_leaders(&instrs, 0, &extra);
        for block in cfg.basic_blocks() {
            let compiled = crate::block::compile_block(&program.words, 0, block.start, &leaders)
                .expect("reachable block entry must compile");
            assert_eq!(
                (compiled.start, compiled.end),
                (block.start, block.end),
                "extent mismatch at {:#010x}",
                block.start
            );
        }
    }
}
