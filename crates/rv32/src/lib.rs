#![forbid(unsafe_code)]
// Indexed loops are the clearest notation for the dense numeric kernels
// in this workspace (convolutions, scatter matrices, lattice bases).
#![allow(clippy::needless_range_loop)]

//! # reveal-rv32
//!
//! A software model of the RevEAL paper's measurement target: a PicoRV32
//! (RV32IM) soft core running SEAL's Gaussian sampler, observed through a
//! power side channel.
//!
//! The crate provides four layers:
//!
//! - [`isa`]: typed RV32IM instructions with binary encode/decode;
//! - [`asm`]: a two-pass assembler (labels, `.word`, the usual
//!   pseudo-instructions) for writing kernels;
//! - [`cpu`]: the executor with PicoRV32-style multi-cycle timing, flat RAM
//!   and queue-backed MMIO ports, producing per-instruction
//!   [`cpu::ExecRecord`]s;
//! - [`power`]: an instruction-level power model (base level per class +
//!   Hamming-weight/-distance data terms + Gaussian noise) that renders
//!   records into traces, replacing the paper's SAKURA-G/PicoScope bench;
//! - [`kernel`]: the hand-compiled `set_poly_coeffs_normal` inner loop and a
//!   harness that streams SEAL noise samples into it and captures traces.
//!
//! ## Example
//!
//! ```
//! use reveal_rv32::kernel::SamplerKernel;
//! use reveal_rv32::power::PowerModelConfig;
//! use rand::SeedableRng;
//!
//! let kernel = SamplerKernel::new(8, &[132120577])?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let run = kernel.run(
//!     &[1, -2, 0, 3, -1, 0, 2, -3],
//!     &[5; 8],
//!     &PowerModelConfig::default(),
//!     &mut rng,
//! )?;
//! assert_eq!(run.coefficient_windows.len(), 8);
//! # Ok::<(), reveal_rv32::kernel::KernelError>(())
//! ```

pub mod asm;
pub mod block;
pub mod cfg;
pub mod cpu;
pub mod disasm;
pub mod isa;
pub mod kernel;
pub mod power;

pub use asm::{assemble, AssembleError, Program};
pub use block::{
    block_extent, static_leaders, BlockCache, BlockCacheStats, BlockExit, CompiledBlock,
};
pub use cfg::{BasicBlock, Cfg, CfgError, Successors};
pub use cpu::{Bus, Cpu, ExecRecord, Halt, Mmio, QueueMmio};
pub use disasm::{disassemble, format_instruction, listing};
pub use isa::{AluOp, BranchCond, Instruction, MemWidth, MulOp, Reg, Uses};
pub use kernel::{KernelError, KernelRun, KernelVariant, LoadBound, SamplerKernel, SecretSource};
pub use power::{
    render_power, NoiseSampler, PowerCapture, PowerModelConfig, PowerRenderer, SampleSpan,
};
