//! RV32IM instruction set: typed instructions, binary encoding and decoding.
//!
//! The executor simulates a PicoRV32-class core in its RV32IM configuration
//! (base integer ISA plus the standard M extension for multiply/divide),
//! which is exactly the setup of the paper's FPGA target.

use std::fmt;

/// A register index `x0..x31` (x0 is hard-wired to zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u8);

impl Reg {
    /// The always-zero register.
    pub const ZERO: Reg = Reg(0);

    /// Creates a register, panicking for indices above 31.
    ///
    /// # Panics
    ///
    /// Panics if `index > 31`.
    pub fn new(index: u8) -> Self {
        assert!(index < 32, "register index {index} out of range");
        Reg(index)
    }

    /// The register index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Parses an ABI or numeric register name (`x5`, `t0`, `a1`, `sp`, …).
    pub fn parse(name: &str) -> Option<Reg> {
        let idx = match name {
            "zero" => 0,
            "ra" => 1,
            "sp" => 2,
            "gp" => 3,
            "tp" => 4,
            "t0" => 5,
            "t1" => 6,
            "t2" => 7,
            "s0" | "fp" => 8,
            "s1" => 9,
            "a0" => 10,
            "a1" => 11,
            "a2" => 12,
            "a3" => 13,
            "a4" => 14,
            "a5" => 15,
            "a6" => 16,
            "a7" => 17,
            "s2" => 18,
            "s3" => 19,
            "s4" => 20,
            "s5" => 21,
            "s6" => 22,
            "s7" => 23,
            "s8" => 24,
            "s9" => 25,
            "s10" => 26,
            "s11" => 27,
            "t3" => 28,
            "t4" => 29,
            "t5" => 30,
            "t6" => 31,
            _ => {
                let rest = name.strip_prefix('x')?;
                let idx: u8 = rest.parse().ok()?;
                if idx < 32 {
                    idx
                } else {
                    return None;
                }
            }
        };
        Some(Reg(idx))
    }

    /// The canonical ABI name.
    pub fn abi_name(self) -> &'static str {
        const NAMES: [&str; 32] = [
            "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3",
            "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
            "t3", "t4", "t5", "t6",
        ];
        NAMES[self.index()]
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.abi_name())
    }
}

/// ALU operations of the OP/OP-IMM formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Addition (SUB in register form via the `sub` flag).
    Add,
    /// Subtraction (register form only).
    Sub,
    /// Set-less-than (signed).
    Slt,
    /// Set-less-than (unsigned).
    Sltu,
    /// Bitwise XOR.
    Xor,
    /// Bitwise OR.
    Or,
    /// Bitwise AND.
    And,
    /// Logical shift left.
    Sll,
    /// Logical shift right.
    Srl,
    /// Arithmetic shift right.
    Sra,
}

/// M-extension operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MulOp {
    /// Low 32 bits of the product.
    Mul,
    /// High 32 bits, signed × signed.
    Mulh,
    /// High 32 bits, signed × unsigned.
    Mulhsu,
    /// High 32 bits, unsigned × unsigned.
    Mulhu,
    /// Signed division.
    Div,
    /// Unsigned division.
    Divu,
    /// Signed remainder.
    Rem,
    /// Unsigned remainder.
    Remu,
}

/// Branch comparison conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less-than, signed.
    Lt,
    /// Greater-or-equal, signed.
    Ge,
    /// Less-than, unsigned.
    Ltu,
    /// Greater-or-equal, unsigned.
    Geu,
}

/// Memory access width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemWidth {
    /// Byte.
    Byte,
    /// Half-word (16 bits).
    Half,
    /// Word (32 bits).
    Word,
}

/// The source registers of an instruction (at most two in RV32IM), as
/// returned by [`Instruction::uses`]. Iterable and cheap to copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Uses {
    regs: [Option<Reg>; 2],
}

impl Uses {
    fn none() -> Self {
        Uses { regs: [None, None] }
    }

    fn one(r: Reg) -> Self {
        Uses {
            regs: [Some(r), None],
        }
    }

    fn two(a: Reg, b: Reg) -> Self {
        Uses {
            regs: [Some(a), Some(b)],
        }
    }

    /// Iterates over the used registers.
    pub fn iter(self) -> impl Iterator<Item = Reg> {
        self.regs.into_iter().flatten()
    }

    /// Whether `r` is among the used registers.
    pub fn contains(self, r: Reg) -> bool {
        self.regs.contains(&Some(r))
    }
}

impl IntoIterator for Uses {
    type Item = Reg;
    type IntoIter = std::iter::Flatten<std::array::IntoIter<Option<Reg>, 2>>;

    fn into_iter(self) -> Self::IntoIter {
        self.regs.into_iter().flatten()
    }
}

/// A decoded RV32IM instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instruction {
    /// `lui rd, imm` — load upper immediate.
    Lui { rd: Reg, imm: i32 },
    /// `auipc rd, imm` — add upper immediate to PC.
    Auipc { rd: Reg, imm: i32 },
    /// `jal rd, offset` — jump and link.
    Jal { rd: Reg, offset: i32 },
    /// `jalr rd, rs1, offset` — indirect jump and link.
    Jalr { rd: Reg, rs1: Reg, offset: i32 },
    /// Conditional branch.
    Branch {
        cond: BranchCond,
        rs1: Reg,
        rs2: Reg,
        offset: i32,
    },
    /// Load (`signed` selects sign extension for sub-word widths).
    Load {
        rd: Reg,
        rs1: Reg,
        offset: i32,
        width: MemWidth,
        signed: bool,
    },
    /// Store.
    Store {
        rs1: Reg,
        rs2: Reg,
        offset: i32,
        width: MemWidth,
    },
    /// Register–immediate ALU operation.
    AluImm {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },
    /// Register–register ALU operation.
    AluReg {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    /// M-extension multiply/divide.
    MulDiv {
        op: MulOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    /// `ecall` — environment call (halts the simulator).
    Ecall,
    /// `ebreak` — breakpoint (halts the simulator).
    Ebreak,
}

/// Errors from instruction decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeInstructionError {
    /// The raw word that failed to decode.
    pub word: u32,
}

impl fmt::Display for DecodeInstructionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot decode instruction word {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeInstructionError {}

impl Instruction {
    /// Encodes the instruction into its 32-bit machine form.
    pub fn encode(self) -> u32 {
        match self {
            Instruction::Lui { rd, imm } => (imm as u32) & 0xFFFF_F000 | rd_bits(rd) | 0b0110111,
            Instruction::Auipc { rd, imm } => (imm as u32) & 0xFFFF_F000 | rd_bits(rd) | 0b0010111,
            Instruction::Jal { rd, offset } => encode_j(offset) | rd_bits(rd) | 0b1101111,
            Instruction::Jalr { rd, rs1, offset } => {
                encode_i(offset) | rs1_bits(rs1) | rd_bits(rd) | 0b1100111
            }
            Instruction::Branch {
                cond,
                rs1,
                rs2,
                offset,
            } => {
                let funct3 = match cond {
                    BranchCond::Eq => 0b000,
                    BranchCond::Ne => 0b001,
                    BranchCond::Lt => 0b100,
                    BranchCond::Ge => 0b101,
                    BranchCond::Ltu => 0b110,
                    BranchCond::Geu => 0b111,
                };
                encode_b(offset) | rs2_bits(rs2) | rs1_bits(rs1) | funct3 << 12 | 0b1100011
            }
            Instruction::Load {
                rd,
                rs1,
                offset,
                width,
                signed,
            } => {
                let funct3 = match (width, signed) {
                    (MemWidth::Byte, true) => 0b000,
                    (MemWidth::Half, true) => 0b001,
                    (MemWidth::Word, _) => 0b010,
                    (MemWidth::Byte, false) => 0b100,
                    (MemWidth::Half, false) => 0b101,
                };
                encode_i(offset) | rs1_bits(rs1) | funct3 << 12 | rd_bits(rd) | 0b0000011
            }
            Instruction::Store {
                rs1,
                rs2,
                offset,
                width,
            } => {
                let funct3 = match width {
                    MemWidth::Byte => 0b000,
                    MemWidth::Half => 0b001,
                    MemWidth::Word => 0b010,
                };
                encode_s(offset) | rs2_bits(rs2) | rs1_bits(rs1) | funct3 << 12 | 0b0100011
            }
            Instruction::AluImm { op, rd, rs1, imm } => {
                let (funct3, funct7) = match op {
                    AluOp::Add => (0b000, 0),
                    AluOp::Slt => (0b010, 0),
                    AluOp::Sltu => (0b011, 0),
                    AluOp::Xor => (0b100, 0),
                    AluOp::Or => (0b110, 0),
                    AluOp::And => (0b111, 0),
                    AluOp::Sll => (0b001, 0),
                    AluOp::Srl => (0b101, 0),
                    AluOp::Sra => (0b101, 0b0100000),
                    AluOp::Sub => panic!("subi does not exist; use addi with negated immediate"),
                };
                let imm_field = if matches!(op, AluOp::Sll | AluOp::Srl | AluOp::Sra) {
                    ((imm as u32) & 0x1F) << 20 | (funct7 as u32) << 25
                } else {
                    encode_i(imm)
                };
                imm_field | rs1_bits(rs1) | funct3 << 12 | rd_bits(rd) | 0b0010011
            }
            Instruction::AluReg { op, rd, rs1, rs2 } => {
                let (funct3, funct7) = match op {
                    AluOp::Add => (0b000, 0b0000000),
                    AluOp::Sub => (0b000, 0b0100000),
                    AluOp::Sll => (0b001, 0b0000000),
                    AluOp::Slt => (0b010, 0b0000000),
                    AluOp::Sltu => (0b011, 0b0000000),
                    AluOp::Xor => (0b100, 0b0000000),
                    AluOp::Srl => (0b101, 0b0000000),
                    AluOp::Sra => (0b101, 0b0100000),
                    AluOp::Or => (0b110, 0b0000000),
                    AluOp::And => (0b111, 0b0000000),
                };
                (funct7 as u32) << 25
                    | rs2_bits(rs2)
                    | rs1_bits(rs1)
                    | funct3 << 12
                    | rd_bits(rd)
                    | 0b0110011
            }
            Instruction::MulDiv { op, rd, rs1, rs2 } => {
                let funct3 = match op {
                    MulOp::Mul => 0b000,
                    MulOp::Mulh => 0b001,
                    MulOp::Mulhsu => 0b010,
                    MulOp::Mulhu => 0b011,
                    MulOp::Div => 0b100,
                    MulOp::Divu => 0b101,
                    MulOp::Rem => 0b110,
                    MulOp::Remu => 0b111,
                };
                1u32 << 25 | rs2_bits(rs2) | rs1_bits(rs1) | funct3 << 12 | rd_bits(rd) | 0b0110011
            }
            Instruction::Ecall => 0x0000_0073,
            Instruction::Ebreak => 0x0010_0073,
        }
    }

    /// The register this instruction defines (writes), if any.
    ///
    /// Writes to `x0` are architectural no-ops and reported as `None`, which
    /// is what dataflow clients (e.g. the `reveal-lint` taint engine) want.
    pub fn def(self) -> Option<Reg> {
        let rd = match self {
            Instruction::Lui { rd, .. }
            | Instruction::Auipc { rd, .. }
            | Instruction::Jal { rd, .. }
            | Instruction::Jalr { rd, .. }
            | Instruction::Load { rd, .. }
            | Instruction::AluImm { rd, .. }
            | Instruction::AluReg { rd, .. }
            | Instruction::MulDiv { rd, .. } => rd,
            Instruction::Branch { .. }
            | Instruction::Store { .. }
            | Instruction::Ecall
            | Instruction::Ebreak => return None,
        };
        if rd == Reg::ZERO {
            None
        } else {
            Some(rd)
        }
    }

    /// The registers this instruction uses (reads), `x0` included when
    /// architecturally read. At most two sources exist in RV32IM.
    pub fn uses(self) -> Uses {
        match self {
            Instruction::Lui { .. }
            | Instruction::Auipc { .. }
            | Instruction::Jal { .. }
            | Instruction::Ecall
            | Instruction::Ebreak => Uses::none(),
            Instruction::Jalr { rs1, .. }
            | Instruction::Load { rs1, .. }
            | Instruction::AluImm { rs1, .. } => Uses::one(rs1),
            Instruction::Branch { rs1, rs2, .. }
            | Instruction::Store { rs1, rs2, .. }
            | Instruction::AluReg { rs1, rs2, .. }
            | Instruction::MulDiv { rs1, rs2, .. } => Uses::two(rs1, rs2),
        }
    }

    /// Decodes a 32-bit machine word.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeInstructionError`] for unknown encodings.
    pub fn decode(word: u32) -> Result<Self, DecodeInstructionError> {
        let opcode = word & 0x7F;
        let rd = Reg::new(((word >> 7) & 0x1F) as u8);
        let rs1 = Reg::new(((word >> 15) & 0x1F) as u8);
        let rs2 = Reg::new(((word >> 20) & 0x1F) as u8);
        let funct3 = (word >> 12) & 0x7;
        let funct7 = (word >> 25) & 0x7F;
        let err = || DecodeInstructionError { word };
        Ok(match opcode {
            0b0110111 => Instruction::Lui {
                rd,
                imm: (word & 0xFFFF_F000) as i32,
            },
            0b0010111 => Instruction::Auipc {
                rd,
                imm: (word & 0xFFFF_F000) as i32,
            },
            0b1101111 => Instruction::Jal {
                rd,
                offset: decode_j(word),
            },
            0b1100111 => {
                if funct3 != 0 {
                    return Err(err());
                }
                Instruction::Jalr {
                    rd,
                    rs1,
                    offset: decode_i(word),
                }
            }
            0b1100011 => {
                let cond = match funct3 {
                    0b000 => BranchCond::Eq,
                    0b001 => BranchCond::Ne,
                    0b100 => BranchCond::Lt,
                    0b101 => BranchCond::Ge,
                    0b110 => BranchCond::Ltu,
                    0b111 => BranchCond::Geu,
                    _ => return Err(err()),
                };
                Instruction::Branch {
                    cond,
                    rs1,
                    rs2,
                    offset: decode_b(word),
                }
            }
            0b0000011 => {
                let (width, signed) = match funct3 {
                    0b000 => (MemWidth::Byte, true),
                    0b001 => (MemWidth::Half, true),
                    0b010 => (MemWidth::Word, true),
                    0b100 => (MemWidth::Byte, false),
                    0b101 => (MemWidth::Half, false),
                    _ => return Err(err()),
                };
                Instruction::Load {
                    rd,
                    rs1,
                    offset: decode_i(word),
                    width,
                    signed,
                }
            }
            0b0100011 => {
                let width = match funct3 {
                    0b000 => MemWidth::Byte,
                    0b001 => MemWidth::Half,
                    0b010 => MemWidth::Word,
                    _ => return Err(err()),
                };
                Instruction::Store {
                    rs1,
                    rs2,
                    offset: decode_s(word),
                    width,
                }
            }
            0b0010011 => {
                let op = match funct3 {
                    0b000 => AluOp::Add,
                    0b010 => AluOp::Slt,
                    0b011 => AluOp::Sltu,
                    0b100 => AluOp::Xor,
                    0b110 => AluOp::Or,
                    0b111 => AluOp::And,
                    0b001 => AluOp::Sll,
                    0b101 => {
                        if funct7 == 0b0100000 {
                            AluOp::Sra
                        } else if funct7 == 0 {
                            AluOp::Srl
                        } else {
                            return Err(err());
                        }
                    }
                    _ => return Err(err()),
                };
                let imm = if matches!(op, AluOp::Sll | AluOp::Srl | AluOp::Sra) {
                    ((word >> 20) & 0x1F) as i32
                } else {
                    decode_i(word)
                };
                Instruction::AluImm { op, rd, rs1, imm }
            }
            0b0110011 => {
                if funct7 == 1 {
                    let op = match funct3 {
                        0b000 => MulOp::Mul,
                        0b001 => MulOp::Mulh,
                        0b010 => MulOp::Mulhsu,
                        0b011 => MulOp::Mulhu,
                        0b100 => MulOp::Div,
                        0b101 => MulOp::Divu,
                        0b110 => MulOp::Rem,
                        0b111 => MulOp::Remu,
                        _ => return Err(err()),
                    };
                    Instruction::MulDiv { op, rd, rs1, rs2 }
                } else {
                    let op = match (funct3, funct7) {
                        (0b000, 0b0000000) => AluOp::Add,
                        (0b000, 0b0100000) => AluOp::Sub,
                        (0b001, 0b0000000) => AluOp::Sll,
                        (0b010, 0b0000000) => AluOp::Slt,
                        (0b011, 0b0000000) => AluOp::Sltu,
                        (0b100, 0b0000000) => AluOp::Xor,
                        (0b101, 0b0000000) => AluOp::Srl,
                        (0b101, 0b0100000) => AluOp::Sra,
                        (0b110, 0b0000000) => AluOp::Or,
                        (0b111, 0b0000000) => AluOp::And,
                        _ => return Err(err()),
                    };
                    Instruction::AluReg { op, rd, rs1, rs2 }
                }
            }
            0b1110011 => match word {
                0x0000_0073 => Instruction::Ecall,
                0x0010_0073 => Instruction::Ebreak,
                _ => return Err(err()),
            },
            _ => return Err(err()),
        })
    }
}

#[inline]
fn rd_bits(r: Reg) -> u32 {
    (r.0 as u32) << 7
}

#[inline]
fn rs1_bits(r: Reg) -> u32 {
    (r.0 as u32) << 15
}

#[inline]
fn rs2_bits(r: Reg) -> u32 {
    (r.0 as u32) << 20
}

fn encode_i(imm: i32) -> u32 {
    debug_assert!(
        (-2048..=2047).contains(&imm),
        "I-immediate {imm} out of range"
    );
    ((imm as u32) & 0xFFF) << 20
}

fn decode_i(word: u32) -> i32 {
    (word as i32) >> 20
}

fn encode_s(imm: i32) -> u32 {
    debug_assert!(
        (-2048..=2047).contains(&imm),
        "S-immediate {imm} out of range"
    );
    let v = imm as u32;
    ((v >> 5) & 0x7F) << 25 | (v & 0x1F) << 7
}

fn decode_s(word: u32) -> i32 {
    let hi = ((word as i32) >> 25) << 5;
    let lo = ((word >> 7) & 0x1F) as i32;
    hi | lo
}

fn encode_b(imm: i32) -> u32 {
    debug_assert!(
        imm % 2 == 0 && (-4096..=4094).contains(&imm),
        "B-immediate {imm} invalid"
    );
    let v = imm as u32;
    ((v >> 12) & 1) << 31 | ((v >> 5) & 0x3F) << 25 | ((v >> 1) & 0xF) << 8 | ((v >> 11) & 1) << 7
}

fn decode_b(word: u32) -> i32 {
    let imm12 = ((word >> 31) & 1) as i32;
    let imm10_5 = ((word >> 25) & 0x3F) as i32;
    let imm4_1 = ((word >> 8) & 0xF) as i32;
    let imm11 = ((word >> 7) & 1) as i32;
    let v = imm12 << 12 | imm11 << 11 | imm10_5 << 5 | imm4_1 << 1;
    (v << 19) >> 19
}

fn encode_j(imm: i32) -> u32 {
    debug_assert!(
        imm % 2 == 0 && (-(1 << 20)..(1 << 20)).contains(&imm),
        "J-immediate {imm} invalid"
    );
    let v = imm as u32;
    ((v >> 20) & 1) << 31
        | ((v >> 1) & 0x3FF) << 21
        | ((v >> 11) & 1) << 20
        | ((v >> 12) & 0xFF) << 12
}

fn decode_j(word: u32) -> i32 {
    let imm20 = ((word >> 31) & 1) as i32;
    let imm10_1 = ((word >> 21) & 0x3FF) as i32;
    let imm11 = ((word >> 20) & 1) as i32;
    let imm19_12 = ((word >> 12) & 0xFF) as i32;
    let v = imm20 << 20 | imm19_12 << 12 | imm11 << 11 | imm10_1 << 1;
    (v << 11) >> 11
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn register_parsing() {
        assert_eq!(Reg::parse("zero"), Some(Reg(0)));
        assert_eq!(Reg::parse("x31"), Some(Reg(31)));
        assert_eq!(Reg::parse("a0"), Some(Reg(10)));
        assert_eq!(Reg::parse("t6"), Some(Reg(31)));
        assert_eq!(Reg::parse("fp"), Some(Reg(8)));
        assert_eq!(Reg::parse("x32"), None);
        assert_eq!(Reg::parse("q1"), None);
    }

    #[test]
    fn known_encodings() {
        // Cross-checked against the RISC-V spec examples.
        // addi x1, x0, 5  =>  0x00500093
        let addi = Instruction::AluImm {
            op: AluOp::Add,
            rd: Reg(1),
            rs1: Reg(0),
            imm: 5,
        };
        assert_eq!(addi.encode(), 0x0050_0093);
        // add x3, x1, x2  =>  0x002081B3
        let add = Instruction::AluReg {
            op: AluOp::Add,
            rd: Reg(3),
            rs1: Reg(1),
            rs2: Reg(2),
        };
        assert_eq!(add.encode(), 0x0020_81B3);
        // mul x5, x6, x7 => funct7=1: 0x027302B3
        let mul = Instruction::MulDiv {
            op: MulOp::Mul,
            rd: Reg(5),
            rs1: Reg(6),
            rs2: Reg(7),
        };
        assert_eq!(mul.encode(), 0x0273_02B3);
        // lw x4, 8(x2) => 0x00812203
        let lw = Instruction::Load {
            rd: Reg(4),
            rs1: Reg(2),
            offset: 8,
            width: MemWidth::Word,
            signed: true,
        };
        assert_eq!(lw.encode(), 0x0081_2203);
        // sw x4, 12(x2) => 0x00412623
        let sw = Instruction::Store {
            rs1: Reg(2),
            rs2: Reg(4),
            offset: 12,
            width: MemWidth::Word,
        };
        assert_eq!(sw.encode(), 0x0041_2623);
        assert_eq!(Instruction::Ecall.encode(), 0x0000_0073);
        assert_eq!(Instruction::Ebreak.encode(), 0x0010_0073);
    }

    #[test]
    fn branch_offset_roundtrip() {
        for offset in [-4096, -2048, -2, 0, 2, 100, 4094] {
            let b = Instruction::Branch {
                cond: BranchCond::Lt,
                rs1: Reg(5),
                rs2: Reg(6),
                offset,
            };
            assert_eq!(Instruction::decode(b.encode()), Ok(b), "offset {offset}");
        }
    }

    #[test]
    fn jal_offset_roundtrip() {
        for offset in [-(1 << 20), -2, 0, 2, 4096, (1 << 20) - 2] {
            let j = Instruction::Jal { rd: Reg(1), offset };
            assert_eq!(Instruction::decode(j.encode()), Ok(j), "offset {offset}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(Instruction::decode(0xFFFF_FFFF).is_err());
        assert!(Instruction::decode(0).is_err());
        assert!(Instruction::decode(0x0000_007F).is_err());
    }

    fn arb_reg() -> impl Strategy<Value = Reg> {
        (0u8..32).prop_map(Reg)
    }

    proptest! {
        #[test]
        fn prop_alu_imm_roundtrip(rd in arb_reg(), rs1 in arb_reg(), imm in -2048i32..2048) {
            for op in [AluOp::Add, AluOp::Slt, AluOp::Sltu, AluOp::Xor, AluOp::Or, AluOp::And] {
                let i = Instruction::AluImm { op, rd, rs1, imm };
                prop_assert_eq!(Instruction::decode(i.encode()), Ok(i));
            }
        }

        #[test]
        fn prop_shift_imm_roundtrip(rd in arb_reg(), rs1 in arb_reg(), sh in 0i32..32) {
            for op in [AluOp::Sll, AluOp::Srl, AluOp::Sra] {
                let i = Instruction::AluImm { op, rd, rs1, imm: sh };
                prop_assert_eq!(Instruction::decode(i.encode()), Ok(i));
            }
        }

        #[test]
        fn prop_alu_reg_roundtrip(rd in arb_reg(), rs1 in arb_reg(), rs2 in arb_reg()) {
            for op in [AluOp::Add, AluOp::Sub, AluOp::Sll, AluOp::Slt, AluOp::Sltu,
                       AluOp::Xor, AluOp::Srl, AluOp::Sra, AluOp::Or, AluOp::And] {
                let i = Instruction::AluReg { op, rd, rs1, rs2 };
                prop_assert_eq!(Instruction::decode(i.encode()), Ok(i));
            }
        }

        #[test]
        fn prop_muldiv_roundtrip(rd in arb_reg(), rs1 in arb_reg(), rs2 in arb_reg()) {
            for op in [MulOp::Mul, MulOp::Mulh, MulOp::Mulhsu, MulOp::Mulhu,
                       MulOp::Div, MulOp::Divu, MulOp::Rem, MulOp::Remu] {
                let i = Instruction::MulDiv { op, rd, rs1, rs2 };
                prop_assert_eq!(Instruction::decode(i.encode()), Ok(i));
            }
        }

        #[test]
        fn prop_load_store_roundtrip(rd in arb_reg(), rs1 in arb_reg(), offset in -2048i32..2048) {
            let l = Instruction::Load { rd, rs1, offset, width: MemWidth::Word, signed: true };
            prop_assert_eq!(Instruction::decode(l.encode()), Ok(l));
            let s = Instruction::Store { rs1, rs2: rd, offset, width: MemWidth::Word };
            prop_assert_eq!(Instruction::decode(s.encode()), Ok(s));
        }

        #[test]
        fn prop_lui_roundtrip(rd in arb_reg(), imm in any::<i32>()) {
            let masked = imm & !0xFFFi32;
            let i = Instruction::Lui { rd, imm: masked };
            prop_assert_eq!(Instruction::decode(i.encode()), Ok(i));
        }
    }
}
