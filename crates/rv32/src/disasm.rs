//! A disassembler for the RV32IM subset — the inverse of [`crate::asm`],
//! used for kernel inspection, debugging, and round-trip testing of the
//! encoder.

use crate::isa::{AluOp, BranchCond, Instruction, MemWidth, MulOp, Reg};

/// Formats one instruction in assembler-compatible syntax (PC-relative
/// targets are rendered as `.{+offset}` comments since labels are gone).
pub fn format_instruction(instr: &Instruction) -> String {
    match *instr {
        Instruction::Lui { rd, imm } => format!("lui {rd}, {:#x}", imm as u32),
        Instruction::Auipc { rd, imm } => format!("auipc {rd}, {:#x}", imm as u32),
        Instruction::Jal { rd, offset } => {
            if rd == Reg::ZERO {
                format!("j {offset}")
            } else {
                format!("jal {rd}, {offset}")
            }
        }
        Instruction::Jalr { rd, rs1, offset } => {
            if rd == Reg::ZERO && offset == 0 {
                if rs1 == Reg::new(1) {
                    "ret".to_string()
                } else {
                    format!("jr {rs1}")
                }
            } else {
                format!("jalr {rd}, {rs1}, {offset}")
            }
        }
        Instruction::Branch {
            cond,
            rs1,
            rs2,
            offset,
        } => {
            let (mn, swap) = match cond {
                BranchCond::Eq => ("beq", false),
                BranchCond::Ne => ("bne", false),
                BranchCond::Lt => ("blt", false),
                BranchCond::Ge => ("bge", false),
                BranchCond::Ltu => ("bltu", false),
                BranchCond::Geu => ("bgeu", false),
            };
            let _ = swap;
            // Pseudo forms for comparisons against zero.
            if rs2 == Reg::ZERO {
                let z = match cond {
                    BranchCond::Eq => Some("beqz"),
                    BranchCond::Ne => Some("bnez"),
                    BranchCond::Lt => Some("bltz"),
                    BranchCond::Ge => Some("bgez"),
                    _ => None,
                };
                if let Some(z) = z {
                    return format!("{z} {rs1}, {offset}");
                }
            }
            if rs1 == Reg::ZERO {
                let z = match cond {
                    BranchCond::Lt => Some("bgtz"),
                    BranchCond::Ge => Some("blez"),
                    _ => None,
                };
                if let Some(z) = z {
                    return format!("{z} {rs2}, {offset}");
                }
            }
            format!("{mn} {rs1}, {rs2}, {offset}")
        }
        Instruction::Load {
            rd,
            rs1,
            offset,
            width,
            signed,
        } => {
            let mn = match (width, signed) {
                (MemWidth::Byte, true) => "lb",
                (MemWidth::Half, true) => "lh",
                (MemWidth::Word, _) => "lw",
                (MemWidth::Byte, false) => "lbu",
                (MemWidth::Half, false) => "lhu",
            };
            format!("{mn} {rd}, {offset}({rs1})")
        }
        Instruction::Store {
            rs1,
            rs2,
            offset,
            width,
        } => {
            let mn = match width {
                MemWidth::Byte => "sb",
                MemWidth::Half => "sh",
                MemWidth::Word => "sw",
            };
            format!("{mn} {rs2}, {offset}({rs1})")
        }
        Instruction::AluImm { op, rd, rs1, imm } => {
            // Canonical pseudo-instructions first (nop before li/mv).
            if op == AluOp::Add && rd == Reg::ZERO && rs1 == Reg::ZERO && imm == 0 {
                return "nop".to_string();
            }
            if op == AluOp::Add && rs1 == Reg::ZERO {
                return format!("li {rd}, {imm}");
            }
            if op == AluOp::Add && imm == 0 {
                return format!("mv {rd}, {rs1}");
            }
            if op == AluOp::Xor && imm == -1 {
                return format!("not {rd}, {rs1}");
            }
            let mn = match op {
                AluOp::Add => "addi",
                AluOp::Slt => "slti",
                AluOp::Sltu => "sltiu",
                AluOp::Xor => "xori",
                AluOp::Or => "ori",
                AluOp::And => "andi",
                AluOp::Sll => "slli",
                AluOp::Srl => "srli",
                AluOp::Sra => "srai",
                AluOp::Sub => unreachable!("no subi in RV32"),
            };
            format!("{mn} {rd}, {rs1}, {imm}")
        }
        Instruction::AluReg { op, rd, rs1, rs2 } => {
            if op == AluOp::Sub && rs1 == Reg::ZERO {
                return format!("neg {rd}, {rs2}");
            }
            let mn = match op {
                AluOp::Add => "add",
                AluOp::Sub => "sub",
                AluOp::Sll => "sll",
                AluOp::Slt => "slt",
                AluOp::Sltu => "sltu",
                AluOp::Xor => "xor",
                AluOp::Srl => "srl",
                AluOp::Sra => "sra",
                AluOp::Or => "or",
                AluOp::And => "and",
            };
            format!("{mn} {rd}, {rs1}, {rs2}")
        }
        Instruction::MulDiv { op, rd, rs1, rs2 } => {
            let mn = match op {
                MulOp::Mul => "mul",
                MulOp::Mulh => "mulh",
                MulOp::Mulhsu => "mulhsu",
                MulOp::Mulhu => "mulhu",
                MulOp::Div => "div",
                MulOp::Divu => "divu",
                MulOp::Rem => "rem",
                MulOp::Remu => "remu",
            };
            format!("{mn} {rd}, {rs1}, {rs2}")
        }
        Instruction::Ecall => "ecall".to_string(),
        Instruction::Ebreak => "ebreak".to_string(),
    }
}

/// Disassembles a word image into `(address, word, text)` rows; undecodable
/// words render as `.word`.
pub fn disassemble(words: &[u32], base: u32) -> Vec<(u32, u32, String)> {
    words
        .iter()
        .enumerate()
        .map(|(i, &w)| {
            let addr = base + 4 * i as u32;
            let text = match Instruction::decode(w) {
                Ok(instr) => format_instruction(&instr),
                Err(_) => format!(".word {w:#010x}"),
            };
            (addr, w, text)
        })
        .collect()
}

/// Renders a full listing as text (the `objdump -d` view).
pub fn listing(words: &[u32], base: u32) -> String {
    disassemble(words, base)
        .into_iter()
        .map(|(addr, w, text)| format!("{addr:08x}:  {w:08x}  {text}\n"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use proptest::prelude::*;

    #[test]
    fn formats_known_instructions() {
        let cases = [
            (0x0050_0093u32, "li ra, 5"),
            (0x0020_81B3, "add gp, ra, sp"),
            (0x0273_02B3, "mul t0, t1, t2"),
            (0x0081_2203, "lw tp, 8(sp)"),
            (0x0041_2623, "sw tp, 12(sp)"),
            (0x0000_0073, "ecall"),
            (0x0010_0073, "ebreak"),
        ];
        for (word, expected) in cases {
            let instr = Instruction::decode(word).unwrap();
            assert_eq!(format_instruction(&instr), expected, "word {word:#010x}");
        }
    }

    #[test]
    fn pseudo_forms_render() {
        let src = "nop\nmv t0, t1\nnot t2, t3\nneg t4, t5\nret\nbeqz a0, 8\nblez a1, 4";
        let p = assemble(src, 0).unwrap();
        let rows = disassemble(&p.words, 0);
        assert_eq!(rows[0].2, "nop");
        assert_eq!(rows[1].2, "mv t0, t1");
        assert_eq!(rows[2].2, "not t2, t3");
        assert_eq!(rows[3].2, "neg t4, t5");
        assert_eq!(rows[4].2, "ret");
        assert!(rows[5].2.starts_with("beqz a0"));
        assert!(rows[6].2.starts_with("blez a1"));
    }

    #[test]
    fn garbage_renders_as_word() {
        let rows = disassemble(&[0xFFFF_FFFF, 0x0000_0000], 0x100);
        assert_eq!(rows[0].2, ".word 0xffffffff");
        assert_eq!(rows[0].0, 0x100);
        assert_eq!(rows[1].0, 0x104);
    }

    #[test]
    fn listing_has_one_row_per_word() {
        let p = assemble("li t0, 1\nadd t1, t0, t0\nebreak", 0).unwrap();
        let text = listing(&p.words, 0);
        assert_eq!(text.lines().count(), p.words.len());
        assert!(text.contains("00000000:"));
    }

    #[test]
    fn kernel_program_disassembles_fully() {
        // Every word of the generated sampler kernel must decode.
        let kernel = crate::kernel::SamplerKernel::new(16, &[132120577]).unwrap();
        let rows = disassemble(&kernel.program().words, 0);
        assert!(rows.iter().all(|(_, _, t)| !t.starts_with(".word")));
        assert!(rows.iter().any(|(_, _, t)| t.starts_with("mul")));
        assert!(rows
            .iter()
            .any(|(_, _, t)| t.starts_with("blez") || t.contains("blez")));
    }

    /// Disassemble → reassemble → identical words (for label-free text).
    #[test]
    fn reassembly_roundtrip() {
        let src = "
            li t0, 42
            slli t1, t0, 3
            and t2, t1, t0
            lw a0, 4(sp)
            sw a0, -8(s0)
            mul a1, a0, t2
            div a2, a1, t0
            ecall
        ";
        let p = assemble(src, 0).unwrap();
        let text: String = disassemble(&p.words, 0)
            .into_iter()
            .map(|(_, _, t)| t + "\n")
            .collect();
        let p2 = assemble(&text, 0).unwrap();
        assert_eq!(p.words, p2.words);
    }

    proptest! {
        #[test]
        fn prop_alu_reg_roundtrip_through_text(
            rd in 0u8..32, rs1 in 0u8..32, rs2 in 0u8..32, which in 0usize..10,
        ) {
            let ops = [AluOp::Add, AluOp::Sub, AluOp::Sll, AluOp::Slt, AluOp::Sltu,
                       AluOp::Xor, AluOp::Srl, AluOp::Sra, AluOp::Or, AluOp::And];
            let instr = Instruction::AluReg {
                op: ops[which],
                rd: Reg::new(rd),
                rs1: Reg::new(rs1),
                rs2: Reg::new(rs2),
            };
            let text = format_instruction(&instr);
            let p = assemble(&text, 0).unwrap();
            prop_assert_eq!(p.words.len(), 1);
            // The reassembled word must decode to semantically identical
            // behavior; pseudo-forms (neg) may re-encode the same word.
            prop_assert_eq!(p.words[0], instr.encode());
        }

        #[test]
        fn prop_load_store_roundtrip_through_text(
            rd in 0u8..32, rs1 in 0u8..32, offset in -2048i32..2048,
        ) {
            let l = Instruction::Load {
                rd: Reg::new(rd), rs1: Reg::new(rs1), offset,
                width: MemWidth::Word, signed: true,
            };
            let text = format_instruction(&l);
            let p = assemble(&text, 0).unwrap();
            prop_assert_eq!(p.words[0], l.encode());
        }
    }
}
