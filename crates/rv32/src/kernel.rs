//! The Gaussian-sampler kernel: SEAL's `set_poly_coeffs_normal` inner loop
//! compiled by hand to RV32IM assembly, plus the capture harness.
//!
//! The program mirrors the shape a C++ compiler produces for Fig. 2 of the
//! paper:
//!
//! 1. a *distribution call* of data-dependent duration (the Marsaglia-polar
//!    loop plus clipping rejections of `ClippedNormalDistribution`), rendered
//!    as a burst of `mul` instructions — this is the visible peak that lets
//!    the attacker segment the trace per coefficient (Fig. 3a);
//! 2. the **if / else-if / else** sign ladder with three *different*
//!    instruction sequences (vulnerability 1, Fig. 3b);
//! 3. the value-dependent store `poly[i + j·n] = …` (vulnerability 2);
//! 4. the negation `noise = -noise` on the negative path (vulnerability 3).
//!
//! The noise values and per-call durations stream in through memory-mapped
//! ports, serviced by the harness from the same `ClippedNormalDistribution`
//! the `reveal-bfv` crate uses — so the kernel consumes exactly the values a
//! SEAL encryption would.

use crate::asm::{assemble, AssembleError, Program};
use crate::block::{self, BlockCache, BlockCacheStats, BlockExit};
use crate::cpu::{Bus, Cpu, ExecRecord, Halt, QueueMmio};
use crate::isa::{Instruction, Reg};
use crate::power::{
    render_power, render_power_reference, PowerCapture, PowerModelConfig, PowerRenderer,
    TraceBuffer,
};
use rand::Rng;
use std::collections::HashMap;
use std::fmt;

/// Burst working registers (fixed by the kernel template below).
const T0: Reg = Reg(5);
const T1: Reg = Reg(6);

/// MMIO port delivering the next sampled noise value (two's complement).
pub const NOISE_PORT: u32 = 0xF000_0000;
/// MMIO port delivering the duration (inner iterations) of the next
/// distribution call.
pub const ITER_PORT: u32 = 0xF000_0004;
/// MMIO port delivering fresh uniform masks (masked variant only).
pub const RAND_PORT: u32 = 0xF000_0008;
/// Base address of the coefficient-modulus table.
pub const Q_TABLE_BASE: u32 = 0x1000;
/// Base address of the output polynomial buffer.
pub const POLY_BASE: u32 = 0x2000;
/// Base address of the second share buffer (masked variant only).
pub const SHARE1_BASE: u32 = 0x0010_0000;
/// Base address of the coefficient-permutation table (shuffled variant only).
pub const PERM_BASE: u32 = 0x0008_0000;
/// Base address of the per-coefficient noise-variance scratch (CKKS variant
/// only) — models the encoder's noise-budget bookkeeping.
pub const VAR_BASE: u32 = 0x0004_0000;
/// Magnitude bound on the sampled noise: `ClippedNormalDistribution` clips at
/// `±6.6σ` with `σ = 3.19` (§II-A), so every coefficient lies in
/// `[-NOISE_BOUND, NOISE_BOUND]`.
pub const NOISE_BOUND: i64 = 21;

/// An instruction that introduces secret data into the kernel's data flow.
///
/// Produced by [`SamplerKernel::secret_sources`]; consumed by static
/// leakage analyses (`reveal-lint`) as taint roots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SecretSource {
    /// PC of the load that reads the secret.
    pub pc: u32,
    /// The register the load defines.
    pub reg: crate::isa::Reg,
    /// The MMIO port the secret arrives on.
    pub port: u32,
    /// Human-readable description of the secret.
    pub description: &'static str,
}

/// A value range the harness guarantees for loads from one address region.
///
/// These are the kernel's *public-input preconditions* — facts about MMIO
/// ports and harness-initialized tables that hold on every run (the
/// assume/guarantee contract constant-time verifiers attach to public
/// inputs). Static analyses consume them via [`SamplerKernel::load_bounds`]
/// to bound loaded values instead of widening them to ⊤.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadBound {
    /// First byte address of the region.
    pub base: u32,
    /// Region length in bytes.
    pub len: u32,
    /// Least value a load can observe (loaded word, sign-extended).
    pub lo: i64,
    /// Greatest value a load can observe (inclusive).
    pub hi: i64,
    /// What the region holds.
    pub description: &'static str,
}

/// Which noise-writer implementation the kernel models (§V-A variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelVariant {
    /// SEAL v3.2's vulnerable if/else-if/else ladder (Fig. 2).
    #[default]
    Vulnerable,
    /// Post-v3.6 spirit: branchless, constant control flow — the sign is
    /// folded in arithmetically (`srai`/`xor`/`and`/`or`), so vulnerability 1
    /// disappears (data-flow leakage remains).
    Branchless,
    /// First-order arithmetic masking of the *stored value only*, keeping
    /// the sign ladder — the half-measure the paper warns about.
    MaskedLadder,
    /// Coefficient shuffling (§V-A's randomization countermeasure): the sign
    /// ladder is kept verbatim but the output index is drawn from a fresh
    /// random permutation, and the store runs through a helper reached by an
    /// *indirect* call — the shape a compiler gives a function pointer.
    Shuffled,
    /// The CKKS encoder's noise path: branchless sign fold plus the
    /// noise-variance bookkeeping (`noise²`) the encoder keeps per
    /// coefficient — constant control flow, but the squaring multiplier and
    /// variance store still touch secret data.
    Ckks,
}

/// Errors from building or running the kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// Assembly of the generated program failed (a bug in the generator).
    Assemble(AssembleError),
    /// The program did not halt via `ebreak`.
    BadHalt(Halt),
    /// Input lengths disagreed.
    InputMismatch { expected: usize, got: usize },
    /// Degree must be a power of two (the address computation uses shifts).
    DegreeNotPowerOfTwo(usize),
    /// Moduli must fit in 32 bits for the RV32 data path.
    ModulusTooWide(u64),
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::Assemble(e) => write!(f, "kernel assembly failed: {e}"),
            KernelError::BadHalt(h) => write!(f, "kernel halted abnormally: {h}"),
            KernelError::InputMismatch { expected, got } => {
                write!(f, "expected {expected} inputs, got {got}")
            }
            KernelError::DegreeNotPowerOfTwo(n) => {
                write!(f, "degree {n} is not a power of two")
            }
            KernelError::ModulusTooWide(q) => {
                write!(f, "modulus {q} does not fit the 32-bit data path")
            }
        }
    }
}

impl std::error::Error for KernelError {}

impl From<AssembleError> for KernelError {
    fn from(e: AssembleError) -> Self {
        KernelError::Assemble(e)
    }
}

/// The result of one kernel execution: power trace, architectural output,
/// and ground-truth annotations for profiling experiments.
#[derive(Debug, Clone)]
pub struct KernelRun {
    /// The simulated power capture.
    pub capture: PowerCapture,
    /// The polynomial the kernel wrote, in SEAL's `poly[i + j·n]` layout
    /// (reconstructed from the shares for the masked variant).
    pub poly: Vec<u32>,
    /// The two share polynomials (masked variant only).
    pub shares: Option<(Vec<u32>, Vec<u32>)>,
    /// The output-index permutation used (shuffled variant only); `poly` is
    /// already un-permuted back to the `i + j·n` layout.
    pub permutation: Option<Vec<usize>>,
    /// Ground truth: per-coefficient sample windows `[start, end)` — used by
    /// the *profiling* stage (the attacker controls the device then) and by
    /// tests; the attack stage re-derives windows from the trace itself.
    pub coefficient_windows: Vec<(usize, usize)>,
    /// Executed instruction count.
    pub instruction_count: usize,
}

/// Builds and runs the sampler kernel for a fixed `(n, q_1..q_k)` geometry.
///
/// # Examples
///
/// ```
/// use reveal_rv32::kernel::SamplerKernel;
/// use reveal_rv32::power::PowerModelConfig;
/// use rand::SeedableRng;
///
/// let kernel = SamplerKernel::new(8, &[132120577])?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let run = kernel.run(
///     &[3, -2, 0, 1, -1, 5, 0, -4],
///     &[4, 6, 3, 5, 4, 7, 3, 5],
///     &PowerModelConfig::default(),
///     &mut rng,
/// )?;
/// assert_eq!(run.poly[0], 3);
/// assert_eq!(run.poly[1], 132120577 - 2);
/// assert_eq!(run.poly[2], 0);
/// # Ok::<(), reveal_rv32::kernel::KernelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SamplerKernel {
    n: usize,
    moduli: Vec<u32>,
    variant: KernelVariant,
    program: Program,
    outer_pc: u32,
    dist_done_pc: u32,
}

/// Fig. 2's vulnerable if/else-if/else ladder.
const VULNERABLE_LADDER: &str = "
                # ---- Fig. 2 lines 13-29: the vulnerable sign ladder ----
                blez t2, not_positive
                li   t3, 0               # j = 0
            pos_loop:
                slli t4, t3, {log_n}     # j * n
                add  t4, t4, a0          # i + j*n
                slli t4, t4, 2
                add  t4, t4, s4
                sw   t2, 0(t4)           # poly[i + j*n] = noise
                addi t3, t3, 1
                blt  t3, s2, pos_loop
                j    coeff_done
            not_positive:
                bgez t2, zero_case
                sub  t2, zero, t2        # noise = -noise (vulnerability 3)
                li   t3, 0
            neg_loop:
                slli t5, t3, 2
                add  t5, t5, s3
                lw   t5, 0(t5)           # coeff_modulus[j]
                sub  t5, t5, t2          # q_j - noise
                slli t4, t3, {log_n}
                add  t4, t4, a0
                slli t4, t4, 2
                add  t4, t4, s4
                sw   t5, 0(t4)           # poly[i + j*n] = q_j - noise
                addi t3, t3, 1
                blt  t3, s2, neg_loop
                j    coeff_done
            zero_case:
                li   t3, 0
            zero_loop:
                slli t4, t3, {log_n}
                add  t4, t4, a0
                slli t4, t4, 2
                add  t4, t4, s4
                sw   zero, 0(t4)         # poly[i + j*n] = 0
                addi t3, t3, 1
                blt  t3, s2, zero_loop
";

/// Post-v3.6 spirit: constant control flow, sign folded in arithmetically.
const BRANCHLESS_LADDER: &str = "
                # ---- branchless writer (SEAL >= 3.6 spirit) ----
                srai t3, t2, 31          # mask = noise < 0 ? -1 : 0
                xor  t5, t2, t3
                sub  t5, t5, t3          # |noise|
                li   t6, 0               # j = 0
            bl_loop:
                slli a2, t6, 2
                add  a2, a2, s3
                lw   a2, 0(a2)           # q_j
                sub  a2, a2, t5          # q_j - |noise|
                and  a2, a2, t3          # selected when negative
                xori a3, t3, -1
                and  a3, t5, a3          # |noise| when non-negative
                or   a2, a2, a3          # residue
                slli a4, t6, {log_n}
                add  a4, a4, a0
                slli a4, a4, 2
                add  a4, a4, s4
                sw   a2, 0(a4)           # poly[i + j*n] = residue
                addi t6, t6, 1
                blt  t6, s2, bl_loop
";

/// First-order masked stores behind the *unchanged* sign ladder — the
/// half-measure §V-A argues is insufficient against single-trace attacks.
const MASKED_LADDER: &str = "
                # ---- masked stores, vulnerable ladder kept ----
                blez t2, m_not_pos
                li   t3, 0
            m_pos_loop:
                mv   a2, t2              # residue = noise
                jal  ra, m_store
                addi t3, t3, 1
                blt  t3, s2, m_pos_loop
                j    coeff_done
            m_not_pos:
                bgez t2, m_zero
                sub  t2, zero, t2        # negation still executes
                li   t3, 0
            m_neg_loop:
                slli a3, t3, 2
                add  a3, a3, s3
                lw   a3, 0(a3)           # q_j
                sub  a2, a3, t2          # residue = q_j - noise
                jal  ra, m_store
                addi t3, t3, 1
                blt  t3, s2, m_neg_loop
                j    coeff_done
            m_zero:
                li   t3, 0
            m_zero_loop:
                li   a2, 0
                jal  ra, m_store
                addi t3, t3, 1
                blt  t3, s2, m_zero_loop
                j    coeff_done
            m_store:                     # a2 = residue, t3 = j, a0 = i
                slli a3, t3, 2
                add  a3, a3, s3
                lw   a3, 0(a3)           # q_j
                lw   a4, 8(s0)           # fresh mask r from RAND_PORT
                sub  a5, a2, a4          # residue - r
                srai t4, a5, 31
                and  t4, t4, a3
                add  a5, a5, t4          # mod q_j
                slli t4, t3, {log_n}
                add  t4, t4, a0
                slli t4, t4, 2
                add  a6, t4, s4
                sw   a4, 0(a6)           # share0 = r
                li   a7, {share1_base}
                add  a6, t4, a7
                sw   a5, 0(a6)           # share1 = residue - r
                ret
";

/// Shuffling countermeasure: ladder kept, output index permuted, store via
/// an indirect call (the codegen shape of a writer function pointer).
const SHUFFLED_LADDER: &str = "
                # ---- shuffled writer: ladder kept, output index permuted ----
                li   a1, {perm_base}
                slli a5, a0, 2
                add  a1, a1, a5
                lw   a1, 0(a1)           # i' = perm[i] (public permutation)
                la   t6, s_store         # writer helper, reached indirectly
                blez t2, s_not_pos
                li   t3, 0
            s_pos_loop:
                mv   a2, t2              # residue = noise
                jalr ra, t6, 0
                addi t3, t3, 1
                blt  t3, s2, s_pos_loop
                j    coeff_done
            s_not_pos:
                bgez t2, s_zero
                sub  t2, zero, t2        # negation still executes
                li   t3, 0
            s_neg_loop:
                slli a3, t3, 2
                add  a3, a3, s3
                lw   a3, 0(a3)           # q_j
                sub  a2, a3, t2          # residue = q_j - noise
                jalr ra, t6, 0
                addi t3, t3, 1
                blt  t3, s2, s_neg_loop
                j    coeff_done
            s_zero:
                li   t3, 0
            s_zero_loop:
                li   a2, 0
                jalr ra, t6, 0
                addi t3, t3, 1
                blt  t3, s2, s_zero_loop
                j    coeff_done
            s_store:                     # a2 = residue, t3 = j, a1 = perm[i]
                slli t4, t3, {log_n}
                add  t4, t4, a1          # perm[i] + j*n
                slli t4, t4, 2
                add  t4, t4, s4
                sw   a2, 0(t4)           # poly[perm[i] + j*n] = residue
                ret
";

/// CKKS encoder noise path: branchless fold plus per-coefficient variance
/// bookkeeping.
const CKKS_LADDER: &str = "
                # ---- CKKS noise path: branchless fold + variance scratch ----
                mul  a5, t2, t2          # noise^2 for the budget estimate
                li   a6, {var_base}
                slli a7, a0, 2
                add  a6, a6, a7
                sw   a5, 0(a6)           # variance[i] = noise^2
                srai t3, t2, 31          # mask = noise < 0 ? -1 : 0
                xor  t5, t2, t3
                sub  t5, t5, t3          # |noise|
                li   t6, 0               # j = 0
            ck_loop:
                slli a2, t6, 2
                add  a2, a2, s3
                lw   a2, 0(a2)           # q_j
                sub  a2, a2, t5          # q_j - |noise|
                and  a2, a2, t3          # selected when negative
                xori a3, t3, -1
                and  a3, t5, a3          # |noise| when non-negative
                or   a2, a2, a3          # residue
                slli a4, t6, {log_n}
                add  a4, a4, a0
                slli a4, a4, 2
                add  a4, a4, s4
                sw   a2, 0(a4)           # poly[i + j*n] = residue
                addi t6, t6, 1
                blt  t6, s2, ck_loop
";

impl SamplerKernel {
    /// Generates and assembles the kernel program.
    ///
    /// # Errors
    ///
    /// Fails when `n` is not a power of two or a modulus exceeds 32 bits.
    pub fn new(n: usize, moduli: &[u64]) -> Result<Self, KernelError> {
        Self::with_variant(n, moduli, KernelVariant::Vulnerable)
    }

    /// Generates the kernel for a specific sampler variant (§V-A study).
    ///
    /// # Errors
    ///
    /// Same as [`SamplerKernel::new`].
    pub fn with_variant(
        n: usize,
        moduli: &[u64],
        variant: KernelVariant,
    ) -> Result<Self, KernelError> {
        if !n.is_power_of_two() {
            return Err(KernelError::DegreeNotPowerOfTwo(n));
        }
        let mut moduli32 = Vec::with_capacity(moduli.len());
        for &q in moduli {
            let q32 = u32::try_from(q).map_err(|_| KernelError::ModulusTooWide(q))?;
            moduli32.push(q32);
        }
        let log_n = n.trailing_zeros();
        let k = moduli32.len();
        let ladder = match variant {
            KernelVariant::Vulnerable => VULNERABLE_LADDER,
            KernelVariant::Branchless => BRANCHLESS_LADDER,
            KernelVariant::MaskedLadder => MASKED_LADDER,
            KernelVariant::Shuffled => SHUFFLED_LADDER,
            KernelVariant::Ckks => CKKS_LADDER,
        };
        let body = format!(
            "
            start:
                li   s0, 0xF0000000      # MMIO base
                li   s1, {n}             # coeff_count
                li   s2, {k}             # coeff_mod_count
                li   s3, {q_base}        # q table
                li   s4, {poly_base}     # poly buffer
                li   a0, 0               # i = 0
            outer:
                # ---- ClippedNormalDistribution call (time-variant) ----
                lw   t0, 4(s0)           # polar/clip iteration count
                li   t1, 0x3039          # working value for the burst
            dist_loop:
                beqz t0, dist_done
                mul  t1, t1, t1          # power-hungry: the Fig. 3 peak
                addi t0, t0, -1
                j    dist_loop
            dist_done:
                lw   t2, 0(s0)           # int64_t noise = dist(engine)
                beq  a0, s1, end         # dummy (n+1)-th iteration: stop here
{ladder}
            coeff_done:
                addi a0, a0, 1
                # `<=` so a dummy (n+1)-th iteration runs its distribution
                # burst: on the real device the encryption continues after the
                # sampler, so the last coefficient's window is followed by
                # more activity just like every other window. The dummy exits
                # at the `beq` above, before touching the polynomial.
                ble  a0, s1, outer
            end:
                ebreak
            ",
            n = n,
            k = k,
            q_base = Q_TABLE_BASE,
            poly_base = POLY_BASE,
            ladder = "@LADDER@",
        );
        // Two-stage formatting keeps the per-variant ladder templates small.
        let source = body
            .replace("@LADDER@", ladder)
            .replace("{log_n}", &log_n.to_string())
            .replace("{share1_base}", &SHARE1_BASE.to_string())
            .replace("{perm_base}", &PERM_BASE.to_string())
            .replace("{var_base}", &VAR_BASE.to_string());
        let program = assemble(&source, 0)?;
        let outer_pc = program.symbol("outer").expect("outer label");
        let dist_done_pc = program.symbol("dist_done").expect("dist_done label");
        Ok(Self {
            n,
            moduli: moduli32,
            variant,
            program,
            outer_pc,
            dist_done_pc,
        })
    }

    /// The sampler variant this kernel models.
    pub fn variant(&self) -> KernelVariant {
        self.variant
    }

    /// Polynomial degree.
    pub fn degree(&self) -> usize {
        self.n
    }

    /// The coefficient moduli.
    pub fn moduli(&self) -> &[u32] {
        &self.moduli
    }

    /// The assembled program (for inspection/disassembly).
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The instructions that introduce secret data into the kernel.
    ///
    /// Every variant reads the sampled noise coefficient from
    /// [`NOISE_PORT`] with the load at `dist_done`; the register it defines
    /// is the taint root for static leakage analysis. The iteration-count
    /// and mask ports ([`ITER_PORT`], [`RAND_PORT`]) carry public values and
    /// are deliberately not listed.
    pub fn secret_sources(&self) -> Vec<SecretSource> {
        let pc = self
            .program
            .symbol("dist_done")
            .expect("dist_done label exists in every variant");
        let word = self.program.words[(pc / 4) as usize];
        let instr = crate::isa::Instruction::decode(word).expect("noise load decodes");
        let reg = instr.def().expect("noise load defines a register");
        vec![SecretSource {
            pc,
            reg,
            port: NOISE_PORT,
            description: "sampled noise coefficient (dist(engine) result)",
        }]
    }

    /// The public-input value ranges the run harness guarantees, per address
    /// region ([`LoadBound`]): the clipped noise magnitude, the
    /// iteration-count port, the q-table contents, and (per variant) the
    /// masking randomness and the output-index permutation.
    pub fn load_bounds(&self) -> Vec<LoadBound> {
        let min_q = self.moduli.iter().copied().min().unwrap_or(0);
        let max_q = self.moduli.iter().copied().max().unwrap_or(0);
        let mut bounds = vec![
            LoadBound {
                base: NOISE_PORT,
                len: 4,
                lo: -NOISE_BOUND,
                hi: NOISE_BOUND,
                description: "sampled noise coefficient (clipped normal)",
            },
            LoadBound {
                base: ITER_PORT,
                len: 4,
                lo: 0,
                hi: 255,
                description: "distribution-call iteration count",
            },
            LoadBound {
                base: Q_TABLE_BASE,
                len: 4 * self.moduli.len() as u32,
                lo: i64::from(min_q),
                hi: i64::from(max_q),
                description: "coefficient-modulus table",
            },
        ];
        match self.variant {
            KernelVariant::MaskedLadder => bounds.push(LoadBound {
                base: RAND_PORT,
                len: 4,
                lo: 0,
                hi: i64::from(max_q).saturating_sub(1),
                description: "uniform masking randomness",
            }),
            KernelVariant::Shuffled => bounds.push(LoadBound {
                base: PERM_BASE,
                len: 4 * self.n as u32,
                lo: 0,
                hi: self.n as i64 - 1,
                description: "output-index permutation",
            }),
            _ => {}
        }
        bounds
    }

    /// Executes the kernel over `noise_values`, with `dist_iterations[i]`
    /// burst iterations before coefficient `i`, rendering power with
    /// `config`.
    ///
    /// # Errors
    ///
    /// Fails on input-length mismatch or abnormal halt.
    pub fn run<R: Rng + ?Sized>(
        &self,
        noise_values: &[i64],
        dist_iterations: &[u32],
        config: &PowerModelConfig,
        rng: &mut R,
    ) -> Result<KernelRun, KernelError> {
        let mut cpu = self.prepare_cpu(noise_values, dist_iterations, rng)?;
        let (records, halt) = cpu.run(self.fuel());
        if halt != Halt::Ebreak {
            return Err(KernelError::BadHalt(halt));
        }

        let capture = render_power(&records, config, rng);
        let windows = self.ground_truth_windows(&records, &capture);
        let (poly, shares, permutation) = self.read_outputs(&mut cpu);
        Ok(KernelRun {
            capture,
            poly,
            shares,
            permutation,
            coefficient_windows: windows,
            instruction_count: records.len(),
        })
    }

    /// The pre-fast-path execution path, kept verbatim as the benchmark
    /// reference: per-step instruction decoding (no predecode cache), a
    /// materialized `Vec<ExecRecord>`, and `sin`-per-bit power rendering via
    /// [`render_power_reference`]. Bit-identical to [`SamplerKernel::run`]
    /// and [`SamplerKernel::run_into`]; exists so `bench_pipeline` can
    /// measure the fast path against the implementation it replaced.
    ///
    /// # Errors
    ///
    /// Same as [`SamplerKernel::run`].
    pub fn run_reference<R: Rng + ?Sized>(
        &self,
        noise_values: &[i64],
        dist_iterations: &[u32],
        config: &PowerModelConfig,
        rng: &mut R,
    ) -> Result<KernelRun, KernelError> {
        let mut cpu = self.prepare_cpu_undecoded(noise_values, dist_iterations, rng)?;
        let (records, halt) = cpu.run(self.fuel());
        if halt != Halt::Ebreak {
            return Err(KernelError::BadHalt(halt));
        }

        let capture = render_power_reference(&records, config, rng);
        let windows = self.ground_truth_windows(&records, &capture);
        let (poly, shares, permutation) = self.read_outputs(&mut cpu);
        Ok(KernelRun {
            capture,
            poly,
            shares,
            permutation,
            coefficient_windows: windows,
            instruction_count: records.len(),
        })
    }

    /// Executes the kernel through the streaming fast path: power samples
    /// stream into `scratch`'s reusable [`TraceBuffer`] as each instruction
    /// retires (no `Vec<ExecRecord>` is materialized), and distribution
    /// bursts replay from `scratch`'s noiseless sub-trace memo with a fresh
    /// per-run noise overlay.
    ///
    /// Bit-identical to [`SamplerKernel::run`] for the same inputs and RNG
    /// seed: same capture (samples and spans), outputs, windows, and
    /// instruction count. The memo is validated against a fingerprint of the
    /// kernel program, moduli, and power configuration, and cleared on
    /// mismatch, so one scratch can serve many kernels.
    ///
    /// # Errors
    ///
    /// Same as [`SamplerKernel::run`].
    pub fn run_into<R: Rng + ?Sized>(
        &self,
        noise_values: &[i64],
        dist_iterations: &[u32],
        config: &PowerModelConfig,
        rng: &mut R,
        scratch: &mut SamplerScratch,
    ) -> Result<KernelRun, KernelError> {
        let mut cpu = self.prepare_cpu(noise_values, dist_iterations, rng)?;
        scratch.ensure(self.memo_fingerprint(config));
        if !scratch.block_cache.covers(0, self.program.words.len()) {
            // Fresh scratch (or fingerprint change dropped the cache):
            // compute the static leader set once — the memoization hook PCs
            // are leaders so no compiled block ever spans the window-start
            // or burst-exit dispatch points below.
            let instrs: Vec<Option<Instruction>> = self
                .program
                .words
                .iter()
                .map(|&w| Instruction::decode(w).ok())
                .collect();
            scratch.leaders =
                block::static_leaders(&instrs, 0, &[self.outer_pc, self.dist_done_pc]);
            scratch
                .block_cache
                .reset_program(0, self.program.words.len());
        }
        let image = scratch.block_cache.image_range();
        let renderer = PowerRenderer::new(config);
        let fuel = self.fuel();
        let mut record_index = 0usize;
        let mut window_starts = Vec::with_capacity(self.n + 1);
        let halt = loop {
            if record_index >= fuel {
                break Halt::OutOfFuel;
            }
            if cpu.pc() == self.outer_pc {
                // Start of a per-coefficient window. The `lw t0, 4(s0)`
                // executes normally (it pops ITER_PORT and tells us the
                // burst length `m`); everything from the following `li t1`
                // through the taken `beqz` into `dist_done` is a pure
                // function of `(m, t1-on-entry)` — every value, Hamming
                // distance, and cycle count — so its noiseless samples are
                // memoized under that key.
                window_starts.push(scratch.buffer.len());
                let record = match cpu.step() {
                    Ok(record) => record,
                    Err(halt) => break halt,
                };
                let m = record.reg_write.map(|(_, _, new)| new).unwrap_or(0);
                renderer.render_record(record_index, &record, rng, &mut scratch.buffer);
                record_index += 1;
                let key = (m, cpu.reg(T1));
                if let Some(template) = scratch.memo.get(&key) {
                    scratch.memo_hits += 1;
                    let mut offset = 0usize;
                    for (i, (&pc, &count)) in template.pcs.iter().zip(&template.counts).enumerate()
                    {
                        let count = count as usize;
                        renderer.replay_noiseless(
                            record_index + i,
                            pc,
                            &template.samples[offset..offset + count],
                            rng,
                            &mut scratch.buffer,
                        );
                        offset += count;
                    }
                    record_index += template.pcs.len();
                    cpu.set_reg(T0, 0);
                    cpu.set_reg(T1, template.t1_exit);
                    cpu.set_pc(self.dist_done_pc);
                    cpu.add_cycles(template.cycles);
                } else {
                    scratch.memo_misses += 1;
                    let mut template = BurstTemplate::default();
                    let cycles_before = cpu.cycle();
                    let mut aborted = None;
                    while cpu.pc() != self.dist_done_pc {
                        if record_index >= fuel {
                            aborted = Some(Halt::OutOfFuel);
                            break;
                        }
                        let record = match cpu.step() {
                            Ok(record) => record,
                            Err(halt) => {
                                aborted = Some(halt);
                                break;
                            }
                        };
                        let start = template.samples.len();
                        renderer.render_record_noiseless(&record, &mut template.samples);
                        renderer.replay_noiseless(
                            record_index,
                            record.pc,
                            &template.samples[start..],
                            rng,
                            &mut scratch.buffer,
                        );
                        template.pcs.push(record.pc);
                        template
                            .counts
                            .push((template.samples.len() - start) as u32);
                        record_index += 1;
                    }
                    if let Some(halt) = aborted {
                        break halt;
                    }
                    template.cycles = cpu.cycle() - cycles_before;
                    template.t1_exit = cpu.reg(T1);
                    scratch.memo.insert(key, template);
                }
                continue;
            }
            // Superinstruction dispatch: decode once per block, execute the
            // flat op array with power emission fused into the same loop.
            let pc = cpu.pc();
            if scratch.block_cache.get(pc).is_some() {
                scratch.block_cache.stats.dispatch_hits += 1;
            } else {
                // First execution (or recompile after invalidation):
                // compile from the *current* memory image so self-modified
                // code is captured faithfully.
                let words: Vec<u32> = (0..self.program.words.len())
                    .map(|i| cpu.bus.read_u32(4 * i as u32))
                    .collect();
                scratch.block_cache.insert(&words, pc, &scratch.leaders);
            }
            let run = match scratch.block_cache.get(pc) {
                Some(compiled) => block::run_block(
                    &mut cpu,
                    compiled,
                    &renderer,
                    rng,
                    &mut scratch.buffer,
                    record_index,
                    fuel,
                    &image,
                ),
                None => {
                    // The entry word does not compile (undecodable or out of
                    // image): take one interpreter step, which renders or
                    // faults exactly as the pre-block path did.
                    match cpu.step() {
                        Ok(record) => {
                            renderer.render_record(record_index, &record, rng, &mut scratch.buffer);
                            record_index += 1;
                        }
                        Err(halt) => break halt,
                    }
                    continue;
                }
            };
            record_index += run.executed;
            scratch.block_cache.stats.fused_samples += run.samples as u64;
            match run.exit {
                BlockExit::Completed | BlockExit::OutOfFuel => {}
                BlockExit::Halted(halt) => break halt,
                BlockExit::SelfModified { addr } => scratch.block_cache.invalidate(addr),
            }
        };
        if halt != Halt::Ebreak {
            return Err(KernelError::BadHalt(halt));
        }

        let capture = scratch.buffer.to_capture();
        let windows = self.windows_from_starts(window_starts, capture.samples.len());
        let (poly, shares, permutation) = self.read_outputs(&mut cpu);
        Ok(KernelRun {
            capture,
            poly,
            shares,
            permutation,
            coefficient_windows: windows,
            instruction_count: record_index,
        })
    }

    /// Validates inputs and builds a CPU with queued MMIO, loaded program
    /// (predecoded), and initialized q-table.
    fn prepare_cpu<R: Rng + ?Sized>(
        &self,
        noise_values: &[i64],
        dist_iterations: &[u32],
        rng: &mut R,
    ) -> Result<Cpu<QueueMmio>, KernelError> {
        let mut cpu = self.prepare_cpu_undecoded(noise_values, dist_iterations, rng)?;
        cpu.predecode(0, self.program.words.len());
        Ok(cpu)
    }

    /// [`Self::prepare_cpu`] without the predecode pass — the reference
    /// path decodes each instruction as it executes, like the original
    /// interpreter did.
    fn prepare_cpu_undecoded<R: Rng + ?Sized>(
        &self,
        noise_values: &[i64],
        dist_iterations: &[u32],
        rng: &mut R,
    ) -> Result<Cpu<QueueMmio>, KernelError> {
        if noise_values.len() != self.n {
            return Err(KernelError::InputMismatch {
                expected: self.n,
                got: noise_values.len(),
            });
        }
        if dist_iterations.len() != self.n {
            return Err(KernelError::InputMismatch {
                expected: self.n,
                got: dist_iterations.len(),
            });
        }
        let mut mmio = QueueMmio::new();
        // One extra (dummy) entry each: the kernel runs an (n+1)-th
        // distribution burst so the last real window has a successor peak.
        mmio.push_reads(
            NOISE_PORT,
            noise_values
                .iter()
                .map(|&v| v as i32 as u32)
                .chain(std::iter::once(0)),
        );
        let median_iters = {
            let mut sorted = dist_iterations.to_vec();
            sorted.sort_unstable();
            sorted.get(sorted.len() / 2).copied().unwrap_or(4)
        };
        mmio.push_reads(
            ITER_PORT,
            dist_iterations
                .iter()
                .copied()
                .chain(std::iter::once(median_iters)),
        );
        let k = self.moduli.len();
        if self.variant == KernelVariant::MaskedLadder {
            // Fresh uniform masks, in consumption order (per coefficient,
            // per modulus).
            let mut masks = Vec::with_capacity(self.n * k);
            for _ in 0..self.n {
                for &q in &self.moduli {
                    masks.push(rng.gen_range(0..q));
                }
            }
            mmio.push_reads(RAND_PORT, masks);
        }

        let ram_bytes = match self.variant {
            KernelVariant::MaskedLadder => {
                (SHARE1_BASE as usize + 4 * self.n * k + 4096).next_power_of_two()
            }
            KernelVariant::Shuffled => (PERM_BASE as usize + 4 * self.n + 4096).next_power_of_two(),
            KernelVariant::Ckks => (VAR_BASE as usize + 4 * self.n + 4096).next_power_of_two(),
            _ => (POLY_BASE as usize + 4 * self.n * k + 4096).next_power_of_two(),
        };
        let mut bus = Bus::new(ram_bytes, mmio);
        bus.load_words(0, &self.program.words);
        for (j, &q) in self.moduli.iter().enumerate() {
            bus.write_u32(Q_TABLE_BASE + 4 * j as u32, q);
        }
        if self.variant == KernelVariant::Shuffled {
            // Fresh Fisher-Yates permutation of the output indices.
            let mut perm: Vec<u32> = (0..self.n as u32).collect();
            for i in (1..perm.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                perm.swap(i, j);
            }
            for (i, &p) in perm.iter().enumerate() {
                bus.write_u32(PERM_BASE + 4 * i as u32, p);
            }
        }
        Ok(Cpu::new(bus))
    }

    /// Generous fuel: ~n · (burst + ladder) instructions.
    fn fuel(&self) -> usize {
        64 * self.n * (self.moduli.len() + 8) + 1024
    }

    /// Reads the polynomial (and shares / permutation, per variant) back out
    /// of the halted CPU's memory. The shuffled variant's polynomial is
    /// un-permuted into SEAL's `poly[i + j·n]` layout so all variants share
    /// reference semantics; the raw permutation is returned alongside.
    fn read_outputs(&self, cpu: &mut Cpu<QueueMmio>) -> (Vec<u32>, ShareBuffers, Permutation) {
        let k = self.moduli.len();
        let mut poly = Vec::with_capacity(self.n * k);
        let mut shares = None;
        let mut permutation = None;
        match self.variant {
            KernelVariant::MaskedLadder => {
                let mut share0 = Vec::with_capacity(self.n * k);
                let mut share1 = Vec::with_capacity(self.n * k);
                for idx in 0..self.n * k {
                    share0.push(cpu.bus.read_u32(POLY_BASE + 4 * idx as u32));
                    share1.push(cpu.bus.read_u32(SHARE1_BASE + 4 * idx as u32));
                }
                for (idx, (&s0, &s1)) in share0.iter().zip(&share1).enumerate() {
                    let q = self.moduli[idx / self.n] as u64;
                    poly.push(((s0 as u64 + s1 as u64) % q) as u32);
                }
                shares = Some((share0, share1));
            }
            KernelVariant::Shuffled => {
                let perm: Vec<usize> = (0..self.n)
                    .map(|i| cpu.bus.read_u32(PERM_BASE + 4 * i as u32) as usize)
                    .collect();
                for idx in 0..self.n * k {
                    let (j, i) = (idx / self.n, idx % self.n);
                    let slot = (perm[i] + j * self.n) as u32;
                    poly.push(cpu.bus.read_u32(POLY_BASE + 4 * slot));
                }
                permutation = Some(perm);
            }
            _ => {
                for idx in 0..self.n * k {
                    poly.push(cpu.bus.read_u32(POLY_BASE + 4 * idx as u32));
                }
            }
        }
        (poly, shares, permutation)
    }

    /// Fingerprint keying the sub-trace memo: kernel program, geometry, and
    /// every power-model knob that shapes the noiseless samples.
    fn memo_fingerprint(&self, config: &PowerModelConfig) -> u64 {
        // FNV-1a, word-at-a-time.
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |value: u64| {
            for byte in value.to_le_bytes() {
                hash = (hash ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        mix(self.n as u64);
        for &word in &self.program.words {
            mix(u64::from(word));
        }
        for &q in &self.moduli {
            mix(u64::from(q));
        }
        mix(config.alpha_hw.to_bits());
        mix(config.beta_hd.to_bits());
        mix(config.gamma_mem.to_bits());
        mix(config.delta_addr.to_bits());
        mix(config.epsilon_flush.to_bits());
        mix(config.bit_weight_variation.to_bits());
        mix(config.noise_sigma.to_bits());
        mix(config.samples_per_cycle as u64);
        mix(config.noise_sampler as u64);
        hash
    }

    /// Derives per-coefficient sample windows from the retirement of the
    /// first instruction of `outer` (the `lw` fetching the iteration count).
    fn ground_truth_windows(
        &self,
        records: &[ExecRecord],
        capture: &PowerCapture,
    ) -> Vec<(usize, usize)> {
        // n real iterations plus the dummy (n+1)-th burst.
        let mut starts = Vec::with_capacity(self.n + 1);
        for (i, r) in records.iter().enumerate() {
            if r.pc == self.outer_pc {
                starts.push(capture.spans[i].start);
            }
        }
        self.windows_from_starts(starts, capture.samples.len())
    }

    fn windows_from_starts(
        &self,
        mut starts: Vec<usize>,
        total_samples: usize,
    ) -> Vec<(usize, usize)> {
        let dummy_start = starts.get(self.n).copied();
        starts.truncate(self.n);
        let mut windows = Vec::with_capacity(starts.len());
        for (idx, &s) in starts.iter().enumerate() {
            let end = if idx + 1 < starts.len() {
                starts[idx + 1]
            } else {
                dummy_start.unwrap_or(total_samples)
            };
            windows.push((s, end));
        }
        windows
    }
}

/// The two share polynomials of a masked run, when present.
type ShareBuffers = Option<(Vec<u32>, Vec<u32>)>;

/// The output-index permutation of a shuffled run, when present.
type Permutation = Option<Vec<usize>>;

/// One memoized distribution burst: the noiseless samples and bookkeeping
/// of every record from the `li t1` after the iteration-count load through
/// the taken `beqz` into `dist_done`.
#[derive(Debug, Clone, Default)]
struct BurstTemplate {
    /// Per-record program counters (for span reconstruction).
    pcs: Vec<u32>,
    /// Per-record sample counts.
    counts: Vec<u32>,
    /// Flat noiseless samples, concatenated in record order.
    samples: Vec<f64>,
    /// Total cycles the burst consumes.
    cycles: u64,
    /// Value of `t1` when the burst exits into `dist_done`.
    t1_exit: u32,
}

/// Reusable state for [`SamplerKernel::run_into`]: the streaming sample
/// buffer and the sub-trace memo.
///
/// Intended to live for a batch of runs (e.g. one profiling chunk). The memo
/// only ever changes *speed*, never values: entries store noiseless sample
/// templates keyed on the burst inputs plus a fingerprint of the kernel and
/// power configuration, and the per-run noise overlay is drawn from the
/// caller's RNG in the exact order the direct path would draw it.
#[derive(Debug, Clone)]
pub struct SamplerScratch {
    buffer: TraceBuffer,
    memo: HashMap<(u32, u32), BurstTemplate>,
    fingerprint: Option<u64>,
    memo_hits: u64,
    memo_misses: u64,
    block_cache: BlockCache,
    leaders: Vec<u32>,
}

impl Default for SamplerScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl SamplerScratch {
    /// An empty scratch.
    pub fn new() -> Self {
        Self {
            buffer: TraceBuffer::new(),
            memo: HashMap::new(),
            fingerprint: None,
            memo_hits: 0,
            memo_misses: 0,
            block_cache: BlockCache::new(),
            leaders: Vec::new(),
        }
    }

    /// An empty scratch whose captures carry samples but no per-instruction
    /// [`crate::power::SampleSpan`]s.
    ///
    /// Span bookkeeping costs ~32 bytes per retired instruction per run;
    /// profiling consumes only the flat sample stream, so its workers skip
    /// that entirely. Samples are bit-identical either way — spans never
    /// feed back into rendering.
    pub fn samples_only() -> Self {
        Self {
            buffer: TraceBuffer::samples_only(),
            ..Self::new()
        }
    }

    /// Number of memoized burst templates (observability for tests/benches).
    pub fn memo_len(&self) -> usize {
        self.memo.len()
    }

    /// Burst lookups served from the memo over this scratch's lifetime.
    ///
    /// Diagnostics only: the totals depend on how runs were partitioned
    /// across workers (a warm worker-pinned scratch hits more often than a
    /// per-chunk one), while the rendered values never do.
    pub fn memo_hits(&self) -> u64 {
        self.memo_hits
    }

    /// Burst lookups that had to render the template cold.
    pub fn memo_misses(&self) -> u64 {
        self.memo_misses
    }

    /// Superinstruction-block compilation and dispatch statistics over this
    /// scratch's lifetime.
    ///
    /// Diagnostics only, like [`SamplerScratch::memo_hits`]: the totals
    /// depend on run partitioning across workers, never the rendered values.
    pub fn block_stats(&self) -> BlockCacheStats {
        self.block_cache.stats
    }

    /// Clears the buffer; clears the memo and the compiled-block cache too
    /// if the fingerprint changed (the fingerprint covers the program words,
    /// so matching it guarantees cached blocks still describe the image).
    fn ensure(&mut self, fingerprint: u64) {
        if self.fingerprint != Some(fingerprint) {
            self.memo.clear();
            self.block_cache.reset_program(0, 0);
            self.leaders.clear();
            self.fingerprint = Some(fingerprint);
        }
        self.buffer.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const Q: u64 = 132120577;

    fn run_small(values: &[i64], seed: u64) -> KernelRun {
        let kernel = SamplerKernel::new(values.len(), &[Q]).unwrap();
        let iters: Vec<u32> = values.iter().map(|_| 5).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        kernel
            .run(values, &iters, &PowerModelConfig::noiseless(), &mut rng)
            .unwrap()
    }

    #[test]
    fn kernel_computes_seal_residues() {
        let values = [3i64, -2, 0, 1, -1, 41, -41, 0];
        let run = run_small(&values, 1);
        for (i, &v) in values.iter().enumerate() {
            let expected = if v >= 0 {
                v as u32
            } else {
                (Q as i64 + v) as u32
            };
            assert_eq!(run.poly[i], expected, "coefficient {i}");
        }
    }

    #[test]
    fn kernel_matches_bfv_sampler_semantics() {
        // Same residues as reveal-bfv's set_poly_coeffs_normal would write.
        let values = [7i64, -7, 0, 14, -14, 1, -1, 2];
        let run = run_small(&values, 2);
        for (i, &v) in values.iter().enumerate() {
            let expected = v.rem_euclid(Q as i64) as u32;
            assert_eq!(run.poly[i], expected);
        }
    }

    #[test]
    fn multi_modulus_layout() {
        let q2 = 12289u64;
        let kernel = SamplerKernel::new(4, &[Q, q2]).unwrap();
        let values = [-3i64, 2, 0, -1];
        let mut rng = StdRng::seed_from_u64(3);
        let run = kernel
            .run(
                &values,
                &[4, 4, 4, 4],
                &PowerModelConfig::noiseless(),
                &mut rng,
            )
            .unwrap();
        // poly[i + j*n]
        assert_eq!(run.poly[0], (Q as i64 - 3) as u32);
        assert_eq!(run.poly[4], (q2 as i64 - 3) as u32);
        assert_eq!(run.poly[1], 2);
        assert_eq!(run.poly[5], 2);
        assert_eq!(run.poly[2], 0);
        assert_eq!(run.poly[6], 0);
    }

    #[test]
    fn windows_cover_trace_in_order() {
        let values = [1i64, -2, 0, 3, -4, 5, 0, -1];
        let run = run_small(&values, 4);
        assert_eq!(run.coefficient_windows.len(), 8);
        for w in run.coefficient_windows.windows(2) {
            assert_eq!(w[0].1, w[1].0, "windows must tile the trace");
            assert!(w[0].0 < w[0].1);
        }
        // The prologue (li setup) precedes the first window.
        assert!(run.coefficient_windows[0].0 > 0);
    }

    #[test]
    fn dist_iterations_change_window_length() {
        let kernel = SamplerKernel::new(4, &[Q]).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let short = kernel
            .run(
                &[1, 1, 1, 1],
                &[2, 2, 2, 2],
                &PowerModelConfig::noiseless(),
                &mut rng,
            )
            .unwrap();
        let long = kernel
            .run(
                &[1, 1, 1, 1],
                &[12, 12, 12, 12],
                &PowerModelConfig::noiseless(),
                &mut rng,
            )
            .unwrap();
        let w_short = short.coefficient_windows[1].1 - short.coefficient_windows[1].0;
        let w_long = long.coefficient_windows[1].1 - long.coefficient_windows[1].0;
        assert!(w_long > w_short + 300, "10 extra muls ≈ 380 extra cycles");
    }

    #[test]
    fn branch_shapes_differ_per_sign() {
        // The three ladder arms must produce windows whose *instruction mix*
        // differs: the negative arm contains an lw+sub pair absent elsewhere.
        let run = run_small(&[5, -5, 0, 5, -5, 0, 5, -5], 6);
        let (ps, pe) = run.coefficient_windows[0];
        let (ns, ne) = run.coefficient_windows[1];
        let (zs, ze) = run.coefficient_windows[2];
        // Negative windows are longer (negation + q load + subtract).
        assert!(ne - ns > pe - ps);
        assert!(ne - ns > ze - zs);
        // Equal-sign windows with equal dist length have identical length.
        let (ps2, pe2) = run.coefficient_windows[3];
        assert_eq!(pe - ps, pe2 - ps2);
    }

    #[test]
    fn input_validation() {
        let kernel = SamplerKernel::new(8, &[Q]).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        assert!(matches!(
            kernel.run(&[0; 4], &[1; 8], &PowerModelConfig::noiseless(), &mut rng),
            Err(KernelError::InputMismatch {
                expected: 8,
                got: 4
            })
        ));
        assert!(matches!(
            SamplerKernel::new(12, &[Q]),
            Err(KernelError::DegreeNotPowerOfTwo(12))
        ));
        assert!(matches!(
            SamplerKernel::new(8, &[1u64 << 33]),
            Err(KernelError::ModulusTooWide(_))
        ));
    }

    #[test]
    fn branchless_variant_matches_vulnerable_output() {
        let values = [3i64, -2, 0, 1, -1, 41, -41, 14];
        let vulnerable = SamplerKernel::new(8, &[Q]).unwrap();
        let branchless = SamplerKernel::with_variant(8, &[Q], KernelVariant::Branchless).unwrap();
        let iters = [4u32; 8];
        let mut rng = StdRng::seed_from_u64(11);
        let a = vulnerable
            .run(&values, &iters, &PowerModelConfig::noiseless(), &mut rng)
            .unwrap();
        let b = branchless
            .run(&values, &iters, &PowerModelConfig::noiseless(), &mut rng)
            .unwrap();
        assert_eq!(a.poly, b.poly, "functional equivalence");
        assert!(b.shares.is_none());
    }

    #[test]
    fn branchless_windows_have_sign_independent_length() {
        // Constant control flow: equal dist-iteration counts give equal
        // window lengths regardless of the coefficient's sign.
        let kernel = SamplerKernel::with_variant(8, &[Q], KernelVariant::Branchless).unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        let run = kernel
            .run(
                &[5, -5, 0, 3, -3, 0, 7, -7],
                &[6; 8],
                &PowerModelConfig::noiseless(),
                &mut rng,
            )
            .unwrap();
        let lengths: Vec<usize> = run
            .coefficient_windows
            .iter()
            .map(|&(s, e)| e - s)
            .collect();
        assert!(
            lengths.windows(2).all(|w| w[0] == w[1]),
            "branchless windows must all have the same length: {lengths:?}"
        );
    }

    #[test]
    fn masked_variant_reconstructs_and_randomizes() {
        let values = [3i64, -2, 0, 7, -14, 1, -1, 0];
        let kernel = SamplerKernel::with_variant(8, &[Q], KernelVariant::MaskedLadder).unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        let run = kernel
            .run(&values, &[4; 8], &PowerModelConfig::noiseless(), &mut rng)
            .unwrap();
        // Reconstruction matches the reference semantics.
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(
                run.poly[i],
                v.rem_euclid(Q as i64) as u32,
                "coefficient {i}"
            );
        }
        // Shares individually are not the residues.
        let (s0, s1) = run.shares.clone().unwrap();
        assert_eq!(s0.len(), 8);
        assert_ne!(s0, run.poly, "share0 must be masked");
        assert_ne!(s1, run.poly, "share1 must be masked");
        // A second run with the same values produces different shares.
        let run2 = kernel
            .run(&values, &[4; 8], &PowerModelConfig::noiseless(), &mut rng)
            .unwrap();
        assert_eq!(run2.poly, run.poly);
        assert_ne!(run2.shares.unwrap().0, s0);
    }

    #[test]
    fn masked_variant_multi_modulus() {
        let q2 = 12289u64;
        let kernel = SamplerKernel::with_variant(4, &[Q, q2], KernelVariant::MaskedLadder).unwrap();
        let mut rng = StdRng::seed_from_u64(14);
        let run = kernel
            .run(
                &[-3, 2, 0, -1],
                &[4; 4],
                &PowerModelConfig::noiseless(),
                &mut rng,
            )
            .unwrap();
        assert_eq!(run.poly[0], (Q as i64 - 3) as u32);
        assert_eq!(run.poly[4], (q2 as i64 - 3) as u32);
        assert_eq!(run.poly[1], 2);
        assert_eq!(run.poly[5], 2);
    }

    #[test]
    fn shuffled_variant_unpermutes_to_reference_output() {
        let values = [3i64, -2, 0, 1, -1, 41, -41, 14];
        let kernel = SamplerKernel::with_variant(8, &[Q], KernelVariant::Shuffled).unwrap();
        let mut rng = StdRng::seed_from_u64(15);
        let run = kernel
            .run(&values, &[4; 8], &PowerModelConfig::noiseless(), &mut rng)
            .unwrap();
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(
                run.poly[i],
                v.rem_euclid(Q as i64) as u32,
                "coefficient {i}"
            );
        }
        let perm = run.permutation.clone().unwrap();
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..8).collect::<Vec<_>>(), "must be a permutation");
        // Fresh permutations per run; the un-permuted output is unchanged.
        let run2 = kernel
            .run(&values, &[4; 8], &PowerModelConfig::noiseless(), &mut rng)
            .unwrap();
        assert_eq!(run2.poly, run.poly);
    }

    #[test]
    fn shuffled_variant_multi_modulus() {
        let q2 = 12289u64;
        let kernel = SamplerKernel::with_variant(4, &[Q, q2], KernelVariant::Shuffled).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let run = kernel
            .run(
                &[-3, 2, 0, -1],
                &[4; 4],
                &PowerModelConfig::noiseless(),
                &mut rng,
            )
            .unwrap();
        assert_eq!(run.poly[0], (Q as i64 - 3) as u32);
        assert_eq!(run.poly[4], (q2 as i64 - 3) as u32);
        assert_eq!(run.poly[1], 2);
        assert_eq!(run.poly[5], 2);
    }

    #[test]
    fn ckks_variant_is_branchless_and_correct() {
        let values = [5i64, -5, 0, 3, -3, 0, 7, -7];
        let kernel = SamplerKernel::with_variant(8, &[Q], KernelVariant::Ckks).unwrap();
        let mut rng = StdRng::seed_from_u64(16);
        let run = kernel
            .run(&values, &[6; 8], &PowerModelConfig::noiseless(), &mut rng)
            .unwrap();
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(
                run.poly[i],
                v.rem_euclid(Q as i64) as u32,
                "coefficient {i}"
            );
        }
        // Constant control flow: equal dist iterations, equal window lengths.
        let lengths: Vec<usize> = run
            .coefficient_windows
            .iter()
            .map(|&(s, e)| e - s)
            .collect();
        assert!(
            lengths.windows(2).all(|w| w[0] == w[1]),
            "CKKS windows must have sign-independent length: {lengths:?}"
        );
    }

    #[test]
    fn load_bounds_cover_variant_inputs() {
        let base = SamplerKernel::new(8, &[Q]).unwrap();
        let bounds = base.load_bounds();
        assert!(bounds.iter().any(|b| b.base == NOISE_PORT && b.lo < 0));
        assert!(bounds.iter().all(|b| b.lo <= b.hi));
        let shuffled = SamplerKernel::with_variant(8, &[Q], KernelVariant::Shuffled).unwrap();
        let perm = shuffled
            .load_bounds()
            .into_iter()
            .find(|b| b.base == PERM_BASE)
            .expect("shuffled kernel bounds its permutation table");
        assert_eq!((perm.lo, perm.hi), (0, 7));
        let masked = SamplerKernel::with_variant(8, &[Q], KernelVariant::MaskedLadder).unwrap();
        assert!(masked.load_bounds().iter().any(|b| b.base == RAND_PORT));
    }

    fn assert_runs_equal(fast: &KernelRun, baseline: &KernelRun, context: &str) {
        assert_eq!(fast.capture, baseline.capture, "{context}: capture");
        assert_eq!(fast.poly, baseline.poly, "{context}: poly");
        assert_eq!(fast.shares, baseline.shares, "{context}: shares");
        assert_eq!(
            fast.coefficient_windows, baseline.coefficient_windows,
            "{context}: windows"
        );
        assert_eq!(
            fast.instruction_count, baseline.instruction_count,
            "{context}: instruction count"
        );
    }

    #[test]
    fn fast_path_matches_baseline_for_all_variants() {
        let values = [3i64, -2, 0, 1, -1, 41, -41, 14];
        let iters = [4u32, 6, 4, 8, 4, 6, 4, 10];
        // One shared scratch across every (variant, sigma) combination: the
        // fingerprint check must invalidate the memo at each switch.
        let mut scratch = SamplerScratch::new();
        for variant in [
            KernelVariant::Vulnerable,
            KernelVariant::Branchless,
            KernelVariant::MaskedLadder,
        ] {
            let kernel = SamplerKernel::with_variant(8, &[Q], variant).unwrap();
            for sigma in [0.0, 0.05] {
                let config = PowerModelConfig::default().with_noise_sigma(sigma);
                let context = format!("{variant:?} sigma={sigma}");
                let mut rng = StdRng::seed_from_u64(21);
                let baseline = kernel.run(&values, &iters, &config, &mut rng).unwrap();
                let mut rng = StdRng::seed_from_u64(21);
                let fast = kernel
                    .run_into(&values, &iters, &config, &mut rng, &mut scratch)
                    .unwrap();
                assert_runs_equal(&fast, &baseline, &context);
                assert!(scratch.memo_len() > 0, "{context}: memo populated");
                // Second run on the warm memo: every burst replays from the
                // cache and must still be bit-identical.
                let mut rng = StdRng::seed_from_u64(21);
                let warm = kernel
                    .run_into(&values, &iters, &config, &mut rng, &mut scratch)
                    .unwrap();
                assert_runs_equal(&warm, &baseline, &format!("{context} (warm)"));
            }
        }
    }

    #[test]
    fn fast_path_matches_baseline_multi_modulus() {
        let kernel = SamplerKernel::new(4, &[Q, 12289]).unwrap();
        let values = [-3i64, 2, 0, -1];
        let iters = [4u32, 9, 5, 4];
        let config = PowerModelConfig::default();
        let mut rng = StdRng::seed_from_u64(31);
        let baseline = kernel.run(&values, &iters, &config, &mut rng).unwrap();
        let mut scratch = SamplerScratch::new();
        let mut rng = StdRng::seed_from_u64(31);
        let fast = kernel
            .run_into(&values, &iters, &config, &mut rng, &mut scratch)
            .unwrap();
        assert_runs_equal(&fast, &baseline, "multi-modulus");
    }

    #[test]
    fn fast_path_input_validation_matches() {
        let kernel = SamplerKernel::new(8, &[Q]).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let mut scratch = SamplerScratch::new();
        assert!(matches!(
            kernel.run_into(
                &[0; 4],
                &[1; 8],
                &PowerModelConfig::noiseless(),
                &mut rng,
                &mut scratch
            ),
            Err(KernelError::InputMismatch {
                expected: 8,
                got: 4
            })
        ));
    }

    #[test]
    fn paper_sized_run_completes() {
        let kernel = SamplerKernel::new(1024, &[Q]).unwrap();
        let values: Vec<i64> = (0..1024).map(|i| ((i % 29) as i64) - 14).collect();
        let iters: Vec<u32> = (0..1024).map(|i| 3 + (i % 5) as u32).collect();
        let mut rng = StdRng::seed_from_u64(8);
        let run = kernel
            .run(&values, &iters, &PowerModelConfig::default(), &mut rng)
            .unwrap();
        assert_eq!(run.coefficient_windows.len(), 1024);
        assert_eq!(run.poly.len(), 1024);
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(run.poly[i], v.rem_euclid(Q as i64) as u32);
        }
        assert!(run.capture.len() > 100_000, "trace should be long");
    }
}
