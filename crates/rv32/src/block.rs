//! Basic-block superinstruction compilation with fused power emission.
//!
//! The predecode cache (PR 4) removed instruction-word *parsing* from the
//! hot loop, but every retired instruction still paid the full interpreter
//! round trip: a decode-cache probe, the `step()` match, an [`ExecRecord`]
//! materialization, and a second dispatch inside the power renderer. This
//! module goes one level up: straight-line runs of instructions are
//! discovered at first execution, compiled once into a flat array of
//! [`MicroOp`]s with pre-resolved register indices, immediates, and
//! pre-computed PC-relative values, and then executed by a single tight
//! loop that *also* renders each op's power contribution directly into the
//! caller's [`PowerSink`] — decode once per block, dispatch once per block,
//! no record materialization, no second pass.
//!
//! ## Block discovery
//!
//! [`static_leaders`] computes the classic leader set over the program
//! image (entry, every direct branch/jump target, every instruction after
//! a control transfer) plus caller-supplied extra leaders — the sampler
//! kernel passes its memoization hook PCs so a compiled block can never
//! swallow the PC the burst memo keys on, and `Cfg::basic_blocks` passes
//! resolved indirect-jump targets. Both the interpreter-side compiler and
//! the static analyzer derive block extents from this one helper
//! ([`block_extent`]), so the two can never disagree about where a block
//! begins or ends.
//!
//! ## Invalidation
//!
//! Stores are the only way the image changes. [`run_block`] applies every
//! store through the same bus write + predecode invalidation as
//! [`Cpu::step`]; when a store lands inside the code image it additionally
//! aborts the block *after* that store retires (architectural state and
//! emitted samples are exactly those of the per-step path) and reports the
//! address so [`BlockCache::invalidate`] can drop every compiled block
//! overlapping it — mirroring the predecode cache's slot invalidation.
//!
//! ## Bit-identity
//!
//! Block execution reproduces `step()`'s architectural semantics operation
//! for operation, and emits power through the same
//! `PowerRenderer::emit_record` primitive `render_record` uses, in the same
//! order, drawing noise variates from the same RNG stream. The verbatim
//! `run_reference`/`render_power_reference` pair remains the oracle;
//! `tests/fast_path_equivalence.rs` pins block-path-vs-reference
//! bit-identity over all five sampler variants.

use crate::cpu::{cycle_cost, Cpu, Halt, Mmio};
use crate::isa::{AluOp, BranchCond, Instruction, MemWidth, MulOp, Reg};
use crate::power::{base_level, PowerRenderer, PowerSink};
use rand::Rng;

/// One pre-resolved operation of a compiled block: everything `step()`
/// would re-derive per execution (PC-relative targets, link values, cycle
/// costs, the power-model base level) is computed once at compile time.
#[derive(Debug, Clone)]
pub struct MicroOp {
    /// PC of the original instruction (spans and window bookkeeping).
    pub pc: u32,
    /// Power-model base level of the instruction class.
    base: f64,
    /// Cycle cost when not a taken branch.
    cycles: u32,
    /// Cycle cost when a taken branch (equals `cycles` otherwise).
    cycles_taken: u32,
    kind: OpKind,
}

/// The operation payload with pre-resolved operands.
#[derive(Debug, Clone)]
enum OpKind {
    /// `lui` / any op whose result is a compile-time constant.
    Lui {
        rd: Reg,
        value: u32,
    },
    /// `auipc` with `pc + imm` folded.
    Auipc {
        rd: Reg,
        value: u32,
    },
    /// `jal` with link (`pc + 4`) and target folded.
    Jal {
        rd: Reg,
        link: u32,
        target: u32,
    },
    /// `jalr`: target needs the live register, link is folded.
    Jalr {
        rd: Reg,
        rs1: Reg,
        offset: i32,
        link: u32,
    },
    /// Conditional branch with both arm PCs folded.
    Branch {
        cond: BranchCond,
        rs1: Reg,
        rs2: Reg,
        taken_pc: u32,
        fall_pc: u32,
    },
    Load {
        rd: Reg,
        rs1: Reg,
        offset: i32,
        width: MemWidth,
        signed: bool,
    },
    Store {
        rs1: Reg,
        rs2: Reg,
        offset: i32,
        width: MemWidth,
    },
    AluImm {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        imm: u32,
    },
    AluReg {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    MulDiv {
        op: MulOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    Ecall,
    Ebreak,
}

/// A compiled basic block: a maximal straight-line op run starting at
/// `start`, decoded once.
#[derive(Debug, Clone)]
pub struct CompiledBlock {
    /// Entry PC.
    pub start: u32,
    /// One past the PC of the last instruction.
    pub end: u32,
    /// The superinstruction sequence.
    ops: Vec<MicroOp>,
}

impl CompiledBlock {
    /// Number of operations in the block.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the block holds no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Why block execution stopped before (or at) the block's end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockExit {
    /// All ops retired; `cpu.pc()` points at the successor.
    Completed,
    /// An `ecall`/`ebreak` retired (no samples emitted for it, matching
    /// `step()`), or — never for compiled ops — a decode fault.
    Halted(Halt),
    /// The record budget ran out mid-block.
    OutOfFuel,
    /// A store landed inside the code image: the store itself fully
    /// retired (bus write, predecode invalidation, samples), then the
    /// block aborted. The caller must invalidate overlapping compiled
    /// blocks before dispatching again.
    SelfModified {
        /// Byte address the store wrote.
        addr: u32,
    },
}

/// What one [`run_block`] call did, for the caller's bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockRun {
    /// Operations retired (= records emitted, except a halting
    /// `ecall`/`ebreak` which retires no record).
    pub executed: usize,
    /// Power samples emitted.
    pub samples: usize,
    /// Why the call returned.
    pub exit: BlockExit,
}

/// Classic static leader set of a program image: the load address, every
/// direct branch/jump target, every instruction following a control
/// transfer, plus `extra` (resolved indirect targets, memoization hooks).
/// Sorted and deduplicated; only PCs inside `[base, base + 4·len)` are
/// kept.
pub fn static_leaders(instrs: &[Option<Instruction>], base: u32, extra: &[u32]) -> Vec<u32> {
    let end = base + 4 * instrs.len() as u32;
    let mut leaders: Vec<u32> = Vec::with_capacity(instrs.len() / 4 + extra.len() + 1);
    if !instrs.is_empty() {
        leaders.push(base);
    }
    for (i, instr) in instrs.iter().enumerate() {
        let pc = base + 4 * i as u32;
        match instr {
            Some(Instruction::Jal { offset, .. }) => {
                leaders.push(pc.wrapping_add(*offset as u32));
                leaders.push(pc + 4);
            }
            Some(Instruction::Branch { offset, .. }) => {
                leaders.push(pc.wrapping_add(*offset as u32));
                leaders.push(pc + 4);
            }
            Some(Instruction::Jalr { .. } | Instruction::Ecall | Instruction::Ebreak) => {
                leaders.push(pc + 4);
            }
            _ => {}
        }
    }
    leaders.extend_from_slice(extra);
    leaders.retain(|&pc| pc >= base && pc < end && (pc - base).is_multiple_of(4));
    leaders.sort_unstable();
    leaders.dedup();
    leaders
}

/// The end (one past the last instruction) of the basic block starting at
/// `start`: the block extends while instructions decode, stops *after* a
/// control transfer (`branch`/`jal`/`jalr`/`ecall`/`ebreak`), and stops
/// *before* the next leader or an undecodable word. `leaders` must be
/// sorted (as [`static_leaders`] returns it).
pub fn block_extent(instrs: &[Option<Instruction>], base: u32, start: u32, leaders: &[u32]) -> u32 {
    let mut pc = start;
    loop {
        let index = ((pc - base) / 4) as usize;
        let Some(Some(instr)) = instrs.get(index) else {
            return pc;
        };
        let is_transfer = matches!(
            instr,
            Instruction::Branch { .. }
                | Instruction::Jal { .. }
                | Instruction::Jalr { .. }
                | Instruction::Ecall
                | Instruction::Ebreak
        );
        pc += 4;
        if is_transfer || leaders.binary_search(&pc).is_ok() {
            return pc;
        }
    }
}

/// Compiles the basic block entered at `start` from the current contents
/// of `words` (the code image as loaded at `base`). Returns `None` when
/// the entry word itself does not decode — the caller falls back to
/// `step()`, which faults identically to the per-step path.
pub fn compile_block(
    words: &[u32],
    base: u32,
    start: u32,
    leaders: &[u32],
) -> Option<CompiledBlock> {
    let offset = start.wrapping_sub(base);
    if !offset.is_multiple_of(4) || (offset / 4) as usize >= words.len() {
        return None;
    }
    let mut ops = Vec::new();
    let mut pc = start;
    loop {
        let index = ((pc - base) / 4) as usize;
        let Some(instr) = words.get(index).and_then(|&w| Instruction::decode(w).ok()) else {
            break;
        };
        let kind = match instr {
            Instruction::Lui { rd, imm } => OpKind::Lui {
                rd,
                value: imm as u32,
            },
            Instruction::Auipc { rd, imm } => OpKind::Auipc {
                rd,
                value: pc.wrapping_add(imm as u32),
            },
            Instruction::Jal { rd, offset } => OpKind::Jal {
                rd,
                link: pc.wrapping_add(4),
                target: pc.wrapping_add(offset as u32),
            },
            Instruction::Jalr { rd, rs1, offset } => OpKind::Jalr {
                rd,
                rs1,
                offset,
                link: pc.wrapping_add(4),
            },
            Instruction::Branch {
                cond,
                rs1,
                rs2,
                offset,
            } => OpKind::Branch {
                cond,
                rs1,
                rs2,
                taken_pc: pc.wrapping_add(offset as u32),
                fall_pc: pc.wrapping_add(4),
            },
            Instruction::Load {
                rd,
                rs1,
                offset,
                width,
                signed,
            } => OpKind::Load {
                rd,
                rs1,
                offset,
                width,
                signed,
            },
            Instruction::Store {
                rs1,
                rs2,
                offset,
                width,
            } => OpKind::Store {
                rs1,
                rs2,
                offset,
                width,
            },
            Instruction::AluImm { op, rd, rs1, imm } => OpKind::AluImm {
                op,
                rd,
                rs1,
                imm: imm as u32,
            },
            Instruction::AluReg { op, rd, rs1, rs2 } => OpKind::AluReg { op, rd, rs1, rs2 },
            Instruction::MulDiv { op, rd, rs1, rs2 } => OpKind::MulDiv { op, rd, rs1, rs2 },
            Instruction::Ecall => OpKind::Ecall,
            Instruction::Ebreak => OpKind::Ebreak,
        };
        let is_transfer = matches!(
            kind,
            OpKind::Branch { .. }
                | OpKind::Jal { .. }
                | OpKind::Jalr { .. }
                | OpKind::Ecall
                | OpKind::Ebreak
        );
        ops.push(MicroOp {
            pc,
            base: base_level(&instr),
            cycles: cycle_cost(&instr, false),
            cycles_taken: cycle_cost(&instr, true),
            kind,
        });
        pc += 4;
        if is_transfer || leaders.binary_search(&pc).is_ok() {
            break;
        }
    }
    if ops.is_empty() {
        return None;
    }
    Some(CompiledBlock {
        start,
        end: pc,
        ops,
    })
}

/// Execution and fused-emission statistics of one [`BlockCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockCacheStats {
    /// Blocks compiled (first-execution discoveries plus recompiles after
    /// invalidation).
    pub blocks_compiled: u64,
    /// Dispatches served by an already-compiled block.
    pub dispatch_hits: u64,
    /// Compiled blocks dropped because a store overlapped them.
    pub invalidations: u64,
    /// Power samples emitted by the fused block emit loop.
    pub fused_samples: u64,
}

impl BlockCacheStats {
    /// Component-wise sum (for aggregating per-worker caches).
    pub fn merge(&mut self, other: &BlockCacheStats) {
        self.blocks_compiled += other.blocks_compiled;
        self.dispatch_hits += other.dispatch_hits;
        self.invalidations += other.invalidations;
        self.fused_samples += other.fused_samples;
    }
}

/// A per-program cache of compiled blocks, keyed by entry PC through a
/// dense per-word index (no hashing on the dispatch path).
#[derive(Debug, Clone, Default)]
pub struct BlockCache {
    base: u32,
    /// One slot per code word; the slot of a PC holds the arena index of
    /// the block *entered* at that PC.
    index: Vec<Option<u32>>,
    arena: Vec<CompiledBlock>,
    /// Execution statistics (reset with [`BlockCache::reset`]).
    pub stats: BlockCacheStats,
}

impl BlockCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops all compiled blocks and re-sizes for a `word_count`-word image
    /// at `base`. Statistics survive (they describe the cache's lifetime).
    pub fn reset_program(&mut self, base: u32, word_count: usize) {
        self.base = base;
        self.index.clear();
        self.index.resize(word_count, None);
        self.arena.clear();
    }

    /// Whether the cache is sized for a `word_count`-word image at `base`.
    pub fn covers(&self, base: u32, word_count: usize) -> bool {
        self.base == base && self.index.len() == word_count
    }

    /// Number of live compiled blocks.
    pub fn len(&self) -> usize {
        self.index.iter().filter(|slot| slot.is_some()).count()
    }

    /// Whether no blocks are compiled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn slot_of(&self, pc: u32) -> Option<usize> {
        let offset = pc.wrapping_sub(self.base);
        if offset.is_multiple_of(4) {
            let index = (offset / 4) as usize;
            if index < self.index.len() {
                return Some(index);
            }
        }
        None
    }

    /// The compiled block entered at `pc`, if any.
    pub fn get(&self, pc: u32) -> Option<&CompiledBlock> {
        let slot = self.slot_of(pc)?;
        let arena_index = self.index[slot]?;
        Some(&self.arena[arena_index as usize])
    }

    /// Compiles and caches the block entered at `pc` from `words`.
    pub fn insert(&mut self, words: &[u32], pc: u32, leaders: &[u32]) -> Option<&CompiledBlock> {
        let slot = self.slot_of(pc)?;
        let block = compile_block(words, self.base, pc, leaders)?;
        let arena_index = self.arena.len() as u32;
        self.arena.push(block);
        self.index[slot] = Some(arena_index);
        self.stats.blocks_compiled += 1;
        Some(&self.arena[arena_index as usize])
    }

    /// The byte range of the code image this cache covers.
    pub fn image_range(&self) -> std::ops::Range<u32> {
        self.base..self.base + 4 * self.index.len() as u32
    }

    /// Drops every compiled block whose `[start, end)` range overlaps the
    /// words a store to `addr` may have written — the block-level mirror of
    /// the predecode cache's slot invalidation.
    pub fn invalidate(&mut self, addr: u32) {
        for word_addr in [addr & !3, addr.wrapping_add(3) & !3] {
            for slot in 0..self.index.len() {
                if let Some(arena_index) = self.index[slot] {
                    let block = &self.arena[arena_index as usize];
                    if word_addr >= block.start && word_addr < block.end {
                        self.index[slot] = None;
                        self.stats.invalidations += 1;
                    }
                }
            }
        }
    }
}

/// Executes `block` on `cpu`, rendering each op's power through
/// `renderer` into `sink` as it retires (record indices start at
/// `record_index`; at most `fuel - record_index` ops retire). `image` is
/// the code image's byte range: a store landing inside it retires fully
/// and then aborts the block with [`BlockExit::SelfModified`].
///
/// Architectural semantics, sample values, and RNG draw order are
/// bit-identical to stepping the same instructions through [`Cpu::step`]
/// and rendering each [`ExecRecord`](crate::cpu::ExecRecord) with
/// `PowerRenderer::render_record`.
#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
pub fn run_block<M: Mmio, R: Rng + ?Sized, S: PowerSink>(
    cpu: &mut Cpu<M>,
    block: &CompiledBlock,
    renderer: &PowerRenderer,
    rng: &mut R,
    sink: &mut S,
    record_index: usize,
    fuel: usize,
    image: &std::ops::Range<u32>,
) -> BlockRun {
    let config = renderer.config();
    let (alpha_hw, beta_hd) = (config.alpha_hw, config.beta_hd);
    let (gamma_mem, delta_addr) = (config.gamma_mem, config.delta_addr);
    let epsilon_flush = config.epsilon_flush;
    let mut executed = 0usize;
    let mut samples = 0usize;
    for op in &block.ops {
        if record_index + executed >= fuel {
            return BlockRun {
                executed,
                samples,
                exit: BlockExit::OutOfFuel,
            };
        }
        // Mirrors `step()` + `PowerRenderer::data_term` exactly: register
        // terms first, then memory terms, then the flush term, each added
        // in the same order so the f64 sums are bit-identical.
        let mut data_term = 0.0;
        let mut cycles = op.cycles;
        let mut next_pc = op.pc.wrapping_add(4);
        let mut store_addr = None;
        match op.kind {
            OpKind::Lui { rd, value } | OpKind::Auipc { rd, value } => {
                if rd != Reg::ZERO {
                    let old = cpu.reg(rd);
                    cpu.set_reg(rd, value);
                    data_term += alpha_hw * renderer.leakage(value);
                    data_term += beta_hd * f64::from((old ^ value).count_ones());
                }
            }
            OpKind::Jal { rd, link, target } => {
                if rd != Reg::ZERO {
                    let old = cpu.reg(rd);
                    cpu.set_reg(rd, link);
                    data_term += alpha_hw * renderer.leakage(link);
                    data_term += beta_hd * f64::from((old ^ link).count_ones());
                }
                next_pc = target;
            }
            OpKind::Jalr {
                rd,
                rs1,
                offset,
                link,
            } => {
                let target = cpu.reg(rs1).wrapping_add(offset as u32) & !1;
                if rd != Reg::ZERO {
                    let old = cpu.reg(rd);
                    cpu.set_reg(rd, link);
                    data_term += alpha_hw * renderer.leakage(link);
                    data_term += beta_hd * f64::from((old ^ link).count_ones());
                }
                next_pc = target;
            }
            OpKind::Branch {
                cond,
                rs1,
                rs2,
                taken_pc,
                fall_pc,
            } => {
                let a = cpu.reg(rs1);
                let b = cpu.reg(rs2);
                let taken = match cond {
                    BranchCond::Eq => a == b,
                    BranchCond::Ne => a != b,
                    BranchCond::Lt => (a as i32) < (b as i32),
                    BranchCond::Ge => (a as i32) >= (b as i32),
                    BranchCond::Ltu => a < b,
                    BranchCond::Geu => a >= b,
                };
                if taken {
                    next_pc = taken_pc;
                    cycles = op.cycles_taken;
                    data_term += epsilon_flush;
                } else {
                    next_pc = fall_pc;
                }
            }
            OpKind::Load {
                rd,
                rs1,
                offset,
                width,
                signed,
            } => {
                let addr = cpu.reg(rs1).wrapping_add(offset as u32);
                let value = cpu.bus.read_width(addr, width, signed);
                if rd != Reg::ZERO {
                    let old = cpu.reg(rd);
                    cpu.set_reg(rd, value);
                    data_term += alpha_hw * renderer.leakage(value);
                    data_term += beta_hd * f64::from((old ^ value).count_ones());
                }
                data_term += gamma_mem * renderer.leakage(value);
                data_term += delta_addr * f64::from(addr.count_ones());
            }
            OpKind::Store {
                rs1,
                rs2,
                offset,
                width,
            } => {
                let addr = cpu.reg(rs1).wrapping_add(offset as u32);
                let value = cpu.reg(rs2);
                cpu.bus.write_width(addr, value, width);
                cpu.invalidate_predecoded(addr);
                store_addr = Some(addr);
                data_term += gamma_mem * renderer.leakage(value);
                data_term += delta_addr * f64::from(addr.count_ones());
            }
            OpKind::AluImm {
                op: alu,
                rd,
                rs1,
                imm,
            } => {
                if rd != Reg::ZERO {
                    let value = crate::cpu::alu(alu, cpu.reg(rs1), imm);
                    let old = cpu.reg(rd);
                    cpu.set_reg(rd, value);
                    data_term += alpha_hw * renderer.leakage(value);
                    data_term += beta_hd * f64::from((old ^ value).count_ones());
                }
            }
            OpKind::AluReg {
                op: alu,
                rd,
                rs1,
                rs2,
            } => {
                if rd != Reg::ZERO {
                    let value = crate::cpu::alu(alu, cpu.reg(rs1), cpu.reg(rs2));
                    let old = cpu.reg(rd);
                    cpu.set_reg(rd, value);
                    data_term += alpha_hw * renderer.leakage(value);
                    data_term += beta_hd * f64::from((old ^ value).count_ones());
                }
            }
            OpKind::MulDiv {
                op: mop,
                rd,
                rs1,
                rs2,
            } => {
                if rd != Reg::ZERO {
                    let value = crate::cpu::muldiv(mop, cpu.reg(rs1), cpu.reg(rs2));
                    let old = cpu.reg(rd);
                    cpu.set_reg(rd, value);
                    data_term += alpha_hw * renderer.leakage(value);
                    data_term += beta_hd * f64::from((old ^ value).count_ones());
                }
            }
            OpKind::Ecall => {
                return BlockRun {
                    executed,
                    samples,
                    exit: BlockExit::Halted(Halt::Ecall),
                };
            }
            OpKind::Ebreak => {
                return BlockRun {
                    executed,
                    samples,
                    exit: BlockExit::Halted(Halt::Ebreak),
                };
            }
        }
        cpu.add_cycles(u64::from(cycles));
        cpu.set_pc(next_pc);
        samples += renderer.emit_record(
            record_index + executed,
            op.pc,
            op.base,
            cycles,
            data_term,
            rng,
            sink,
        );
        executed += 1;
        if let Some(addr) = store_addr {
            // A store into the code image may have rewritten ops later in
            // *this* block. Abort after the store so the caller can drop
            // stale blocks and re-dispatch from fresh memory.
            let w0 = addr & !3;
            let w1 = addr.wrapping_add(3) & !3;
            if image.contains(&w0) || image.contains(&w1) {
                return BlockRun {
                    executed,
                    samples,
                    exit: BlockExit::SelfModified { addr },
                };
            }
        }
    }
    BlockRun {
        executed,
        samples,
        exit: BlockExit::Completed,
    }
}
