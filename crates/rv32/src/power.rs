//! Instruction-level power model.
//!
//! This replaces the paper's shunt-resistor measurement chain (SAKURA-G +
//! PicoScope at 1 GS/s over a 1.5 MHz core). Each simulated cycle produces
//! one sample composed of:
//!
//! - a **base** level per instruction class (multiplies burn the most — that
//!   is what makes the distribution call visible as the Fig. 3 peaks),
//! - **Hamming-weight** leakage of the value written to the register file
//!   and of store/load data (the classic CMOS data-dependent term),
//! - **Hamming-distance** leakage between the old and new register value,
//! - a small address-weight term, a branch-flush term, and
//! - additive Gaussian measurement noise.
//!
//! The weights and the noise σ are knobs so the ablation benches can sweep
//! SNR — something a physical bench cannot do cheaply.

use crate::cpu::ExecRecord;
use crate::isa::Instruction;
use rand::Rng;
use rand_distr_normal::{sample_standard_normal, sample_ziggurat};

/// Which exact standard-normal sampler draws the additive noise.
///
/// Both methods are *exact* — the output is distributed N(0,1), not an
/// approximation — but they consume the RNG stream differently, so swapping
/// them produces a statistically equivalent yet bit-different trace. The
/// default stays [`NoiseSampler::MarsagliaPolar`] because every pinned
/// artifact in the tree (recovered coefficients, the 386.06/242.02 bikz
/// pair in `BENCH_pipeline.json`, the `par_determinism` end-to-end pin)
/// depends bit-for-bit on the historical noise-draw sequence.
/// [`NoiseSampler::Ziggurat`] is roughly 6× cheaper per variate — noise is
/// about half of profiling cost, one variate per power sample — and is the
/// right choice for large generated corpora (serve load tests, scenario
/// sweeps) where statistical equivalence suffices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NoiseSampler {
    /// Marsaglia polar: the historical stream every pinned output assumes.
    #[default]
    MarsagliaPolar,
    /// 256-layer Marsaglia–Tsang ziggurat: ~98.8% of draws accept on one
    /// `u64` without touching `exp`/`ln`; different stream, same law.
    Ziggurat,
}

impl NoiseSampler {
    /// Draws one standard normal variate.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        match self {
            Self::MarsagliaPolar => sample_standard_normal(rng),
            Self::Ziggurat => sample_ziggurat(rng),
        }
    }
}

/// Weights of the leakage components.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModelConfig {
    /// Weight of `HW(new register value)`.
    pub alpha_hw: f64,
    /// Weight of `HD(old, new register value)`.
    pub beta_hd: f64,
    /// Weight of `HW(memory data)` on loads/stores.
    pub gamma_mem: f64,
    /// Weight of `HW(memory address)`.
    pub delta_addr: f64,
    /// Extra level on taken branches (pipeline flush).
    pub epsilon_flush: f64,
    /// Relative imbalance of the per-bit leakage weights (Schindler-style
    /// stochastic model): 0 gives the pure Hamming-weight model, larger
    /// values make individual bus lines leak unequally — which is what real
    /// measurements show, and what lets a template attack separate values
    /// with equal Hamming weight (cf. the near-certain probabilities of
    /// Table II in the paper).
    pub bit_weight_variation: f64,
    /// Standard deviation of the additive Gaussian noise.
    pub noise_sigma: f64,
    /// Samples emitted per simulated cycle.
    pub samples_per_cycle: usize,
    /// Which exact N(0,1) sampler draws the noise (see [`NoiseSampler`]).
    pub noise_sampler: NoiseSampler,
}

impl Default for PowerModelConfig {
    fn default() -> Self {
        Self {
            alpha_hw: 0.09,
            beta_hd: 0.02,
            gamma_mem: 0.09,
            delta_addr: 0.004,
            epsilon_flush: 0.35,
            bit_weight_variation: 0.8,
            noise_sigma: 0.05,
            samples_per_cycle: 1,
            noise_sampler: NoiseSampler::MarsagliaPolar,
        }
    }
}

/// The device's fixed per-bit weight profile: weight of bit `b` relative to
/// the uniform model, deterministic (a physical property of the bus lines).
#[inline]
fn bit_weight(b: u32, variation: f64) -> f64 {
    1.0 + variation * (2.3 * b as f64 + 1.7).sin()
}

/// Weighted bit-line leakage of a 32-bit word: reduces to `HW(word)` when
/// `variation = 0`.
pub fn weighted_bit_leakage(word: u32, variation: f64) -> f64 {
    if variation == 0.0 {
        return word.count_ones() as f64;
    }
    let mut acc = 0.0;
    let mut w = word;
    while w != 0 {
        let b = w.trailing_zeros();
        acc += bit_weight(b, variation);
        w &= w - 1;
    }
    acc
}

impl PowerModelConfig {
    /// A noiseless configuration (useful for deterministic tests).
    pub fn noiseless() -> Self {
        Self {
            noise_sigma: 0.0,
            ..Self::default()
        }
    }

    /// Returns a copy with a different noise σ.
    pub fn with_noise_sigma(mut self, sigma: f64) -> Self {
        self.noise_sigma = sigma;
        self
    }

    /// Returns a copy with a different noise sampler.
    pub fn with_noise_sampler(mut self, sampler: NoiseSampler) -> Self {
        self.noise_sampler = sampler;
        self
    }
}

/// Base power level of an instruction class, in arbitrary units.
///
/// Public so static analyses (`reveal-lint`'s leakage scoring) can weight
/// instructions exactly as the renderer does.
pub fn base_level(instr: &Instruction) -> f64 {
    match instr {
        Instruction::MulDiv { .. } => 3.0,
        Instruction::Load { .. } => 2.0,
        Instruction::Store { .. } => 2.2,
        Instruction::Jal { .. } | Instruction::Jalr { .. } => 1.5,
        Instruction::Branch { .. } => 1.2,
        Instruction::Lui { .. } | Instruction::Auipc { .. } => 1.0,
        Instruction::AluImm { .. } | Instruction::AluReg { .. } => 1.0,
        Instruction::Ecall | Instruction::Ebreak => 0.8,
    }
}

/// Per-instruction sample annotation: which record produced which samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleSpan {
    /// Index into the record list.
    pub record_index: usize,
    /// First sample of this instruction.
    pub start: usize,
    /// One past the last sample.
    pub end: usize,
    /// Program counter (for locating kernel regions in tests).
    pub pc: u32,
}

/// A simulated power capture: samples plus per-instruction annotations.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerCapture {
    /// The trace samples.
    pub samples: Vec<f64>,
    /// One span per executed instruction.
    pub spans: Vec<SampleSpan>,
}

impl PowerCapture {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the capture is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The sample range covered by instructions with `pc` in `[lo, hi)`.
    pub fn span_of_pc_range(&self, lo: u32, hi: u32) -> Option<(usize, usize)> {
        let mut start = None;
        let mut end = None;
        for s in &self.spans {
            if s.pc >= lo && s.pc < hi {
                start = Some(start.unwrap_or(s.start).min(s.start));
                end = Some(end.unwrap_or(s.end).max(s.end));
            }
        }
        Some((start?, end?))
    }
}

/// Receives power samples as they are produced, one record at a time.
///
/// A sink sees the exact sample stream that [`render_power`] would produce:
/// `begin_record` / `end_record` bracket the samples of one executed
/// instruction, in execution order. Implementations that do not need span
/// bookkeeping can ignore the bracketing calls.
pub trait PowerSink {
    /// Called before the samples of one record are pushed.
    fn begin_record(&mut self, record_index: usize, pc: u32);
    /// One power sample.
    fn push_sample(&mut self, sample: f64);
    /// A block of consecutive samples. Equivalent to pushing each sample in
    /// order; buffer-backed sinks override this with a bulk copy so the
    /// noiseless replay path is a `memcpy` instead of a per-sample loop.
    fn push_samples(&mut self, samples: &[f64]) {
        for &s in samples {
            self.push_sample(s);
        }
    }
    /// `count` copies of `value`. Equivalent to pushing `value` repeatedly;
    /// buffer-backed sinks override this with a vectorizable fill, which is
    /// the shape of every noiseless record body (constant base level).
    fn push_fill(&mut self, value: f64, count: usize) {
        for _ in 0..count {
            self.push_sample(value);
        }
    }
    /// Called after the samples of the current record are pushed.
    fn end_record(&mut self);
}

/// A reusable sample buffer implementing [`PowerSink`].
///
/// The streaming fast path renders each run into a caller-owned
/// `TraceBuffer`, so back-to-back runs reuse one allocation instead of
/// growing a fresh `Vec<ExecRecord>` plus a fresh sample vector per run.
#[derive(Debug, Clone, Default)]
pub struct TraceBuffer {
    samples: Vec<f64>,
    spans: Vec<SampleSpan>,
    record_spans: bool,
    pending: Option<(usize, usize, u32)>,
}

impl TraceBuffer {
    /// A buffer that records per-instruction [`SampleSpan`]s.
    pub fn new() -> Self {
        Self {
            record_spans: true,
            ..Self::default()
        }
    }

    /// A buffer that keeps only samples (no span bookkeeping).
    pub fn samples_only() -> Self {
        Self::default()
    }

    /// Clears contents while keeping the allocations.
    pub fn clear(&mut self) {
        self.samples.clear();
        self.spans.clear();
        self.pending = None;
    }

    /// The samples accumulated so far.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// The spans accumulated so far (empty for [`Self::samples_only`]).
    pub fn spans(&self) -> &[SampleSpan] {
        &self.spans
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been pushed.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Copies the contents into an owned [`PowerCapture`].
    pub fn to_capture(&self) -> PowerCapture {
        PowerCapture {
            samples: self.samples.clone(),
            spans: self.spans.clone(),
        }
    }

    /// Consumes the buffer into a [`PowerCapture`] without copying.
    pub fn into_capture(self) -> PowerCapture {
        PowerCapture {
            samples: self.samples,
            spans: self.spans,
        }
    }
}

impl PowerSink for TraceBuffer {
    fn begin_record(&mut self, record_index: usize, pc: u32) {
        if self.record_spans {
            self.pending = Some((record_index, self.samples.len(), pc));
        }
    }

    fn push_sample(&mut self, sample: f64) {
        self.samples.push(sample);
    }

    fn push_samples(&mut self, samples: &[f64]) {
        self.samples.extend_from_slice(samples);
    }

    fn push_fill(&mut self, value: f64, count: usize) {
        self.samples.resize(self.samples.len() + count, value);
    }

    fn end_record(&mut self) {
        if let Some((record_index, start, pc)) = self.pending.take() {
            self.spans.push(SampleSpan {
                record_index,
                start,
                end: self.samples.len(),
                pc,
            });
        }
    }
}

/// Streaming power-model renderer with a precomputed per-bit weight table.
///
/// [`render_power`] recomputes `sin(2.3 b + 1.7)` for every set bit of every
/// leaked word — roughly one `sin` per set data bit per executed instruction,
/// which dominates `profile_collect`. The renderer evaluates [`bit_weight`]
/// once per bit position at construction; the lookups then produce the exact
/// same floating-point sums (same per-bit values, same ascending-bit
/// accumulation order), so traces stay bit-identical to the slow path.
#[derive(Debug, Clone)]
pub struct PowerRenderer {
    config: PowerModelConfig,
    bit_weights: [f64; 32],
}

impl PowerRenderer {
    /// Builds a renderer for `config`.
    pub fn new(config: &PowerModelConfig) -> Self {
        let mut bit_weights = [0.0; 32];
        for (b, w) in bit_weights.iter_mut().enumerate() {
            *w = bit_weight(b as u32, config.bit_weight_variation);
        }
        Self {
            config: *config,
            bit_weights,
        }
    }

    /// The configuration this renderer was built from.
    pub fn config(&self) -> &PowerModelConfig {
        &self.config
    }

    /// The precomputed per-bit weight table (bit 0 first) — the same weights
    /// [`PowerRenderer::leakage`] sums, exposed so static analyses can bound
    /// data-dependent power without re-deriving the device profile.
    pub fn bit_weights(&self) -> &[f64; 32] {
        &self.bit_weights
    }

    /// Table-driven [`weighted_bit_leakage`]: bit-identical, no `sin` calls.
    #[inline]
    pub fn leakage(&self, word: u32) -> f64 {
        if self.config.bit_weight_variation == 0.0 {
            return word.count_ones() as f64;
        }
        let mut acc = 0.0;
        let mut w = word;
        while w != 0 {
            acc += self.bit_weights[w.trailing_zeros() as usize];
            w &= w - 1;
        }
        acc
    }

    /// The data-dependent term of one record (lands on the final cycle).
    #[inline]
    pub fn data_term(&self, record: &ExecRecord) -> f64 {
        let config = &self.config;
        let mut data_term = 0.0;
        if let Some((_, old, new)) = record.reg_write {
            data_term += config.alpha_hw * self.leakage(new);
            data_term += config.beta_hd * (old ^ new).count_ones() as f64;
        }
        if let Some((addr, data, _is_write)) = record.mem_access {
            data_term += config.gamma_mem * self.leakage(data);
            data_term += config.delta_addr * addr.count_ones() as f64;
        }
        if record.branch_taken == Some(true) {
            data_term += config.epsilon_flush;
        }
        data_term
    }

    /// Renders one record into `sink`, drawing noise from `rng`.
    ///
    /// Feeding records of a run in execution order with consecutive
    /// `record_index` values reproduces [`render_power`] exactly, including
    /// the order in which noise variates are drawn.
    pub fn render_record<R: Rng + ?Sized, S: PowerSink>(
        &self,
        record_index: usize,
        record: &ExecRecord,
        rng: &mut R,
        sink: &mut S,
    ) {
        let base = base_level(&record.instruction);
        let data_term = self.data_term(record);
        self.emit_record(
            record_index,
            record.pc,
            base,
            record.cycles,
            data_term,
            rng,
            sink,
        );
    }

    /// Emits the samples of one retired instruction from its already-derived
    /// power inputs, returning the sample count.
    ///
    /// This is the single emission primitive: [`PowerRenderer::render_record`]
    /// feeds it from an [`ExecRecord`], and the basic-block superinstruction
    /// path (`block::run_block`) feeds it straight from block execution
    /// without materializing a record — both therefore produce the exact same
    /// sample stream and noise-draw order by construction.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn emit_record<R: Rng + ?Sized, S: PowerSink>(
        &self,
        record_index: usize,
        pc: u32,
        base: f64,
        cycles: u32,
        data_term: f64,
        rng: &mut R,
        sink: &mut S,
    ) -> usize {
        let config = &self.config;
        let total = cycles as usize * config.samples_per_cycle;
        // The per-sample branch `k + samples_per_cycle >= total` splits the
        // record into a constant body (`base`) and a final-cycle tail
        // (`base + data_term`); emitting the two blocks directly is
        // bit-identical and — noiselessly — a pure fill.
        let body = total.saturating_sub(config.samples_per_cycle);
        let tail_level = base + data_term;
        sink.begin_record(record_index, pc);
        if config.noise_sigma > 0.0 {
            let draw = config.noise_sampler;
            for _ in 0..body {
                sink.push_sample(base + config.noise_sigma * draw.sample(rng));
            }
            for _ in body..total {
                sink.push_sample(tail_level + config.noise_sigma * draw.sample(rng));
            }
        } else {
            sink.push_fill(base, body);
            sink.push_fill(tail_level, total - body);
        }
        sink.end_record();
        total
    }

    /// Renders the noiseless samples of one record into `out`.
    ///
    /// Used to build memoized sub-trace templates: the full sample is
    /// `noiseless + noise_sigma * z`, which associates identically to the
    /// `(base + data_term) + noise_sigma * z` of the direct path.
    pub fn render_record_noiseless(&self, record: &ExecRecord, out: &mut Vec<f64>) {
        let config = &self.config;
        let base = base_level(&record.instruction);
        let total = record.cycles as usize * config.samples_per_cycle;
        let data_term = self.data_term(record);
        // Two fills, not a per-sample loop: the body is constant `base`, the
        // final cycle is constant `base + data_term` (see `render_record`).
        let body = total.saturating_sub(config.samples_per_cycle);
        out.reserve(total);
        out.resize(out.len() + body, base);
        out.resize(out.len() + (total - body), base + data_term);
    }

    /// Overlays fresh noise on precomputed noiseless samples of one record.
    pub fn replay_noiseless<R: Rng + ?Sized, S: PowerSink>(
        &self,
        record_index: usize,
        pc: u32,
        noiseless: &[f64],
        rng: &mut R,
        sink: &mut S,
    ) {
        let sigma = self.config.noise_sigma;
        let draw = self.config.noise_sampler;
        sink.begin_record(record_index, pc);
        if sigma > 0.0 {
            for &p in noiseless {
                sink.push_sample(p + sigma * draw.sample(rng));
            }
        } else {
            sink.push_samples(noiseless);
        }
        sink.end_record();
    }
}

/// Renders execution records into a power trace.
///
/// # Examples
///
/// ```
/// use reveal_rv32::asm::assemble;
/// use reveal_rv32::cpu::{Bus, Cpu, QueueMmio};
/// use reveal_rv32::power::{render_power, PowerModelConfig};
/// use rand::SeedableRng;
///
/// let program = assemble("li t0, 3\nmul t1, t0, t0\nebreak", 0)?;
/// let mut bus = Bus::new(4096, QueueMmio::new());
/// bus.load_words(0, &program.words);
/// let mut cpu = Cpu::new(bus);
/// let (records, _halt) = cpu.run(100);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let capture = render_power(&records, &PowerModelConfig::default(), &mut rng);
/// assert!(!capture.is_empty());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn render_power<R: Rng + ?Sized>(
    records: &[ExecRecord],
    config: &PowerModelConfig,
    rng: &mut R,
) -> PowerCapture {
    let renderer = PowerRenderer::new(config);
    let mut buffer = TraceBuffer::new();
    for (record_index, record) in records.iter().enumerate() {
        renderer.render_record(record_index, record, rng, &mut buffer);
    }
    buffer.into_capture()
}

/// The pre-fast-path renderer, kept verbatim as the benchmark reference: it
/// recomputes [`weighted_bit_leakage`] — one `sin` per set bit — for every
/// record instead of using [`PowerRenderer`]'s lookup table. Produces the
/// exact same capture as [`render_power`]; exists so `bench_pipeline` can
/// report the fast path's speedup against the implementation it replaced.
pub fn render_power_reference<R: Rng + ?Sized>(
    records: &[ExecRecord],
    config: &PowerModelConfig,
    rng: &mut R,
) -> PowerCapture {
    let mut buffer = TraceBuffer::new();
    for (record_index, record) in records.iter().enumerate() {
        let base = base_level(&record.instruction);
        let total = record.cycles as usize * config.samples_per_cycle;
        let mut data_term = 0.0;
        if let Some((_, old, new)) = record.reg_write {
            data_term += config.alpha_hw * weighted_bit_leakage(new, config.bit_weight_variation);
            data_term += config.beta_hd * (old ^ new).count_ones() as f64;
        }
        if let Some((addr, data, _is_write)) = record.mem_access {
            data_term += config.gamma_mem * weighted_bit_leakage(data, config.bit_weight_variation);
            data_term += config.delta_addr * addr.count_ones() as f64;
        }
        if record.branch_taken == Some(true) {
            data_term += config.epsilon_flush;
        }
        buffer.begin_record(record_index, record.pc);
        for k in 0..total {
            let mut p = base;
            if k + config.samples_per_cycle >= total {
                p += data_term;
            }
            if config.noise_sigma > 0.0 {
                p += config.noise_sigma * config.noise_sampler.sample(rng);
            }
            buffer.push_sample(p);
        }
        buffer.end_record();
    }
    buffer.into_capture()
}

/// Minimal standard-normal sampling, local so the crate needs no extra
/// dependency: the Marsaglia polar method (the default, historical stream)
/// and a 256-layer Marsaglia–Tsang ziggurat (~6× faster, different stream).
/// [`NoiseSampler`] selects between them per configuration.
mod rand_distr_normal {
    use rand::Rng;

    /// Draws one standard normal variate (Marsaglia polar).
    pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        loop {
            let u: f64 = rng.gen_range(-1.0..1.0);
            let v: f64 = rng.gen_range(-1.0..1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// Rightmost layer edge: x-coordinate where the tail algorithm takes
    /// over (the canonical r for 256 layers; the digits beyond f64
    /// precision document the mathematical constant).
    #[allow(clippy::excessive_precision)]
    const ZIG_R: f64 = 3.654_152_885_361_008_772;
    /// Common area of every layer (and of the base strip + tail). Only the
    /// recurrence test consumes it directly — the sampling loop bakes it
    /// into the `ZIG_X` literals.
    #[cfg_attr(not(test), allow(dead_code))]
    #[allow(clippy::excessive_precision)]
    const ZIG_V: f64 = 0.004_928_673_233_997_087_43;

    /// Unnormalized standard-normal density `exp(-x²/2)`.
    #[inline]
    fn pdf(x: f64) -> f64 {
        (-0.5 * x * x).exp()
    }

    // Layer geometry, precomputed: `ZIG_X[i]` is the right edge of layer
    // `i` (descending; `ZIG_X[0] = V/pdf(R)` spans the base strip + tail,
    // `ZIG_X[256] = 0` is the peak), `ZIG_F[i] = pdf(ZIG_X[i])`. The
    // values are literals rather than runtime-built so the sampled stream
    // cannot vary with a platform's `exp`/`ln`/`sqrt` rounding during
    // table construction; `zig_tables_satisfy_the_layer_recurrence` pins
    // them against the defining recurrence.
    #[rustfmt::skip]
    static ZIG_X: [f64; 257] = [
    3.9107579595427135, 3.654152885361009, 3.449278298560749, 3.3202447338388614,
    3.224575052046672, 3.147889289516757, 3.0835261320008125, 3.0278377917681927,
    2.9786032798803834, 2.934366867207377, 2.8941210536118565, 2.857138730871628,
    2.8228773968248086, 2.7909211740002586, 2.760944005278285, 2.73268535904228,
    2.705933656121302, 2.6805146432839573, 2.656283037574929, 2.6331163936297433,
    2.6109105184869597, 2.5895759867063988, 2.569035452679933, 2.54922155032285,
    2.530075232157899, 2.511544441624718, 2.4935830412690496, 2.4761499396685056,
    2.4592083743326674, 2.4427253181983066, 2.4266709849350696, 2.4110184138990234,
    2.3957431197798122, 2.3808227951699514, 2.3662370567151383, 2.351967227376974,
    2.3379961487943395, 2.3243080188689254, 2.310888250599147, 2.2977233489006212,
    2.2848008027222324, 2.2721089902261045, 2.259637095171493, 2.2473750329450772,
    2.235313384927592, 2.2234433400901645, 2.211756642881798, 2.200245546608896,
    2.1889027716239635, 2.177721467737879, 2.1666951803518777, 2.1558178198742897,
    2.1450836340454242, 2.1344871828435354, 2.1240233156870256, 2.1136871506841386,
    2.103474055712346, 2.0933796311362443, 2.0833996939957404, 2.0735302635161625,
    2.063767547809135, 2.0541079316480384, 2.044547965214901, 2.035084353726972,
    2.0257139478611905, 2.016433734903524, 2.0072408305578318, 1.998132471355706,
    1.9891060076147078, 1.9801588968977295, 1.9712886979308955, 1.9624930649415824,
    1.9537697423818492, 1.9451165600058637, 1.9365314282728632, 1.9280123340498172,
    1.9195573365903225, 1.9111645637683707, 1.9028322085475293, 1.8945585256677875,
    1.8863418285338482, 1.8781804862900437, 1.8700729210682974, 1.8620176053966873,
    1.8540130597571975, 1.8460578502821634, 1.8381505865797667, 1.8302899196796991,
    1.82247454009081, 1.8147031759631886, 1.8069745913477087, 1.7992875845465897,
    1.7916409865490135, 1.784033659546274, 1.776464495521337, 1.7689324149080639,
    1.7614363653156866, 1.7539753203144288, 1.7465482782784607, 1.7391542612826307,
    1.731792314049663, 1.7244615029447254, 1.717160915014484, 1.709889657067943,
    1.7026468547965445, 1.695431651931163, 1.6882432094337765, 1.6810807047217347,
    1.6739433309226652, 1.6668302961581851, 1.6597408228546815, 1.652674147079534,
    1.6456295179012395, 1.6386061967719836, 1.631603456931288, 1.6246205828294276,
    1.6176568695693865, 1.610711622366179, 1.6037841560224213, 1.5968737944190925,
    1.5899798700204724, 1.583101723392288, 1.576238702732142, 1.569390163411336,
    1.5625554675272337, 1.5557339834653416, 1.5489250854703147, 1.542128153225119,
    1.5353425714376068, 1.5285677294337803, 1.5218030207570408, 1.515047842772732,
    1.5083015962773034, 1.50156368511143, 1.4948335157764336, 1.4881104970533612,
    1.4813940396240743, 1.4746835556937155, 1.467978458613912, 1.4612781625060802,
    1.454582081884187, 1.4478896312763245, 1.441200224844444, 1.4345132760015833,
    1.4278281970259177, 1.4211443986709411, 1.414461289771073, 1.4077782768419702,
    1.4010947636747915, 1.3944101509236502, 1.3877238356854535, 1.3810352110713007,
    1.3743436657685788, 1.3676485835928558, 1.360949343028629, 1.354245316757947,
    1.3475358711758647, 1.3408203658916464, 1.334098153214567, 1.3273685776230968,
    1.3206309752161907, 1.3138846731453175, 1.3071289890257904, 1.300363230325858,
    1.2935866937319296, 1.286798664488186, 1.2799984157087199, 1.2731852076602173,
    1.2663582870130488, 1.259516886058491, 1.252660221889631, 1.2457874955433172,
    1.2388978911003325, 1.2319905747407358, 1.2250646937510843, 1.2181193754799882,
    1.2111537262381575, 1.204166830138791, 1.197157747873801, 1.1901255154210004,
    1.183069142676943, 1.1759876120096553, 1.1688798767249822, 1.1617448594397053,
    1.154581450353965, 1.147388505414829, 1.1401648443620722, 1.1329092486463945,
    1.1256204592093324, 1.1182971741130807, 1.1109380460072469, 1.1035416794182447,
    1.0961066278455587, 1.0886313906474478, 1.0811144096968008, 1.07355406578576,
    1.065948674755371, 1.0582964833238464, 1.050595664584022, 1.0428443131371596,
    1.035040439826368, 1.0271819660284867, 1.0192667174582366, 1.0112924174326567,
    1.00325667953724, 0.995156999627561, 0.9869907470914324, 0.9787551552864913,
    0.9704473110563842, 0.9620641432150898, 0.953602409873021, 0.9450586844599821,
    0.9364293402782691, 0.9277105333935668, 0.918898183641025, 0.9099879534880155,
    0.900975224452376, 0.8918550707239469, 0.8826222295760155, 0.8732710680795487,
    0.8637955455438274, 0.8541891709985052, 0.8444449548993097, 0.834555354076343,
    0.8245122087420481, 0.8143066701247557, 0.8039291169792843, 0.7933690588296962,
    0.7826150232960517, 0.771654424213117, 0.7604734064183701, 0.7490566620057719,
    0.7373872114219255, 0.7254461408972799, 0.7132122851778803, 0.7006618410933138,
    0.6877678927818479, 0.6744998228228759, 0.6608225742294804, 0.6466957148794825,
    0.6320722363699186, 0.6168969899909077, 0.6011046177383644, 0.5846167660878666,
    0.567338257034299, 0.5491517023064861, 0.5299097206395268, 0.5094233295784585,
    0.4874439661136673, 0.4636343367629188, 0.4375184021768515, 0.40838913457690307,
    0.37512133283755245, 0.33573751916474714, 0.2861745917265311, 0.21524189588014922,
    0.0,
    ];
    #[rustfmt::skip]
    static ZIG_F: [f64; 257] = [
    0.00047746776457615475, 0.001260285930498598, 0.0026090727461083024, 0.004037972593375956,
    0.005522403299271111, 0.007050875471400833, 0.008616582769434092, 0.0102149714397448,
    0.011842757857959378, 0.013497450601799712, 0.015177088308003666, 0.016880083152620174,
    0.018605121275810474, 0.020351096230139296, 0.022117062707412736, 0.02390220330590898,
    0.02570580400867133, 0.027527235669735004, 0.02936593975827483, 0.03122141719207147,
    0.033093219458739574, 0.0349809414618871, 0.036884215688748334, 0.03880270740471732,
    0.04073611065614243, 0.04268414491668631, 0.04464655225151678, 0.04662309490216329,
    0.04861355321611213, 0.050617723861202175, 0.05263541827705749, 0.05466646132516519,
    0.05671069010649028, 0.05876795292123236, 0.06083810834984975, 0.0629210244380794,
    0.06501657797157563, 0.06712465382813286, 0.06924514439736276, 0.07137794905925814,
    0.07352297371436088, 0.07568013035931868, 0.07784933670249972, 0.0800305158150789,
    0.08222359581363094, 0.0844285095707938, 0.08664519445101085, 0.08887359206874125,
    0.09111364806685174, 0.09336531191318169, 0.0956285367135125, 0.09790327903937894,
    0.10018949876933952, 0.10248715894247791, 0.10479622562304293, 0.10711666777525297,
    0.10944845714739439, 0.11179156816443424, 0.11414597782844814, 0.11651166562623426,
    0.11888861344354727, 0.12127680548544134, 0.12367622820226169, 0.1260868702208651,
    0.12850872228069296, 0.130941777174352, 0.13338602969239124, 0.1358414765719903,
    0.13830811644930185, 0.14078594981521056, 0.14327497897429403, 0.14577520800678956,
    0.14828664273338504, 0.15080929068267132, 0.15334316106110366, 0.15588826472533537,
    0.15844461415679587, 0.16101222343839813, 0.16359110823326845, 0.16618128576540053,
    0.16878277480214585, 0.17139559563845627, 0.1740197700828051, 0.1766553214447175,
    0.1793022745238464, 0.18196065560053773, 0.18463049242783097, 0.18731181422484863,
    0.19000465167153008, 0.19270903690467117, 0.19542500351523334, 0.1981525865468913,
    0.20089182249579002, 0.20364274931148565, 0.20640540639904895, 0.20917983462231085,
    0.2119660763082338, 0.21476417525239508, 0.2175741767255706, 0.22039612748140955,
    0.22323007576519327, 0.22607607132367435, 0.2289341654159929, 0.23180441082566994,
    0.23468686187367996, 0.23758157443260694, 0.24048860594188853, 0.24340801542415744,
    0.24633986350269035, 0.24928421241997442, 0.25224112605740767, 0.25521066995614716,
    0.25819291133912425, 0.26118791913424627, 0.2641957639988064, 0.26721651834512716,
    0.27025025636746175, 0.2732970540701841, 0.2763569892972962, 0.27943014176328684,
    0.28251659308537774, 0.28561642681719324, 0.28872972848389594, 0.2918565856188299,
    0.2949970878017184, 0.29815132669846406, 0.3013193961026039, 0.3045013919784732,
    0.30769741250613786, 0.3109075581281551, 0.31413193159822883, 0.3173706380318284,
    0.3206237849588436, 0.32389148237835286, 0.3271738428155869, 0.33047098138117303,
    0.33378301583275205, 0.3371100666390641, 0.34045225704660464, 0.3438097131489583,
    0.3471825639589262, 0.35057094148356394, 0.35397498080226003, 0.3573948201479894,
    0.3608306009918829, 0.3642824681312651, 0.3677505697813201, 0.3712350576705537,
    0.3747360871402323, 0.3782538172479876, 0.3817884108757896, 0.385340034842501,
    0.38890886002124053, 0.39249506146179564, 0.3960988185183411, 0.3997203149827348,
    0.40335973922368124, 0.40701728433206963, 0.41069314827281417, 0.41438753404354717,
    0.41810064984053463, 0.42183270923221317, 0.4255839313407703, 0.42935454103222126,
    0.43314476911546385, 0.4369548525508292, 0.4407850346686802, 0.44463556539864846,
    0.44850670151014527, 0.4523987068648245, 0.45631185268172636, 0.46024641781588715,
    0.46420268905125356, 0.4681809614088081, 0.47218153847088035, 0.4762047327226922,
    0.48025086591226984, 0.48432026942994344, 0.4884132847087558, 0.4925302636472045,
    0.49667156905586435, 0.5008375751295626, 0.5050286679469218, 0.5092452459992418,
    0.5134877207508616, 0.5177565172333323, 0.5220520746759398, 0.5263748471753451,
    0.5307253044073661, 0.5351039323842057, 0.539511234260745, 0.5439477311938646,
    0.5484139632591503, 0.5529104904297636, 0.557437893622745, 0.561996775818552,
    0.5665877632602416, 0.5712115067393808, 0.5758686829765326, 0.5805599961050221,
    0.5852861792676557, 0.5900479963371645, 0.5948462437723813, 0.5996817526235757,
    0.6045553907019757, 0.6094680649303402, 0.6144207238935406, 0.6194143606105225,
    0.6244500155517774, 0.6295287799296517, 0.6346517992925043, 0.6398202774580045,
    0.6450354808258392, 0.6502987431159042, 0.6556114705848572, 0.6609751477818975,
    0.6663913439140609, 0.6718617199024715, 0.6773880362242437, 0.6829721616505483,
    0.6886160830103112, 0.6943219161318447, 0.7000919181423311, 0.7059285013386684,
    0.7118342488842604, 0.7178119326368354, 0.7238645334748489, 0.7299952645678043,
    0.7362075981333046, 0.7425052963467117, 0.7488924472258414, 0.7553735065139101,
    0.761953346843745, 0.7686373158055784, 0.7754313049884293, 0.7823418326622029,
    0.7893761435735926, 0.7965423304307049, 0.8038494831788997, 0.8113078743207942,
    0.8189291916120578, 0.8267268339548115, 0.8347162929957281, 0.8429156531213267,
    0.8513462584681057, 0.8600336212060977, 0.869008688047002, 0.8783096558194914,
    0.8879846607669003, 0.8980959219099868, 0.9087264400644637, 0.9199915050525298,
    0.9320600759735052, 0.9451989534580642, 0.9598790918181102, 0.9771017012896979,
    1.0,
    ];

    /// Draws one standard normal variate (ziggurat): one `u64` yields the
    /// layer index and the horizontal coordinate, and ≈98.8% of draws
    /// accept without touching `exp`/`ln`.
    pub fn sample_ziggurat<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits mapped onto [-1, 1).
        const K: f64 = 2.0 / (1u64 << 53) as f64;
        loop {
            let bits = rng.next_u64();
            let i = (bits & 0xFF) as usize;
            let u = ((bits >> 11) as f64) * K - 1.0;
            let v = u * ZIG_X[i];
            if v.abs() < ZIG_X[i + 1] {
                // Strictly inside the next layer's edge: uniform in a
                // rectangle wholly under the density.
                return v;
            }
            if i == 0 {
                // Base strip overflow: sample the tail beyond R with
                // Marsaglia's exponential-majorant rejection.
                loop {
                    let u1: f64 = rng.gen_range(0.0..1.0);
                    let u2: f64 = rng.gen_range(0.0..1.0);
                    if u1 <= 0.0 {
                        continue;
                    }
                    let xt = -u1.ln() / ZIG_R;
                    let yt = -u2.ln();
                    if 2.0 * yt >= xt * xt {
                        return if u < 0.0 { -(ZIG_R + xt) } else { ZIG_R + xt };
                    }
                }
            }
            // Wedge: accept with probability proportional to how far the
            // density still reaches past the inner rectangle.
            let y: f64 = rng.gen_range(0.0..1.0);
            if ZIG_F[i + 1] + y * (ZIG_F[i] - ZIG_F[i + 1]) < pdf(v) {
                return v;
            }
        }
    }

    #[cfg(test)]
    pub(super) mod test_support {
        pub(crate) const R: f64 = super::ZIG_R;
        pub(crate) const V: f64 = super::ZIG_V;
        pub(crate) static X: &[f64; 257] = &super::ZIG_X;
        pub(crate) static F: &[f64; 257] = &super::ZIG_F;
        pub(crate) fn pdf(x: f64) -> f64 {
            super::pdf(x)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::cpu::{Bus, Cpu, QueueMmio};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn capture(source: &str, config: &PowerModelConfig, seed: u64) -> PowerCapture {
        let program = assemble(source, 0).unwrap();
        let mut bus = Bus::new(64 * 1024, QueueMmio::new());
        bus.load_words(0, &program.words);
        let mut cpu = Cpu::new(bus);
        let (records, _) = cpu.run(100_000);
        let mut rng = StdRng::seed_from_u64(seed);
        render_power(&records, config, &mut rng)
    }

    #[test]
    fn sample_count_matches_cycles() {
        let c = capture(
            "li t0, 1\nadd t1, t0, t0\nebreak",
            &PowerModelConfig::noiseless(),
            0,
        );
        // li (3 cycles) + add (3 cycles); ebreak halts before retiring.
        assert_eq!(c.samples.len(), 6);
        assert_eq!(c.spans.len(), 2);
        assert_eq!(c.spans[1].start, 3);
        assert_eq!(c.spans[1].end, 6);
    }

    #[test]
    fn multiply_bursts_dominate() {
        let c = capture(
            "li t0, 1\nmul t1, t0, t0\nadd t2, t0, t0\nebreak",
            &PowerModelConfig::noiseless(),
            0,
        );
        let mul_span = &c.spans[1];
        let add_span = &c.spans[2];
        let avg = |span: &SampleSpan| {
            c.samples[span.start..span.end].iter().sum::<f64>() / (span.end - span.start) as f64
        };
        assert!(avg(mul_span) > 2.0 * avg(add_span));
    }

    #[test]
    fn hamming_weight_shows_in_final_cycle() {
        let all_ones = capture("li t0, -1\nebreak", &PowerModelConfig::noiseless(), 0);
        let zero = capture("li t0, 0\nebreak", &PowerModelConfig::noiseless(), 0);
        // li -1 is a single addi writing 0xFFFFFFFF; li 0 writes 0.
        let last_ones = *all_ones.samples.last().unwrap();
        let last_zero = *zero.samples.last().unwrap();
        let cfg = PowerModelConfig::default();
        let expected_gap = cfg.alpha_hw * weighted_bit_leakage(u32::MAX, cfg.bit_weight_variation)
            + 32.0 * cfg.beta_hd;
        assert!((last_ones - last_zero - expected_gap).abs() < 1e-9);
        // The weighted model reduces to plain HW at zero variation.
        assert_eq!(
            weighted_bit_leakage(0xF0F0_1234, 0.0),
            0xF0F0_1234u32.count_ones() as f64
        );
        // Equal-HW values leak differently under imbalanced bit lines.
        let l1 = weighted_bit_leakage(1, 0.5);
        let l2 = weighted_bit_leakage(2, 0.5);
        let l4 = weighted_bit_leakage(4, 0.5);
        assert!((l1 - l2).abs() > 0.05 && (l2 - l4).abs() > 0.05);
    }

    #[test]
    fn store_data_leaks() {
        let hi = capture(
            "li t0, 0x1000\nli t1, -1\nsw t1, 0(t0)\nebreak",
            &PowerModelConfig::noiseless(),
            0,
        );
        let lo = capture(
            "li t0, 0x1000\nli t1, 0\nsw t1, 0(t0)\nebreak",
            &PowerModelConfig::noiseless(),
            0,
        );
        let sw_hi = hi.spans.last().unwrap();
        let sw_lo = lo.spans.last().unwrap();
        assert!(
            hi.samples[sw_hi.end - 1] > lo.samples[sw_lo.end - 1] + 1.0,
            "store of 0xFFFFFFFF should draw more power than store of 0"
        );
    }

    #[test]
    fn taken_branch_adds_flush_energy() {
        let taken = capture(
            "li t0, 1\nbnez t0, skip\nnop\nskip: ebreak",
            &PowerModelConfig::noiseless(),
            0,
        );
        let not_taken = capture(
            "li t0, 0\nbnez t0, skip\nnop\nskip: ebreak",
            &PowerModelConfig::noiseless(),
            0,
        );
        // Taken branch costs 5 cycles, not-taken 3: spans differ in length.
        let b_taken = &taken.spans[1];
        let b_not = &not_taken.spans[1];
        assert_eq!(b_taken.end - b_taken.start, 5);
        assert_eq!(b_not.end - b_not.start, 3);
    }

    #[test]
    fn noise_perturbs_but_preserves_mean() {
        let clean = capture(
            "li t0, 5\nmul t1, t0, t0\nebreak",
            &PowerModelConfig::noiseless(),
            1,
        );
        let noisy_cfg = PowerModelConfig::default().with_noise_sigma(0.2);
        let noisy = capture("li t0, 5\nmul t1, t0, t0\nebreak", &noisy_cfg, 1);
        assert_eq!(clean.samples.len(), noisy.samples.len());
        let mean_c: f64 = clean.samples.iter().sum::<f64>() / clean.samples.len() as f64;
        let mean_n: f64 = noisy.samples.iter().sum::<f64>() / noisy.samples.len() as f64;
        assert!((mean_c - mean_n).abs() < 0.2);
        assert!(clean.samples != noisy.samples);
    }

    #[test]
    fn renderer_lut_matches_weighted_bit_leakage() {
        let renderer = PowerRenderer::new(&PowerModelConfig::default());
        for word in [0u32, 1, 2, 0xFFFF_FFFF, 0xDEAD_BEEF, 0x8000_0001, 12345] {
            assert_eq!(
                renderer.leakage(word),
                weighted_bit_leakage(word, PowerModelConfig::default().bit_weight_variation),
                "LUT must be bit-identical for 0x{word:08X}"
            );
        }
        let flat = PowerRenderer::new(&PowerModelConfig {
            bit_weight_variation: 0.0,
            ..PowerModelConfig::default()
        });
        assert_eq!(
            flat.leakage(0xF0F0_1234),
            0xF0F0_1234u32.count_ones() as f64
        );
    }

    #[test]
    fn streaming_render_matches_render_power() {
        let program = assemble(
            "li t0, 0x1234\nmul t1, t0, t0\nsw t1, 0(zero)\nbnez t0, done\nnop\ndone: ebreak",
            0,
        )
        .unwrap();
        let mut bus = Bus::new(64 * 1024, QueueMmio::new());
        bus.load_words(0, &program.words);
        let mut cpu = Cpu::new(bus);
        let (records, _) = cpu.run(100_000);
        for sigma in [0.0, 0.05] {
            let config = PowerModelConfig::default().with_noise_sigma(sigma);
            let mut rng = StdRng::seed_from_u64(42);
            let direct = render_power(&records, &config, &mut rng);

            let renderer = PowerRenderer::new(&config);
            let mut rng = StdRng::seed_from_u64(42);
            let mut buffer = TraceBuffer::new();
            for (i, record) in records.iter().enumerate() {
                renderer.render_record(i, record, &mut rng, &mut buffer);
            }
            assert_eq!(buffer.to_capture(), direct);

            // Noiseless template + noise overlay is also bit-identical.
            let mut rng = StdRng::seed_from_u64(42);
            let mut buffer = TraceBuffer::new();
            let mut noiseless = Vec::new();
            for (i, record) in records.iter().enumerate() {
                noiseless.clear();
                renderer.render_record_noiseless(record, &mut noiseless);
                renderer.replay_noiseless(i, record.pc, &noiseless, &mut rng, &mut buffer);
            }
            assert_eq!(buffer.into_capture(), direct);
        }
    }

    #[test]
    fn zig_tables_satisfy_the_layer_recurrence() {
        use super::rand_distr_normal::test_support as zig;
        // The defining geometry: x[0] = V/pdf(R) spans the base strip plus
        // tail, x[1] = R, and each higher edge solves the equal-area
        // recurrence x[i+1] = sqrt(-2 ln(V/x[i] + pdf(x[i]))). The table is
        // literal data; this test proves it is *that* ziggurat and not a
        // typo. Tolerances allow for the platform libm that rebuilds the
        // recurrence here, nothing more.
        assert!((zig::X[0] - zig::V / zig::pdf(zig::R)).abs() < 1e-12);
        assert_eq!(zig::X[1].to_bits(), zig::R.to_bits());
        assert_eq!(zig::X[256], 0.0);
        for i in 1..256 {
            let arg = -2.0 * (zig::V / zig::X[i] + zig::pdf(zig::X[i])).ln();
            let expect = if arg > 0.0 { arg.sqrt() } else { 0.0 };
            assert!(
                (zig::X[i + 1] - expect).abs() < 1e-9,
                "layer {i}: {} vs {expect}",
                zig::X[i + 1]
            );
            assert!(zig::X[i + 1] < zig::X[i], "edges must descend");
        }
        for i in 0..=256 {
            assert!(
                (zig::F[i] - zig::pdf(zig::X[i])).abs() < 1e-12,
                "f[{i}] is not pdf(x[{i}])"
            );
        }
    }

    #[test]
    fn ziggurat_matches_polar_in_law() {
        // Both samplers are exact N(0,1) methods; their first four moments
        // and 3σ tail mass must agree with theory (and hence each other)
        // within Monte-Carlo error at this sample count.
        let n = 2_000_000usize;
        let moments = |sampler: NoiseSampler| {
            let mut rng = StdRng::seed_from_u64(0x2166_0A75);
            let (mut m1, mut m2, mut m3, mut m4, mut tail) = (0.0, 0.0, 0.0, 0.0, 0usize);
            for _ in 0..n {
                let z = sampler.sample(&mut rng);
                m1 += z;
                m2 += z * z;
                m3 += z * z * z;
                m4 += z * z * z * z;
                if z.abs() > 3.0 {
                    tail += 1;
                }
            }
            let nf = n as f64;
            (m1 / nf, m2 / nf, m3 / nf, m4 / nf, tail as f64 / nf)
        };
        for sampler in [NoiseSampler::Ziggurat, NoiseSampler::MarsagliaPolar] {
            let (mean, var, skew, kurt, tail) = moments(sampler);
            let label = format!("{sampler:?}");
            assert!(mean.abs() < 0.005, "{label} mean {mean}");
            assert!((var - 1.0).abs() < 0.01, "{label} var {var}");
            assert!(skew.abs() < 0.02, "{label} skew {skew}");
            assert!((kurt - 3.0).abs() < 0.05, "{label} kurtosis {kurt}");
            // P(|Z| > 3) = 0.0027.
            assert!((tail - 0.0027).abs() < 0.0005, "{label} tail {tail}");
        }
    }

    #[test]
    fn noise_sampler_choice_changes_the_stream_but_not_the_noiseless_trace() {
        let program = assemble("li t0, 3\nmul t1, t0, t0\nebreak", 0).unwrap();
        let mut bus = Bus::new(4096, QueueMmio::new());
        bus.load_words(0, &program.words);
        let mut cpu = Cpu::new(bus);
        let (records, _halt) = cpu.run(100);
        let run = |config: &PowerModelConfig| {
            let mut rng = StdRng::seed_from_u64(7);
            render_power(&records, config, &mut rng)
        };
        let noisy = PowerModelConfig::default();
        let polar = run(&noisy);
        let zig = run(&noisy.with_noise_sampler(NoiseSampler::Ziggurat));
        assert_eq!(polar.spans, zig.spans, "annotations are noise-free");
        assert_ne!(polar.samples, zig.samples, "different stream, same law");
        // With σ = 0 the sampler is never consulted: identical captures.
        let quiet = PowerModelConfig::noiseless();
        assert_eq!(
            run(&quiet),
            run(&quiet.with_noise_sampler(NoiseSampler::Ziggurat))
        );
    }

    #[test]
    fn trace_buffer_reuse_and_samples_only() {
        let mut buffer = TraceBuffer::new();
        buffer.begin_record(0, 16);
        buffer.push_sample(1.0);
        buffer.push_sample(2.0);
        buffer.end_record();
        assert_eq!(buffer.len(), 2);
        assert_eq!(buffer.spans().len(), 1);
        assert_eq!(buffer.spans()[0].pc, 16);
        buffer.clear();
        assert!(buffer.is_empty());
        assert!(buffer.spans().is_empty());

        let mut bare = TraceBuffer::samples_only();
        bare.begin_record(0, 16);
        bare.push_sample(1.0);
        bare.end_record();
        assert_eq!(bare.samples(), &[1.0]);
        assert!(bare.spans().is_empty());
    }

    #[test]
    fn span_of_pc_range_locates_code() {
        let c = capture(
            "nop\nnop\nmul t0, t0, t0\nebreak",
            &PowerModelConfig::noiseless(),
            0,
        );
        let (start, end) = c.span_of_pc_range(8, 12).unwrap();
        // The mul is the third instruction: starts after 2 nops (3 cycles each).
        assert_eq!(start, 6);
        assert_eq!(end, 6 + 38);
        assert!(c.span_of_pc_range(100, 200).is_none());
    }

    proptest::proptest! {
        // The blocked fill/copy emission of `render_record` must reproduce
        // the per-sample reference loop bit for bit at every noise level,
        // sample rate, and seed — including both the constant body and the
        // data-term tail of every record.
        #[test]
        fn prop_blocked_emission_matches_reference(
            seed in 0u64..1_000,
            sigma in 0.0f64..0.2,
            samples_per_cycle in 1usize..4,
        ) {
            let program = assemble(
                "li t0, 0x1234\nmul t1, t0, t0\nsw t1, 0(zero)\nbnez t0, done\nnop\ndone: ebreak",
                0,
            )
            .unwrap();
            let mut bus = Bus::new(64 * 1024, QueueMmio::new());
            bus.load_words(0, &program.words);
            let mut cpu = Cpu::new(bus);
            let (records, _) = cpu.run(100_000);
            let mut config = PowerModelConfig::default().with_noise_sigma(sigma);
            config.samples_per_cycle = samples_per_cycle;

            let mut rng = StdRng::seed_from_u64(seed);
            let blocked = render_power(&records, &config, &mut rng);
            let mut rng = StdRng::seed_from_u64(seed);
            let reference = render_power_reference(&records, &config, &mut rng);

            proptest::prop_assert_eq!(blocked.spans, reference.spans);
            proptest::prop_assert_eq!(blocked.samples.len(), reference.samples.len());
            for (a, b) in blocked.samples.iter().zip(&reference.samples) {
                proptest::prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }
}
