//! Instruction-level power model.
//!
//! This replaces the paper's shunt-resistor measurement chain (SAKURA-G +
//! PicoScope at 1 GS/s over a 1.5 MHz core). Each simulated cycle produces
//! one sample composed of:
//!
//! - a **base** level per instruction class (multiplies burn the most — that
//!   is what makes the distribution call visible as the Fig. 3 peaks),
//! - **Hamming-weight** leakage of the value written to the register file
//!   and of store/load data (the classic CMOS data-dependent term),
//! - **Hamming-distance** leakage between the old and new register value,
//! - a small address-weight term, a branch-flush term, and
//! - additive Gaussian measurement noise.
//!
//! The weights and the noise σ are knobs so the ablation benches can sweep
//! SNR — something a physical bench cannot do cheaply.

use crate::cpu::ExecRecord;
use crate::isa::Instruction;
use rand::Rng;
use rand_distr_normal::sample_standard_normal;

/// Weights of the leakage components.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModelConfig {
    /// Weight of `HW(new register value)`.
    pub alpha_hw: f64,
    /// Weight of `HD(old, new register value)`.
    pub beta_hd: f64,
    /// Weight of `HW(memory data)` on loads/stores.
    pub gamma_mem: f64,
    /// Weight of `HW(memory address)`.
    pub delta_addr: f64,
    /// Extra level on taken branches (pipeline flush).
    pub epsilon_flush: f64,
    /// Relative imbalance of the per-bit leakage weights (Schindler-style
    /// stochastic model): 0 gives the pure Hamming-weight model, larger
    /// values make individual bus lines leak unequally — which is what real
    /// measurements show, and what lets a template attack separate values
    /// with equal Hamming weight (cf. the near-certain probabilities of
    /// Table II in the paper).
    pub bit_weight_variation: f64,
    /// Standard deviation of the additive Gaussian noise.
    pub noise_sigma: f64,
    /// Samples emitted per simulated cycle.
    pub samples_per_cycle: usize,
}

impl Default for PowerModelConfig {
    fn default() -> Self {
        Self {
            alpha_hw: 0.09,
            beta_hd: 0.02,
            gamma_mem: 0.09,
            delta_addr: 0.004,
            epsilon_flush: 0.35,
            bit_weight_variation: 0.8,
            noise_sigma: 0.05,
            samples_per_cycle: 1,
        }
    }
}

/// The device's fixed per-bit weight profile: weight of bit `b` relative to
/// the uniform model, deterministic (a physical property of the bus lines).
#[inline]
fn bit_weight(b: u32, variation: f64) -> f64 {
    1.0 + variation * (2.3 * b as f64 + 1.7).sin()
}

/// Weighted bit-line leakage of a 32-bit word: reduces to `HW(word)` when
/// `variation = 0`.
pub fn weighted_bit_leakage(word: u32, variation: f64) -> f64 {
    if variation == 0.0 {
        return word.count_ones() as f64;
    }
    let mut acc = 0.0;
    let mut w = word;
    while w != 0 {
        let b = w.trailing_zeros();
        acc += bit_weight(b, variation);
        w &= w - 1;
    }
    acc
}

impl PowerModelConfig {
    /// A noiseless configuration (useful for deterministic tests).
    pub fn noiseless() -> Self {
        Self {
            noise_sigma: 0.0,
            ..Self::default()
        }
    }

    /// Returns a copy with a different noise σ.
    pub fn with_noise_sigma(mut self, sigma: f64) -> Self {
        self.noise_sigma = sigma;
        self
    }
}

/// Base power level of an instruction class, in arbitrary units.
///
/// Public so static analyses (`reveal-lint`'s leakage scoring) can weight
/// instructions exactly as the renderer does.
pub fn base_level(instr: &Instruction) -> f64 {
    match instr {
        Instruction::MulDiv { .. } => 3.0,
        Instruction::Load { .. } => 2.0,
        Instruction::Store { .. } => 2.2,
        Instruction::Jal { .. } | Instruction::Jalr { .. } => 1.5,
        Instruction::Branch { .. } => 1.2,
        Instruction::Lui { .. } | Instruction::Auipc { .. } => 1.0,
        Instruction::AluImm { .. } | Instruction::AluReg { .. } => 1.0,
        Instruction::Ecall | Instruction::Ebreak => 0.8,
    }
}

/// Per-instruction sample annotation: which record produced which samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleSpan {
    /// Index into the record list.
    pub record_index: usize,
    /// First sample of this instruction.
    pub start: usize,
    /// One past the last sample.
    pub end: usize,
    /// Program counter (for locating kernel regions in tests).
    pub pc: u32,
}

/// A simulated power capture: samples plus per-instruction annotations.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerCapture {
    /// The trace samples.
    pub samples: Vec<f64>,
    /// One span per executed instruction.
    pub spans: Vec<SampleSpan>,
}

impl PowerCapture {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the capture is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The sample range covered by instructions with `pc` in `[lo, hi)`.
    pub fn span_of_pc_range(&self, lo: u32, hi: u32) -> Option<(usize, usize)> {
        let mut start = None;
        let mut end = None;
        for s in &self.spans {
            if s.pc >= lo && s.pc < hi {
                start = Some(start.unwrap_or(s.start).min(s.start));
                end = Some(end.unwrap_or(s.end).max(s.end));
            }
        }
        Some((start?, end?))
    }
}

/// Receives power samples as they are produced, one record at a time.
///
/// A sink sees the exact sample stream that [`render_power`] would produce:
/// `begin_record` / `end_record` bracket the samples of one executed
/// instruction, in execution order. Implementations that do not need span
/// bookkeeping can ignore the bracketing calls.
pub trait PowerSink {
    /// Called before the samples of one record are pushed.
    fn begin_record(&mut self, record_index: usize, pc: u32);
    /// One power sample.
    fn push_sample(&mut self, sample: f64);
    /// A block of consecutive samples. Equivalent to pushing each sample in
    /// order; buffer-backed sinks override this with a bulk copy so the
    /// noiseless replay path is a `memcpy` instead of a per-sample loop.
    fn push_samples(&mut self, samples: &[f64]) {
        for &s in samples {
            self.push_sample(s);
        }
    }
    /// `count` copies of `value`. Equivalent to pushing `value` repeatedly;
    /// buffer-backed sinks override this with a vectorizable fill, which is
    /// the shape of every noiseless record body (constant base level).
    fn push_fill(&mut self, value: f64, count: usize) {
        for _ in 0..count {
            self.push_sample(value);
        }
    }
    /// Called after the samples of the current record are pushed.
    fn end_record(&mut self);
}

/// A reusable sample buffer implementing [`PowerSink`].
///
/// The streaming fast path renders each run into a caller-owned
/// `TraceBuffer`, so back-to-back runs reuse one allocation instead of
/// growing a fresh `Vec<ExecRecord>` plus a fresh sample vector per run.
#[derive(Debug, Clone, Default)]
pub struct TraceBuffer {
    samples: Vec<f64>,
    spans: Vec<SampleSpan>,
    record_spans: bool,
    pending: Option<(usize, usize, u32)>,
}

impl TraceBuffer {
    /// A buffer that records per-instruction [`SampleSpan`]s.
    pub fn new() -> Self {
        Self {
            record_spans: true,
            ..Self::default()
        }
    }

    /// A buffer that keeps only samples (no span bookkeeping).
    pub fn samples_only() -> Self {
        Self::default()
    }

    /// Clears contents while keeping the allocations.
    pub fn clear(&mut self) {
        self.samples.clear();
        self.spans.clear();
        self.pending = None;
    }

    /// The samples accumulated so far.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// The spans accumulated so far (empty for [`Self::samples_only`]).
    pub fn spans(&self) -> &[SampleSpan] {
        &self.spans
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been pushed.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Copies the contents into an owned [`PowerCapture`].
    pub fn to_capture(&self) -> PowerCapture {
        PowerCapture {
            samples: self.samples.clone(),
            spans: self.spans.clone(),
        }
    }

    /// Consumes the buffer into a [`PowerCapture`] without copying.
    pub fn into_capture(self) -> PowerCapture {
        PowerCapture {
            samples: self.samples,
            spans: self.spans,
        }
    }
}

impl PowerSink for TraceBuffer {
    fn begin_record(&mut self, record_index: usize, pc: u32) {
        if self.record_spans {
            self.pending = Some((record_index, self.samples.len(), pc));
        }
    }

    fn push_sample(&mut self, sample: f64) {
        self.samples.push(sample);
    }

    fn push_samples(&mut self, samples: &[f64]) {
        self.samples.extend_from_slice(samples);
    }

    fn push_fill(&mut self, value: f64, count: usize) {
        self.samples.resize(self.samples.len() + count, value);
    }

    fn end_record(&mut self) {
        if let Some((record_index, start, pc)) = self.pending.take() {
            self.spans.push(SampleSpan {
                record_index,
                start,
                end: self.samples.len(),
                pc,
            });
        }
    }
}

/// Streaming power-model renderer with a precomputed per-bit weight table.
///
/// [`render_power`] recomputes `sin(2.3 b + 1.7)` for every set bit of every
/// leaked word — roughly one `sin` per set data bit per executed instruction,
/// which dominates `profile_collect`. The renderer evaluates [`bit_weight`]
/// once per bit position at construction; the lookups then produce the exact
/// same floating-point sums (same per-bit values, same ascending-bit
/// accumulation order), so traces stay bit-identical to the slow path.
#[derive(Debug, Clone)]
pub struct PowerRenderer {
    config: PowerModelConfig,
    bit_weights: [f64; 32],
}

impl PowerRenderer {
    /// Builds a renderer for `config`.
    pub fn new(config: &PowerModelConfig) -> Self {
        let mut bit_weights = [0.0; 32];
        for (b, w) in bit_weights.iter_mut().enumerate() {
            *w = bit_weight(b as u32, config.bit_weight_variation);
        }
        Self {
            config: *config,
            bit_weights,
        }
    }

    /// The configuration this renderer was built from.
    pub fn config(&self) -> &PowerModelConfig {
        &self.config
    }

    /// The precomputed per-bit weight table (bit 0 first) — the same weights
    /// [`PowerRenderer::leakage`] sums, exposed so static analyses can bound
    /// data-dependent power without re-deriving the device profile.
    pub fn bit_weights(&self) -> &[f64; 32] {
        &self.bit_weights
    }

    /// Table-driven [`weighted_bit_leakage`]: bit-identical, no `sin` calls.
    #[inline]
    pub fn leakage(&self, word: u32) -> f64 {
        if self.config.bit_weight_variation == 0.0 {
            return word.count_ones() as f64;
        }
        let mut acc = 0.0;
        let mut w = word;
        while w != 0 {
            acc += self.bit_weights[w.trailing_zeros() as usize];
            w &= w - 1;
        }
        acc
    }

    /// The data-dependent term of one record (lands on the final cycle).
    #[inline]
    pub fn data_term(&self, record: &ExecRecord) -> f64 {
        let config = &self.config;
        let mut data_term = 0.0;
        if let Some((_, old, new)) = record.reg_write {
            data_term += config.alpha_hw * self.leakage(new);
            data_term += config.beta_hd * (old ^ new).count_ones() as f64;
        }
        if let Some((addr, data, _is_write)) = record.mem_access {
            data_term += config.gamma_mem * self.leakage(data);
            data_term += config.delta_addr * addr.count_ones() as f64;
        }
        if record.branch_taken == Some(true) {
            data_term += config.epsilon_flush;
        }
        data_term
    }

    /// Renders one record into `sink`, drawing noise from `rng`.
    ///
    /// Feeding records of a run in execution order with consecutive
    /// `record_index` values reproduces [`render_power`] exactly, including
    /// the order in which noise variates are drawn.
    pub fn render_record<R: Rng + ?Sized, S: PowerSink>(
        &self,
        record_index: usize,
        record: &ExecRecord,
        rng: &mut R,
        sink: &mut S,
    ) {
        let config = &self.config;
        let base = base_level(&record.instruction);
        let total = record.cycles as usize * config.samples_per_cycle;
        let data_term = self.data_term(record);
        // The per-sample branch `k + samples_per_cycle >= total` splits the
        // record into a constant body (`base`) and a final-cycle tail
        // (`base + data_term`); emitting the two blocks directly is
        // bit-identical and — noiselessly — a pure fill.
        let body = total.saturating_sub(config.samples_per_cycle);
        let tail_level = base + data_term;
        sink.begin_record(record_index, record.pc);
        if config.noise_sigma > 0.0 {
            for _ in 0..body {
                sink.push_sample(base + config.noise_sigma * sample_standard_normal(rng));
            }
            for _ in body..total {
                sink.push_sample(tail_level + config.noise_sigma * sample_standard_normal(rng));
            }
        } else {
            sink.push_fill(base, body);
            sink.push_fill(tail_level, total - body);
        }
        sink.end_record();
    }

    /// Renders the noiseless samples of one record into `out`.
    ///
    /// Used to build memoized sub-trace templates: the full sample is
    /// `noiseless + noise_sigma * z`, which associates identically to the
    /// `(base + data_term) + noise_sigma * z` of the direct path.
    pub fn render_record_noiseless(&self, record: &ExecRecord, out: &mut Vec<f64>) {
        let config = &self.config;
        let base = base_level(&record.instruction);
        let total = record.cycles as usize * config.samples_per_cycle;
        let data_term = self.data_term(record);
        // Two fills, not a per-sample loop: the body is constant `base`, the
        // final cycle is constant `base + data_term` (see `render_record`).
        let body = total.saturating_sub(config.samples_per_cycle);
        out.reserve(total);
        out.resize(out.len() + body, base);
        out.resize(out.len() + (total - body), base + data_term);
    }

    /// Overlays fresh noise on precomputed noiseless samples of one record.
    pub fn replay_noiseless<R: Rng + ?Sized, S: PowerSink>(
        &self,
        record_index: usize,
        pc: u32,
        noiseless: &[f64],
        rng: &mut R,
        sink: &mut S,
    ) {
        let sigma = self.config.noise_sigma;
        sink.begin_record(record_index, pc);
        if sigma > 0.0 {
            for &p in noiseless {
                sink.push_sample(p + sigma * sample_standard_normal(rng));
            }
        } else {
            sink.push_samples(noiseless);
        }
        sink.end_record();
    }
}

/// Renders execution records into a power trace.
///
/// # Examples
///
/// ```
/// use reveal_rv32::asm::assemble;
/// use reveal_rv32::cpu::{Bus, Cpu, QueueMmio};
/// use reveal_rv32::power::{render_power, PowerModelConfig};
/// use rand::SeedableRng;
///
/// let program = assemble("li t0, 3\nmul t1, t0, t0\nebreak", 0)?;
/// let mut bus = Bus::new(4096, QueueMmio::new());
/// bus.load_words(0, &program.words);
/// let mut cpu = Cpu::new(bus);
/// let (records, _halt) = cpu.run(100);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let capture = render_power(&records, &PowerModelConfig::default(), &mut rng);
/// assert!(!capture.is_empty());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn render_power<R: Rng + ?Sized>(
    records: &[ExecRecord],
    config: &PowerModelConfig,
    rng: &mut R,
) -> PowerCapture {
    let renderer = PowerRenderer::new(config);
    let mut buffer = TraceBuffer::new();
    for (record_index, record) in records.iter().enumerate() {
        renderer.render_record(record_index, record, rng, &mut buffer);
    }
    buffer.into_capture()
}

/// The pre-fast-path renderer, kept verbatim as the benchmark reference: it
/// recomputes [`weighted_bit_leakage`] — one `sin` per set bit — for every
/// record instead of using [`PowerRenderer`]'s lookup table. Produces the
/// exact same capture as [`render_power`]; exists so `bench_pipeline` can
/// report the fast path's speedup against the implementation it replaced.
pub fn render_power_reference<R: Rng + ?Sized>(
    records: &[ExecRecord],
    config: &PowerModelConfig,
    rng: &mut R,
) -> PowerCapture {
    let mut buffer = TraceBuffer::new();
    for (record_index, record) in records.iter().enumerate() {
        let base = base_level(&record.instruction);
        let total = record.cycles as usize * config.samples_per_cycle;
        let mut data_term = 0.0;
        if let Some((_, old, new)) = record.reg_write {
            data_term += config.alpha_hw * weighted_bit_leakage(new, config.bit_weight_variation);
            data_term += config.beta_hd * (old ^ new).count_ones() as f64;
        }
        if let Some((addr, data, _is_write)) = record.mem_access {
            data_term += config.gamma_mem * weighted_bit_leakage(data, config.bit_weight_variation);
            data_term += config.delta_addr * addr.count_ones() as f64;
        }
        if record.branch_taken == Some(true) {
            data_term += config.epsilon_flush;
        }
        buffer.begin_record(record_index, record.pc);
        for k in 0..total {
            let mut p = base;
            if k + config.samples_per_cycle >= total {
                p += data_term;
            }
            if config.noise_sigma > 0.0 {
                p += config.noise_sigma * sample_standard_normal(rng);
            }
            buffer.push_sample(p);
        }
        buffer.end_record();
    }
    buffer.into_capture()
}

/// Minimal standard-normal sampling (Marsaglia polar), local so the crate
/// needs no extra dependency.
mod rand_distr_normal {
    use rand::Rng;

    /// Draws one standard normal variate.
    pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        loop {
            let u: f64 = rng.gen_range(-1.0..1.0);
            let v: f64 = rng.gen_range(-1.0..1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::cpu::{Bus, Cpu, QueueMmio};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn capture(source: &str, config: &PowerModelConfig, seed: u64) -> PowerCapture {
        let program = assemble(source, 0).unwrap();
        let mut bus = Bus::new(64 * 1024, QueueMmio::new());
        bus.load_words(0, &program.words);
        let mut cpu = Cpu::new(bus);
        let (records, _) = cpu.run(100_000);
        let mut rng = StdRng::seed_from_u64(seed);
        render_power(&records, config, &mut rng)
    }

    #[test]
    fn sample_count_matches_cycles() {
        let c = capture(
            "li t0, 1\nadd t1, t0, t0\nebreak",
            &PowerModelConfig::noiseless(),
            0,
        );
        // li (3 cycles) + add (3 cycles); ebreak halts before retiring.
        assert_eq!(c.samples.len(), 6);
        assert_eq!(c.spans.len(), 2);
        assert_eq!(c.spans[1].start, 3);
        assert_eq!(c.spans[1].end, 6);
    }

    #[test]
    fn multiply_bursts_dominate() {
        let c = capture(
            "li t0, 1\nmul t1, t0, t0\nadd t2, t0, t0\nebreak",
            &PowerModelConfig::noiseless(),
            0,
        );
        let mul_span = &c.spans[1];
        let add_span = &c.spans[2];
        let avg = |span: &SampleSpan| {
            c.samples[span.start..span.end].iter().sum::<f64>() / (span.end - span.start) as f64
        };
        assert!(avg(mul_span) > 2.0 * avg(add_span));
    }

    #[test]
    fn hamming_weight_shows_in_final_cycle() {
        let all_ones = capture("li t0, -1\nebreak", &PowerModelConfig::noiseless(), 0);
        let zero = capture("li t0, 0\nebreak", &PowerModelConfig::noiseless(), 0);
        // li -1 is a single addi writing 0xFFFFFFFF; li 0 writes 0.
        let last_ones = *all_ones.samples.last().unwrap();
        let last_zero = *zero.samples.last().unwrap();
        let cfg = PowerModelConfig::default();
        let expected_gap = cfg.alpha_hw * weighted_bit_leakage(u32::MAX, cfg.bit_weight_variation)
            + 32.0 * cfg.beta_hd;
        assert!((last_ones - last_zero - expected_gap).abs() < 1e-9);
        // The weighted model reduces to plain HW at zero variation.
        assert_eq!(
            weighted_bit_leakage(0xF0F0_1234, 0.0),
            0xF0F0_1234u32.count_ones() as f64
        );
        // Equal-HW values leak differently under imbalanced bit lines.
        let l1 = weighted_bit_leakage(1, 0.5);
        let l2 = weighted_bit_leakage(2, 0.5);
        let l4 = weighted_bit_leakage(4, 0.5);
        assert!((l1 - l2).abs() > 0.05 && (l2 - l4).abs() > 0.05);
    }

    #[test]
    fn store_data_leaks() {
        let hi = capture(
            "li t0, 0x1000\nli t1, -1\nsw t1, 0(t0)\nebreak",
            &PowerModelConfig::noiseless(),
            0,
        );
        let lo = capture(
            "li t0, 0x1000\nli t1, 0\nsw t1, 0(t0)\nebreak",
            &PowerModelConfig::noiseless(),
            0,
        );
        let sw_hi = hi.spans.last().unwrap();
        let sw_lo = lo.spans.last().unwrap();
        assert!(
            hi.samples[sw_hi.end - 1] > lo.samples[sw_lo.end - 1] + 1.0,
            "store of 0xFFFFFFFF should draw more power than store of 0"
        );
    }

    #[test]
    fn taken_branch_adds_flush_energy() {
        let taken = capture(
            "li t0, 1\nbnez t0, skip\nnop\nskip: ebreak",
            &PowerModelConfig::noiseless(),
            0,
        );
        let not_taken = capture(
            "li t0, 0\nbnez t0, skip\nnop\nskip: ebreak",
            &PowerModelConfig::noiseless(),
            0,
        );
        // Taken branch costs 5 cycles, not-taken 3: spans differ in length.
        let b_taken = &taken.spans[1];
        let b_not = &not_taken.spans[1];
        assert_eq!(b_taken.end - b_taken.start, 5);
        assert_eq!(b_not.end - b_not.start, 3);
    }

    #[test]
    fn noise_perturbs_but_preserves_mean() {
        let clean = capture(
            "li t0, 5\nmul t1, t0, t0\nebreak",
            &PowerModelConfig::noiseless(),
            1,
        );
        let noisy_cfg = PowerModelConfig::default().with_noise_sigma(0.2);
        let noisy = capture("li t0, 5\nmul t1, t0, t0\nebreak", &noisy_cfg, 1);
        assert_eq!(clean.samples.len(), noisy.samples.len());
        let mean_c: f64 = clean.samples.iter().sum::<f64>() / clean.samples.len() as f64;
        let mean_n: f64 = noisy.samples.iter().sum::<f64>() / noisy.samples.len() as f64;
        assert!((mean_c - mean_n).abs() < 0.2);
        assert!(clean.samples != noisy.samples);
    }

    #[test]
    fn renderer_lut_matches_weighted_bit_leakage() {
        let renderer = PowerRenderer::new(&PowerModelConfig::default());
        for word in [0u32, 1, 2, 0xFFFF_FFFF, 0xDEAD_BEEF, 0x8000_0001, 12345] {
            assert_eq!(
                renderer.leakage(word),
                weighted_bit_leakage(word, PowerModelConfig::default().bit_weight_variation),
                "LUT must be bit-identical for 0x{word:08X}"
            );
        }
        let flat = PowerRenderer::new(&PowerModelConfig {
            bit_weight_variation: 0.0,
            ..PowerModelConfig::default()
        });
        assert_eq!(
            flat.leakage(0xF0F0_1234),
            0xF0F0_1234u32.count_ones() as f64
        );
    }

    #[test]
    fn streaming_render_matches_render_power() {
        let program = assemble(
            "li t0, 0x1234\nmul t1, t0, t0\nsw t1, 0(zero)\nbnez t0, done\nnop\ndone: ebreak",
            0,
        )
        .unwrap();
        let mut bus = Bus::new(64 * 1024, QueueMmio::new());
        bus.load_words(0, &program.words);
        let mut cpu = Cpu::new(bus);
        let (records, _) = cpu.run(100_000);
        for sigma in [0.0, 0.05] {
            let config = PowerModelConfig::default().with_noise_sigma(sigma);
            let mut rng = StdRng::seed_from_u64(42);
            let direct = render_power(&records, &config, &mut rng);

            let renderer = PowerRenderer::new(&config);
            let mut rng = StdRng::seed_from_u64(42);
            let mut buffer = TraceBuffer::new();
            for (i, record) in records.iter().enumerate() {
                renderer.render_record(i, record, &mut rng, &mut buffer);
            }
            assert_eq!(buffer.to_capture(), direct);

            // Noiseless template + noise overlay is also bit-identical.
            let mut rng = StdRng::seed_from_u64(42);
            let mut buffer = TraceBuffer::new();
            let mut noiseless = Vec::new();
            for (i, record) in records.iter().enumerate() {
                noiseless.clear();
                renderer.render_record_noiseless(record, &mut noiseless);
                renderer.replay_noiseless(i, record.pc, &noiseless, &mut rng, &mut buffer);
            }
            assert_eq!(buffer.into_capture(), direct);
        }
    }

    #[test]
    fn trace_buffer_reuse_and_samples_only() {
        let mut buffer = TraceBuffer::new();
        buffer.begin_record(0, 16);
        buffer.push_sample(1.0);
        buffer.push_sample(2.0);
        buffer.end_record();
        assert_eq!(buffer.len(), 2);
        assert_eq!(buffer.spans().len(), 1);
        assert_eq!(buffer.spans()[0].pc, 16);
        buffer.clear();
        assert!(buffer.is_empty());
        assert!(buffer.spans().is_empty());

        let mut bare = TraceBuffer::samples_only();
        bare.begin_record(0, 16);
        bare.push_sample(1.0);
        bare.end_record();
        assert_eq!(bare.samples(), &[1.0]);
        assert!(bare.spans().is_empty());
    }

    #[test]
    fn span_of_pc_range_locates_code() {
        let c = capture(
            "nop\nnop\nmul t0, t0, t0\nebreak",
            &PowerModelConfig::noiseless(),
            0,
        );
        let (start, end) = c.span_of_pc_range(8, 12).unwrap();
        // The mul is the third instruction: starts after 2 nops (3 cycles each).
        assert_eq!(start, 6);
        assert_eq!(end, 6 + 38);
        assert!(c.span_of_pc_range(100, 200).is_none());
    }

    proptest::proptest! {
        // The blocked fill/copy emission of `render_record` must reproduce
        // the per-sample reference loop bit for bit at every noise level,
        // sample rate, and seed — including both the constant body and the
        // data-term tail of every record.
        #[test]
        fn prop_blocked_emission_matches_reference(
            seed in 0u64..1_000,
            sigma in 0.0f64..0.2,
            samples_per_cycle in 1usize..4,
        ) {
            let program = assemble(
                "li t0, 0x1234\nmul t1, t0, t0\nsw t1, 0(zero)\nbnez t0, done\nnop\ndone: ebreak",
                0,
            )
            .unwrap();
            let mut bus = Bus::new(64 * 1024, QueueMmio::new());
            bus.load_words(0, &program.words);
            let mut cpu = Cpu::new(bus);
            let (records, _) = cpu.run(100_000);
            let mut config = PowerModelConfig::default().with_noise_sigma(sigma);
            config.samples_per_cycle = samples_per_cycle;

            let mut rng = StdRng::seed_from_u64(seed);
            let blocked = render_power(&records, &config, &mut rng);
            let mut rng = StdRng::seed_from_u64(seed);
            let reference = render_power_reference(&records, &config, &mut rng);

            proptest::prop_assert_eq!(blocked.spans, reference.spans);
            proptest::prop_assert_eq!(blocked.samples.len(), reference.samples.len());
            for (a, b) in blocked.samples.iter().zip(&reference.samples) {
                proptest::prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }
}
