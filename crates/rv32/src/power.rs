//! Instruction-level power model.
//!
//! This replaces the paper's shunt-resistor measurement chain (SAKURA-G +
//! PicoScope at 1 GS/s over a 1.5 MHz core). Each simulated cycle produces
//! one sample composed of:
//!
//! - a **base** level per instruction class (multiplies burn the most — that
//!   is what makes the distribution call visible as the Fig. 3 peaks),
//! - **Hamming-weight** leakage of the value written to the register file
//!   and of store/load data (the classic CMOS data-dependent term),
//! - **Hamming-distance** leakage between the old and new register value,
//! - a small address-weight term, a branch-flush term, and
//! - additive Gaussian measurement noise.
//!
//! The weights and the noise σ are knobs so the ablation benches can sweep
//! SNR — something a physical bench cannot do cheaply.

use crate::cpu::ExecRecord;
use crate::isa::Instruction;
use rand::Rng;
use rand_distr_normal::sample_standard_normal;

/// Weights of the leakage components.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModelConfig {
    /// Weight of `HW(new register value)`.
    pub alpha_hw: f64,
    /// Weight of `HD(old, new register value)`.
    pub beta_hd: f64,
    /// Weight of `HW(memory data)` on loads/stores.
    pub gamma_mem: f64,
    /// Weight of `HW(memory address)`.
    pub delta_addr: f64,
    /// Extra level on taken branches (pipeline flush).
    pub epsilon_flush: f64,
    /// Relative imbalance of the per-bit leakage weights (Schindler-style
    /// stochastic model): 0 gives the pure Hamming-weight model, larger
    /// values make individual bus lines leak unequally — which is what real
    /// measurements show, and what lets a template attack separate values
    /// with equal Hamming weight (cf. the near-certain probabilities of
    /// Table II in the paper).
    pub bit_weight_variation: f64,
    /// Standard deviation of the additive Gaussian noise.
    pub noise_sigma: f64,
    /// Samples emitted per simulated cycle.
    pub samples_per_cycle: usize,
}

impl Default for PowerModelConfig {
    fn default() -> Self {
        Self {
            alpha_hw: 0.09,
            beta_hd: 0.02,
            gamma_mem: 0.09,
            delta_addr: 0.004,
            epsilon_flush: 0.35,
            bit_weight_variation: 0.8,
            noise_sigma: 0.05,
            samples_per_cycle: 1,
        }
    }
}

/// The device's fixed per-bit weight profile: weight of bit `b` relative to
/// the uniform model, deterministic (a physical property of the bus lines).
#[inline]
fn bit_weight(b: u32, variation: f64) -> f64 {
    1.0 + variation * (2.3 * b as f64 + 1.7).sin()
}

/// Weighted bit-line leakage of a 32-bit word: reduces to `HW(word)` when
/// `variation = 0`.
pub fn weighted_bit_leakage(word: u32, variation: f64) -> f64 {
    if variation == 0.0 {
        return word.count_ones() as f64;
    }
    let mut acc = 0.0;
    let mut w = word;
    while w != 0 {
        let b = w.trailing_zeros();
        acc += bit_weight(b, variation);
        w &= w - 1;
    }
    acc
}

impl PowerModelConfig {
    /// A noiseless configuration (useful for deterministic tests).
    pub fn noiseless() -> Self {
        Self {
            noise_sigma: 0.0,
            ..Self::default()
        }
    }

    /// Returns a copy with a different noise σ.
    pub fn with_noise_sigma(mut self, sigma: f64) -> Self {
        self.noise_sigma = sigma;
        self
    }
}

/// Base power level of an instruction class, in arbitrary units.
fn base_level(instr: &Instruction) -> f64 {
    match instr {
        Instruction::MulDiv { .. } => 3.0,
        Instruction::Load { .. } => 2.0,
        Instruction::Store { .. } => 2.2,
        Instruction::Jal { .. } | Instruction::Jalr { .. } => 1.5,
        Instruction::Branch { .. } => 1.2,
        Instruction::Lui { .. } | Instruction::Auipc { .. } => 1.0,
        Instruction::AluImm { .. } | Instruction::AluReg { .. } => 1.0,
        Instruction::Ecall | Instruction::Ebreak => 0.8,
    }
}

/// Per-instruction sample annotation: which record produced which samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleSpan {
    /// Index into the record list.
    pub record_index: usize,
    /// First sample of this instruction.
    pub start: usize,
    /// One past the last sample.
    pub end: usize,
    /// Program counter (for locating kernel regions in tests).
    pub pc: u32,
}

/// A simulated power capture: samples plus per-instruction annotations.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerCapture {
    /// The trace samples.
    pub samples: Vec<f64>,
    /// One span per executed instruction.
    pub spans: Vec<SampleSpan>,
}

impl PowerCapture {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the capture is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The sample range covered by instructions with `pc` in `[lo, hi)`.
    pub fn span_of_pc_range(&self, lo: u32, hi: u32) -> Option<(usize, usize)> {
        let mut start = None;
        let mut end = None;
        for s in &self.spans {
            if s.pc >= lo && s.pc < hi {
                start = Some(start.unwrap_or(s.start).min(s.start));
                end = Some(end.unwrap_or(s.end).max(s.end));
            }
        }
        Some((start?, end?))
    }
}

/// Renders execution records into a power trace.
///
/// # Examples
///
/// ```
/// use reveal_rv32::asm::assemble;
/// use reveal_rv32::cpu::{Bus, Cpu, QueueMmio};
/// use reveal_rv32::power::{render_power, PowerModelConfig};
/// use rand::SeedableRng;
///
/// let program = assemble("li t0, 3\nmul t1, t0, t0\nebreak", 0)?;
/// let mut bus = Bus::new(4096, QueueMmio::new());
/// bus.load_words(0, &program.words);
/// let mut cpu = Cpu::new(bus);
/// let (records, _halt) = cpu.run(100);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let capture = render_power(&records, &PowerModelConfig::default(), &mut rng);
/// assert!(!capture.is_empty());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn render_power<R: Rng + ?Sized>(
    records: &[ExecRecord],
    config: &PowerModelConfig,
    rng: &mut R,
) -> PowerCapture {
    let mut samples = Vec::new();
    let mut spans = Vec::with_capacity(records.len());
    for (record_index, record) in records.iter().enumerate() {
        let start = samples.len();
        let base = base_level(&record.instruction);
        let total = record.cycles as usize * config.samples_per_cycle;
        // Data-dependent leakage lands on the final cycle's samples, which is
        // when the result is latched into the register file / memory.
        let mut data_term = 0.0;
        if let Some((_, old, new)) = record.reg_write {
            data_term += config.alpha_hw * weighted_bit_leakage(new, config.bit_weight_variation);
            data_term += config.beta_hd * (old ^ new).count_ones() as f64;
        }
        if let Some((addr, data, _is_write)) = record.mem_access {
            data_term += config.gamma_mem * weighted_bit_leakage(data, config.bit_weight_variation);
            data_term += config.delta_addr * addr.count_ones() as f64;
        }
        if record.branch_taken == Some(true) {
            data_term += config.epsilon_flush;
        }
        for k in 0..total {
            let mut p = base;
            if k + config.samples_per_cycle >= total {
                p += data_term;
            }
            if config.noise_sigma > 0.0 {
                p += config.noise_sigma * sample_standard_normal(rng);
            }
            samples.push(p);
        }
        spans.push(SampleSpan {
            record_index,
            start,
            end: samples.len(),
            pc: record.pc,
        });
    }
    PowerCapture { samples, spans }
}

/// Minimal standard-normal sampling (Marsaglia polar), local so the crate
/// needs no extra dependency.
mod rand_distr_normal {
    use rand::Rng;

    /// Draws one standard normal variate.
    pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        loop {
            let u: f64 = rng.gen_range(-1.0..1.0);
            let v: f64 = rng.gen_range(-1.0..1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::cpu::{Bus, Cpu, QueueMmio};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn capture(source: &str, config: &PowerModelConfig, seed: u64) -> PowerCapture {
        let program = assemble(source, 0).unwrap();
        let mut bus = Bus::new(64 * 1024, QueueMmio::new());
        bus.load_words(0, &program.words);
        let mut cpu = Cpu::new(bus);
        let (records, _) = cpu.run(100_000);
        let mut rng = StdRng::seed_from_u64(seed);
        render_power(&records, config, &mut rng)
    }

    #[test]
    fn sample_count_matches_cycles() {
        let c = capture(
            "li t0, 1\nadd t1, t0, t0\nebreak",
            &PowerModelConfig::noiseless(),
            0,
        );
        // li (3 cycles) + add (3 cycles); ebreak halts before retiring.
        assert_eq!(c.samples.len(), 6);
        assert_eq!(c.spans.len(), 2);
        assert_eq!(c.spans[1].start, 3);
        assert_eq!(c.spans[1].end, 6);
    }

    #[test]
    fn multiply_bursts_dominate() {
        let c = capture(
            "li t0, 1\nmul t1, t0, t0\nadd t2, t0, t0\nebreak",
            &PowerModelConfig::noiseless(),
            0,
        );
        let mul_span = &c.spans[1];
        let add_span = &c.spans[2];
        let avg = |span: &SampleSpan| {
            c.samples[span.start..span.end].iter().sum::<f64>() / (span.end - span.start) as f64
        };
        assert!(avg(mul_span) > 2.0 * avg(add_span));
    }

    #[test]
    fn hamming_weight_shows_in_final_cycle() {
        let all_ones = capture("li t0, -1\nebreak", &PowerModelConfig::noiseless(), 0);
        let zero = capture("li t0, 0\nebreak", &PowerModelConfig::noiseless(), 0);
        // li -1 is a single addi writing 0xFFFFFFFF; li 0 writes 0.
        let last_ones = *all_ones.samples.last().unwrap();
        let last_zero = *zero.samples.last().unwrap();
        let cfg = PowerModelConfig::default();
        let expected_gap = cfg.alpha_hw * weighted_bit_leakage(u32::MAX, cfg.bit_weight_variation)
            + 32.0 * cfg.beta_hd;
        assert!((last_ones - last_zero - expected_gap).abs() < 1e-9);
        // The weighted model reduces to plain HW at zero variation.
        assert_eq!(
            weighted_bit_leakage(0xF0F0_1234, 0.0),
            0xF0F0_1234u32.count_ones() as f64
        );
        // Equal-HW values leak differently under imbalanced bit lines.
        let l1 = weighted_bit_leakage(1, 0.5);
        let l2 = weighted_bit_leakage(2, 0.5);
        let l4 = weighted_bit_leakage(4, 0.5);
        assert!((l1 - l2).abs() > 0.05 && (l2 - l4).abs() > 0.05);
    }

    #[test]
    fn store_data_leaks() {
        let hi = capture(
            "li t0, 0x1000\nli t1, -1\nsw t1, 0(t0)\nebreak",
            &PowerModelConfig::noiseless(),
            0,
        );
        let lo = capture(
            "li t0, 0x1000\nli t1, 0\nsw t1, 0(t0)\nebreak",
            &PowerModelConfig::noiseless(),
            0,
        );
        let sw_hi = hi.spans.last().unwrap();
        let sw_lo = lo.spans.last().unwrap();
        assert!(
            hi.samples[sw_hi.end - 1] > lo.samples[sw_lo.end - 1] + 1.0,
            "store of 0xFFFFFFFF should draw more power than store of 0"
        );
    }

    #[test]
    fn taken_branch_adds_flush_energy() {
        let taken = capture(
            "li t0, 1\nbnez t0, skip\nnop\nskip: ebreak",
            &PowerModelConfig::noiseless(),
            0,
        );
        let not_taken = capture(
            "li t0, 0\nbnez t0, skip\nnop\nskip: ebreak",
            &PowerModelConfig::noiseless(),
            0,
        );
        // Taken branch costs 5 cycles, not-taken 3: spans differ in length.
        let b_taken = &taken.spans[1];
        let b_not = &not_taken.spans[1];
        assert_eq!(b_taken.end - b_taken.start, 5);
        assert_eq!(b_not.end - b_not.start, 3);
    }

    #[test]
    fn noise_perturbs_but_preserves_mean() {
        let clean = capture(
            "li t0, 5\nmul t1, t0, t0\nebreak",
            &PowerModelConfig::noiseless(),
            1,
        );
        let noisy_cfg = PowerModelConfig::default().with_noise_sigma(0.2);
        let noisy = capture("li t0, 5\nmul t1, t0, t0\nebreak", &noisy_cfg, 1);
        assert_eq!(clean.samples.len(), noisy.samples.len());
        let mean_c: f64 = clean.samples.iter().sum::<f64>() / clean.samples.len() as f64;
        let mean_n: f64 = noisy.samples.iter().sum::<f64>() / noisy.samples.len() as f64;
        assert!((mean_c - mean_n).abs() < 0.2);
        assert!(clean.samples != noisy.samples);
    }

    #[test]
    fn span_of_pc_range_locates_code() {
        let c = capture(
            "nop\nnop\nmul t0, t0, t0\nebreak",
            &PowerModelConfig::noiseless(),
            0,
        );
        let (start, end) = c.span_of_pc_range(8, 12).unwrap();
        // The mul is the third instruction: starts after 2 nops (3 cycles each).
        assert_eq!(start, 6);
        assert_eq!(end, 6 + 38);
        assert!(c.span_of_pc_range(100, 200).is_none());
    }
}
