//! Property test: disassembling an assembled program and reassembling the
//! listing reproduces the machine words bit-for-bit.
//!
//! This holds because the disassembler renders branch/jump offsets
//! numerically (label-free), so its output is itself valid assembler input.
//! The property is exercised over all three sampler variants across the
//! parameter space, plus random straight-line instruction soup.

use proptest::prelude::*;
use reveal_rv32::{assemble, disassemble, KernelVariant, SamplerKernel};

/// asm → disasm → asm over one program; returns the reassembled words.
fn roundtrip(words: &[u32], base: u32) -> Vec<u32> {
    let listing: String = disassemble(words, base)
        .into_iter()
        .map(|(_, _, text)| format!("{text}\n"))
        .collect();
    assemble(&listing, base)
        .unwrap_or_else(|e| panic!("reassembly failed: {e}\nlisting:\n{listing}"))
        .words
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn kernel_programs_roundtrip(log_n in 2u32..11, variant_idx in 0usize..3, k in 1usize..4) {
        let variant = [
            KernelVariant::Vulnerable,
            KernelVariant::Branchless,
            KernelVariant::MaskedLadder,
        ][variant_idx];
        let moduli = &[132_120_577u64, 8_380_417, 1_032_193][..k];
        let kernel = SamplerKernel::with_variant(1 << log_n, moduli, variant).unwrap();
        let words = &kernel.program().words;
        prop_assert_eq!(&roundtrip(words, 0), words);
    }

    #[test]
    fn random_alu_programs_roundtrip(seed in any::<u32>(), len in 1usize..24) {
        // Straight-line soup from a fixed menu: every instruction here is
        // deterministic in (seed, position) so failures replay.
        let mut words = Vec::with_capacity(len);
        let mut state = seed;
        let mut source = String::new();
        for _ in 0..len {
            state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            let rd = 5 + (state >> 8) % 3; // t0..t2
            let rs = 5 + (state >> 16) % 3;
            let imm = (state >> 20) as i32 % 2048;
            let line = match state % 6 {
                0 => format!("addi x{rd}, x{rs}, {imm}"),
                1 => format!("xor x{rd}, x{rs}, x{rs}"),
                2 => format!("slli x{rd}, x{rs}, {}", state % 32),
                3 => format!("lw x{rd}, {}(x{rs})", imm & !3),
                4 => format!("sw x{rd}, {}(x{rs})", imm & !3),
                _ => format!("mul x{rd}, x{rs}, x{rs}"),
            };
            source.push_str(&line);
            source.push('\n');
        }
        let program = assemble(&source, 0).unwrap();
        words.extend_from_slice(&program.words);
        prop_assert_eq!(&roundtrip(&words, 0), &words);
    }
}

#[test]
fn roundtrip_preserves_branch_targets() {
    // A deterministic spot check that the numeric-offset rendering is what
    // makes the property hold: the reassembled branch targets the same PC.
    let kernel = SamplerKernel::new(8, &[132_120_577]).unwrap();
    let words = &kernel.program().words;
    let round = roundtrip(words, 0);
    assert_eq!(&round, words);
    // And a second pass is a fixpoint.
    assert_eq!(roundtrip(&round, 0), round);
}
