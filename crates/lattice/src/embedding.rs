//! LWE → uSVP embedding (Kannan) and the concrete solver used to *finish*
//! the RevEAL attack on reduced-dimension instances.
//!
//! After the single-trace analysis pins most error coefficients, the residual
//! problem is a small LWE instance; this module embeds it into a lattice
//! whose unique shortest vector reveals the remaining secret, and solves it
//! with LLL/BKZ.

use crate::bkz::{bkz_reduce, BkzParams};
use crate::gso::dot_ii;
use crate::lll::{lll_reduce, LllParams};
use std::fmt;

/// A small LWE instance `b = A·s + e (mod q)` with centered entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LweInstance {
    /// Modulus.
    pub q: i64,
    /// `m × n` matrix, row-major.
    pub a: Vec<Vec<i64>>,
    /// Length-`m` right-hand side.
    pub b: Vec<i64>,
}

/// Errors from embedding/solving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// Instance dimensions disagree.
    ShapeMismatch,
    /// The reduced basis contained no candidate of the expected shape.
    NoCandidateFound,
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::ShapeMismatch => write!(f, "instance dimensions disagree"),
            SolveError::NoCandidateFound => {
                write!(f, "no short vector of the expected shape was found")
            }
        }
    }
}

impl std::error::Error for SolveError {}

impl LweInstance {
    /// Number of samples `m`.
    pub fn samples(&self) -> usize {
        self.b.len()
    }

    /// Secret dimension `n`.
    pub fn secret_dim(&self) -> usize {
        self.a.first().map(Vec::len).unwrap_or(0)
    }

    /// Validates shape consistency.
    pub fn validate(&self) -> Result<(), SolveError> {
        let n = self.secret_dim();
        if self.a.len() != self.b.len() || self.a.iter().any(|r| r.len() != n) || self.q <= 1 {
            return Err(SolveError::ShapeMismatch);
        }
        Ok(())
    }

    /// Builds the Kannan embedding basis of dimension `m + n + 1`:
    ///
    /// ```text
    /// rows:  [ q·I_m   0     0 ]   (modulus relations)
    ///        [ A_col_j e_j   0 ]   (secret columns)
    ///        [ b       0     M ]   (embedding row)
    /// ```
    ///
    /// The target `(e, -s, -M)`-shaped vector (up to sign) is unusually
    /// short when `e` and `s` are small.
    pub fn embed(&self, embedding_factor: i64) -> Result<Vec<Vec<i64>>, SolveError> {
        self.validate()?;
        let m = self.samples();
        let n = self.secret_dim();
        let dim = m + n + 1;
        let mut basis = Vec::with_capacity(dim);
        for i in 0..m {
            let mut row = vec![0i64; dim];
            row[i] = self.q;
            basis.push(row);
        }
        for j in 0..n {
            let mut row = vec![0i64; dim];
            for i in 0..m {
                row[i] = self.a[i][j].rem_euclid(self.q);
            }
            row[m + j] = 1;
            basis.push(row);
        }
        let mut last = vec![0i64; dim];
        for i in 0..m {
            last[i] = self.b[i].rem_euclid(self.q);
        }
        last[dim - 1] = embedding_factor;
        basis.push(last);
        Ok(basis)
    }

    /// Evaluates `b - A·s mod q` centered — the error this secret implies.
    pub fn error_for_secret(&self, s: &[i64]) -> Vec<i64> {
        let half = self.q / 2;
        self.a
            .iter()
            .zip(&self.b)
            .map(|(row, &bi)| {
                let dot: i64 = row.iter().zip(s).map(|(a, si)| a * si).sum();
                let mut r = (bi - dot).rem_euclid(self.q);
                if r > half {
                    r -= self.q;
                }
                r
            })
            .collect()
    }
}

/// Result of a successful uSVP solve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LweSolution {
    /// The recovered secret `s`.
    pub secret: Vec<i64>,
    /// The implied error `e = b - A·s mod q` (centered).
    pub error: Vec<i64>,
    /// The block size at which the solver succeeded (2 means LLL sufficed).
    pub solved_at_beta: usize,
}

/// Configuration of the progressive solver.
#[derive(Debug, Clone, PartialEq)]
pub struct SolverConfig {
    /// Kannan embedding factor `M` (≈ expected ‖e‖∞; 1 is standard).
    pub embedding_factor: i64,
    /// Block sizes tried in order (2 means plain LLL).
    pub beta_schedule: Vec<usize>,
    /// Accept a candidate only if every error entry fits this bound.
    pub error_bound: i64,
    /// Accept a candidate only if every secret entry fits this bound
    /// (ternary secrets → 1).
    pub secret_bound: i64,
}

impl Default for SolverConfig {
    fn default() -> Self {
        Self {
            embedding_factor: 1,
            beta_schedule: vec![2, 4, 8, 12, 16, 20],
            error_bound: 48,
            secret_bound: 1,
        }
    }
}

/// Progressive uSVP solver: LLL first, then BKZ with growing β, extracting
/// the `(e, -s, ±M)` vector from the reduced basis.
///
/// # Errors
///
/// Fails on malformed instances or when no candidate passes the bounds at
/// any scheduled β.
pub fn solve_lwe(instance: &LweInstance, config: &SolverConfig) -> Result<LweSolution, SolveError> {
    instance.validate()?;
    let m = instance.samples();
    let n = instance.secret_dim();
    let mut basis = instance.embed(config.embedding_factor)?;
    for &beta in &config.beta_schedule {
        if beta <= 2 {
            lll_reduce(&mut basis, &LllParams::default());
        } else {
            bkz_reduce(&mut basis, &BkzParams::with_block_size(beta));
        }
        if let Some(solution) = extract_candidate(instance, &basis, m, n, config, beta) {
            return Ok(solution);
        }
    }
    Err(SolveError::NoCandidateFound)
}

fn extract_candidate(
    instance: &LweInstance,
    basis: &[Vec<i64>],
    m: usize,
    n: usize,
    config: &SolverConfig,
    beta: usize,
) -> Option<LweSolution> {
    // Search the reduced rows (shortest first) for the embedded shape.
    let mut rows: Vec<&Vec<i64>> = basis.iter().collect();
    rows.sort_by_key(|r| dot_ii(r, r));
    for row in rows {
        let tail = row[m + n];
        if tail.abs() != config.embedding_factor.abs() {
            continue;
        }
        let sign = if tail == config.embedding_factor {
            1
        } else {
            -1
        };
        // row = sign * (e, -s, M)
        let secret: Vec<i64> = (0..n).map(|j| -sign * row[m + j]).collect();
        if secret.iter().any(|&s| s.abs() > config.secret_bound) {
            continue;
        }
        let error = instance.error_for_secret(&secret);
        if error.iter().any(|&e| e.abs() > config.error_bound) {
            continue;
        }
        // Consistency: the row's first m coordinates must equal sign*e.
        let consistent = (0..m).all(|i| row[i] == sign * error[i]);
        if !consistent {
            continue;
        }
        return Some(LweSolution {
            secret,
            error,
            solved_at_beta: beta,
        });
    }
    None
}

/// Generates a random LWE instance with ternary secret and small Gaussian-ish
/// error (for tests/benches).
pub fn random_instance<R: rand::Rng + ?Sized>(
    n: usize,
    m: usize,
    q: i64,
    error_bound: i64,
    rng: &mut R,
) -> (LweInstance, Vec<i64>, Vec<i64>) {
    let secret: Vec<i64> = (0..n).map(|_| rng.gen_range(-1i64..=1)).collect();
    let error: Vec<i64> = (0..m)
        .map(|_| rng.gen_range(-error_bound..=error_bound))
        .collect();
    let a: Vec<Vec<i64>> = (0..m)
        .map(|_| (0..n).map(|_| rng.gen_range(0..q)).collect())
        .collect();
    let b: Vec<i64> = a
        .iter()
        .zip(&error)
        .map(|(row, &e)| {
            let dot: i64 = row.iter().zip(&secret).map(|(x, s)| x * s).sum();
            (dot + e).rem_euclid(q)
        })
        .collect();
    (LweInstance { q, a, b }, secret, error)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn embedding_contains_target_vector() {
        let mut rng = StdRng::seed_from_u64(1);
        let (inst, secret, error) = random_instance(4, 6, 3329, 2, &mut rng);
        let basis = inst.embed(1).unwrap();
        // The vector (e, -s, 1) must lie in the lattice: build it from rows
        // q-rows * k + secret-rows * (-s) + last row.
        // Verified indirectly: (e, -s, 1) satisfies the congruences.
        let m = inst.samples();
        for i in 0..m {
            let dot: i64 = inst.a[i].iter().zip(&secret).map(|(a, s)| a * s).sum();
            assert_eq!((inst.b[i] - dot - error[i]).rem_euclid(inst.q), 0);
        }
        assert_eq!(basis.len(), 4 + 6 + 1);
        assert!(basis.iter().all(|r| r.len() == 11));
    }

    #[test]
    fn solves_small_instances_with_lll_only() {
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let (inst, secret, error) = random_instance(6, 12, 3329, 2, &mut rng);
            let sol = solve_lwe(&inst, &SolverConfig::default()).unwrap();
            assert_eq!(sol.secret, secret, "seed {seed}");
            assert_eq!(sol.error, error, "seed {seed}");
        }
    }

    #[test]
    fn solves_medium_instance() {
        let mut rng = StdRng::seed_from_u64(99);
        let (inst, secret, _) = random_instance(10, 20, 12289, 3, &mut rng);
        let sol = solve_lwe(&inst, &SolverConfig::default()).unwrap();
        assert_eq!(sol.secret, secret);
    }

    #[test]
    fn error_for_secret_is_centered() {
        let inst = LweInstance {
            q: 17,
            a: vec![vec![3], vec![5]],
            b: vec![16, 2],
        };
        // s = 1: e = (16-3, 2-5) mod 17 centered = (-4, -3).
        assert_eq!(inst.error_for_secret(&[1]), vec![-4, -3]);
    }

    #[test]
    fn rejects_malformed_instances() {
        let bad = LweInstance {
            q: 17,
            a: vec![vec![1, 2], vec![3]],
            b: vec![1, 2],
        };
        assert_eq!(bad.validate(), Err(SolveError::ShapeMismatch));
        let bad2 = LweInstance {
            q: 17,
            a: vec![vec![1]],
            b: vec![1, 2],
        };
        assert_eq!(bad2.validate(), Err(SolveError::ShapeMismatch));
    }

    #[test]
    fn unsolvable_when_error_huge() {
        // With error ~ q/2 the instance is statistically unsolvable; the
        // solver must report failure, not a wrong answer.
        let mut rng = StdRng::seed_from_u64(5);
        let n = 8;
        let m = 10;
        let q = 257i64;
        let a: Vec<Vec<i64>> = (0..m)
            .map(|_| (0..n).map(|_| rng.gen_range(0..q)).collect())
            .collect();
        let b: Vec<i64> = (0..m).map(|_| rng.gen_range(0..q)).collect();
        let inst = LweInstance { q, a, b };
        let config = SolverConfig {
            error_bound: 3,
            beta_schedule: vec![2, 4],
            ..SolverConfig::default()
        };
        assert!(solve_lwe(&inst, &config).is_err());
    }
}
