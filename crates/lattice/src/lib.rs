#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
// Indexed loops are the clearest notation for the dense numeric kernels
// in this workspace (convolutions, scatter matrices, lattice bases).
#![allow(clippy::needless_range_loop)]

//! # reveal-lattice
//!
//! Lattice-reduction tooling for the RevEAL reproduction: floating-point
//! Gram–Schmidt, LLL (plus the MLLL generating-set variant), exact
//! Schnorr–Euchner SVP enumeration, BKZ with sliding-block enumeration, and
//! the Kannan embedding/solver that finishes the attack on
//! reduced-dimension LWE instances.
//!
//! The *estimation* counterpart (predicting the BKZ block size a full-size
//! instance would need — the paper's "bikz") lives in `reveal-hints`; this
//! crate actually reduces bases.
//!
//! ## Example: solving a small LWE instance
//!
//! ```
//! use reveal_lattice::embedding::{random_instance, solve_lwe, SolverConfig};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let (instance, secret, _error) = random_instance(6, 12, 3329, 2, &mut rng);
//! let solution = solve_lwe(&instance, &SolverConfig::default())?;
//! assert_eq!(solution.secret, secret);
//! # Ok::<(), reveal_lattice::embedding::SolveError>(())
//! ```

pub mod bkz;
pub mod embedding;
pub mod enumeration;
pub mod gsa;
pub mod gso;
pub mod lll;

pub use bkz::{bkz_reduce, BkzParams, BkzStats};
pub use embedding::{solve_lwe, LweInstance, LweSolution, SolveError, SolverConfig};
pub use enumeration::{enumerate_shortest, shortest_vector, EnumerationResult};
pub use gsa::{delta_bkz, gsa_profile, measured_profile, profile_rmsd};
pub use gso::Gso;
pub use lll::{is_lll_reduced, lll_reduce, mlll_reduce, LllParams};
