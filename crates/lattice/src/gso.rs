//! Gram–Schmidt orthogonalization over `f64` for integer lattice bases.

/// An integer lattice basis (row vectors) with its floating-point
/// Gram–Schmidt data: coefficients `μ[i][j]` (j < i) and squared norms
/// `‖b*_i‖²`.
#[derive(Debug, Clone, PartialEq)]
pub struct Gso {
    /// Basis rows (integer coordinates).
    pub basis: Vec<Vec<i64>>,
    /// μ coefficients, row-major lower triangle (`mu[i][j]` valid for j < i).
    pub mu: Vec<Vec<f64>>,
    /// Squared Gram–Schmidt norms `‖b*_i‖²`.
    pub b_star_sq: Vec<f64>,
    /// The orthogonalized vectors themselves (needed for recomputation).
    b_star: Vec<Vec<f64>>,
}

impl Gso {
    /// Builds GSO data for a basis.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent dimensions.
    pub fn new(basis: Vec<Vec<i64>>) -> Self {
        let rows = basis.len();
        if rows > 0 {
            let d = basis[0].len();
            assert!(basis.iter().all(|r| r.len() == d), "ragged basis");
        }
        let mut gso = Self {
            mu: vec![vec![0.0; rows]; rows],
            b_star_sq: vec![0.0; rows],
            b_star: vec![Vec::new(); rows],
            basis,
        };
        gso.recompute_from(0);
        gso
    }

    /// Number of basis rows.
    pub fn rows(&self) -> usize {
        self.basis.len()
    }

    /// Ambient dimension.
    pub fn dim(&self) -> usize {
        self.basis.first().map(Vec::len).unwrap_or(0)
    }

    /// Recomputes GSO data for rows `start..` (rows before `start` must be
    /// unchanged since the last computation).
    pub fn recompute_from(&mut self, start: usize) {
        let rows = self.basis.len();
        for i in start..rows {
            let mut v: Vec<f64> = self.basis[i].iter().map(|&x| x as f64).collect();
            for j in 0..i {
                let denom = self.b_star_sq[j];
                let mu_ij = if denom > 0.0 {
                    dot_if(&self.basis[i], &self.b_star[j]) / denom
                } else {
                    0.0
                };
                self.mu[i][j] = mu_ij;
                for (vk, bj) in v.iter_mut().zip(&self.b_star[j]) {
                    *vk -= mu_ij * bj;
                }
            }
            self.b_star_sq[i] = v.iter().map(|x| x * x).sum();
            self.b_star[i] = v;
        }
    }

    /// Squared Euclidean norm of basis row `i`.
    pub fn row_norm_sq(&self, i: usize) -> f64 {
        self.basis[i].iter().map(|&x| (x as f64) * (x as f64)).sum()
    }

    /// The log-volume of the lattice: `Σ ln ‖b*_i‖` (half the log Gram
    /// determinant).
    pub fn log_volume(&self) -> f64 {
        self.b_star_sq
            .iter()
            .map(|&b| 0.5 * b.max(f64::MIN_POSITIVE).ln())
            .sum()
    }

    /// Removes basis row `i` and recomputes downstream data.
    pub fn remove_row(&mut self, i: usize) {
        self.basis.remove(i);
        self.mu.remove(i);
        self.b_star.remove(i);
        self.b_star_sq.remove(i);
        for row in &mut self.mu {
            if row.len() > i {
                row.remove(i);
            }
        }
        // mu rows must keep width == rows; rebuild widths then recompute.
        let rows = self.basis.len();
        for row in &mut self.mu {
            row.resize(rows, 0.0);
        }
        self.recompute_from(i);
    }

    /// Inserts `vector` as row `i` and recomputes downstream data.
    pub fn insert_row(&mut self, i: usize, vector: Vec<i64>) {
        assert_eq!(
            vector.len(),
            self.dim().max(vector.len()),
            "dimension mismatch"
        );
        self.basis.insert(i, vector);
        let rows = self.basis.len();
        self.mu.insert(i, vec![0.0; rows]);
        for row in &mut self.mu {
            row.resize(rows, 0.0);
        }
        self.b_star.insert(i, Vec::new());
        self.b_star_sq.insert(i, 0.0);
        self.recompute_from(i);
    }

    /// Swaps rows `i` and `i + 1`, recomputing from `i`.
    pub fn swap_rows(&mut self, i: usize) {
        self.basis.swap(i, i + 1);
        self.recompute_from(i);
    }
}

fn dot_if(a: &[i64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(&x, y)| x as f64 * y).sum()
}

/// Integer dot product.
pub fn dot_ii(a: &[i64], b: &[i64]) -> i64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn orthogonal_basis_is_fixed_point() {
        let gso = Gso::new(vec![vec![2, 0, 0], vec![0, 3, 0], vec![0, 0, 5]]);
        assert_eq!(gso.b_star_sq, vec![4.0, 9.0, 25.0]);
        assert_eq!(gso.mu[1][0], 0.0);
        assert_eq!(gso.mu[2][1], 0.0);
        assert!((gso.log_volume() - (30.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn known_mu_values() {
        // b0 = (1, 1), b1 = (1, 0): mu10 = 1/2, b1* = (1/2, -1/2).
        let gso = Gso::new(vec![vec![1, 1], vec![1, 0]]);
        assert!((gso.mu[1][0] - 0.5).abs() < 1e-12);
        assert!((gso.b_star_sq[0] - 2.0).abs() < 1e-12);
        assert!((gso.b_star_sq[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn volume_invariant_under_swap() {
        let mut gso = Gso::new(vec![vec![3, 1, 4], vec![1, 5, 9], vec![2, 6, 5]]);
        let vol = gso.log_volume();
        gso.swap_rows(0);
        assert!((gso.log_volume() - vol).abs() < 1e-9);
        gso.swap_rows(1);
        assert!((gso.log_volume() - vol).abs() < 1e-9);
    }

    #[test]
    fn dependent_row_has_zero_norm() {
        let gso = Gso::new(vec![vec![1, 2], vec![2, 4]]);
        assert!(gso.b_star_sq[1].abs() < 1e-9);
    }

    #[test]
    fn insert_and_remove_roundtrip() {
        let original = vec![vec![5, 0], vec![0, 7]];
        let mut gso = Gso::new(original.clone());
        gso.insert_row(1, vec![1, 1]);
        assert_eq!(gso.rows(), 3);
        assert_eq!(gso.basis[1], vec![1, 1]);
        gso.remove_row(1);
        assert_eq!(gso.basis, original);
        assert_eq!(gso.b_star_sq, vec![25.0, 49.0]);
    }

    proptest! {
        #[test]
        fn prop_bstar_orthogonal(
            rows in proptest::collection::vec(
                proptest::collection::vec(-50i64..50, 4), 2..5),
        ) {
            let gso = Gso::new(rows);
            for i in 0..gso.rows() {
                for j in 0..i {
                    if gso.b_star_sq[i] > 1e-6 && gso.b_star_sq[j] > 1e-6 {
                        let d: f64 = gso.b_star[i].iter().zip(&gso.b_star[j]).map(|(a, b)| a * b).sum();
                        let scale = (gso.b_star_sq[i] * gso.b_star_sq[j]).sqrt();
                        prop_assert!((d / scale).abs() < 1e-6);
                    }
                }
            }
        }

        #[test]
        fn prop_incremental_matches_full(
            rows in proptest::collection::vec(
                proptest::collection::vec(-20i64..20, 3), 3..5),
        ) {
            let mut inc = Gso::new(rows.clone());
            // Mutate the last row and recompute incrementally.
            let last = inc.rows() - 1;
            inc.basis[last][0] += 1;
            inc.recompute_from(last);
            let full = Gso::new(inc.basis.clone());
            for i in 0..full.rows() {
                prop_assert!((inc.b_star_sq[i] - full.b_star_sq[i]).abs() < 1e-6);
            }
        }
    }
}
