//! LLL reduction, including the MLLL variant that reduces *generating sets*
//! (possibly linearly dependent) to bases — needed when BKZ inserts an
//! enumerated combination into the basis.

use crate::gso::Gso;

/// LLL parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LllParams {
    /// Lovász constant δ in `(1/4, 1)`.
    pub delta: f64,
    /// Rows with `‖b*‖²` below this are treated as linearly dependent.
    pub dependency_eps: f64,
}

impl Default for LllParams {
    fn default() -> Self {
        Self {
            delta: 0.99,
            dependency_eps: 1e-6,
        }
    }
}

/// Size-reduces row `k` of the GSO against all earlier rows.
fn size_reduce_row(gso: &mut Gso, k: usize) {
    for j in (0..k).rev() {
        let r = gso.mu[k][j].round();
        if r != 0.0 {
            let ri = r as i64;
            let (head, tail) = gso.basis.split_at_mut(k);
            let bj = &head[j];
            for (x, y) in tail[0].iter_mut().zip(bj) {
                *x -= ri * y;
            }
            for i in 0..j {
                gso.mu[k][i] -= r * gso.mu[j][i];
            }
            gso.mu[k][j] -= r;
        }
    }
}

/// In-place LLL reduction of a full-rank basis.
///
/// After return the basis is size-reduced and satisfies the Lovász condition
/// with the given δ.
///
/// # Examples
///
/// ```
/// use reveal_lattice::lll::{lll_reduce, LllParams};
/// let mut basis = vec![vec![1, 1, 1], vec![-1, 0, 2], vec![3, 5, 6]];
/// lll_reduce(&mut basis, &LllParams::default());
/// // The first vector of an LLL-reduced basis is short.
/// let norm_sq: i64 = basis[0].iter().map(|x| x * x).sum();
/// assert!(norm_sq <= 3);
/// ```
pub fn lll_reduce(basis: &mut Vec<Vec<i64>>, params: &LllParams) {
    let mut gso = Gso::new(std::mem::take(basis));
    lll_reduce_gso(&mut gso, params);
    *basis = gso.basis;
}

/// LLL on an existing GSO (basis assumed independent).
pub fn lll_reduce_gso(gso: &mut Gso, params: &LllParams) {
    let n = gso.rows();
    if n <= 1 {
        return;
    }
    let mut k = 1usize;
    while k < n {
        size_reduce_row(gso, k);
        let lhs = gso.b_star_sq[k];
        let rhs = (params.delta - gso.mu[k][k - 1] * gso.mu[k][k - 1]) * gso.b_star_sq[k - 1];
        if lhs >= rhs {
            k += 1;
        } else {
            gso.swap_rows(k - 1);
            k = k.max(2) - 1;
        }
    }
}

/// MLLL: reduces a *generating set* (rows may be dependent) to an LLL-reduced
/// basis of the same lattice, dropping rows that become zero.
pub fn mlll_reduce(generators: &mut Vec<Vec<i64>>, params: &LllParams) {
    // All-zero rows contribute nothing and would otherwise sit unvisited at
    // index 0 (the main loop starts at k = 1).
    generators.retain(|r| r.iter().any(|&x| x != 0));
    let mut gso = Gso::new(std::mem::take(generators));
    let mut k = 1usize;
    while k < gso.rows() {
        size_reduce_row(&mut gso, k);
        // A (near-)zero b* after size reduction means row k is dependent on
        // earlier rows. Size reduction has made the integer row itself small;
        // when it is exactly zero we can drop it. Otherwise swap it forward
        // so the dependency surfaces at an earlier index.
        if gso.b_star_sq[k] < params.dependency_eps {
            if gso.basis[k].iter().all(|&x| x == 0) {
                gso.remove_row(k);
                k = k.max(2) - 1;
                continue;
            }
            // Move the dependent vector up; eventually it becomes zero.
            gso.swap_rows(k - 1);
            k = k.max(2) - 1;
            continue;
        }
        let lhs = gso.b_star_sq[k];
        let rhs = (params.delta - gso.mu[k][k - 1] * gso.mu[k][k - 1]) * gso.b_star_sq[k - 1];
        if lhs >= rhs {
            k += 1;
        } else {
            gso.swap_rows(k - 1);
            k = k.max(2) - 1;
        }
    }
    *generators = gso.basis;
}

/// Checks the LLL conditions (size-reduced + Lovász) — used by tests.
pub fn is_lll_reduced(basis: &[Vec<i64>], params: &LllParams) -> bool {
    let gso = Gso::new(basis.to_vec());
    for i in 0..gso.rows() {
        for j in 0..i {
            if gso.mu[i][j].abs() > 0.5 + 1e-9 {
                return false;
            }
        }
    }
    for k in 1..gso.rows() {
        let lhs = gso.b_star_sq[k] + gso.mu[k][k - 1].powi(2) * gso.b_star_sq[k - 1];
        if lhs < (params.delta - 1e-9) * gso.b_star_sq[k - 1] {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gso::dot_ii;
    use proptest::prelude::*;

    fn det2(b: &[Vec<i64>]) -> i64 {
        b[0][0] * b[1][1] - b[0][1] * b[1][0]
    }

    #[test]
    fn reduces_classic_2d_example() {
        // The textbook basis (201, 37), (1648, 297) of a small-determinant
        // lattice; LLL must find much shorter vectors.
        let mut basis = vec![vec![201, 37], vec![1648, 297]];
        let det_before = det2(&basis).abs();
        lll_reduce(&mut basis, &LllParams::default());
        assert_eq!(det2(&basis).abs(), det_before, "determinant preserved");
        assert!(is_lll_reduced(&basis, &LllParams::default()));
        // In dimension 2, LLL with δ close to 1 finds the exact shortest
        // vector (Gauss reduction).
        let exact = crate::enumeration::shortest_vector(&basis).unwrap();
        let n0 = dot_ii(&basis[0], &basis[0]);
        assert_eq!(n0, dot_ii(&exact, &exact), "first vector must be shortest");
        // Hermite bound: λ1² ≤ (2/√3)·det for 2-dim lattices.
        assert!((n0 as f64) <= 2.0 / 3f64.sqrt() * det_before as f64 + 1e-9);
    }

    #[test]
    fn identity_is_stable() {
        let mut basis = vec![vec![1, 0, 0], vec![0, 1, 0], vec![0, 0, 1]];
        lll_reduce(&mut basis, &LllParams::default());
        let mut rows = basis.clone();
        rows.sort();
        assert_eq!(rows, vec![vec![0, 0, 1], vec![0, 1, 0], vec![1, 0, 0]]);
    }

    #[test]
    fn lll_first_vector_bound() {
        // ‖b1‖ ≤ 2^((n-1)/2) · det^(1/n) for LLL-reduced bases.
        let mut basis = vec![
            vec![105, 821, 404, 328],
            vec![881, 667, 644, 927],
            vec![181, 957, 66, 973],
            vec![893, 59, 900, 728],
        ];
        lll_reduce(&mut basis, &LllParams::default());
        assert!(is_lll_reduced(&basis, &LllParams::default()));
        let gso = Gso::new(basis.clone());
        let log_det = gso.log_volume();
        let n = 4.0;
        let bound = ((n - 1.0) / 2.0) * (2.0f64).ln() / 2.0 + log_det / n;
        let norm0 = (dot_ii(&basis[0], &basis[0]) as f64).sqrt().ln();
        assert!(norm0 <= bound + 1e-9, "norm {norm0} vs bound {bound}");
    }

    #[test]
    fn mlll_drops_dependent_rows() {
        let mut gens = vec![vec![2, 0], vec![0, 3], vec![2, 3], vec![4, 6]];
        mlll_reduce(&mut gens, &LllParams::default());
        assert_eq!(gens.len(), 2, "rank-2 lattice: {gens:?}");
        // The lattice is 2Z x 3Z; the reduced basis must have |det| = 6.
        assert_eq!(det2(&gens).abs(), 6);
    }

    #[test]
    fn mlll_on_independent_input_matches_lll() {
        let mut a = vec![vec![201, 37], vec![1648, 297]];
        let mut b = a.clone();
        lll_reduce(&mut a, &LllParams::default());
        mlll_reduce(&mut b, &LllParams::default());
        assert_eq!(det2(&a).abs(), det2(&b).abs());
        assert!(is_lll_reduced(&b, &LllParams::default()));
    }

    #[test]
    fn mlll_handles_all_zero_rows() {
        let mut gens = vec![vec![0, 0], vec![5, 1], vec![0, 0], vec![1, 5]];
        mlll_reduce(&mut gens, &LllParams::default());
        assert_eq!(gens.len(), 2);
        assert_eq!(det2(&gens).abs(), 24);
    }

    fn lattice_membership_preserved(original: &[Vec<i64>], reduced: &[Vec<i64>]) -> bool {
        // Every original generator must lie in the reduced lattice; verify by
        // solving with f64 GSO (adequate for small tests).
        let gso = Gso::new(reduced.to_vec());
        for row in original {
            // Project iteratively: coefficients via Cramer-free back-substitution
            // using mu is messy; instead check volumes: equal lattices have
            // equal determinants (checked elsewhere) and reduced ⊆ original by
            // construction, so membership follows. Here just sanity-check dims.
            if row.len() != gso.dim() {
                return false;
            }
        }
        true
    }

    proptest! {
        #[test]
        fn prop_lll_preserves_determinant_2d(
            a in -50i64..50, b in -50i64..50, c in -50i64..50, d in -50i64..50,
        ) {
            prop_assume!(a * d - b * c != 0);
            let mut basis = vec![vec![a, b], vec![c, d]];
            let det_before = det2(&basis).abs();
            lll_reduce(&mut basis, &LllParams::default());
            prop_assert_eq!(det2(&basis).abs(), det_before);
            prop_assert!(is_lll_reduced(&basis, &LllParams::default()));
        }

        #[test]
        fn prop_lll_output_reduced_3d(
            rows in proptest::collection::vec(
                proptest::collection::vec(-30i64..30, 3), 3),
        ) {
            let gso = Gso::new(rows.clone());
            prop_assume!(gso.b_star_sq.iter().all(|&b| b > 1e-6));
            let mut basis = rows.clone();
            lll_reduce(&mut basis, &LllParams::default());
            prop_assert!(is_lll_reduced(&basis, &LllParams::default()));
            prop_assert!(lattice_membership_preserved(&rows, &basis));
        }
    }
}
