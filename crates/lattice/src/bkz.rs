//! Blockwise Korkine–Zolotarev (BKZ) reduction: LLL plus exact SVP
//! enumeration on sliding blocks of size β.

use crate::enumeration::enumerate_shortest;
use crate::gso::Gso;
use crate::lll::{mlll_reduce, LllParams};

/// BKZ parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BkzParams {
    /// Block size β ≥ 2.
    pub block_size: usize,
    /// Maximum number of full tours.
    pub max_tours: usize,
    /// Underlying LLL parameters.
    pub lll: LllParams,
}

impl BkzParams {
    /// Standard parameters for a given block size.
    pub fn with_block_size(block_size: usize) -> Self {
        Self {
            block_size,
            max_tours: 8,
            lll: LllParams::default(),
        }
    }
}

/// Statistics of a BKZ run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BkzStats {
    /// Tours executed.
    pub tours: u32,
    /// Enumeration calls that found an improving vector.
    pub insertions: u32,
}

/// In-place BKZ reduction.
///
/// Each tour slides a β-block over the basis, enumerates the exact shortest
/// vector of the projected block, and when that beats the current `b*_k`
/// inserts the combination and re-reduces with MLLL. Stops after a tour with
/// no insertions or after `max_tours`.
///
/// # Examples
///
/// ```
/// use reveal_lattice::bkz::{bkz_reduce, BkzParams};
/// let mut basis = vec![
///     vec![45, 12, -7, 3],
///     vec![-9, 38, 14, -5],
///     vec![6, -11, 51, 8],
///     vec![2, 4, -3, 47],
/// ];
/// let stats = bkz_reduce(&mut basis, &BkzParams::with_block_size(3));
/// assert!(stats.tours >= 1);
/// ```
pub fn bkz_reduce(basis: &mut Vec<Vec<i64>>, params: &BkzParams) -> BkzStats {
    assert!(params.block_size >= 2, "block size must be at least 2");
    let mut stats = BkzStats::default();
    lll_reduce(basis, &params.lll);
    for _ in 0..params.max_tours {
        stats.tours += 1;
        let mut improved = false;
        let n = basis.len();
        for k in 0..n.saturating_sub(1) {
            let end = (k + params.block_size).min(n);
            let gso = Gso::new(basis.clone());
            let current = gso.b_star_sq[k];
            if current <= 0.0 {
                continue;
            }
            let Some(result) = enumerate_shortest(&gso, k, end, current * 0.9999) else {
                continue;
            };
            // Build the improving lattice vector from the block combination.
            let dim = gso.dim();
            let mut v = vec![0i64; dim];
            for (offset, &xi) in result.coefficients.iter().enumerate() {
                if xi != 0 {
                    for (vj, bj) in v.iter_mut().zip(&basis[k + offset]) {
                        *vj += xi * bj;
                    }
                }
            }
            if v.iter().all(|&x| x == 0) {
                continue;
            }
            // Insert at position k and remove the introduced dependency.
            let mut gens = basis.clone();
            gens.insert(k, v);
            mlll_reduce(&mut gens, &params.lll);
            debug_assert_eq!(gens.len(), n, "MLLL must restore a basis");
            *basis = gens;
            improved = true;
            stats.insertions += 1;
        }
        if !improved {
            break;
        }
    }
    stats
}

/// Re-export of plain LLL for callers that escalate β progressively.
pub use crate::lll::lll_reduce;

/// The norm of the shortest basis vector after reduction (helper for tests
/// and the uSVP solver).
pub fn shortest_row_norm_sq(basis: &[Vec<i64>]) -> i64 {
    basis
        .iter()
        .map(|r| r.iter().map(|&x| x * x).sum::<i64>())
        .filter(|&n| n > 0)
        .min()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumeration::shortest_vector;
    use crate::gso::dot_ii;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_basis(n: usize, scale: i64, seed: u64) -> Vec<Vec<i64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        loop {
            let basis: Vec<Vec<i64>> = (0..n)
                .map(|_| (0..n).map(|_| rng.gen_range(-scale..=scale)).collect())
                .collect();
            let gso = Gso::new(basis.clone());
            if gso.b_star_sq.iter().all(|&b| b > 1e-6) {
                return basis;
            }
        }
    }

    #[test]
    fn bkz_never_worse_than_lll() {
        for seed in 0..5 {
            let basis = random_basis(6, 40, seed);
            let mut lll_basis = basis.clone();
            lll_reduce(&mut lll_basis, &LllParams::default());
            let mut bkz_basis = basis;
            bkz_reduce(&mut bkz_basis, &BkzParams::with_block_size(4));
            assert!(
                shortest_row_norm_sq(&bkz_basis) <= shortest_row_norm_sq(&lll_basis),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn full_block_bkz_finds_exact_shortest() {
        // β = n makes BKZ solve exact SVP on the whole lattice.
        for seed in 10..14 {
            let basis = random_basis(5, 25, seed);
            let exact = shortest_vector(&{
                let mut b = basis.clone();
                lll_reduce(&mut b, &LllParams::default());
                b
            })
            .unwrap();
            let exact_norm = dot_ii(&exact, &exact);
            let mut bkz_basis = basis;
            bkz_reduce(&mut bkz_basis, &BkzParams::with_block_size(5));
            assert_eq!(shortest_row_norm_sq(&bkz_basis), exact_norm, "seed {seed}");
        }
    }

    #[test]
    fn preserves_lattice_volume() {
        let basis = random_basis(5, 30, 42);
        let vol_before = Gso::new(basis.clone()).log_volume();
        let mut reduced = basis;
        bkz_reduce(&mut reduced, &BkzParams::with_block_size(3));
        let vol_after = Gso::new(reduced.clone()).log_volume();
        assert!((vol_before - vol_after).abs() < 1e-6);
        assert_eq!(reduced.len(), 5);
    }

    #[test]
    fn stats_report_work() {
        let basis = random_basis(6, 60, 7);
        let mut b = basis;
        let stats = bkz_reduce(&mut b, &BkzParams::with_block_size(4));
        assert!(stats.tours >= 1);
        // A second run on reduced input should fix nothing.
        let stats2 = bkz_reduce(&mut b, &BkzParams::with_block_size(4));
        assert_eq!(stats2.insertions, 0);
    }

    #[test]
    #[should_panic(expected = "block size")]
    fn rejects_block_size_one() {
        let mut basis = vec![vec![1, 0], vec![0, 1]];
        bkz_reduce(&mut basis, &BkzParams::with_block_size(1));
    }
}
